package adapt

import "rapidware/internal/fec"

// Mechanism identifies which repair scheme the adaptation plane should run on
// a link — the paper's reliability spectrum: nothing on a clean link,
// proactive parity where loss is the dominant cost, and NACK-driven
// retransmission where round trips are long but losses rare.
type Mechanism uint8

// The repair mechanisms, in escalation order.
const (
	// MechanismNone leaves the chain a pure relay.
	MechanismNone Mechanism = iota
	// MechanismFEC splices a proactive FEC encoder.
	MechanismFEC
	// MechanismARQ splices a retransmission history served by NACKs.
	MechanismARQ
)

// String returns a human-readable mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechanismNone:
		return "none"
	case MechanismFEC:
		return "fec"
	case MechanismARQ:
		return "arq"
	default:
		return "unknown"
	}
}

// Mechanism-selection thresholds. Retransmission only beats proactive parity
// when two conditions meet: losses are rare enough that the occasional repair
// costs less bandwidth than constant parity overhead, and — counterintuitively
// — the feedback path is slow enough that retuning an FEC code from stale
// high-RTT loss reports would chronically lag the channel, while a NACK names
// exactly the packets that are already known missing. Below the loss ceiling
// and above the RTT floor, ARQ wins; everywhere else the loss ladder decides.
const (
	// ARQRTTFloorMillis is the round-trip time above which per-report FEC
	// retuning is considered too stale to track the channel.
	ARQRTTFloorMillis = 150
	// ARQLossCeiling is the loss rate above which retransmission traffic
	// (and repeat losses of the repairs themselves) costs more than parity.
	ARQLossCeiling = 0.05
)

// Decide maps one (loss, RTT) observation to a repair mechanism and, for
// FEC, the code the ladder selects. rttMillis 0 means the RTT is unknown,
// which never selects ARQ — without an RTT estimate the NACK round trip
// cannot be budgeted against playout. The returned params are meaningful
// only for MechanismFEC.
func (p Policy) Decide(lossRate float64, rttMillis uint32) (Mechanism, fec.Params) {
	params := p.Select(lossRate)
	if params.K == params.N {
		return MechanismNone, params
	}
	if rttMillis >= ARQRTTFloorMillis && lossRate <= ARQLossCeiling {
		return MechanismARQ, params
	}
	return MechanismFEC, params
}
