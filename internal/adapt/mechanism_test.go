package adapt

import "testing"

func TestMechanismString(t *testing.T) {
	cases := map[Mechanism]string{
		MechanismNone: "none",
		MechanismFEC:  "fec",
		MechanismARQ:  "arq",
		Mechanism(99): "unknown",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mechanism(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestDecideSpansTheSpectrum(t *testing.T) {
	p := DefaultPolicy()
	cases := []struct {
		name string
		loss float64
		rtt  uint32
		want Mechanism
	}{
		{"clean link", 0.001, 20, MechanismNone},
		{"clean link, slow path", 0.001, 500, MechanismNone},
		{"moderate loss, fast feedback", 0.08, 20, MechanismFEC},
		{"heavy loss stays proactive even on a slow path", 0.25, 400, MechanismFEC},
		{"rare loss, slow feedback", 0.02, 200, MechanismARQ},
		{"rare loss exactly at the RTT floor", 0.02, ARQRTTFloorMillis, MechanismARQ},
		{"rare loss just under the RTT floor", 0.02, ARQRTTFloorMillis - 1, MechanismFEC},
		{"loss just over the ARQ ceiling", ARQLossCeiling + 0.001, 400, MechanismFEC},
		{"unknown RTT never selects ARQ", 0.02, 0, MechanismFEC},
	}
	for _, tc := range cases {
		m, params := p.Decide(tc.loss, tc.rtt)
		if m != tc.want {
			t.Errorf("%s: Decide(%.3f, %d) = %v, want %v", tc.name, tc.loss, tc.rtt, m, tc.want)
		}
		if m == MechanismFEC && params.N <= params.K {
			t.Errorf("%s: FEC decision with non-protective code %d/%d", tc.name, params.N, params.K)
		}
	}
}
