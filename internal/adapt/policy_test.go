package adapt

import (
	"os"
	"path/filepath"
	"testing"

	"rapidware/internal/fec"
)

func TestDefaultPolicyLadder(t *testing.T) {
	p := DefaultPolicy()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := []struct {
		loss float64
		want fec.Params
	}{
		{0, fec.Params{K: 1, N: 1}},
		{0.005, fec.Params{K: 1, N: 1}},
		{0.01, fec.Params{K: 4, N: 5}},
		{0.05, fec.Params{K: 4, N: 6}},
		{0.10, fec.Params{K: 4, N: 8}},
		{0.5, fec.Params{K: 4, N: 12}},
		{1, fec.Params{K: 4, N: 12}},
	}
	for _, c := range cases {
		if got := p.Select(c.loss); got != c.want {
			t.Errorf("Select(%v) = %v, want %v", c.loss, got, c.want)
		}
	}
}

func TestPolicyValidateRejectsBadLevels(t *testing.T) {
	if err := (Policy{}).Validate(); err == nil {
		t.Error("empty policy validated")
	}
	bad := Policy{Levels: []Level{{LossAtLeast: 0, Params: fec.Params{K: 5, N: 2}}}}
	if err := bad.Validate(); err == nil {
		t.Error("k>n level validated")
	}
	badThreshold := Policy{Levels: []Level{{LossAtLeast: 2, Params: fec.Params{K: 1, N: 1}}}}
	if err := badThreshold.Validate(); err == nil {
		t.Error("threshold > 1 validated")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	p, err := ParsePolicy("0:1/1, 0.01:5/4, 0.03:6/4, 0.10:8/4, 0.25:12/4")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	def := DefaultPolicy()
	if len(p.Levels) != len(def.Levels) {
		t.Fatalf("parsed %d levels, want %d", len(p.Levels), len(def.Levels))
	}
	for i := range p.Levels {
		if p.Levels[i] != def.Levels[i] {
			t.Errorf("level %d = %+v, want %+v", i, p.Levels[i], def.Levels[i])
		}
	}
	// String renders back into parseable form.
	again, err := ParsePolicy(p.String())
	if err != nil {
		t.Fatalf("ParsePolicy(String): %v", err)
	}
	if again.String() != p.String() {
		t.Fatalf("round trip %q != %q", again.String(), p.String())
	}
}

func TestParsePolicyLinesAndComments(t *testing.T) {
	text := `
# clean link: no FEC
0: 1/1
0.02: 6/4   # the paper's code
`
	p, err := ParsePolicy(text)
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	if len(p.Levels) != 2 {
		t.Fatalf("parsed %d levels, want 2", len(p.Levels))
	}
	if got := p.Select(0.05); got != (fec.Params{K: 4, N: 6}) {
		t.Fatalf("Select(0.05) = %v", got)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, text := range []string{
		"nonsense",
		"0.01",        // no code
		"0.01:6",      // no k
		"0.01:a/b",    // non-numeric
		"x:6/4",       // bad threshold
		"0.01:4/6",    // k > n
		"",            // no levels
		"# only this", // comments only
	} {
		if _, err := ParsePolicy(text); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded", text)
		}
	}
}

func TestLoadPolicyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.txt")
	if err := os.WriteFile(path, []byte("0:1/1\n0.10:8/4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPolicyFile(path)
	if err != nil {
		t.Fatalf("LoadPolicyFile: %v", err)
	}
	if got := p.Select(0.2); got != (fec.Params{K: 4, N: 8}) {
		t.Fatalf("Select(0.2) = %v", got)
	}
	if _, err := LoadPolicyFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file loaded")
	}
}
