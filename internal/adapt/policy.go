// Package adapt is the transport-agnostic half of RAPIDware's closed-loop
// adaptation plane: the policy ladder that maps an observed loss rate to the
// (n,k) erasure code that should protect a stream, as explored by the paper's
// companion adaptive-FEC work ([16]). The policy knows nothing about proxies,
// chains or sockets — observers feed it loss rates, responders apply the code
// it selects — so the same ladder drives the legacy single-stream adaptive
// proxy (internal/fecproxy), the responder raplets (internal/raplet) and the
// multi-session engine's per-session controllers (internal/engine).
package adapt

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"rapidware/internal/fec"
)

// Policy maps an observed loss rate to the (n,k) code that should protect the
// stream. The zero value is invalid; use DefaultPolicy or ParsePolicy.
type Policy struct {
	// Levels are (threshold, params) pairs: the strongest level whose
	// threshold is at or below the observed loss rate is selected. A level
	// with K == N disables FEC.
	Levels []Level
}

// Level is one rung of a policy ladder.
type Level struct {
	// LossAtLeast is the minimum observed loss rate for this level to apply.
	LossAtLeast float64
	// Params is the code used at this level.
	Params fec.Params
}

// DefaultPolicy returns a ladder modelled on the paper's environment: no FEC
// on a clean link, the paper's (6,4) at a few percent loss, and progressively
// stronger codes as the link degrades.
func DefaultPolicy() Policy {
	return Policy{Levels: []Level{
		{LossAtLeast: 0, Params: fec.Params{K: 1, N: 1}},
		{LossAtLeast: 0.01, Params: fec.Params{K: 4, N: 5}},
		{LossAtLeast: 0.03, Params: fec.Params{K: 4, N: 6}},
		{LossAtLeast: 0.10, Params: fec.Params{K: 4, N: 8}},
		{LossAtLeast: 0.25, Params: fec.Params{K: 4, N: 12}},
	}}
}

// Validate checks every level's parameters.
func (p Policy) Validate() error {
	if len(p.Levels) == 0 {
		return fmt.Errorf("adapt: policy needs at least one level")
	}
	for i, l := range p.Levels {
		if err := l.Params.Validate(); err != nil {
			return fmt.Errorf("adapt: level %d: %w", i, err)
		}
		if l.LossAtLeast < 0 || l.LossAtLeast > 1 {
			return fmt.Errorf("adapt: level %d threshold %v out of range", i, l.LossAtLeast)
		}
	}
	return nil
}

// Select returns the code for the observed loss rate: the level with the
// highest threshold the rate has reached, falling back to the
// lowest-threshold level when the rate is below every rung. Select runs on
// every receiver report, so it is a single allocation-free pass; ties on
// equal thresholds resolve to the earlier level for determinism.
func (p Policy) Select(lossRate float64) fec.Params {
	var chosen fec.Params
	best := -1.0
	for _, l := range p.Levels {
		if l.LossAtLeast <= lossRate && l.LossAtLeast > best {
			best, chosen = l.LossAtLeast, l.Params
		}
	}
	if best >= 0 {
		return chosen
	}
	// Below every rung (thresholds all positive): fall back to the
	// lowest-threshold level.
	lowest := math.Inf(1)
	for _, l := range p.Levels {
		if l.LossAtLeast < lowest {
			lowest, chosen = l.LossAtLeast, l.Params
		}
	}
	return chosen
}

// String renders the ladder in the textual policy format accepted by
// ParsePolicy, levels in ascending threshold order.
func (p Policy) String() string {
	levels := append([]Level(nil), p.Levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i].LossAtLeast < levels[j].LossAtLeast })
	parts := make([]string, len(levels))
	for i, l := range levels {
		parts[i] = fmt.Sprintf("%g:%d/%d", l.LossAtLeast, l.Params.N, l.Params.K)
	}
	return strings.Join(parts, ",")
}

// ParsePolicy parses a textual policy ladder. Levels are separated by commas
// or newlines, each "<loss>:<n>/<k>" — the loss threshold at which the (n,k)
// code engages. "#" starts a comment (to end of line). Example:
//
//	0:1/1, 0.01:5/4, 0.03:6/4, 0.10:8/4, 0.25:12/4
func ParsePolicy(text string) (Policy, error) {
	var p Policy
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		for _, part := range strings.Split(line, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			lossStr, nk, ok := strings.Cut(part, ":")
			if !ok {
				return Policy{}, fmt.Errorf("adapt: level %q: want <loss>:<n>/<k>", part)
			}
			loss, err := strconv.ParseFloat(strings.TrimSpace(lossStr), 64)
			if err != nil {
				return Policy{}, fmt.Errorf("adapt: level %q: bad loss threshold: %w", part, err)
			}
			ns, ks, ok := strings.Cut(nk, "/")
			if !ok {
				return Policy{}, fmt.Errorf("adapt: level %q: want <loss>:<n>/<k>", part)
			}
			n, err1 := strconv.Atoi(strings.TrimSpace(ns))
			k, err2 := strconv.Atoi(strings.TrimSpace(ks))
			if err1 != nil || err2 != nil {
				return Policy{}, fmt.Errorf("adapt: level %q: want integers n/k", part)
			}
			p.Levels = append(p.Levels, Level{LossAtLeast: loss, Params: fec.Params{K: k, N: n}})
		}
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// LoadPolicyFile reads and parses a policy ladder from a file.
func LoadPolicyFile(path string) (Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Policy{}, fmt.Errorf("adapt: read policy: %w", err)
	}
	p, err := ParsePolicy(string(data))
	if err != nil {
		return Policy{}, fmt.Errorf("adapt: policy file %s: %w", path, err)
	}
	return p, nil
}
