package audio

import (
	"fmt"
	"time"
)

// Packetizer splits a PCM stream into the fixed-interval chunks that the
// paper's proxy multicasts (and the FEC encoder groups into blocks).
type Packetizer struct {
	format   Format
	interval time.Duration
	chunk    int
}

// NewPacketizer returns a packetizer producing one payload per interval of
// audio. The interval must cover at least one frame.
func NewPacketizer(f Format, interval time.Duration) (*Packetizer, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		return nil, fmt.Errorf("audio: non-positive packet interval %v", interval)
	}
	frames := int(float64(f.SampleRate) * interval.Seconds())
	if frames < 1 {
		return nil, fmt.Errorf("audio: interval %v shorter than one frame", interval)
	}
	return &Packetizer{format: f, interval: interval, chunk: frames * f.BytesPerFrame()}, nil
}

// PayloadSize returns the size in bytes of each full payload.
func (p *Packetizer) PayloadSize() int { return p.chunk }

// Interval returns the audio duration carried by each payload.
func (p *Packetizer) Interval() time.Duration { return p.interval }

// Split divides pcm into consecutive payloads. The final payload may be
// shorter than PayloadSize; payloads alias the input slice.
func (p *Packetizer) Split(pcm []byte) [][]byte {
	var out [][]byte
	for off := 0; off < len(pcm); off += p.chunk {
		end := off + p.chunk
		if end > len(pcm) {
			end = len(pcm)
		}
		out = append(out, pcm[off:end])
	}
	return out
}

// Reassembler rebuilds a PCM stream from packet payloads at the receiver,
// substituting silence for packets that never arrive so playback timing is
// preserved (the audible "degradation" the paper describes for lost packets).
type Reassembler struct {
	format    Format
	chunk     int
	payloads  map[int][]byte
	maxIndex  int
	haveAny   bool
	silenceAt byte
}

// NewReassembler returns a reassembler for payloads produced by a packetizer
// with the same format and payload size.
func NewReassembler(f Format, payloadSize int) (*Reassembler, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if payloadSize <= 0 {
		return nil, fmt.Errorf("audio: non-positive payload size %d", payloadSize)
	}
	silence := byte(0)
	if f.BitsPerSample == 8 {
		silence = 128 // unsigned 8-bit midpoint
	}
	return &Reassembler{
		format:    f,
		chunk:     payloadSize,
		payloads:  make(map[int][]byte),
		silenceAt: silence,
	}, nil
}

// Add stores the payload for packet index idx (0-based position in the
// original stream). Later duplicates overwrite earlier ones.
func (r *Reassembler) Add(idx int, payload []byte) {
	if idx < 0 {
		return
	}
	r.payloads[idx] = append([]byte(nil), payload...)
	if !r.haveAny || idx > r.maxIndex {
		r.maxIndex = idx
		r.haveAny = true
	}
}

// MarkExpected notes that packets up to and including idx were transmitted,
// so trailing losses still produce silence in the output.
func (r *Reassembler) MarkExpected(idx int) {
	if idx < 0 {
		return
	}
	if !r.haveAny || idx > r.maxIndex {
		r.maxIndex = idx
		r.haveAny = true
	}
}

// Missing returns the indices for which no payload was received.
func (r *Reassembler) Missing() []int {
	if !r.haveAny {
		return nil
	}
	var missing []int
	for i := 0; i <= r.maxIndex; i++ {
		if _, ok := r.payloads[i]; !ok {
			missing = append(missing, i)
		}
	}
	return missing
}

// PCM renders the reassembled stream, inserting silence for missing packets.
func (r *Reassembler) PCM() []byte {
	if !r.haveAny {
		return nil
	}
	out := make([]byte, 0, (r.maxIndex+1)*r.chunk)
	for i := 0; i <= r.maxIndex; i++ {
		if p, ok := r.payloads[i]; ok {
			out = append(out, p...)
		} else {
			for j := 0; j < r.chunk; j++ {
				out = append(out, r.silenceAt)
			}
		}
	}
	return out
}

// Completeness returns the fraction of expected packets that were received,
// the receiver-side audio quality proxy used in the experiments.
func (r *Reassembler) Completeness() float64 {
	if !r.haveAny {
		return 1
	}
	return float64(len(r.payloads)) / float64(r.maxIndex+1)
}
