// Package audio provides the audio substrate for the FEC proxy experiments:
// the PCM format used in the paper (8000 samples/s, 8-bit, stereo), WAV
// encoding/decoding, synthetic audio generation (the paper recorded live
// audio, which we substitute with deterministic synthesis), and the
// packetizer that turns a PCM stream into the fixed-interval packets carried
// over the wireless LAN.
package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Format describes a PCM audio format.
type Format struct {
	// SampleRate is the number of samples per second per channel.
	SampleRate int
	// Channels is the number of interleaved channels.
	Channels int
	// BitsPerSample is the sample width; only 8 and 16 are supported.
	BitsPerSample int
}

// PaperFormat returns the format used in the paper's experiments: "8000
// samples per second for two 8-bit/sample stereo channels".
func PaperFormat() Format {
	return Format{SampleRate: 8000, Channels: 2, BitsPerSample: 8}
}

// Validate reports whether the format is usable.
func (f Format) Validate() error {
	if f.SampleRate <= 0 {
		return fmt.Errorf("audio: invalid sample rate %d", f.SampleRate)
	}
	if f.Channels <= 0 {
		return fmt.Errorf("audio: invalid channel count %d", f.Channels)
	}
	if f.BitsPerSample != 8 && f.BitsPerSample != 16 {
		return fmt.Errorf("audio: unsupported bits per sample %d", f.BitsPerSample)
	}
	return nil
}

// BytesPerSecond returns the PCM data rate of the format.
func (f Format) BytesPerSecond() int {
	return f.SampleRate * f.Channels * f.BitsPerSample / 8
}

// BytesPerFrame returns the size of one sample across all channels.
func (f Format) BytesPerFrame() int {
	return f.Channels * f.BitsPerSample / 8
}

// Duration returns the playback duration of a PCM payload of n bytes.
func (f Format) Duration(n int) time.Duration {
	bps := f.BytesPerSecond()
	if bps == 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(bps) * float64(time.Second))
}

// String renders the format.
func (f Format) String() string {
	return fmt.Sprintf("%dHz/%dbit/%dch", f.SampleRate, f.BitsPerSample, f.Channels)
}

// GenerateTone synthesizes duration of PCM audio containing a sine tone of
// the given frequency at moderate amplitude, identical in every channel.
// Output is unsigned for 8-bit formats and signed little-endian for 16-bit,
// matching WAV conventions.
func GenerateTone(f Format, freq float64, duration time.Duration) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	frames := int(float64(f.SampleRate) * duration.Seconds())
	out := make([]byte, 0, frames*f.BytesPerFrame())
	for i := 0; i < frames; i++ {
		v := math.Sin(2 * math.Pi * freq * float64(i) / float64(f.SampleRate))
		out = appendSample(out, f, v*0.6)
	}
	return out, nil
}

// GenerateSpeechLike synthesizes duration of audio that loosely resembles
// speech for test purposes: a mixture of drifting tones and noise bursts with
// pauses, produced deterministically from seed.
func GenerateSpeechLike(f Format, duration time.Duration, seed int64) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	frames := int(float64(f.SampleRate) * duration.Seconds())
	out := make([]byte, 0, frames*f.BytesPerFrame())
	freq := 120 + rng.Float64()*80
	amp := 0.5
	for i := 0; i < frames; i++ {
		// Every ~50 ms, drift the fundamental and occasionally go silent,
		// mimicking syllables and pauses.
		if i%(f.SampleRate/20) == 0 {
			freq = 100 + rng.Float64()*300
			if rng.Float64() < 0.15 {
				amp = 0
			} else {
				amp = 0.3 + rng.Float64()*0.4
			}
		}
		tpos := float64(i) / float64(f.SampleRate)
		v := amp * (0.7*math.Sin(2*math.Pi*freq*tpos) + 0.3*math.Sin(2*math.Pi*2.1*freq*tpos))
		v += (rng.Float64() - 0.5) * 0.05 // breath noise
		out = appendSample(out, f, v)
	}
	return out, nil
}

// appendSample appends one frame (all channels) of the value v in [-1,1].
func appendSample(out []byte, f Format, v float64) []byte {
	if v > 1 {
		v = 1
	}
	if v < -1 {
		v = -1
	}
	for c := 0; c < f.Channels; c++ {
		switch f.BitsPerSample {
		case 8:
			out = append(out, byte(int((v+1)/2*255)))
		case 16:
			s := int16(v * math.MaxInt16)
			out = binary.LittleEndian.AppendUint16(out, uint16(s))
		}
	}
	return out
}

// WAV container errors.
var (
	ErrNotWAV       = errors.New("audio: not a RIFF/WAVE file")
	ErrWAVTruncated = errors.New("audio: WAV data truncated")
	ErrWAVFormat    = errors.New("audio: unsupported WAV format chunk")
)

// EncodeWAV wraps PCM data in a minimal canonical WAV (RIFF) container, the
// ".WAV ... Windows PCM-based waveform audio file format" of the paper.
func EncodeWAV(f Format, pcm []byte) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	byteRate := f.BytesPerSecond()
	blockAlign := f.BytesPerFrame()
	out := make([]byte, 0, 44+len(pcm))
	out = append(out, "RIFF"...)
	out = binary.LittleEndian.AppendUint32(out, uint32(36+len(pcm)))
	out = append(out, "WAVE"...)
	out = append(out, "fmt "...)
	out = binary.LittleEndian.AppendUint32(out, 16)
	out = binary.LittleEndian.AppendUint16(out, 1) // PCM
	out = binary.LittleEndian.AppendUint16(out, uint16(f.Channels))
	out = binary.LittleEndian.AppendUint32(out, uint32(f.SampleRate))
	out = binary.LittleEndian.AppendUint32(out, uint32(byteRate))
	out = binary.LittleEndian.AppendUint16(out, uint16(blockAlign))
	out = binary.LittleEndian.AppendUint16(out, uint16(f.BitsPerSample))
	out = append(out, "data"...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(pcm)))
	out = append(out, pcm...)
	return out, nil
}

// DecodeWAV parses a canonical WAV container and returns its format and PCM
// payload. Only uncompressed PCM is supported.
func DecodeWAV(data []byte) (Format, []byte, error) {
	if len(data) < 44 {
		return Format{}, nil, ErrWAVTruncated
	}
	if string(data[0:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		return Format{}, nil, ErrNotWAV
	}
	// Walk chunks to find "fmt " and "data"; canonical files have them in
	// order but other chunks (LIST, fact) may intervene.
	var f Format
	var pcm []byte
	sawFmt, sawData := false, false
	off := 12
	for off+8 <= len(data) {
		id := string(data[off : off+4])
		size := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		body := off + 8
		if body+size > len(data) {
			return Format{}, nil, ErrWAVTruncated
		}
		switch id {
		case "fmt ":
			if size < 16 {
				return Format{}, nil, ErrWAVFormat
			}
			audioFormat := binary.LittleEndian.Uint16(data[body:])
			if audioFormat != 1 {
				return Format{}, nil, fmt.Errorf("%w: compression code %d", ErrWAVFormat, audioFormat)
			}
			f.Channels = int(binary.LittleEndian.Uint16(data[body+2:]))
			f.SampleRate = int(binary.LittleEndian.Uint32(data[body+4:]))
			f.BitsPerSample = int(binary.LittleEndian.Uint16(data[body+14:]))
			sawFmt = true
		case "data":
			pcm = append([]byte(nil), data[body:body+size]...)
			sawData = true
		}
		// Chunks are word aligned.
		if size%2 == 1 {
			size++
		}
		off = body + size
	}
	if !sawFmt || !sawData {
		return Format{}, nil, ErrWAVTruncated
	}
	if err := f.Validate(); err != nil {
		return Format{}, nil, fmt.Errorf("%w: %v", ErrWAVFormat, err)
	}
	return f, pcm, nil
}
