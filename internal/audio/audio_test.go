package audio

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestPaperFormat(t *testing.T) {
	f := PaperFormat()
	if f.SampleRate != 8000 || f.Channels != 2 || f.BitsPerSample != 8 {
		t.Fatalf("PaperFormat = %+v", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.BytesPerSecond() != 16000 {
		t.Fatalf("BytesPerSecond = %d, want 16000", f.BytesPerSecond())
	}
	if f.BytesPerFrame() != 2 {
		t.Fatalf("BytesPerFrame = %d, want 2", f.BytesPerFrame())
	}
	if f.String() == "" {
		t.Fatal("String empty")
	}
}

func TestFormatValidate(t *testing.T) {
	cases := []struct {
		f  Format
		ok bool
	}{
		{Format{8000, 2, 8}, true},
		{Format{44100, 1, 16}, true},
		{Format{0, 2, 8}, false},
		{Format{8000, 0, 8}, false},
		{Format{8000, 2, 12}, false},
	}
	for _, c := range cases {
		if err := c.f.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.f, err, c.ok)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	f := PaperFormat()
	if got := f.Duration(16000); got != time.Second {
		t.Fatalf("Duration(16000) = %v, want 1s", got)
	}
	if (Format{}).Duration(100) != 0 {
		t.Fatal("invalid format should report zero duration")
	}
}

func TestGenerateToneLengthAndRange(t *testing.T) {
	f := PaperFormat()
	pcm, err := GenerateTone(f, 440, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pcm) != f.BytesPerSecond() {
		t.Fatalf("len = %d, want %d", len(pcm), f.BytesPerSecond())
	}
	// 8-bit unsigned samples around the midpoint; a 0.6 amplitude tone must
	// not be stuck at a constant value.
	minV, maxV := pcm[0], pcm[0]
	for _, s := range pcm {
		if s < minV {
			minV = s
		}
		if s > maxV {
			maxV = s
		}
	}
	if maxV-minV < 100 {
		t.Fatalf("tone has tiny dynamic range: [%d,%d]", minV, maxV)
	}
	if _, err := GenerateTone(Format{}, 440, time.Second); err == nil {
		t.Fatal("expected error for invalid format")
	}
}

func TestGenerateTone16Bit(t *testing.T) {
	f := Format{SampleRate: 8000, Channels: 1, BitsPerSample: 16}
	pcm, err := GenerateTone(f, 440, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pcm) != 800*2 {
		t.Fatalf("len = %d, want 1600", len(pcm))
	}
}

func TestGenerateSpeechLikeDeterministic(t *testing.T) {
	f := PaperFormat()
	a, err := GenerateSpeechLike(f, 500*time.Millisecond, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSpeechLike(f, 500*time.Millisecond, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different audio")
	}
	c, _ := GenerateSpeechLike(f, 500*time.Millisecond, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical audio")
	}
	if _, err := GenerateSpeechLike(Format{}, time.Second, 1); err == nil {
		t.Fatal("expected error for invalid format")
	}
}

func TestWAVRoundTrip(t *testing.T) {
	f := PaperFormat()
	pcm, _ := GenerateTone(f, 440, 250*time.Millisecond)
	wav, err := EncodeWAV(f, pcm)
	if err != nil {
		t.Fatal(err)
	}
	if len(wav) != 44+len(pcm) {
		t.Fatalf("wav length %d, want %d", len(wav), 44+len(pcm))
	}
	gotF, gotPCM, err := DecodeWAV(wav)
	if err != nil {
		t.Fatal(err)
	}
	if gotF != f {
		t.Fatalf("decoded format %+v, want %+v", gotF, f)
	}
	if !bytes.Equal(gotPCM, pcm) {
		t.Fatal("PCM data corrupted through WAV round trip")
	}
}

func TestEncodeWAVInvalidFormat(t *testing.T) {
	if _, err := EncodeWAV(Format{}, nil); err == nil {
		t.Fatal("expected error for invalid format")
	}
}

func TestDecodeWAVErrors(t *testing.T) {
	f := PaperFormat()
	pcm, _ := GenerateTone(f, 440, 50*time.Millisecond)
	wav, _ := EncodeWAV(f, pcm)

	t.Run("too short", func(t *testing.T) {
		if _, _, err := DecodeWAV(wav[:20]); !errors.Is(err, ErrWAVTruncated) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), wav...)
		copy(bad[0:4], "JUNK")
		if _, _, err := DecodeWAV(bad); !errors.Is(err, ErrNotWAV) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated data chunk", func(t *testing.T) {
		if _, _, err := DecodeWAV(wav[:len(wav)-10]); !errors.Is(err, ErrWAVTruncated) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("non-pcm compression", func(t *testing.T) {
		bad := append([]byte(nil), wav...)
		bad[20] = 2 // compression code
		if _, _, err := DecodeWAV(bad); !errors.Is(err, ErrWAVFormat) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestPacketizerSplit(t *testing.T) {
	f := PaperFormat()
	p, err := NewPacketizer(f, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 20 ms at 16000 B/s = 320 bytes.
	if p.PayloadSize() != 320 {
		t.Fatalf("PayloadSize = %d, want 320", p.PayloadSize())
	}
	if p.Interval() != 20*time.Millisecond {
		t.Fatalf("Interval = %v", p.Interval())
	}
	pcm, _ := GenerateTone(f, 440, time.Second)
	chunks := p.Split(pcm)
	if len(chunks) != 50 {
		t.Fatalf("chunks = %d, want 50", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != len(pcm) {
		t.Fatalf("split lost bytes: %d of %d", total, len(pcm))
	}
	// Uneven tail.
	chunks = p.Split(pcm[:1000])
	if len(chunks) != 4 || len(chunks[3]) != 1000-3*320 {
		t.Fatalf("tail handling wrong: %d chunks, last %d bytes", len(chunks), len(chunks[len(chunks)-1]))
	}
}

func TestPacketizerErrors(t *testing.T) {
	if _, err := NewPacketizer(Format{}, 20*time.Millisecond); err == nil {
		t.Fatal("expected error for invalid format")
	}
	if _, err := NewPacketizer(PaperFormat(), 0); err == nil {
		t.Fatal("expected error for zero interval")
	}
	if _, err := NewPacketizer(PaperFormat(), 10*time.Microsecond); err == nil {
		t.Fatal("expected error for sub-frame interval")
	}
}

func TestReassemblerFillsSilence(t *testing.T) {
	f := PaperFormat()
	pktizer, _ := NewPacketizer(f, 20*time.Millisecond)
	pcm, _ := GenerateTone(f, 440, 200*time.Millisecond)
	chunks := pktizer.Split(pcm)

	r, err := NewReassembler(f, pktizer.PayloadSize())
	if err != nil {
		t.Fatal(err)
	}
	lostIdx := 3
	for i, c := range chunks {
		if i == lostIdx {
			continue
		}
		r.Add(i, c)
	}
	r.MarkExpected(len(chunks) - 1)

	missing := r.Missing()
	if len(missing) != 1 || missing[0] != lostIdx {
		t.Fatalf("Missing = %v, want [%d]", missing, lostIdx)
	}
	out := r.PCM()
	if len(out) != len(chunks)*pktizer.PayloadSize() {
		t.Fatalf("output length %d, want %d", len(out), len(chunks)*pktizer.PayloadSize())
	}
	// The lost packet's region must be silence (128 for unsigned 8-bit).
	start := lostIdx * pktizer.PayloadSize()
	for i := start; i < start+pktizer.PayloadSize(); i++ {
		if out[i] != 128 {
			t.Fatalf("byte %d = %d, want silence (128)", i, out[i])
		}
	}
	wantCompleteness := float64(len(chunks)-1) / float64(len(chunks))
	if got := r.Completeness(); got != wantCompleteness {
		t.Fatalf("Completeness = %v, want %v", got, wantCompleteness)
	}
}

func TestReassemblerEdgeCases(t *testing.T) {
	f := PaperFormat()
	r, err := NewReassembler(f, 320)
	if err != nil {
		t.Fatal(err)
	}
	if r.PCM() != nil || r.Missing() != nil || r.Completeness() != 1 {
		t.Fatal("empty reassembler should report empty results")
	}
	r.Add(-1, []byte{1}) // ignored
	r.MarkExpected(-5)   // ignored
	if r.PCM() != nil {
		t.Fatal("negative indices must be ignored")
	}
	if _, err := NewReassembler(Format{}, 320); err == nil {
		t.Fatal("expected error for invalid format")
	}
	if _, err := NewReassembler(f, 0); err == nil {
		t.Fatal("expected error for zero payload size")
	}
}

func TestReassemblerDuplicateOverwrites(t *testing.T) {
	f := PaperFormat()
	r, _ := NewReassembler(f, 4)
	r.Add(0, []byte{1, 1, 1, 1})
	r.Add(0, []byte{2, 2, 2, 2})
	out := r.PCM()
	if out[0] != 2 {
		t.Fatalf("duplicate did not overwrite: %v", out)
	}
}

func TestSixteenBitSilenceIsZero(t *testing.T) {
	f := Format{SampleRate: 8000, Channels: 1, BitsPerSample: 16}
	r, _ := NewReassembler(f, 4)
	r.MarkExpected(0)
	out := r.PCM()
	for _, b := range out {
		if b != 0 {
			t.Fatalf("16-bit silence should be zero bytes, got %v", out)
		}
	}
}
