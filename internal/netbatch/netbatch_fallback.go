//go:build !linux || purego || !(amd64 || arm64)

package netbatch

import "net"

// Portable build: no batched syscalls, no GSO. Callers still speak the Conn
// interface; they just move one datagram per syscall.
const (
	Available    = false
	GSOAvailable = false
)

// New wraps conn in the portable one-datagram-per-syscall Conn.
func New(conn *net.UDPConn, opts Options) Conn {
	return &simpleConn{conn: conn, recvCalls: opts.RecvCalls, sendCalls: opts.SendCalls}
}
