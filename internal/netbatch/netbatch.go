// Package netbatch moves UDP datagrams in batches of up to BatchSize per
// syscall. On linux/amd64 and linux/arm64 (without the purego build tag) New
// returns a recvmmsg/sendmmsg implementation that can also fold runs of
// equal-size datagrams into single UDP GSO super-datagrams; everywhere else
// it returns a portable fallback that moves one datagram per syscall behind
// the same interface. The proxy engine's shard loops, the rapidbench load
// generator and the throughput benchmarks all drive their sockets through
// this package, so client and server side batch alike.
package netbatch

import (
	"net"
	"net/netip"
	"sync/atomic"
)

// BatchSize is the number of datagrams one ReadBatch or WriteBatch call can
// move with a single syscall on the fast path.
const BatchSize = 32

// Msg is one datagram slot in a batch.
type Msg struct {
	// Buf is the datagram payload: ReadBatch reads into it (recording the
	// filled length in N), WriteBatch sends exactly len(Buf) bytes.
	Buf []byte
	// N is the number of bytes received into Buf (read side only).
	N int
	// Addr is the datagram's source (read side) or destination (write side).
	Addr netip.AddrPort
	// Seg is the GRO segment size when the kernel delivered several coalesced
	// datagrams from one peer in this slot (read side, GRO-enabled fast path
	// only): Buf[:N] then holds ceil(N/Seg) back-to-back datagrams of Seg
	// bytes each (the last possibly shorter). Zero means one plain datagram.
	Seg int
}

// Conn is a batched datagram socket.
type Conn interface {
	// ReadBatch blocks until at least one datagram arrives, fills as many
	// slots of ms as the socket will yield without blocking again, and
	// returns the count. Each filled slot has N and Addr set; Buf contents
	// beyond N are unspecified.
	ReadBatch(ms []Msg) (int, error)
	// WriteBatch sends datagrams in order and returns how many were fully
	// sent. A non-nil error means ms[n] failed and was not sent; the caller
	// decides its fate and re-offers the rest. Partial progress without an
	// error is legal — the caller simply calls again with the remainder.
	WriteBatch(ms []Msg) (int, error)
}

// Options tunes New.
type Options struct {
	// GSO enables UDP generic segmentation offload on the write side of the
	// fast path (no effect on the fallback): runs of equal-size datagrams to
	// one destination become a single kernel traversal. If the running
	// kernel rejects the GSO control message the connection permanently
	// falls back to plain batched sends.
	GSO bool
	// GRO enables UDP generic receive offload on the read side of the fast
	// path (no effect on the fallback): datagrams from one peer that the
	// kernel coalesced — notably GSO super-datagrams crossing loopback, which
	// then skip segmentation entirely — arrive as a single slot with Msg.Seg
	// recording the segment size. Callers must size their buffers for
	// coalesced delivery (64 KiB) and split on Seg themselves. If the running
	// kernel lacks UDP_GRO the option is silently ignored.
	GRO bool
	// RecvCalls and SendCalls, when non-nil, are incremented once per
	// receive/send syscall issued (including retries), so callers can derive
	// syscalls-per-packet and batch-fill figures.
	RecvCalls *atomic.Uint64
	SendCalls *atomic.Uint64
}

// counter is a nil-safe syscall tally.
func count(c *atomic.Uint64) {
	if c != nil {
		c.Add(1)
	}
}

// simpleConn is the portable Conn: one datagram per syscall through the net
// package, exactly the classic data path. It also serves as the explicit
// fallback on Linux when the raw-socket setup fails.
type simpleConn struct {
	conn      *net.UDPConn
	recvCalls *atomic.Uint64
	sendCalls *atomic.Uint64
}

func (c *simpleConn) ReadBatch(ms []Msg) (int, error) {
	count(c.recvCalls)
	n, from, err := c.conn.ReadFromUDPAddrPort(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = from
	ms[0].Seg = 0
	return 1, nil
}

func (c *simpleConn) WriteBatch(ms []Msg) (int, error) {
	for i := range ms {
		count(c.sendCalls)
		if _, err := c.conn.WriteToUDPAddrPort(ms[i].Buf, ms[i].Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}
