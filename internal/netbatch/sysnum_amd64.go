//go:build linux && !purego

package netbatch

// sendmmsg predates the syscall package's frozen number table.
const sysSendmmsg = 307
