//go:build linux && (amd64 || arm64) && !purego

package netbatch

import (
	"net"
	"net/netip"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Linux fast path: recvmmsg/sendmmsg move up to BatchSize datagrams per
// syscall, issued directly on the socket's raw fd through its
// syscall.RawConn so the runtime's netpoller still parks the goroutine on
// EAGAIN (the callbacks return false) instead of spinning. Restricted to
// amd64/arm64 — both little-endian, which the raw sockaddr port handling
// below assumes — and disabled by the purego tag so CI can prove the
// portable path on the same host.
const (
	// Available reports that this build moves datagrams in true batches.
	Available = true
	// GSOAvailable reports that this build can attempt UDP GSO sends.
	GSOAvailable = true

	sizeofSockaddrAny = syscall.SizeofSockaddrInet6 // largest name this path produces

	// UDP GSO: one sendmmsg entry whose iovecs hold several equal-size
	// datagrams to the same peer, with a UDP_SEGMENT cmsg telling the kernel
	// where to cut. SOL_UDP/UDP_SEGMENT are absent from the syscall package.
	solUDP      = 17
	udpSegment  = 103
	udpGRO      = 104
	maxGSOSegs  = 64    // kernel limit on segments per GSO send
	maxGSOBytes = 65000 // stay inside one UDP datagram's payload bound
)

// mmsghdr is struct mmsghdr on 64-bit Linux: a msghdr plus the kernel's
// per-message byte count, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// gsoCtrlSpace is the aligned room for one UDP_SEGMENT cmsg (uint16 payload).
var gsoCtrlSpace = syscall.CmsgSpace(2)

// groCtrlSpace is the aligned room for one UDP_GRO cmsg (int payload): the
// kernel reports the segment size of a coalesced delivery as a 4-byte int.
var groCtrlSpace = syscall.CmsgSpace(4)

// mmsgConn is the recvmmsg/sendmmsg Conn. All syscall scaffolding (headers,
// iovecs, name and control buffers) is preallocated at BatchSize width, so
// steady state does not allocate.
type mmsgConn struct {
	rc syscall.RawConn
	// v4 marks an AF_INET socket: destination names must then be
	// sockaddr_in, not sockaddr_in6.
	v4        bool
	gso       atomic.Bool
	gro       bool
	recvCalls *atomic.Uint64
	sendCalls *atomic.Uint64

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames [][sizeofSockaddrAny]byte
	rctrl  []byte // groCtrlSpace bytes per read header, when gro is on

	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames [][sizeofSockaddrAny]byte
	wctrl  []byte // gsoCtrlSpace bytes per write header
	wsegs  []int  // datagrams folded into each write header (GSO runs)

	// The RawConn callbacks are bound once here and their per-call state
	// rides in these fields: a fresh closure per batch would escape to the
	// heap and put an allocation back on every syscall the batching is
	// meant to amortize. A Conn is driven by at most one reading and one
	// writing goroutine, so the read and write state never race.
	readFn    func(fd uintptr) bool
	writeFn   func(fd uintptr) bool
	rn, rgot  int
	roperr    error
	wn, wsent int
	woperr    error
}

// New wraps conn in a batched Conn. The fast path needs the socket's raw fd;
// if that is unreachable the portable one-datagram path is returned instead.
func New(conn *net.UDPConn, opts Options) Conn {
	rc, err := conn.SyscallConn()
	if err != nil {
		return &simpleConn{conn: conn, recvCalls: opts.RecvCalls, sendCalls: opts.SendCalls}
	}
	c := &mmsgConn{
		rc:        rc,
		recvCalls: opts.RecvCalls,
		sendCalls: opts.SendCalls,
		rhdrs:     make([]mmsghdr, BatchSize),
		riovs:     make([]syscall.Iovec, BatchSize),
		rnames:    make([][sizeofSockaddrAny]byte, BatchSize),
		whdrs:     make([]mmsghdr, BatchSize),
		wiovs:     make([]syscall.Iovec, BatchSize),
		wnames:    make([][sizeofSockaddrAny]byte, BatchSize),
		wctrl:     make([]byte, BatchSize*gsoCtrlSpace),
		wsegs:     make([]int, BatchSize),
	}
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok && la.IP.To4() != nil {
		c.v4 = true
	}
	c.gso.Store(opts.GSO)
	if opts.GRO {
		// Opting the socket into coalesced delivery needs kernel support
		// (5.0+); on refusal the socket simply keeps per-datagram delivery
		// and Msg.Seg stays zero.
		var soerr error
		if rc.Control(func(fd uintptr) {
			soerr = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1)
		}) == nil && soerr == nil {
			c.gro = true
			c.rctrl = make([]byte, BatchSize*groCtrlSpace)
		}
	}
	c.readFn = c.recvmmsg
	c.writeFn = c.sendmmsg
	return c
}

// recvmmsg is the bound netpoller read callback: one recvmmsg attempt per
// invocation round, parking on EAGAIN.
func (c *mmsgConn) recvmmsg(fd uintptr) bool {
	for {
		count(c.recvCalls)
		r1, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&c.rhdrs[0])), uintptr(c.rn),
			syscall.MSG_DONTWAIT, 0, 0)
		switch errno {
		case 0:
			c.rgot = int(r1)
			return true
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false // park on the netpoller until readable
		default:
			c.roperr = errno
			return true
		}
	}
}

// sendmmsg is recvmmsg's write-side twin.
func (c *mmsgConn) sendmmsg(fd uintptr) bool {
	for {
		count(c.sendCalls)
		r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&c.whdrs[0])), uintptr(c.wn),
			syscall.MSG_DONTWAIT, 0, 0)
		switch errno {
		case 0:
			c.wsent = int(r1)
			return true
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false // park on the netpoller until writable
		default:
			c.woperr = errno
			return true
		}
	}
}

func (c *mmsgConn) ReadBatch(ms []Msg) (int, error) {
	n := min(len(ms), len(c.rhdrs))
	for i := 0; i < n; i++ {
		b := ms[i].Buf
		c.riovs[i] = syscall.Iovec{Base: &b[0]}
		c.riovs[i].SetLen(len(b))
		c.rhdrs[i] = mmsghdr{}
		c.rhdrs[i].hdr.Name = &c.rnames[i][0]
		c.rhdrs[i].hdr.Namelen = sizeofSockaddrAny
		c.rhdrs[i].hdr.Iov = &c.riovs[i]
		c.rhdrs[i].hdr.Iovlen = 1
		if c.gro {
			c.rhdrs[i].hdr.Control = &c.rctrl[i*groCtrlSpace]
			c.rhdrs[i].hdr.Controllen = uint64(groCtrlSpace)
		}
	}
	c.rn, c.rgot, c.roperr = n, 0, nil
	err := c.rc.Read(c.readFn)
	if err != nil {
		return 0, err
	}
	if c.roperr != nil {
		return 0, c.roperr
	}
	got := c.rgot
	for i := 0; i < got; i++ {
		ms[i].N = int(c.rhdrs[i].len)
		ms[i].Addr = c.name(&c.rnames[i])
		ms[i].Seg = 0
		if c.gro && c.rhdrs[i].hdr.Controllen >= uint64(syscall.CmsgLen(4)) {
			ctrl := c.rctrl[i*groCtrlSpace:]
			cm := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
			if cm.Level == solUDP && cm.Type == udpGRO {
				ms[i].Seg = int(*(*int32)(unsafe.Pointer(&ctrl[syscall.CmsgLen(0)])))
			}
		}
	}
	return got, nil
}

func (c *mmsgConn) WriteBatch(ms []Msg) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if c.gso.Load() {
		return c.writeBatchGSO(ms)
	}
	n := min(len(ms), len(c.whdrs))
	for i := 0; i < n; i++ {
		b := ms[i].Buf
		c.wiovs[i] = syscall.Iovec{Base: &b[0]}
		c.wiovs[i].SetLen(len(b))
		c.whdrs[i] = mmsghdr{}
		c.whdrs[i].hdr.Name = &c.wnames[i][0]
		c.whdrs[i].hdr.Namelen = c.putName(&c.wnames[i], ms[i].Addr)
		c.whdrs[i].hdr.Iov = &c.wiovs[i]
		c.whdrs[i].hdr.Iovlen = 1
	}
	return c.send(n, nil)
}

// writeBatchGSO coalesces runs of equal-size datagrams to one destination
// into single sendmmsg entries carrying a UDP_SEGMENT cmsg, so the kernel
// segments once instead of traversing the stack per datagram. Datagrams that
// do not form a run go out as plain entries in the same syscall.
func (c *mmsgConn) writeBatchGSO(ms []Msg) (int, error) {
	h, iv, i := 0, 0, 0
	for i < len(ms) && h < len(c.whdrs) && iv < len(c.wiovs) {
		sz := len(ms[i].Buf)
		run := 1
		for i+run < len(ms) && run < maxGSOSegs && iv+run < len(c.wiovs) &&
			ms[i+run].Addr == ms[i].Addr && len(ms[i+run].Buf) == sz &&
			(run+1)*sz <= maxGSOBytes {
			run++
		}
		for k := 0; k < run; k++ {
			b := ms[i+k].Buf
			c.wiovs[iv+k] = syscall.Iovec{Base: &b[0]}
			c.wiovs[iv+k].SetLen(sz)
		}
		hdr := &c.whdrs[h]
		*hdr = mmsghdr{}
		hdr.hdr.Name = &c.wnames[h][0]
		hdr.hdr.Namelen = c.putName(&c.wnames[h], ms[i].Addr)
		hdr.hdr.Iov = &c.wiovs[iv]
		hdr.hdr.Iovlen = uint64(run)
		if run > 1 {
			ctrl := c.wctrl[h*gsoCtrlSpace : (h+1)*gsoCtrlSpace]
			cm := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
			cm.Level = solUDP
			cm.Type = udpSegment
			cm.SetLen(syscall.CmsgLen(2))
			*(*uint16)(unsafe.Pointer(&ctrl[syscall.CmsgLen(0)])) = uint16(sz)
			hdr.hdr.Control = &ctrl[0]
			hdr.hdr.Controllen = uint64(gsoCtrlSpace)
		}
		c.wsegs[h] = run
		h++
		iv += run
		i += run
	}
	return c.send(h, c.wsegs[:h])
}

// send issues one sendmmsg over the first n prepared headers and translates
// the result back to datagram counts (segs maps each header to the number of
// datagrams folded into it; nil means one each). A kernel that rejects the
// GSO cmsg turns the feature off for good and reports a clean zero so the
// caller simply retries down the plain path.
func (c *mmsgConn) send(n int, segs []int) (int, error) {
	if n == 0 {
		return 0, nil
	}
	c.wn, c.wsent, c.woperr = n, 0, nil
	err := c.rc.Write(c.writeFn)
	sent, operr := c.wsent, c.woperr
	if segs != nil {
		// sendmmsg counts entries; the caller counts datagrams.
		total := 0
		for _, s := range segs[:sent] {
			total += s
		}
		if operr != nil && sent == 0 && segs[0] > 1 && gsoRejected(operr) {
			c.gso.Store(false)
			return 0, nil
		}
		sent = total
	}
	if err != nil {
		return sent, err
	}
	// sendmmsg reports an error only when the first message failed, so a
	// non-nil operr always points at ms[sent] with sent == 0 entries done.
	return sent, operr
}

// gsoRejected classifies errnos that mean the kernel or NIC path cannot do
// UDP GSO at all (as opposed to a per-datagram failure).
func gsoRejected(err error) bool {
	switch err {
	case syscall.EINVAL, syscall.EOPNOTSUPP, syscall.EIO, syscall.ENOSYS:
		return true
	}
	return false
}

// name decodes a raw source sockaddr. The address is kept exactly as the
// kernel spelled it — 4-in-6 mapped on a dual-stack socket — matching what
// net.UDPConn.ReadFromUDPAddrPort reports, so address comparisons (peer
// pinning, feedback authorization) behave identically on the batched and
// portable paths.
func (c *mmsgConn) name(raw *[sizeofSockaddrAny]byte) netip.AddrPort {
	switch *(*uint16)(unsafe.Pointer(&raw[0])) {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(raw))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), sa.Port<<8|sa.Port>>8)
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(raw))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), sa.Port<<8|sa.Port>>8)
	}
	return netip.AddrPort{}
}

// putName encodes dst into raw in the socket's address family (ports are
// big-endian on the wire, hence the byte swap on these little-endian
// arches) and returns the name length. An IPv6 destination on a v4 socket is
// unrepresentable; an AF_UNSPEC name makes the kernel reject that datagram
// cleanly (EINVAL) so it is dropped and counted like any other send failure.
func (c *mmsgConn) putName(raw *[sizeofSockaddrAny]byte, dst netip.AddrPort) uint32 {
	port := dst.Port()
	if c.v4 {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(raw))
		a := dst.Addr().Unmap()
		if !a.Is4() {
			*sa = syscall.RawSockaddrInet4{Family: syscall.AF_UNSPEC}
		} else {
			*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: port<<8 | port>>8, Addr: a.As4()}
		}
		return syscall.SizeofSockaddrInet4
	}
	sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(raw))
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Port: port<<8 | port>>8, Addr: dst.Addr().As16()}
	return syscall.SizeofSockaddrInet6
}
