package netbatch

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"
)

// pair binds two loopback sockets and wraps each in a batch conn.
func pair(t *testing.T, opts Options) (a, b *net.UDPConn, ba, bb Conn) {
	t.Helper()
	var err error
	a, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b, New(a, opts), New(b, Options{})
}

// drain reads until want datagrams arrived (in however many batches the
// kernel delivers them) and returns them in arrival order.
func drain(t *testing.T, c *net.UDPConn, bc Conn, want int) []Msg {
	t.Helper()
	var got []Msg
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < want {
		ms := make([]Msg, BatchSize)
		for i := range ms {
			ms[i].Buf = make([]byte, 2048)
		}
		c.SetReadDeadline(deadline)
		n, err := bc.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch after %d of %d: %v", len(got), want, err)
		}
		got = append(got, ms[:n]...)
	}
	return got
}

func TestBatchRoundTrip(t *testing.T) {
	var recvCalls, sendCalls atomic.Uint64
	a, b, ba, bb := pair(t, Options{RecvCalls: &recvCalls, SendCalls: &sendCalls})
	_ = bb
	dst := b.LocalAddr().(*net.UDPAddr).AddrPort()

	// Mixed sizes, so no two adjacent datagrams could be silently merged.
	const count = 12
	var ms []Msg
	for i := 0; i < count; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 16+i*13)
		ms = append(ms, Msg{Buf: payload, Addr: dst})
	}
	sent := 0
	for sent < len(ms) {
		n, err := ba.WriteBatch(ms[sent:])
		if err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		if n == 0 {
			t.Fatal("WriteBatch made no progress")
		}
		sent += n
	}

	got := drain(t, b, New(b, Options{RecvCalls: &recvCalls}), count)
	from := a.LocalAddr().(*net.UDPAddr).AddrPort()
	for i, m := range got {
		if m.N != 16+i*13 {
			t.Fatalf("datagram %d: got %d bytes, want %d", i, m.N, 16+i*13)
		}
		if !bytes.Equal(m.Buf[:m.N], bytes.Repeat([]byte{byte(i + 1)}, m.N)) {
			t.Fatalf("datagram %d corrupted", i)
		}
		if netip.AddrPortFrom(m.Addr.Addr().Unmap(), m.Addr.Port()) != netip.AddrPortFrom(from.Addr().Unmap(), from.Port()) {
			t.Fatalf("datagram %d: from %v, want %v", i, m.Addr, from)
		}
	}
	if sendCalls.Load() == 0 || recvCalls.Load() == 0 {
		t.Fatalf("syscall counters never moved: recv %d send %d", recvCalls.Load(), sendCalls.Load())
	}
	if Available && sendCalls.Load() >= count {
		t.Fatalf("fast path made %d send syscalls for %d datagrams — not batching", sendCalls.Load(), count)
	}
}

func TestWriteBatchInterleavedDestinations(t *testing.T) {
	a, b, ba, bb := pair(t, Options{})
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bc := New(c, Options{})
	_ = a
	dstB := b.LocalAddr().(*net.UDPAddr).AddrPort()
	dstC := c.LocalAddr().(*net.UDPAddr).AddrPort()

	var ms []Msg
	for i := 0; i < 8; i++ {
		dst := dstB
		if i%2 == 1 {
			dst = dstC
		}
		ms = append(ms, Msg{Buf: []byte(fmt.Sprintf("dgram-%d", i)), Addr: dst})
	}
	sent := 0
	for sent < len(ms) {
		n, err := ba.WriteBatch(ms[sent:])
		if err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		sent += n
	}
	for i, m := range drain(t, b, bb, 4) {
		if want := fmt.Sprintf("dgram-%d", i*2); string(m.Buf[:m.N]) != want {
			t.Fatalf("B datagram %d = %q, want %q", i, m.Buf[:m.N], want)
		}
	}
	for i, m := range drain(t, c, bc, 4) {
		if want := fmt.Sprintf("dgram-%d", i*2+1); string(m.Buf[:m.N]) != want {
			t.Fatalf("C datagram %d = %q, want %q", i, m.Buf[:m.N], want)
		}
	}
}

func TestGSOCoalescedSend(t *testing.T) {
	if !GSOAvailable {
		t.Skip("UDP GSO not available in this build")
	}
	var sendCalls atomic.Uint64
	a, b, ba, bb := pair(t, Options{GSO: true, SendCalls: &sendCalls})
	_ = a
	dst := b.LocalAddr().(*net.UDPAddr).AddrPort()

	// A run of equal-size datagrams to one destination, then a size change
	// (ends the run), then a final run. The receiver must see every datagram
	// at its original boundary.
	payloads := make([][]byte, 0, 24)
	var ms []Msg
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 512)
		payloads = append(payloads, p)
		ms = append(ms, Msg{Buf: p, Addr: dst})
	}
	small := []byte("odd-one-out")
	payloads = append(payloads, small)
	ms = append(ms, Msg{Buf: small, Addr: dst})
	for i := 0; i < 3; i++ {
		p := bytes.Repeat([]byte{0xAA ^ byte(i)}, 256)
		payloads = append(payloads, p)
		ms = append(ms, Msg{Buf: p, Addr: dst})
	}

	sent := 0
	for sent < len(ms) {
		n, err := ba.WriteBatch(ms[sent:])
		if err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		if n == 0 {
			t.Fatal("WriteBatch made no progress")
		}
		sent += n
	}
	got := drain(t, b, bb, len(payloads))
	for i, m := range got {
		if !bytes.Equal(m.Buf[:m.N], payloads[i]) {
			t.Fatalf("datagram %d: %d bytes, want %d (segmentation boundary lost)", i, m.N, len(payloads[i]))
		}
	}
	// Unless the kernel rejected GSO (auto-disable), 24 datagrams must cost
	// far fewer than 24 syscall entries; with coalescing the whole list fits
	// in one sendmmsg.
	t.Logf("sent %d datagrams in %d send syscalls", len(payloads), sendCalls.Load())
}

func TestGROCoalescedReceive(t *testing.T) {
	if !Available {
		t.Skip("batched fast path not available in this build")
	}
	a, b, ba, _ := pair(t, Options{GSO: true})
	_ = a
	bb := New(b, Options{GRO: true})
	dst := b.LocalAddr().(*net.UDPAddr).AddrPort()

	// A GSO run of equal-size datagrams over loopback: with the receiver
	// opted into GRO the kernel may deliver them coalesced, in which case Seg
	// must record the cut size so the caller can recover every original
	// datagram; without coalescing (old kernel, GRO refused) they arrive as
	// plain datagrams with Seg == 0. Both deliveries must reassemble to the
	// same payload sequence.
	const count, size = 16, 512
	var ms []Msg
	for i := 0; i < count; i++ {
		ms = append(ms, Msg{Buf: bytes.Repeat([]byte{byte(i + 1)}, size), Addr: dst})
	}
	sent := 0
	for sent < len(ms) {
		n, err := ba.WriteBatch(ms[sent:])
		if err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		if n == 0 {
			t.Fatal("WriteBatch made no progress")
		}
		sent += n
	}

	var payloads [][]byte
	deadline := time.Now().Add(5 * time.Second)
	coalesced := false
	for len(payloads) < count {
		rms := make([]Msg, BatchSize)
		for i := range rms {
			rms[i].Buf = make([]byte, 64<<10)
		}
		b.SetReadDeadline(deadline)
		n, err := bb.ReadBatch(rms)
		if err != nil {
			t.Fatalf("ReadBatch after %d of %d datagrams: %v", len(payloads), count, err)
		}
		for _, m := range rms[:n] {
			if m.Seg <= 0 {
				payloads = append(payloads, append([]byte(nil), m.Buf[:m.N]...))
				continue
			}
			coalesced = true
			for off := 0; off < m.N; off += m.Seg {
				end := min(off+m.Seg, m.N)
				payloads = append(payloads, append([]byte(nil), m.Buf[off:end]...))
			}
		}
	}
	for i, p := range payloads {
		if !bytes.Equal(p, bytes.Repeat([]byte{byte(i + 1)}, size)) {
			t.Fatalf("datagram %d: %d bytes, want %d of %#x (segment boundary lost)", i, len(p), size, byte(i+1))
		}
	}
	t.Logf("received %d datagrams, coalesced delivery observed: %v", count, coalesced)
}
