package fec

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rapidware/internal/packet"
)

func newEncoder(t testing.TB, k, n int) *BlockEncoder {
	t.Helper()
	c, err := NewCoder(Params{K: k, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return NewBlockEncoder(c, 1)
}

func TestBlockEncoderEmitsFullGroups(t *testing.T) {
	e := newEncoder(t, 4, 6)
	var emitted []*packet.Packet
	for i := 0; i < 4; i++ {
		out, err := e.Add([]byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 && out != nil {
			t.Fatalf("group emitted early at packet %d", i)
		}
		if i == 3 {
			emitted = out
		}
	}
	if len(emitted) != 6 {
		t.Fatalf("emitted %d packets, want 6", len(emitted))
	}
	for i, p := range emitted {
		if int(p.Index) != i {
			t.Fatalf("packet %d has index %d", i, p.Index)
		}
		wantKind := packet.KindData
		if i >= 4 {
			wantKind = packet.KindParity
		}
		if p.Kind != wantKind {
			t.Fatalf("packet %d kind = %v, want %v", i, p.Kind, wantKind)
		}
		if p.K != 4 || p.N != 6 || p.Group != 0 {
			t.Fatalf("packet %d has wrong block coordinates: %v", i, p)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0 after group flush", e.Pending())
	}
}

func TestBlockEncoderSequencesAndGroupsAdvance(t *testing.T) {
	e := newEncoder(t, 2, 3)
	var all []*packet.Packet
	for i := 0; i < 6; i++ {
		out, err := e.Add([]byte{byte(i), byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, out...)
	}
	if len(all) != 9 { // 3 groups × 3 packets
		t.Fatalf("emitted %d packets, want 9", len(all))
	}
	seen := map[uint64]bool{}
	for _, p := range all {
		if seen[p.Seq] {
			t.Fatalf("duplicate sequence number %d", p.Seq)
		}
		seen[p.Seq] = true
	}
	if all[0].Group != 0 || all[3].Group != 1 || all[6].Group != 2 {
		t.Fatalf("groups did not advance: %d %d %d", all[0].Group, all[3].Group, all[6].Group)
	}
}

func TestBlockEncoderRejectsBadPayloads(t *testing.T) {
	e := newEncoder(t, 2, 4)
	if _, err := e.Add(nil); !errors.Is(err, ErrShareSize) {
		t.Fatalf("err = %v, want ErrShareSize", err)
	}
	if _, err := e.Add(make([]byte, packet.MaxPayload)); !errors.Is(err, ErrShareSize) {
		t.Fatalf("oversized payload err = %v, want ErrShareSize", err)
	}
}

func TestBlockEncoderFlushPartialGroup(t *testing.T) {
	e := newEncoder(t, 4, 6)
	e.Add([]byte("a"))
	e.Add([]byte("bb"))
	out := e.Flush()
	if len(out) != 2 {
		t.Fatalf("Flush returned %d packets, want 2", len(out))
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Flush, want 0", e.Pending())
	}
	if out := e.Flush(); out != nil {
		t.Fatalf("second Flush returned %v, want nil", out)
	}
}

func TestBlockDecoderPassThroughNonFEC(t *testing.T) {
	d := NewBlockDecoder(0)
	p := &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("x")}
	out, err := d.Add(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != p {
		t.Fatalf("non-FEC packet not passed through: %v", out)
	}
}

func TestBlockDecoderNoLossDeliversInOrder(t *testing.T) {
	e := newEncoder(t, 4, 6)
	d := NewBlockDecoder(0)
	var delivered []*packet.Packet
	for i := 0; i < 8; i++ {
		out, err := e.Add([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range out {
			dp, err := d.Add(p)
			if err != nil {
				t.Fatal(err)
			}
			delivered = append(delivered, dp...)
		}
	}
	if len(delivered) != 8 {
		t.Fatalf("delivered %d data packets, want 8", len(delivered))
	}
	for i, p := range delivered {
		if p.Payload[0] != byte(i) {
			t.Fatalf("packet %d out of order: %v", i, p)
		}
		if p.Kind != packet.KindData {
			t.Fatalf("delivered a non-data packet: %v", p)
		}
	}
	if d.Recovered() != 0 {
		t.Fatalf("Recovered = %d, want 0 with no loss", d.Recovered())
	}
}

func TestBlockDecoderRecoversSingleLoss(t *testing.T) {
	e := newEncoder(t, 4, 6)
	d := NewBlockDecoder(0)
	payloads := [][]byte{[]byte("alpha"), []byte("bravo-longer"), []byte("ch"), []byte("delta")}
	var group []*packet.Packet
	for _, pl := range payloads {
		out, err := e.Add(pl)
		if err != nil {
			t.Fatal(err)
		}
		group = append(group, out...)
	}
	// Drop data packet index 1 (the longest payload, exercising padding).
	var delivered []*packet.Packet
	for _, p := range group {
		if p.Kind == packet.KindData && p.Index == 1 {
			continue
		}
		out, err := d.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, out...)
	}
	if len(delivered) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(delivered))
	}
	byIndex := map[uint8][]byte{}
	for _, p := range delivered {
		byIndex[p.Index] = p.Payload
	}
	for i, pl := range payloads {
		if !bytes.Equal(byIndex[uint8(i)], pl) {
			t.Fatalf("payload %d = %q, want %q", i, byIndex[uint8(i)], pl)
		}
	}
	if d.Recovered() != 1 {
		t.Fatalf("Recovered = %d, want 1", d.Recovered())
	}
}

func TestBlockDecoderLateDataAfterReconstructionNotDuplicated(t *testing.T) {
	e := newEncoder(t, 2, 4)
	d := NewBlockDecoder(0)
	out1, _ := e.Add([]byte("one"))
	if out1 != nil {
		t.Fatal("group completed early")
	}
	group, err := e.Add([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver data[0], parity[2], parity[3]: reconstruction of data[1] happens
	// as soon as 2 shares are present.
	var delivered []*packet.Packet
	for _, p := range []*packet.Packet{group[0], group[2], group[3]} {
		out, err := d.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, out...)
	}
	if len(delivered) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(delivered))
	}
	// Now the "lost" data packet arrives late; it must not be delivered again.
	out, err := d.Add(group[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("late duplicate delivered: %v", out)
	}
}

func TestBlockDecoderDuplicateShareRejected(t *testing.T) {
	e := newEncoder(t, 2, 3)
	d := NewBlockDecoder(0)
	e.Add([]byte("one"))
	group, _ := e.Add([]byte("two"))
	if _, err := d.Add(group[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(group[2]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestBlockDecoderGroupParamMismatch(t *testing.T) {
	d := NewBlockDecoder(0)
	p1 := &packet.Packet{Kind: packet.KindData, Group: 1, Index: 0, K: 2, N: 3, Payload: []byte("a")}
	p2 := &packet.Packet{Kind: packet.KindData, Group: 1, Index: 1, K: 2, N: 4, Payload: []byte("b")}
	if _, err := d.Add(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(p2); !errors.Is(err, ErrGroupMismatch) {
		t.Fatalf("err = %v, want ErrGroupMismatch", err)
	}
}

func TestBlockDecoderInvalidPackets(t *testing.T) {
	d := NewBlockDecoder(0)
	bad := &packet.Packet{Kind: packet.KindData, K: 5, N: 3, Payload: []byte("x")}
	if _, err := d.Add(bad); err == nil {
		t.Fatal("expected error for k>n packet")
	}
	badIdx := &packet.Packet{Kind: packet.KindData, K: 2, N: 3, Index: 7, Payload: []byte("x")}
	if _, err := d.Add(badIdx); !errors.Is(err, ErrShareIndex) {
		t.Fatalf("err = %v, want ErrShareIndex", err)
	}
}

func TestBlockDecoderEvictsOldGroups(t *testing.T) {
	d := NewBlockDecoder(4)
	for g := 0; g < 10; g++ {
		p := &packet.Packet{Kind: packet.KindData, Group: uint32(g), Index: 0, K: 2, N: 3, Payload: []byte("x")}
		if _, err := d.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if d.PendingGroups() > 4 {
		t.Fatalf("PendingGroups = %d, want <= 4", d.PendingGroups())
	}
}

// TestEndToEndRandomLoss simulates the paper's scenario: a long packet stream
// through encode, random loss below the correction capability per group, and
// decode; every payload must be delivered exactly once.
func TestEndToEndRandomLoss(t *testing.T) {
	const k, n, groups = 4, 6, 100
	e := newEncoder(t, k, n)
	d := NewBlockDecoder(0)
	rng := rand.New(rand.NewSource(42))

	sent := make(map[string]bool)
	got := make(map[string]int)
	for i := 0; i < k*groups; i++ {
		payload := []byte(fmt.Sprintf("pkt-%05d", i))
		sent[string(payload)] = true
		out, err := e.Add(payload)
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			continue
		}
		// Drop up to n-k random packets from this group.
		drops := rng.Intn(n - k + 1)
		dropIdx := map[int]bool{}
		for len(dropIdx) < drops {
			dropIdx[rng.Intn(n)] = true
		}
		for _, p := range out {
			if dropIdx[int(p.Index)] {
				continue
			}
			delivered, err := d.Add(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, dp := range delivered {
				got[string(dp.Payload)]++
			}
		}
	}
	for pl := range sent {
		if got[pl] != 1 {
			t.Fatalf("payload %q delivered %d times, want exactly once", pl, got[pl])
		}
	}
}
