package fec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCoder(t testing.TB, k, n int) *Coder {
	t.Helper()
	c, err := NewCoder(Params{K: k, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomSources(rng *rand.Rand, k, size int) [][]byte {
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, size)
		rng.Read(src[i])
	}
	return src
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p    Params
		ok   bool
		name string
	}{
		{Params{K: 4, N: 6}, true, "paper (6,4)"},
		{Params{K: 1, N: 1}, true, "degenerate k=n"},
		{Params{K: 8, N: 12}, true, "(12,8)"},
		{Params{K: 0, N: 6}, false, "zero k"},
		{Params{K: 4, N: 0}, false, "zero n"},
		{Params{K: 7, N: 6}, false, "k>n"},
		{Params{K: 4, N: 300}, false, "n too large"},
		{Params{K: -1, N: 4}, false, "negative k"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%v) err = %v, want ok=%v", c.p, err, c.ok)
			}
			if err != nil && !errors.Is(err, ErrBadParams) {
				t.Fatalf("err = %v, want ErrBadParams", err)
			}
		})
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{K: 4, N: 6}
	if p.Parity() != 2 {
		t.Fatalf("Parity = %d, want 2", p.Parity())
	}
	if p.Overhead() != 1.5 {
		t.Fatalf("Overhead = %v, want 1.5", p.Overhead())
	}
	if p.String() != "(6,4)" {
		t.Fatalf("String = %q, want (6,4)", p.String())
	}
}

func TestNewCoderRejectsBadParams(t *testing.T) {
	if _, err := NewCoder(Params{K: 5, N: 3}); err == nil {
		t.Fatal("expected error for k>n")
	}
}

func TestEncodeIsSystematic(t *testing.T) {
	c := mustCoder(t, 4, 6)
	rng := rand.New(rand.NewSource(1))
	src := randomSources(rng, 4, 128)
	shares, err := c.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 6 {
		t.Fatalf("len(shares) = %d, want 6", len(shares))
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(shares[i], src[i]) {
			t.Fatalf("share %d differs from source (code not systematic)", i)
		}
	}
}

func TestEncodeDoesNotAliasSources(t *testing.T) {
	c := mustCoder(t, 2, 3)
	src := [][]byte{{1, 2}, {3, 4}}
	shares, err := c.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0][0] = 99
	if shares[0][0] == 99 {
		t.Fatal("encoded share aliases the source slice")
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustCoder(t, 3, 5)
	if _, err := c.Encode([][]byte{{1}, {2}}); !errors.Is(err, ErrShareSize) {
		t.Fatalf("wrong count: err = %v, want ErrShareSize", err)
	}
	if _, err := c.Encode([][]byte{{1}, {2}, {}}); !errors.Is(err, ErrShareSize) {
		t.Fatalf("empty source: err = %v, want ErrShareSize", err)
	}
	if _, err := c.Encode([][]byte{{1, 2}, {3}, {4, 5}}); !errors.Is(err, ErrShareSize) {
		t.Fatalf("unequal sizes: err = %v, want ErrShareSize", err)
	}
}

func TestDecodeAllDataPresentFastPath(t *testing.T) {
	c := mustCoder(t, 4, 6)
	rng := rand.New(rand.NewSource(2))
	src := randomSources(rng, 4, 64)
	shares, _ := c.Encode(src)
	have := map[int][]byte{0: shares[0], 1: shares[1], 2: shares[2], 3: shares[3]}
	got, err := c.Decode(have)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("source %d mismatch", i)
		}
	}
}

func TestDecodeEveryErasurePatternPaperCode(t *testing.T) {
	// The paper's (6,4) code: any 2 losses must be recoverable.
	c := mustCoder(t, 4, 6)
	rng := rand.New(rand.NewSource(3))
	src := randomSources(rng, 4, 96)
	shares, _ := c.Encode(src)
	n := 6
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			have := make(map[int][]byte)
			for i := 0; i < n; i++ {
				if i != a && i != b {
					have[i] = shares[i]
				}
			}
			got, err := c.Decode(have)
			if err != nil {
				t.Fatalf("erasures {%d,%d}: %v", a, b, err)
			}
			for i := range src {
				if !bytes.Equal(got[i], src[i]) {
					t.Fatalf("erasures {%d,%d}: source %d mismatch", a, b, i)
				}
			}
		}
	}
}

func TestDecodeFromParityOnly(t *testing.T) {
	// (8,4): lose all four data packets, recover from the four parities.
	c := mustCoder(t, 4, 8)
	rng := rand.New(rand.NewSource(4))
	src := randomSources(rng, 4, 32)
	shares, _ := c.Encode(src)
	have := map[int][]byte{4: shares[4], 5: shares[5], 6: shares[6], 7: shares[7]}
	got, err := c.Decode(have)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("source %d mismatch when decoding from parity only", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	c := mustCoder(t, 3, 5)
	rng := rand.New(rand.NewSource(5))
	src := randomSources(rng, 3, 16)
	shares, _ := c.Encode(src)

	t.Run("not enough shares", func(t *testing.T) {
		have := map[int][]byte{0: shares[0], 1: shares[1]}
		if _, err := c.Decode(have); !errors.Is(err, ErrNotEnoughShares) {
			t.Fatalf("err = %v, want ErrNotEnoughShares", err)
		}
	})
	t.Run("bad index", func(t *testing.T) {
		have := map[int][]byte{0: shares[0], 1: shares[1], 9: shares[2]}
		if _, err := c.Decode(have); !errors.Is(err, ErrShareIndex) {
			t.Fatalf("err = %v, want ErrShareIndex", err)
		}
	})
	t.Run("unequal sizes", func(t *testing.T) {
		have := map[int][]byte{0: shares[0], 1: shares[1][:4], 2: shares[2]}
		if _, err := c.Decode(have); !errors.Is(err, ErrShareSize) {
			t.Fatalf("err = %v, want ErrShareSize", err)
		}
	})
	t.Run("empty share", func(t *testing.T) {
		have := map[int][]byte{0: shares[0], 1: {}, 2: shares[2]}
		if _, err := c.Decode(have); !errors.Is(err, ErrShareSize) {
			t.Fatalf("err = %v, want ErrShareSize", err)
		}
	})
}

func TestEncodeParity(t *testing.T) {
	c := mustCoder(t, 4, 6)
	rng := rand.New(rand.NewSource(6))
	src := randomSources(rng, 4, 48)
	parity, err := c.EncodeParity(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(parity) != 2 {
		t.Fatalf("len(parity) = %d, want 2", len(parity))
	}
	full, _ := c.Encode(src)
	for i := range parity {
		if !bytes.Equal(parity[i], full[4+i]) {
			t.Fatalf("parity %d differs between Encode and EncodeParity", i)
		}
	}
}

// TestRoundTripProperty drives random (n,k), share sizes and erasure patterns
// through encode/decode and requires exact reconstruction whenever at least k
// shares survive.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		n := k + rng.Intn(8)
		size := 1 + rng.Intn(256)
		c, err := NewCoder(Params{K: k, N: n})
		if err != nil {
			return false
		}
		src := randomSources(rng, k, size)
		shares, err := c.Encode(src)
		if err != nil {
			return false
		}
		// Keep a random subset of exactly k shares.
		perm := rng.Perm(n)[:k]
		have := make(map[int][]byte, k)
		for _, idx := range perm {
			have[idx] = shares[idx]
		}
		got, err := c.Decode(have)
		if err != nil {
			return false
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoderConcurrentUse(t *testing.T) {
	c := mustCoder(t, 4, 6)
	rng := rand.New(rand.NewSource(7))
	src := randomSources(rng, 4, 512)
	shares, _ := c.Encode(src)
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := 0; i < 50; i++ {
				have := map[int][]byte{1: shares[1], 2: shares[2], 4: shares[4], 5: shares[5]}
				got, err := c.Decode(have)
				if err != nil || !bytes.Equal(got[0], src[0]) {
					ok = false
					break
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent decode produced wrong data")
		}
	}
}
