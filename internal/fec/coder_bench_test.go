package fec

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkFECEncodeParity measures the one-pass source-major parity encode
// for the two group shapes the proxy actually runs — the paper-style (12,8)
// and the deeper (24,16) — at a small-audio share (256B) and a full MTU frame
// (1400B). It is part of the CI-tracked benchmark set (see BENCH_engine.json);
// bytes/op counts source bytes consumed, so throughput reads as source
// goodput, not parity volume.
func BenchmarkFECEncodeParity(b *testing.B) {
	for _, p := range []Params{{K: 8, N: 12}, {K: 16, N: 24}} {
		for _, size := range []int{256, 1400} {
			b.Run(fmt.Sprintf("n%d-k%d-%dB", p.N, p.K, size), func(b *testing.B) {
				coder, err := NewCoder(p)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1))
				sources := make([][]byte, p.K)
				for i := range sources {
					sources[i] = make([]byte, size)
					rng.Read(sources[i])
				}
				parity := make([][]byte, p.N-p.K)
				for i := range parity {
					parity[i] = make([]byte, size)
				}
				b.SetBytes(int64(p.K * size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := coder.EncodeParityInto(sources, parity); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
