package fec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"rapidware/internal/packet"
)

// Block-level errors.
var (
	ErrGroupMismatch = errors.New("fec: packet belongs to a different group or code")
	ErrDuplicate     = errors.New("fec: duplicate share for group")
)

// shareHeaderSize is the per-share prefix recording the original payload
// length, required because packets in a group may have different sizes and
// erasure coding needs equal-size shares.
const shareHeaderSize = 2

// BlockEncoder batches outgoing data packets into FEC groups of k packets and
// emits, for every full group, the k data packets (annotated with block
// coordinates) followed by n-k parity packets. It mirrors the "FEC Encoder"
// component of the paper's Figure 6. BlockEncoder is not safe for concurrent
// use; wrap it in the encoder filter for pipeline use.
type BlockEncoder struct {
	coder    *Coder
	streamID uint32
	group    uint32
	seq      uint64
	pending  []*packet.Packet

	// sources/staging are reused scratch for flushGroup: sources holds the
	// share views handed to the coder, staging the pooled buffers backing
	// them.
	sources [][]byte
	staging []*packet.Buf
}

// NewBlockEncoder returns a block encoder using the given coder. streamID is
// stamped on every emitted packet.
func NewBlockEncoder(coder *Coder, streamID uint32) *BlockEncoder {
	return &BlockEncoder{coder: coder, streamID: streamID}
}

// Params returns the encoder's code parameters.
func (e *BlockEncoder) Params() Params { return e.coder.Params() }

// Add appends a data payload to the current group. When the group reaches k
// packets, Add returns the full set of k data packets plus n-k parity packets
// for transmission; otherwise it returns nil.
func (e *BlockEncoder) Add(payload []byte) ([]*packet.Packet, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrShareSize)
	}
	if len(payload)+shareHeaderSize > packet.MaxPayload {
		return nil, fmt.Errorf("%w: payload too large", ErrShareSize)
	}
	k := e.coder.Params().K
	p := &packet.Packet{
		Seq:      e.seq,
		StreamID: e.streamID,
		Kind:     packet.KindData,
		Group:    e.group,
		Index:    uint8(len(e.pending)),
		K:        uint8(k),
		N:        uint8(e.coder.Params().N),
		Payload:  append([]byte(nil), payload...),
	}
	e.seq++
	e.pending = append(e.pending, p)
	if len(e.pending) < k {
		return nil, nil
	}
	return e.flushGroup()
}

// Flush completes a partially filled group by padding it with empty
// zero-length markers is NOT supported by the code; instead Flush emits the
// pending data packets without parity (parity requires a full group). It
// returns the pending packets, which keeps the stream lossless when it ends
// mid-group.
func (e *BlockEncoder) Flush() []*packet.Packet {
	out := e.pending
	e.pending = nil
	if len(out) > 0 {
		e.group++
	}
	return out
}

// Pending returns the number of data packets waiting for a full group.
func (e *BlockEncoder) Pending() int { return len(e.pending) }

func (e *BlockEncoder) flushGroup() ([]*packet.Packet, error) {
	params := e.coder.Params()
	k, n := params.K, params.N
	// Build equal-size shares: 2-byte length prefix + payload, zero padded to
	// the largest payload in the group.
	maxLen := 0
	for _, p := range e.pending {
		if len(p.Payload) > maxLen {
			maxLen = len(p.Payload)
		}
	}
	shareSize := maxLen + shareHeaderSize
	// The source shares are scratch space that dies with this call, so stage
	// them in pooled buffers. Parity shares are retained by the emitted
	// packets and must be allocated.
	if e.sources == nil {
		e.sources = make([][]byte, k)
		e.staging = make([]*packet.Buf, k)
	}
	for i, p := range e.pending {
		b := packet.GetBuf(shareSize)
		clear(b.B)
		binary.BigEndian.PutUint16(b.B, uint16(len(p.Payload)))
		copy(b.B[shareHeaderSize:], p.Payload)
		e.staging[i] = b
		e.sources[i] = b.B
	}
	// Parity payloads escape into the emitted packets, so they cannot come
	// from the buffer pool — but one backing slab sliced n-k ways costs one
	// allocation instead of n-k.
	slab := make([]byte, (n-k)*shareSize)
	parity := make([][]byte, n-k)
	for i := range parity {
		parity[i] = slab[i*shareSize : (i+1)*shareSize : (i+1)*shareSize]
	}
	err := e.coder.EncodeParityInto(e.sources, parity)
	for i, b := range e.staging {
		b.Release()
		e.staging[i], e.sources[i] = nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fec: encode group %d: %w", e.group, err)
	}
	out := make([]*packet.Packet, 0, n)
	out = append(out, e.pending...)
	for i, par := range parity {
		out = append(out, &packet.Packet{
			Seq:      e.seq,
			StreamID: e.streamID,
			Kind:     packet.KindParity,
			Group:    e.group,
			Index:    uint8(k + i),
			K:        uint8(k),
			N:        uint8(n),
			Payload:  par,
		})
		e.seq++
	}
	e.pending = nil
	e.group++
	return out, nil
}

// groupState accumulates shares for one FEC group on the decoding side.
type groupState struct {
	params    Params
	shares    map[int][]byte
	dataSeen  map[int]*packet.Packet // original data packets received directly
	delivered bool
}

// BlockDecoder reassembles FEC groups on the receiving side, mirroring the
// "FEC Decoder" of Figure 6. Data packets are delivered in order per group;
// when packets are missing but at least k shares of the group arrive, the
// missing packets are reconstructed. BlockDecoder is not safe for concurrent
// use.
type BlockDecoder struct {
	groups map[uint32]*groupState
	// Recovered counts packets reconstructed from parity rather than received.
	recovered uint64
	// maxGroups bounds memory for groups that never complete.
	maxGroups int
	order     []uint32
}

// NewBlockDecoder returns a decoder retaining state for at most maxGroups
// incomplete groups (older groups are evicted first). maxGroups <= 0 selects
// a reasonable default.
func NewBlockDecoder(maxGroups int) *BlockDecoder {
	if maxGroups <= 0 {
		maxGroups = 64
	}
	return &BlockDecoder{groups: make(map[uint32]*groupState), maxGroups: maxGroups}
}

// Recovered returns how many data packets were reconstructed from parity.
func (d *BlockDecoder) Recovered() uint64 { return d.recovered }

// Add feeds a received packet into the decoder. It returns any data packets
// that become deliverable as a result: the packet itself for ordinary
// arrivals plus reconstructed packets once the group is decodable. Non-FEC
// packets pass straight through.
func (d *BlockDecoder) Add(p *packet.Packet) ([]*packet.Packet, error) {
	if !p.IsFEC() {
		return []*packet.Packet{p}, nil
	}
	params := Params{K: int(p.K), N: int(p.N)}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if int(p.Index) >= params.N {
		return nil, fmt.Errorf("%w: index %d for %s", ErrShareIndex, p.Index, params)
	}
	g, ok := d.groups[p.Group]
	if !ok {
		g = &groupState{params: params, shares: make(map[int][]byte), dataSeen: make(map[int]*packet.Packet)}
		d.groups[p.Group] = g
		d.order = append(d.order, p.Group)
		d.evict()
	}
	if g.params != params {
		return nil, fmt.Errorf("%w: group %d uses %s, packet says %s", ErrGroupMismatch, p.Group, g.params, params)
	}
	if _, dup := g.shares[int(p.Index)]; dup {
		return nil, fmt.Errorf("%w: group %d index %d", ErrDuplicate, p.Group, p.Index)
	}

	var out []*packet.Packet
	if p.Kind == packet.KindData {
		_, alreadyDelivered := g.dataSeen[int(p.Index)]
		g.dataSeen[int(p.Index)] = p
		// Deliver data packets immediately: the stream is isochronous audio in
		// the paper, so we do not delay packets that arrived intact. A packet
		// that was already reconstructed from parity is not delivered twice.
		if !alreadyDelivered {
			out = append(out, p)
		}
		// Store its share form for possible later decoding.
		share := make([]byte, len(p.Payload)+shareHeaderSize)
		binary.BigEndian.PutUint16(share, uint16(len(p.Payload)))
		copy(share[shareHeaderSize:], p.Payload)
		g.shares[int(p.Index)] = share
	} else {
		g.shares[int(p.Index)] = p.Payload
	}

	// Attempt reconstruction when we have k shares and some data is missing.
	if !g.delivered && len(g.shares) >= g.params.K && len(g.dataSeen) < g.params.K {
		// Shares may have unequal sizes because data shares are sized to their
		// own payloads; pad them to the parity share size (parity shares are
		// always the group's maximum size).
		maxSize := 0
		for _, s := range g.shares {
			if len(s) > maxSize {
				maxSize = len(s)
			}
		}
		padded := make(map[int][]byte, len(g.shares))
		for idx, s := range g.shares {
			if len(s) < maxSize {
				ps := make([]byte, maxSize)
				copy(ps, s)
				padded[idx] = ps
			} else {
				padded[idx] = s
			}
		}
		coder, err := CoderFor(g.params)
		if err != nil {
			return nil, err
		}
		sources, err := coder.Decode(padded)
		if err != nil {
			return nil, fmt.Errorf("fec: reconstruct group %d: %w", p.Group, err)
		}
		// Emit reconstructed packets for the data indices we never received,
		// in index order for deterministic delivery.
		missing := make([]int, 0, g.params.K)
		for i := 0; i < g.params.K; i++ {
			if _, ok := g.dataSeen[i]; !ok {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		for _, idx := range missing {
			share := sources[idx]
			if len(share) < shareHeaderSize {
				return nil, fmt.Errorf("fec: reconstructed share %d too short", idx)
			}
			plen := int(binary.BigEndian.Uint16(share))
			if plen > len(share)-shareHeaderSize {
				return nil, fmt.Errorf("fec: reconstructed share %d has invalid length %d", idx, plen)
			}
			rp := &packet.Packet{
				StreamID: p.StreamID,
				Kind:     packet.KindData,
				Group:    p.Group,
				Index:    uint8(idx),
				K:        uint8(g.params.K),
				N:        uint8(g.params.N),
				Payload:  append([]byte(nil), share[shareHeaderSize:shareHeaderSize+plen]...),
			}
			g.dataSeen[idx] = rp
			out = append(out, rp)
			d.recovered++
		}
		g.delivered = true
	}
	return out, nil
}

// evict discards the oldest groups when more than maxGroups are tracked.
func (d *BlockDecoder) evict() {
	for len(d.order) > d.maxGroups {
		oldest := d.order[0]
		d.order = d.order[1:]
		delete(d.groups, oldest)
	}
}

// PendingGroups returns the number of groups currently tracked.
func (d *BlockDecoder) PendingGroups() int { return len(d.groups) }
