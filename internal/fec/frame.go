package fec

import (
	"encoding/binary"
	"fmt"

	"rapidware/internal/packet"
)

// FrameEncoder is BlockEncoder's allocation-free sibling for the proxy data
// path: it batches marshaled data frames (pooled packet.Bufs straight off a
// packet.Reader) into FEC groups and emits complete wire frames — the k held
// data frames with their block coordinates stamped into their headers in
// place, followed by n-k parity frames built in pooled buffers — without ever
// materializing packet structs or copying payloads it does not have to. All
// share staging and parity buffers come from the packet buffer pool, so a
// steady-state encode touches the allocator not at all. FrameEncoder is not
// safe for concurrent use; wrap it in the encoder filter for pipeline use.
type FrameEncoder struct {
	coder    *Coder
	streamID uint32
	group    uint32
	seq      uint64
	pending  []*packet.Buf // held data frames, len < k between Encode calls

	// Reused scratch for Encode: share views and their pooled backing for the
	// sources, plus the pooled frame buffers the parity shares are encoded
	// directly into.
	sources [][]byte
	staging []*packet.Buf
	parity  [][]byte
	pbufs   []*packet.Buf
}

// NewFrameEncoder returns a frame-level block encoder using the given coder.
// streamID is stamped on every emitted frame.
func NewFrameEncoder(coder *Coder, streamID uint32) *FrameEncoder {
	k, n := coder.Params().K, coder.Params().N
	return &FrameEncoder{
		coder:    coder,
		streamID: streamID,
		pending:  make([]*packet.Buf, 0, k),
		sources:  make([][]byte, k),
		staging:  make([]*packet.Buf, k),
		parity:   make([][]byte, n-k),
		pbufs:    make([]*packet.Buf, n-k),
	}
}

// Params returns the encoder's code parameters.
func (e *FrameEncoder) Params() Params { return e.coder.Params() }

// Pending returns the number of data frames waiting for a full group.
func (e *FrameEncoder) Pending() int { return len(e.pending) }

// Add appends one marshaled data frame to the current group, taking ownership
// of b (it is released when the group is emitted or discarded). It reports
// whether the group is now full, in which case the caller must invoke Encode
// before the next Add.
func (e *FrameEncoder) Add(b *packet.Buf) (full bool, err error) {
	plen := len(b.B) - packet.HeaderSize
	if plen <= 0 {
		b.Release()
		return false, fmt.Errorf("%w: empty payload", ErrShareSize)
	}
	if plen+shareHeaderSize > packet.MaxPayload {
		b.Release()
		return false, fmt.Errorf("%w: payload too large", ErrShareSize)
	}
	e.pending = append(e.pending, b)
	return len(e.pending) == e.coder.Params().K, nil
}

// Encode emits the full group: each held data frame is re-stamped in place
// with its sequence number and block coordinates, the n-k parity frames are
// computed into pooled buffers, and every complete frame is handed to emit in
// index order. The slice passed to emit is only valid for the duration of the
// call. All held buffers are released before Encode returns, success or not.
func (e *FrameEncoder) Encode(emit func(frame []byte) error) error {
	params := e.coder.Params()
	k, n := params.K, params.N
	if len(e.pending) != k {
		return fmt.Errorf("%w: group has %d of %d frames", ErrShareSize, len(e.pending), k)
	}
	defer e.Discard()
	// Build equal-size shares: 2-byte length prefix + payload, zero padded to
	// the largest payload in the group.
	maxLen := 0
	for _, b := range e.pending {
		if plen := len(b.B) - packet.HeaderSize; plen > maxLen {
			maxLen = plen
		}
	}
	shareSize := maxLen + shareHeaderSize
	for i, b := range e.pending {
		sb := packet.GetBuf(shareSize)
		clear(sb.B)
		plen := len(b.B) - packet.HeaderSize
		binary.BigEndian.PutUint16(sb.B, uint16(plen))
		copy(sb.B[shareHeaderSize:], b.B[packet.HeaderSize:])
		e.staging[i], e.sources[i] = sb, sb.B
	}
	for i := range e.pbufs {
		pb := packet.GetBuf(packet.HeaderSize + shareSize)
		e.pbufs[i], e.parity[i] = pb, pb.B[packet.HeaderSize:]
	}
	err := e.coder.EncodeParityInto(e.sources, e.parity)
	for i, sb := range e.staging {
		sb.Release()
		e.staging[i], e.sources[i] = nil, nil
	}
	if err != nil {
		e.releaseParity()
		return fmt.Errorf("fec: encode group %d: %w", e.group, err)
	}
	for i, b := range e.pending {
		hdr := packet.Packet{
			Seq: e.seq, StreamID: e.streamID, Kind: packet.KindData,
			Group: e.group, Index: uint8(i), K: uint8(k), N: uint8(n),
		}
		if err := packet.PutFrameHeader(b.B, &hdr, len(b.B)-packet.HeaderSize); err != nil {
			e.releaseParity()
			return err
		}
		e.seq++
		if err := emit(b.B); err != nil {
			e.releaseParity()
			return err
		}
	}
	for i, pb := range e.pbufs {
		hdr := packet.Packet{
			Seq: e.seq, StreamID: e.streamID, Kind: packet.KindParity,
			Group: e.group, Index: uint8(k + i), K: uint8(k), N: uint8(n),
		}
		if err := packet.PutFrameHeader(pb.B, &hdr, shareSize); err != nil {
			e.releaseParity()
			return err
		}
		e.seq++
		if err := emit(pb.B); err != nil {
			e.releaseParity()
			return err
		}
	}
	e.releaseParity()
	e.group++
	return nil
}

// Flush emits a partially filled group as plain stamped data frames without
// parity (parity requires a full group), keeping the stream lossless when it
// ends — or hits an in-band barrier — mid-group. Emitted buffers are released.
func (e *FrameEncoder) Flush(emit func(frame []byte) error) error {
	if len(e.pending) == 0 {
		return nil
	}
	params := e.coder.Params()
	defer e.Discard()
	for i, b := range e.pending {
		hdr := packet.Packet{
			Seq: e.seq, StreamID: e.streamID, Kind: packet.KindData,
			Group: e.group, Index: uint8(i), K: uint8(params.K), N: uint8(params.N),
		}
		if err := packet.PutFrameHeader(b.B, &hdr, len(b.B)-packet.HeaderSize); err != nil {
			return err
		}
		e.seq++
		if err := emit(b.B); err != nil {
			return err
		}
	}
	e.group++
	return nil
}

// Discard releases any held frames without emitting them, the shutdown path.
func (e *FrameEncoder) Discard() {
	for i, b := range e.pending {
		b.Release()
		e.pending[i] = nil
	}
	e.pending = e.pending[:0]
}

func (e *FrameEncoder) releaseParity() {
	for i, pb := range e.pbufs {
		if pb != nil {
			pb.Release()
			e.pbufs[i], e.parity[i] = nil, nil
		}
	}
}
