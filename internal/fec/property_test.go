package fec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEncodeEraseDecodeRoundTrip is the end-to-end property behind the FEC
// proxy: for random (n,k), random share sizes and any erasure pattern within
// the repair budget (up to n-k losses), decoding the surviving shares must
// reproduce the sources exactly.
func TestEncodeEraseDecodeRoundTrip(t *testing.T) {
	prop := func(kSeed, nSeed uint8, sizeSeed uint16, rngSeed int64) bool {
		k := int(kSeed)%12 + 1        // 1..12
		n := k + int(nSeed)%6 + 1     // k+1 .. k+6
		size := int(sizeSeed)%512 + 1 // 1..512 bytes per share
		rng := rand.New(rand.NewSource(rngSeed))

		coder, err := NewCoder(Params{K: k, N: n})
		if err != nil {
			t.Logf("NewCoder(%d,%d): %v", n, k, err)
			return false
		}
		sources := make([][]byte, k)
		for i := range sources {
			sources[i] = make([]byte, size)
			rng.Read(sources[i])
		}
		shares, err := coder.Encode(sources)
		if err != nil {
			t.Logf("Encode: %v", err)
			return false
		}

		// Erase up to n-k random shares.
		erasures := rng.Intn(n - k + 1)
		perm := rng.Perm(n)
		have := make(map[int][]byte, n-erasures)
		for _, idx := range perm[erasures:] {
			have[idx] = shares[idx]
		}

		decoded, err := coder.Decode(have)
		if err != nil {
			t.Logf("Decode with %d erasures: %v", erasures, err)
			return false
		}
		for i := range sources {
			if !bytes.Equal(decoded[i], sources[i]) {
				t.Logf("source %d corrupted after %d erasures (n=%d k=%d size=%d)", i, erasures, n, k, size)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeParityIntoMatchesEncode proves the pooled (in-place) parity path
// agrees with the allocating one for random inputs.
func TestEncodeParityIntoMatchesEncode(t *testing.T) {
	prop := func(kSeed, nSeed uint8, sizeSeed uint16, rngSeed int64) bool {
		k := int(kSeed)%10 + 1
		n := k + int(nSeed)%5 + 1
		size := int(sizeSeed)%256 + 1
		rng := rand.New(rand.NewSource(rngSeed))

		coder, err := NewCoder(Params{K: k, N: n})
		if err != nil {
			return false
		}
		sources := make([][]byte, k)
		for i := range sources {
			sources[i] = make([]byte, size)
			rng.Read(sources[i])
		}
		want, err := coder.EncodeParity(sources)
		if err != nil {
			return false
		}
		// Dirty destination slices: EncodeParityInto must overwrite fully.
		got := make([][]byte, n-k)
		for i := range got {
			got[i] = bytes.Repeat([]byte{0xFF}, size)
		}
		if err := coder.EncodeParityInto(sources, got); err != nil {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeParityIntoValidation(t *testing.T) {
	coder, err := NewCoder(Params{K: 4, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	sources := [][]byte{{1}, {2}, {3}, {4}}
	if err := coder.EncodeParityInto(sources, [][]byte{make([]byte, 1)}); err == nil {
		t.Fatal("wrong parity count accepted")
	}
	if err := coder.EncodeParityInto(sources, [][]byte{make([]byte, 1), make([]byte, 2)}); err == nil {
		t.Fatal("wrong parity size accepted")
	}
	if err := coder.EncodeParityInto(sources, [][]byte{make([]byte, 1), make([]byte, 1)}); err != nil {
		t.Fatalf("valid call rejected: %v", err)
	}
}
