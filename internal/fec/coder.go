// Package fec implements (n,k) block erasure codes in the style of Rizzo's
// library cited by the paper, plus the block encoder/decoder used by the FEC
// proxy filters. A block of k equally sized source shares is expanded into n
// encoded shares such that ANY k of the n shares reconstruct the k sources.
//
// The code is systematic: the first k encoded shares are the source shares
// themselves, so receivers that lose nothing never pay decoding cost, and a
// single parity share can repair independent single losses at different
// receivers — the property that makes the scheme attractive for wireless
// multicast in the paper.
//
// Parity generation is one-pass and source-major: each Coder precompiles its
// parity rows into a gf256.EncodePlan, so EncodeParityInto walks every source
// share exactly once, scattering into all parity shares in cache-sized tiles
// through the SIMD kernel hierarchy (see the gf256 package doc), instead of
// re-reading the sources once per parity row. Encode and the decode-side
// matrix inversion are allocation-free at steady state (scratch matrices are
// pooled), which is what keeps the proxy's FEC chains off the garbage
// collector.
package fec

import (
	"errors"
	"fmt"
	"sync"

	"rapidware/internal/gf256"
)

// Limits on code parameters. GF(2^8) admits at most 256 total shares; the
// paper uses small groups such as (6,4) to bound latency and jitter.
const (
	MaxShares = 255
)

// Errors returned by the coder.
var (
	ErrBadParams       = errors.New("fec: invalid (n,k) parameters")
	ErrShareSize       = errors.New("fec: shares must be non-empty and equally sized")
	ErrNotEnoughShares = errors.New("fec: not enough shares to reconstruct")
	ErrShareIndex      = errors.New("fec: share index out of range")
)

// Params describes an (n,k) erasure code: k source shares expanded to n total
// shares (k data + n-k parity).
type Params struct {
	K int // number of source shares
	N int // total number of encoded shares
}

// Validate reports whether the parameters describe a usable code.
func (p Params) Validate() error {
	if p.K <= 0 || p.N <= 0 || p.K > p.N || p.N > MaxShares {
		return fmt.Errorf("%w: k=%d n=%d", ErrBadParams, p.K, p.N)
	}
	return nil
}

// Parity returns the number of parity shares (n-k).
func (p Params) Parity() int { return p.N - p.K }

// Overhead returns the bandwidth expansion factor n/k.
func (p Params) Overhead() float64 { return float64(p.N) / float64(p.K) }

// String renders the parameters in the paper's "(n,k)" notation.
func (p Params) String() string { return fmt.Sprintf("(%d,%d)", p.N, p.K) }

// Coder is a reusable systematic (n,k) erasure coder. It is safe for
// concurrent use: all state is immutable after construction.
type Coder struct {
	params Params
	// enc is the n×k generator matrix whose top k×k block is the identity.
	enc *gf256.Matrix
	// plan is the precomputed source-major encode plan over the parity rows
	// of enc: per-cell nibble tables resolved once at construction so the
	// encode hot loop never touches the multiplication tables by value.
	plan *gf256.EncodePlan
}

// NewCoder builds a coder for the given parameters.
func NewCoder(params Params) (*Coder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	k, n := params.K, params.N
	// Start from an n×k Vandermonde matrix: any k rows are independent.
	vand := gf256.Vandermonde(n, k)
	// Make the code systematic by multiplying on the right with the inverse
	// of the top k×k block, turning that block into the identity while
	// preserving the any-k-rows-invertible property.
	top := vand.SubMatrix(0, k, 0, k)
	topInv, err := top.Invert()
	if err != nil {
		// Cannot happen for a Vandermonde matrix, but do not panic on a
		// library boundary.
		return nil, fmt.Errorf("fec: generator construction failed: %w", err)
	}
	enc, err := vand.Mul(topInv)
	if err != nil {
		return nil, fmt.Errorf("fec: generator construction failed: %w", err)
	}
	parityRows := make([][]byte, n-k)
	for i := range parityRows {
		parityRows[i] = enc.Row(k + i)
	}
	return &Coder{params: params, enc: enc, plan: gf256.NewEncodePlan(parityRows)}, nil
}

// Params returns the coder's parameters.
func (c *Coder) Params() Params { return c.params }

// coderCache memoizes coders by their (comparable) parameters. A Coder is
// immutable after construction, so one instance per (n,k) serves every
// encoder, decoder and adaptation retune in the process — the generator
// construction (Vandermonde build, k×k inversion, n×k multiply) is paid once
// per code, not once per retune or per reconstructed group.
var coderCache sync.Map // Params -> *Coder

// CoderFor returns the process-wide shared coder for the given parameters,
// building it on first use. The returned coder is safe for concurrent use and
// must not be mutated.
func CoderFor(params Params) (*Coder, error) {
	if c, ok := coderCache.Load(params); ok {
		return c.(*Coder), nil
	}
	c, err := NewCoder(params)
	if err != nil {
		return nil, err
	}
	actual, _ := coderCache.LoadOrStore(params, c)
	return actual.(*Coder), nil
}

// validateSources checks that sources has exactly k non-empty, equally sized
// shares and returns the common share size.
func (c *Coder) validateSources(sources [][]byte) (int, error) {
	k := c.params.K
	if len(sources) != k {
		return 0, fmt.Errorf("%w: got %d sources, want %d", ErrShareSize, len(sources), k)
	}
	size := 0
	for i, s := range sources {
		if len(s) == 0 {
			return 0, fmt.Errorf("%w: source %d is empty", ErrShareSize, i)
		}
		if i == 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: source %d has %d bytes, want %d", ErrShareSize, i, len(s), size)
		}
	}
	return size, nil
}

// Encode expands k source shares into n encoded shares. The first k returned
// shares are the sources themselves (copied), the remaining n-k are parity.
// All sources must be non-empty and of identical length.
func (c *Coder) Encode(sources [][]byte) ([][]byte, error) {
	k, n := c.params.K, c.params.N
	size, err := c.validateSources(sources)
	if err != nil {
		return nil, err
	}
	shares := make([][]byte, n)
	for i := 0; i < k; i++ {
		shares[i] = append([]byte(nil), sources[i]...)
	}
	for r := k; r < n; r++ {
		shares[r] = make([]byte, size)
	}
	if err := c.EncodeParityInto(sources, shares[k:]); err != nil {
		return nil, err
	}
	return shares, nil
}

// EncodeParity computes only the n-k parity shares for the given sources,
// avoiding the copy of the data shares when the caller already owns them.
func (c *Coder) EncodeParity(sources [][]byte) ([][]byte, error) {
	size, err := c.validateSources(sources)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.params.Parity())
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	if err := c.EncodeParityInto(sources, parity); err != nil {
		return nil, err
	}
	return parity, nil
}

// EncodeParityInto computes the n-k parity shares into the caller-provided
// slices, the allocation-free encode path: parity must hold exactly
// Params().Parity() slices, each the same length as the sources. Existing
// parity contents are overwritten.
//
// The multiply is source-major: the precomputed plan walks the generator's
// parity block column by column in cache-sized tiles, loading each source
// chunk once and scattering it into every parity row while it is hot, instead
// of re-streaming all k sources per parity row.
func (c *Coder) EncodeParityInto(sources, parity [][]byte) error {
	size, err := c.validateSources(sources)
	if err != nil {
		return err
	}
	if len(parity) != c.params.Parity() {
		return fmt.Errorf("%w: got %d parity shares, want %d", ErrShareSize, len(parity), c.params.Parity())
	}
	for i, out := range parity {
		if len(out) != size {
			return fmt.Errorf("%w: parity %d has %d bytes, want %d", ErrShareSize, i, len(out), size)
		}
	}
	c.plan.Encode(sources, parity)
	return nil
}

// Decode reconstructs the k source shares from any k (or more) of the n
// encoded shares. The have map is keyed by share index (0..n-1). Extra shares
// beyond k are ignored. The returned slice has exactly k entries in source
// order.
func (c *Coder) Decode(have map[int][]byte) ([][]byte, error) {
	k, n := c.params.K, c.params.N
	if len(have) < k {
		return nil, fmt.Errorf("%w: have %d of %d required", ErrNotEnoughShares, len(have), k)
	}
	// Validate indices and sizes; collect available indices in ascending
	// order, preferring data shares so that the decode matrix is as close to
	// the identity as possible (cheapest inversion).
	size := -1
	for idx, s := range have {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrShareIndex, idx, n)
		}
		if len(s) == 0 {
			return nil, fmt.Errorf("%w: share %d is empty", ErrShareSize, idx)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return nil, fmt.Errorf("%w: share %d has %d bytes, want %d", ErrShareSize, idx, len(s), size)
		}
	}
	chosen := make([]int, 0, k)
	for idx := 0; idx < n && len(chosen) < k; idx++ {
		if _, ok := have[idx]; ok {
			chosen = append(chosen, idx)
		}
	}
	// Fast path: all k data shares survive.
	allData := true
	for i, idx := range chosen {
		if idx != i {
			allData = false
			break
		}
	}
	out := make([][]byte, k)
	if allData {
		for i := 0; i < k; i++ {
			out[i] = append([]byte(nil), have[i]...)
		}
		return out, nil
	}
	// General path: invert the k×k submatrix of the generator corresponding
	// to the chosen shares, then multiply it into the received shares. Both
	// matrix temporaries come from the gf256 scratch pool so repeated
	// reconstructions under loss churn allocate only the returned shares.
	sub := gf256.GetMatrix(k, k)
	defer gf256.PutMatrix(sub)
	if err := c.enc.SelectRowsInto(chosen, sub); err != nil {
		return nil, fmt.Errorf("fec: decode matrix selection failed: %w", err)
	}
	inv := gf256.GetMatrix(k, k)
	defer gf256.PutMatrix(inv)
	if err := sub.InvertInto(inv); err != nil {
		return nil, fmt.Errorf("fec: decode matrix singular: %w", err)
	}
	// Source-major multiply, mirroring the encode side: stream each received
	// share once through a column of inverse coefficients into all k outputs.
	for i := 0; i < k; i++ {
		out[i] = make([]byte, size)
	}
	var coefs [MaxShares]byte
	for j, idx := range chosen {
		for i := 0; i < k; i++ {
			coefs[i] = inv.At(i, j)
		}
		gf256.AddMulSliceN(coefs[:k], have[idx], out)
	}
	return out, nil
}
