package control

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"

	"rapidware/internal/core"
	"rapidware/internal/metrics"
)

// SessionSource provides per-session relay statistics for status replies; it
// is implemented by the multi-session proxy engine.
type SessionSource interface {
	SessionStats() []metrics.SessionStats
}

// EngineSource is implemented by session sources that also expose aggregate
// engine counters and a per-shard breakdown of the data plane (the sharded
// proxy engine). OpStats requires it.
type EngineSource interface {
	SessionSource
	EngineStats() metrics.EngineStats
	ShardStats() []metrics.ShardStats
}

// Composer is implemented by session sources whose live sessions can be
// recomposed through the control plane (the proxy engine): every method
// addresses one session — and optionally one delivery branch, by receiver
// address — and returns the canonical plan string after the rewrite.
// Session-scoped OpInsert/OpRemove/OpMove and OpRecompose require it.
type Composer interface {
	SessionSource
	Kinds() []string
	RecomposeSession(id uint32, receiver, target string) (string, error)
	InsertSessionStage(id uint32, receiver, stage string, pos int) (string, error)
	RemoveSessionStage(id uint32, receiver, sel string) (string, error)
	MoveSessionStage(id uint32, receiver string, from, to int) (string, error)
}

// Server exposes one or more proxies over the control protocol. Each accepted
// connection carries a sequence of newline-delimited JSON requests and
// responses.
type Server struct {
	mu       sync.Mutex
	proxies  map[string]*core.Proxy
	sessions SessionSource
	ln       net.Listener
	wg       sync.WaitGroup
	closed   bool
	logger   *log.Logger
}

// NewServer returns a server managing the given proxies, keyed by name.
func NewServer(logger *log.Logger, proxies ...*core.Proxy) *Server {
	s := &Server{proxies: make(map[string]*core.Proxy), logger: logger}
	for _, p := range proxies {
		s.proxies[p.Name()] = p
	}
	return s
}

// AddProxy registers an additional proxy.
func (s *Server) AddProxy(p *core.Proxy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.proxies[p.Name()] = p
}

// SetSessionSource attaches a multi-session engine whose per-session counters
// are served by OpSessions and folded into status replies.
func (s *Server) SetSessionSource(src SessionSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions = src
}

// sessionStats snapshots the attached session source, or nil when absent.
func (s *Server) sessionStats() []metrics.SessionStats {
	s.mu.Lock()
	src := s.sessions
	s.mu.Unlock()
	if src == nil {
		return nil
	}
	return src.SessionStats()
}

// engineStats snapshots the attached engine's aggregate and per-shard
// counters, or nil when no engine (or a stats-less session source) is
// attached.
func (s *Server) engineStats() (*metrics.EngineStats, []metrics.ShardStats) {
	s.mu.Lock()
	src := s.sessions
	s.mu.Unlock()
	es, ok := src.(EngineSource)
	if !ok {
		return nil, nil
	}
	stats := es.EngineStats()
	return &stats, es.ShardStats()
}

// proxyNames returns the registered proxy names.
func (s *Server) proxyNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.proxies))
	for n := range s.proxies {
		names = append(names, n)
	}
	return names
}

// lookup returns the proxy for the request's Name field; when only one proxy
// is registered an empty name selects it.
func (s *Server) lookup(name string) (*core.Proxy, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" && len(s.proxies) == 1 {
		for _, p := range s.proxies {
			return p, nil
		}
	}
	if p, ok := s.proxies[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("control: unknown proxy %q", name)
}

// Listen starts accepting control connections on addr ("host:port"; use
// ":0" to pick a free port). It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("control: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one control connection.
func (s *Server) serveConn(conn io.ReadWriter) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && s.logger != nil {
				s.logger.Printf("control: decode: %v", err)
			}
			return
		}
		resp := s.Handle(req)
		if err := enc.Encode(resp); err != nil {
			if s.logger != nil {
				s.logger.Printf("control: encode: %v", err)
			}
			return
		}
	}
}

// composer returns the attached session source's composition surface, or nil
// when no engine (or a compose-less source) is attached.
func (s *Server) composer() Composer {
	s.mu.Lock()
	src := s.sessions
	s.mu.Unlock()
	c, _ := src.(Composer)
	return c
}

// handleSessionOp dispatches a session-scoped composition request to the
// attached engine.
func (s *Server) handleSessionOp(req Request) Response {
	comp := s.composer()
	if comp == nil {
		return Response{Error: "control: no composable engine attached"}
	}
	id64, err := strconv.ParseUint(req.Session, 10, 32)
	if err != nil {
		return Response{Error: fmt.Sprintf("control: session ID %q: %v", req.Session, err)}
	}
	id := uint32(id64)
	var chain string
	switch req.Op {
	case OpRecompose:
		chain, err = comp.RecomposeSession(id, req.Receiver, req.Chain)
	case OpInsert:
		chain, err = comp.InsertSessionStage(id, req.Receiver, req.Stage, req.Position)
	case OpRemove:
		chain, err = comp.RemoveSessionStage(id, req.Receiver, req.Stage)
	case OpMove:
		chain, err = comp.MoveSessionStage(id, req.Receiver, req.Position, req.Target)
	default:
		return Response{Error: fmt.Sprintf("control: op %q does not take a session", req.Op)}
	}
	if err != nil {
		return Response{Error: err.Error()}
	}
	return Response{OK: true, Chain: chain}
}

// Handle executes one request against the managed proxies. It is exported so
// in-process callers (tests, raplets) can use the same dispatch logic as the
// network path.
func (s *Server) Handle(req Request) Response {
	if err := req.Validate(); err != nil {
		return Response{Error: err.Error()}
	}
	if req.Op == OpPing {
		return Response{OK: true, Names: s.proxyNames()}
	}
	if req.Op == OpSessions {
		return Response{OK: true, Sessions: s.sessionStats()}
	}
	if req.Op == OpStats {
		eng, shards := s.engineStats()
		if eng == nil {
			return Response{Error: "control: no engine attached"}
		}
		return Response{OK: true, Engine: eng, Shards: shards}
	}
	if req.Session != "" || req.Op == OpRecompose {
		return s.handleSessionOp(req)
	}
	p, err := s.lookup(req.Name)
	if err != nil {
		// An engine-only server has no proxies, but status and the kind
		// listing are still meaningful: reply from the engine.
		if req.Op == OpStatus && req.Name == "" {
			if stats := s.sessionStats(); stats != nil {
				return Response{OK: true, Sessions: stats}
			}
		}
		if req.Op == OpKinds && req.Name == "" {
			if comp := s.composer(); comp != nil {
				return Response{OK: true, Kinds: comp.Kinds()}
			}
		}
		return Response{Error: err.Error()}
	}
	switch req.Op {
	case OpStatus:
		st := p.Status()
		return Response{OK: true, Status: &st, Sessions: s.sessionStats()}
	case OpKinds:
		return Response{OK: true, Kinds: p.Registry().Kinds()}
	case OpInsert:
		if _, err := p.InsertSpec(req.Spec, req.Position); err != nil {
			return Response{Error: err.Error()}
		}
		st := p.Status()
		return Response{OK: true, Status: &st}
	case OpUpload:
		f, err := p.Registry().Build(req.Spec)
		if err != nil {
			return Response{Error: err.Error()}
		}
		p.Container().Add(f)
		return Response{OK: true, Names: p.Container().Names()}
	case OpRemove:
		if req.Spec.Name != "" {
			if _, err := p.RemoveFilterByName(req.Spec.Name); err != nil {
				return Response{Error: err.Error()}
			}
		} else if _, err := p.RemoveFilter(req.Position); err != nil {
			return Response{Error: err.Error()}
		}
		st := p.Status()
		return Response{OK: true, Status: &st}
	case OpMove:
		if err := p.MoveFilter(req.Position, req.Target); err != nil {
			return Response{Error: err.Error()}
		}
		st := p.Status()
		return Response{OK: true, Status: &st}
	default:
		return Response{Error: fmt.Sprintf("control: unknown op %q", req.Op)}
	}
}

// Close stops accepting connections and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}
