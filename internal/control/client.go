package control

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"rapidware/internal/core"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
)

// Client is the programmatic ControlManager: it connects to a proxy's control
// server and drives the management operations. A Client is safe for
// concurrent use; requests are serialized over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a control server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("control: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and decodes its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("control: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("control: receive: %w", err)
	}
	if !resp.OK {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// Ping verifies the server is reachable and returns the managed proxy names.
func (c *Client) Ping() ([]string, error) {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Status fetches the status of the named proxy ("" selects the only proxy).
func (c *Client) Status(proxy string) (*core.Status, error) {
	resp, err := c.roundTrip(Request{Op: OpStatus, Name: proxy})
	if err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// Sessions fetches the per-session relay counters of the engine attached to
// the server (empty when the server has no engine or no live sessions).
func (c *Client) Sessions() ([]metrics.SessionStats, error) {
	resp, err := c.roundTrip(Request{Op: OpSessions})
	if err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// Stats fetches the attached engine's aggregate counters and per-shard
// breakdown. It fails when the server has no engine attached.
func (c *Client) Stats() (*metrics.EngineStats, []metrics.ShardStats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return nil, nil, err
	}
	return resp.Engine, resp.Shards, nil
}

// Kinds lists the filter kinds the named proxy can instantiate.
func (c *Client) Kinds(proxy string) ([]string, error) {
	resp, err := c.roundTrip(Request{Op: OpKinds, Name: proxy})
	if err != nil {
		return nil, err
	}
	return resp.Kinds, nil
}

// Insert builds spec on the proxy and splices it in at position pos.
func (c *Client) Insert(proxy string, spec filter.Spec, pos int) (*core.Status, error) {
	resp, err := c.roundTrip(Request{Op: OpInsert, Name: proxy, Spec: spec, Position: pos})
	if err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// Upload stores spec in the proxy's filter container without inserting it.
func (c *Client) Upload(proxy string, spec filter.Spec) ([]string, error) {
	resp, err := c.roundTrip(Request{Op: OpUpload, Name: proxy, Spec: spec})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Remove removes the filter at position pos.
func (c *Client) Remove(proxy string, pos int) (*core.Status, error) {
	resp, err := c.roundTrip(Request{Op: OpRemove, Name: proxy, Position: pos})
	if err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// RemoveByName removes the first filter with the given instance name.
func (c *Client) RemoveByName(proxy, filterName string) (*core.Status, error) {
	resp, err := c.roundTrip(Request{Op: OpRemove, Name: proxy, Position: -1, Spec: filter.Spec{Name: filterName}})
	if err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// Move relocates a filter from one interior position to another.
func (c *Client) Move(proxy string, from, to int) (*core.Status, error) {
	resp, err := c.roundTrip(Request{Op: OpMove, Name: proxy, Position: from, Target: to})
	if err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// sessionKey renders a session ID for the wire (decimal, so ID 0 is
// distinguishable from "no session").
func sessionKey(session uint32) string {
	return strconv.FormatUint(uint64(session), 10)
}

// Compose atomically rewrites a live engine session's chain to the full
// target spec; receiver (optional) narrows the rewrite to the delivery
// branch serving that fan-out member. It returns the canonical plan string
// after the rewrite.
func (c *Client) Compose(session uint32, receiver, spec string) (string, error) {
	resp, err := c.roundTrip(Request{Op: OpRecompose, Session: sessionKey(session), Receiver: receiver, Chain: spec})
	if err != nil {
		return "", err
	}
	return resp.Chain, nil
}

// SessionInsert splices one stage (spec syntax, e.g. "delay=5ms") into a
// live engine session's chain at the given plan position.
func (c *Client) SessionInsert(session uint32, receiver, stage string, pos int) (string, error) {
	resp, err := c.roundTrip(Request{Op: OpInsert, Session: sessionKey(session), Receiver: receiver, Stage: stage, Position: pos})
	if err != nil {
		return "", err
	}
	return resp.Chain, nil
}

// SessionRemove removes a stage from a live engine session's chain; sel is a
// plan position or a stage kind.
func (c *Client) SessionRemove(session uint32, receiver, sel string) (string, error) {
	resp, err := c.roundTrip(Request{Op: OpRemove, Session: sessionKey(session), Receiver: receiver, Stage: sel})
	if err != nil {
		return "", err
	}
	return resp.Chain, nil
}

// SessionMove relocates a stage between plan positions of a live engine
// session's chain, preserving its running instance.
func (c *Client) SessionMove(session uint32, receiver string, from, to int) (string, error) {
	resp, err := c.roundTrip(Request{Op: OpMove, Session: sessionKey(session), Receiver: receiver, Position: from, Target: to})
	if err != nil {
		return "", err
	}
	return resp.Chain, nil
}

// Manager aggregates clients for several proxies, the multi-proxy management
// view of the paper's ControlManager GUI.
type Manager struct {
	mu      sync.Mutex
	clients map[string]*Client
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{clients: make(map[string]*Client)}
}

// Connect dials a control server and registers it under the given label.
func (m *Manager) Connect(label, addr string, timeout time.Duration) error {
	c, err := Dial(addr, timeout)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.clients[label]; ok {
		old.Close()
	}
	m.clients[label] = c
	return nil
}

// Client returns the client registered under label.
func (m *Manager) Client(label string) (*Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.clients[label]
	if !ok {
		return nil, fmt.Errorf("control: no proxy registered as %q", label)
	}
	return c, nil
}

// Labels returns the registered labels.
func (m *Manager) Labels() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.clients))
	for l := range m.clients {
		out = append(out, l)
	}
	return out
}

// Close closes every registered client.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.clients {
		c.Close()
	}
	m.clients = make(map[string]*Client)
}
