package control

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rapidware/internal/core"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
)

func newManagedProxy(name string) *core.Proxy {
	p := core.New(name)
	// Endpoints that neither produce nor consume keep the chain valid for
	// management-plane tests without moving data.
	if err := p.SetEndpoints(filter.NewNull("in"), filter.NewNull("out")); err != nil {
		panic(err)
	}
	return p
}

func startServer(t *testing.T, proxies ...*core.Proxy) (*Server, string) {
	t.Helper()
	s := NewServer(nil, proxies...)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		req Request
		ok  bool
	}{
		{Request{Op: OpStatus}, true},
		{Request{Op: OpPing}, true},
		{Request{Op: OpKinds}, true},
		{Request{Op: OpInsert, Spec: filter.Spec{Kind: "null"}}, true},
		{Request{Op: OpInsert}, false},
		{Request{Op: OpUpload}, false},
		{Request{Op: OpRemove, Position: 1}, true},
		{Request{Op: OpRemove, Position: -1}, false},
		{Request{Op: OpRemove, Position: -1, Spec: filter.Spec{Name: "x"}}, true},
		{Request{Op: OpMove}, true},
		{Request{Op: Op("bogus")}, false},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.req, err, c.ok)
		}
	}
}

func TestHandleUnknownOpAndProxy(t *testing.T) {
	s := NewServer(nil, newManagedProxy("p1"))
	if resp := s.Handle(Request{Op: Op("bogus")}); resp.OK {
		t.Fatal("unknown op should fail")
	}
	if resp := s.Handle(Request{Op: OpStatus, Name: "missing"}); resp.OK {
		t.Fatal("unknown proxy should fail")
	}
	// Two proxies and no name is ambiguous.
	s.AddProxy(newManagedProxy("p2"))
	if resp := s.Handle(Request{Op: OpStatus}); resp.OK {
		t.Fatal("ambiguous proxy selection should fail")
	}
}

func TestClientServerStatusAndKinds(t *testing.T) {
	p := newManagedProxy("edge-proxy")
	_, addr := startServer(t, p)
	c := dialClient(t, addr)

	names, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "edge-proxy" {
		t.Fatalf("Ping names = %v", names)
	}
	st, err := c.Status("")
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "edge-proxy" || len(st.Filters) != 2 {
		t.Fatalf("Status = %+v", st)
	}
	kinds, err := c.Kinds("")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 || !contains(kinds, "null") {
		t.Fatalf("Kinds = %v", kinds)
	}
}

func TestClientServerInsertRemoveMove(t *testing.T) {
	p := newManagedProxy("edge")
	_, addr := startServer(t, p)
	c := dialClient(t, addr)

	st, err := c.Insert("", filter.Spec{Kind: "counting", Name: "tap"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Filters) != 3 || st.Filters[1].Name != "tap" {
		t.Fatalf("after insert: %+v", st.Filters)
	}
	st, err = c.Insert("", filter.Spec{Kind: "checksum", Name: "sum"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Filters[2].Name != "sum" {
		t.Fatalf("after second insert: %+v", st.Filters)
	}
	st, err = c.Move("", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Filters[1].Name != "sum" || st.Filters[2].Name != "tap" {
		t.Fatalf("after move: %+v", st.Filters)
	}
	st, err = c.RemoveByName("", "sum")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Filters) != 3 {
		t.Fatalf("after remove by name: %+v", st.Filters)
	}
	st, err = c.Remove("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Filters) != 2 {
		t.Fatalf("after remove: %+v", st.Filters)
	}
	// Errors propagate as errors with the server's message.
	if _, err := c.Insert("", filter.Spec{Kind: "no-such-kind"}, 1); err == nil {
		t.Fatal("expected error for unknown kind")
	} else if !strings.Contains(err.Error(), "unknown filter kind") {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Remove("", 99); err == nil {
		t.Fatal("expected error for bad position")
	}
}

func TestClientServerUpload(t *testing.T) {
	p := newManagedProxy("up")
	_, addr := startServer(t, p)
	c := dialClient(t, addr)
	names, err := c.Upload("", filter.Spec{Kind: "delay", Name: "later", Params: map[string]string{"ms": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "later" {
		t.Fatalf("Upload names = %v", names)
	}
	if p.Container().Count() != 1 {
		t.Fatal("uploaded filter not in container")
	}
}

func TestManagerMultipleProxies(t *testing.T) {
	pa, pb := newManagedProxy("proxy-a"), newManagedProxy("proxy-b")
	_, addrA := startServer(t, pa)
	_, addrB := startServer(t, pb)

	m := NewManager()
	defer m.Close()
	if err := m.Connect("a", addrA, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Connect("b", addrB, time.Second); err != nil {
		t.Fatal(err)
	}
	if len(m.Labels()) != 2 {
		t.Fatalf("Labels = %v", m.Labels())
	}
	ca, err := m.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	st, err := ca.Status("")
	if err != nil || st.Name != "proxy-a" {
		t.Fatalf("Status via manager = %+v, %v", st, err)
	}
	if _, err := m.Client("missing"); err == nil {
		t.Fatal("expected error for unknown label")
	}
	// Reconnecting under the same label replaces the old client.
	if err := m.Connect("a", addrB, time.Second); err != nil {
		t.Fatal(err)
	}
	ca, _ = m.Client("a")
	st, _ = ca.Status("")
	if st.Name != "proxy-b" {
		t.Fatalf("relabelled client status = %+v", st)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestManagerConnectFailure(t *testing.T) {
	m := NewManager()
	defer m.Close()
	if err := m.Connect("x", "127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Fatal("expected connect error")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, _ := startServer(t, newManagedProxy("p"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// stubSessions is a fixed SessionSource for testing the engine plumbing.
type stubSessions []metrics.SessionStats

func (s stubSessions) SessionStats() []metrics.SessionStats { return s }

func TestSessionsOverTheWire(t *testing.T) {
	stats := stubSessions{
		{ID: 1, Packets: 10, Bytes: 1000, OutPackets: 9, OutBytes: 900, Repairs: 2, Drops: 1},
		{ID: 7, Packets: 3, Bytes: 300},
	}
	s, addr := startServer(t, newManagedProxy("p1"))
	s.SetSessionSource(stats)
	c := dialClient(t, addr)

	got, err := c.Sessions()
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[0].Repairs != 2 || got[1].ID != 7 {
		t.Fatalf("Sessions = %+v", got)
	}
	// Status replies fold the session stats in alongside the proxy status.
	resp := s.Handle(Request{Op: OpStatus, Name: "p1"})
	if !resp.OK || resp.Status == nil || len(resp.Sessions) != 2 {
		t.Fatalf("status reply missing sessions: %+v", resp)
	}
}

// stubEngine is a fixed EngineSource for testing the stats plumbing.
type stubEngine struct {
	stubSessions
	engine metrics.EngineStats
	shards []metrics.ShardStats
}

func (s stubEngine) EngineStats() metrics.EngineStats { return s.engine }
func (s stubEngine) ShardStats() []metrics.ShardStats { return s.shards }

func TestStatsOverTheWire(t *testing.T) {
	src := stubEngine{
		engine: metrics.EngineStats{ActiveSessions: 2, TotalSessions: 5, Datagrams: 100, Shards: 4, BatchedWrites: 90, WriteFlushes: 30},
		shards: []metrics.ShardStats{{Shard: 0, Sessions: 1, Datagrams: 60}, {Shard: 1, Sessions: 1, Datagrams: 40}},
	}
	s, addr := startServer(t, newManagedProxy("p1"))
	s.SetSessionSource(src)
	c := dialClient(t, addr)

	eng, shards, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if eng == nil || eng.Shards != 4 || eng.Datagrams != 100 || eng.BatchedWrites != 90 {
		t.Fatalf("engine stats = %+v", eng)
	}
	if len(shards) != 2 || shards[0].Datagrams != 60 || shards[1].Shard != 1 {
		t.Fatalf("shard stats = %+v", shards)
	}
}

func TestStatsWithoutEngine(t *testing.T) {
	// A plain SessionSource (no shard plane) cannot answer stats.
	s, addr := startServer(t, newManagedProxy("p1"))
	s.SetSessionSource(stubSessions{{ID: 1}})
	c := dialClient(t, addr)
	if _, _, err := c.Stats(); err == nil {
		t.Fatal("Stats succeeded without an engine attached")
	}
}

func TestSessionsWithoutSource(t *testing.T) {
	_, addr := startServer(t, newManagedProxy("p1"))
	c := dialClient(t, addr)
	got, err := c.Sessions()
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Sessions = %+v, want empty", got)
	}
}

func TestEngineOnlyStatus(t *testing.T) {
	// A server with no proxies but a session source still answers status.
	s := NewServer(nil)
	s.SetSessionSource(stubSessions{{ID: 3, Packets: 1}})
	resp := s.Handle(Request{Op: OpStatus})
	if !resp.OK || len(resp.Sessions) != 1 || resp.Sessions[0].ID != 3 {
		t.Fatalf("engine-only status = %+v", resp)
	}
}

// stubComposer records session-scoped composition calls.
type stubComposer struct {
	stubSessions
	kinds    []string
	lastCall string
	lastID   uint32
	lastRx   string
	failWith error
}

func (s *stubComposer) Kinds() []string { return s.kinds }

func (s *stubComposer) RecomposeSession(id uint32, receiver, target string) (string, error) {
	s.lastCall, s.lastID, s.lastRx = "recompose:"+target, id, receiver
	if s.failWith != nil {
		return "", s.failWith
	}
	return target, nil
}

func (s *stubComposer) InsertSessionStage(id uint32, receiver, stage string, pos int) (string, error) {
	s.lastCall, s.lastID, s.lastRx = fmt.Sprintf("insert:%s@%d", stage, pos), id, receiver
	return stage, nil
}

func (s *stubComposer) RemoveSessionStage(id uint32, receiver, sel string) (string, error) {
	s.lastCall, s.lastID, s.lastRx = "remove:"+sel, id, receiver
	return "", nil
}

func (s *stubComposer) MoveSessionStage(id uint32, receiver string, from, to int) (string, error) {
	s.lastCall, s.lastID, s.lastRx = fmt.Sprintf("move:%d->%d", from, to), id, receiver
	return "moved", nil
}

func TestSessionComposeOverTheWire(t *testing.T) {
	comp := &stubComposer{kinds: []string{"counting", "fec-adapt"}}
	s, addr := startServer(t)
	s.SetSessionSource(comp)
	c := dialClient(t, addr)

	chain, err := c.Compose(7, "", "counting,thin=2")
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	if chain != "counting,thin=2" || comp.lastID != 7 || comp.lastCall != "recompose:counting,thin=2" {
		t.Fatalf("compose dispatch: chain=%q call=%q id=%d", chain, comp.lastCall, comp.lastID)
	}
	// Session 0 is addressable (the ID travels as a string).
	if _, err := c.Compose(0, "10.0.0.1:9000", ""); err != nil {
		t.Fatalf("Compose session 0: %v", err)
	}
	if comp.lastID != 0 || comp.lastRx != "10.0.0.1:9000" {
		t.Fatalf("session-0 dispatch: id=%d rx=%q", comp.lastID, comp.lastRx)
	}

	if chain, err = c.SessionInsert(9, "", "delay=5ms", 1); err != nil || chain != "delay=5ms" {
		t.Fatalf("SessionInsert = %q, %v", chain, err)
	}
	if comp.lastCall != "insert:delay=5ms@1" {
		t.Fatalf("insert dispatch: %q", comp.lastCall)
	}
	if _, err = c.SessionRemove(9, "", "counting"); err != nil {
		t.Fatalf("SessionRemove: %v", err)
	}
	if comp.lastCall != "remove:counting" {
		t.Fatalf("remove dispatch: %q", comp.lastCall)
	}
	if chain, err = c.SessionMove(9, "", 0, 2); err != nil || chain != "moved" {
		t.Fatalf("SessionMove = %q, %v", chain, err)
	}
	if comp.lastCall != "move:0->2" {
		t.Fatalf("move dispatch: %q", comp.lastCall)
	}

	// Engine-only servers answer the kind listing from the composer.
	kinds, err := c.Kinds("")
	if err != nil {
		t.Fatalf("Kinds: %v", err)
	}
	if !contains(kinds, "fec-adapt") {
		t.Fatalf("Kinds = %v", kinds)
	}

	// Composer errors propagate to the client.
	comp.failWith = errors.New("engine: unknown session")
	if _, err := c.Compose(404, "", "counting"); err == nil || !strings.Contains(err.Error(), "unknown session") {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestSessionComposeWithoutComposer(t *testing.T) {
	s, _ := startServer(t, newManagedProxy("p1"))
	resp := s.Handle(Request{Op: OpRecompose, Session: "1", Chain: "counting"})
	if resp.OK || !strings.Contains(resp.Error, "no composable engine") {
		t.Fatalf("recompose without composer = %+v", resp)
	}
	resp = s.Handle(Request{Op: OpInsert, Session: "zzz", Stage: "counting"})
	if resp.OK || !strings.Contains(resp.Error, "no composable engine") {
		t.Fatalf("bad-session insert = %+v", resp)
	}
	s.SetSessionSource(&stubComposer{})
	resp = s.Handle(Request{Op: OpInsert, Session: "zzz", Stage: "counting"})
	if resp.OK || !strings.Contains(resp.Error, "session ID") {
		t.Fatalf("unparsable session ID = %+v", resp)
	}
}

func TestSessionRequestValidation(t *testing.T) {
	bad := []Request{
		{Op: OpRecompose},            // missing session
		{Op: OpInsert, Session: "1"}, // missing stage
		{Op: OpRemove, Session: "1"}, // missing selector
	}
	for _, req := range bad {
		if err := req.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted an invalid request", req)
		}
	}
	good := []Request{
		{Op: OpRecompose, Session: "0"}, // empty Chain = pure relay
		{Op: OpInsert, Session: "1", Stage: "counting"},
		{Op: OpRemove, Session: "1", Stage: "0"},
		{Op: OpMove, Session: "1"},
	}
	for _, req := range good {
		if err := req.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v", req, err)
		}
	}
}
