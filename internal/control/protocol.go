// Package control implements the RAPIDware management plane: a JSON-over-TCP
// control protocol through which an administrator (the paper's Swing-based
// ControlManager GUI, here a programmatic client and the rapidctl CLI) or an
// application can query a proxy's state and insert, remove and reorder
// filters on its running streams.
//
// The paper delivered new filters by Java object serialization; Go cannot
// load code at run time, so the protocol transports filter *specs* (a
// registered kind plus parameters) that the proxy instantiates locally. See
// DESIGN.md for the substitution note.
package control

import (
	"fmt"

	"rapidware/internal/core"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
)

// Op enumerates the control operations.
type Op string

// Control operations.
const (
	// OpStatus returns the proxy's Status.
	OpStatus Op = "status"
	// OpKinds lists the filter kinds the proxy can instantiate.
	OpKinds Op = "kinds"
	// OpInsert builds a filter from Spec and inserts it at Position.
	OpInsert Op = "insert"
	// OpRemove removes the filter at Position (or by Name when Position < 0).
	OpRemove Op = "remove"
	// OpMove relocates a filter from Position to Target.
	OpMove Op = "move"
	// OpUpload stores a filter spec in the proxy's container without
	// inserting it, mirroring the paper's upload-then-insert workflow.
	OpUpload Op = "upload"
	// OpPing verifies liveness.
	OpPing Op = "ping"
	// OpSessions returns the per-session relay counters of the attached
	// multi-session engine, including each session's owning data-plane shard,
	// its adaptation-plane state (current (n,k), last loss report, retune
	// count) when the engine runs with the closed loop enabled, and — on
	// fan-out sessions with per-receiver delivery branches — the receiver
	// breakdown: each branch's counters, filter tail and protection level.
	OpSessions Op = "sessions"
	// OpStats returns the attached engine's aggregate counters and a
	// per-shard breakdown of its data plane.
	OpStats Op = "stats"
)

// Request is one control-plane command.
type Request struct {
	Op       Op          `json:"op"`
	Spec     filter.Spec `json:"spec,omitempty"`
	Position int         `json:"position,omitempty"`
	Target   int         `json:"target,omitempty"`
	Name     string      `json:"name,omitempty"`
}

// Response is the reply to a Request.
type Response struct {
	OK       bool                   `json:"ok"`
	Error    string                 `json:"error,omitempty"`
	Status   *core.Status           `json:"status,omitempty"`
	Kinds    []string               `json:"kinds,omitempty"`
	Names    []string               `json:"names,omitempty"`
	Sessions []metrics.SessionStats `json:"sessions,omitempty"`
	Engine   *metrics.EngineStats   `json:"engine,omitempty"`
	Shards   []metrics.ShardStats   `json:"shards,omitempty"`
}

// Validate checks a request for obvious problems before dispatch.
func (r Request) Validate() error {
	switch r.Op {
	case OpStatus, OpKinds, OpPing, OpSessions, OpStats:
		return nil
	case OpInsert, OpUpload:
		if r.Spec.Kind == "" {
			return fmt.Errorf("control: %s requires a filter spec", r.Op)
		}
		return nil
	case OpRemove:
		if r.Position < 0 && r.Spec.Name == "" {
			return fmt.Errorf("control: remove requires a position or a filter name")
		}
		return nil
	case OpMove:
		return nil
	default:
		return fmt.Errorf("control: unknown op %q", r.Op)
	}
}
