// Package control implements the RAPIDware management plane: a JSON-over-TCP
// control protocol through which an administrator (the paper's Swing-based
// ControlManager GUI, here a programmatic client and the rapidctl CLI) or an
// application can query a proxy's state and insert, remove and reorder
// filters on its running streams.
//
// The paper delivered new filters by Java object serialization; Go cannot
// load code at run time, so the protocol transports filter *specs* (a
// registered kind plus parameters) that the proxy instantiates locally. See
// DESIGN.md for the substitution note.
package control

import (
	"fmt"

	"rapidware/internal/core"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
)

// Op enumerates the control operations.
type Op string

// Control operations.
const (
	// OpStatus returns the proxy's Status.
	OpStatus Op = "status"
	// OpKinds lists the filter kinds the proxy can instantiate.
	OpKinds Op = "kinds"
	// OpInsert builds a filter from Spec and inserts it at Position.
	OpInsert Op = "insert"
	// OpRemove removes the filter at Position (or by Name when Position < 0).
	OpRemove Op = "remove"
	// OpMove relocates a filter from Position to Target.
	OpMove Op = "move"
	// OpUpload stores a filter spec in the proxy's container without
	// inserting it, mirroring the paper's upload-then-insert workflow.
	OpUpload Op = "upload"
	// OpPing verifies liveness.
	OpPing Op = "ping"
	// OpSessions returns the per-session relay counters of the attached
	// multi-session engine, including each session's owning data-plane shard,
	// its composed chain (canonical plan string plus a per-stage view), its
	// adaptation-plane state (current (n,k), last loss report, retune
	// count) when the engine runs with the closed loop enabled, and — on
	// fan-out sessions with per-receiver delivery branches — the receiver
	// breakdown: each branch's counters, filter tail and protection level.
	OpSessions Op = "sessions"
	// OpStats returns the attached engine's aggregate counters and a
	// per-shard breakdown of its data plane.
	OpStats Op = "stats"
	// OpRecompose atomically rewrites a live engine session's chain to the
	// full target spec in Chain (Session selects the session; Receiver
	// optionally selects one delivery branch). Stages the current plan
	// already contains keep their running instances; the rest are built and
	// the drop-outs stopped, in one splice that never drops relayed data.
	OpRecompose Op = "recompose"
)

// Request is one control-plane command.
type Request struct {
	Op       Op          `json:"op"`
	Spec     filter.Spec `json:"spec,omitempty"`
	Position int         `json:"position,omitempty"`
	Target   int         `json:"target,omitempty"`
	Name     string      `json:"name,omitempty"`
	// Session addresses a live engine session by wire ID (decimal string, so
	// session 0 is distinguishable from "no session"). When set, OpInsert,
	// OpRemove, OpMove and OpRecompose act on that session's composed chain
	// instead of a legacy proxy.
	Session string `json:"session,omitempty"`
	// Receiver optionally narrows a session-scoped operation to the delivery
	// branch serving one fan-out receiver (its UDP address).
	Receiver string `json:"receiver,omitempty"`
	// Stage is a one-stage spec ("kind" or "kind=arg") for session-scoped
	// OpInsert, or a stage selector (plan position or kind) for OpRemove.
	Stage string `json:"stage,omitempty"`
	// Chain is OpRecompose's full target spec (may be empty: a pure relay).
	Chain string `json:"chain,omitempty"`
}

// Response is the reply to a Request.
type Response struct {
	OK       bool                   `json:"ok"`
	Error    string                 `json:"error,omitempty"`
	Status   *core.Status           `json:"status,omitempty"`
	Kinds    []string               `json:"kinds,omitempty"`
	Names    []string               `json:"names,omitempty"`
	Sessions []metrics.SessionStats `json:"sessions,omitempty"`
	Engine   *metrics.EngineStats   `json:"engine,omitempty"`
	Shards   []metrics.ShardStats   `json:"shards,omitempty"`
	// Chain is the canonical plan string of the addressed session chain
	// after a session-scoped composition operation.
	Chain string `json:"chain,omitempty"`
}

// Validate checks a request for obvious problems before dispatch.
func (r Request) Validate() error {
	switch r.Op {
	case OpStatus, OpKinds, OpPing, OpSessions, OpStats:
		return nil
	case OpRecompose:
		if r.Session == "" {
			return fmt.Errorf("control: recompose requires a session ID")
		}
		return nil
	case OpInsert:
		if r.Session != "" {
			if r.Stage == "" {
				return fmt.Errorf("control: session insert requires a stage spec")
			}
			return nil
		}
		if r.Spec.Kind == "" {
			return fmt.Errorf("control: %s requires a filter spec", r.Op)
		}
		return nil
	case OpUpload:
		if r.Spec.Kind == "" {
			return fmt.Errorf("control: %s requires a filter spec", r.Op)
		}
		return nil
	case OpRemove:
		if r.Session != "" {
			if r.Stage == "" {
				return fmt.Errorf("control: session remove requires a stage selector (position or kind)")
			}
			return nil
		}
		if r.Position < 0 && r.Spec.Name == "" {
			return fmt.Errorf("control: remove requires a position or a filter name")
		}
		return nil
	case OpMove:
		return nil
	default:
		return fmt.Errorf("control: unknown op %q", r.Op)
	}
}
