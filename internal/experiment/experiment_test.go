package experiment

import (
	"strings"
	"testing"

	"rapidware/internal/fec"
)

func TestRunFigure7MatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 7 reproduction is long")
	}
	cfg := DefaultFigure7Config()
	cfg.AudioSeconds = 30 // shorter than the paper's trace but same behaviour
	res, err := RunFigure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent != 1500 { // 30 s / 20 ms
		t.Fatalf("DataSent = %d, want 1500", res.DataSent)
	}
	// The paper's qualitative result: raw receipt already high (≈98.5%), FEC
	// brings it to ≈100%. Require the same shape within generous tolerance.
	if res.ReceivedRate < 0.95 || res.ReceivedRate > 0.999 {
		t.Fatalf("ReceivedRate = %v, want high-but-lossy (~0.985)", res.ReceivedRate)
	}
	if res.ReconstructedRate < res.ReceivedRate {
		t.Fatal("FEC made delivery worse")
	}
	if res.ReconstructedRate < 0.995 {
		t.Fatalf("ReconstructedRate = %v, want ~1.0", res.ReconstructedRate)
	}
	if res.Overhead < 1.4 || res.Overhead > 1.6 {
		t.Fatalf("Overhead = %v, want ~1.5", res.Overhead)
	}
	if len(res.Series) == 0 {
		t.Fatal("empty series")
	}
	out := res.Format()
	for _, want := range []string{"Figure 7", "%received", "paper:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure7DefaultsApplied(t *testing.T) {
	res, err := RunFigure7(Figure7Config{Seed: 3, FEC: fec.Params{K: 2, N: 3}, DistanceMetres: 25, MeanBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent != 500 { // default 10 s at 20 ms
		t.Fatalf("DataSent = %d, want 500", res.DataSent)
	}
}

func TestRunDistanceSweepMonotonicLoss(t *testing.T) {
	cfg := DefaultDistanceSweepConfig()
	cfg.AudioSeconds = 8
	points, err := RunDistanceSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cfg.Distances) {
		t.Fatalf("points = %d", len(points))
	}
	// Model loss must increase with distance, and the far points must show
	// "dramatic" degradation relative to the near ones.
	for i := 1; i < len(points); i++ {
		if points[i].ModelLossRate < points[i-1].ModelLossRate {
			t.Fatalf("model loss not monotonic at %v m", points[i].DistanceMetres)
		}
	}
	near := points[0]
	far := points[len(points)-1]
	if far.RawReceivedRate >= near.RawReceivedRate {
		t.Fatal("far receiver should see more raw loss than near receiver")
	}
	if far.RawReceivedRate > 0.8 {
		t.Fatalf("far raw rate = %v, want dramatic loss", far.RawReceivedRate)
	}
	// FEC helps at every distance.
	for _, p := range points {
		if p.FECDeliveredRate < p.RawReceivedRate {
			t.Fatalf("FEC hurt delivery at %v m", p.DistanceMetres)
		}
	}
	table := FormatDistanceSweep(points)
	if !strings.Contains(table, "metres") {
		t.Fatalf("table malformed:\n%s", table)
	}
}

func TestRunGroupSizeSweep(t *testing.T) {
	cfg := DefaultGroupSizeSweepConfig()
	cfg.AudioSeconds = 8
	cfg.Receivers = 2
	points, err := RunGroupSizeSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cfg.Codes) {
		t.Fatalf("points = %d", len(points))
	}
	byCode := map[string]GroupSizePoint{}
	for _, p := range points {
		byCode[p.Params.String()] = p
	}
	baseline := byCode["(1,1)"]
	paper := byCode["(6,4)"]
	if baseline.Overhead != 1 {
		t.Fatalf("baseline overhead = %v", baseline.Overhead)
	}
	if paper.DeliveredRate <= baseline.DeliveredRate {
		t.Fatal("(6,4) should beat the no-FEC baseline")
	}
	if paper.Overhead < 1.4 || paper.Overhead > 1.6 {
		t.Fatalf("(6,4) overhead = %v", paper.Overhead)
	}
	// Larger k means a longer group span (the latency/jitter cost the paper
	// cites for keeping groups small).
	if byCode["(12,8)"].GroupLatency <= byCode["(6,4)"].GroupLatency {
		t.Fatal("larger groups must span more time")
	}
	table := FormatGroupSizeSweep(points)
	if !strings.Contains(table, "(6,4)") {
		t.Fatalf("table missing paper code:\n%s", table)
	}
}

func TestRunLiveInsertion(t *testing.T) {
	cfg := LiveInsertionConfig{StreamBytes: 256 * 1024, Splices: 5, ChunkSize: 512}
	res, err := RunLiveInsertion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Intact {
		t.Fatal("stream corrupted by live insertions")
	}
	if res.BytesDelivered != cfg.StreamBytes {
		t.Fatalf("delivered %d bytes, want %d", res.BytesDelivered, cfg.StreamBytes)
	}
	if res.Insertions != 5 || res.Removals != 5 {
		t.Fatalf("splices = %d/%d", res.Insertions, res.Removals)
	}
	if res.InsertLatency.Count() != 5 || res.RemoveLatency.Count() != 5 {
		t.Fatal("latency histograms incomplete")
	}
	report := res.Format()
	if !strings.Contains(report, "stream intact         true") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestRunLiveInsertionDefaults(t *testing.T) {
	res, err := RunLiveInsertion(LiveInsertionConfig{StreamBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Insertions == 0 {
		t.Fatal("defaults did not apply")
	}
}

func TestRunAdaptiveWalk(t *testing.T) {
	res, err := RunAdaptiveWalk(DefaultAdaptiveWalkConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(res.Config.Path) {
		t.Fatalf("points = %d", len(res.Points))
	}
	// FEC must be off near the access point at the start, on during the far
	// legs, and off again by the end of the walk back.
	if res.Points[0].FECActive {
		t.Fatal("FEC active at the start of the walk")
	}
	farActive := false
	for _, p := range res.Points {
		if p.Leg.DistanceMetres >= 38 && p.FECActive {
			farActive = true
		}
	}
	if !farActive {
		t.Fatal("FEC never activated on the far legs")
	}
	if last := res.Points[len(res.Points)-1]; last.FECActive {
		t.Fatal("FEC still active after walking back to the access point")
	}
	if res.Insertions == 0 || res.Removals == 0 {
		t.Fatalf("insertions/removals = %d/%d", res.Insertions, res.Removals)
	}
	report := res.Format()
	if !strings.Contains(report, "FEC filter insertions") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestRunAdaptiveWalkEmptyConfigUsesDefaults(t *testing.T) {
	res, err := RunAdaptiveWalk(AdaptiveWalkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points with default config")
	}
}
