package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rapidware/internal/arq"
	"rapidware/internal/audio"
	"rapidware/internal/fec"
	"rapidware/internal/fecproxy"
	"rapidware/internal/packet"
	"rapidware/internal/wireless"
)

// RepairComparisonConfig parameterizes experiment E7: proactive FEC versus
// NACK-based retransmission (ARQ) versus no repair, over the same simulated
// wireless multicast channel. The paper argues for parity-based repair of
// multicast because a single parity packet fixes independent losses at
// different receivers; this experiment quantifies that argument against the
// obvious baseline.
type RepairComparisonConfig struct {
	// AudioSeconds is the workload length.
	AudioSeconds float64
	// DistanceMetres positions every receiver.
	DistanceMetres float64
	// MeanBurst is the channel's mean loss burst length.
	MeanBurst float64
	// Receivers is the number of wireless stations.
	Receivers int
	// FEC is the block code for the FEC arm.
	FEC fec.Params
	// MaxNACKRounds bounds ARQ repair (late audio is useless, so small).
	MaxNACKRounds int
	// PacketInterval is the audio duration per packet.
	PacketInterval time.Duration
	// Seed drives the loss processes.
	Seed int64
}

// DefaultRepairComparisonConfig compares the schemes at the paper's 25 m
// operating point and at a degraded 38 m point.
func DefaultRepairComparisonConfig() RepairComparisonConfig {
	return RepairComparisonConfig{
		AudioSeconds:   20,
		DistanceMetres: 25,
		MeanBurst:      1.2,
		Receivers:      3,
		FEC:            fec.Params{K: 4, N: 6},
		MaxNACKRounds:  2,
		PacketInterval: 20 * time.Millisecond,
		Seed:           31,
	}
}

// RepairPoint is one scheme's outcome.
type RepairPoint struct {
	// Scheme names the repair strategy ("none", "fec(6,4)", "arq-2").
	Scheme string
	// DeliveredRate is the mean fraction of audio packets usable across
	// receivers.
	DeliveredRate float64
	// WorstReceiver is the minimum across receivers.
	WorstReceiver float64
	// Overhead is total transmissions divided by data packets.
	Overhead float64
	// RepairDelay is the mean extra delay a repaired packet experiences:
	// for FEC, the remainder of its group; for ARQ, NACK round trips.
	RepairDelay time.Duration
}

// RepairComparisonResult reports experiment E7.
type RepairComparisonResult struct {
	Config RepairComparisonConfig
	Points []RepairPoint
}

// RunRepairComparison reproduces experiment E7.
func RunRepairComparison(cfg RepairComparisonConfig) (*RepairComparisonResult, error) {
	if cfg.AudioSeconds <= 0 {
		cfg.AudioSeconds = 10
	}
	if cfg.Receivers <= 0 {
		cfg.Receivers = 3
	}
	if cfg.PacketInterval <= 0 {
		cfg.PacketInterval = 20 * time.Millisecond
	}
	if cfg.MaxNACKRounds <= 0 {
		cfg.MaxNACKRounds = 2
	}
	format := audio.PaperFormat()
	pcm, err := audio.GenerateSpeechLike(format, time.Duration(cfg.AudioSeconds*float64(time.Second)), cfg.Seed)
	if err != nil {
		return nil, err
	}
	result := &RepairComparisonResult{Config: cfg}

	// --- Arm 1 and 2: no repair, and FEC, reuse the audio proxy pipeline. ---
	for _, arm := range []struct {
		scheme string
		params fec.Params
	}{
		{"none", fec.Params{K: 1, N: 1}},
		{fmt.Sprintf("fec%s", cfg.FEC), cfg.FEC},
	} {
		receivers := make([]fecproxy.ReceiverConfig, cfg.Receivers)
		for i := range receivers {
			receivers[i] = fecproxy.ReceiverConfig{
				Name:           fmt.Sprintf("rx-%d", i),
				DistanceMetres: cfg.DistanceMetres,
				MeanBurst:      cfg.MeanBurst,
			}
		}
		res, err := fecproxy.RunAudioProxy(fecproxy.AudioProxyConfig{
			Format:         format,
			FEC:            arm.params,
			PacketInterval: cfg.PacketInterval,
			Seed:           cfg.Seed,
			Receivers:      receivers,
		}, pcm)
		if err != nil {
			return nil, err
		}
		var sum, worst float64
		worst = 1
		for _, rx := range res.Receivers {
			rate := rx.ReconstructedRate()
			sum += rate
			if rate < worst {
				worst = rate
			}
		}
		var repairDelay time.Duration
		if arm.params.N > arm.params.K {
			// A repaired packet waits, on average, for half the remainder of
			// its group plus the parity packets to arrive.
			repairDelay = time.Duration(arm.params.K/2+arm.params.Parity()) * cfg.PacketInterval
		}
		result.Points = append(result.Points, RepairPoint{
			Scheme:        arm.scheme,
			DeliveredRate: sum / float64(len(res.Receivers)),
			WorstReceiver: worst,
			Overhead:      res.Overhead,
			RepairDelay:   repairDelay,
		})
	}

	// --- Arm 3: NACK-based ARQ over the same channel model. -----------------
	pktizer, err := audio.NewPacketizer(format, cfg.PacketInterval)
	if err != nil {
		return nil, err
	}
	payloads := pktizer.Split(pcm)

	channel := wireless.NewChannel(wireless.WaveLAN2Mbps())
	defer channel.Close()
	type arqReceiver struct {
		wireless *wireless.Receiver
		proto    *arq.Receiver
	}
	receivers := make([]*arqReceiver, cfg.Receivers)
	for i := range receivers {
		wr, err := channel.Attach(fmt.Sprintf("arq-rx-%d", i),
			wireless.NewDistanceLoss(cfg.DistanceMetres, cfg.MeanBurst),
			rand.New(rand.NewSource(cfg.Seed+int64(i)+1)), len(payloads)*4+16)
		if err != nil {
			return nil, err
		}
		receivers[i] = &arqReceiver{wireless: wr, proto: arq.NewReceiver(cfg.MaxNACKRounds)}
	}
	round := 0
	sender, err := arq.NewSender(len(payloads), func(p *packet.Packet) error {
		deliveries, berr := channel.Broadcast(p)
		if berr != nil {
			return berr
		}
		for i, d := range deliveries {
			if !d.Lost {
				receivers[i].proto.Deliver(d.Packet, round)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Original transmissions.
	for _, payload := range payloads {
		if _, err := sender.Send(payload); err != nil {
			return nil, err
		}
	}
	for _, r := range receivers {
		r.proto.ExpectUpTo(uint64(len(payloads)))
	}
	// Repair rounds: the union of all receivers' NACKs is retransmitted (a
	// single multicast retransmission can serve several receivers, the best
	// case for ARQ).
	for round = 1; round <= cfg.MaxNACKRounds; round++ {
		want := map[uint64]bool{}
		for _, r := range receivers {
			for _, seq := range r.proto.Missing() {
				want[seq] = true
			}
		}
		if len(want) == 0 {
			break
		}
		for seq := range want {
			if err := sender.Retransmit(seq); err != nil {
				return nil, err
			}
		}
	}
	var sum, worst, repairRoundsTotal float64
	var repaired int
	worst = 1
	for _, r := range receivers {
		rate := r.proto.DeliveredRate()
		sum += rate
		if rate < worst {
			worst = rate
		}
		_, recovered, _, meanRounds := r.proto.Stats()
		repaired += recovered
		repairRoundsTotal += meanRounds * float64(recovered)
	}
	sent, retx := sender.Stats()
	meanRounds := 0.0
	if repaired > 0 {
		meanRounds = repairRoundsTotal / float64(repaired)
	}
	// One NACK round trip costs at least the group's packet interval for the
	// request plus the retransmission's serialization; model it as two packet
	// intervals per round, a generous lower bound for a real WLAN.
	repairDelay := time.Duration(meanRounds * float64(2*cfg.PacketInterval))
	result.Points = append(result.Points, RepairPoint{
		Scheme:        fmt.Sprintf("arq-%d", cfg.MaxNACKRounds),
		DeliveredRate: sum / float64(len(receivers)),
		WorstReceiver: worst,
		Overhead:      float64(sent+retx) / float64(len(payloads)),
		RepairDelay:   repairDelay,
	})
	return result, nil
}

// Format renders the E7 table.
func (r *RepairComparisonResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E7 — repair scheme comparison at %.0f m, %d receivers\n",
		r.Config.DistanceMetres, r.Config.Receivers)
	fmt.Fprintf(&b, "%-12s %-12s %-12s %-10s %-14s\n", "scheme", "%delivered", "%worst-rx", "overhead", "repair-delay")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %-12.2f %-12.2f %-10.2f %-14s\n",
			p.Scheme, p.DeliveredRate*100, p.WorstReceiver*100, p.Overhead, p.RepairDelay)
	}
	return b.String()
}
