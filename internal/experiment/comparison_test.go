package experiment

import (
	"strings"
	"testing"
)

func TestRunRepairComparisonAtOperatingPoint(t *testing.T) {
	cfg := DefaultRepairComparisonConfig()
	cfg.AudioSeconds = 8
	cfg.Receivers = 2
	res, err := RunRepairComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3 (none, fec, arq)", len(res.Points))
	}
	byScheme := map[string]RepairPoint{}
	for _, p := range res.Points {
		byScheme[p.Scheme] = p
	}
	none, okNone := byScheme["none"]
	fecArm, okFEC := byScheme["fec(6,4)"]
	arqArm, okARQ := byScheme["arq-2"]
	if !okNone || !okFEC || !okARQ {
		t.Fatalf("missing schemes: %v", byScheme)
	}
	// Both repair schemes must beat no repair; FEC must reach ~full delivery
	// at the paper's operating point.
	if fecArm.DeliveredRate <= none.DeliveredRate {
		t.Fatal("FEC did not beat the no-repair baseline")
	}
	if arqArm.DeliveredRate <= none.DeliveredRate {
		t.Fatal("ARQ did not beat the no-repair baseline")
	}
	if fecArm.DeliveredRate < 0.995 {
		t.Fatalf("FEC delivered %v, want ~1.0 at 25 m", fecArm.DeliveredRate)
	}
	// Overheads: none = 1, FEC = n/k, ARQ modest at ~2% loss.
	if none.Overhead != 1 {
		t.Fatalf("no-repair overhead = %v", none.Overhead)
	}
	if fecArm.Overhead < 1.4 || fecArm.Overhead > 1.6 {
		t.Fatalf("FEC overhead = %v", fecArm.Overhead)
	}
	if arqArm.Overhead >= fecArm.Overhead {
		t.Fatalf("ARQ overhead (%v) should undercut FEC (%v) at low loss", arqArm.Overhead, fecArm.Overhead)
	}
	// Delay: no-repair repairs nothing; ARQ repairs arrive after NACK round
	// trips.
	if none.RepairDelay != 0 {
		t.Fatalf("no-repair delay = %v", none.RepairDelay)
	}
	if arqArm.RepairDelay <= 0 {
		t.Fatalf("ARQ repair delay = %v, want > 0", arqArm.RepairDelay)
	}
	table := res.Format()
	for _, want := range []string{"scheme", "fec(6,4)", "arq-2"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestRunRepairComparisonDegradedLink(t *testing.T) {
	cfg := DefaultRepairComparisonConfig()
	cfg.AudioSeconds = 6
	cfg.Receivers = 3
	cfg.DistanceMetres = 38 // ~15-20% loss: bounded ARQ starts leaving holes
	res, err := RunRepairComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]RepairPoint{}
	for _, p := range res.Points {
		byScheme[p.Scheme] = p
	}
	if byScheme["fec(6,4)"].DeliveredRate <= byScheme["none"].DeliveredRate {
		t.Fatal("FEC did not improve delivery on the degraded link")
	}
	// With several receivers losing different packets, ARQ's overhead grows
	// relative to the low-loss case because the union of NACKs is larger.
	if byScheme["arq-2"].Overhead <= 1.0 {
		t.Fatalf("ARQ overhead = %v, want > 1 on a lossy link", byScheme["arq-2"].Overhead)
	}
}

func TestRunRepairComparisonDefaults(t *testing.T) {
	res, err := RunRepairComparison(RepairComparisonConfig{AudioSeconds: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
}
