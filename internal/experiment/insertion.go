package experiment

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"rapidware/internal/core"
	"rapidware/internal/endpoint"
	"rapidware/internal/fec"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
	"rapidware/internal/raplet"
	"rapidware/internal/wireless"
)

// LiveInsertionConfig parameterizes experiment E3: filters inserted, removed
// and reordered on a live stream while its integrity is verified end to end,
// and the latency of each splice is measured.
type LiveInsertionConfig struct {
	// StreamBytes is the total volume pushed through the proxy.
	StreamBytes int
	// Splices is the number of insert/remove cycles performed while the
	// stream is flowing.
	Splices int
	// ChunkSize is the producer's write size (one "frame").
	ChunkSize int
}

// DefaultLiveInsertionConfig returns a configuration that keeps the stream
// alive long enough for tens of live splices.
func DefaultLiveInsertionConfig() LiveInsertionConfig {
	return LiveInsertionConfig{StreamBytes: 4 << 20, Splices: 20, ChunkSize: 1024}
}

// LiveInsertionResult reports experiment E3.
type LiveInsertionResult struct {
	Config         LiveInsertionConfig
	BytesDelivered int
	Intact         bool
	Insertions     int
	Removals       int
	InsertLatency  *metrics.Histogram
	RemoveLatency  *metrics.Histogram
}

// RunLiveInsertion reproduces experiment E3 using a full Proxy.
func RunLiveInsertion(cfg LiveInsertionConfig) (*LiveInsertionResult, error) {
	if cfg.StreamBytes <= 0 {
		cfg.StreamBytes = 1 << 20
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1024
	}
	if cfg.Splices <= 0 {
		cfg.Splices = 10
	}
	payload := make([]byte, cfg.StreamBytes)
	for i := range payload {
		payload[i] = byte(i*131 + i>>9)
	}

	var sink lockedBuffer
	proxy := core.New("live-insertion")
	in := endpoint.NewReader("in", &pacedReader{payload: payload, chunk: cfg.ChunkSize})
	out := endpoint.NewWriter("out", &sink)
	if err := proxy.SetEndpoints(in, out); err != nil {
		return nil, err
	}
	if err := proxy.Start(); err != nil {
		return nil, err
	}

	result := &LiveInsertionResult{
		Config:        cfg,
		InsertLatency: &metrics.Histogram{},
		RemoveLatency: &metrics.Histogram{},
	}
	for i := 0; i < cfg.Splices; i++ {
		name := fmt.Sprintf("splice-%d", i)
		f := filter.NewCounting(name)
		start := time.Now()
		if err := proxy.InsertFilter(f, 1); err != nil {
			return nil, fmt.Errorf("experiment: insert %d: %w", i, err)
		}
		result.InsertLatency.Observe(time.Since(start))
		result.Insertions++

		start = time.Now()
		if _, err := proxy.RemoveFilterByName(name); err != nil {
			return nil, fmt.Errorf("experiment: remove %d: %w", i, err)
		}
		result.RemoveLatency.Observe(time.Since(start))
		result.Removals++
	}

	// Wait for the stream to finish, then verify integrity.
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) && sink.Len() < len(payload) {
		time.Sleep(time.Millisecond)
	}
	if err := proxy.Stop(); err != nil {
		return nil, err
	}
	got := sink.Bytes()
	result.BytesDelivered = len(got)
	result.Intact = bytes.Equal(got, payload)
	return result, nil
}

// Format renders the E3 report.
func (r *LiveInsertionResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E3 — live filter insertion/removal on a running stream\n")
	fmt.Fprintf(&b, "stream bytes          %d\n", r.Config.StreamBytes)
	fmt.Fprintf(&b, "bytes delivered       %d\n", r.BytesDelivered)
	fmt.Fprintf(&b, "stream intact         %v\n", r.Intact)
	fmt.Fprintf(&b, "insertions/removals   %d/%d\n", r.Insertions, r.Removals)
	fmt.Fprintf(&b, "insert latency        %s\n", r.InsertLatency)
	fmt.Fprintf(&b, "remove latency        %s\n", r.RemoveLatency)
	return b.String()
}

// AdaptiveWalkConfig parameterizes the adaptive half of experiment E2: a user
// walks away from the access point while an observer/responder pair decides
// when to enable FEC on the live stream (the paper's §3 scenario).
type AdaptiveWalkConfig struct {
	// Path is the sequence of (distance, packets) legs of the walk.
	Path []WalkLeg
	// Threshold is the loss rate above which FEC is enabled.
	Threshold float64
	// Window is the loss observer's sliding window in packets.
	Window int
	// FEC is the code the responder inserts.
	FEC fec.Params
	// Seed drives the loss process.
	Seed int64
}

// WalkLeg is one segment of the simulated walk.
type WalkLeg struct {
	DistanceMetres float64
	Packets        int
}

// DefaultAdaptiveWalkConfig reproduces the office → conference-room walk.
func DefaultAdaptiveWalkConfig() AdaptiveWalkConfig {
	return AdaptiveWalkConfig{
		Path: []WalkLeg{
			{DistanceMetres: 5, Packets: 600},
			{DistanceMetres: 25, Packets: 600},
			{DistanceMetres: 38, Packets: 900},
			{DistanceMetres: 44, Packets: 900},
			{DistanceMetres: 25, Packets: 600},
			{DistanceMetres: 5, Packets: 900},
		},
		Threshold: 0.05,
		Window:    200,
		FEC:       fec.Params{K: 4, N: 6},
		Seed:      23,
	}
}

// AdaptiveWalkPoint is one leg's outcome.
type AdaptiveWalkPoint struct {
	Leg       WalkLeg
	LossRate  float64
	FECActive bool
}

// AdaptiveWalkResult reports the adaptive experiment.
type AdaptiveWalkResult struct {
	Config     AdaptiveWalkConfig
	Points     []AdaptiveWalkPoint
	Insertions uint64
	Removals   uint64
}

// RunAdaptiveWalk reproduces the demand-driven FEC scenario: the proxy starts
// as a null proxy; as the simulated user walks away and loss climbs past the
// threshold, the responder inserts the FEC encoder into the live chain, and
// removes it again when the user walks back.
func RunAdaptiveWalk(cfg AdaptiveWalkConfig) (*AdaptiveWalkResult, error) {
	if len(cfg.Path) == 0 {
		cfg = DefaultAdaptiveWalkConfig()
	}
	if cfg.Window <= 0 {
		cfg.Window = 200
	}

	proxy := core.New("adaptive-proxy")
	if err := proxy.SetEndpoints(filter.NewNull("wired-in"), filter.NewNull("wireless-out")); err != nil {
		return nil, err
	}
	if err := proxy.Start(); err != nil {
		return nil, err
	}
	defer proxy.Stop()

	bus := raplet.NewBus(256)
	responder, err := raplet.NewFECResponder("demand-fec", proxy, cfg.FEC, 1, cfg.Threshold)
	if err != nil {
		return nil, err
	}
	bus.Subscribe(raplet.EventLossRate, responder)
	if err := bus.Start(); err != nil {
		return nil, err
	}
	defer bus.Stop()
	observer := raplet.NewLossRateObserver("link-observer", bus, cfg.Window, cfg.Threshold, cfg.Threshold/2)

	result := &AdaptiveWalkResult{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, leg := range cfg.Path {
		model := wireless.NewDistanceLoss(leg.DistanceMetres, 1.2)
		lost := 0
		for i := 0; i < leg.Packets; i++ {
			dropped := model.Lost(rng)
			if dropped {
				lost++
			}
			observer.ObservePacket(!dropped)
		}
		// Give the bus time to dispatch the threshold-crossing events before
		// sampling the responder state for this leg.
		waitForDispatch(bus)
		result.Points = append(result.Points, AdaptiveWalkPoint{
			Leg:       leg,
			LossRate:  float64(lost) / float64(leg.Packets),
			FECActive: responder.Active(),
		})
	}
	result.Insertions, result.Removals = responder.Stats()
	if errs := bus.Errors(); len(errs) > 0 {
		return nil, errs[0]
	}
	return result, nil
}

// Format renders the adaptive walk table.
func (r *AdaptiveWalkResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2b — demand-driven FEC while roaming (threshold %.0f%% loss)\n", r.Config.Threshold*100)
	fmt.Fprintf(&b, "%-10s %-10s %-12s %-10s\n", "metres", "packets", "leg-loss", "FEC-active")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.0f %-10d %-12.3f %-10v\n", p.Leg.DistanceMetres, p.Leg.Packets, p.LossRate, p.FECActive)
	}
	fmt.Fprintf(&b, "FEC filter insertions=%d removals=%d\n", r.Insertions, r.Removals)
	return b.String()
}

// waitForDispatch gives the bus a short, bounded window to drain its queue
// before the caller samples responder state.
func waitForDispatch(bus *raplet.Bus) {
	_ = bus
	time.Sleep(25 * time.Millisecond)
}

// --- helpers -----------------------------------------------------------------

// lockedBuffer is a concurrency-safe bytes.Buffer sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

// Len returns the number of bytes written so far.
func (l *lockedBuffer) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Len()
}

// Bytes returns a copy of the collected bytes.
func (l *lockedBuffer) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf.Bytes()...)
}

// pacedReader emits a payload in fixed-size chunks with a tiny pause between
// them so the stream stays live while filters are spliced.
type pacedReader struct {
	payload []byte
	chunk   int
	off     int
}

func (p *pacedReader) Read(buf []byte) (int, error) {
	if p.off >= len(p.payload) {
		return 0, io.EOF
	}
	n := p.chunk
	if n > len(buf) {
		n = len(buf)
	}
	if p.off+n > len(p.payload) {
		n = len(p.payload) - p.off
	}
	copy(buf, p.payload[p.off:p.off+n])
	p.off += n
	time.Sleep(20 * time.Microsecond)
	return n, nil
}
