// Package experiment contains the reproducible experiment harness: one runner
// per table/figure of the paper (plus the ablations listed in DESIGN.md),
// each returning structured results and a formatted table matching what the
// paper plots. The cmd/fecbench binary and the top-level benchmarks are thin
// wrappers around these runners.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"rapidware/internal/audio"
	"rapidware/internal/fec"
	"rapidware/internal/fecproxy"
	"rapidware/internal/metrics"
	"rapidware/internal/wireless"
)

// Figure7Config parameterizes the reproduction of the paper's Figure 7: an
// audio stream FEC(6,4)-protected and multicast to a laptop 25 m from the
// access point on a 2 Mbps WLAN.
type Figure7Config struct {
	// AudioSeconds is the length of the synthesized audio stream. The paper's
	// trace covers ~5,400 packets ≈ 108 s at 20 ms per packet.
	AudioSeconds float64
	// DistanceMetres positions the receiver (paper: 25 m).
	DistanceMetres float64
	// MeanBurst is the mean loss burst length of the simulated channel.
	MeanBurst float64
	// FEC selects the block code (paper: (6,4)).
	FEC fec.Params
	// WindowSize is the number of packets per plotted point.
	WindowSize int
	// Seed makes the run reproducible.
	Seed int64
}

// DefaultFigure7Config returns the paper's operating point.
func DefaultFigure7Config() Figure7Config {
	return Figure7Config{
		AudioSeconds:   108,
		DistanceMetres: 25,
		MeanBurst:      1.2,
		FEC:            fec.Params{K: 4, N: 6},
		WindowSize:     432, // matches the paper's x-axis granularity
		Seed:           2001,
	}
}

// Figure7Result holds the reproduced series and headline rates.
type Figure7Result struct {
	Config             Figure7Config
	DataSent           int
	ReceivedRate       float64 // paper: 98.54 %
	ReconstructedRate  float64 // paper: 99.98 %
	Series             []metrics.TracePoint
	Overhead           float64
	PaperReceived      float64
	PaperReconstructed float64
}

// RunFigure7 reproduces Figure 7.
func RunFigure7(cfg Figure7Config) (*Figure7Result, error) {
	if cfg.AudioSeconds <= 0 {
		cfg.AudioSeconds = 10
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 432
	}
	format := audio.PaperFormat()
	pcm, err := audio.GenerateSpeechLike(format, time.Duration(cfg.AudioSeconds*float64(time.Second)), cfg.Seed)
	if err != nil {
		return nil, err
	}
	res, err := fecproxy.RunAudioProxy(fecproxy.AudioProxyConfig{
		Format: format,
		FEC:    cfg.FEC,
		Seed:   cfg.Seed,
		Receivers: []fecproxy.ReceiverConfig{{
			Name:           fmt.Sprintf("laptop-%.0fm", cfg.DistanceMetres),
			DistanceMetres: cfg.DistanceMetres,
			MeanBurst:      cfg.MeanBurst,
		}},
	}, pcm)
	if err != nil {
		return nil, err
	}
	rx := res.Receivers[0]
	received, reconstructed := rx.Trace.Rates()
	return &Figure7Result{
		Config:             cfg,
		DataSent:           res.DataSent,
		ReceivedRate:       received,
		ReconstructedRate:  reconstructed,
		Series:             rx.Trace.Series(cfg.WindowSize),
		Overhead:           res.Overhead,
		PaperReceived:      0.9854,
		PaperReconstructed: 0.9998,
	}, nil
}

// Format renders the result in the paper's two-series form.
func (r *Figure7Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — Packet stats, FEC %s, %0.0f m from AP, %d audio packets\n",
		r.Config.FEC, r.Config.DistanceMetres, r.DataSent)
	fmt.Fprintf(&b, "%-10s %-14s %-16s\n", "seq", "%received", "%reconstructed")
	for _, p := range r.Series {
		fmt.Fprintf(&b, "%-10d %-14.2f %-16.2f\n", p.Seq, p.ReceivedRate*100, p.ReconstructedRate*100)
	}
	fmt.Fprintf(&b, "\nmeasured: received=%.2f%% reconstructed=%.2f%% overhead=%.2fx\n",
		r.ReceivedRate*100, r.ReconstructedRate*100, r.Overhead)
	fmt.Fprintf(&b, "paper:    received=%.2f%% reconstructed=%.2f%%\n",
		r.PaperReceived*100, r.PaperReconstructed*100)
	return b.String()
}

// DistancePoint is one row of the distance sweep (experiment E2).
type DistancePoint struct {
	DistanceMetres   float64
	ModelLossRate    float64
	RawReceivedRate  float64
	FECDeliveredRate float64
}

// DistanceSweepConfig parameterizes experiment E2: loss versus distance and
// what FEC recovers at each point, quantifying the paper's claim that loss
// "changes dramatically over a distance of several meters".
type DistanceSweepConfig struct {
	Distances    []float64
	AudioSeconds float64
	FEC          fec.Params
	MeanBurst    float64
	Seed         int64
}

// DefaultDistanceSweepConfig covers the walk from the office to the
// conference room in the paper's scenario.
func DefaultDistanceSweepConfig() DistanceSweepConfig {
	return DistanceSweepConfig{
		Distances:    []float64{5, 15, 25, 30, 35, 40, 45},
		AudioSeconds: 20,
		FEC:          fec.Params{K: 4, N: 6},
		MeanBurst:    1.2,
		Seed:         7,
	}
}

// RunDistanceSweep reproduces experiment E2.
func RunDistanceSweep(cfg DistanceSweepConfig) ([]DistancePoint, error) {
	if cfg.AudioSeconds <= 0 {
		cfg.AudioSeconds = 10
	}
	format := audio.PaperFormat()
	pcm, err := audio.GenerateSpeechLike(format, time.Duration(cfg.AudioSeconds*float64(time.Second)), cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []DistancePoint
	for i, d := range cfg.Distances {
		res, err := fecproxy.RunAudioProxy(fecproxy.AudioProxyConfig{
			Format: format,
			FEC:    cfg.FEC,
			Seed:   cfg.Seed + int64(i)*101,
			Receivers: []fecproxy.ReceiverConfig{{
				Name:           fmt.Sprintf("rx-%.0fm", d),
				DistanceMetres: d,
				MeanBurst:      cfg.MeanBurst,
			}},
		}, pcm)
		if err != nil {
			return nil, err
		}
		rx := res.Receivers[0]
		out = append(out, DistancePoint{
			DistanceMetres:   d,
			ModelLossRate:    wireless.LossAtDistance(d),
			RawReceivedRate:  rx.ReceivedRate(),
			FECDeliveredRate: rx.ReconstructedRate(),
		})
	}
	return out, nil
}

// FormatDistanceSweep renders the E2 table.
func FormatDistanceSweep(points []DistancePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2 — loss vs distance and FEC recovery\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-14s\n", "metres", "model-loss", "%received", "%with-FEC")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10.0f %-12.4f %-12.2f %-14.2f\n",
			p.DistanceMetres, p.ModelLossRate, p.RawReceivedRate*100, p.FECDeliveredRate*100)
	}
	return b.String()
}

// GroupSizePoint is one row of the (n,k) sweep (experiment E4).
type GroupSizePoint struct {
	Params        fec.Params
	Overhead      float64
	DeliveredRate float64
	WorstReceiver float64
	GroupLatency  time.Duration // time spanned by one FEC group of audio
}

// GroupSizeSweepConfig parameterizes experiment E4.
type GroupSizeSweepConfig struct {
	Codes          []fec.Params
	AudioSeconds   float64
	DistanceMetres float64
	MeanBurst      float64
	Receivers      int
	PacketInterval time.Duration
	Seed           int64
}

// DefaultGroupSizeSweepConfig compares the paper's (6,4) against nearby codes
// at the 25 m operating point with three receivers (as in the testbed).
func DefaultGroupSizeSweepConfig() GroupSizeSweepConfig {
	return GroupSizeSweepConfig{
		Codes: []fec.Params{
			{K: 1, N: 1}, // no FEC baseline
			{K: 4, N: 5},
			{K: 4, N: 6}, // the paper's configuration
			{K: 4, N: 8},
			{K: 8, N: 10},
			{K: 8, N: 12},
		},
		AudioSeconds:   20,
		DistanceMetres: 25,
		MeanBurst:      1.2,
		Receivers:      3,
		PacketInterval: 20 * time.Millisecond,
		Seed:           11,
	}
}

// RunGroupSizeSweep reproduces experiment E4.
func RunGroupSizeSweep(cfg GroupSizeSweepConfig) ([]GroupSizePoint, error) {
	if cfg.AudioSeconds <= 0 {
		cfg.AudioSeconds = 10
	}
	if cfg.Receivers <= 0 {
		cfg.Receivers = 3
	}
	if cfg.PacketInterval <= 0 {
		cfg.PacketInterval = 20 * time.Millisecond
	}
	format := audio.PaperFormat()
	pcm, err := audio.GenerateSpeechLike(format, time.Duration(cfg.AudioSeconds*float64(time.Second)), cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []GroupSizePoint
	for _, code := range cfg.Codes {
		receivers := make([]fecproxy.ReceiverConfig, cfg.Receivers)
		for i := range receivers {
			receivers[i] = fecproxy.ReceiverConfig{
				Name:           fmt.Sprintf("laptop-%d", i+1),
				DistanceMetres: cfg.DistanceMetres,
				MeanBurst:      cfg.MeanBurst,
			}
		}
		res, err := fecproxy.RunAudioProxy(fecproxy.AudioProxyConfig{
			Format:         format,
			FEC:            code,
			PacketInterval: cfg.PacketInterval,
			Seed:           cfg.Seed,
			Receivers:      receivers,
		}, pcm)
		if err != nil {
			return nil, err
		}
		var sum, worst float64
		worst = 1
		for _, rx := range res.Receivers {
			rate := rx.ReconstructedRate()
			sum += rate
			if rate < worst {
				worst = rate
			}
		}
		out = append(out, GroupSizePoint{
			Params:        code,
			Overhead:      res.Overhead,
			DeliveredRate: sum / float64(len(res.Receivers)),
			WorstReceiver: worst,
			GroupLatency:  time.Duration(code.K) * cfg.PacketInterval,
		})
	}
	return out, nil
}

// FormatGroupSizeSweep renders the E4 table.
func FormatGroupSizeSweep(points []GroupSizePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4 — FEC group size: delivery vs overhead vs group latency (jitter proxy)\n")
	fmt.Fprintf(&b, "%-10s %-10s %-12s %-12s %-12s\n", "(n,k)", "overhead", "%delivered", "%worst-rx", "group-span")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %-10.2f %-12.2f %-12.2f %-12s\n",
			p.Params, p.Overhead, p.DeliveredRate*100, p.WorstReceiver*100, p.GroupLatency)
	}
	return b.String()
}
