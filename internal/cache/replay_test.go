package cache

import (
	"io"
	"testing"

	"rapidware/internal/packet"
	"rapidware/internal/stream"
)

// runReplay pushes packets through a started ReplayFilter and returns what
// comes out.
func runReplay(t *testing.T, f *ReplayFilter, in []*packet.Packet) []*packet.Packet {
	t.Helper()
	src := stream.NewDetachableWriter()
	dst := stream.NewDetachableReader()
	if err := stream.Connect(src, f.In()); err != nil {
		t.Fatal(err)
	}
	if err := stream.Connect(f.Out(), dst); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		pw := packet.NewWriter(src)
		for _, p := range in {
			if err := pw.WritePacket(p); err != nil {
				return
			}
		}
		src.Close()
	}()
	var out []*packet.Packet
	pr := packet.NewReader(dst)
	for {
		p, err := pr.ReadPacket()
		if err != nil {
			if err != io.EOF {
				t.Fatalf("ReadPacket: %v", err)
			}
			return out
		}
		out = append(out, p)
	}
}

func TestNewReplayFilterValidation(t *testing.T) {
	if _, err := NewReplayFilter("", 0); err == nil {
		t.Fatal("NewReplayFilter(0) succeeded, want error")
	}
	f, err := NewReplayFilter("", 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "replay" || f.Depth() != 4 {
		t.Fatalf("defaults = (%q, %d), want (replay, 4)", f.Name(), f.Depth())
	}
}

func TestReplayFilterRetainsWindowInOrder(t *testing.T) {
	f, err := NewReplayFilter("replay", 4)
	if err != nil {
		t.Fatal(err)
	}
	var in []*packet.Packet
	for seq := uint64(0); seq < 7; seq++ {
		in = append(in, &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte{byte(seq)}})
	}
	// Non-data frames pass through without entering the window.
	in = append(in, &packet.Packet{Seq: 50, Kind: packet.KindParity, Payload: []byte("p")})
	out := runReplay(t, f, in)
	if len(out) != len(in) {
		t.Fatalf("forwarded %d packets, want %d", len(out), len(in))
	}

	frames := f.Frames()
	if len(frames) != 4 {
		t.Fatalf("retained %d frames, want the window of 4", len(frames))
	}
	// Oldest first: the 4-deep window over seqs 0..6 holds 3,4,5,6.
	for i, frame := range frames {
		p, _, err := packet.Unmarshal(frame)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(3 + i); p.Seq != want {
			t.Fatalf("frames[%d].Seq = %d, want %d", i, p.Seq, want)
		}
	}
	if admitted, retained, primes := f.Stats(); admitted != 7 || retained != 4 || primes != 1 {
		t.Fatalf("Stats = (%d, %d, %d), want (7, 4, 1)", admitted, retained, primes)
	}
}

func TestReplayFilterFramesAreCopies(t *testing.T) {
	f, err := NewReplayFilter("", 2)
	if err != nil {
		t.Fatal(err)
	}
	runReplay(t, f, []*packet.Packet{{Seq: 0, Kind: packet.KindData, Payload: []byte("orig")}})
	frames := f.Frames()
	if len(frames) != 1 {
		t.Fatalf("retained %d frames, want 1", len(frames))
	}
	frames[0][0] ^= 0xff
	again := f.Frames()
	if p, _, err := packet.Unmarshal(again[0]); err != nil || string(p.Payload) != "orig" {
		t.Fatalf("mutating a returned frame corrupted the retained copy: %v, %v", p, err)
	}
}

func TestReplayFilterEmptyWindowDoesNotCountPrime(t *testing.T) {
	f, err := NewReplayFilter("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if frames := f.Frames(); len(frames) != 0 {
		t.Fatalf("fresh filter retained %d frames", len(frames))
	}
	if _, _, primes := f.Stats(); primes != 0 {
		t.Fatalf("primes = %d after an empty drain, want 0", primes)
	}
}
