// Package cache implements the byte-bounded LRU object cache the paper lists
// among proxy duties ("data caching for memory-limited handheld devices"),
// plus a caching proxy layer keyed by request URL.
package cache

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the cache.
var (
	// ErrTooLarge is returned by Put when a single object exceeds the cache
	// capacity.
	ErrTooLarge = errors.New("cache: object larger than capacity")
)

type entry struct {
	key   string
	value []byte
}

// LRU is a least-recently-used cache bounded by total byte size. It is safe
// for concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int
	size     int
	order    *list.List // front = most recently used
	items    map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

// NewLRU returns a cache holding at most capacity bytes of values.
func NewLRU(capacity int) (*LRU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d", capacity)
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}, nil
}

// Get returns a copy of the cached value and marks it recently used.
func (c *LRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	v := el.Value.(*entry).value
	return append([]byte(nil), v...), true
}

// View invokes visit with the cached value in place — no copy — and marks the
// entry recently used. The slice is only valid for the duration of the call
// and must not be mutated or retained; callers that need the bytes afterwards
// copy them into their own (typically pooled) storage. This is the
// allocation-free read path the engine's replay priming drains.
func (c *LRU) View(key string, visit func(value []byte)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	c.order.MoveToFront(el)
	visit(el.Value.(*entry).value)
	return true
}

// Put stores a copy of value under key, evicting least-recently-used entries
// as needed to stay within capacity.
func (c *LRU) Put(key string, value []byte) error {
	if len(value) > c.capacity {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(value), c.capacity)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*entry)
		c.size -= len(old.value)
		old.value = append([]byte(nil), value...)
		c.size += len(value)
		c.order.MoveToFront(el)
	} else {
		e := &entry{key: key, value: append([]byte(nil), value...)}
		c.items[key] = c.order.PushFront(e)
		c.size += len(value)
	}
	for c.size > c.capacity {
		c.evictOldest()
	}
	return nil
}

// evictOldest removes the least recently used entry. Caller holds the lock.
func (c *LRU) evictOldest() {
	back := c.order.Back()
	if back == nil {
		return
	}
	e := back.Value.(*entry)
	c.order.Remove(back)
	delete(c.items, e.key)
	c.size -= len(e.value)
	c.evictions++
}

// Delete removes a key if present and reports whether it was there.
func (c *LRU) Delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	c.size -= len(el.Value.(*entry).value)
	return true
}

// Len returns the number of cached objects.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Size returns the total bytes currently cached.
func (c *LRU) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Capacity returns the configured byte capacity.
func (c *LRU) Capacity() int { return c.capacity }

// Stats returns hit, miss and eviction counters.
func (c *LRU) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// HitRate returns hits / (hits + misses), or 0 before any lookups.
func (c *LRU) HitRate() float64 {
	hits, misses, _ := c.Stats()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Fetcher retrieves an object on a cache miss (the proxy's trip to the wired
// network on behalf of the handheld).
type Fetcher func(url string) ([]byte, error)

// call is one in-flight fetch that concurrent misses for the same URL wait
// on instead of fetching themselves.
type call struct {
	wg  sync.WaitGroup
	v   []byte
	err error
}

// Proxy is a caching fetch-through layer: handheld requests hit the cache
// first and fall back to the fetcher, whose responses are cached. Concurrent
// misses for the same URL are coalesced into a single fetch — without that,
// every waiter would invoke the fetcher and re-Put the same bytes (a
// thundering herd on the wired side exactly when the origin is slow).
type Proxy struct {
	cache   *LRU
	fetcher Fetcher

	mu       sync.Mutex
	inflight map[string]*call
}

// NewProxy returns a caching proxy over the given fetcher.
func NewProxy(capacity int, fetcher Fetcher) (*Proxy, error) {
	if fetcher == nil {
		return nil, errors.New("cache: fetcher is required")
	}
	lru, err := NewLRU(capacity)
	if err != nil {
		return nil, err
	}
	return &Proxy{cache: lru, fetcher: fetcher, inflight: make(map[string]*call)}, nil
}

// Get returns the object for url, consulting the cache first. On a miss, the
// first caller fetches while later callers for the same url block on the
// leader's result; exactly one fetch and one cache fill happen per miss.
func (p *Proxy) Get(url string) ([]byte, error) {
	if v, ok := p.cache.Get(url); ok {
		return v, nil
	}
	p.mu.Lock()
	if c, ok := p.inflight[url]; ok {
		p.mu.Unlock()
		c.wg.Wait()
		if c.err != nil {
			return nil, c.err
		}
		// Each waiter gets its own copy, as a cache hit would.
		return append([]byte(nil), c.v...), nil
	}
	c := &call{}
	c.wg.Add(1)
	p.inflight[url] = c
	p.mu.Unlock()

	c.v, c.err = p.fetch(url)
	p.mu.Lock()
	delete(p.inflight, url)
	p.mu.Unlock()
	c.wg.Done()
	if c.err != nil {
		return nil, c.err
	}
	return c.v, nil
}

// fetch performs the leader's miss path: origin fetch plus cache fill.
func (p *Proxy) fetch(url string) ([]byte, error) {
	v, err := p.fetcher(url)
	if err != nil {
		return nil, fmt.Errorf("cache: fetch %s: %w", url, err)
	}
	if err := p.cache.Put(url, v); err != nil && !errors.Is(err, ErrTooLarge) {
		return nil, err
	}
	return v, nil
}

// Cache exposes the underlying LRU for statistics.
func (p *Proxy) Cache() *LRU { return p.cache }
