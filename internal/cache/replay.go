package cache

import (
	"fmt"
	"strconv"
	"sync"

	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// ReplayFilter is the compose-plane "replay=<n>" stage: a pass-through that
// keeps the last n data frames of the trunk stream in an LRU object cache so
// a receiver joining a fan-out session mid-stream can be primed with recent
// history on its delivery branch — the paper's collaborative-session
// scenario, where a late-joining station must catch up on state it missed.
// The engine drains Frames() into a freshly created branch before the branch
// is published to the dispatch path.
type ReplayFilter struct {
	*filter.Base

	n int

	mu       sync.Mutex
	lru      *LRU
	seqs     []uint64 // ring of cached sequence numbers, oldest at head
	head     int
	count    int
	admitted uint64
	primes   uint64
}

// seqKey renders a sequence number as an LRU cache key.
func seqKey(seq uint64) string { return strconv.FormatUint(seq, 10) }

// NewReplayFilter returns a catch-up stage retaining the last n data frames.
func NewReplayFilter(name string, n int) (*ReplayFilter, error) {
	if name == "" {
		name = "replay"
	}
	if n <= 0 {
		return nil, fmt.Errorf("cache: replay depth must be positive, got %d", n)
	}
	// Size the cache so byte-bounded eviction can never fire before the
	// explicit count-n eviction: n frames of the largest datagram the engine
	// accepts always fit.
	lru, err := NewLRU(n * packet.MaxDatagram)
	if err != nil {
		return nil, err
	}
	f := &ReplayFilter{n: n, lru: lru, seqs: make([]uint64, n)}
	f.Base = filter.NewPacketFunc(name, func(p *packet.Packet) ([]*packet.Packet, error) {
		if p.Kind == packet.KindData {
			frame, err := packet.Marshal(p)
			if err == nil {
				f.admit(p.Seq, frame)
			}
		}
		return []*packet.Packet{p}, nil
	}, nil)
	return f, nil
}

// admit stores one marshaled data frame, evicting the oldest when the ring
// is full.
func (f *ReplayFilter) admit(seq uint64, frame []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.count == f.n {
		f.lru.Delete(seqKey(f.seqs[f.head]))
		f.seqs[f.head] = seq
		f.head = (f.head + 1) % f.n
	} else {
		f.seqs[(f.head+f.count)%f.n] = seq
		f.count++
	}
	// Put only fails for frames over capacity, which the sizing above rules
	// out.
	_ = f.lru.Put(seqKey(seq), frame)
	f.admitted++
}

// Frames returns copies of the retained data frames in admission order
// (oldest first) and counts one priming drain.
func (f *ReplayFilter) Frames() [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]byte, 0, f.count)
	for i := 0; i < f.count; i++ {
		if v, ok := f.lru.Get(seqKey(f.seqs[(f.head+i)%f.n])); ok {
			out = append(out, v)
		}
	}
	if len(out) > 0 {
		f.primes++
	}
	return out
}

// VisitFrames invokes visit for each retained data frame in admission order
// (oldest first), handing each frame's bytes in place under the filter's lock
// — the allocation-free priming drain. visit must not retain or mutate the
// frame past the call (copy into pooled storage instead). It returns the
// number of frames visited and counts one priming drain when any were.
func (f *ReplayFilter) VisitFrames(visit func(frame []byte)) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	visited := 0
	for i := 0; i < f.count; i++ {
		if f.lru.View(seqKey(f.seqs[(f.head+i)%f.n]), visit) {
			visited++
		}
	}
	if visited > 0 {
		f.primes++
	}
	return visited
}

// Depth returns the configured retention depth n.
func (f *ReplayFilter) Depth() int { return f.n }

// Stats returns how many data frames were admitted, how many are currently
// retained, and how many priming drains served at least one frame.
func (f *ReplayFilter) Stats() (admitted uint64, retained int, primes uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.admitted, f.count, f.primes
}

// Cache exposes the underlying LRU for statistics.
func (f *ReplayFilter) Cache() *LRU { return f.lru }

var _ filter.Filter = (*ReplayFilter)(nil)
