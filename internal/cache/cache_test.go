package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewLRUValidation(t *testing.T) {
	if _, err := NewLRU(0); err == nil {
		t.Fatal("expected error for zero capacity")
	}
	if _, err := NewLRU(-1); err == nil {
		t.Fatal("expected error for negative capacity")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, _ := NewLRU(1024)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get on empty cache returned a value")
	}
	if err := c.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get("a")
	if !ok || string(v) != "alpha" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if c.Len() != 1 || c.Size() != 5 {
		t.Fatalf("Len=%d Size=%d", c.Len(), c.Size())
	}
	if c.Capacity() != 1024 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c, _ := NewLRU(64)
	c.Put("k", []byte{1, 2, 3})
	v, _ := c.Get("k")
	v[0] = 99
	again, _ := c.Get("k")
	if again[0] == 99 {
		t.Fatal("cache returned aliased storage")
	}
}

func TestPutCopiesValue(t *testing.T) {
	c, _ := NewLRU(64)
	v := []byte{1, 2, 3}
	c.Put("k", v)
	v[0] = 99
	got, _ := c.Get("k")
	if got[0] == 99 {
		t.Fatal("cache stored aliased value")
	}
}

func TestPutUpdateExisting(t *testing.T) {
	c, _ := NewLRU(100)
	c.Put("k", []byte("short"))
	c.Put("k", []byte("a much longer replacement value"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Size() != len("a much longer replacement value") {
		t.Fatalf("Size = %d", c.Size())
	}
	v, _ := c.Get("k")
	if string(v) != "a much longer replacement value" {
		t.Fatalf("value = %q", v)
	}
}

func TestPutTooLarge(t *testing.T) {
	c, _ := NewLRU(10)
	if err := c.Put("big", make([]byte, 11)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, _ := NewLRU(30)
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 10))
	c.Put("c", make([]byte, 10))
	// Touch "a" so "b" becomes the least recently used.
	c.Get("a")
	c.Put("d", make([]byte, 10))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%q should still be cached", k)
		}
	}
	_, _, evictions := c.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d", evictions)
	}
}

func TestDelete(t *testing.T) {
	c, _ := NewLRU(64)
	c.Put("k", []byte("v"))
	if !c.Delete("k") {
		t.Fatal("Delete returned false for existing key")
	}
	if c.Delete("k") {
		t.Fatal("Delete returned true for missing key")
	}
	if c.Len() != 0 || c.Size() != 0 {
		t.Fatalf("Len=%d Size=%d after delete", c.Len(), c.Size())
	}
}

func TestHitRateAndStats(t *testing.T) {
	c, _ := NewLRU(64)
	if c.HitRate() != 0 {
		t.Fatal("HitRate should be 0 before lookups")
	}
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Get("k")
	c.Get("missing")
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if c.HitRate() < 0.66 || c.HitRate() > 0.67 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
}

// TestInvariantsProperty drives random operations and checks the cache's
// structural invariants: size equals the sum of stored values, size never
// exceeds capacity, and Len matches the internal list length.
func TestInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 64 + rng.Intn(512)
		c, err := NewLRU(capacity)
		if err != nil {
			return false
		}
		shadow := map[string]int{}
		for op := 0; op < 300; op++ {
			key := fmt.Sprintf("k%d", rng.Intn(20))
			switch rng.Intn(3) {
			case 0:
				size := rng.Intn(capacity/2) + 1
				if err := c.Put(key, make([]byte, size)); err != nil {
					return false
				}
				shadow[key] = size
			case 1:
				c.Get(key)
			case 2:
				c.Delete(key)
				delete(shadow, key)
			}
			if c.Size() > capacity {
				return false
			}
		}
		// Every cached value must have the size last written for its key.
		total := 0
		count := 0
		for k, sz := range shadow {
			if v, ok := c.Get(k); ok {
				if len(v) != sz {
					return false
				}
				total += len(v)
				count++
			}
		}
		return c.Size() >= 0 && c.Len() >= count-c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := NewLRU(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("obj-%d", i%50)
				if i%3 == 0 {
					c.Put(key, []byte(key))
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Size() > c.Capacity() {
		t.Fatal("size exceeded capacity under concurrency")
	}
}

func TestProxyFetchThrough(t *testing.T) {
	fetches := 0
	fetcher := func(url string) ([]byte, error) {
		fetches++
		if url == "http://bad" {
			return nil, errors.New("unreachable")
		}
		return []byte("content of " + url), nil
	}
	p, err := NewProxy(1024, fetcher)
	if err != nil {
		t.Fatal(err)
	}
	// First access fetches, second hits the cache.
	v1, err := p.Get("http://example.com/page")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p.Get("http://example.com/page")
	if err != nil {
		t.Fatal(err)
	}
	if string(v1) != string(v2) {
		t.Fatal("cache returned different content")
	}
	if fetches != 1 {
		t.Fatalf("fetches = %d, want 1", fetches)
	}
	if p.Cache().HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", p.Cache().HitRate())
	}
	if _, err := p.Get("http://bad"); err == nil {
		t.Fatal("expected fetch error to propagate")
	}
}

func TestProxyOversizedObjectsStillServed(t *testing.T) {
	p, err := NewProxy(8, func(url string) ([]byte, error) {
		return []byte("this object is larger than the cache"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Get("http://big")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 {
		t.Fatal("oversized object not served")
	}
	if p.Cache().Len() != 0 {
		t.Fatal("oversized object should not be cached")
	}
}

func TestNewProxyValidation(t *testing.T) {
	if _, err := NewProxy(10, nil); err == nil {
		t.Fatal("expected error for nil fetcher")
	}
	if _, err := NewProxy(0, func(string) ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("expected error for zero capacity")
	}
}

func TestProxySingleflightCollapsesConcurrentMisses(t *testing.T) {
	var fetches atomic.Int32
	gate := make(chan struct{})
	proxy, err := NewProxy(1<<20, func(url string) ([]byte, error) {
		fetches.Add(1)
		<-gate // hold every caller in the miss window
		return []byte("body of " + url), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	results := make(chan []byte, callers)
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := proxy.Get("http://example.edu/lecture")
			if err != nil {
				errs <- err
				return
			}
			results <- v
		}()
	}
	// Let every goroutine reach Get before the leader's fetch completes.
	deadline := time.Now().Add(2 * time.Second)
	for fetches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no fetch ever started")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}
	if n := fetches.Load(); n != 1 {
		t.Fatalf("%d fetches for one URL under concurrent misses, want 1", n)
	}
	var got [][]byte
	for v := range results {
		got = append(got, v)
	}
	// Every caller sees the object, and each holds its own copy.
	for _, v := range got {
		if string(v) != "body of http://example.edu/lecture" {
			t.Fatalf("waiter got %q", v)
		}
	}
	got[0][0] ^= 0xff
	if v, _ := proxy.Get("http://example.edu/lecture"); string(v) != "body of http://example.edu/lecture" {
		t.Fatal("a waiter's copy aliases the cached object")
	}
}

func TestProxySingleflightErrorNotCached(t *testing.T) {
	var fetches atomic.Int32
	fail := true
	proxy, err := NewProxy(1<<20, func(url string) ([]byte, error) {
		fetches.Add(1)
		if fail {
			return nil, errors.New("origin down")
		}
		return []byte("recovered"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Get("http://example.edu/x"); err == nil {
		t.Fatal("Get succeeded through a failing fetcher")
	}
	fail = false
	v, err := proxy.Get("http://example.edu/x")
	if err != nil || string(v) != "recovered" {
		t.Fatalf("Get after recovery = %q, %v", v, err)
	}
	if fetches.Load() != 2 {
		t.Fatalf("fetches = %d, want 2 (the failure must not be cached)", fetches.Load())
	}
}
