package packet

import (
	"sync"
	"sync/atomic"
)

// The engine's steady-state relay path must not allocate per packet, so every
// datagram and frame travels in a pooled Buf. Buffers are drawn from a small
// set of size classes; a request larger than the biggest class falls back to
// a plain allocation that is simply dropped on Release.
var bufClasses = [...]int{512, 2048, 16 * 1024, MaxDatagram}

// MaxDatagram is the largest UDP datagram the proxy engine accepts: a session
// ID, a frame header and a payload of up to 64 KiB. It is also the capacity of
// the largest pooled buffer class.
const MaxDatagram = SessionIDSize + HeaderSize + 64*1024

// Buf is a pooled, reference-counted byte buffer. B is the active region and
// may be re-sliced freely (including advancing its start, e.g. to strip a
// datagram prefix); the full backing storage is retained separately so the
// final Release restores it.
//
// A fresh Buf holds one reference. Retain adds more, letting several
// consumers share the same bytes — the engine's delivery tree fans one trunk
// frame out to every receiver branch this way, cloning ownership instead of
// payload bytes. Shared holders must treat B as read-only (and must not
// re-slice the shared Buf's B field); each holder calls Release exactly once,
// and the storage returns to its pool only when the last reference drops.
type Buf struct {
	B     []byte
	full  []byte
	refs  atomic.Int32
	class int8 // index into bufClasses, -1 when unpooled
}

var bufPools [len(bufClasses)]sync.Pool

func init() {
	for i := range bufPools {
		size := bufClasses[i]
		class := int8(i)
		bufPools[i].New = func() any {
			s := make([]byte, size)
			return &Buf{B: s, full: s, class: class}
		}
	}
}

// GetBuf returns a pooled buffer whose B has length exactly n, holding one
// reference. Requests beyond the largest size class are served by a one-off
// allocation.
func GetBuf(n int) *Buf {
	for i, size := range bufClasses {
		if n <= size {
			b := bufPools[i].Get().(*Buf)
			b.B = b.full[:n]
			b.refs.Store(1)
			return b
		}
	}
	s := make([]byte, n)
	b := &Buf{B: s, full: s, class: -1}
	b.refs.Store(1)
	return b
}

// Retain adds n additional references, so n more holders may (and must) call
// Release. It is safe from any goroutine holding a live reference.
func (b *Buf) Retain(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.refs.Add(int32(n))
}

// Refs returns the current reference count (for tests and diagnostics).
func (b *Buf) Refs() int { return int(b.refs.Load()) }

// Release drops one reference; the last drop returns the buffer to its pool.
// Unpooled (oversize) buffers are left for the garbage collector.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if b.refs.Add(-1) > 0 {
		return
	}
	if b.class < 0 {
		return
	}
	b.B = b.full
	bufPools[b.class].Put(b)
}

// Cap returns the full capacity of the underlying storage, independent of how
// B is currently sliced.
func (b *Buf) Cap() int { return len(b.full) }
