package packet

import "sync"

// The engine's steady-state relay path must not allocate per packet, so every
// datagram and frame travels in a pooled Buf. Buffers are drawn from a small
// set of size classes; a request larger than the biggest class falls back to
// a plain allocation that is simply dropped on Release.
var bufClasses = [...]int{512, 2048, 16 * 1024, MaxDatagram}

// MaxDatagram is the largest UDP datagram the proxy engine accepts: a session
// ID, a frame header and a payload of up to 64 KiB. It is also the capacity of
// the largest pooled buffer class.
const MaxDatagram = SessionIDSize + HeaderSize + 64*1024

// Buf is a pooled byte buffer. B is the active region and may be re-sliced
// freely (including advancing its start, e.g. to strip a datagram prefix);
// the full backing storage is retained separately so Release restores it.
// A Buf must not be used after Release, and Release must be called at most
// once per Get.
type Buf struct {
	B     []byte
	full  []byte
	class int8 // index into bufClasses, -1 when unpooled
}

var bufPools [len(bufClasses)]sync.Pool

func init() {
	for i := range bufPools {
		size := bufClasses[i]
		class := int8(i)
		bufPools[i].New = func() any {
			s := make([]byte, size)
			return &Buf{B: s, full: s, class: class}
		}
	}
}

// GetBuf returns a pooled buffer whose B has length exactly n. Requests
// beyond the largest size class are served by a one-off allocation.
func GetBuf(n int) *Buf {
	for i, size := range bufClasses {
		if n <= size {
			b := bufPools[i].Get().(*Buf)
			b.B = b.full[:n]
			return b
		}
	}
	s := make([]byte, n)
	return &Buf{B: s, full: s, class: -1}
}

// Release returns the buffer to its pool. Unpooled (oversize) buffers are
// left for the garbage collector.
func (b *Buf) Release() {
	if b == nil || b.class < 0 {
		return
	}
	b.B = b.full
	bufPools[b.class].Put(b)
}

// Cap returns the full capacity of the underlying storage, independent of how
// B is currently sliced.
func (b *Buf) Cap() int { return len(b.full) }
