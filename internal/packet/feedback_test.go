package packet

import (
	"errors"
	"math"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	r := Report{HighestSeq: 987654, Received: 180, Lost: 20, Window: 200}
	frame, err := AppendReportFrame(nil, 3, 7, r)
	if err != nil {
		t.Fatalf("AppendReportFrame: %v", err)
	}
	if err := ValidateFrame(frame); err != nil {
		t.Fatalf("ValidateFrame: %v", err)
	}
	got, err := ParseReport(frame)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	if got != r {
		t.Fatalf("ParseReport = %+v, want %+v", got, r)
	}
	if want := 0.1; math.Abs(got.LossFraction()-want) > 1e-9 {
		t.Fatalf("LossFraction = %v, want %v", got.LossFraction(), want)
	}

	// The frame also decodes as an ordinary packet with the feedback kind.
	p, _, err := Unmarshal(frame)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if p.Kind != KindFeedback || p.Seq != 3 || p.StreamID != 7 {
		t.Fatalf("decoded packet %v", p)
	}
}

func TestReportDatagramCarriesSessionID(t *testing.T) {
	dgram, err := AppendReportDatagram(nil, 42, 0, 0, Report{Received: 10, Window: 10})
	if err != nil {
		t.Fatalf("AppendReportDatagram: %v", err)
	}
	id, frame, err := SplitSessionID(dgram)
	if err != nil {
		t.Fatalf("SplitSessionID: %v", err)
	}
	if id != 42 {
		t.Fatalf("session id = %d, want 42", id)
	}
	if _, err := ParseReport(frame); err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
}

func TestParseReportRejectsGarbage(t *testing.T) {
	// Wrong kind.
	frame, err := AppendFrame(nil, &Packet{Kind: KindData, Payload: make([]byte, ReportPayloadSize)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseReport(frame); !errors.Is(err, ErrBadReport) {
		t.Fatalf("data frame parsed as report: %v", err)
	}
	// Wrong payload size.
	frame, err = AppendFrame(nil, &Packet{Kind: KindFeedback, Payload: make([]byte, ReportPayloadSize-1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseReport(frame); !errors.Is(err, ErrBadReport) {
		t.Fatalf("short report parsed: %v", err)
	}
	// Too short for a header at all.
	if _, err := ParseReport([]byte{1, 2, 3}); !errors.Is(err, ErrBadReport) {
		t.Fatalf("tiny frame parsed: %v", err)
	}
}

func TestReportLossFractionEmptyWindow(t *testing.T) {
	if got := (Report{}).LossFraction(); got != 0 {
		t.Fatalf("empty report loss = %v, want 0", got)
	}
	if got := (Report{Lost: 5}).LossFraction(); got != 1 {
		t.Fatalf("all-lost report loss = %v, want 1", got)
	}
}

func TestKindFeedbackIsValid(t *testing.T) {
	if !KindFeedback.Valid() {
		t.Fatal("KindFeedback must be a valid kind")
	}
	if KindFeedback.String() != "feedback" {
		t.Fatalf("KindFeedback.String() = %q", KindFeedback.String())
	}
	if !KindNack.Valid() {
		t.Fatal("KindNack must be a valid kind")
	}
	if KindNack.String() != "nack" {
		t.Fatalf("KindNack.String() = %q", KindNack.String())
	}
	if Kind(uint8(KindNack) + 1).Valid() {
		t.Fatal("kind beyond nack must be invalid")
	}
}
