package packet

import (
	"bytes"
	"testing"
)

func TestGetBufSizes(t *testing.T) {
	for _, n := range []int{0, 1, 512, 513, 2048, 4096, MaxDatagram, MaxDatagram + 1} {
		b := GetBuf(n)
		if len(b.B) != n {
			t.Fatalf("GetBuf(%d): len = %d", n, len(b.B))
		}
		if b.Cap() < n {
			t.Fatalf("GetBuf(%d): cap = %d", n, b.Cap())
		}
		b.Release()
	}
}

// TestBufSurvivesReslicing covers the relay engine's usage pattern: the
// session strips the datagram prefix by advancing B, then releases; the
// buffer must come back at full size.
func TestBufSurvivesReslicing(t *testing.T) {
	b := GetBuf(100)
	b.B = b.B[SessionIDSize:]
	b.B = b.B[:10]
	b.Release()
	for i := 0; i < 10; i++ {
		nb := GetBuf(512)
		if len(nb.B) != 512 {
			t.Fatalf("after reslice+release: GetBuf(512) len = %d", len(nb.B))
		}
		nb.Release()
	}
}

// TestBufRetainSharesOwnership covers the delivery tree's fan-out pattern:
// one producer retains n-1 extra references and hands the same buffer to n
// consumers; the storage must return to the pool only after the last Release.
func TestBufRetainSharesOwnership(t *testing.T) {
	b := GetBuf(64)
	if b.Refs() != 1 {
		t.Fatalf("fresh Buf refs = %d, want 1", b.Refs())
	}
	b.Retain(2) // three holders in total
	if b.Refs() != 3 {
		t.Fatalf("after Retain(2): refs = %d, want 3", b.Refs())
	}
	b.B[0] = 0xEE
	b.Release()
	b.Release()
	// Two of three references dropped: the bytes must still be intact and the
	// buffer must not yet have been recycled.
	if b.Refs() != 1 || b.B[0] != 0xEE {
		t.Fatalf("after 2 releases: refs = %d, B[0] = %#x", b.Refs(), b.B[0])
	}
	b.Release()
	// The final release recycles; a fresh Get must hold exactly one reference
	// again even if it reuses the same storage.
	nb := GetBuf(64)
	if nb.Refs() != 1 {
		t.Fatalf("recycled Buf refs = %d, want 1", nb.Refs())
	}
	nb.Release()
	// Retain on nil and with non-positive counts must be no-ops.
	var nilBuf *Buf
	nilBuf.Retain(1)
	nilBuf.Release()
	ok := GetBuf(8)
	ok.Retain(0)
	ok.Retain(-3)
	if ok.Refs() != 1 {
		t.Fatalf("Retain(<=0) changed refs to %d", ok.Refs())
	}
	ok.Release()
}

func TestReadFrameBufHeadroom(t *testing.T) {
	p := &Packet{Seq: 3, Kind: KindData, Payload: []byte("abc")}
	frame, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := NewReader(bytes.NewReader(frame))
	b, err := pr.ReadFrameBuf(SessionIDSize)
	if err != nil {
		t.Fatalf("ReadFrameBuf: %v", err)
	}
	defer b.Release()
	if len(b.B) != SessionIDSize+len(frame) {
		t.Fatalf("frame buf length %d, want %d", len(b.B), SessionIDSize+len(frame))
	}
	got, _, err := Unmarshal(b.B[SessionIDSize:])
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if string(got.Payload) != "abc" || got.Seq != 3 {
		t.Fatalf("decoded %v", got)
	}
}
