package packet

import (
	"bytes"
	"testing"
)

func TestGetBufSizes(t *testing.T) {
	for _, n := range []int{0, 1, 512, 513, 2048, 4096, MaxDatagram, MaxDatagram + 1} {
		b := GetBuf(n)
		if len(b.B) != n {
			t.Fatalf("GetBuf(%d): len = %d", n, len(b.B))
		}
		if b.Cap() < n {
			t.Fatalf("GetBuf(%d): cap = %d", n, b.Cap())
		}
		b.Release()
	}
}

// TestBufSurvivesReslicing covers the relay engine's usage pattern: the
// session strips the datagram prefix by advancing B, then releases; the
// buffer must come back at full size.
func TestBufSurvivesReslicing(t *testing.T) {
	b := GetBuf(100)
	b.B = b.B[SessionIDSize:]
	b.B = b.B[:10]
	b.Release()
	for i := 0; i < 10; i++ {
		nb := GetBuf(512)
		if len(nb.B) != 512 {
			t.Fatalf("after reslice+release: GetBuf(512) len = %d", len(nb.B))
		}
		nb.Release()
	}
}

func TestReadFrameBufHeadroom(t *testing.T) {
	p := &Packet{Seq: 3, Kind: KindData, Payload: []byte("abc")}
	frame, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := NewReader(bytes.NewReader(frame))
	b, err := pr.ReadFrameBuf(SessionIDSize)
	if err != nil {
		t.Fatalf("ReadFrameBuf: %v", err)
	}
	defer b.Release()
	if len(b.B) != SessionIDSize+len(frame) {
		t.Fatalf("frame buf length %d, want %d", len(b.B), SessionIDSize+len(frame))
	}
	got, _, err := Unmarshal(b.B[SessionIDSize:])
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if string(got.Payload) != "abc" || got.Seq != 3 {
		t.Fatalf("decoded %v", got)
	}
}
