package packet

import (
	"errors"
	"sync"
)

// Buffer errors.
var (
	// ErrClosed is returned by Put/Get once the buffer has been closed and,
	// for Get, fully drained.
	ErrClosed = errors.New("packet: buffer closed")
	// ErrFull is returned by TryPut when the buffer is at capacity.
	ErrFull = errors.New("packet: buffer full")
)

// Buffer is a bounded FIFO of packets connecting pipeline stages, matching
// the PacketBuffer components in the paper's FEC proxy (Figure 6). Put blocks
// while the buffer is full; Get blocks while it is empty. Close unblocks all
// waiters. The zero value is not usable; construct with NewBuffer.
type Buffer struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	queue    []*Packet
	capacity int
	closed   bool

	// drops counts packets rejected by TryPut because the buffer was full.
	drops uint64
}

// NewBuffer returns a buffer holding at most capacity packets. capacity must
// be positive.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("packet: buffer capacity must be positive")
	}
	b := &Buffer{capacity: capacity}
	b.notEmpty = sync.NewCond(&b.mu)
	b.notFull = sync.NewCond(&b.mu)
	return b
}

// Put appends p, blocking while the buffer is full. It returns ErrClosed if
// the buffer is closed before space becomes available.
func (b *Buffer) Put(p *Packet) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) >= b.capacity && !b.closed {
		b.notFull.Wait()
	}
	if b.closed {
		return ErrClosed
	}
	b.queue = append(b.queue, p)
	b.notEmpty.Signal()
	return nil
}

// TryPut appends p without blocking. It returns ErrFull when at capacity and
// ErrClosed when the buffer is closed.
func (b *Buffer) TryPut(p *Packet) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if len(b.queue) >= b.capacity {
		b.drops++
		return ErrFull
	}
	b.queue = append(b.queue, p)
	b.notEmpty.Signal()
	return nil
}

// Get removes and returns the oldest packet, blocking while the buffer is
// empty. Once the buffer is closed and drained it returns ErrClosed.
func (b *Buffer) Get() (*Packet, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.notEmpty.Wait()
	}
	if len(b.queue) == 0 {
		return nil, ErrClosed
	}
	p := b.queue[0]
	b.queue = b.queue[1:]
	b.notFull.Signal()
	return p, nil
}

// TryGet removes and returns the oldest packet without blocking. ok is false
// when the buffer is currently empty.
func (b *Buffer) TryGet() (p *Packet, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return nil, false
	}
	p = b.queue[0]
	b.queue = b.queue[1:]
	b.notFull.Signal()
	return p, true
}

// Len returns the number of buffered packets.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Drops returns the number of packets rejected by TryPut.
func (b *Buffer) Drops() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drops
}

// Close marks the buffer closed and wakes all blocked producers and
// consumers. Packets already buffered remain retrievable via Get/TryGet.
// Close is idempotent.
func (b *Buffer) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
}

// Closed reports whether Close has been called.
func (b *Buffer) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}
