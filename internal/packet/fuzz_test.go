package packet

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip checks that any packet the codec accepts survives a
// marshal → unmarshal round trip bit-exactly, both as a bare frame and as an
// engine datagram with the 4-byte session-ID header.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), byte(KindData), uint32(3), byte(0), byte(4), byte(6), []byte("payload"), uint32(42))
	f.Add(uint64(0), uint32(0), byte(KindParity), uint32(9), byte(5), byte(4), byte(6), []byte{}, uint32(0))
	f.Add(uint64(1<<63), uint32(1<<31), byte(KindControl), uint32(0), byte(255), byte(255), byte(255), bytes.Repeat([]byte{0xAB}, 1000), uint32(1<<31))
	f.Fuzz(func(t *testing.T, seq uint64, stream uint32, kind byte, group uint32, index, k, n byte, payload []byte, session uint32) {
		p := &Packet{
			Seq:      seq,
			StreamID: stream,
			Kind:     Kind(kind),
			Group:    group,
			Index:    index,
			K:        k,
			N:        n,
			Payload:  payload,
		}
		frame, err := Marshal(p)
		if err != nil {
			// Marshal only rejects invalid kinds and oversized payloads.
			if p.Kind.Valid() && len(payload) <= MaxPayload {
				t.Fatalf("Marshal rejected a valid packet: %v", err)
			}
			return
		}
		// AppendFrame must agree with Marshal.
		appended, err := AppendFrame(nil, p)
		if err != nil {
			t.Fatalf("AppendFrame failed after Marshal succeeded: %v", err)
		}
		if !bytes.Equal(frame, appended) {
			t.Fatal("AppendFrame and Marshal disagree")
		}

		got, consumed, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("Unmarshal(Marshal(p)) failed: %v", err)
		}
		if consumed != len(frame) {
			t.Fatalf("Unmarshal consumed %d of %d bytes", consumed, len(frame))
		}
		if got.Seq != p.Seq || got.StreamID != p.StreamID || got.Kind != p.Kind ||
			got.Group != p.Group || got.Index != p.Index || got.K != p.K || got.N != p.N ||
			!bytes.Equal(got.Payload, p.Payload) {
			t.Fatalf("round trip mismatch: sent %v, got %v", p, got)
		}

		// Datagram round trip: session ID header + frame.
		dgram, err := AppendDatagram(nil, session, p)
		if err != nil {
			t.Fatalf("AppendDatagram: %v", err)
		}
		id, rest, err := SplitSessionID(dgram)
		if err != nil {
			t.Fatalf("SplitSessionID: %v", err)
		}
		if id != session {
			t.Fatalf("session id round trip: sent %d, got %d", session, id)
		}
		if !bytes.Equal(rest, frame) {
			t.Fatal("datagram frame bytes corrupted")
		}
	})
}

// FuzzDecodeNoPanic throws arbitrary bytes at every decode surface: Unmarshal,
// SplitSessionID, and the streaming Reader (both the decoding and the pooled
// raw-frame paths). Nothing may panic, and accepted input must re-encode.
func FuzzDecodeNoPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, Version, byte(KindData)})
	if frame, err := Marshal(&Packet{Kind: KindData, Payload: []byte("seed")}); err == nil {
		f.Add(frame)
		f.Add(AppendSessionID(nil, 7))
		if dgram, err := AppendDatagram(nil, 7, &Packet{Kind: KindParity, K: 4, N: 6, Payload: []byte("x")}); err == nil {
			f.Add(dgram)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, consumed, err := Unmarshal(data); err == nil {
			if consumed < HeaderSize || consumed > len(data) {
				t.Fatalf("Unmarshal consumed %d of %d bytes", consumed, len(data))
			}
			if _, err := Marshal(p); err != nil {
				t.Fatalf("re-marshal of accepted packet failed: %v", err)
			}
		}
		if id, frame, err := SplitSessionID(data); err == nil {
			if len(frame) != len(data)-SessionIDSize {
				t.Fatalf("SplitSessionID returned %d frame bytes from %d", len(frame), len(data))
			}
			_ = id
		} else if len(data) >= SessionIDSize {
			t.Fatalf("SplitSessionID rejected %d bytes: %v", len(data), err)
		}

		// Streaming reader: decode as many frames as the bytes contain.
		pr := NewReader(bytes.NewReader(data))
		for {
			if _, err := pr.ReadPacket(); err != nil {
				break
			}
		}
		// Pooled raw-frame path over the same bytes.
		pr = NewReader(bytes.NewReader(data))
		for {
			b, err := pr.ReadFrameBuf(SessionIDSize)
			if err != nil {
				break
			}
			// The frame after the headroom must itself decode.
			if _, _, err := Unmarshal(b.B[SessionIDSize:]); err != nil {
				t.Fatalf("ReadFrameBuf produced an undecodable frame: %v", err)
			}
			b.Release()
		}
	})
}
