package packet

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip checks that any packet the codec accepts survives a
// marshal → unmarshal round trip bit-exactly, both as a bare frame and as an
// engine datagram with the 4-byte session-ID header.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), byte(KindData), uint32(3), byte(0), byte(4), byte(6), []byte("payload"), uint32(42))
	f.Add(uint64(0), uint32(0), byte(KindParity), uint32(9), byte(5), byte(4), byte(6), []byte{}, uint32(0))
	f.Add(uint64(1<<63), uint32(1<<31), byte(KindControl), uint32(0), byte(255), byte(255), byte(255), bytes.Repeat([]byte{0xAB}, 1000), uint32(1<<31))
	f.Fuzz(func(t *testing.T, seq uint64, stream uint32, kind byte, group uint32, index, k, n byte, payload []byte, session uint32) {
		p := &Packet{
			Seq:      seq,
			StreamID: stream,
			Kind:     Kind(kind),
			Group:    group,
			Index:    index,
			K:        k,
			N:        n,
			Payload:  payload,
		}
		frame, err := Marshal(p)
		if err != nil {
			// Marshal only rejects invalid kinds and oversized payloads.
			if p.Kind.Valid() && len(payload) <= MaxPayload {
				t.Fatalf("Marshal rejected a valid packet: %v", err)
			}
			return
		}
		// AppendFrame must agree with Marshal.
		appended, err := AppendFrame(nil, p)
		if err != nil {
			t.Fatalf("AppendFrame failed after Marshal succeeded: %v", err)
		}
		if !bytes.Equal(frame, appended) {
			t.Fatal("AppendFrame and Marshal disagree")
		}

		got, consumed, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("Unmarshal(Marshal(p)) failed: %v", err)
		}
		if consumed != len(frame) {
			t.Fatalf("Unmarshal consumed %d of %d bytes", consumed, len(frame))
		}
		if got.Seq != p.Seq || got.StreamID != p.StreamID || got.Kind != p.Kind ||
			got.Group != p.Group || got.Index != p.Index || got.K != p.K || got.N != p.N ||
			!bytes.Equal(got.Payload, p.Payload) {
			t.Fatalf("round trip mismatch: sent %v, got %v", p, got)
		}

		// Datagram round trip: session ID header + frame.
		dgram, err := AppendDatagram(nil, session, p)
		if err != nil {
			t.Fatalf("AppendDatagram: %v", err)
		}
		id, rest, err := SplitSessionID(dgram)
		if err != nil {
			t.Fatalf("SplitSessionID: %v", err)
		}
		if id != session {
			t.Fatalf("session id round trip: sent %d, got %d", session, id)
		}
		if !bytes.Equal(rest, frame) {
			t.Fatal("datagram frame bytes corrupted")
		}
	})
}

// FuzzParseReportDatagram throws raw datagrams at the feedback wire path the
// engine's read loop runs: split the session-ID prefix, validate the frame,
// and parse the receiver report. Nothing may panic on arbitrary bytes, and
// every accepted report must survive a re-encode round trip bit-faithfully —
// the loss numbers steering a session's FEC level cannot afford codec drift.
func FuzzParseReportDatagram(f *testing.F) {
	if dgram, err := AppendReportDatagram(nil, 7, 3, 9, Report{HighestSeq: 42, Received: 90, Lost: 10, Window: 100}); err == nil {
		f.Add(dgram)
		f.Add(dgram[:len(dgram)-1]) // truncated payload
	}
	if dgram, err := AppendReportDatagram(nil, 0, 0, 0, Report{}); err == nil {
		f.Add(dgram)
	}
	if frame, err := Marshal(&Packet{Kind: KindData, Payload: []byte("not feedback")}); err == nil {
		f.Add(append(AppendSessionID(nil, 5), frame...))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, frame, err := SplitSessionID(data)
		if err != nil {
			return
		}
		// The engine's gate: only validated frames reach ParseReport.
		if ValidateFrame(frame) != nil {
			return
		}
		rep, err := ParseReport(frame)
		if err != nil {
			// Anything the engine would consume as feedback must either parse
			// or be a non-feedback kind / malformed payload — both rejected
			// without panicking, which reaching this point proves.
			return
		}
		if loss := rep.LossFraction(); loss < 0 || loss > 1 {
			t.Fatalf("LossFraction = %v out of [0,1] for %v", loss, rep)
		}
		// Round trip: re-encoding the parsed report must yield a datagram
		// whose report parses back identically, for the same session.
		p, _, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("validated feedback frame failed Unmarshal: %v", err)
		}
		redgram, err := AppendReportDatagram(nil, id, p.Seq, p.StreamID, rep)
		if err != nil {
			t.Fatalf("re-encode of accepted report failed: %v", err)
		}
		id2, frame2, err := SplitSessionID(redgram)
		if err != nil || id2 != id {
			t.Fatalf("re-encoded datagram session = %d, %v; want %d", id2, err, id)
		}
		rep2, err := ParseReport(frame2)
		if err != nil {
			t.Fatalf("re-encoded report failed ParseReport: %v", err)
		}
		if rep2 != rep {
			t.Fatalf("report round trip mismatch: sent %v, got %v", rep, rep2)
		}
	})
}

// FuzzParseNackDatagram throws raw datagrams at the NACK wire path the
// engine's read loop runs: split the session-ID prefix, validate the frame,
// and parse the retransmission request. Nothing may panic on arbitrary bytes,
// every accepted request must respect the MaxNackSeqs bound, and re-encoding
// the parsed seqs must round trip bit-faithfully.
func FuzzParseNackDatagram(f *testing.F) {
	if dgram, err := AppendNackDatagram(nil, 7, 1, 9, []uint64{3, 5, 8}); err == nil {
		f.Add(dgram)
		f.Add(dgram[:len(dgram)-1]) // truncated payload
	}
	if dgram, err := AppendNackDatagram(nil, 0, 0, 0, []uint64{0}); err == nil {
		f.Add(dgram)
	}
	if frame, err := Marshal(&Packet{Kind: KindFeedback, Payload: []byte("not a nack")}); err == nil {
		f.Add(append(AppendSessionID(nil, 5), frame...))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, frame, err := SplitSessionID(data)
		if err != nil {
			return
		}
		// The engine's gate: only validated frames reach ParseNack.
		if ValidateFrame(frame) != nil {
			return
		}
		var seqbuf [MaxNackSeqs]uint64
		seqs, err := ParseNack(frame, seqbuf[:0])
		if err != nil {
			return
		}
		if len(seqs) == 0 || len(seqs) > MaxNackSeqs {
			t.Fatalf("ParseNack returned %d seqs, want 1..%d", len(seqs), MaxNackSeqs)
		}
		// Round trip: re-encoding the parsed seqs must yield a datagram whose
		// request parses back identically, for the same session.
		p, _, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("validated nack frame failed Unmarshal: %v", err)
		}
		redgram, err := AppendNackDatagram(nil, id, p.Seq, p.StreamID, seqs)
		if err != nil {
			t.Fatalf("re-encode of accepted nack failed: %v", err)
		}
		id2, frame2, err := SplitSessionID(redgram)
		if err != nil || id2 != id {
			t.Fatalf("re-encoded datagram session = %d, %v; want %d", id2, err, id)
		}
		seqs2, err := ParseNack(frame2, nil)
		if err != nil {
			t.Fatalf("re-encoded nack failed ParseNack: %v", err)
		}
		if len(seqs2) != len(seqs) {
			t.Fatalf("nack round trip length mismatch: sent %d, got %d", len(seqs), len(seqs2))
		}
		for i := range seqs {
			if seqs[i] != seqs2[i] {
				t.Fatalf("nack round trip mismatch at %d: sent %d, got %d", i, seqs[i], seqs2[i])
			}
		}
	})
}

// FuzzDecodeNoPanic throws arbitrary bytes at every decode surface: Unmarshal,
// SplitSessionID, and the streaming Reader (both the decoding and the pooled
// raw-frame paths). Nothing may panic, and accepted input must re-encode.
func FuzzDecodeNoPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, Version, byte(KindData)})
	if frame, err := Marshal(&Packet{Kind: KindData, Payload: []byte("seed")}); err == nil {
		f.Add(frame)
		f.Add(AppendSessionID(nil, 7))
		if dgram, err := AppendDatagram(nil, 7, &Packet{Kind: KindParity, K: 4, N: 6, Payload: []byte("x")}); err == nil {
			f.Add(dgram)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, consumed, err := Unmarshal(data); err == nil {
			if consumed < HeaderSize || consumed > len(data) {
				t.Fatalf("Unmarshal consumed %d of %d bytes", consumed, len(data))
			}
			if _, err := Marshal(p); err != nil {
				t.Fatalf("re-marshal of accepted packet failed: %v", err)
			}
		}
		if id, frame, err := SplitSessionID(data); err == nil {
			if len(frame) != len(data)-SessionIDSize {
				t.Fatalf("SplitSessionID returned %d frame bytes from %d", len(frame), len(data))
			}
			_ = id
		} else if len(data) >= SessionIDSize {
			t.Fatalf("SplitSessionID rejected %d bytes: %v", len(data), err)
		}

		// Streaming reader: decode as many frames as the bytes contain.
		pr := NewReader(bytes.NewReader(data))
		for {
			if _, err := pr.ReadPacket(); err != nil {
				break
			}
		}
		// Pooled raw-frame path over the same bytes.
		pr = NewReader(bytes.NewReader(data))
		for {
			b, err := pr.ReadFrameBuf(SessionIDSize)
			if err != nil {
				break
			}
			// The frame after the headroom must itself decode.
			if _, _, err := Unmarshal(b.B[SessionIDSize:]); err != nil {
				t.Fatalf("ReadFrameBuf produced an undecodable frame: %v", err)
			}
			b.Release()
		}
	})
}
