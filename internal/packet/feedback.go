package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// A receiver report is the upstream half of the engine's closed adaptation
// loop: a downstream receiver periodically summarizes what it saw over its
// last observation window and sends the summary back to the proxy on the same
// UDP socket the data arrived on. The report travels as an ordinary engine
// datagram — session ID prefix plus one frame — whose kind is KindFeedback
// and whose payload is the fixed-size encoding below, so the engine's
// datagram gate validates it like any other frame before the adaptation
// plane decodes it.
//
// Report payload layout (big endian):
//
//	highest uint64  highest sequence number seen on the session
//	rcvd    uint32  packets received in the observation window
//	lost    uint32  packets lost in the observation window
//	window  uint32  nominal window size in packets
//	rtt     uint32  receiver's round-trip estimate in milliseconds (0 unknown)
const ReportPayloadSize = 8 + 4 + 4 + 4 + 4

// ErrBadReport is returned by ParseReport for frames that are not well-formed
// receiver reports.
var ErrBadReport = errors.New("packet: malformed receiver report")

// Report is one receiver's loss summary for an observation window.
type Report struct {
	// HighestSeq is the highest sequence number the receiver has seen.
	HighestSeq uint64
	// Received and Lost count the packets that arrived and the packets the
	// receiver inferred missing during the window.
	Received uint32
	Lost     uint32
	// Window is the nominal observation window size in packets.
	Window uint32
	// RTTMillis is the receiver's round-trip estimate to the proxy in
	// milliseconds, 0 when unknown. The adaptation plane uses it to choose a
	// repair mechanism: retransmission only pays off when the RTT leaves time
	// for a NACK round trip within the playout budget.
	RTTMillis uint32
}

// LossFraction returns the loss rate the report describes, in [0,1].
func (r Report) LossFraction() float64 {
	total := uint64(r.Received) + uint64(r.Lost)
	if total == 0 {
		return 0
	}
	return float64(r.Lost) / float64(total)
}

// String summarizes the report for logs.
func (r Report) String() string {
	return fmt.Sprintf("report{high=%d rcvd=%d lost=%d win=%d rtt=%dms loss=%.4f}",
		r.HighestSeq, r.Received, r.Lost, r.Window, r.RTTMillis, r.LossFraction())
}

// appendReportPayload appends the report's wire payload to dst.
func appendReportPayload(dst []byte, r Report) []byte {
	dst = binary.BigEndian.AppendUint64(dst, r.HighestSeq)
	dst = binary.BigEndian.AppendUint32(dst, r.Received)
	dst = binary.BigEndian.AppendUint32(dst, r.Lost)
	dst = binary.BigEndian.AppendUint32(dst, r.Window)
	dst = binary.BigEndian.AppendUint32(dst, r.RTTMillis)
	return dst
}

// AppendReportFrame appends a KindFeedback frame carrying r to dst. seq is
// the report's own sequence number (receivers typically count reports).
func AppendReportFrame(dst []byte, seq uint64, streamID uint32, r Report) ([]byte, error) {
	return AppendFrame(dst, &Packet{
		Seq:      seq,
		StreamID: streamID,
		Kind:     KindFeedback,
		Payload:  appendReportPayload(make([]byte, 0, ReportPayloadSize), r),
	})
}

// AppendReportDatagram appends a complete engine feedback datagram (session
// ID + KindFeedback frame) to dst.
func AppendReportDatagram(dst []byte, session uint32, seq uint64, streamID uint32, r Report) ([]byte, error) {
	return AppendReportFrame(AppendSessionID(dst, session), seq, streamID, r)
}

// ParseReport decodes the receiver report carried by a validated frame (as
// accepted by ValidateFrame). It does not allocate, so the engine can decode
// feedback on its read loop.
func ParseReport(frame []byte) (Report, error) {
	if len(frame) < HeaderSize || Kind(frame[3]) != KindFeedback {
		return Report{}, ErrBadReport
	}
	payload := frame[HeaderSize:]
	if len(payload) != ReportPayloadSize {
		return Report{}, fmt.Errorf("%w: payload %d bytes, want %d", ErrBadReport, len(payload), ReportPayloadSize)
	}
	return Report{
		HighestSeq: binary.BigEndian.Uint64(payload),
		Received:   binary.BigEndian.Uint32(payload[8:]),
		Lost:       binary.BigEndian.Uint32(payload[12:]),
		Window:     binary.BigEndian.Uint32(payload[16:]),
		RTTMillis:  binary.BigEndian.Uint32(payload[20:]),
	}, nil
}
