package packet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBufferFIFO(t *testing.T) {
	b := NewBuffer(10)
	for i := 0; i < 5; i++ {
		if err := b.Put(&Packet{Seq: uint64(i), Kind: KindData}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	for i := 0; i < 5; i++ {
		p, err := b.Get()
		if err != nil {
			t.Fatal(err)
		}
		if p.Seq != uint64(i) {
			t.Fatalf("got seq %d, want %d", p.Seq, i)
		}
	}
}

func TestBufferInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	NewBuffer(0)
}

func TestBufferTryPutFull(t *testing.T) {
	b := NewBuffer(2)
	if err := b.TryPut(&Packet{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.TryPut(&Packet{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.TryPut(&Packet{Seq: 3}); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if b.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", b.Drops())
	}
}

func TestBufferTryGetEmpty(t *testing.T) {
	b := NewBuffer(1)
	if _, ok := b.TryGet(); ok {
		t.Fatal("TryGet on empty buffer returned ok")
	}
	b.Put(&Packet{Seq: 9})
	p, ok := b.TryGet()
	if !ok || p.Seq != 9 {
		t.Fatalf("TryGet = (%v,%v), want packet 9", p, ok)
	}
}

func TestBufferBlockingPutUnblockedByGet(t *testing.T) {
	b := NewBuffer(1)
	b.Put(&Packet{Seq: 1})
	done := make(chan error, 1)
	go func() { done <- b.Put(&Packet{Seq: 2}) }()
	select {
	case <-done:
		t.Fatal("Put returned while buffer was full")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := b.Get(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("Put did not unblock after Get")
	}
}

func TestBufferBlockingGetUnblockedByPut(t *testing.T) {
	b := NewBuffer(1)
	got := make(chan *Packet, 1)
	go func() {
		p, err := b.Get()
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		got <- p
	}()
	time.Sleep(10 * time.Millisecond)
	b.Put(&Packet{Seq: 77})
	select {
	case p := <-got:
		if p.Seq != 77 {
			t.Fatalf("seq = %d, want 77", p.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("Get did not unblock after Put")
	}
}

func TestBufferCloseUnblocksWaiters(t *testing.T) {
	b := NewBuffer(1)
	b.Put(&Packet{Seq: 1})
	putErr := make(chan error, 1)
	getErr := make(chan error, 1)
	go func() { putErr <- b.Put(&Packet{Seq: 2}) }()
	empty := NewBuffer(1)
	go func() {
		_, err := empty.Get()
		getErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	empty.Close()
	if err := <-putErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("Put err = %v, want ErrClosed", err)
	}
	if err := <-getErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("Get err = %v, want ErrClosed", err)
	}
}

func TestBufferDrainAfterClose(t *testing.T) {
	b := NewBuffer(4)
	b.Put(&Packet{Seq: 1})
	b.Put(&Packet{Seq: 2})
	b.Close()
	if !b.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if p, err := b.Get(); err != nil || p.Seq != 1 {
		t.Fatalf("first drain: %v %v", p, err)
	}
	if p, err := b.Get(); err != nil || p.Seq != 2 {
		t.Fatalf("second drain: %v %v", p, err)
	}
	if _, err := b.Get(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed after drain", err)
	}
	if err := b.Put(&Packet{Seq: 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close err = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestBufferConcurrentProducersConsumers(t *testing.T) {
	b := NewBuffer(8)
	const producers, perProducer = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := b.Put(&Packet{Seq: uint64(p*perProducer + i), Kind: KindData}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}
	var consumed sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	for c := 0; c < 3; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				p, err := b.Get()
				if err != nil {
					return
				}
				mu.Lock()
				if seen[p.Seq] {
					t.Errorf("duplicate packet %d", p.Seq)
				}
				seen[p.Seq] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Wait for the consumers to drain everything, then close.
	for b.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	b.Close()
	consumed.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d packets, want %d", len(seen), producers*perProducer)
	}
}
