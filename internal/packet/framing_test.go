package packet

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var sent []*Packet
	for i := 0; i < 20; i++ {
		p := &Packet{Seq: uint64(i), StreamID: 1, Kind: KindData, Payload: bytes.Repeat([]byte{byte(i)}, i)}
		sent = append(sent, p)
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range sent {
		got, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("packet %d mismatch: got %v want %v", i, got, want)
		}
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF at clean end", err)
	}
}

func TestReaderTruncatedFrame(t *testing.T) {
	full, _ := Marshal(samplePacket())
	r := NewReader(bytes.NewReader(full[:len(full)-3]))
	if _, err := r.ReadPacket(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	full, _ := Marshal(samplePacket())
	r := NewReader(bytes.NewReader(full[:HeaderSize-2]))
	_, err := r.ReadPacket()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want a mid-header error", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	garbage := bytes.Repeat([]byte{0xAB}, HeaderSize+10)
	r := NewReader(bytes.NewReader(garbage))
	if _, err := r.ReadPacket(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderRejectsHugeLength(t *testing.T) {
	good, _ := Marshal(samplePacket())
	bad := append([]byte(nil), good...)
	bad[24], bad[25], bad[26], bad[27] = 0xff, 0xff, 0xff, 0xff
	r := NewReader(bytes.NewReader(bad))
	if _, err := r.ReadPacket(); !errors.Is(err, ErrPayloadRange) {
		t.Fatalf("err = %v, want ErrPayloadRange", err)
	}
}

func TestWriterConcurrentFramesRemainIntact(t *testing.T) {
	var buf bytes.Buffer
	// Serialize the buffer behind a mutex-free Writer: Writer itself must
	// guarantee whole-frame atomicity for concurrent callers.
	w := NewWriter(&syncBuffer{buf: &buf})
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := &Packet{Seq: uint64(g*1000 + i), Kind: KindData, Payload: bytes.Repeat([]byte{byte(g)}, 33)}
				if err := w.WritePacket(p); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	count := 0
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d corrupted: %v", count, err)
		}
		for _, b := range p.Payload {
			if b != p.Payload[0] {
				t.Fatalf("interleaved frame detected in packet %v", p)
			}
		}
		count++
	}
	if count != writers*perWriter {
		t.Fatalf("read %d packets, want %d", count, writers*perWriter)
	}
}

// syncBuffer makes bytes.Buffer safe for the concurrent writer test without
// hiding the frame-interleaving property being tested.
type syncBuffer struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}
