package packet

import (
	"encoding/binary"
	"errors"
)

// The multi-session UDP wire format prepends a 4-byte big-endian session ID
// to the existing packet framing, so one datagram is:
//
//	session uint32
//	frame   []byte  (header + payload, exactly as produced by Marshal)
//
// The engine demultiplexes on the session ID without touching the frame.
const SessionIDSize = 4

// ErrShortDatagram is returned by SplitSessionID for datagrams shorter than a
// session ID.
var ErrShortDatagram = errors.New("packet: datagram shorter than session id")

// PutSessionID writes the session ID into the first SessionIDSize bytes of b.
func PutSessionID(b []byte, id uint32) {
	binary.BigEndian.PutUint32(b, id)
}

// AppendSessionID appends the session ID to dst and returns the extended
// slice.
func AppendSessionID(dst []byte, id uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, id)
}

// SplitSessionID splits a datagram into its session ID and the frame bytes
// that follow it.
func SplitSessionID(dgram []byte) (id uint32, frame []byte, err error) {
	if len(dgram) < SessionIDSize {
		return 0, nil, ErrShortDatagram
	}
	return binary.BigEndian.Uint32(dgram), dgram[SessionIDSize:], nil
}

// ErrFrameLength is returned by ValidateFrame when the buffer does not hold
// exactly one complete frame.
var ErrFrameLength = errors.New("packet: frame length mismatch")

// validateHeader checks a frame header's fixed fields and returns the
// payload length it declares. It is shared by every decode surface (the
// streaming Reader, Unmarshal and the engine's datagram gate) so the checks
// cannot drift apart.
func validateHeader(hdr []byte) (plen int, err error) {
	if len(hdr) < HeaderSize {
		return 0, ErrShortBuffer
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, ErrBadMagic
	}
	if hdr[2] != Version {
		return 0, ErrBadVersion
	}
	if !Kind(hdr[3]).Valid() {
		return 0, ErrBadKind
	}
	plen = int(binary.BigEndian.Uint32(hdr[24:]))
	if plen > MaxPayload {
		return 0, ErrPayloadRange
	}
	return plen, nil
}

// ValidateFrame cheaply checks that frame holds exactly one well-formed
// packet frame (header plus full payload) without decoding or allocating.
// The relay engine runs this on every inbound datagram so garbage can be
// dropped before it reaches a session's chain.
func ValidateFrame(frame []byte) error {
	plen, err := validateHeader(frame)
	if err != nil {
		return err
	}
	if len(frame) != HeaderSize+plen {
		return ErrFrameLength
	}
	return nil
}

// FrameKind returns the packet kind a marshaled frame declares. The frame
// must have passed header validation (e.g. come from Reader.ReadFrameBuf).
func FrameKind(frame []byte) Kind { return Kind(frame[3]) }

// PutFrameHeader encodes p's header fields into hdr, declaring a payload of
// plen bytes, without touching the payload region — the in-place sibling of
// AppendFrame for callers that compute (or already hold) the payload directly
// in a pooled frame buffer. p.Payload is ignored.
func PutFrameHeader(hdr []byte, p *Packet, plen int) error {
	if !p.Kind.Valid() {
		return ErrBadKind
	}
	if plen < 0 || plen > MaxPayload {
		return ErrPayloadRange
	}
	if len(hdr) < HeaderSize {
		return ErrShortBuffer
	}
	hdr[0], hdr[1] = magic0, magic1
	hdr[2] = Version
	hdr[3] = byte(p.Kind)
	binary.BigEndian.PutUint64(hdr[4:], p.Seq)
	binary.BigEndian.PutUint32(hdr[12:], p.StreamID)
	binary.BigEndian.PutUint32(hdr[16:], p.Group)
	hdr[20] = p.Index
	hdr[21] = p.K
	hdr[22] = p.N
	hdr[23] = 0
	binary.BigEndian.PutUint32(hdr[24:], uint32(plen))
	return nil
}

// AppendFrame appends the wire encoding of p to dst and returns the extended
// slice, allowing callers to marshal into pooled or stack buffers without the
// allocation made by Marshal.
func AppendFrame(dst []byte, p *Packet) ([]byte, error) {
	if !p.Kind.Valid() {
		return dst, ErrBadKind
	}
	if len(p.Payload) > MaxPayload {
		return dst, ErrPayloadRange
	}
	off := len(dst)
	dst = append(dst, make([]byte, headerSize)...)
	hdr := dst[off:]
	hdr[0], hdr[1] = magic0, magic1
	hdr[2] = Version
	hdr[3] = byte(p.Kind)
	binary.BigEndian.PutUint64(hdr[4:], p.Seq)
	binary.BigEndian.PutUint32(hdr[12:], p.StreamID)
	binary.BigEndian.PutUint32(hdr[16:], p.Group)
	hdr[20] = p.Index
	hdr[21] = p.K
	hdr[22] = p.N
	hdr[23] = 0
	binary.BigEndian.PutUint32(hdr[24:], uint32(len(p.Payload)))
	return append(dst, p.Payload...), nil
}

// AppendDatagram appends a complete engine datagram (session ID + frame) for
// p to dst.
func AppendDatagram(dst []byte, session uint32, p *Packet) ([]byte, error) {
	return AppendFrame(AppendSessionID(dst, session), p)
}
