package packet

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Seq:      42,
		StreamID: 7,
		Kind:     KindData,
		Group:    3,
		Index:    2,
		K:        4,
		N:        6,
		Payload:  []byte("hello, wireless world"),
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindData:    "data",
		KindParity:  "parity",
		KindControl: "control",
		Kind(99):    "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindValid(t *testing.T) {
	if !KindData.Valid() || !KindParity.Valid() || !KindControl.Valid() {
		t.Fatal("defined kinds must be valid")
	}
	if Kind(0).Valid() || Kind(200).Valid() {
		t.Fatal("undefined kinds must be invalid")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestMarshalEmptyPayload(t *testing.T) {
	p := &Packet{Seq: 1, Kind: KindControl}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize {
		t.Fatalf("len = %d, want %d", len(buf), HeaderSize)
	}
	got, _, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %v, want empty", got.Payload)
	}
}

func TestMarshalInvalidKind(t *testing.T) {
	if _, err := Marshal(&Packet{Kind: Kind(0)}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestMarshalOversizedPayload(t *testing.T) {
	p := &Packet{Kind: KindData, Payload: make([]byte, MaxPayload+1)}
	if _, err := Marshal(p); !errors.Is(err, ErrPayloadRange) {
		t.Fatalf("err = %v, want ErrPayloadRange", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, _ := Marshal(samplePacket())

	t.Run("short buffer", func(t *testing.T) {
		if _, _, err := Unmarshal(good[:5]); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("err = %v, want ErrShortBuffer", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, _, err := Unmarshal(good[:len(good)-1]); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("err = %v, want ErrShortBuffer", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 0
		if _, _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = 99
		if _, _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("bad kind", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[3] = 0
		if _, _, err := Unmarshal(bad); !errors.Is(err, ErrBadKind) {
			t.Fatalf("err = %v, want ErrBadKind", err)
		}
	})
	t.Run("payload length out of range", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[24], bad[25], bad[26], bad[27] = 0xff, 0xff, 0xff, 0xff
		if _, _, err := Unmarshal(bad); !errors.Is(err, ErrPayloadRange) {
			t.Fatalf("err = %v, want ErrPayloadRange", err)
		}
	})
}

func TestUnmarshalDoesNotAliasInput(t *testing.T) {
	p := samplePacket()
	buf, _ := Marshal(p)
	got, _, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[HeaderSize] ^= 0xff
	if got.Payload[0] == buf[HeaderSize] {
		t.Fatal("decoded payload aliases the input buffer")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint64, stream, group uint32, index, k, n uint8, kindSel uint8, payload []byte) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		p := &Packet{
			Seq:      seq,
			StreamID: stream,
			Kind:     Kind(kindSel%3) + KindData,
			Group:    group,
			Index:    index,
			K:        k,
			N:        n,
			Payload:  payload,
		}
		buf, err := Marshal(p)
		if err != nil {
			return false
		}
		got, consumed, err := Unmarshal(buf)
		if err != nil || consumed != len(buf) {
			return false
		}
		if got.Seq != p.Seq || got.StreamID != p.StreamID || got.Kind != p.Kind ||
			got.Group != p.Group || got.Index != p.Index || got.K != p.K || got.N != p.N {
			return false
		}
		return bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := samplePacket()
	c := p.Clone()
	c.Payload[0] = 'X'
	c.Seq = 1000
	if p.Payload[0] == 'X' || p.Seq == 1000 {
		t.Fatal("Clone shares state with the original")
	}
}

func TestIsFEC(t *testing.T) {
	if !samplePacket().IsFEC() {
		t.Fatal("packet with N>0 should be FEC")
	}
	if (&Packet{Kind: KindData}).IsFEC() {
		t.Fatal("packet with N=0 should not be FEC")
	}
}

func TestStringContainsFields(t *testing.T) {
	s := samplePacket().String()
	for _, want := range []string{"seq=42", "stream=7", "data", "grp=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
