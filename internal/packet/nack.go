package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// A NACK is the retransmission half of the engine's feedback wire: a receiver
// that detects gaps in the data sequence sends the missing sequence numbers
// back to the proxy on the same UDP socket the data arrived on. The request
// travels as an ordinary engine datagram — session ID prefix plus one frame —
// whose kind is KindNack, so the engine's datagram gate validates it like any
// other frame before the session's ARQ history answers it with unicast
// retransmissions.
//
// Nack payload layout (big endian):
//
//	count uint16           number of sequence numbers that follow
//	seqs  [count]uint64    the missing sequence numbers
//
// The count is bounded by MaxNackSeqs so a single request cannot demand an
// unbounded retransmission burst; receivers with more gaps than that spread
// them across rounds (the sliding window of arq.Receiver bounds the gap set
// anyway).

// MaxNackSeqs bounds how many sequence numbers one NACK frame may carry.
const MaxNackSeqs = 64

// nackCountSize is the encoded size of the leading count field.
const nackCountSize = 2

// ErrBadNack is returned by ParseNack for frames that are not well-formed
// retransmission requests.
var ErrBadNack = errors.New("packet: malformed nack")

// appendNackPayload appends the NACK wire payload to dst.
func appendNackPayload(dst []byte, seqs []uint64) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(seqs)))
	for _, s := range seqs {
		dst = binary.BigEndian.AppendUint64(dst, s)
	}
	return dst
}

// AppendNackFrame appends a KindNack frame requesting seqs to dst. seq is the
// request's own sequence number (receivers typically count NACK rounds).
func AppendNackFrame(dst []byte, seq uint64, streamID uint32, seqs []uint64) ([]byte, error) {
	if len(seqs) == 0 || len(seqs) > MaxNackSeqs {
		return nil, fmt.Errorf("%w: %d seqs, want 1..%d", ErrBadNack, len(seqs), MaxNackSeqs)
	}
	return AppendFrame(dst, &Packet{
		Seq:      seq,
		StreamID: streamID,
		Kind:     KindNack,
		Payload:  appendNackPayload(make([]byte, 0, nackCountSize+8*len(seqs)), seqs),
	})
}

// AppendNackDatagram appends a complete engine NACK datagram (session ID +
// KindNack frame) to dst.
func AppendNackDatagram(dst []byte, session uint32, seq uint64, streamID uint32, seqs []uint64) ([]byte, error) {
	return AppendNackFrame(AppendSessionID(dst, session), seq, streamID, seqs)
}

// ParseNack decodes the sequence numbers carried by a validated KindNack
// frame (as accepted by ValidateFrame), appending them to dst and returning
// the extended slice. Passing a caller-owned buffer with capacity MaxNackSeqs
// makes the decode allocation-free, so the engine can parse NACKs on its read
// loop.
func ParseNack(frame []byte, dst []uint64) ([]uint64, error) {
	if len(frame) < HeaderSize || Kind(frame[3]) != KindNack {
		return nil, ErrBadNack
	}
	payload := frame[HeaderSize:]
	if len(payload) < nackCountSize {
		return nil, fmt.Errorf("%w: payload %d bytes, want >= %d", ErrBadNack, len(payload), nackCountSize)
	}
	count := int(binary.BigEndian.Uint16(payload))
	if count == 0 || count > MaxNackSeqs {
		return nil, fmt.Errorf("%w: count %d, want 1..%d", ErrBadNack, count, MaxNackSeqs)
	}
	if len(payload) != nackCountSize+8*count {
		return nil, fmt.Errorf("%w: payload %d bytes, want %d", ErrBadNack, len(payload), nackCountSize+8*count)
	}
	for i := 0; i < count; i++ {
		dst = append(dst, binary.BigEndian.Uint64(payload[nackCountSize+8*i:]))
	}
	return dst, nil
}
