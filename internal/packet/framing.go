package packet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Writer frames packets onto an underlying byte stream. It is safe for
// concurrent use by multiple goroutines.
type Writer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriter returns a Writer that frames packets onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// WritePacket marshals p and writes the full frame to the underlying stream.
func (pw *Writer) WritePacket(p *Packet) error {
	buf, err := Marshal(p)
	if err != nil {
		return fmt.Errorf("packet: marshal: %w", err)
	}
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if _, err := pw.w.Write(buf); err != nil {
		return fmt.Errorf("packet: write frame: %w", err)
	}
	return nil
}

// Reader decodes framed packets from an underlying byte stream.
type Reader struct {
	r   *bufio.Reader
	hdr [HeaderSize]byte
}

// NewReader returns a Reader that decodes packets from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64*1024)}
}

// readHeader fills pr.hdr with the next frame header and validates it,
// returning the payload length. It returns io.EOF when the stream ends
// cleanly on a frame boundary.
func (pr *Reader) readHeader() (plen int, err error) {
	if _, err := io.ReadFull(pr.r, pr.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("packet: read header: %w", err)
	}
	// Validate header fields before reading the payload so a corrupted
	// length cannot make us allocate or block on garbage.
	return validateHeader(pr.hdr[:])
}

// ReadPacket reads the next framed packet. It returns io.EOF when the stream
// ends cleanly on a frame boundary and io.ErrUnexpectedEOF when it ends
// mid-frame.
func (pr *Reader) ReadPacket() (*Packet, error) {
	plen, err := pr.readHeader()
	if err != nil {
		return nil, err
	}
	full := make([]byte, HeaderSize+plen)
	copy(full, pr.hdr[:])
	if _, err := io.ReadFull(pr.r, full[HeaderSize:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("packet: read payload: %w", err)
	}
	p, _, err := Unmarshal(full)
	if err != nil {
		return nil, fmt.Errorf("packet: decode frame: %w", err)
	}
	return p, nil
}

// ReadFrameBuf reads the next frame into a pooled buffer without decoding it,
// the allocation-free read path of the relay engine. The returned Buf holds
// headroom unused bytes (for a caller-prepended session ID) followed by the
// complete frame; the caller owns the Buf and must Release it. EOF semantics
// match ReadPacket.
func (pr *Reader) ReadFrameBuf(headroom int) (*Buf, error) {
	plen, err := pr.readHeader()
	if err != nil {
		return nil, err
	}
	b := GetBuf(headroom + HeaderSize + plen)
	copy(b.B[headroom:], pr.hdr[:])
	if _, err := io.ReadFull(pr.r, b.B[headroom+HeaderSize:]); err != nil {
		b.Release()
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("packet: read payload: %w", err)
	}
	return b, nil
}
