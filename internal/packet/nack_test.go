package packet

import (
	"errors"
	"testing"
)

func TestNackRoundTrip(t *testing.T) {
	seqs := []uint64{0, 3, 7, 1 << 40}
	dgram, err := AppendNackDatagram(nil, 42, 2, 9, seqs)
	if err != nil {
		t.Fatalf("AppendNackDatagram: %v", err)
	}
	id, frame, err := SplitSessionID(dgram)
	if err != nil {
		t.Fatalf("SplitSessionID: %v", err)
	}
	if id != 42 {
		t.Fatalf("session = %d, want 42", id)
	}
	if err := ValidateFrame(frame); err != nil {
		t.Fatalf("ValidateFrame rejected a nack frame: %v", err)
	}
	if k := Kind(frame[3]); k != KindNack {
		t.Fatalf("kind = %v, want nack", k)
	}
	var buf [MaxNackSeqs]uint64
	got, err := ParseNack(frame, buf[:0])
	if err != nil {
		t.Fatalf("ParseNack: %v", err)
	}
	if len(got) != len(seqs) {
		t.Fatalf("got %d seqs, want %d", len(got), len(seqs))
	}
	for i := range seqs {
		if got[i] != seqs[i] {
			t.Fatalf("seq[%d] = %d, want %d", i, got[i], seqs[i])
		}
	}
}

func TestNackBounds(t *testing.T) {
	if _, err := AppendNackFrame(nil, 0, 0, nil); !errors.Is(err, ErrBadNack) {
		t.Fatalf("empty seqs: err = %v, want ErrBadNack", err)
	}
	big := make([]uint64, MaxNackSeqs+1)
	if _, err := AppendNackFrame(nil, 0, 0, big); !errors.Is(err, ErrBadNack) {
		t.Fatalf("oversized seqs: err = %v, want ErrBadNack", err)
	}
	// A full-size request is legal.
	full := make([]uint64, MaxNackSeqs)
	for i := range full {
		full[i] = uint64(i)
	}
	frame, err := AppendNackFrame(nil, 0, 0, full)
	if err != nil {
		t.Fatalf("full-size nack rejected: %v", err)
	}
	got, err := ParseNack(frame, nil)
	if err != nil || len(got) != MaxNackSeqs {
		t.Fatalf("ParseNack(full) = %d seqs, %v", len(got), err)
	}
}

func TestParseNackRejectsMalformed(t *testing.T) {
	// Wrong kind.
	frame, err := AppendFrame(nil, &Packet{Kind: KindFeedback, Payload: make([]byte, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNack(frame, nil); !errors.Is(err, ErrBadNack) {
		t.Fatalf("wrong kind: err = %v, want ErrBadNack", err)
	}
	// Count disagrees with payload length.
	frame, err = AppendFrame(nil, &Packet{Kind: KindNack, Payload: []byte{0, 3, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNack(frame, nil); !errors.Is(err, ErrBadNack) {
		t.Fatalf("short payload: err = %v, want ErrBadNack", err)
	}
	// Zero count.
	frame, err = AppendFrame(nil, &Packet{Kind: KindNack, Payload: []byte{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNack(frame, nil); !errors.Is(err, ErrBadNack) {
		t.Fatalf("zero count: err = %v, want ErrBadNack", err)
	}
}
