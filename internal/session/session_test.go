package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func testFetcher() Fetcher {
	return func(url string) ([]byte, error) {
		if url == "http://unreachable" {
			return nil, errors.New("host unreachable")
		}
		return []byte("<html>" + url + "</html>"), nil
	}
}

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := New("lecture", testFetcher())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Fatal("expected error for nil fetcher")
	}
}

func TestFirstJoinerBecomesLeader(t *testing.T) {
	s := newSession(t)
	if _, err := s.Join("instructor"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join("student-1"); err != nil {
		t.Fatal(err)
	}
	if s.Leader() != "instructor" {
		t.Fatalf("Leader = %q", s.Leader())
	}
	if len(s.Members()) != 2 {
		t.Fatalf("Members = %v", s.Members())
	}
	if _, err := s.Join("instructor"); !errors.Is(err, ErrAlreadyJoined) {
		t.Fatalf("duplicate join err = %v", err)
	}
}

func TestLoadURLMulticastsToAllParticipants(t *testing.T) {
	s := newSession(t)
	leader, _ := s.Join("leader")
	s1, _ := s.Join("wireless-laptop")
	s2, _ := s.Join("palmtop")

	urls := []string{"http://example.com/a", "http://example.com/b"}
	for _, u := range urls {
		if err := s.LoadURL("leader", u); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []*Participant{leader, s1, s2} {
		hist := p.History()
		if len(hist) != 2 {
			t.Fatalf("%s history = %d entries, want 2", p.Name(), len(hist))
		}
		for i, v := range hist {
			if v.URL != urls[i] || v.Leader != "leader" {
				t.Fatalf("%s visit %d = %+v", p.Name(), i, v)
			}
			if len(v.Content) == 0 {
				t.Fatalf("%s visit %d has no content", p.Name(), i)
			}
		}
	}
}

func TestLoadURLOnlyLeaderMayDrive(t *testing.T) {
	s := newSession(t)
	s.Join("leader")
	s.Join("student")
	if err := s.LoadURL("student", "http://example.com"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
}

func TestLoadURLFetchError(t *testing.T) {
	s := newSession(t)
	s.Join("leader")
	if err := s.LoadURL("leader", "http://unreachable"); err == nil {
		t.Fatal("expected fetch error to propagate")
	}
}

func TestFloorControlFIFO(t *testing.T) {
	s := newSession(t)
	s.Join("a")
	s.Join("b")
	s.Join("c")
	if err := s.RequestFloor("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.RequestFloor("c"); err != nil {
		t.Fatal(err)
	}
	if err := s.RequestFloor("b"); err != nil {
		t.Fatal("re-request should be a silent no-op")
	}
	if got := s.FloorQueue(); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("FloorQueue = %v", got)
	}
	// Leader releases: b takes over, then c.
	if err := s.ReleaseFloor("a"); err != nil {
		t.Fatal(err)
	}
	if s.Leader() != "b" {
		t.Fatalf("Leader = %q, want b", s.Leader())
	}
	if err := s.ReleaseFloor("a"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("stale release err = %v", err)
	}
	if err := s.ReleaseFloor("b"); err != nil {
		t.Fatal(err)
	}
	if s.Leader() != "c" {
		t.Fatalf("Leader = %q, want c", s.Leader())
	}
	// No one queued: releasing leaves the session leaderless.
	if err := s.ReleaseFloor("c"); err != nil {
		t.Fatal(err)
	}
	if s.Leader() != "" {
		t.Fatalf("Leader = %q, want empty", s.Leader())
	}
	// A new request grants immediately when leaderless.
	if err := s.RequestFloor("a"); err != nil {
		t.Fatal(err)
	}
	if s.Leader() != "a" {
		t.Fatalf("Leader = %q, want a", s.Leader())
	}
	if s.Transfers() != 3 {
		t.Fatalf("Transfers = %d, want 3", s.Transfers())
	}
}

func TestFloorRequestValidation(t *testing.T) {
	s := newSession(t)
	s.Join("a")
	if err := s.RequestFloor("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v", err)
	}
	if err := s.RequestFloor("a"); err != nil {
		t.Fatal("leader re-requesting the floor should be a no-op")
	}
}

func TestLeaveTransfersLeadership(t *testing.T) {
	s := newSession(t)
	s.Join("leader")
	s.Join("next")
	s.RequestFloor("next")
	if err := s.Leave("leader"); err != nil {
		t.Fatal(err)
	}
	if s.Leader() != "next" {
		t.Fatalf("Leader = %q, want next", s.Leader())
	}
	if err := s.Leave("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeaveRemovesQueuedRequest(t *testing.T) {
	s := newSession(t)
	s.Join("a")
	s.Join("b")
	s.Join("c")
	s.RequestFloor("b")
	s.RequestFloor("c")
	s.Leave("b")
	s.ReleaseFloor("a")
	if s.Leader() != "c" {
		t.Fatalf("Leader = %q, want c (b left before being granted)", s.Leader())
	}
}

func TestLeaderLeavesWithEmptyQueue(t *testing.T) {
	s := newSession(t)
	s.Join("only")
	if err := s.Leave("only"); err != nil {
		t.Fatal(err)
	}
	if s.Leader() != "" {
		t.Fatalf("Leader = %q, want empty", s.Leader())
	}
}

func TestConcurrentBrowsing(t *testing.T) {
	s := newSession(t)
	s.Join("leader")
	var participants []*Participant
	for i := 0; i < 5; i++ {
		p, err := s.Join(fmt.Sprintf("member-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		participants = append(participants, p)
	}
	const loads = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loads; i++ {
			if err := s.LoadURL("leader", fmt.Sprintf("http://example.com/p%d", i)); err != nil {
				t.Errorf("load: %v", err)
				return
			}
		}
	}()
	// Concurrent floor requests must not interfere with browsing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.RequestFloor(fmt.Sprintf("member-%d", i%5))
		}
	}()
	wg.Wait()
	for _, p := range participants {
		if len(p.History()) != loads {
			t.Fatalf("%s observed %d loads, want %d", p.Name(), len(p.History()), loads)
		}
	}
}
