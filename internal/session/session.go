// Package session implements the Pavilion collaborative-session substrate the
// paper builds on: a leadership (floor control) protocol that decides which
// participant drives the session, and collaborative web browsing in which the
// leader's URL loads are multicast to every participant, with proxies free to
// filter or transcode the content on its way to resource-limited devices.
package session

import (
	"errors"
	"fmt"
	"sync"

	"rapidware/internal/multicast"
	"rapidware/internal/packet"
)

// Errors returned by sessions.
var (
	// ErrNotLeader is returned when a non-leader attempts a leader-only
	// operation such as LoadURL or releasing the floor.
	ErrNotLeader = errors.New("session: not the leader")
	// ErrUnknownMember is returned for operations naming an unknown member.
	ErrUnknownMember = errors.New("session: unknown member")
	// ErrAlreadyJoined is returned when a member name is already in use.
	ErrAlreadyJoined = errors.New("session: member already joined")
)

// Fetcher retrieves web content on behalf of the leader (typically the
// leader's HTTP proxy, possibly caching — see internal/cache).
type Fetcher func(url string) ([]byte, error)

// PageVisit records one collaborative browse step observed by a member.
type PageVisit struct {
	URL     string
	Content []byte
	Leader  string
}

// Participant is one member of a collaborative session: it owns a multicast
// member endpoint and accumulates the browsing history it observes.
type Participant struct {
	name string
	mu   sync.Mutex
	hist []PageVisit
}

// Name returns the participant's name.
func (p *Participant) Name() string { return p.name }

// History returns the pages this participant has observed, in order.
func (p *Participant) History() []PageVisit {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PageVisit(nil), p.hist...)
}

func (p *Participant) record(v PageVisit) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hist = append(p.hist, v)
}

// Session is a Pavilion collaborative browsing session with floor control.
// The leader is the only participant allowed to load URLs; other members may
// request the floor and are granted leadership in FIFO order when the current
// leader releases it (the "leadership protocol for session floor control").
type Session struct {
	name    string
	fetcher Fetcher
	group   *multicast.Group

	mu           sync.Mutex
	participants map[string]*Participant
	leader       string
	floorQueue   []string
	transfers    uint64
}

// New returns a session. fetcher retrieves content for the leader's loads.
func New(name string, fetcher Fetcher) (*Session, error) {
	if fetcher == nil {
		return nil, errors.New("session: fetcher is required")
	}
	return &Session{
		name:         name,
		fetcher:      fetcher,
		group:        multicast.NewGroup(name),
		participants: make(map[string]*Participant),
	}, nil
}

// Join adds a participant. The first participant to join becomes the leader,
// as in Pavilion where the session creator initially holds the floor.
func (s *Session) Join(name string) (*Participant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.participants[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrAlreadyJoined, name)
	}
	p := &Participant{name: name}
	s.participants[name] = p
	if err := s.group.Join(multicast.NewBufferMember(name, 64)); err != nil {
		delete(s.participants, name)
		return nil, err
	}
	if s.leader == "" {
		s.leader = name
	}
	return p, nil
}

// Leave removes a participant. If the leader leaves, leadership passes to the
// next requester (or the session is left leaderless until someone joins).
func (s *Session) Leave(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.participants[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	delete(s.participants, name)
	_ = s.group.Leave(name)
	// Drop any pending floor request from the departed member.
	for i, n := range s.floorQueue {
		if n == name {
			s.floorQueue = append(s.floorQueue[:i], s.floorQueue[i+1:]...)
			break
		}
	}
	if s.leader == name {
		s.leader = ""
		s.grantNextLocked()
	}
	return nil
}

// Leader returns the current leader's name ("" when leaderless).
func (s *Session) Leader() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leader
}

// Members returns the participant names.
func (s *Session) Members() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.participants))
	for n := range s.participants {
		out = append(out, n)
	}
	return out
}

// RequestFloor asks for leadership. If the session is leaderless the floor is
// granted immediately; otherwise the request is queued in FIFO order.
func (s *Session) RequestFloor(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.participants[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	if s.leader == name {
		return nil // already holds the floor
	}
	for _, queued := range s.floorQueue {
		if queued == name {
			return nil // already queued
		}
	}
	s.floorQueue = append(s.floorQueue, name)
	if s.leader == "" {
		s.grantNextLocked()
	}
	return nil
}

// ReleaseFloor passes leadership to the next queued requester. Only the
// current leader may release the floor.
func (s *Session) ReleaseFloor(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leader != name {
		return fmt.Errorf("%w: %q", ErrNotLeader, name)
	}
	s.leader = ""
	s.grantNextLocked()
	return nil
}

// grantNextLocked promotes the next queued requester. Caller holds the lock.
func (s *Session) grantNextLocked() {
	for len(s.floorQueue) > 0 {
		next := s.floorQueue[0]
		s.floorQueue = s.floorQueue[1:]
		if _, ok := s.participants[next]; ok {
			s.leader = next
			s.transfers++
			return
		}
	}
}

// FloorQueue returns the names waiting for the floor, in grant order.
func (s *Session) FloorQueue() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.floorQueue...)
}

// Transfers returns how many times leadership has changed hands.
func (s *Session) Transfers() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transfers
}

// LoadURL is the collaborative browse operation: the leader fetches the URL
// (through its proxy) and the URL and content are multicast to every
// participant, who record the visit in their history.
func (s *Session) LoadURL(leader, url string) error {
	s.mu.Lock()
	if s.leader != leader {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotLeader, leader)
	}
	participants := make([]*Participant, 0, len(s.participants))
	for _, p := range s.participants {
		participants = append(participants, p)
	}
	s.mu.Unlock()

	content, err := s.fetcher(url)
	if err != nil {
		return fmt.Errorf("session: fetch %s: %w", url, err)
	}
	// Multicast the content (exercises the same group used by proxies)...
	payload := append([]byte(url+"\n"), content...)
	if _, err := s.group.Send(&packet.Packet{Kind: packet.KindData, Payload: payload}); err != nil {
		return err
	}
	// ...and record the visit at every participant.
	visit := PageVisit{URL: url, Content: content, Leader: leader}
	for _, p := range participants {
		p.record(visit)
	}
	return nil
}

// Close shuts down the session's multicast group.
func (s *Session) Close() error {
	return s.group.Close()
}
