// Package wireless simulates the wireless LAN substrate of the paper's
// testbed: a 2 Mbps WaveLAN-class medium with distance-dependent, bursty
// packet loss, serialization delay and jitter.
//
// The paper's experiments ran on real hardware (laptops 25 m from an access
// point). This package substitutes a channel simulator that reproduces the
// loss *process* the receivers observed — ≈1.5 % mostly-isolated losses at
// 25 m, rising sharply with distance — so the FEC filters and adaptive
// raplets exercise the same code paths against the same packet-level
// behaviour. See DESIGN.md for the substitution rationale.
package wireless

import (
	"fmt"
	"math"
	"math/rand"
)

// LossModel decides, packet by packet, whether a transmission is lost.
// Implementations are not safe for concurrent use; give each receiver its own
// model instance (losses at different receivers are independent, which is the
// property block erasure codes exploit for multicast).
type LossModel interface {
	// Lost returns true when the next packet should be dropped.
	Lost(rng *rand.Rand) bool
	// MeanLossRate returns the model's long-run loss probability.
	MeanLossRate() float64
	// String describes the model for experiment logs.
	String() string
}

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct {
	P float64
}

// Lost implements LossModel.
func (b Bernoulli) Lost(rng *rand.Rand) bool { return rng.Float64() < b.P }

// MeanLossRate implements LossModel.
func (b Bernoulli) MeanLossRate() float64 { return b.P }

// String implements LossModel.
func (b Bernoulli) String() string { return fmt.Sprintf("bernoulli(p=%.4f)", b.P) }

// GilbertElliott is the classic two-state bursty loss model: the channel
// alternates between a Good state (loss probability LossGood, usually ~0) and
// a Bad state (LossBad, usually ~1). Transition probabilities PGoodToBad and
// PBadToGood control how often bursts start and how long they last.
type GilbertElliott struct {
	PGoodToBad float64
	PBadToGood float64
	LossGood   float64
	LossBad    float64

	bad bool // current state
}

// NewGilbertElliott returns a model with the given transition and per-state
// loss probabilities, starting in the Good state.
func NewGilbertElliott(pGoodToBad, pBadToGood, lossGood, lossBad float64) *GilbertElliott {
	return &GilbertElliott{
		PGoodToBad: pGoodToBad,
		PBadToGood: pBadToGood,
		LossGood:   lossGood,
		LossBad:    lossBad,
	}
}

// Lost implements LossModel.
func (g *GilbertElliott) Lost(rng *rand.Rand) bool {
	// Advance the state machine first, then sample loss in the new state.
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return rng.Float64() < p
}

// MeanLossRate implements LossModel: the stationary loss probability.
func (g *GilbertElliott) MeanLossRate() float64 {
	denom := g.PGoodToBad + g.PBadToGood
	if denom == 0 {
		return g.LossGood
	}
	piBad := g.PGoodToBad / denom
	return piBad*g.LossBad + (1-piBad)*g.LossGood
}

// MeanBurstLength returns the expected number of consecutive packets spent in
// the Bad state once it is entered.
func (g *GilbertElliott) MeanBurstLength() float64 {
	if g.PBadToGood == 0 {
		return math.Inf(1)
	}
	return 1 / g.PBadToGood
}

// String implements LossModel.
func (g *GilbertElliott) String() string {
	return fmt.Sprintf("gilbert-elliott(pGB=%.4f pBG=%.4f mean=%.4f)", g.PGoodToBad, g.PBadToGood, g.MeanLossRate())
}

// Distance-based loss calibration constants. LossAtDistance follows a
// logistic curve calibrated so that a receiver ~25 m from the access point
// sees ≈1.5 % loss (the operating point of the paper's Figure 7) and loss
// rises dramatically over the following ten metres, matching the qualitative
// description in the paper and its companion study [16].
const (
	minLossRate      = 0.0005
	maxLossRate      = 0.60
	lossKneeDistance = 40.0 // metres at which loss reaches half of maxLossRate
	lossKneeWidth    = 4.5  // metres controlling how sharp the knee is
)

// LossAtDistance returns the mean packet loss rate at the given distance (in
// metres) from the access point.
func LossAtDistance(metres float64) float64 {
	if metres < 0 {
		metres = 0
	}
	logistic := 1 / (1 + math.Exp(-(metres-lossKneeDistance)/lossKneeWidth))
	return minLossRate + (maxLossRate-minLossRate)*logistic
}

// NewDistanceLoss returns a bursty loss model whose long-run loss rate
// matches LossAtDistance(metres). Bursts last meanBurst packets on average;
// meanBurst <= 1 selects independent (Bernoulli-like) losses.
func NewDistanceLoss(metres, meanBurst float64) *GilbertElliott {
	rate := LossAtDistance(metres)
	if meanBurst < 1 {
		meanBurst = 1
	}
	pBadToGood := 1 / meanBurst
	// With LossBad = 1 and LossGood ≈ 0, mean loss ≈ piBad, so solve
	// piBad = pGB / (pGB + pBG) = rate for pGB.
	pGoodToBad := rate * pBadToGood / (1 - rate)
	return NewGilbertElliott(pGoodToBad, pBadToGood, 0, 1)
}
