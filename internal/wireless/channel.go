package wireless

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rapidware/internal/packet"
)

// Errors returned by the channel.
var (
	// ErrReceiverExists is returned when attaching a receiver under a name
	// that is already in use.
	ErrReceiverExists = errors.New("wireless: receiver already attached")
	// ErrChannelClosed is returned by Broadcast after Close.
	ErrChannelClosed = errors.New("wireless: channel closed")
)

// LinkConfig describes the physical characteristics of the simulated medium.
type LinkConfig struct {
	// BandwidthBps is the raw link bandwidth in bits per second.
	BandwidthBps int
	// PropagationDelay is the fixed one-way latency added to every packet.
	PropagationDelay time.Duration
	// MaxJitter is the upper bound of the uniform random jitter added to
	// every delivered packet.
	MaxJitter time.Duration
}

// WaveLAN2Mbps returns the link configuration of the paper's testbed: the
// 2 Mbps WaveLAN network used for the FEC audio experiments.
func WaveLAN2Mbps() LinkConfig {
	return LinkConfig{
		BandwidthBps:     2_000_000,
		PropagationDelay: 2 * time.Millisecond,
		MaxJitter:        4 * time.Millisecond,
	}
}

// SerializationDelay returns how long a frame of the given size occupies the
// medium.
func (c LinkConfig) SerializationDelay(bytes int) time.Duration {
	if c.BandwidthBps <= 0 {
		return 0
	}
	bits := float64(bytes * 8)
	seconds := bits / float64(c.BandwidthBps)
	return time.Duration(seconds * float64(time.Second))
}

// Delivery describes what happened to one packet at one receiver.
type Delivery struct {
	Packet  *packet.Packet
	Lost    bool
	Latency time.Duration
}

// Receiver is one station attached to the channel. Deliveries appear on its
// buffer in transmission order; lost packets are simply absent (stations on a
// real WLAN receive no indication of loss either).
type Receiver struct {
	name    string
	model   LossModel
	rng     *rand.Rand
	buffer  *packet.Buffer
	mu      sync.Mutex
	rx      uint64
	dropped uint64
}

// Name returns the receiver's name.
func (r *Receiver) Name() string { return r.name }

// Buffer returns the receiver's delivery buffer.
func (r *Receiver) Buffer() *packet.Buffer { return r.buffer }

// Stats returns the number of packets received and lost at this receiver.
func (r *Receiver) Stats() (received, lost uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rx, r.dropped
}

// LossRate returns the observed loss fraction at this receiver.
func (r *Receiver) LossRate() float64 {
	rx, lost := r.Stats()
	total := rx + lost
	if total == 0 {
		return 0
	}
	return float64(lost) / float64(total)
}

// Channel is a simulated broadcast wireless medium. The access point
// multicasts every packet to all attached receivers; each receiver applies
// its own independent loss model, matching the paper's observation that a
// single parity packet can repair different losses at different stations.
//
// The channel is safe for concurrent use. Time can either be simulated
// (delays recorded in Delivery.Latency only) or enforced in real time.
type Channel struct {
	cfg      LinkConfig
	realTime bool

	mu        sync.Mutex
	receivers map[string]*Receiver
	closed    bool
	sent      uint64
}

// Option configures a Channel.
type Option func(*Channel)

// WithRealTime makes Broadcast sleep for the simulated serialization and
// propagation delays instead of merely reporting them. Experiments that only
// need loss statistics leave this off to run at full speed.
func WithRealTime() Option {
	return func(c *Channel) { c.realTime = true }
}

// NewChannel returns a channel with the given link configuration.
func NewChannel(cfg LinkConfig, opts ...Option) *Channel {
	c := &Channel{cfg: cfg, receivers: make(map[string]*Receiver)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Attach adds a receiver with its own loss model and its own explicit RNG
// (losses at different receivers are independent, which is the property block
// erasure codes exploit for multicast). The RNG must be provided by the
// caller — never drawn from the global math/rand source — so experiments and
// adaptation tests are reproducible under -race; the receiver takes ownership
// and serializes access to it. bufferSize bounds the receiver's delivery
// queue (packets beyond it are dropped as if the station's NIC overflowed).
func (c *Channel) Attach(name string, model LossModel, rng *rand.Rand, bufferSize int) (*Receiver, error) {
	if bufferSize <= 0 {
		bufferSize = 1024
	}
	if rng == nil {
		return nil, fmt.Errorf("wireless: attach %q: an explicit *rand.Rand is required", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.receivers[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrReceiverExists, name)
	}
	r := &Receiver{
		name:   name,
		model:  model,
		rng:    rng,
		buffer: packet.NewBuffer(bufferSize),
	}
	c.receivers[name] = r
	return r, nil
}

// Detach removes a receiver and closes its buffer.
func (c *Channel) Detach(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.receivers[name]; ok {
		r.buffer.Close()
		delete(c.receivers, name)
	}
}

// Receivers returns the attached receivers.
func (c *Channel) Receivers() []*Receiver {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Receiver, 0, len(c.receivers))
	for _, r := range c.receivers {
		out = append(out, r)
	}
	return out
}

// Sent returns the number of packets broadcast so far.
func (c *Channel) Sent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// Broadcast transmits p to every attached receiver and returns the per
// receiver outcomes. In real-time mode it sleeps for the serialization plus
// propagation delay once per broadcast (the medium is shared).
func (c *Channel) Broadcast(p *packet.Packet) ([]Delivery, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrChannelClosed
	}
	c.sent++
	receivers := make([]*Receiver, 0, len(c.receivers))
	for _, r := range c.receivers {
		receivers = append(receivers, r)
	}
	c.mu.Unlock()

	serialization := c.cfg.SerializationDelay(packet.HeaderSize + len(p.Payload))
	baseLatency := serialization + c.cfg.PropagationDelay
	if c.realTime {
		time.Sleep(baseLatency)
	}

	deliveries := make([]Delivery, 0, len(receivers))
	for _, r := range receivers {
		r.mu.Lock()
		lost := r.model.Lost(r.rng)
		var jitter time.Duration
		if c.cfg.MaxJitter > 0 {
			jitter = time.Duration(r.rng.Int63n(int64(c.cfg.MaxJitter)))
		}
		if lost {
			r.dropped++
		} else {
			r.rx++
		}
		r.mu.Unlock()

		d := Delivery{Packet: p, Lost: lost, Latency: baseLatency + jitter}
		if !lost {
			if err := r.buffer.TryPut(p.Clone()); err != nil {
				// A full or closed buffer is an overflow drop at the station.
				d.Lost = true
				r.mu.Lock()
				r.rx--
				r.dropped++
				r.mu.Unlock()
			}
		}
		deliveries = append(deliveries, d)
	}
	return deliveries, nil
}

// Close closes the channel and every receiver buffer.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, r := range c.receivers {
		r.buffer.Close()
	}
}
