package wireless

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"rapidware/internal/packet"
)

func TestBernoulliLossRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Bernoulli{P: 0.1}
	lost := 0
	const trials = 100_000
	for i := 0; i < trials; i++ {
		if m.Lost(rng) {
			lost++
		}
	}
	got := float64(lost) / trials
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("observed loss %v, want ~0.1", got)
	}
	if m.MeanLossRate() != 0.1 {
		t.Fatalf("MeanLossRate = %v", m.MeanLossRate())
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	never := Bernoulli{P: 0}
	always := Bernoulli{P: 1}
	for i := 0; i < 1000; i++ {
		if never.Lost(rng) {
			t.Fatal("P=0 model lost a packet")
		}
		if !always.Lost(rng) {
			t.Fatal("P=1 model delivered a packet")
		}
	}
}

func TestGilbertElliottStationaryLossRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGilbertElliott(0.01, 0.5, 0, 1)
	want := g.MeanLossRate() // 0.01/0.51 ≈ 0.0196
	lost := 0
	const trials = 200_000
	for i := 0; i < trials; i++ {
		if g.Lost(rng) {
			lost++
		}
	}
	got := float64(lost) / trials
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("observed loss %v, want ~%v", got, want)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With a long bad state, losses should come in runs much more often than
	// under an independent model with the same mean rate.
	rng := rand.New(rand.NewSource(4))
	g := NewGilbertElliott(0.002, 0.2, 0, 1) // bursts of ~5
	if got := g.MeanBurstLength(); got != 5 {
		t.Fatalf("MeanBurstLength = %v, want 5", got)
	}
	var runs, runLen, totalRunLen int
	inRun := false
	for i := 0; i < 200_000; i++ {
		if g.Lost(rng) {
			if !inRun {
				inRun = true
				runs++
				runLen = 0
			}
			runLen++
		} else if inRun {
			inRun = false
			totalRunLen += runLen
		}
	}
	if runs == 0 {
		t.Fatal("no loss runs observed")
	}
	meanRun := float64(totalRunLen) / float64(runs)
	if meanRun < 2.5 {
		t.Fatalf("mean loss run length %v, want clearly bursty (>2.5)", meanRun)
	}
}

func TestGilbertElliottDegenerate(t *testing.T) {
	g := NewGilbertElliott(0, 0, 0.25, 1)
	if g.MeanLossRate() != 0.25 {
		t.Fatalf("MeanLossRate = %v, want LossGood when no transitions", g.MeanLossRate())
	}
	if !math.IsInf(g.MeanBurstLength(), 1) {
		t.Fatal("MeanBurstLength should be +Inf when PBadToGood is 0")
	}
	if g.String() == "" {
		t.Fatal("String empty")
	}
}

func TestLossAtDistanceCalibration(t *testing.T) {
	// The paper's operating point: ~1.5% raw loss at 25 m.
	at25 := LossAtDistance(25)
	if at25 < 0.005 || at25 > 0.03 {
		t.Fatalf("loss at 25m = %v, want within [0.5%%, 3%%]", at25)
	}
	// Loss must rise "dramatically over a distance of several meters".
	at35 := LossAtDistance(35)
	at45 := LossAtDistance(45)
	if at35 < 3*at25 {
		t.Fatalf("loss at 35m (%v) not dramatically higher than at 25m (%v)", at35, at25)
	}
	if at45 <= at35 {
		t.Fatal("loss must keep increasing with distance")
	}
	// Monotonic non-decreasing over the whole range, and sane at the ends.
	prev := 0.0
	for d := 0.0; d <= 80; d += 1 {
		p := LossAtDistance(d)
		if p < prev {
			t.Fatalf("loss decreased at %vm", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("loss out of range at %vm: %v", d, p)
		}
		prev = p
	}
	if LossAtDistance(-5) != LossAtDistance(0) {
		t.Fatal("negative distances should clamp to zero")
	}
}

func TestNewDistanceLossMatchesCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewDistanceLoss(25, 1.2)
	want := LossAtDistance(25)
	lost := 0
	const trials = 300_000
	for i := 0; i < trials; i++ {
		if m.Lost(rng) {
			lost++
		}
	}
	got := float64(lost) / trials
	if math.Abs(got-want) > want/2 {
		t.Fatalf("observed loss %v, want ~%v", got, want)
	}
	// meanBurst below 1 clamps.
	m2 := NewDistanceLoss(25, 0)
	if m2.PBadToGood != 1 {
		t.Fatalf("PBadToGood = %v, want 1 for clamped burst length", m2.PBadToGood)
	}
}

func TestSerializationDelay(t *testing.T) {
	cfg := WaveLAN2Mbps()
	// 250 bytes = 2000 bits at 2 Mbps = 1 ms.
	if got := cfg.SerializationDelay(250); got != time.Millisecond {
		t.Fatalf("SerializationDelay(250) = %v, want 1ms", got)
	}
	zero := LinkConfig{}
	if zero.SerializationDelay(1000) != 0 {
		t.Fatal("zero-bandwidth config should report zero delay")
	}
}

func TestChannelBroadcastIndependentLoss(t *testing.T) {
	ch := NewChannel(WaveLAN2Mbps())
	defer ch.Close()
	a, err := ch.Attach("laptop-a", Bernoulli{P: 0.5}, rand.New(rand.NewSource(1)), 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ch.Attach("laptop-b", Bernoulli{P: 0.5}, rand.New(rand.NewSource(2)), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Attach("laptop-a", Bernoulli{}, rand.New(rand.NewSource(3)), 0); !errors.Is(err, ErrReceiverExists) {
		t.Fatalf("duplicate attach err = %v", err)
	}

	const total = 2000
	for i := 0; i < total; i++ {
		p := &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{1, 2, 3}}
		deliveries, err := ch.Broadcast(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(deliveries) != 2 {
			t.Fatalf("got %d deliveries, want 2", len(deliveries))
		}
	}
	if ch.Sent() != total {
		t.Fatalf("Sent = %d, want %d", ch.Sent(), total)
	}
	// With independent 50% loss the two receivers' outcomes must differ for a
	// substantial fraction of packets.
	aRx, aLost := a.Stats()
	bRx, bLost := b.Stats()
	if aRx+aLost != total || bRx+bLost != total {
		t.Fatalf("stats do not add up: a=%d+%d b=%d+%d", aRx, aLost, bRx, bLost)
	}
	if a.LossRate() < 0.4 || a.LossRate() > 0.6 {
		t.Fatalf("receiver a loss rate %v, want ~0.5", a.LossRate())
	}
	if a.Buffer().Len() != int(aRx) {
		t.Fatalf("buffer holds %d packets, stats say %d received", a.Buffer().Len(), aRx)
	}
	if b.Buffer().Len() == a.Buffer().Len() && aRx == bRx && aLost == bLost {
		// Technically possible but vanishingly unlikely with independent seeds.
		t.Log("warning: receivers saw identical loss patterns")
	}
	if len(ch.Receivers()) != 2 {
		t.Fatalf("Receivers() = %d, want 2", len(ch.Receivers()))
	}
}

func TestChannelDeliveredPacketsAreCopies(t *testing.T) {
	ch := NewChannel(LinkConfig{})
	defer ch.Close()
	r, _ := ch.Attach("rx", Bernoulli{P: 0}, rand.New(rand.NewSource(1)), 16)
	orig := &packet.Packet{Seq: 9, Kind: packet.KindData, Payload: []byte{1, 2, 3}}
	if _, err := ch.Broadcast(orig); err != nil {
		t.Fatal(err)
	}
	orig.Payload[0] = 0xFF
	got, err := r.Buffer().Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload[0] == 0xFF {
		t.Fatal("delivered packet aliases the sender's payload")
	}
}

func TestChannelBufferOverflowCountsAsLoss(t *testing.T) {
	ch := NewChannel(LinkConfig{})
	defer ch.Close()
	r, _ := ch.Attach("tiny", Bernoulli{P: 0}, rand.New(rand.NewSource(1)), 2)
	for i := 0; i < 5; i++ {
		ch.Broadcast(&packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{1}})
	}
	rx, lost := r.Stats()
	if rx != 2 || lost != 3 {
		t.Fatalf("stats = %d received %d lost, want 2/3", rx, lost)
	}
}

func TestChannelDetachAndClose(t *testing.T) {
	ch := NewChannel(LinkConfig{})
	r, _ := ch.Attach("gone", Bernoulli{P: 0}, rand.New(rand.NewSource(1)), 4)
	ch.Detach("gone")
	if len(ch.Receivers()) != 0 {
		t.Fatal("receiver still attached after Detach")
	}
	if !r.Buffer().Closed() {
		t.Fatal("detached receiver's buffer not closed")
	}
	ch.Detach("never-existed") // must not panic
	ch.Close()
	if _, err := ch.Broadcast(&packet.Packet{Kind: packet.KindData}); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("broadcast after close err = %v", err)
	}
	ch.Close() // idempotent
}

func TestChannelRealTimePacing(t *testing.T) {
	cfg := LinkConfig{BandwidthBps: 1_000_000, PropagationDelay: time.Millisecond}
	ch := NewChannel(cfg, WithRealTime())
	defer ch.Close()
	ch.Attach("rx", Bernoulli{P: 0}, rand.New(rand.NewSource(1)), 64)
	start := time.Now()
	// 10 packets of 125 bytes = 1ms serialization each + 1ms propagation.
	for i := 0; i < 10; i++ {
		ch.Broadcast(&packet.Packet{Kind: packet.KindData, Payload: make([]byte, 125-packet.HeaderSize)})
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("real-time channel finished in %v, want >= ~20ms of pacing", elapsed)
	}
}

func TestReceiverNameAndInitialLossRate(t *testing.T) {
	ch := NewChannel(LinkConfig{})
	defer ch.Close()
	r, _ := ch.Attach("palmtop", Bernoulli{P: 0}, rand.New(rand.NewSource(1)), 4)
	if r.Name() != "palmtop" {
		t.Fatalf("Name = %q", r.Name())
	}
	if r.LossRate() != 0 {
		t.Fatalf("LossRate = %v before any traffic", r.LossRate())
	}
}
