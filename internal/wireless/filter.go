package wireless

import (
	"math/rand"
	"sync"
	"time"

	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// LossFilter is a chain stage that emulates a lossy wireless hop inside a
// proxy pipeline: framed packets passing through it are dropped according to
// a loss model, and optionally delayed by the link's serialization time. It
// lets a complete sender → proxy → wireless → receiver path be assembled as a
// single filter chain for experiments.
type LossFilter struct {
	*filter.Base

	mu      sync.Mutex
	rng     *rand.Rand
	model   LossModel
	dropped uint64
	passed  uint64
}

// NewLossFilter returns a loss-emulating packet filter. cfg may be the zero
// value to disable pacing; realTime selects whether serialization delay is
// actually slept. rng drives the loss model and must be provided explicitly
// (never the global math/rand source) so experiments and race tests are
// reproducible; the filter takes ownership and serializes access to it.
func NewLossFilter(name string, model LossModel, cfg LinkConfig, realTime bool, rng *rand.Rand) *LossFilter {
	if name == "" {
		name = "wireless:" + model.String()
	}
	if rng == nil {
		panic("wireless: NewLossFilter requires an explicit *rand.Rand")
	}
	lf := &LossFilter{
		rng:   rng,
		model: model,
	}
	lf.Base = filter.NewPacketFunc(name, func(p *packet.Packet) ([]*packet.Packet, error) {
		if realTime {
			time.Sleep(cfg.SerializationDelay(packet.HeaderSize+len(p.Payload)) + cfg.PropagationDelay)
		}
		lf.mu.Lock()
		lost := lf.model.Lost(lf.rng)
		if lost {
			lf.dropped++
		} else {
			lf.passed++
		}
		lf.mu.Unlock()
		if lost {
			return nil, nil
		}
		return []*packet.Packet{p}, nil
	}, nil)
	return lf
}

// SetModel swaps the loss model at run time (e.g. when an experiment moves
// the simulated receiver away from the access point mid-stream).
func (lf *LossFilter) SetModel(model LossModel) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	lf.model = model
}

// Stats returns the number of packets dropped and passed so far.
func (lf *LossFilter) Stats() (dropped, passed uint64) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.dropped, lf.passed
}

// LossRate returns the observed loss fraction.
func (lf *LossFilter) LossRate() float64 {
	dropped, passed := lf.Stats()
	total := dropped + passed
	if total == 0 {
		return 0
	}
	return float64(dropped) / float64(total)
}

var _ filter.Filter = (*LossFilter)(nil)
