package wireless

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"rapidware/internal/endpoint"
	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

func TestLossFilterDropsAccordingToModel(t *testing.T) {
	const total = 5000
	i := 0
	src := endpoint.NewPacketSource("gen", func() (*packet.Packet, error) {
		if i >= total {
			return nil, io.EOF
		}
		p := &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}}
		i++
		return p, nil
	})
	var mu sync.Mutex
	received := 0
	sink := endpoint.NewPacketSink("rx", func(*packet.Packet) error {
		mu.Lock()
		received++
		mu.Unlock()
		return nil
	})
	lossy := NewLossFilter("wlan", Bernoulli{P: 0.2}, LinkConfig{}, false, rand.New(rand.NewSource(7)))

	c := filter.NewChain("lossy-path")
	c.Append(src)
	c.Append(lossy)
	c.Append(sink)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	sink.Wait()
	c.Stop()

	mu.Lock()
	defer mu.Unlock()
	dropped, passed := lossy.Stats()
	if dropped+passed != total {
		t.Fatalf("filter saw %d packets, want %d", dropped+passed, total)
	}
	if received != int(passed) {
		t.Fatalf("sink received %d, filter passed %d", received, passed)
	}
	rate := lossy.LossRate()
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("observed loss rate %v, want ~0.2", rate)
	}
}

func TestLossFilterSetModel(t *testing.T) {
	lf := NewLossFilter("", Bernoulli{P: 0}, LinkConfig{}, false, rand.New(rand.NewSource(1)))
	if lf.Name() == "" {
		t.Fatal("default name empty")
	}
	if lf.LossRate() != 0 {
		t.Fatal("initial loss rate should be 0")
	}
	lf.SetModel(Bernoulli{P: 1})
	// The model is consulted inside the pipeline; here we only verify the
	// setter does not race with Stats.
	if d, p := lf.Stats(); d != 0 || p != 0 {
		t.Fatalf("stats = %d/%d before any traffic", d, p)
	}
}
