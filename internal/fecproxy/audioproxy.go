package fecproxy

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"rapidware/internal/audio"
	"rapidware/internal/endpoint"
	"rapidware/internal/fec"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
	"rapidware/internal/packet"
	"rapidware/internal/wireless"
)

// AudioProxyConfig describes one run of the paper's FEC audio proxy
// experiment (Figure 6 / Figure 7): an audio stream is packetized, FEC
// encoded at the proxy, multicast over a lossy wireless channel, and decoded
// at each mobile receiver.
type AudioProxyConfig struct {
	// Format is the PCM format; the zero value selects the paper's format.
	Format audio.Format
	// PacketInterval is the audio duration per packet (default 20 ms).
	PacketInterval time.Duration
	// FEC selects the (n,k) block code (default the paper's (6,4)).
	FEC fec.Params
	// Link describes the wireless medium (default 2 Mbps WaveLAN).
	Link wireless.LinkConfig
	// Receivers lists the mobile stations and their loss behaviour.
	Receivers []ReceiverConfig
	// Seed makes the run reproducible.
	Seed int64
	// RealTime paces the channel at the real link speed; experiments leave
	// this false to run faster than real time.
	RealTime bool
}

// ReceiverConfig describes one wireless receiver.
type ReceiverConfig struct {
	// Name identifies the receiver in results.
	Name string
	// DistanceMetres positions the receiver relative to the access point;
	// used when Model is nil.
	DistanceMetres float64
	// MeanBurst is the mean loss burst length for the distance-based model.
	MeanBurst float64
	// Model overrides the distance-based loss model when non-nil.
	Model wireless.LossModel
}

// ReceiverResult reports what one receiver observed.
type ReceiverResult struct {
	Name          string
	Sent          int
	Received      int
	Reconstructed int
	Trace         *metrics.TraceRecorder
	Audio         *audio.Reassembler
}

// ReceivedRate returns the fraction of audio packets received directly.
func (r ReceiverResult) ReceivedRate() float64 {
	if r.Sent == 0 {
		return 1
	}
	return float64(r.Received) / float64(r.Sent)
}

// ReconstructedRate returns the fraction of audio packets usable after FEC.
func (r ReceiverResult) ReconstructedRate() float64 {
	if r.Sent == 0 {
		return 1
	}
	return float64(r.Received+r.Reconstructed) / float64(r.Sent)
}

// AudioProxyResult aggregates a full run.
type AudioProxyResult struct {
	Config    AudioProxyConfig
	DataSent  int
	TotalSent uint64
	Overhead  float64
	Receivers []ReceiverResult
}

// RunAudioProxy executes the Figure 6 pipeline end to end:
//
//	audio source -> packetizer -> [FEC encoder filter] -> wireless channel
//	  -> per-receiver: [FEC decoder filter] -> audio reassembler
//
// The sender side runs as a real filter chain (packet source, FEC encoder,
// channel broadcaster); each receiver runs its own chain fed from its channel
// buffer. When cfg.FEC.N == cfg.FEC.K the run degenerates to the "no FEC"
// baseline used for the raw-receipt series of Figure 7.
func RunAudioProxy(cfg AudioProxyConfig, pcm []byte) (*AudioProxyResult, error) {
	cfg = withDefaults(cfg)
	pktizer, err := audio.NewPacketizer(cfg.Format, cfg.PacketInterval)
	if err != nil {
		return nil, err
	}
	payloads := pktizer.Split(pcm)
	if len(payloads) == 0 {
		return nil, fmt.Errorf("fecproxy: no audio to send")
	}

	// --- Sender side -------------------------------------------------------
	channel := wireless.NewChannel(cfg.Link, channelOptions(cfg)...)
	defer channel.Close()

	type rxState struct {
		cfg      ReceiverConfig
		receiver *wireless.Receiver
		result   ReceiverResult
	}
	states := make([]*rxState, 0, len(cfg.Receivers))
	for i, rc := range cfg.Receivers {
		model := rc.Model
		if model == nil {
			model = wireless.NewDistanceLoss(rc.DistanceMetres, rc.MeanBurst)
		}
		r, err := channel.Attach(rc.Name, model, rand.New(rand.NewSource(cfg.Seed+int64(i)+1)), len(payloads)*2+16)
		if err != nil {
			return nil, err
		}
		states = append(states, &rxState{cfg: rc, receiver: r})
	}

	// The sender chain: packet source -> FEC encoder -> broadcast sink.
	idx := 0
	source := endpoint.NewPacketSource("wired-receiver", func() (*packet.Packet, error) {
		if idx >= len(payloads) {
			return nil, io.EOF
		}
		p := &packet.Packet{
			Seq:     uint64(idx),
			Kind:    packet.KindData,
			Payload: payloads[idx],
		}
		idx++
		return p, nil
	})

	var stages []filter.Filter
	stages = append(stages, source)
	var encoder *EncoderFilter
	if cfg.FEC.N > cfg.FEC.K {
		encoder, err = NewEncoderFilter("fec-encoder", cfg.FEC, 1)
		if err != nil {
			return nil, err
		}
		stages = append(stages, encoder)
	}
	broadcaster := endpoint.NewPacketSink("wireless-sender", func(p *packet.Packet) error {
		_, berr := channel.Broadcast(p)
		return berr
	})
	stages = append(stages, broadcaster)

	sendChain := filter.NewChain("fec-audio-proxy")
	for _, s := range stages {
		if err := sendChain.Append(s); err != nil {
			return nil, err
		}
	}
	if err := sendChain.Start(); err != nil {
		return nil, err
	}
	broadcaster.Wait()
	if err := sendChain.Stop(); err != nil {
		return nil, err
	}

	result := &AudioProxyResult{
		Config:    cfg,
		DataSent:  len(payloads),
		TotalSent: channel.Sent(),
		Overhead:  float64(channel.Sent()) / float64(len(payloads)),
	}

	// --- Receiver side ------------------------------------------------------
	for _, st := range states {
		st.receiver.Buffer().Close() // everything has been broadcast
		trace := metrics.NewTraceRecorder()
		reasm, err := audio.NewReassembler(cfg.Format, pktizer.PayloadSize())
		if err != nil {
			return nil, err
		}
		res, err := runReceiver(st.receiver, cfg, trace, reasm, len(payloads))
		if err != nil {
			return nil, fmt.Errorf("fecproxy: receiver %q: %w", st.cfg.Name, err)
		}
		res.Name = st.cfg.Name
		result.Receivers = append(result.Receivers, res)
	}
	return result, nil
}

// runReceiver drains one receiver's channel buffer through a decoder chain
// and collects its statistics.
func runReceiver(r *wireless.Receiver, cfg AudioProxyConfig, trace *metrics.TraceRecorder, reasm *audio.Reassembler, dataSent int) (ReceiverResult, error) {
	// Every data packet ordinal that was transmitted counts toward the rates,
	// even if this receiver never sees it.
	for i := 0; i < dataSent; i++ {
		trace.MarkSent(uint64(i))
	}

	source := endpoint.NewPacketSource("wireless-receiver", func() (*packet.Packet, error) {
		p, err := r.Buffer().Get()
		if err != nil {
			return nil, io.EOF
		}
		return p, nil
	})
	decoder := NewDecoderFilter("fec-decoder", trace)
	var received, reconstructed int
	sink := endpoint.NewPacketSink("wired-sender", func(p *packet.Packet) error {
		key := int(traceKey(p))
		reasm.Add(key, p.Payload)
		return nil
	})

	chain := filter.NewChain("fec-audio-receiver")
	for _, s := range []filter.Filter{source, decoder, sink} {
		if err := chain.Append(s); err != nil {
			return ReceiverResult{}, err
		}
	}
	if err := chain.Start(); err != nil {
		return ReceiverResult{}, err
	}
	sink.Wait()
	if err := chain.Stop(); err != nil {
		return ReceiverResult{}, err
	}
	rx, rc, _ := decoder.Stats()
	received, reconstructed = int(rx), int(rc)

	reasm.MarkExpected(dataSent - 1)
	return ReceiverResult{
		Sent:          dataSent,
		Received:      received,
		Reconstructed: reconstructed,
		Trace:         trace,
		Audio:         reasm,
	}, nil
}

func withDefaults(cfg AudioProxyConfig) AudioProxyConfig {
	if cfg.Format == (audio.Format{}) {
		cfg.Format = audio.PaperFormat()
	}
	if cfg.PacketInterval == 0 {
		cfg.PacketInterval = 20 * time.Millisecond
	}
	if cfg.FEC == (fec.Params{}) {
		cfg.FEC = fec.Params{K: 4, N: 6}
	}
	if cfg.Link == (wireless.LinkConfig{}) {
		cfg.Link = wireless.WaveLAN2Mbps()
	}
	if len(cfg.Receivers) == 0 {
		cfg.Receivers = []ReceiverConfig{{Name: "laptop-25m", DistanceMetres: 25, MeanBurst: 1.2}}
	}
	return cfg
}

func channelOptions(cfg AudioProxyConfig) []wireless.Option {
	if cfg.RealTime {
		return []wireless.Option{wireless.WithRealTime()}
	}
	return nil
}
