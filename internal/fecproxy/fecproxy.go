// Package fecproxy assembles the paper's FEC audio proxy (Figure 6) from the
// generic building blocks: packet-level filters that add forward error
// correction to an outgoing stream and reconstruct lost packets on the
// receiving side. Both are ordinary chain filters, so they can be inserted
// into and removed from a live proxy by the ControlThread or by responder
// raplets exactly as the paper describes.
package fecproxy

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"rapidware/internal/fec"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
	"rapidware/internal/packet"
)

// EncoderFilter groups incoming data packets into FEC blocks and emits the
// data plus parity packets, the "FEC Encoder" stage of Figure 6.
//
// The processing loop never materializes decoded packets: frames are read
// into pooled buffers, grouped as raw frames, re-stamped in place, and the
// parity frames are encoded directly into pooled buffers (see
// fec.FrameEncoder) — the steady-state data path performs no heap
// allocations.
type EncoderFilter struct {
	*filter.Base

	params  fec.Params
	dataIn  atomic.Uint64
	dataOut atomic.Uint64
	parity  atomic.Uint64
}

// NewEncoderFilter returns an encoder filter using the given (n,k) code.
// streamID is stamped on emitted packets.
func NewEncoderFilter(name string, params fec.Params, streamID uint32) (*EncoderFilter, error) {
	coder, err := fec.CoderFor(params)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = "fec-encoder" + params.String()
	}
	ef := &EncoderFilter{params: params}
	k, n := params.K, params.N
	ef.Base = filter.New(name, func(r io.Reader, w io.Writer) error {
		enc := fec.NewFrameEncoder(coder, streamID)
		defer enc.Discard()
		pr := packet.NewReader(r)
		// Each emitted frame is one Write call, so downstream pause/reconnect
		// operations always happen on frame boundaries.
		emit := func(frame []byte) error {
			_, err := w.Write(frame)
			return err
		}
		flush := func() error {
			held := uint64(enc.Pending())
			if err := enc.Flush(emit); err != nil {
				return err
			}
			ef.dataOut.Add(held)
			return nil
		}
		for {
			b, err := pr.ReadFrameBuf(0)
			if err != nil {
				if err == io.EOF {
					return flush()
				}
				return err
			}
			// Parity and control packets pass through untouched; only data
			// packets are (re)grouped into FEC blocks. Control packets act as
			// group barriers: a partially filled group is flushed (without
			// parity) ahead of them, so an in-band marker never overtakes
			// data the encoder was still holding — stream position stays
			// meaningful across the filter.
			if kind := packet.FrameKind(b.B); kind != packet.KindData {
				if kind == packet.KindControl {
					if err := flush(); err != nil {
						b.Release()
						return err
					}
				}
				err := emit(b.B)
				b.Release()
				if err != nil {
					return err
				}
				continue
			}
			ef.dataIn.Add(1)
			full, err := enc.Add(b)
			if err != nil {
				return fmt.Errorf("fecproxy: encode: %w", err)
			}
			if full {
				if err := enc.Encode(emit); err != nil {
					return fmt.Errorf("fecproxy: encode: %w", err)
				}
				ef.dataOut.Add(uint64(k))
				ef.parity.Add(uint64(n - k))
			}
		}
	})
	return ef, nil
}

// Params returns the encoder's code parameters.
func (ef *EncoderFilter) Params() fec.Params { return ef.params }

// Stats returns the number of data packets consumed, data packets emitted and
// parity packets emitted.
func (ef *EncoderFilter) Stats() (dataIn, dataOut, parity uint64) {
	return ef.dataIn.Load(), ef.dataOut.Load(), ef.parity.Load()
}

// Overhead returns the observed bandwidth expansion (emitted / consumed).
func (ef *EncoderFilter) Overhead() float64 {
	dataIn, dataOut, parity := ef.Stats()
	if dataIn == 0 {
		return 1
	}
	return float64(dataOut+parity) / float64(dataIn)
}

// DecoderFilter reassembles FEC blocks and reconstructs missing data packets,
// the "FEC Decoder" stage of Figure 6. Parity packets are consumed; only data
// packets (original or reconstructed) are forwarded downstream.
type DecoderFilter struct {
	*filter.Base

	mu    sync.Mutex
	dec   *fec.BlockDecoder
	trace *metrics.TraceRecorder

	received      uint64
	reconstructed uint64
	forwarded     uint64
}

// NewDecoderFilter returns a decoder filter. trace may be nil; when provided,
// every forwarded packet's outcome is recorded for Figure 7-style series.
func NewDecoderFilter(name string, trace *metrics.TraceRecorder) *DecoderFilter {
	if name == "" {
		name = "fec-decoder"
	}
	df := &DecoderFilter{dec: fec.NewBlockDecoder(0), trace: trace}
	df.Base = filter.NewPacketFunc(name, func(p *packet.Packet) ([]*packet.Packet, error) {
		df.mu.Lock()
		defer df.mu.Unlock()
		if p.Kind == packet.KindData {
			df.received++
		}
		before := df.dec.Recovered()
		outs, err := df.dec.Add(p)
		if err != nil {
			return nil, fmt.Errorf("fecproxy: decode: %w", err)
		}
		newlyRecovered := df.dec.Recovered() - before
		df.reconstructed += newlyRecovered
		// Forward only data packets; parity has served its purpose.
		forward := outs[:0]
		for _, op := range outs {
			if op.Kind == packet.KindData {
				forward = append(forward, op)
			}
		}
		df.forwarded += uint64(len(forward))
		if df.trace != nil {
			for _, op := range forward {
				// The only packets in the output that are not the input packet
				// itself are the ones the decoder reconstructed from parity.
				outcome := metrics.OutcomeReceived
				if op != p {
					outcome = metrics.OutcomeReconstructed
				}
				df.trace.Record(traceKey(op), outcome)
			}
		}
		return forward, nil
	}, nil)
	return df
}

// traceKey derives a stable per-packet key from block coordinates when
// available, falling back to the sequence number for non-FEC packets.
func traceKey(p *packet.Packet) uint64 {
	if p.IsFEC() {
		return uint64(p.Group)*uint64(p.K) + uint64(p.Index)
	}
	return p.Seq
}

// Stats returns the decoder's packet accounting: data packets received off
// the network, packets reconstructed from parity, and packets forwarded.
func (df *DecoderFilter) Stats() (received, reconstructed, forwarded uint64) {
	df.mu.Lock()
	defer df.mu.Unlock()
	return df.received, df.reconstructed, df.forwarded
}

var (
	_ filter.Filter = (*EncoderFilter)(nil)
	_ filter.Filter = (*DecoderFilter)(nil)
)
