package fecproxy

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"rapidware/internal/endpoint"
	"rapidware/internal/fec"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
	"rapidware/internal/packet"
	"rapidware/internal/wireless"
)

// pumpPackets runs a chain of [source] + middle + [sink] where the source
// emits the given payloads as data packets and the sink collects everything.
func pumpPackets(t *testing.T, middle []filter.Filter, payloads [][]byte) []*packet.Packet {
	t.Helper()
	i := 0
	src := endpoint.NewPacketSource("src", func() (*packet.Packet, error) {
		if i >= len(payloads) {
			return nil, io.EOF
		}
		p := &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: payloads[i]}
		i++
		return p, nil
	})
	var mu sync.Mutex
	var got []*packet.Packet
	sink := endpoint.NewPacketSink("sink", func(p *packet.Packet) error {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
		return nil
	})
	chain := filter.NewChain("test")
	chain.Append(src)
	for _, f := range middle {
		chain.Append(f)
	}
	chain.Append(sink)
	if err := chain.Start(); err != nil {
		t.Fatal(err)
	}
	sink.Wait()
	chain.Stop()
	mu.Lock()
	defer mu.Unlock()
	return got
}

func makePayloads(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%0*d", size, i))
	}
	return out
}

func TestNewEncoderFilterRejectsBadParams(t *testing.T) {
	if _, err := NewEncoderFilter("", fec.Params{K: 5, N: 2}, 1); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestEncoderFilterEmitsParity(t *testing.T) {
	enc, err := NewEncoderFilter("", fec.Params{K: 4, N: 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Name() == "" {
		t.Fatal("default name empty")
	}
	payloads := makePayloads(8, 32) // exactly two FEC groups
	got := pumpPackets(t, []filter.Filter{enc}, payloads)
	if len(got) != 12 { // 2 groups × (4 data + 2 parity)
		t.Fatalf("got %d packets, want 12", len(got))
	}
	var data, parity int
	for _, p := range got {
		switch p.Kind {
		case packet.KindData:
			data++
		case packet.KindParity:
			parity++
		}
	}
	if data != 8 || parity != 4 {
		t.Fatalf("data=%d parity=%d, want 8/4", data, parity)
	}
	dataIn, dataOut, par := enc.Stats()
	if dataIn != 8 || dataOut != 8 || par != 4 {
		t.Fatalf("Stats = %d/%d/%d", dataIn, dataOut, par)
	}
	if got := enc.Overhead(); got != 1.5 {
		t.Fatalf("Overhead = %v, want 1.5", got)
	}
	if enc.Params() != (fec.Params{K: 4, N: 6}) {
		t.Fatalf("Params = %v", enc.Params())
	}
}

func TestEncoderFilterFlushesPartialGroupAtEOF(t *testing.T) {
	enc, _ := NewEncoderFilter("", fec.Params{K: 4, N: 6}, 1)
	payloads := makePayloads(6, 16) // one full group + 2 leftover
	got := pumpPackets(t, []filter.Filter{enc}, payloads)
	// 6 data (4 from the full group, 2 flushed) + 2 parity.
	if len(got) != 8 {
		t.Fatalf("got %d packets, want 8", len(got))
	}
	var data int
	for _, p := range got {
		if p.Kind == packet.KindData {
			data++
		}
	}
	if data != 6 {
		t.Fatalf("data packets = %d, want 6 (no audio lost at EOF)", data)
	}
}

func TestEncoderFilterPassesNonDataThrough(t *testing.T) {
	enc, _ := NewEncoderFilter("", fec.Params{K: 2, N: 3}, 1)
	i := 0
	src := endpoint.NewPacketSource("src", func() (*packet.Packet, error) {
		if i >= 1 {
			return nil, io.EOF
		}
		i++
		return &packet.Packet{Kind: packet.KindControl, Payload: []byte("marker")}, nil
	})
	var got []*packet.Packet
	var mu sync.Mutex
	sink := endpoint.NewPacketSink("sink", func(p *packet.Packet) error {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
		return nil
	})
	chain := filter.NewChain("ctrl")
	chain.Append(src)
	chain.Append(enc)
	chain.Append(sink)
	chain.Start()
	sink.Wait()
	chain.Stop()
	if len(got) != 1 || got[0].Kind != packet.KindControl {
		t.Fatalf("control packet not passed through: %v", got)
	}
}

func TestEncodeDecodeChainNoLoss(t *testing.T) {
	enc, _ := NewEncoderFilter("", fec.Params{K: 4, N: 6}, 1)
	dec := NewDecoderFilter("", nil)
	payloads := makePayloads(40, 20)
	got := pumpPackets(t, []filter.Filter{enc, dec}, payloads)
	if len(got) != len(payloads) {
		t.Fatalf("got %d packets, want %d", len(got), len(payloads))
	}
	for i, p := range got {
		if string(p.Payload) != string(payloads[i]) {
			t.Fatalf("packet %d corrupted or reordered", i)
		}
		if p.Kind != packet.KindData {
			t.Fatalf("non-data packet leaked downstream: %v", p)
		}
	}
	rx, rc, fwd := dec.Stats()
	if rx != 40 || rc != 0 || fwd != 40 {
		t.Fatalf("decoder stats = %d/%d/%d", rx, rc, fwd)
	}
}

func TestEncodeLossyDecodeRecovers(t *testing.T) {
	// Insert a deterministic lossy hop between encoder and decoder that drops
	// one packet per FEC group; the decoder must reconstruct everything.
	enc, _ := NewEncoderFilter("", fec.Params{K: 4, N: 6}, 1)
	trace := metrics.NewTraceRecorder()
	dec := NewDecoderFilter("", trace)
	drop := filter.NewPacketFunc("drop-one-per-group", func(p *packet.Packet) ([]*packet.Packet, error) {
		if p.IsFEC() && p.Index == 1 {
			return nil, nil // drop data packet 1 of every group
		}
		return []*packet.Packet{p}, nil
	}, nil)

	payloads := makePayloads(40, 24)
	got := pumpPackets(t, []filter.Filter{enc, drop, dec}, payloads)
	if len(got) != len(payloads) {
		t.Fatalf("delivered %d packets, want %d", len(got), len(payloads))
	}
	seen := map[string]int{}
	for _, p := range got {
		seen[string(p.Payload)]++
	}
	for _, pl := range payloads {
		if seen[string(pl)] != 1 {
			t.Fatalf("payload %q delivered %d times", pl, seen[string(pl)])
		}
	}
	_, rc, _ := dec.Stats()
	if rc != 10 { // one reconstruction per group of 4, 40/4 groups
		t.Fatalf("reconstructed = %d, want 10", rc)
	}
	rxRate, usableRate := trace.Rates()
	if usableRate != 1 {
		t.Fatalf("usable rate = %v, want 1", usableRate)
	}
	if rxRate >= 1 {
		t.Fatalf("received rate = %v, want < 1 with losses", rxRate)
	}
}

func TestDecoderWithoutFECPassesThrough(t *testing.T) {
	dec := NewDecoderFilter("", nil)
	payloads := makePayloads(10, 8)
	got := pumpPackets(t, []filter.Filter{dec}, payloads)
	if len(got) != len(payloads) {
		t.Fatalf("got %d, want %d", len(got), len(payloads))
	}
}

func TestRunAudioProxyDefaults(t *testing.T) {
	pcm := make([]byte, 16000*2) // 2 seconds of paper-format audio
	for i := range pcm {
		pcm[i] = byte(i)
	}
	res, err := RunAudioProxy(AudioProxyConfig{Seed: 1}, pcm)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSent != 100 { // 2s / 20ms
		t.Fatalf("DataSent = %d, want 100", res.DataSent)
	}
	if res.Overhead < 1.4 || res.Overhead > 1.6 {
		t.Fatalf("Overhead = %v, want ~1.5 for (6,4)", res.Overhead)
	}
	if len(res.Receivers) != 1 {
		t.Fatalf("receivers = %d", len(res.Receivers))
	}
	r := res.Receivers[0]
	if r.Sent != 100 {
		t.Fatalf("receiver Sent = %d", r.Sent)
	}
	if r.ReconstructedRate() < r.ReceivedRate() {
		t.Fatal("reconstruction made things worse")
	}
	if r.Audio.Completeness() != r.ReconstructedRate() {
		t.Logf("note: audio completeness %v vs reconstructed rate %v", r.Audio.Completeness(), r.ReconstructedRate())
	}
}

func TestRunAudioProxyNoFECBaseline(t *testing.T) {
	pcm := make([]byte, 16000)
	cfg := AudioProxyConfig{
		FEC:  fec.Params{K: 1, N: 1},
		Seed: 2,
		Receivers: []ReceiverConfig{
			{Name: "lossy", Model: wireless.Bernoulli{P: 0.2}},
		},
	}
	res, err := RunAudioProxy(cfg, pcm)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Receivers[0]
	if r.Reconstructed != 0 {
		t.Fatalf("baseline run reconstructed %d packets, want 0", r.Reconstructed)
	}
	if r.ReceivedRate() > 0.95 {
		t.Fatalf("received rate %v, want visible loss at P=0.2", r.ReceivedRate())
	}
	if res.Overhead != 1 {
		t.Fatalf("Overhead = %v, want 1 without FEC", res.Overhead)
	}
}

func TestRunAudioProxyFECBeatsBaseline(t *testing.T) {
	pcm := make([]byte, 16000*4)
	loss := 0.05
	base := AudioProxyConfig{
		FEC:       fec.Params{K: 1, N: 1},
		Seed:      3,
		Receivers: []ReceiverConfig{{Name: "rx", Model: wireless.Bernoulli{P: loss}}},
	}
	withFEC := AudioProxyConfig{
		FEC:       fec.Params{K: 4, N: 6},
		Seed:      3,
		Receivers: []ReceiverConfig{{Name: "rx", Model: wireless.Bernoulli{P: loss}}},
	}
	baseRes, err := RunAudioProxy(base, pcm)
	if err != nil {
		t.Fatal(err)
	}
	fecRes, err := RunAudioProxy(withFEC, pcm)
	if err != nil {
		t.Fatal(err)
	}
	baseRate := baseRes.Receivers[0].ReconstructedRate()
	fecRate := fecRes.Receivers[0].ReconstructedRate()
	if fecRate <= baseRate {
		t.Fatalf("FEC did not improve delivery: %v vs baseline %v", fecRate, baseRate)
	}
	if fecRate < 0.99 {
		t.Fatalf("FEC(6,4) at 5%% loss should deliver >99%%, got %v", fecRate)
	}
}

func TestRunAudioProxyMultipleReceiversIndependent(t *testing.T) {
	pcm := make([]byte, 16000*2)
	cfg := AudioProxyConfig{
		Seed: 4,
		Receivers: []ReceiverConfig{
			{Name: "near", DistanceMetres: 10, MeanBurst: 1},
			{Name: "paper", DistanceMetres: 25, MeanBurst: 1.2},
			{Name: "far", DistanceMetres: 42, MeanBurst: 2},
		},
	}
	res, err := RunAudioProxy(cfg, pcm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Receivers) != 3 {
		t.Fatalf("receivers = %d", len(res.Receivers))
	}
	byName := map[string]ReceiverResult{}
	for _, r := range res.Receivers {
		byName[r.Name] = r
	}
	if byName["far"].ReceivedRate() >= byName["near"].ReceivedRate() {
		t.Fatalf("far receiver (%v) should see more loss than near (%v)",
			byName["far"].ReceivedRate(), byName["near"].ReceivedRate())
	}
}

func TestRunAudioProxyEmptyAudio(t *testing.T) {
	if _, err := RunAudioProxy(AudioProxyConfig{}, nil); err == nil {
		t.Fatal("expected error for empty audio")
	}
}

func TestReceiverResultRatesEmpty(t *testing.T) {
	var r ReceiverResult
	if r.ReceivedRate() != 1 || r.ReconstructedRate() != 1 {
		t.Fatal("empty result should report rate 1")
	}
}
