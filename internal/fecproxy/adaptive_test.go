package fecproxy

import (
	"testing"
	"time"

	"rapidware/internal/fec"
	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

func TestAdaptivePolicyValidate(t *testing.T) {
	if err := DefaultAdaptivePolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (AdaptivePolicy{}).Validate(); err == nil {
		t.Fatal("empty policy must be invalid")
	}
	bad := AdaptivePolicy{Levels: []AdaptiveLevel{{LossAtLeast: 0, Params: fec.Params{K: 5, N: 2}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid params must be rejected")
	}
	badThreshold := AdaptivePolicy{Levels: []AdaptiveLevel{{LossAtLeast: 2, Params: fec.Params{K: 1, N: 1}}}}
	if err := badThreshold.Validate(); err == nil {
		t.Fatal("out-of-range threshold must be rejected")
	}
}

func TestAdaptivePolicySelect(t *testing.T) {
	p := DefaultAdaptivePolicy()
	cases := []struct {
		loss float64
		want fec.Params
	}{
		{0, fec.Params{K: 1, N: 1}},
		{0.005, fec.Params{K: 1, N: 1}},
		{0.02, fec.Params{K: 4, N: 5}},
		{0.05, fec.Params{K: 4, N: 6}},
		{0.15, fec.Params{K: 4, N: 8}},
		{0.50, fec.Params{K: 4, N: 12}},
	}
	for _, c := range cases {
		if got := p.Select(c.loss); got != c.want {
			t.Errorf("Select(%v) = %v, want %v", c.loss, got, c.want)
		}
	}
}

func TestNewAdaptiveEncoderFilterValidation(t *testing.T) {
	if _, err := NewAdaptiveEncoderFilter("", AdaptivePolicy{}, 1); err == nil {
		t.Fatal("expected error for empty policy")
	}
	af, err := NewAdaptiveEncoderFilter("", DefaultAdaptivePolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if af.Name() == "" {
		t.Fatal("default name empty")
	}
	if af.Current() != (fec.Params{K: 1, N: 1}) {
		t.Fatalf("initial code = %v, want no FEC", af.Current())
	}
}

func TestAdaptiveEncoderSwitchesOnGroupBoundary(t *testing.T) {
	af, err := NewAdaptiveEncoderFilter("", DefaultAdaptivePolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	payloads := makePayloads(24, 16)

	// Clean link for the first 8 packets, then the observer reports 5% loss;
	// the switch to (6,4) must happen and subsequent packets gain parity.
	var delivered []*packet.Packet
	i := 0
	feed := func(n int) {
		out := pumpPackets(t, []filter.Filter{af}, payloads[i:i+n])
		delivered = append(delivered, out...)
		i += n
		// pumpPackets builds a fresh chain per call; respawn the filter's
		// streams by rebuilding is unnecessary because each call uses the
		// same filter instance only once.
	}
	_ = feed
	// Feed everything through a single chain but change the loss rate part
	// way: use a dedicated source that calls SetLossRate after packet 8.
	af2, err := NewAdaptiveEncoderFilter("", DefaultAdaptivePolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	tap := filter.NewPacketFunc("loss-report", func(p *packet.Packet) ([]*packet.Packet, error) {
		seen++
		if seen == 8 {
			af2.SetLossRate(0.05)
		}
		return []*packet.Packet{p}, nil
	}, nil)
	out := pumpPackets(t, []filter.Filter{tap, af2}, payloads)

	var data, parity int
	for _, p := range out {
		switch p.Kind {
		case packet.KindData:
			data++
		case packet.KindParity:
			parity++
		}
	}
	if data != len(payloads) {
		t.Fatalf("data packets = %d, want %d", data, len(payloads))
	}
	if parity == 0 {
		t.Fatal("no parity emitted after the loss report")
	}
	if af2.Current() != (fec.Params{K: 4, N: 6}) {
		t.Fatalf("current code = %v, want (6,4)", af2.Current())
	}
	if af2.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", af2.Switches())
	}
}

func TestAdaptiveEncoderDowngradesWhenLinkRecovers(t *testing.T) {
	af, err := NewAdaptiveEncoderFilter("", DefaultAdaptivePolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	af.SetLossRate(0.3)
	payloads := makePayloads(8, 8)
	seen := 0
	// The tap sits upstream of the adaptive encoder. Before reporting the
	// recovery it waits until the encoder has actually switched up (the
	// chain stages run concurrently, so without the wait the downgrade could
	// overwrite the upgrade before the encoder saw any traffic).
	tap := filter.NewPacketFunc("recover", func(p *packet.Packet) ([]*packet.Packet, error) {
		seen++
		if seen == 5 {
			deadline := time.Now().Add(2 * time.Second)
			for af.Switches() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			af.SetLossRate(0)
		}
		return []*packet.Packet{p}, nil
	}, nil)
	out := pumpPackets(t, []filter.Filter{tap, af}, payloads)
	if af.Current() != (fec.Params{K: 1, N: 1}) {
		t.Fatalf("current code = %v, want FEC disabled after recovery", af.Current())
	}
	if af.Switches() < 2 {
		t.Fatalf("switches = %d, want >= 2 (up then down)", af.Switches())
	}
	var data int
	for _, p := range out {
		if p.Kind == packet.KindData {
			data++
		}
	}
	if data != len(payloads) {
		t.Fatalf("data packets = %d, want %d (nothing lost across switches)", data, len(payloads))
	}
}

func TestAdaptiveEncoderClampsLossRate(t *testing.T) {
	af, _ := NewAdaptiveEncoderFilter("", DefaultAdaptivePolicy(), 1)
	af.SetLossRate(-1)
	if af.Current() != (fec.Params{K: 1, N: 1}) {
		t.Fatal("negative loss should clamp to 0")
	}
	af.SetLossRate(99)
	// Pending switch applies on the next packet; Current() is still the old
	// code here, but the pending selection must be the strongest level.
	if got := DefaultAdaptivePolicy().Select(1); got != (fec.Params{K: 4, N: 12}) {
		t.Fatalf("Select(1) = %v", got)
	}
}

func TestAdaptiveStreamDecodableByStandardDecoder(t *testing.T) {
	// End to end: adaptive encoder output (with a mid-stream code switch)
	// must be decodable by the ordinary DecoderFilter even with losses.
	af, err := NewAdaptiveEncoderFilter("", DefaultAdaptivePolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	af.SetLossRate(0.05) // (6,4) from the start
	dec := NewDecoderFilter("", nil)
	drop := filter.NewPacketFunc("drop-idx0", func(p *packet.Packet) ([]*packet.Packet, error) {
		if p.IsFEC() && p.Index == 0 && p.Kind == packet.KindData {
			return nil, nil
		}
		return []*packet.Packet{p}, nil
	}, nil)
	payloads := makePayloads(40, 12)
	out := pumpPackets(t, []filter.Filter{af, drop, dec}, payloads)
	seen := map[string]int{}
	for _, p := range out {
		seen[string(p.Payload)]++
	}
	for _, pl := range payloads {
		if seen[string(pl)] != 1 {
			t.Fatalf("payload %q delivered %d times", pl, seen[string(pl)])
		}
	}
}
