package fecproxy

import (
	"fmt"
	"sync"

	"rapidware/internal/adapt"
	"rapidware/internal/fec"
	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// The loss-rate → (n,k) policy ladder lives in the transport-agnostic
// internal/adapt package so a single policy engine drives this legacy
// single-stream adaptive proxy, the responder raplets and the multi-session
// engine. The historical fecproxy names are aliases.
type (
	// AdaptivePolicy maps an observed loss rate to the (n,k) code that should
	// protect the stream; see adapt.Policy.
	AdaptivePolicy = adapt.Policy
	// AdaptiveLevel is one rung of an adaptive policy; see adapt.Level.
	AdaptiveLevel = adapt.Level
)

// DefaultAdaptivePolicy returns adapt.DefaultPolicy: the ladder modelled on
// the paper's environment.
func DefaultAdaptivePolicy() AdaptivePolicy { return adapt.DefaultPolicy() }

// AdaptiveEncoderFilter is an FEC encoder whose (n,k) parameters follow an
// AdaptivePolicy as the observed loss rate (reported by a receiver, an
// observer raplet, or the experiment harness) changes. Parameter switches
// take effect on group boundaries so every emitted group is self-consistent;
// receivers need no coordination because each packet carries its group's
// (k,n) in its header.
type AdaptiveEncoderFilter struct {
	*filter.Base

	policy   AdaptivePolicy
	streamID uint32

	mu       sync.Mutex
	loss     float64
	current  fec.Params
	pending  fec.Params
	enc      *fec.BlockEncoder
	switches uint64
}

// NewAdaptiveEncoderFilter returns an adaptive encoder starting at the
// policy's cleanest level.
func NewAdaptiveEncoderFilter(name string, policy AdaptivePolicy, streamID uint32) (*AdaptiveEncoderFilter, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		name = "adaptive-fec-encoder"
	}
	start := policy.Select(0)
	coder, err := fec.CoderFor(start)
	if err != nil {
		return nil, err
	}
	af := &AdaptiveEncoderFilter{
		policy:   policy,
		streamID: streamID,
		current:  start,
		pending:  start,
		enc:      fec.NewBlockEncoder(coder, streamID),
	}
	af.Base = filter.NewPacketFunc(name,
		func(p *packet.Packet) ([]*packet.Packet, error) {
			if p.Kind != packet.KindData {
				return []*packet.Packet{p}, nil
			}
			af.mu.Lock()
			defer af.mu.Unlock()
			if err := af.maybeSwitchLocked(); err != nil {
				return nil, err
			}
			if af.current.N == af.current.K {
				// FEC disabled: forward the packet untouched.
				return []*packet.Packet{p}, nil
			}
			out, err := af.enc.Add(p.Payload)
			if err != nil {
				return nil, fmt.Errorf("fecproxy: adaptive encode: %w", err)
			}
			return out, nil
		},
		func() []*packet.Packet {
			af.mu.Lock()
			defer af.mu.Unlock()
			return af.enc.Flush()
		})
	return af, nil
}

// SetLossRate reports the link's observed loss rate; the code switches at the
// next group boundary.
func (af *AdaptiveEncoderFilter) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	af.mu.Lock()
	defer af.mu.Unlock()
	af.loss = rate
	af.pending = af.policy.Select(rate)
}

// Current returns the code currently protecting the stream.
func (af *AdaptiveEncoderFilter) Current() fec.Params {
	af.mu.Lock()
	defer af.mu.Unlock()
	return af.current
}

// Switches returns how many times the code has changed.
func (af *AdaptiveEncoderFilter) Switches() uint64 {
	af.mu.Lock()
	defer af.mu.Unlock()
	return af.switches
}

// maybeSwitchLocked applies a pending parameter change at a group boundary.
// Caller holds af.mu.
func (af *AdaptiveEncoderFilter) maybeSwitchLocked() error {
	if af.pending == af.current {
		return nil
	}
	if af.enc.Pending() != 0 {
		return nil // mid-group: wait for the boundary
	}
	coder, err := fec.CoderFor(af.pending)
	if err != nil {
		return err
	}
	af.enc = fec.NewBlockEncoder(coder, af.streamID)
	af.current = af.pending
	af.switches++
	return nil
}

var _ filter.Filter = (*AdaptiveEncoderFilter)(nil)
