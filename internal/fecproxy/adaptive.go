package fecproxy

import (
	"fmt"
	"sort"
	"sync"

	"rapidware/internal/fec"
	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// AdaptivePolicy maps an observed loss rate to the (n,k) code that should
// protect the stream, the mechanism behind the adaptive FEC the paper's
// companion work ([16], "adaptive forward error correction") explores and
// that RAPIDware responders drive at run time.
type AdaptivePolicy struct {
	// Levels are (threshold, params) pairs: the strongest level whose
	// threshold is at or below the observed loss rate is selected. A level
	// with K == N disables FEC.
	Levels []AdaptiveLevel
}

// AdaptiveLevel is one rung of an adaptive policy.
type AdaptiveLevel struct {
	// LossAtLeast is the minimum observed loss rate for this level to apply.
	LossAtLeast float64
	// Params is the code used at this level.
	Params fec.Params
}

// DefaultAdaptivePolicy returns a ladder modelled on the paper's environment:
// no FEC on a clean link, the paper's (6,4) at a few percent loss, and
// progressively stronger codes as the link degrades.
func DefaultAdaptivePolicy() AdaptivePolicy {
	return AdaptivePolicy{Levels: []AdaptiveLevel{
		{LossAtLeast: 0, Params: fec.Params{K: 1, N: 1}},
		{LossAtLeast: 0.01, Params: fec.Params{K: 4, N: 5}},
		{LossAtLeast: 0.03, Params: fec.Params{K: 4, N: 6}},
		{LossAtLeast: 0.10, Params: fec.Params{K: 4, N: 8}},
		{LossAtLeast: 0.25, Params: fec.Params{K: 4, N: 12}},
	}}
}

// Validate checks every level's parameters.
func (p AdaptivePolicy) Validate() error {
	if len(p.Levels) == 0 {
		return fmt.Errorf("fecproxy: adaptive policy needs at least one level")
	}
	for i, l := range p.Levels {
		if err := l.Params.Validate(); err != nil {
			return fmt.Errorf("fecproxy: level %d: %w", i, err)
		}
		if l.LossAtLeast < 0 || l.LossAtLeast > 1 {
			return fmt.Errorf("fecproxy: level %d threshold %v out of range", i, l.LossAtLeast)
		}
	}
	return nil
}

// Select returns the code for the observed loss rate.
func (p AdaptivePolicy) Select(lossRate float64) fec.Params {
	// Levels are evaluated in ascending threshold order.
	levels := append([]AdaptiveLevel(nil), p.Levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i].LossAtLeast < levels[j].LossAtLeast })
	chosen := levels[0].Params
	for _, l := range levels {
		if lossRate >= l.LossAtLeast {
			chosen = l.Params
		}
	}
	return chosen
}

// AdaptiveEncoderFilter is an FEC encoder whose (n,k) parameters follow an
// AdaptivePolicy as the observed loss rate (reported by a receiver, an
// observer raplet, or the experiment harness) changes. Parameter switches
// take effect on group boundaries so every emitted group is self-consistent;
// receivers need no coordination because each packet carries its group's
// (k,n) in its header.
type AdaptiveEncoderFilter struct {
	*filter.Base

	policy   AdaptivePolicy
	streamID uint32

	mu       sync.Mutex
	loss     float64
	current  fec.Params
	pending  fec.Params
	enc      *fec.BlockEncoder
	switches uint64
}

// NewAdaptiveEncoderFilter returns an adaptive encoder starting at the
// policy's cleanest level.
func NewAdaptiveEncoderFilter(name string, policy AdaptivePolicy, streamID uint32) (*AdaptiveEncoderFilter, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		name = "adaptive-fec-encoder"
	}
	start := policy.Select(0)
	coder, err := fec.NewCoder(start)
	if err != nil {
		return nil, err
	}
	af := &AdaptiveEncoderFilter{
		policy:   policy,
		streamID: streamID,
		current:  start,
		pending:  start,
		enc:      fec.NewBlockEncoder(coder, streamID),
	}
	af.Base = filter.NewPacketFunc(name,
		func(p *packet.Packet) ([]*packet.Packet, error) {
			if p.Kind != packet.KindData {
				return []*packet.Packet{p}, nil
			}
			af.mu.Lock()
			defer af.mu.Unlock()
			if err := af.maybeSwitchLocked(); err != nil {
				return nil, err
			}
			if af.current.N == af.current.K {
				// FEC disabled: forward the packet untouched.
				return []*packet.Packet{p}, nil
			}
			out, err := af.enc.Add(p.Payload)
			if err != nil {
				return nil, fmt.Errorf("fecproxy: adaptive encode: %w", err)
			}
			return out, nil
		},
		func() []*packet.Packet {
			af.mu.Lock()
			defer af.mu.Unlock()
			return af.enc.Flush()
		})
	return af, nil
}

// SetLossRate reports the link's observed loss rate; the code switches at the
// next group boundary.
func (af *AdaptiveEncoderFilter) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	af.mu.Lock()
	defer af.mu.Unlock()
	af.loss = rate
	af.pending = af.policy.Select(rate)
}

// Current returns the code currently protecting the stream.
func (af *AdaptiveEncoderFilter) Current() fec.Params {
	af.mu.Lock()
	defer af.mu.Unlock()
	return af.current
}

// Switches returns how many times the code has changed.
func (af *AdaptiveEncoderFilter) Switches() uint64 {
	af.mu.Lock()
	defer af.mu.Unlock()
	return af.switches
}

// maybeSwitchLocked applies a pending parameter change at a group boundary.
// Caller holds af.mu.
func (af *AdaptiveEncoderFilter) maybeSwitchLocked() error {
	if af.pending == af.current {
		return nil
	}
	if af.enc.Pending() != 0 {
		return nil // mid-group: wait for the boundary
	}
	coder, err := fec.NewCoder(af.pending)
	if err != nil {
		return err
	}
	af.enc = fec.NewBlockEncoder(coder, af.streamID)
	af.current = af.pending
	af.switches++
	return nil
}

var _ filter.Filter = (*AdaptiveEncoderFilter)(nil)
