package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	cases := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{1, 1, 0},
		{0xff, 0x0f, 0xf0},
		{0x53, 0xca, 0x99},
	}
	for _, c := range cases {
		if got := Add(c.a, c.b); got != c.want {
			t.Errorf("Add(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
		if got := Sub(c.a, c.b); got != c.want {
			t.Errorf("Sub(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Values verified against Rizzo's fec library tables.
	cases := []struct {
		a, b, want byte
	}{
		{0, 5, 0},
		{5, 0, 0},
		{1, 7, 7},
		{2, 2, 4},
		{0x80, 2, 0x1d}, // overflow triggers reduction by 0x11d
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

// refMul is a bit-by-bit carryless multiply with reduction by 0x11d, used as
// an independent oracle for the table-driven implementation.
func refMul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		carry := a&0x80 != 0
		a <<= 1
		if carry {
			a ^= primitivePoly
		}
		b >>= 1
	}
	return p
}

func TestMulMatchesReferenceExhaustive(t *testing.T) {
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if got, want := Mul(byte(a), byte(b)), refMul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutativeExhaustive(t *testing.T) {
	for a := 0; a < Order; a++ {
		for b := a; b < Order; b++ {
			if Mul(byte(a), byte(b)) != Mul(byte(b), byte(a)) {
				t.Fatalf("Mul not commutative for %d,%d", a, b)
			}
		}
	}
}

func TestMulAssociativeProperty(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDistributiveProperty(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestInverseExhaustive(t *testing.T) {
	for a := 1; a < Order; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("Mul(%d, Inv(%d)) = %d, want 1", a, a, got)
		}
	}
}

func TestDivExhaustive(t *testing.T) {
	for a := 0; a < Order; a++ {
		for b := 1; b < Order; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%d,%d)*%d != %d", a, b, b, a)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on division by zero")
		}
	}()
	Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Inv(0)")
		}
	}()
	Inv(0)
}

func TestPow(t *testing.T) {
	cases := []struct {
		a    byte
		e    int
		want byte
	}{
		{0, 0, 1},
		{0, 5, 0},
		{7, 0, 1},
		{2, 1, 2},
		{2, 2, 4},
		{2, 8, 0x1d},
	}
	for _, c := range cases {
		if got := Pow(c.a, c.e); got != c.want {
			t.Errorf("Pow(%d,%d) = %#x, want %#x", c.a, c.e, got, c.want)
		}
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	for a := 0; a < Order; a += 7 {
		acc := byte(1)
		for e := 0; e < 300; e++ {
			if got := Pow(byte(a), e); got != acc {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestExpPeriodic(t *testing.T) {
	for e := 0; e < 255; e++ {
		if Exp(e) != Exp(e+255) {
			t.Fatalf("Exp not periodic at %d", e)
		}
	}
	if Exp(0) != 1 {
		t.Fatalf("Exp(0) = %d, want 1", Exp(0))
	}
}

func TestExpNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative exponent")
		}
	}()
	Exp(-1)
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 0xff}
	dst := make([]byte, len(src))
	MulSlice(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	// c == 0 zeroes the destination.
	MulSlice(0, src, dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatalf("MulSlice(0) should zero dst, got %v", dst)
		}
	}
	// c == 1 copies.
	MulSlice(1, src, dst)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("MulSlice(1) should copy src")
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5}
	dst := []byte{10, 20, 30, 40, 50}
	want := make([]byte, len(dst))
	for i := range want {
		want[i] = dst[i] ^ Mul(7, src[i])
	}
	MulAddSlice(7, src, dst)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("MulAddSlice mismatch at %d: got %d want %d", i, dst[i], want[i])
		}
	}
}

func TestMulAddSliceZeroCoefficientNoop(t *testing.T) {
	src := []byte{9, 9, 9}
	dst := []byte{1, 2, 3}
	MulAddSlice(0, src, dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("MulAddSlice(0) modified dst: %v", dst)
	}
}

func TestAddSlice(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := []byte{4, 5, 6}
	AddSlice(src, dst)
	want := []byte{5, 7, 5}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("AddSlice got %v want %v", dst, want)
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, []byte{1}, []byte{1, 2}) },
		"MulAddSlice": func() { MulAddSlice(2, []byte{1}, []byte{1, 2}) },
		"AddSlice":    func() { AddSlice([]byte{1}, []byte{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on length mismatch")
				}
			}()
			fn()
		})
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x1b, src, dst)
	}
}
