// Package gf256 implements arithmetic over the finite field GF(2^8) and the
// dense matrix operations needed by Vandermonde-based erasure codes.
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same generator used by Rizzo's
// erasure-code library that the paper's FEC filter is based on. Multiplication
// and division are table driven (log/exp tables built at package
// initialization from constant data, not from mutable global state observable
// by callers).
//
// The bulk slice operations ([AddMulSlice], [MulSlice], [AddMulSliceN] and
// the precompiled [EncodePlan]) dispatch through a tiered kernel hierarchy
// selected once at init: byte-table scalar, 8-byte split-nibble SWAR (the
// portable floor, also the purego and 386 path), SSSE3 16-byte PSHUFB blocks
// and AVX2 32-byte VPSHUFB blocks on amd64, and NEON 32-byte TBL blocks on
// arm64. The AVX2 tier is additionally gated by a startup calibration,
// because virtualized hosts can tax YMM state per call; hosts where 32-byte
// ops carry that tax route short slices to SSSE3 and engage AVX2 only above
// the measured crossover. Every tier is differentially tested against the
// scalar field arithmetic for all multipliers, lengths and alignments.
package gf256

import "fmt"

// Order is the number of elements in GF(2^8).
const Order = 256

// primitivePoly is the reduction polynomial, expressed with the x^8 term
// stripped (the classic 0x1d representation of 0x11d).
const primitivePoly = 0x1d

// tables bundles the log/exp lookup tables so that they can be computed once
// and treated as immutable after construction.
type tables struct {
	exp [2 * Order]byte // exp[i] = g^i, doubled to avoid a mod in Mul
	log [Order]byte     // log[exp[i]] = i, log[0] undefined (0)
}

var ft = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := byte(1)
	for i := 0; i < Order-1; i++ {
		t.exp[i] = x
		t.log[x] = byte(i)
		// multiply x by the generator (2) with reduction.
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= primitivePoly
		}
	}
	// Extend the exp table so Mul can index exp[logA+logB] without a modulo.
	for i := Order - 1; i < 2*Order; i++ {
		t.exp[i] = t.exp[i-(Order-1)]
	}
	return t
}

// Add returns a+b in GF(2^8) (bitwise XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8); subtraction and addition coincide.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return ft.exp[int(ft.log[a])+int(ft.log[b])]
}

// Div returns a/b in GF(2^8). Division by zero panics, mirroring integer
// division semantics.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	diff := int(ft.log[a]) - int(ft.log[b])
	if diff < 0 {
		diff += Order - 1
	}
	return ft.exp[diff]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return ft.exp[(Order-1)-int(ft.log[a])]
}

// Exp returns the generator raised to the power e (e may be any non-negative
// integer; it is reduced modulo 255).
func Exp(e int) byte {
	if e < 0 {
		panic(fmt.Sprintf("gf256: negative exponent %d", e))
	}
	return ft.exp[e%(Order-1)]
}

// Pow returns a^e in GF(2^8) for e >= 0.
func Pow(a byte, e int) byte {
	if e < 0 {
		panic(fmt.Sprintf("gf256: negative exponent %d", e))
	}
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (int(ft.log[a]) * e) % (Order - 1)
	return ft.exp[le]
}

// The batched slice kernels (MulSlice, AddMulSlice/MulAddSlice, AddSlice)
// live in kernels.go.
