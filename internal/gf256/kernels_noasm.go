//go:build (!amd64 && !arm64) || purego

package gf256

// Portable builds have no assembly tier; the wide SWAR kernel is the fast
// path. These stubs compile away at the call sites in AddMulSlice/MulSlice.

func addMulFast(nt *nibTab, wt *wideTab, src, dst []byte) bool { return false }

func mulFast(nt *nibTab, wt *wideTab, src, dst []byte) bool { return false }
