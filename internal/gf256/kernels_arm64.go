//go:build arm64 && !purego

package gf256

// arm64 fast path: NEON TBL resolves sixteen nibble-table lookups per
// instruction against the same split tables the portable kernel decomposes
// with — lo[b&0x0f] ^ hi[b>>4]. Advanced SIMD is architectural on AArch64, so
// unlike the amd64 tiers there is nothing to detect: every arm64 build runs
// the vector kernel. The assembly processes 32 bytes per loop (two 16-byte
// quads per table) to keep the load/store units busy. Build with -tags purego
// to force the portable path.

// addMulBlocks32 computes dst[i] ^= c*src[i] over n 32-byte blocks using the
// NEON TBL split-table kernel. src and dst must not overlap and must each
// hold at least 32*n bytes. Implemented in kernels_arm64.s.
//
//go:noescape
func addMulBlocks32(lo, hi *[16]byte, src, dst *byte, n int)

// mulBlocks32 is addMulBlocks32's overwriting twin: dst[i] = c*src[i].
//
//go:noescape
func mulBlocks32(lo, hi *[16]byte, src, dst *byte, n int)

// addMulFast runs dst[i] ^= c*src[i] through the NEON kernel, finishing the
// sub-block tail with the portable wide kernel. Returns false (having done
// nothing) when the slice is too short to fill a 32-byte block, letting the
// caller fall back. The multiplier arrives as its precomputed tables so
// plan-driven encode loops resolve them once, not per call.
func addMulFast(nt *nibTab, wt *wideTab, src, dst []byte) bool {
	if len(src) < 32 {
		return false
	}
	n := len(src) &^ 31
	addMulBlocks32(&nt.lo, &nt.hi, &src[0], &dst[0], n>>5)
	if n < len(src) {
		addMulWide(wt, src[n:], dst[n:])
	}
	return true
}

// mulFast is addMulFast's overwriting twin.
func mulFast(nt *nibTab, wt *wideTab, src, dst []byte) bool {
	if len(src) < 32 {
		return false
	}
	n := len(src) &^ 31
	mulBlocks32(&nt.lo, &nt.hi, &src[0], &dst[0], n>>5)
	if n < len(src) {
		mulWide(wt, src[n:], dst[n:])
	}
	return true
}
