package gf256

// EncodePlan is a precomputed source-major encode schedule for a fixed
// coefficient matrix: m destination rows, each a linear combination of k
// source slices. Building the plan classifies every (row, source) cell once —
// skip (coefficient 0), plain XOR (coefficient 1) or a table multiply with
// the multiplier's nibble and SWAR tables resolved to pointers — so the
// encode inner loop performs no per-call dispatch or table derivation.
//
// Encode walks the work cache-blocked and source-major: the byte range is cut
// into tiles small enough that one source tile plus every destination tile
// fit in L1/L2 together, and within a tile each source column is loaded once
// and scattered into all destination rows (the first column overwrites, so
// destinations never need a separate clear pass). Compare the classic
// row-major loop, which streams every source through the cache once per
// destination row.
//
// An EncodePlan is immutable after construction and safe for concurrent use.
type EncodePlan struct {
	k, m  int
	cells []planCell // column-major: cells[col*m+row]
}

// planCell is one (row, source) coefficient's precomputed kernel state.
type planCell struct {
	op   uint8
	nib  *nibTab
	wide *wideTab
}

// planCell operations. opMul applies the cell's tables; the degenerate
// coefficients are folded into dedicated ops at plan-build time.
const (
	opSkip uint8 = iota // coefficient 0: contributes nothing
	opXor               // coefficient 1: plain XOR / copy
	opMul               // any other coefficient
)

// encodeTileBytes is the cache-block width of EncodePlan.Encode. One source
// tile plus a typical code's worth of destination tiles (a handful of parity
// rows) stays within L1 on current cores, and the tile is large enough that
// per-column loop overhead is noise against the kernel work.
const encodeTileBytes = 4096

// NewEncodePlan builds a plan from m coefficient rows of k entries each:
// destination i is sum over j of coefRows[i][j] * source j. The rows are
// copied into the plan's cell schedule; the caller's slices are not retained.
func NewEncodePlan(coefRows [][]byte) *EncodePlan {
	m := len(coefRows)
	k := 0
	if m > 0 {
		k = len(coefRows[0])
	}
	p := &EncodePlan{k: k, m: m, cells: make([]planCell, k*m)}
	for r, row := range coefRows {
		if len(row) != k {
			panic("gf256: NewEncodePlan ragged coefficient rows")
		}
		for col, c := range row {
			cell := &p.cells[col*m+r]
			switch c {
			case 0:
				cell.op = opSkip
			case 1:
				cell.op = opXor
			default:
				cell.op = opMul
				cell.nib = &nibTables[c]
				cell.wide = &wideTables[c]
			}
		}
	}
	return p
}

// Sources returns k, the number of source slices Encode consumes.
func (p *EncodePlan) Sources() int { return p.k }

// Dests returns m, the number of destination rows Encode produces.
func (p *EncodePlan) Dests() int { return p.m }

// Encode computes every destination row from the sources in one source-major,
// cache-blocked pass. sources must hold exactly Sources() slices and dsts
// exactly Dests(), all of one common length. Destination contents are
// overwritten. Encode performs no validation beyond slice indexing; callers
// (fec.Coder) validate shapes at their boundary.
func (p *EncodePlan) Encode(sources, dsts [][]byte) {
	if p.m == 0 {
		return
	}
	if p.k == 0 {
		// No sources: every destination is the empty combination.
		for _, d := range dsts {
			clear(d)
		}
		return
	}
	size := len(sources[0])
	for off := 0; off < size; {
		end := min(off+encodeTileBytes, size)
		// Column 0 overwrites its tile of every destination row, so the rows
		// need no clear pass and are written exactly once per column round.
		s := sources[0][off:end]
		for r := 0; r < p.m; r++ {
			cell := &p.cells[r]
			d := dsts[r][off:end]
			switch cell.op {
			case opSkip:
				clear(d)
			case opXor:
				copy(d, s)
			default:
				mulTabs(cell.nib, cell.wide, s, d)
			}
		}
		for col := 1; col < p.k; col++ {
			s := sources[col][off:end]
			cells := p.cells[col*p.m : (col+1)*p.m]
			for r := 0; r < p.m; r++ {
				cell := &cells[r]
				d := dsts[r][off:end]
				switch cell.op {
				case opSkip:
				case opXor:
					xorWords(d, s)
				default:
					addMulTabs(cell.nib, cell.wide, s, d)
				}
			}
		}
		off = end
	}
}
