//go:build amd64 && !purego

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL	eaxArg+0(FP), AX
	MOVL	ecxArg+4(FP), CX
	CPUID
	MOVL	AX, eax+8(FP)
	MOVL	BX, ebx+12(FP)
	MOVL	CX, ecx+16(FP)
	MOVL	DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL	CX, CX
	XGETBV
	SHLQ	$32, DX
	ORQ	DX, AX
	MOVQ	AX, ret+0(FP)
	RET

// GF(256) constant multiply via PSHUFB: with the multiplier's two 16-entry
// nibble tables resident in X0 (lo) and X1 (hi), each 16-byte block costs one
// shuffle per table — PSHUFB uses the low nibble of every source byte as a
// table index, so masking with 0x0f (X2) selects lo[b&0x0f] and shifting
// right four first selects hi[b>>4]; their XOR is the product (the same
// decomposition the portable wideTab kernel walks a word at a time).
//
// PROCESS(src-offset, dst-offset) leaves the 16 products XORed into the
// destination block; the overwriting variant stores them directly.

#define ADDMUL16(OFF) \
	MOVOU	OFF(SI), X3  \
	MOVOU	X3, X4       \
	PSRLQ	$4, X4       \
	PAND	X2, X3       \
	PAND	X2, X4       \
	MOVOU	X0, X5       \
	MOVOU	X1, X6       \
	PSHUFB	X3, X5       \
	PSHUFB	X4, X6       \
	PXOR	X6, X5       \
	MOVOU	OFF(DI), X7  \
	PXOR	X7, X5       \
	MOVOU	X5, OFF(DI)

#define MUL16(OFF) \
	MOVOU	OFF(SI), X3  \
	MOVOU	X3, X4       \
	PSRLQ	$4, X4       \
	PAND	X2, X3       \
	PAND	X2, X4       \
	MOVOU	X0, X5       \
	MOVOU	X1, X6       \
	PSHUFB	X3, X5       \
	PSHUFB	X4, X6       \
	PXOR	X6, X5       \
	MOVOU	X5, OFF(DI)

// func addMulBlocks(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·addMulBlocks(SB), NOSPLIT, $0-40
	MOVQ	lo+0(FP), AX
	MOVQ	hi+8(FP), BX
	MOVQ	src+16(FP), SI
	MOVQ	dst+24(FP), DI
	MOVQ	n+32(FP), CX
	MOVOU	(AX), X0
	MOVOU	(BX), X1
	MOVQ	$0x0f0f0f0f0f0f0f0f, AX
	MOVQ	AX, X2
	PUNPCKLQDQ	X2, X2

addmul4:
	CMPQ	CX, $4
	JLT	addmul1
	ADDMUL16(0)
	ADDMUL16(16)
	ADDMUL16(32)
	ADDMUL16(48)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$4, CX
	JMP	addmul4

addmul1:
	TESTQ	CX, CX
	JZ	addmuldone
	ADDMUL16(0)
	ADDQ	$16, SI
	ADDQ	$16, DI
	DECQ	CX
	JMP	addmul1

addmuldone:
	RET

// func mulBlocks(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·mulBlocks(SB), NOSPLIT, $0-40
	MOVQ	lo+0(FP), AX
	MOVQ	hi+8(FP), BX
	MOVQ	src+16(FP), SI
	MOVQ	dst+24(FP), DI
	MOVQ	n+32(FP), CX
	MOVOU	(AX), X0
	MOVOU	(BX), X1
	MOVQ	$0x0f0f0f0f0f0f0f0f, AX
	MOVQ	AX, X2
	PUNPCKLQDQ	X2, X2

mul4:
	CMPQ	CX, $4
	JLT	mul1
	MUL16(0)
	MUL16(16)
	MUL16(32)
	MUL16(48)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$4, CX
	JMP	mul4

mul1:
	TESTQ	CX, CX
	JZ	muldone
	MUL16(0)
	ADDQ	$16, SI
	ADDQ	$16, DI
	DECQ	CX
	JMP	mul1

muldone:
	RET

// AVX2 tier: the same split-table shuffle at 32 bytes per VPSHUFB pair.
// VBROADCASTI128 replicates each 16-entry nibble table into both 128-bit
// lanes of a YMM register, and VPSHUFB indexes within each lane independently
// — exactly the per-byte nibble lookup of the SSSE3 kernel, twice as wide.
// VZEROUPPER before returning keeps the upper YMM state from taxing
// subsequent SSE code with transition penalties.

#define ADDMUL32(OFF) \
	VMOVDQU	OFF(SI), Y3      \
	VPSRLQ	$4, Y3, Y4       \
	VPAND	Y2, Y3, Y3       \
	VPAND	Y2, Y4, Y4       \
	VPSHUFB	Y3, Y0, Y5       \
	VPSHUFB	Y4, Y1, Y6       \
	VPXOR	Y6, Y5, Y5       \
	VPXOR	OFF(DI), Y5, Y5  \
	VMOVDQU	Y5, OFF(DI)

#define MUL32(OFF) \
	VMOVDQU	OFF(SI), Y3      \
	VPSRLQ	$4, Y3, Y4       \
	VPAND	Y2, Y3, Y3       \
	VPAND	Y2, Y4, Y4       \
	VPSHUFB	Y3, Y0, Y5       \
	VPSHUFB	Y4, Y1, Y6       \
	VPXOR	Y6, Y5, Y5       \
	VMOVDQU	Y5, OFF(DI)

// func addMulBlocksAVX2(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·addMulBlocksAVX2(SB), NOSPLIT, $0-40
	MOVQ	lo+0(FP), AX
	MOVQ	hi+8(FP), BX
	MOVQ	src+16(FP), SI
	MOVQ	dst+24(FP), DI
	MOVQ	n+32(FP), CX
	VBROADCASTI128	(AX), Y0
	VBROADCASTI128	(BX), Y1
	MOVQ	$0x0f0f0f0f0f0f0f0f, AX
	MOVQ	AX, X2
	VPBROADCASTQ	X2, Y2

avxaddmul4:
	CMPQ	CX, $4
	JLT	avxaddmul1
	ADDMUL32(0)
	ADDMUL32(32)
	ADDMUL32(64)
	ADDMUL32(96)
	ADDQ	$128, SI
	ADDQ	$128, DI
	SUBQ	$4, CX
	JMP	avxaddmul4

avxaddmul1:
	TESTQ	CX, CX
	JZ	avxaddmuldone
	ADDMUL32(0)
	ADDQ	$32, SI
	ADDQ	$32, DI
	DECQ	CX
	JMP	avxaddmul1

avxaddmuldone:
	VZEROUPPER
	RET

// func mulBlocksAVX2(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·mulBlocksAVX2(SB), NOSPLIT, $0-40
	MOVQ	lo+0(FP), AX
	MOVQ	hi+8(FP), BX
	MOVQ	src+16(FP), SI
	MOVQ	dst+24(FP), DI
	MOVQ	n+32(FP), CX
	VBROADCASTI128	(AX), Y0
	VBROADCASTI128	(BX), Y1
	MOVQ	$0x0f0f0f0f0f0f0f0f, AX
	MOVQ	AX, X2
	VPBROADCASTQ	X2, Y2

avxmul4:
	CMPQ	CX, $4
	JLT	avxmul1
	MUL32(0)
	MUL32(32)
	MUL32(64)
	MUL32(96)
	ADDQ	$128, SI
	ADDQ	$128, DI
	SUBQ	$4, CX
	JMP	avxmul4

avxmul1:
	TESTQ	CX, CX
	JZ	avxmuldone
	MUL32(0)
	ADDQ	$32, SI
	ADDQ	$32, DI
	DECQ	CX
	JMP	avxmul1

avxmuldone:
	VZEROUPPER
	RET
