package gf256

import (
	"bytes"
	"testing"
	"testing/quick"
)

// The batched kernels must agree byte-for-byte with the scalar field
// operations they replace, for every coefficient and any slice length or
// alignment (the word-at-a-time XOR has scalar head/tail handling to get
// wrong).

func TestAddMulSliceMatchesScalar(t *testing.T) {
	prop := func(c byte, src []byte, seed []byte) bool {
		dst := make([]byte, len(src))
		copy(dst, seed)
		want := make([]byte, len(src))
		copy(want, dst)
		for i := range src {
			want[i] ^= Mul(c, src[i])
		}
		AddMulSlice(c, src, dst)
		return bytes.Equal(dst, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	prop := func(c byte, src []byte) bool {
		dst := make([]byte, len(src))
		MulSlice(c, src, dst)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSliceMatchesScalarXOR(t *testing.T) {
	prop := func(src []byte, seed []byte) bool {
		dst := make([]byte, len(src))
		copy(dst, seed)
		want := make([]byte, len(src))
		for i := range src {
			want[i] = dst[i] ^ src[i]
		}
		AddSlice(src, dst)
		return bytes.Equal(dst, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestXORWordsOffsets nails the word/tail boundary cases deterministically:
// every length 0..40 and every starting offset within a word.
func TestXORWordsOffsets(t *testing.T) {
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(i*7 + 3)
	}
	for off := 0; off < wordSize; off++ {
		for n := 0; n <= 40; n++ {
			src := base[off : off+n]
			dst := make([]byte, n)
			for i := range dst {
				dst[i] = byte(i * 13)
			}
			want := make([]byte, n)
			for i := range want {
				want[i] = dst[i] ^ src[i]
			}
			xorWords(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("xorWords off=%d n=%d mismatch", off, n)
			}
		}
	}
}

// TestAddMulSliceOffsets nails the wide kernel's unroll/word/tail boundaries
// deterministically: every length 0..72 and every starting offset within a
// word, across a sample of coefficients (0, 1, 2 and three generic values).
func TestAddMulSliceOffsets(t *testing.T) {
	base := make([]byte, 128)
	for i := range base {
		base[i] = byte(i*29 + 11)
	}
	for _, c := range []byte{0, 1, 2, 0x1d, 0x53, 0xff} {
		for off := 0; off < wordSize; off++ {
			for n := 0; n <= 72; n++ {
				src := base[off : off+n]
				dst := make([]byte, n)
				want := make([]byte, n)
				for i := range dst {
					dst[i] = byte(i*17 + 5)
					want[i] = dst[i] ^ Mul(c, src[i])
				}
				AddMulSlice(c, src, dst)
				if !bytes.Equal(dst, want) {
					t.Fatalf("AddMulSlice c=%#x off=%d n=%d mismatch", c, off, n)
				}
				got := make([]byte, n)
				MulSlice(c, src, got)
				for i := range got {
					if got[i] != Mul(c, src[i]) {
						t.Fatalf("MulSlice c=%#x off=%d n=%d byte %d", c, off, n, i)
					}
				}
			}
		}
	}
}

// TestWideTablesAgreeWithMulTable cross-checks the split nibble tables (and
// their lane replication) against the product table for the whole field.
func TestWideTablesAgreeWithMulTable(t *testing.T) {
	for c := 1; c < Order; c++ {
		w := &wideTables[c]
		for x := 0; x < 16; x++ {
			wantLo := uint64(mulTable[c][x]) * lanes
			wantHi := uint64(mulTable[c][x<<4]) * lanes
			if w.lo[x] != wantLo || w.hi[x] != wantHi {
				t.Fatalf("wideTables[%d] entry %d = %#x/%#x, want %#x/%#x", c, x, w.lo[x], w.hi[x], wantLo, wantHi)
			}
		}
		for b := 0; b < Order; b++ {
			if got, want := w.mulByte(byte(b)), mulTable[c][b]; got != want {
				t.Fatalf("mulByte(%d, %d) = %d, want %d", c, b, got, want)
			}
		}
	}
}

// TestMulTableAgreesWithLogExp cross-checks the 64 KiB product table against
// the log/exp construction over the full field.
func TestMulTableAgreesWithLogExp(t *testing.T) {
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if got, want := mulTable[a][b], Mul(byte(a), byte(b)); got != want {
				t.Fatalf("mulTable[%d][%d] = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulAddSliceAliasName(t *testing.T) {
	src := []byte{1, 2, 3, 255}
	a := make([]byte, len(src))
	b := make([]byte, len(src))
	MulAddSlice(0x53, src, a)
	AddMulSlice(0x53, src, b)
	if !bytes.Equal(a, b) {
		t.Fatal("MulAddSlice and AddMulSlice disagree")
	}
}
