package gf256

import (
	"bytes"
	"testing"
	"testing/quick"
)

// The batched kernels must agree byte-for-byte with the scalar field
// operations they replace, for every coefficient and any slice length or
// alignment (the word-at-a-time XOR has scalar head/tail handling to get
// wrong).

func TestAddMulSliceMatchesScalar(t *testing.T) {
	prop := func(c byte, src []byte, seed []byte) bool {
		dst := make([]byte, len(src))
		copy(dst, seed)
		want := make([]byte, len(src))
		copy(want, dst)
		for i := range src {
			want[i] ^= Mul(c, src[i])
		}
		AddMulSlice(c, src, dst)
		return bytes.Equal(dst, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	prop := func(c byte, src []byte) bool {
		dst := make([]byte, len(src))
		MulSlice(c, src, dst)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSliceMatchesScalarXOR(t *testing.T) {
	prop := func(src []byte, seed []byte) bool {
		dst := make([]byte, len(src))
		copy(dst, seed)
		want := make([]byte, len(src))
		for i := range src {
			want[i] = dst[i] ^ src[i]
		}
		AddSlice(src, dst)
		return bytes.Equal(dst, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestXORWordsOffsets nails the word/tail boundary cases deterministically:
// every length 0..40 and every starting offset within a word.
func TestXORWordsOffsets(t *testing.T) {
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(i*7 + 3)
	}
	for off := 0; off < wordSize; off++ {
		for n := 0; n <= 40; n++ {
			src := base[off : off+n]
			dst := make([]byte, n)
			for i := range dst {
				dst[i] = byte(i * 13)
			}
			want := make([]byte, n)
			for i := range want {
				want[i] = dst[i] ^ src[i]
			}
			xorWords(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("xorWords off=%d n=%d mismatch", off, n)
			}
		}
	}
}

// TestMulTableAgreesWithLogExp cross-checks the 64 KiB product table against
// the log/exp construction over the full field.
func TestMulTableAgreesWithLogExp(t *testing.T) {
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if got, want := mulTable[a][b], Mul(byte(a), byte(b)); got != want {
				t.Fatalf("mulTable[%d][%d] = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulAddSliceAliasName(t *testing.T) {
	src := []byte{1, 2, 3, 255}
	a := make([]byte, len(src))
	b := make([]byte, len(src))
	MulAddSlice(0x53, src, a)
	AddMulSlice(0x53, src, b)
	if !bytes.Equal(a, b) {
		t.Fatal("MulAddSlice and AddMulSlice disagree")
	}
}
