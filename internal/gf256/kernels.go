package gf256

import "encoding/binary"

// This file holds the batched kernels behind the FEC encode/decode inner
// loops. Three ideas: a full 64 KiB product table (mulTable[c][x] = c*x, from
// Rizzo's fec library) replaces the two log lookups per byte of the scalar
// path; the c==1 case degenerates to a pure XOR that runs one machine word at
// a time; and for every other coefficient a split-table SWAR kernel
// multiplies eight bytes per step — two 16-entry nibble tables expanded to
// 64-bit lanes drive a branch-free bit-plane multiply (see wideTab), 4x
// unrolled, so encode throughput no longer walks a byte table.
//
// Above the SWAR tier sit the vector kernels, all driven by the same split
// nibble tables in byte form (nibTab): on amd64, SSSE3 PSHUFB multiplies 16
// bytes per shuffle pair and AVX2 VPSHUFB 32 (kernels_amd64.s, runtime
// dispatched); on arm64, NEON TBL does the same 16 bytes per lookup
// (kernels_arm64.s, unconditional — ASIMD is architectural). addMulFast/
// mulFast gate those paths and the portable build resolves them to no-ops
// (kernels_noasm.go, forced everywhere by the purego tag).

// nibTab is one multiplier's split table in byte form, contiguous so the
// vector kernels can load each half with a single 16-byte move: lo[x] = c*x
// and hi[x] = c*(x<<4), together covering the field through
// c*b = lo[b&0x0f] ^ hi[b>>4].
type nibTab struct {
	lo [16]byte
	hi [16]byte
}

var nibTables = buildNibTables()

func buildNibTables() *[Order]nibTab {
	ts := &[Order]nibTab{}
	for c := 1; c < Order; c++ {
		row := &mulTable[c]
		for x := 0; x < 16; x++ {
			ts[c].lo[x] = row[x]
			ts[c].hi[x] = row[x<<4]
		}
	}
	return ts
}

// mulTable[c][x] is the GF(2^8) product c*x.
var mulTable = buildMulTable()

func buildMulTable() *[Order][Order]byte {
	t := &[Order][Order]byte{}
	for c := 1; c < Order; c++ {
		logC := int(ft.log[c])
		for x := 1; x < Order; x++ {
			t[c][x] = ft.exp[logC+int(ft.log[x])]
		}
	}
	return t
}

const (
	wordSize = 8
	// lanes replicates a byte across the eight lanes of a 64-bit word.
	lanes = 0x0101010101010101
)

// wideTab is multiplier c's split product table expanded to 64-bit lanes: two
// 16-entry nibble tables where lo[x] = c*x and hi[x] = c*(x<<4), each product
// byte replicated across all eight lanes. Because c*b = c*(b&0x0f) ^
// c*(b>>4<<4), the two tables together cover the field with 32 entries instead
// of 256 — and their power-of-two entries are exactly the per-bit constants
// the word-at-a-time kernel needs (see mulWord).
type wideTab struct {
	lo [16]uint64
	hi [16]uint64
}

// wideTables holds one split table per multiplier (64 KiB total, the same
// footprint as mulTable; only the 32 hot entries of the active multiplier live
// in cache during an encode pass, versus the full 256-byte row of mulTable).
var wideTables = buildWideTables()

func buildWideTables() *[Order]wideTab {
	ts := &[Order]wideTab{}
	for c := 1; c < Order; c++ {
		row := &mulTable[c]
		for x := 0; x < 16; x++ {
			ts[c].lo[x] = uint64(row[x]) * lanes
			ts[c].hi[x] = uint64(row[x<<4]) * lanes
		}
	}
	return ts
}

// planes are the eight pre-broadcast bit-plane constants of one multiplier:
// planes[j] is c*2^j replicated across all lanes — exactly the power-of-two
// entries of the split tables (lo[1<<j] for j<4, hi[1<<j] for j>=4), gathered
// so the word kernel keeps them in registers.
type planes [8]uint64

func (t *wideTab) planes() planes {
	return planes{t.lo[1], t.lo[2], t.lo[4], t.lo[8], t.hi[1], t.hi[2], t.hi[4], t.hi[8]}
}

// mulWord multiplies all eight bytes of w by the planes' coefficient in one
// branch-free pass. GF(2^8) multiplication by a constant is linear over GF(2),
// so c*b = XOR over the set bits j of b of c*2^j. For each bit plane j the
// mask m = (w>>j)&lanes has a 1 in every lane whose byte has bit j set;
// (m<<8)-m widens each 1 to a full-lane 0xff (lanes hold only 0 or 1, so the
// borrow never crosses a lane), selecting that plane's pre-broadcast constant.
func (p *planes) mulWord(w uint64) uint64 {
	m := w & lanes
	acc := p[0] & (m<<8 - m)
	m = w >> 1 & lanes
	acc ^= p[1] & (m<<8 - m)
	m = w >> 2 & lanes
	acc ^= p[2] & (m<<8 - m)
	m = w >> 3 & lanes
	acc ^= p[3] & (m<<8 - m)
	m = w >> 4 & lanes
	acc ^= p[4] & (m<<8 - m)
	m = w >> 5 & lanes
	acc ^= p[5] & (m<<8 - m)
	m = w >> 6 & lanes
	acc ^= p[6] & (m<<8 - m)
	m = w >> 7 & lanes
	acc ^= p[7] & (m<<8 - m)
	return acc
}

// mulByte multiplies one byte via the split tables — the scalar tail of the
// wide kernels, touching only the 32 resident table entries.
func (t *wideTab) mulByte(b byte) byte {
	return byte(t.lo[b&0x0f]) ^ byte(t.hi[b>>4])
}

// addMulWide computes dst[i] ^= c*src[i] a word at a time, 4x unrolled, with a
// word-then-scalar tail. Loading and storing through LittleEndian keeps lane j
// bound to byte index j on every architecture, so the kernel is endian- and
// word-size-safe (the property tests run it under GOARCH=386 in CI).
func addMulWide(t *wideTab, src, dst []byte) {
	p := t.planes()
	n := len(src)
	i := 0
	for ; i+4*wordSize <= n; i += 4 * wordSize {
		s0 := binary.LittleEndian.Uint64(src[i:])
		s1 := binary.LittleEndian.Uint64(src[i+wordSize:])
		s2 := binary.LittleEndian.Uint64(src[i+2*wordSize:])
		s3 := binary.LittleEndian.Uint64(src[i+3*wordSize:])
		d0 := binary.LittleEndian.Uint64(dst[i:])
		d1 := binary.LittleEndian.Uint64(dst[i+wordSize:])
		d2 := binary.LittleEndian.Uint64(dst[i+2*wordSize:])
		d3 := binary.LittleEndian.Uint64(dst[i+3*wordSize:])
		binary.LittleEndian.PutUint64(dst[i:], d0^p.mulWord(s0))
		binary.LittleEndian.PutUint64(dst[i+wordSize:], d1^p.mulWord(s1))
		binary.LittleEndian.PutUint64(dst[i+2*wordSize:], d2^p.mulWord(s2))
		binary.LittleEndian.PutUint64(dst[i+3*wordSize:], d3^p.mulWord(s3))
	}
	for ; i+wordSize <= n; i += wordSize {
		s := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^p.mulWord(s))
	}
	for ; i < n; i++ {
		dst[i] ^= t.mulByte(src[i])
	}
}

// mulWide is addMulWide's overwriting twin: dst[i] = c*src[i].
func mulWide(t *wideTab, src, dst []byte) {
	p := t.planes()
	n := len(src)
	i := 0
	for ; i+4*wordSize <= n; i += 4 * wordSize {
		s0 := binary.LittleEndian.Uint64(src[i:])
		s1 := binary.LittleEndian.Uint64(src[i+wordSize:])
		s2 := binary.LittleEndian.Uint64(src[i+2*wordSize:])
		s3 := binary.LittleEndian.Uint64(src[i+3*wordSize:])
		binary.LittleEndian.PutUint64(dst[i:], p.mulWord(s0))
		binary.LittleEndian.PutUint64(dst[i+wordSize:], p.mulWord(s1))
		binary.LittleEndian.PutUint64(dst[i+2*wordSize:], p.mulWord(s2))
		binary.LittleEndian.PutUint64(dst[i+3*wordSize:], p.mulWord(s3))
	}
	for ; i+wordSize <= n; i += wordSize {
		binary.LittleEndian.PutUint64(dst[i:], p.mulWord(binary.LittleEndian.Uint64(src[i:])))
	}
	for ; i < n; i++ {
		dst[i] = t.mulByte(src[i])
	}
}

// xorWords computes dst[i] ^= src[i] one 64-bit word at a time with a scalar
// tail. len(src) must not exceed len(dst).
func xorWords(dst, src []byte) {
	n := len(src)
	for n >= wordSize {
		d := binary.LittleEndian.Uint64(dst)
		s := binary.LittleEndian.Uint64(src)
		binary.LittleEndian.PutUint64(dst, d^s)
		dst = dst[wordSize:]
		src = src[wordSize:]
		n -= wordSize
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// MulSlice multiplies every byte of src by c and stores the result in dst.
// dst and src must have the same length; dst may alias src.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	mulTabs(&nibTables[c], &wideTables[c], src, dst)
}

// mulTabs is MulSlice past its dispatch on the degenerate coefficients, keyed
// by the multiplier's precomputed tables instead of the coefficient itself so
// plan-driven callers (EncodePlan) resolve the tables exactly once.
func mulTabs(nt *nibTab, wt *wideTab, src, dst []byte) {
	if mulFast(nt, wt, src, dst) {
		return
	}
	if len(src) >= wordSize {
		mulWide(wt, src, dst)
		return
	}
	for i, s := range src {
		dst[i] = wt.mulByte(s)
	}
}

// AddMulSlice computes dst[i] ^= c*src[i] for every index: the inner loop of
// the erasure encoder and decoder. dst and src must have the same length.
func AddMulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddMulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorWords(dst, src)
		return
	}
	addMulTabs(&nibTables[c], &wideTables[c], src, dst)
}

// addMulTabs is mulTabs' accumulating twin.
func addMulTabs(nt *nibTab, wt *wideTab, src, dst []byte) {
	if addMulFast(nt, wt, src, dst) {
		return
	}
	if len(src) >= wordSize {
		addMulWide(wt, src, dst)
		return
	}
	for i, s := range src {
		dst[i] ^= wt.mulByte(s)
	}
}

// MulSliceN scatters one source into many destinations in a single pass:
// dsts[i] = cs[i]*src for every i, so src is read once while hot in cache
// instead of once per destination. Every destination must have the same
// length as src. It is the overwriting half of the batched encode kernel;
// see AddMulSliceN.
func MulSliceN(cs []byte, src []byte, dsts [][]byte) {
	if len(cs) != len(dsts) {
		panic("gf256: MulSliceN coefficient count mismatch")
	}
	for i, dst := range dsts {
		MulSlice(cs[i], src, dst)
	}
}

// AddMulSliceN computes dsts[i] ^= cs[i]*src for every destination: the
// source-major inner step of the one-pass FEC encode, accumulating one source
// share into all parity rows while its bytes are resident in cache. Every
// destination must have the same length as src.
func AddMulSliceN(cs []byte, src []byte, dsts [][]byte) {
	if len(cs) != len(dsts) {
		panic("gf256: AddMulSliceN coefficient count mismatch")
	}
	for i, dst := range dsts {
		AddMulSlice(cs[i], src, dst)
	}
}

// MulAddSlice is the historical name for AddMulSlice, kept for existing
// callers.
func MulAddSlice(c byte, src, dst []byte) { AddMulSlice(c, src, dst) }

// AddSlice computes dst[i] ^= src[i] for every index, batched word at a time.
func AddSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddSlice length mismatch")
	}
	xorWords(dst, src)
}
