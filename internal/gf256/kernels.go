package gf256

import "encoding/binary"

// This file holds the batched kernels behind the FEC encode/decode inner
// loops. Two ideas, both from Rizzo's fec library: a full 64 KiB product
// table (mulTable[c][x] = c*x) replaces the two log lookups per byte of the
// scalar path, and the c==1 case degenerates to a pure XOR that runs one
// machine word at a time.

// mulTable[c][x] is the GF(2^8) product c*x.
var mulTable = buildMulTable()

func buildMulTable() *[Order][Order]byte {
	t := &[Order][Order]byte{}
	for c := 1; c < Order; c++ {
		logC := int(ft.log[c])
		for x := 1; x < Order; x++ {
			t[c][x] = ft.exp[logC+int(ft.log[x])]
		}
	}
	return t
}

const wordSize = 8

// xorWords computes dst[i] ^= src[i] one 64-bit word at a time with a scalar
// tail. len(src) must not exceed len(dst).
func xorWords(dst, src []byte) {
	n := len(src)
	for n >= wordSize {
		d := binary.LittleEndian.Uint64(dst)
		s := binary.LittleEndian.Uint64(src)
		binary.LittleEndian.PutUint64(dst, d^s)
		dst = dst[wordSize:]
		src = src[wordSize:]
		n -= wordSize
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// MulSlice multiplies every byte of src by c and stores the result in dst.
// dst and src must have the same length; dst may alias src.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// AddMulSlice computes dst[i] ^= c*src[i] for every index: the inner loop of
// the erasure encoder and decoder. dst and src must have the same length.
func AddMulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddMulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorWords(dst, src)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// MulAddSlice is the historical name for AddMulSlice, kept for existing
// callers.
func MulAddSlice(c byte, src, dst []byte) { AddMulSlice(c, src, dst) }

// AddSlice computes dst[i] ^= src[i] for every index, batched word at a time.
func AddSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddSlice length mismatch")
	}
	xorWords(dst, src)
}
