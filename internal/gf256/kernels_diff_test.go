package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential coverage for the whole kernel hierarchy: whatever tier the
// build and host dispatch to (scalar, SWAR, SSSE3, AVX2, NEON), the public
// slice operations must agree byte-for-byte with the scalar field arithmetic.
// These tests run identically under purego, GOARCH=386 and the qemu arm64
// lane, so every tier is pinned to the same reference.

// scalarAddMulRef is the byte-at-a-time reference: dst[i] ^= c*src[i].
func scalarAddMulRef(c byte, src, dst []byte) {
	for i := range src {
		dst[i] ^= Mul(c, src[i])
	}
}

// TestAddMulSliceKernelsExhaustive sweeps every multiplier against every
// length 0..257 with rotating, independently unaligned source and destination
// offsets, so block boundaries (16 for SSSE3, 32 for AVX2/NEON, 8 for SWAR)
// and the scalar tails beyond them are all crossed for all 256 tables.
func TestAddMulSliceKernelsExhaustive(t *testing.T) {
	const maxLen = 257
	base := make([]byte, maxLen+2*wordSize)
	seed := make([]byte, maxLen+2*wordSize)
	rng := rand.New(rand.NewSource(41))
	rng.Read(base)
	rng.Read(seed)
	dst := make([]byte, len(seed))
	want := make([]byte, len(seed))
	got2 := make([]byte, len(seed))
	for c := 0; c < Order; c++ {
		for n := 0; n <= maxLen; n++ {
			soff := (c*31 + n) % wordSize
			doff := (c*17 + n*5) % wordSize
			src := base[soff : soff+n]
			d := dst[doff : doff+n]
			w := want[doff : doff+n]
			copy(d, seed[doff:doff+n])
			copy(w, d)
			scalarAddMulRef(byte(c), src, w)
			AddMulSlice(byte(c), src, d)
			if !bytes.Equal(d, w) {
				t.Fatalf("AddMulSlice c=%#x n=%d soff=%d doff=%d diverges from scalar", c, n, soff, doff)
			}
			g := got2[doff : doff+n]
			MulSlice(byte(c), src, g)
			for i := range g {
				if g[i] != Mul(byte(c), src[i]) {
					t.Fatalf("MulSlice c=%#x n=%d soff=%d doff=%d byte %d", c, n, soff, doff, i)
				}
			}
		}
	}
}

// TestAddMulWideMatchesScalar pins the SWAR tier itself (not just whatever
// addMulFast dispatches to) against the scalar reference, so on hosts where
// the vector tier handles everything the portable fallback still gets proven.
func TestAddMulWideMatchesScalar(t *testing.T) {
	base := make([]byte, 300)
	rng := rand.New(rand.NewSource(42))
	rng.Read(base)
	for _, c := range []byte{1, 2, 3, 0x1d, 0x53, 0x80, 0xfe, 0xff} {
		wt := &wideTables[c]
		for _, n := range []int{wordSize, 2 * wordSize, 31, 32, 33, 63, 64, 65, 127, 257} {
			for off := 0; off < wordSize; off++ {
				src := base[off : off+n]
				got := make([]byte, n)
				want := make([]byte, n)
				for i := range got {
					got[i] = byte(i*11 + 7)
					want[i] = got[i]
				}
				scalarAddMulRef(c, src, want)
				addMulWide(wt, src, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("addMulWide c=%#x n=%d off=%d diverges from scalar", c, n, off)
				}
				mulWide(wt, src, got)
				for i := range got {
					if got[i] != Mul(c, src[i]) {
						t.Fatalf("mulWide c=%#x n=%d off=%d byte %d", c, n, off, i)
					}
				}
			}
		}
	}
}

// TestAddMulSliceNMatchesScalar checks the batched scatter entry point: one
// source fanned into several destinations under distinct coefficients.
func TestAddMulSliceNMatchesScalar(t *testing.T) {
	prop := func(cs []byte, src []byte, rows uint8) bool {
		m := int(rows%5) + 1
		if len(cs) < m {
			return true
		}
		cs = cs[:m]
		dsts := make([][]byte, m)
		want := make([][]byte, m)
		for i := range dsts {
			dsts[i] = make([]byte, len(src))
			for j := range dsts[i] {
				dsts[i][j] = byte(i*37 + j*3)
			}
			want[i] = append([]byte(nil), dsts[i]...)
			scalarAddMulRef(cs[i], src, want[i])
		}
		AddMulSliceN(cs, src, dsts)
		for i := range dsts {
			if !bytes.Equal(dsts[i], want[i]) {
				return false
			}
		}
		// Overwriting variant: dst[i] = cs[i]*src.
		MulSliceN(cs, src, dsts)
		for i := range dsts {
			for j := range dsts[i] {
				if dsts[i][j] != Mul(cs[i], src[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodePlanMatchesScalar checks the source-major tiled plan against the
// naive row-major scalar encode for a sweep of shapes and share sizes,
// including sizes straddling the tile boundary.
func TestEncodePlanMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sizes := []int{1, 2, 15, 16, 17, 320, 1400, encodeTileBytes - 1, encodeTileBytes, encodeTileBytes + 33}
	for _, kk := range []int{1, 2, 4, 8, 16} {
		for _, m := range []int{1, 2, 4, 8} {
			rows := make([][]byte, m)
			for i := range rows {
				rows[i] = make([]byte, kk)
				rng.Read(rows[i])
				// Sprinkle the special coefficients the plan compiles to
				// dedicated ops.
				rows[i][rng.Intn(kk)] = byte(rng.Intn(2))
			}
			plan := NewEncodePlan(rows)
			if plan.Sources() != kk || plan.Dests() != m {
				t.Fatalf("plan shape = (%d,%d), want (%d,%d)", plan.Sources(), plan.Dests(), kk, m)
			}
			for _, size := range sizes {
				sources := make([][]byte, kk)
				for i := range sources {
					sources[i] = make([]byte, size)
					rng.Read(sources[i])
				}
				got := make([][]byte, m)
				want := make([][]byte, m)
				for i := range got {
					got[i] = make([]byte, size)
					rng.Read(got[i]) // stale contents must be overwritten
					want[i] = make([]byte, size)
					for col := 0; col < kk; col++ {
						scalarAddMulRef(rows[i][col], sources[col], want[i])
					}
				}
				plan.Encode(sources, got)
				for i := range got {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("EncodePlan k=%d m=%d size=%d row %d diverges from scalar", kk, m, size, i)
					}
				}
			}
		}
	}
}

// FuzzAddMulSliceKernels feeds arbitrary coefficients, offsets and payloads
// through the dispatched kernels and cross-checks scalar reference, SWAR tier
// and public entry points against each other.
func FuzzAddMulSliceKernels(f *testing.F) {
	f.Add(uint8(0x53), uint8(3), []byte("differential kernel fuzzing seed payload, long enough to cross a block"))
	f.Add(uint8(0), uint8(0), []byte{})
	f.Add(uint8(1), uint8(7), make([]byte, 257))
	f.Add(uint8(0xff), uint8(1), bytes.Repeat([]byte{0xa5}, 64))
	f.Fuzz(func(t *testing.T, c uint8, off uint8, data []byte) {
		o := int(off) % wordSize
		if len(data) < o {
			return
		}
		src := data[o:]
		n := len(src)
		seed := make([]byte, n)
		for i := range seed {
			seed[i] = byte(i*13 + int(c))
		}
		want := append([]byte(nil), seed...)
		scalarAddMulRef(c, src, want)

		got := append([]byte(nil), seed...)
		AddMulSlice(c, src, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("AddMulSlice c=%#x n=%d off=%d diverges from scalar", c, n, o)
		}

		copy(got, seed)
		addMulWide(&wideTables[c], src, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("addMulWide c=%#x n=%d off=%d diverges from scalar", c, n, o)
		}

		MulSlice(c, src, got)
		for i := range got {
			if got[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice c=%#x n=%d off=%d byte %d", c, n, o, i)
			}
		}
	})
}
