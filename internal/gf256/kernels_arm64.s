//go:build arm64 && !purego

#include "textflag.h"

// GF(256) constant multiply via NEON TBL: with the multiplier's two 16-entry
// nibble tables resident in V0 (lo) and V1 (hi), each 16-byte quad costs one
// table lookup per nibble half — TBL uses each index byte to select a table
// entry, so masking with 0x0f (V2) selects lo[b&0x0f] and shifting right four
// first selects hi[b>>4]; their XOR is the product. Two quads are processed
// per loop iteration (32 bytes), matching the AVX2 kernel's block width so
// the Go-side gating is identical across architectures.

// func addMulBlocks32(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·addMulBlocks32(SB), NOSPLIT, $0-40
	MOVD	lo+0(FP), R0
	MOVD	hi+8(FP), R1
	MOVD	src+16(FP), R2
	MOVD	dst+24(FP), R3
	MOVD	n+32(FP), R4
	VLD1	(R0), [V0.B16]
	VLD1	(R1), [V1.B16]
	VMOVI	$15, V2.B16

addmulloop:
	CBZ	R4, addmuldone
	VLD1.P	32(R2), [V3.B16, V4.B16]
	VUSHR	$4, V3.B16, V5.B16
	VUSHR	$4, V4.B16, V6.B16
	VAND	V2.B16, V3.B16, V3.B16
	VAND	V2.B16, V4.B16, V4.B16
	VTBL	V3.B16, [V0.B16], V7.B16
	VTBL	V5.B16, [V1.B16], V16.B16
	VTBL	V4.B16, [V0.B16], V8.B16
	VTBL	V6.B16, [V1.B16], V17.B16
	VEOR	V16.B16, V7.B16, V7.B16
	VEOR	V17.B16, V8.B16, V8.B16
	VLD1	(R3), [V18.B16, V19.B16]
	VEOR	V18.B16, V7.B16, V7.B16
	VEOR	V19.B16, V8.B16, V8.B16
	VST1.P	[V7.B16, V8.B16], 32(R3)
	SUB	$1, R4, R4
	B	addmulloop

addmuldone:
	RET

// func mulBlocks32(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·mulBlocks32(SB), NOSPLIT, $0-40
	MOVD	lo+0(FP), R0
	MOVD	hi+8(FP), R1
	MOVD	src+16(FP), R2
	MOVD	dst+24(FP), R3
	MOVD	n+32(FP), R4
	VLD1	(R0), [V0.B16]
	VLD1	(R1), [V1.B16]
	VMOVI	$15, V2.B16

mulloop:
	CBZ	R4, muldone
	VLD1.P	32(R2), [V3.B16, V4.B16]
	VUSHR	$4, V3.B16, V5.B16
	VUSHR	$4, V4.B16, V6.B16
	VAND	V2.B16, V3.B16, V3.B16
	VAND	V2.B16, V4.B16, V4.B16
	VTBL	V3.B16, [V0.B16], V7.B16
	VTBL	V5.B16, [V1.B16], V16.B16
	VTBL	V4.B16, [V0.B16], V8.B16
	VTBL	V6.B16, [V1.B16], V17.B16
	VEOR	V16.B16, V7.B16, V7.B16
	VEOR	V17.B16, V8.B16, V8.B16
	VST1.P	[V7.B16, V8.B16], 32(R3)
	SUB	$1, R4, R4
	B	mulloop

muldone:
	RET
