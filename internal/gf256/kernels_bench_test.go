package gf256

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkGF256AddMul measures the erasure coder's inner-loop kernel across
// payload sizes from one cache line (64B) to the maximum frame (64KiB), the
// figure the wide split-table and PSHUFB kernels exist to move. It is part of
// the CI-tracked benchmark set (see BENCH_engine.json).
func BenchmarkGF256AddMul(b *testing.B) {
	for _, size := range []int{64, 320, 1024, 1400, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			src := make([]byte, size)
			dst := make([]byte, size)
			rng.Read(src)
			rng.Read(dst)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AddMulSlice(0x53, src, dst)
			}
		})
	}
}

// benchScalarAddMul is the pre-wide-kernel byte-table walk, kept as the
// baseline the SWAR kernel is compared against.
func benchScalarAddMul(c byte, src, dst []byte) {
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

func BenchmarkGF256AddMulScalarBaseline(b *testing.B) {
	for _, size := range []int{320, 16 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			src := make([]byte, size)
			dst := make([]byte, size)
			rng.Read(src)
			rng.Read(dst)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchScalarAddMul(0x53, src, dst)
			}
		})
	}
}
