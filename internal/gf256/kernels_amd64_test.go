//go:build amd64 && !purego

package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAsmKernelMatchesWide drives the PSHUFB block kernels directly against
// the portable wide kernels on large random slices, so the 4-block unroll and
// the partial-trailing-block handoff are exercised beyond the short
// deterministic offsets test.
func TestAsmKernelMatchesWide(t *testing.T) {
	if !hasSSSE3 {
		t.Skip("no SSSE3")
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{16, 64, 65, 127, 1024, 4096 + 48} {
		src := make([]byte, n)
		seed := make([]byte, n)
		rng.Read(src)
		rng.Read(seed)
		for _, c := range []byte{2, 0x1d, 0x53, 0x80, 0xff} {
			want := make([]byte, n)
			copy(want, seed)
			addMulWide(&wideTables[c], src, want)
			got := make([]byte, n)
			copy(got, seed)
			nt := &nibTables[c]
			addMulBlocks(&nt.lo, &nt.hi, &src[0], &got[0], n>>4)
			if tail := n &^ 15; tail < n {
				addMulWide(&wideTables[c], src[tail:], got[tail:])
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("addMulBlocks c=%#x n=%d diverges from wide kernel", c, n)
			}
			mulWide(&wideTables[c], src, want)
			mulBlocks(&nt.lo, &nt.hi, &src[0], &got[0], n>>4)
			if tail := n &^ 15; tail < n {
				mulWide(&wideTables[c], src[tail:], got[tail:])
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("mulBlocks c=%#x n=%d diverges from wide kernel", c, n)
			}
		}
	}
}

// TestAVX2KernelMatchesWide drives the 32-byte VPSHUFB block kernels directly
// against the portable wide kernels, independent of where the calibrated
// dispatch crossover landed on this host.
func TestAVX2KernelMatchesWide(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2")
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{32, 64, 96, 1024, 4096 + 96} {
		src := make([]byte, n)
		seed := make([]byte, n)
		rng.Read(src)
		rng.Read(seed)
		for _, c := range []byte{2, 0x1d, 0x53, 0x80, 0xff} {
			want := make([]byte, n)
			copy(want, seed)
			addMulWide(&wideTables[c], src, want)
			got := make([]byte, n)
			copy(got, seed)
			nt := &nibTables[c]
			addMulBlocksAVX2(&nt.lo, &nt.hi, &src[0], &got[0], n>>5)
			if !bytes.Equal(got, want) {
				t.Fatalf("addMulBlocksAVX2 c=%#x n=%d diverges from wide kernel", c, n)
			}
			mulWide(&wideTables[c], src, want)
			mulBlocksAVX2(&nt.lo, &nt.hi, &src[0], &got[0], n>>5)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulBlocksAVX2 c=%#x n=%d diverges from wide kernel", c, n)
			}
		}
	}
}

// TestAddMulSliceAVX2DispatchOffsets forces the AVX2 dispatch regime
// (whatever the init-time calibration picked) and sweeps lengths around the
// 32-byte block, the single-SSSE3-block tail and the sub-16-byte scalar tail,
// so the three-stage handoff in addMulFast/mulFast is proven even on hosts
// whose calibration routes short slices to SSSE3.
func TestAddMulSliceAVX2DispatchOffsets(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2")
	}
	old := avx2MinLen
	avx2MinLen = 32
	defer func() { avx2MinLen = old }()
	base := make([]byte, 512)
	rng := rand.New(rand.NewSource(13))
	rng.Read(base)
	for _, c := range []byte{0, 1, 2, 0x1d, 0x53, 0xff} {
		for off := 0; off < 8; off++ {
			for _, n := range []int{32, 33, 47, 48, 63, 64, 65, 79, 80, 95, 96, 127, 128, 257, 320, 400} {
				src := base[off : off+n]
				got := make([]byte, n)
				want := make([]byte, n)
				for i := range got {
					got[i] = byte(i*23 + 9)
					want[i] = got[i] ^ Mul(c, src[i])
				}
				AddMulSlice(c, src, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("AddMulSlice (avx2 regime) c=%#x off=%d n=%d mismatch", c, off, n)
				}
				MulSlice(c, src, got)
				for i := range got {
					if got[i] != Mul(c, src[i]) {
						t.Fatalf("MulSlice (avx2 regime) c=%#x off=%d n=%d byte %d", c, off, n, i)
					}
				}
			}
		}
	}
}

// TestNibTablesAgreeWithMulTable pins the byte-form split tables to the
// product table.
func TestNibTablesAgreeWithMulTable(t *testing.T) {
	for c := 1; c < Order; c++ {
		for x := 0; x < 16; x++ {
			if nibTables[c].lo[x] != mulTable[c][x] || nibTables[c].hi[x] != mulTable[c][x<<4] {
				t.Fatalf("nibTables[%d] entry %d disagrees with mulTable", c, x)
			}
		}
	}
}
