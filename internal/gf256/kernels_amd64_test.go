//go:build amd64 && !purego

package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAsmKernelMatchesWide drives the PSHUFB block kernels directly against
// the portable wide kernels on large random slices, so the 4-block unroll and
// the partial-trailing-block handoff are exercised beyond the short
// deterministic offsets test.
func TestAsmKernelMatchesWide(t *testing.T) {
	if !hasSSSE3 {
		t.Skip("no SSSE3")
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{16, 64, 65, 127, 1024, 4096 + 48} {
		src := make([]byte, n)
		seed := make([]byte, n)
		rng.Read(src)
		rng.Read(seed)
		for _, c := range []byte{2, 0x1d, 0x53, 0x80, 0xff} {
			want := make([]byte, n)
			copy(want, seed)
			addMulWide(&wideTables[c], src, want)
			got := make([]byte, n)
			copy(got, seed)
			nt := &nibTables[c]
			addMulBlocks(&nt.lo, &nt.hi, &src[0], &got[0], n>>4)
			if tail := n &^ 15; tail < n {
				addMulWide(&wideTables[c], src[tail:], got[tail:])
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("addMulBlocks c=%#x n=%d diverges from wide kernel", c, n)
			}
			mulWide(&wideTables[c], src, want)
			mulBlocks(&nt.lo, &nt.hi, &src[0], &got[0], n>>4)
			if tail := n &^ 15; tail < n {
				mulWide(&wideTables[c], src[tail:], got[tail:])
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("mulBlocks c=%#x n=%d diverges from wide kernel", c, n)
			}
		}
	}
}

// TestNibTablesAgreeWithMulTable pins the byte-form split tables to the
// product table.
func TestNibTablesAgreeWithMulTable(t *testing.T) {
	for c := 1; c < Order; c++ {
		for x := 0; x < 16; x++ {
			if nibTables[c].lo[x] != mulTable[c][x] || nibTables[c].hi[x] != mulTable[c][x<<4] {
				t.Fatalf("nibTables[%d] entry %d disagrees with mulTable", c, x)
			}
		}
	}
}
