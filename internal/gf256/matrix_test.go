package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dimensions = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if m.At(r, c) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", r, c)
			}
		}
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected contents: %v", m)
	}
	if _, err := NewMatrixFromRows([][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	empty, err := NewMatrixFromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("empty construction: %v %v", empty, err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(5)
	if !id.IsIdentity() {
		t.Fatal("Identity(5) is not the identity")
	}
	m := NewMatrix(2, 3)
	if m.IsIdentity() {
		t.Fatal("non-square matrix reported as identity")
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 42)
	if m.At(1, 0) != 42 {
		t.Fatalf("At(1,0) = %d, want 42", m.At(1, 0))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range access")
		}
	}()
	m.At(2, 0)
}

func TestMulByIdentity(t *testing.T) {
	m := Vandermonde(4, 4)
	got, err := m.Mul(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("M*I != M")
	}
	got2, err := Identity(4).Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(m) {
		t.Fatal("I*M != M")
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewMatrixFromRows([][]byte{{1, 0}, {0, 1}, {1, 1}})
	v := []byte{7, 9}
	got, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{7, 9, 7 ^ 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
	if _, err := m.MulVec([]byte{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestVandermondeFirstRowsAndCols(t *testing.T) {
	v := Vandermonde(6, 4)
	// Row 0 is [1 0 0 0] because 0^0=1, 0^j=0 for j>0.
	if v.At(0, 0) != 1 || v.At(0, 1) != 0 || v.At(0, 3) != 0 {
		t.Fatalf("row 0 incorrect: %v", v.Row(0))
	}
	// Row 1 is all ones (1^j = 1).
	for c := 0; c < 4; c++ {
		if v.At(1, c) != 1 {
			t.Fatalf("row 1 incorrect: %v", v.Row(1))
		}
	}
	// Column 0 is all ones (r^0 = 1).
	for r := 0; r < 6; r++ {
		if v.At(r, 0) != 1 {
			t.Fatalf("col 0 incorrect at row %d", r)
		}
	}
}

func TestVandermondeAnyKRowsInvertible(t *testing.T) {
	// The FEC correctness hinges on this: any k rows of the (n,k) Vandermonde
	// matrix form an invertible k×k matrix.
	const n, k = 10, 4
	v := Vandermonde(n, k)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		rows := rng.Perm(n)[:k]
		sub := v.SelectRows(rows)
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("rows %v produced singular submatrix", rows)
		}
	}
}

func TestInvertIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, byte(rng.Intn(256)))
			}
		}
		inv, err := m.Invert()
		if err != nil {
			// Singular random matrices are legitimate; skip them.
			return true
		}
		prod, err := m.Mul(inv)
		if err != nil {
			return false
		}
		return prod.IsIdentity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInvertSingular(t *testing.T) {
	m, _ := NewMatrixFromRows([][]byte{{1, 1}, {1, 1}})
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	zero := NewMatrix(3, 3)
	if _, err := zero.Invert(); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Invert(); err == nil {
		t.Fatal("expected error inverting non-square matrix")
	}
}

func TestSubMatrixAndSelectRows(t *testing.T) {
	m := Vandermonde(5, 3)
	sub := m.SubMatrix(1, 4, 0, 2)
	if sub.Rows() != 3 || sub.Cols() != 2 {
		t.Fatalf("submatrix dims %dx%d, want 3x2", sub.Rows(), sub.Cols())
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 2; c++ {
			if sub.At(r, c) != m.At(r+1, c) {
				t.Fatalf("submatrix content mismatch at (%d,%d)", r, c)
			}
		}
	}
	sel := m.SelectRows([]int{4, 0})
	if sel.Rows() != 2 {
		t.Fatalf("SelectRows rows = %d, want 2", sel.Rows())
	}
	for c := 0; c < 3; c++ {
		if sel.At(0, c) != m.At(4, c) || sel.At(1, c) != m.At(0, c) {
			t.Fatal("SelectRows content mismatch")
		}
	}
}

func TestSwapRows(t *testing.T) {
	m, _ := NewMatrixFromRows([][]byte{{1, 2}, {3, 4}})
	m.SwapRows(0, 1)
	if m.At(0, 0) != 3 || m.At(1, 0) != 1 {
		t.Fatalf("SwapRows failed: %v", m)
	}
	m.SwapRows(1, 1) // no-op must not corrupt
	if m.At(1, 0) != 1 {
		t.Fatal("self-swap corrupted the matrix")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Vandermonde(3, 3)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
	if !m.Clone().Equal(m) {
		t.Fatal("Clone not equal to original")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewMatrix(1, 2).Equal(NewMatrix(2, 1)) {
		t.Fatal("matrices of different shapes reported equal")
	}
}

func TestStringNonEmpty(t *testing.T) {
	if Vandermonde(2, 2).String() == "" {
		t.Fatal("String() returned empty output")
	}
}

func BenchmarkInvert8x8(b *testing.B) {
	m := Vandermonde(16, 8).SelectRows([]int{0, 2, 4, 6, 8, 10, 12, 14})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}
