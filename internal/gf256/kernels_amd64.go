//go:build amd64 && !purego

package gf256

import "time"

// amd64 fast path: the split nibble tables live in vector registers and a
// byte shuffle resolves one table lookup per source byte — the SIMD form of
// the same lo[b&0x0f] ^ hi[b>>4] decomposition the portable kernel uses.
// Two tiers are dispatched at runtime: SSSE3 PSHUFB moves 16 bytes per
// shuffle pair, and on CPUs with AVX2 (and an OS that saves YMM state)
// VPSHUFB moves 32, with each nibble table broadcast to both 128-bit lanes.
// The AVX2 crossover length is calibrated at init (see calibrateAVX2MinLen):
// some virtualized hosts charge every YMM-touching call a fixed upper-lane
// power-up tax that dwarfs the kernel itself on short slices. Build with
// -tags purego to force the portable path.

// hasSSSE3 reports whether the CPU implements PSHUFB (CPUID.1:ECX bit 9).
// Detected directly because the runtime's internal/cpu flags are not
// importable from here.
var hasSSSE3 = func() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	return ecx&(1<<9) != 0
}()

// hasAVX2 reports whether the 32-byte VPSHUFB kernel may run: the CPU must
// implement AVX2 (CPUID.7.0:EBX bit 5) and AVX with OSXSAVE (CPUID.1:ECX bits
// 28 and 27), and the OS must have enabled XMM+YMM state saving (XCR0 bits 1
// and 2 via XGETBV) — without the latter, executing a VEX.256 instruction
// faults even on capable hardware.
var hasAVX2 = func() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const avxOSXSave = 1<<27 | 1<<28
	if ecx&avxOSXSave != avxOSXSave {
		return false
	}
	if xgetbv0()&0x6 != 0x6 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0
}()

// avx2MinLen is the slice length from which addMulFast/mulFast dispatch to
// the AVX2 kernel; below it the SSSE3 kernel runs. On bare metal the 32-byte
// block width is the natural crossover, but some hypervisors make the guest
// pay a fixed ~100ns+ assist on every call that touches a YMM register
// (upper-lane state/power management trapped per entry), which moves the real
// crossover past several KiB. calibrateAVX2MinLen measures the host once at
// init and picks between the two regimes; they differ by more than an order
// of magnitude, so scheduler noise cannot flap the decision.
var avx2MinLen = calibrateAVX2MinLen()

func calibrateAVX2MinLen() int {
	const never = int(^uint(0) >> 1)
	if !hasAVX2 {
		return never
	}
	var src, dst [32]byte
	nt := &nibTables[2]
	const rounds, calls = 4, 128
	best := func(f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			for i := 0; i < calls; i++ {
				f()
			}
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	wide := best(func() { addMulBlocksAVX2(&nt.lo, &nt.hi, &src[0], &dst[0], 1) })
	narrow := best(func() { addMulBlocks(&nt.lo, &nt.hi, &src[0], &dst[0], 2) })
	if wide <= narrow*3+rounds*time.Microsecond/calls {
		// Same work, comparable cost: YMM calls are untaxed here, so the
		// wider kernel wins as soon as a whole block fits.
		return 32
	}
	// Taxed host: only dispatch AVX2 where its per-byte advantage over SSSE3
	// still amortizes a ~135ns per-call assist with a wide margin.
	return 16 << 10
}

// cpuid executes the CPUID instruction. Implemented in kernels_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (the XSAVE feature mask).
// Implemented in kernels_amd64.s; only meaningful when CPUID reports OSXSAVE.
func xgetbv0() uint64

// addMulBlocks computes dst[i] ^= c*src[i] over n 16-byte blocks using the
// SSSE3 PSHUFB split-table kernel. src and dst must not overlap and must each
// hold at least 16*n bytes. Implemented in kernels_amd64.s.
//
//go:noescape
func addMulBlocks(lo, hi *[16]byte, src, dst *byte, n int)

// mulBlocks is addMulBlocks' overwriting twin: dst[i] = c*src[i].
//
//go:noescape
func mulBlocks(lo, hi *[16]byte, src, dst *byte, n int)

// addMulBlocksAVX2 computes dst[i] ^= c*src[i] over n 32-byte blocks using
// the AVX2 VPSHUFB kernel. Implemented in kernels_amd64.s.
//
//go:noescape
func addMulBlocksAVX2(lo, hi *[16]byte, src, dst *byte, n int)

// mulBlocksAVX2 is addMulBlocksAVX2's overwriting twin.
//
//go:noescape
func mulBlocksAVX2(lo, hi *[16]byte, src, dst *byte, n int)

// addMulFast runs dst[i] ^= c*src[i] through the widest available shuffle
// kernel — AVX2 32-byte blocks when the host allows, SSSE3 16-byte blocks
// otherwise — finishing the sub-block tail with one SSSE3 block and then the
// portable wide kernel. Returns false (having done nothing) when the slice is
// too short to fill a block or the CPU lacks SSSE3, letting the caller fall
// back. The multiplier arrives as its precomputed tables so plan-driven
// encode loops resolve them once, not per call.
func addMulFast(nt *nibTab, wt *wideTab, src, dst []byte) bool {
	if len(src) >= avx2MinLen {
		n := len(src) &^ 31
		addMulBlocksAVX2(&nt.lo, &nt.hi, &src[0], &dst[0], n>>5)
		if n+16 <= len(src) {
			addMulBlocks(&nt.lo, &nt.hi, &src[n], &dst[n], 1)
			n += 16
		}
		if n < len(src) {
			addMulWide(wt, src[n:], dst[n:])
		}
		return true
	}
	if !hasSSSE3 || len(src) < 16 {
		return false
	}
	n := len(src) &^ 15
	addMulBlocks(&nt.lo, &nt.hi, &src[0], &dst[0], n>>4)
	if n < len(src) {
		addMulWide(wt, src[n:], dst[n:])
	}
	return true
}

// mulFast is addMulFast's overwriting twin.
func mulFast(nt *nibTab, wt *wideTab, src, dst []byte) bool {
	if len(src) >= avx2MinLen {
		n := len(src) &^ 31
		mulBlocksAVX2(&nt.lo, &nt.hi, &src[0], &dst[0], n>>5)
		if n+16 <= len(src) {
			mulBlocks(&nt.lo, &nt.hi, &src[n], &dst[n], 1)
			n += 16
		}
		if n < len(src) {
			mulWide(wt, src[n:], dst[n:])
		}
		return true
	}
	if !hasSSSE3 || len(src) < 16 {
		return false
	}
	n := len(src) &^ 15
	mulBlocks(&nt.lo, &nt.hi, &src[0], &dst[0], n>>4)
	if n < len(src) {
		mulWide(wt, src[n:], dst[n:])
	}
	return true
}
