//go:build amd64 && !purego

package gf256

// amd64 fast path: the split nibble tables live in two XMM registers and
// PSHUFB resolves sixteen table lookups per instruction — the SIMD form of
// the same lo[b&0x0f] ^ hi[b>>4] decomposition the portable kernel uses.
// Build with -tags purego to force the portable path.

// nibTab is one multiplier's split table in byte form, contiguous so the
// assembly can load each half with a single 16-byte move.
type nibTab struct {
	lo [16]byte // lo[x] = c*x
	hi [16]byte // hi[x] = c*(x<<4)
}

var nibTables = buildNibTables()

func buildNibTables() *[Order]nibTab {
	ts := &[Order]nibTab{}
	for c := 1; c < Order; c++ {
		row := &mulTable[c]
		for x := 0; x < 16; x++ {
			ts[c].lo[x] = row[x]
			ts[c].hi[x] = row[x<<4]
		}
	}
	return ts
}

// hasSSSE3 reports whether the CPU implements PSHUFB (CPUID.1:ECX bit 9).
// Detected directly because the runtime's internal/cpu flags are not
// importable from here.
var hasSSSE3 = func() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	return ecx&(1<<9) != 0
}()

// cpuid executes the CPUID instruction. Implemented in kernels_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// addMulBlocks computes dst[i] ^= c*src[i] over n 16-byte blocks using the
// PSHUFB split-table kernel. src and dst must not overlap and must each hold
// at least 16*n bytes. Implemented in kernels_amd64.s.
//
//go:noescape
func addMulBlocks(lo, hi *[16]byte, src, dst *byte, n int)

// mulBlocks is addMulBlocks' overwriting twin: dst[i] = c*src[i].
//
//go:noescape
func mulBlocks(lo, hi *[16]byte, src, dst *byte, n int)

// addMulFast runs dst[i] ^= c*src[i] through the SSSE3 kernel, finishing the
// sub-block tail with the portable wide kernel. Returns false (having done
// nothing) when the slice is too short to fill a block or the CPU lacks
// SSSE3, letting the caller fall back.
func addMulFast(c byte, src, dst []byte) bool {
	if !hasSSSE3 || len(src) < 16 {
		return false
	}
	t := &nibTables[c]
	n := len(src) &^ 15
	addMulBlocks(&t.lo, &t.hi, &src[0], &dst[0], n>>4)
	if n < len(src) {
		addMulWide(&wideTables[c], src[n:], dst[n:])
	}
	return true
}

// mulFast is addMulFast's overwriting twin.
func mulFast(c byte, src, dst []byte) bool {
	if !hasSSSE3 || len(src) < 16 {
		return false
	}
	t := &nibTables[c]
	n := len(src) &^ 15
	mulBlocks(&t.lo, &t.hi, &src[0], &dst[0], n>>4)
	if n < len(src) {
		mulWide(&wideTables[c], src[n:], dst[n:])
	}
	return true
}
