package gf256

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ErrSingular is returned when attempting to invert a matrix that has no
// inverse over GF(2^8).
var ErrSingular = errors.New("gf256: matrix is singular")

// Matrix is a dense rows×cols matrix over GF(2^8). The zero value is an empty
// matrix; use NewMatrix or one of the constructors to create a usable one.
type Matrix struct {
	rows, cols int
	data       []byte // row-major
}

// NewMatrix returns a zero-filled rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gf256: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// NewMatrixFromRows builds a matrix from explicit row data. All rows must have
// equal length. The data is copied.
func NewMatrixFromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("gf256: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows×cols Vandermonde matrix with entry (i,j) equal
// to i^j (with 0^0 defined as 1). Any cols rows of this matrix are linearly
// independent, which is the property the erasure coder relies on.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Pow(byte(r), c))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) byte {
	m.check(r, c)
	return m.data[r*m.cols+c]
}

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v byte) {
	m.check(r, c)
	m.data[r*m.cols+c] = v
}

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("gf256: index (%d,%d) out of range for %dx%d matrix", r, c, m.rows, m.cols))
	}
}

// Row returns a mutable slice aliasing row r.
func (m *Matrix) Row(r int) []byte {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("gf256: row %d out of range", r))
	}
	return m.data[r*m.cols : (r+1)*m.cols]
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have the same shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m×o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("gf256: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := NewMatrix(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			MulAddSlice(a, o.Row(k), out.Row(r))
		}
	}
	return out, nil
}

// MulVec multiplies the matrix by a column vector expressed as a slice and
// returns the resulting vector of length Rows().
func (m *Matrix) MulVec(v []byte) ([]byte, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("gf256: vector length %d does not match %d columns", len(v), m.cols)
	}
	out := make([]byte, m.rows)
	for r := 0; r < m.rows; r++ {
		var acc byte
		row := m.Row(r)
		for c, coef := range row {
			acc ^= Mul(coef, v[c])
		}
		out[r] = acc
	}
	return out, nil
}

// SubMatrix returns a copy of the rectangular region [r0,r1)×[c0,c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("gf256: invalid submatrix bounds [%d:%d, %d:%d] of %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Row(r-r0), m.Row(r)[c0:c1])
	}
	return out
}

// SelectRows returns a new matrix consisting of the given rows, in order.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.cols)
	m.selectRowsInto(rows, out)
	return out
}

// SelectRowsInto copies the given rows, in order, into out, which must be
// len(rows)×Cols(). Pair with GetMatrix for an allocation-free row pick.
func (m *Matrix) SelectRowsInto(rows []int, out *Matrix) error {
	if out.rows != len(rows) || out.cols != m.cols {
		return fmt.Errorf("gf256: SelectRowsInto needs a %dx%d destination, got %dx%d",
			len(rows), m.cols, out.rows, out.cols)
	}
	m.selectRowsInto(rows, out)
	return nil
}

func (m *Matrix) selectRowsInto(rows []int, out *Matrix) {
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
}

// matrixPool recycles matrix scratch across decode-side reconstructions: the
// FEC repair path needs two k×k temporaries (the selected generator rows and
// their inverse) plus a Gauss–Jordan work copy per recovered group, and under
// loss churn those would otherwise be fresh garbage every time.
var matrixPool = sync.Pool{New: func() any { return &Matrix{} }}

// GetMatrix returns a zeroed rows×cols matrix drawn from the scratch pool.
// Return it with PutMatrix when done; the matrix must not be used after that.
func GetMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gf256: invalid matrix dimensions %dx%d", rows, cols))
	}
	m := matrixPool.Get().(*Matrix)
	m.rows, m.cols = rows, cols
	need := rows * cols
	if cap(m.data) < need {
		m.data = make([]byte, need)
	} else {
		m.data = m.data[:need]
		clear(m.data)
	}
	return m
}

// PutMatrix returns a GetMatrix matrix to the scratch pool.
func PutMatrix(m *Matrix) {
	if m != nil {
		matrixPool.Put(m)
	}
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Invert returns the inverse of a square matrix using Gauss–Jordan
// elimination over GF(2^8). ErrSingular is returned when no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	inv := NewMatrix(m.rows, m.cols)
	if err := m.InvertInto(inv); err != nil {
		return nil, err
	}
	return inv, nil
}

// InvertInto computes the inverse into inv, which must be square with m's
// dimensions; the Gauss–Jordan work copy comes from the matrix scratch pool,
// so paired with GetMatrix for inv the whole inversion is allocation-free.
// ErrSingular is returned when no inverse exists.
func (m *Matrix) InvertInto(inv *Matrix) error {
	if m.rows != m.cols {
		return fmt.Errorf("gf256: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	if inv.rows != m.rows || inv.cols != m.cols {
		return fmt.Errorf("gf256: InvertInto needs a %dx%d destination, got %dx%d",
			m.rows, m.cols, inv.rows, inv.cols)
	}
	n := m.rows
	work := GetMatrix(n, n)
	defer PutMatrix(work)
	copy(work.data, m.data)
	clear(inv.data)
	for i := 0; i < n; i++ {
		inv.data[i*n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return ErrSingular
		}
		work.SwapRows(col, pivot)
		inv.SwapRows(col, pivot)

		// Scale the pivot row so the pivot becomes 1.
		p := work.At(col, col)
		if p != 1 {
			invP := Inv(p)
			MulSlice(invP, work.Row(col), work.Row(col))
			MulSlice(invP, inv.Row(col), inv.Row(col))
		}

		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := work.At(r, col)
			if factor == 0 {
				continue
			}
			MulAddSlice(factor, work.Row(col), work.Row(r))
			MulAddSlice(factor, inv.Row(col), inv.Row(r))
		}
	}
	return nil
}

// IsIdentity reports whether the matrix is square and equal to the identity.
func (m *Matrix) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	return m.Equal(Identity(m.rows))
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.rows; r++ {
		fmt.Fprintf(&b, "%v\n", m.Row(r))
	}
	return b.String()
}
