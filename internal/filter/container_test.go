package filter

import (
	"errors"
	"testing"
)

func TestContainerBasics(t *testing.T) {
	c := NewContainer()
	if c.Count() != 0 {
		t.Fatalf("Count = %d, want 0", c.Count())
	}
	c.Add(NewNull("one"))
	c.Add(NewNull("two"))
	if c.Count() != 2 {
		t.Fatalf("Count = %d, want 2", c.Count())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Fatalf("Names = %v", names)
	}
	f, err := c.Get(1)
	if err != nil || f.Name() != "two" {
		t.Fatalf("Get(1) = %v, %v", f, err)
	}
	if _, err := c.Get(9); !errors.Is(err, ErrPosition) {
		t.Fatalf("Get(9) err = %v", err)
	}
}

func TestContainerTake(t *testing.T) {
	c := NewContainer()
	c.Add(NewNull("keep"))
	c.Add(NewNull("grab"))
	f, err := c.Take("grab")
	if err != nil || f.Name() != "grab" {
		t.Fatalf("Take = %v, %v", f, err)
	}
	if c.Count() != 1 {
		t.Fatalf("Count = %d after Take, want 1", c.Count())
	}
	if _, err := c.Take("grab"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Take err = %v", err)
	}
}

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	kinds := r.Kinds()
	want := map[string]bool{"null": true, "counting": true, "checksum": true, "ratelimit": true, "delay": true}
	for _, k := range kinds {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("missing built-in kinds: %v", want)
	}
	for _, k := range []string{"null", "counting", "checksum"} {
		f, err := r.Build(Spec{Kind: k})
		if err != nil {
			t.Fatalf("Build(%q): %v", k, err)
		}
		if f.Name() != k {
			t.Fatalf("default name = %q, want %q", f.Name(), k)
		}
	}
}

func TestRegistryBuildWithParams(t *testing.T) {
	r := NewRegistry()
	f, err := r.Build(Spec{Kind: "ratelimit", Name: "shape", Params: map[string]string{"bps": "2048"}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "shape" {
		t.Fatalf("Name = %q", f.Name())
	}
	if _, err := r.Build(Spec{Kind: "ratelimit", Params: map[string]string{"bps": "not-a-number"}}); err == nil {
		t.Fatal("expected error for bad integer parameter")
	}
	if _, err := r.Build(Spec{Kind: "delay", Params: map[string]string{"ms": "5"}}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryUnknownKind(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Build(Spec{Kind: "does-not-exist"}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

func TestRegistryRegister(t *testing.T) {
	r := NewRegistry()
	err := r.Register("custom", func(s Spec) (Filter, error) { return NewNull(s.Name), nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Build(Spec{Kind: "custom", Name: "mine"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("custom", func(s Spec) (Filter, error) { return nil, nil }); !errors.Is(err, ErrDuplicateKind) {
		t.Fatalf("duplicate registration err = %v", err)
	}
	if err := r.Register("", nil); err == nil {
		t.Fatal("expected error for empty registration")
	}
}

func TestIntParamDefault(t *testing.T) {
	n, err := intParam(Spec{}, "missing", 42)
	if err != nil || n != 42 {
		t.Fatalf("intParam default = %d, %v", n, err)
	}
}
