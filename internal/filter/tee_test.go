package filter

import (
	"sync"
	"testing"

	"rapidware/internal/packet"
)

func TestTeeDispatchSharesOneBuffer(t *testing.T) {
	tee := NewTee()

	// No taps: the buffer is consumed (released), not leaked.
	b := packet.GetBuf(32)
	if n := tee.Dispatch(b); n != 0 {
		t.Fatalf("Dispatch with no taps delivered to %d", n)
	}
	if tee.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tee.Len())
	}

	// Three taps must all see the same storage, each owning one reference.
	var mu sync.Mutex
	var got []*packet.Buf
	tap := func(b *packet.Buf) {
		mu.Lock()
		got = append(got, b)
		mu.Unlock()
	}
	tee.SetTaps([]BufSink{tap, tap, tap})
	if tee.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tee.Len())
	}
	b = packet.GetBuf(32)
	b.B[0] = 0x7F
	if n := tee.Dispatch(b); n != 3 {
		t.Fatalf("Dispatch delivered to %d taps, want 3", n)
	}
	if len(got) != 3 || got[0] != b || got[1] != b || got[2] != b {
		t.Fatalf("taps received %v, want the same buffer three times", got)
	}
	if b.Refs() != 3 {
		t.Fatalf("refs after dispatch = %d, want 3", b.Refs())
	}
	// Each tap releases its reference; only the last drop recycles.
	got[0].Release()
	got[1].Release()
	if b.Refs() != 1 || b.B[0] != 0x7F {
		t.Fatalf("buffer recycled before the last holder released (refs=%d)", b.Refs())
	}
	got[2].Release()

	// Detaching returns the tee to the consume-everything state.
	tee.SetTaps(nil)
	if n := tee.Dispatch(packet.GetBuf(8)); n != 0 {
		t.Fatalf("Dispatch after detach delivered to %d", n)
	}
}

// TestTeeConcurrentSetTapsDispatch exists to be run with -race: Dispatch must
// read a consistent tap set while SetTaps swaps it.
func TestTeeConcurrentSetTapsDispatch(t *testing.T) {
	tee := NewTee()
	drop := func(b *packet.Buf) { b.Release() }
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			switch i % 3 {
			case 0:
				tee.SetTaps(nil)
			case 1:
				tee.SetTaps([]BufSink{drop})
			case 2:
				tee.SetTaps([]BufSink{drop, drop})
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			tee.Dispatch(packet.GetBuf(16))
		}
	}()
	wg.Wait()
}
