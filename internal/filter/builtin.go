package filter

import (
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rapidware/internal/packet"
)

// copyBufferSize is the chunk size used by the streaming built-in filters.
const copyBufferSize = 32 * 1024

// NewNull returns the identity filter: bytes pass through unmodified. Two
// endpoints plus a null filter form the paper's "null proxy".
func NewNull(name string) *Base {
	if name == "" {
		name = "null"
	}
	return New(name, func(r io.Reader, w io.Writer) error {
		_, err := io.Copy(w, r)
		return err
	})
}

// CountingFilter passes data through unchanged while counting bytes and
// chunks, for monitoring and for the raplet observers.
type CountingFilter struct {
	*Base
	bytes  atomic.Uint64
	chunks atomic.Uint64
}

// NewCounting returns a pass-through filter that counts traffic.
func NewCounting(name string) *CountingFilter {
	if name == "" {
		name = "counting"
	}
	cf := &CountingFilter{}
	cf.Base = New(name, func(r io.Reader, w io.Writer) error {
		buf := make([]byte, copyBufferSize)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				cf.bytes.Add(uint64(n))
				cf.chunks.Add(1)
				if _, werr := w.Write(buf[:n]); werr != nil {
					return werr
				}
			}
			if err != nil {
				return err
			}
		}
	})
	return cf
}

// Bytes returns the total number of bytes forwarded.
func (cf *CountingFilter) Bytes() uint64 { return cf.bytes.Load() }

// Chunks returns the number of read chunks forwarded.
func (cf *CountingFilter) Chunks() uint64 { return cf.chunks.Load() }

// ChecksumFilter passes data through while maintaining a CRC-32 of everything
// forwarded, used by integrity tests and the live-insertion experiment.
type ChecksumFilter struct {
	*Base
	mu  sync.Mutex
	crc uint32
	n   uint64
}

// NewChecksum returns a pass-through filter that checksums forwarded bytes.
func NewChecksum(name string) *ChecksumFilter {
	if name == "" {
		name = "checksum"
	}
	cf := &ChecksumFilter{}
	cf.Base = New(name, func(r io.Reader, w io.Writer) error {
		buf := make([]byte, copyBufferSize)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				cf.mu.Lock()
				cf.crc = crc32.Update(cf.crc, crc32.IEEETable, buf[:n])
				cf.n += uint64(n)
				cf.mu.Unlock()
				if _, werr := w.Write(buf[:n]); werr != nil {
					return werr
				}
			}
			if err != nil {
				return err
			}
		}
	})
	return cf
}

// Sum returns the CRC-32 and byte count of all data forwarded so far.
func (cf *ChecksumFilter) Sum() (crc uint32, n uint64) {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.crc, cf.n
}

// NewRateLimit returns a pass-through filter that shapes throughput to at
// most bytesPerSecond using a simple token bucket. It models transcoder-style
// bandwidth reduction for slow wireless links when an actual content
// transcoder is not needed.
func NewRateLimit(name string, bytesPerSecond int) *Base {
	if name == "" {
		name = fmt.Sprintf("ratelimit-%dBps", bytesPerSecond)
	}
	if bytesPerSecond <= 0 {
		bytesPerSecond = 1
	}
	return New(name, func(r io.Reader, w io.Writer) error {
		// Refill granularity of 10 ms keeps shaping smooth for audio-sized
		// packets without busy waiting.
		const tick = 10 * time.Millisecond
		budget := 0
		perTick := bytesPerSecond / int(time.Second/tick)
		if perTick < 1 {
			perTick = 1
		}
		buf := make([]byte, 4096)
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			if budget <= 0 {
				<-ticker.C
				budget += perTick
			}
			limit := len(buf)
			if budget < limit {
				limit = budget
			}
			n, err := r.Read(buf[:limit])
			if n > 0 {
				budget -= n
				if _, werr := w.Write(buf[:n]); werr != nil {
					return werr
				}
			}
			if err != nil {
				return err
			}
		}
	})
}

// NewDelay returns a pass-through filter that adds a fixed latency to every
// chunk, used in experiments to model processing or propagation delay.
func NewDelay(name string, d time.Duration) *Base {
	if name == "" {
		name = fmt.Sprintf("delay-%s", d)
	}
	return New(name, func(r io.Reader, w io.Writer) error {
		buf := make([]byte, copyBufferSize)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				time.Sleep(d)
				if _, werr := w.Write(buf[:n]); werr != nil {
					return werr
				}
			}
			if err != nil {
				return err
			}
		}
	})
}

// NewTransform returns a filter applying fn to every chunk read. fn must be
// a pure byte transformation that does not depend on chunk boundaries (e.g.
// byte-wise mapping); for frame-aware transformations use NewPacketFunc.
func NewTransform(name string, fn func([]byte) []byte) *Base {
	if name == "" {
		name = "transform"
	}
	return New(name, func(r io.Reader, w io.Writer) error {
		buf := make([]byte, copyBufferSize)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				out := fn(buf[:n])
				if _, werr := w.Write(out); werr != nil {
					return werr
				}
			}
			if err != nil {
				return err
			}
		}
	})
}

// PacketFunc transforms one decoded packet into zero or more packets to
// forward. Returning an empty slice drops the packet.
type PacketFunc func(*packet.Packet) ([]*packet.Packet, error)

// NewPacketFunc returns a filter that parses the framed packet stream,
// applies fn to each packet, and re-frames the results. Each output frame is
// written with a single Write call, so downstream pause/reconnect operations
// always happen on frame boundaries. flush, if non-nil, is invoked at EOF and
// may emit trailing packets (e.g. a partially filled FEC group).
func NewPacketFunc(name string, fn PacketFunc, flush func() []*packet.Packet) *Base {
	if name == "" {
		name = "packetfunc"
	}
	return New(name, func(r io.Reader, w io.Writer) error {
		pr := packet.NewReader(r)
		pw := packet.NewWriter(w)
		for {
			p, err := pr.ReadPacket()
			if err != nil {
				if err == io.EOF {
					if flush != nil {
						for _, fp := range flush() {
							if werr := pw.WritePacket(fp); werr != nil {
								return werr
							}
						}
					}
					return nil
				}
				return err
			}
			outs, err := fn(p)
			if err != nil {
				return err
			}
			for _, op := range outs {
				if werr := pw.WritePacket(op); werr != nil {
					return werr
				}
			}
		}
	})
}
