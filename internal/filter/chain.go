package filter

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rapidware/internal/stream"
)

// Chain errors.
var (
	// ErrPosition is returned when an index is outside the valid range for
	// the requested operation.
	ErrPosition = errors.New("filter: position out of range")
	// ErrNotFound is returned when a named filter is not in the chain.
	ErrNotFound = errors.New("filter: not found")
	// ErrChainTooShort is returned for operations that need at least two
	// stages (an upstream and a downstream of the affected position).
	ErrChainTooShort = errors.New("filter: chain needs at least two stages")
	// ErrEndpointPosition is returned when an operation would displace the
	// chain's first or last stage, which are reserved for endpoints.
	ErrEndpointPosition = errors.New("filter: cannot modify an endpoint position")
)

// Chain is the paper's ControlThread: it owns the ordered vector of filters
// on one data stream and implements live insertion, removal and reordering
// using the detachable-stream pause/reconnect protocol. Positions 0 and
// len-1 conventionally hold the input and output endpoints.
//
// All methods are safe for concurrent use; structural operations are
// serialized so at most one splice is in progress at a time.
type Chain struct {
	mu      sync.Mutex
	name    string
	stages  []Filter
	started bool
}

// NewChain returns an empty chain with the given name (used in control
// protocol listings).
func NewChain(name string) *Chain {
	return &Chain{name: name}
}

// Name returns the chain's name.
func (c *Chain) Name() string { return c.name }

// Len returns the number of stages currently in the chain.
func (c *Chain) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stages)
}

// Names returns the ordered list of stage names, the enumeration the paper's
// ControlManager queries to render proxy state.
func (c *Chain) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, len(c.stages))
	for i, f := range c.stages {
		names[i] = f.Name()
	}
	return names
}

// Filters returns a snapshot of the chain's stages in order.
func (c *Chain) Filters() []Filter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Filter(nil), c.stages...)
}

// At returns the stage at position pos.
func (c *Chain) At(pos int) (Filter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pos < 0 || pos >= len(c.stages) {
		return nil, fmt.Errorf("%w: %d of %d", ErrPosition, pos, len(c.stages))
	}
	return c.stages[pos], nil
}

// Find returns the position of the first stage with the given name.
func (c *Chain) Find(name string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, f := range c.stages {
		if f.Name() == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %q", ErrNotFound, name)
}

// Append adds a stage to the end of the chain, connecting its input to the
// output of the previous stage. Append is intended for initial assembly
// (before Start); to add a filter to a running chain use Insert.
func (c *Chain) Append(f Filter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.stages) > 0 {
		prev := c.stages[len(c.stages)-1]
		if err := stream.Connect(prev.Out(), f.In()); err != nil {
			return fmt.Errorf("filter: connect %q to %q: %w", prev.Name(), f.Name(), err)
		}
	}
	c.stages = append(c.stages, f)
	if c.started {
		if err := f.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Start launches every stage of the chain. Stages appended later are started
// automatically.
func (c *Chain) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return ErrAlreadyStarted
	}
	for _, f := range c.stages {
		if err := f.Start(); err != nil {
			return fmt.Errorf("filter: start %q: %w", f.Name(), err)
		}
	}
	c.started = true
	return nil
}

// Stop stops every stage of the chain, upstream first.
func (c *Chain) Stop() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return ErrNotStarted
	}
	var firstErr error
	for _, f := range c.stages {
		if err := f.Stop(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("filter: stop %q: %w", f.Name(), err)
		}
	}
	c.started = false
	return firstErr
}

// Insert splices filter f into the running chain at position pos (so that it
// ends up between the current stages pos-1 and pos), following the paper's
// ControlThread.add() protocol:
//
//  1. pause the left neighbour's output stream (drains in-flight data),
//  2. reconnect left.Out -> f.In and f.Out -> right.In,
//  3. start f,
//  4. record f in the filter vector.
//
// pos must satisfy 1 <= pos <= Len()-1 so the endpoints remain at the ends.
func (c *Chain) Insert(f Filter, pos int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.stages) < 2 {
		return ErrChainTooShort
	}
	if pos < 1 || pos > len(c.stages)-1 {
		return fmt.Errorf("%w: insert at %d of %d", ErrPosition, pos, len(c.stages))
	}
	left := c.stages[pos-1]
	right := c.stages[pos]

	// Step 1: pause the left stage's output. This drains the left→right
	// buffer and detaches both left.Out and right.In.
	if err := left.Out().Pause(); err != nil {
		return fmt.Errorf("filter: pause %q: %w", left.Name(), err)
	}
	// Step 2: rewire through the new filter.
	if err := stream.Reconnect(left.Out(), f.In()); err != nil {
		return fmt.Errorf("filter: reconnect %q->%q: %w", left.Name(), f.Name(), err)
	}
	if err := stream.Reconnect(f.Out(), right.In()); err != nil {
		return fmt.Errorf("filter: reconnect %q->%q: %w", f.Name(), right.Name(), err)
	}
	// Step 3: start the new filter so data begins to flow again.
	if c.started {
		if err := f.Start(); err != nil {
			return fmt.Errorf("filter: start %q: %w", f.Name(), err)
		}
	}
	// Step 4: record it in the vector.
	c.stages = append(c.stages, nil)
	copy(c.stages[pos+1:], c.stages[pos:])
	c.stages[pos] = f
	return nil
}

// Remove splices the stage at position pos out of the running chain and
// stops it. The stage's upstream buffer is drained into it and its own output
// buffer is drained downstream before it is disconnected, so no bytes are
// lost. Endpoints (positions 0 and Len()-1) cannot be removed.
func (c *Chain) Remove(pos int) (Filter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.stages) < 3 {
		return nil, ErrChainTooShort
	}
	if pos <= 0 || pos >= len(c.stages)-1 {
		return nil, fmt.Errorf("%w: remove at %d of %d", ErrEndpointPosition, pos, len(c.stages))
	}
	left := c.stages[pos-1]
	victim := c.stages[pos]
	right := c.stages[pos+1]

	// Stop new data from entering the victim and drain what is in flight
	// between left and victim.
	if err := left.Out().Pause(); err != nil {
		return nil, fmt.Errorf("filter: pause %q: %w", left.Name(), err)
	}
	// Let the victim finish pushing what it has already emitted, then detach
	// it from the right neighbour.
	if err := victim.Out().Pause(); err != nil && !errors.Is(err, stream.ErrNotConnected) {
		return nil, fmt.Errorf("filter: pause %q: %w", victim.Name(), err)
	}
	// Reconnect around the victim and resume the flow.
	if err := stream.Reconnect(left.Out(), right.In()); err != nil {
		return nil, fmt.Errorf("filter: reconnect %q->%q: %w", left.Name(), right.Name(), err)
	}
	// Stop the victim now that it is isolated.
	if err := victim.Stop(); err != nil && !errors.Is(err, ErrNotStarted) {
		return nil, fmt.Errorf("filter: stop %q: %w", victim.Name(), err)
	}
	c.stages = append(c.stages[:pos], c.stages[pos+1:]...)
	return victim, nil
}

// RemoveByName removes the first stage with the given name.
func (c *Chain) RemoveByName(name string) (Filter, error) {
	pos, err := c.Find(name)
	if err != nil {
		return nil, err
	}
	return c.Remove(pos)
}

// Move relocates the stage at position from to position to (both interior
// positions), preserving the live-splice guarantees. It is implemented as a
// Remove followed by an Insert of the same filter instance.
func (c *Chain) Move(from, to int) error {
	if from == to {
		return nil
	}
	f, err := c.Remove(from)
	if err != nil {
		return err
	}
	// The removed filter was stopped; restart happens inside Insert only when
	// the chain is started, but a stopped Base cannot be restarted. Wrap it in
	// a fresh runner if needed by the caller; for built-in pass-through
	// filters reinsertion of the same instance is supported by resetting via
	// Insert because Base.Start on a stopped filter returns ErrAlreadyStarted.
	// To keep Move dependable for any Filter implementation we require the
	// filter to be restartable; Base is not, so Move re-wraps it.
	if b, ok := f.(*Base); ok {
		f = b.respawn()
	}
	return c.Insert(f, to)
}

// respawn returns a fresh Base sharing the original's name and ProcessFunc
// but with new stream endpoints and lifecycle state, allowing a removed
// filter to be reinserted.
func (b *Base) respawn() *Base {
	return New(b.name, b.fn)
}

// SetInterior atomically replaces the chain's interior (everything between
// the endpoint stages) with the given stages, under one acquisition of the
// chain lock — the transactional splice beneath the compose plane's live
// recomposition. Stages already in the chain are rewired in place (their
// processing goroutines and state survive); stages that drop out are stopped
// once isolated; stages new to the chain are started when the chain is
// running.
//
// The switch never exposes a half-built chain to traffic: the source
// endpoint's output is paused first, so no new data enters the interior
// until the full target wiring is connected, and the old interior is drained
// left to right — pausing each stage's output only after everything upstream
// of it has been pushed at least one stage downstream — so no relayed frame
// is lost. (As with Remove, data a *removed* stage has consumed but not yet
// emitted — e.g. an FEC encoder's partially filled group — leaves with it.)
//
// A stage may appear in the target at most once, and the chain must already
// have its two endpoints.
func (c *Chain) SetInterior(stages []Filter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.stages) < 2 {
		return ErrChainTooShort
	}
	source := c.stages[0]
	sink := c.stages[len(c.stages)-1]
	old := c.stages[1 : len(c.stages)-1]
	keep := make(map[Filter]bool, len(stages))
	inOld := make(map[Filter]bool, len(old))
	for _, f := range old {
		inOld[f] = true
	}
	for _, f := range stages {
		if f == nil {
			return fmt.Errorf("filter: nil interior stage")
		}
		if f == source || f == sink || keep[f] {
			return fmt.Errorf("filter: stage %q appears twice in the target interior", f.Name())
		}
		keep[f] = true
		if inOld[f] {
			continue
		}
		// Preflight incoming stages before any wiring is disturbed: a stage
		// that is already running elsewhere, still wired to something, or
		// was stopped once (a Base cannot be restarted) would fail the
		// splice midway, and failing here keeps the error path trivial —
		// nothing has been touched yet.
		if f.Running() {
			return fmt.Errorf("filter: incoming stage %q is already running", f.Name())
		}
		if f.In().Connected() || f.Out().Connected() {
			return fmt.Errorf("filter: incoming stage %q is still wired to another chain", f.Name())
		}
		if f.In().Closed() || f.Out().Closed() {
			return fmt.Errorf("filter: incoming stage %q was stopped and cannot be restarted", f.Name())
		}
	}

	// Phase 1: freeze inflow, then drain the old interior left to right. Each
	// Pause detaches one link after its reader has consumed every buffered
	// byte, and before a stage's own output freezes we additionally wait for
	// the stage to go quiescent — its goroutine done transforming what it
	// consumed and parked on its (already frozen and drained) input — so by
	// the time a stage detaches, everything it was ever handed has moved on
	// downstream. (Data a stage *deliberately* retains — an FEC encoder's
	// partially filled group, a thinning filter's dropped packets — is filter
	// state, and leaves with the stage if it is removed.)
	if err := source.Out().Pause(); err != nil && !errors.Is(err, stream.ErrNotConnected) {
		return fmt.Errorf("filter: pause %q: %w", source.Name(), err)
	}
	for _, f := range old {
		waitQuiescent(f)
		if err := f.Out().Pause(); err != nil && !errors.Is(err, stream.ErrNotConnected) {
			return fmt.Errorf("filter: pause %q: %w", f.Name(), err)
		}
	}

	// Phase 2: rewire source -> stages... -> sink. Every link involved was
	// detached above (new stages come with fresh, unconnected endpoints).
	// Preflight makes failure here mean the chain's own endpoints are
	// closing (the session is being torn down); rollbackInterior still
	// restores the original wiring best-effort so an aborted splice never
	// leaves a half-wired chain behind c.stages' back.
	prev := source
	for _, f := range stages {
		if err := stream.Reconnect(prev.Out(), f.In()); err != nil {
			c.rollbackInterior(source, sink, old, stages, nil)
			return fmt.Errorf("filter: reconnect %q->%q: %w", prev.Name(), f.Name(), err)
		}
		prev = f
	}
	if err := stream.Reconnect(prev.Out(), sink.In()); err != nil {
		c.rollbackInterior(source, sink, old, stages, nil)
		return fmt.Errorf("filter: reconnect %q->%q: %w", prev.Name(), sink.Name(), err)
	}

	// Phase 3: bring the target interior to life, then stop the stages that
	// fell out of the chain (now fully isolated).
	if c.started {
		started := make([]Filter, 0, len(stages))
		for _, f := range stages {
			if f.Running() {
				continue
			}
			if err := f.Start(); err != nil {
				c.rollbackInterior(source, sink, old, stages, started)
				return fmt.Errorf("filter: start %q: %w", f.Name(), err)
			}
			started = append(started, f)
		}
	}
	var firstErr error
	for _, f := range old {
		if keep[f] {
			continue
		}
		if err := f.Stop(); err != nil && !errors.Is(err, ErrNotStarted) && firstErr == nil {
			firstErr = fmt.Errorf("filter: stop %q: %w", f.Name(), err)
		}
	}

	next := make([]Filter, 0, len(stages)+2)
	next = append(next, source)
	next = append(next, stages...)
	next = append(next, sink)
	c.stages = next
	return firstErr
}

// rollbackInterior is SetInterior's undo path: it detaches whatever the
// aborted splice managed to wire, restores the original
// source -> old... -> sink wiring, and stops the new stages the splice had
// already started. Best-effort by design — it only runs when the chain's
// endpoints are closing underneath the splice, where the subsequent
// teardown reconciles whatever cannot be restored — so errors are ignored.
// Caller holds c.mu; c.stages still names the original interior.
func (c *Chain) rollbackInterior(source, sink Filter, old, attempted, started []Filter) {
	_ = source.Out().Pause()
	for _, f := range attempted {
		_ = f.Out().Pause()
	}
	for _, f := range started {
		_ = f.Stop()
	}
	prev := source
	for _, f := range old {
		_ = stream.Reconnect(prev.Out(), f.In())
		prev = f
	}
	_ = stream.Reconnect(prev.Out(), sink.In())
}

// waitQuiescent blocks (bounded) until a stage's processing goroutine holds
// no consumed-but-unemitted data. Only meaningful once the stage's inflow is
// frozen: with no new input, quiescence is permanent. Stages that cannot
// report quiescence, and stages that stay busy past the bound (a rate
// limiter starved of tokens mid-chunk), fall back to the legacy splice
// semantics — their in-flight chunk leaves with them if they are removed.
func waitQuiescent(f Filter) {
	q, ok := f.(Quiescer)
	if !ok {
		return
	}
	const bound = 2 * time.Second
	deadline := time.Now().Add(bound)
	for !q.Quiescent() {
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Validate checks the chain's internal wiring: every adjacent pair must be
// connected writer-to-reader. It is used by tests and by the control
// protocol's status reporting.
func (c *Chain) Validate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i+1 < len(c.stages); i++ {
		w := c.stages[i].Out()
		r := c.stages[i+1].In()
		if w.Sink() != r || r.Source() != w {
			return fmt.Errorf("filter: stages %d (%q) and %d (%q) are not wired together",
				i, c.stages[i].Name(), i+1, c.stages[i+1].Name())
		}
	}
	return nil
}
