// Package filter defines the proxy filter abstraction from the paper: active
// components that read a byte stream from a DetachableInputStream, transform
// it, and write the result to a DetachableOutputStream. Filters are composed
// into a Chain (the paper's ControlThread), which can insert, delete and
// reorder them on a live stream using the detachable-stream pause/reconnect
// protocol.
package filter

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"rapidware/internal/stream"
)

// Errors returned by filters and chains.
var (
	// ErrAlreadyStarted is returned by Start when the filter is running.
	ErrAlreadyStarted = errors.New("filter: already started")
	// ErrNotStarted is returned by Stop when the filter never started.
	ErrNotStarted = errors.New("filter: not started")
)

// Filter is a processing stage in a proxy pipeline. Implementations own an
// input reader (the paper's DIS) and an output writer (DOS); Start launches
// the goroutine that pumps data between them, and Stop terminates it.
//
// A Filter must tolerate its streams being paused and reconnected underneath
// it: the detachable streams make this transparent to straightforward
// read/process/write loops.
type Filter interface {
	// Name returns a short, human-readable identifier used by the control
	// protocol and in chain listings.
	Name() string
	// In returns the filter's input stream endpoint.
	In() *stream.DetachableReader
	// Out returns the filter's output stream endpoint.
	Out() *stream.DetachableWriter
	// Start launches the filter's processing goroutine.
	Start() error
	// Stop terminates processing, closes the filter's streams and waits for
	// the processing goroutine to exit.
	Stop() error
	// Running reports whether the filter has been started and not stopped.
	Running() bool
}

// ProcessFunc is the body of a filter: it reads from r until EOF (or error)
// and writes transformed data to w. Returning nil or io.EOF indicates a clean
// shutdown.
type ProcessFunc func(r io.Reader, w io.Writer) error

// Base is a ready-made Filter implementation around a ProcessFunc. It owns a
// DetachableReader/DetachableWriter pair and a single processing goroutine.
// Concrete filters either embed *Base configured with their ProcessFunc or
// use New directly.
type Base struct {
	name string
	fn   ProcessFunc

	in  *stream.DetachableReader
	out *stream.DetachableWriter

	// bytesIn and bytesOut count the bytes the processing goroutine has read
	// and written, maintained by thin wrappers around the streams handed to
	// fn. They feed the control plane's per-stage view; two atomic adds per
	// chunk keep the data path allocation-free.
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	// busy is true from the moment a read hands the processing goroutine
	// data until it comes back for more — i.e. while the goroutine may hold
	// consumed-but-unemitted bytes. Chain.SetInterior waits for stages to go
	// quiescent after freezing their inflow, so a splice never discards a
	// chunk that was mid-transform.
	busy atomic.Bool

	mu      sync.Mutex
	started bool
	stopped bool
	done    chan struct{}
	runErr  error
	onExit  func()
}

// New returns a filter named name whose processing loop is fn.
func New(name string, fn ProcessFunc) *Base {
	in := stream.NewDetachableReader()
	// Filter loops always come back to Read, so their inputs can carry
	// hand-off accounting: a splice that pauses this filter's inflow does
	// not complete the drain until the loop has pushed everything it was
	// handed and asked for more — the guarantee behind loss-free live
	// recomposition.
	in.TrackHandoff()
	return &Base{
		name: name,
		fn:   fn,
		in:   in,
		out:  stream.NewDetachableWriter(),
	}
}

// Name implements Filter.
func (b *Base) Name() string { return b.name }

// In implements Filter.
func (b *Base) In() *stream.DetachableReader { return b.in }

// Out implements Filter.
func (b *Base) Out() *stream.DetachableWriter { return b.out }

// Running implements Filter.
func (b *Base) Running() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.started && !b.stopped
}

// OnExit registers fn to run on the processing goroutine after it has
// terminated and after Wait observers have been unblocked. It must be called
// before Start; at most one hook is supported (later calls replace earlier
// ones). The engine uses this to evict sessions whose chains die without
// spending a watchdog goroutine per session.
func (b *Base) OnExit(fn func()) {
	b.mu.Lock()
	b.onExit = fn
	b.mu.Unlock()
}

// Start implements Filter. The processing goroutine runs fn(in, out); when fn
// returns, the output stream is closed so downstream stages observe EOF (or
// the error fn returned), then any OnExit hook fires.
func (b *Base) Start() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started {
		return ErrAlreadyStarted
	}
	b.started = true
	b.done = make(chan struct{})
	onExit := b.onExit
	go func() {
		if onExit != nil {
			// Deferred first so it runs last: after done is closed and every
			// Wait caller can already observe the exit.
			defer onExit()
		}
		defer close(b.done)
		err := b.fn(countingReader{b.in, &b.bytesIn, &b.busy}, countingWriter{b.out, &b.bytesOut})
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, stream.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
			b.mu.Lock()
			b.runErr = err
			b.mu.Unlock()
			b.out.CloseWithError(fmt.Errorf("filter %q: %w", b.name, err))
			return
		}
		b.out.Close()
	}()
	return nil
}

// Stop implements Filter. It closes both stream endpoints, which unblocks the
// processing goroutine, and waits for it to exit. Stop is idempotent.
func (b *Base) Stop() error {
	b.mu.Lock()
	if !b.started {
		b.mu.Unlock()
		return ErrNotStarted
	}
	if b.stopped {
		done := b.done
		b.mu.Unlock()
		<-done
		return nil
	}
	b.stopped = true
	done := b.done
	b.mu.Unlock()

	b.in.Close()
	b.out.Close()
	<-done
	return nil
}

// Err returns the error the processing function terminated with, if any.
func (b *Base) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runErr
}

// IOBytes returns the number of bytes the filter's processing goroutine has
// read from its input and written to its output, the per-stage counters the
// control plane's session view reports.
func (b *Base) IOBytes() (in, out uint64) {
	return b.bytesIn.Load(), b.bytesOut.Load()
}

// Quiescer is implemented by filters that can report whether their
// processing goroutine is currently holding consumed-but-unemitted data.
// Chain.SetInterior uses it to drain a stage completely — upstream paused,
// stage idle — before detaching it, so live recomposition never loses a
// chunk that was mid-transform.
type Quiescer interface {
	Quiescent() bool
}

// Quiescent reports that the processing goroutine holds no consumed data: it
// is parked in (or on its way back to) a read. Only meaningful while the
// filter's inflow is frozen — with data still arriving the state flaps.
func (b *Base) Quiescent() bool { return !b.busy.Load() }

// countingReader and countingWriter wrap the stream endpoints handed to a
// Base's ProcessFunc so every stage reports per-stage traffic — and the
// quiescence state splices rely on — without any cooperation from the
// filter body.
type countingReader struct {
	r    io.Reader
	n    *atomic.Uint64
	busy *atomic.Bool
}

func (c countingReader) Read(p []byte) (int, error) {
	// Everything consumed so far has been processed and emitted (or
	// deliberately retained as filter state): the goroutine is back asking
	// for more.
	c.busy.Store(false)
	n, err := c.r.Read(p)
	if n > 0 {
		c.n.Add(uint64(n))
		c.busy.Store(true)
	}
	return n, err
}

type countingWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.n.Add(uint64(n))
	}
	return n, err
}

// Wait blocks until the processing goroutine has exited (after Start).
func (b *Base) Wait() {
	b.mu.Lock()
	done := b.done
	b.mu.Unlock()
	if done != nil {
		<-done
	}
}

var _ Filter = (*Base)(nil)
