package filter

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"rapidware/internal/stream"
)

// sourceFilter produces data into the chain: it ignores its input and writes
// the configured payload to its output in chunks, pacing itself with a short
// delay between chunks so that the stream is still live while tests splice
// filters in and out, then closes it.
func sourceFilter(name string, payload []byte, chunk int) *Base {
	return New(name, func(_ io.Reader, w io.Writer) error {
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := w.Write(payload[off:end]); err != nil {
				return err
			}
			time.Sleep(50 * time.Microsecond)
		}
		return nil
	})
}

// sinkFilter consumes the chain's output into an internal buffer.
type sinkFilter struct {
	*Base
	mu  sync.Mutex
	buf bytes.Buffer
}

func newSink(name string) *sinkFilter {
	s := &sinkFilter{}
	s.Base = New(name, func(r io.Reader, _ io.Writer) error {
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			if n > 0 {
				s.mu.Lock()
				s.buf.Write(tmp[:n])
				s.mu.Unlock()
			}
			if err != nil {
				return err
			}
		}
	})
	return s
}

func (s *sinkFilter) bytesCopy() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func (s *sinkFilter) waitFor(t *testing.T, want int) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		b := s.bytesCopy()
		if len(b) >= want {
			return b
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("sink received %d bytes, want %d", len(s.bytesCopy()), want)
	return nil
}

func TestChainAppendStartStop(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789"), 500)
	c := NewChain("test")
	src := sourceFilter("src", payload, 128)
	mid := NewNull("mid")
	sink := newSink("sink")
	for _, f := range []Filter{src, mid, sink} {
		if err := c.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Names(); len(got) != 3 || got[0] != "src" || got[2] != "sink" {
		t.Fatalf("Names = %v", got)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("second Start err = %v", err)
	}
	got := sink.waitFor(t, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through chain")
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("second Stop err = %v", err)
	}
}

func TestChainAccessors(t *testing.T) {
	c := NewChain("accessors")
	if c.Name() != "accessors" {
		t.Fatalf("Name = %q", c.Name())
	}
	a, b := NewNull("a"), NewNull("b")
	c.Append(a)
	c.Append(b)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	got, err := c.At(1)
	if err != nil || got != b {
		t.Fatalf("At(1) = %v, %v", got, err)
	}
	if _, err := c.At(5); !errors.Is(err, ErrPosition) {
		t.Fatalf("At(5) err = %v", err)
	}
	pos, err := c.Find("b")
	if err != nil || pos != 1 {
		t.Fatalf("Find(b) = %d, %v", pos, err)
	}
	if _, err := c.Find("zzz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Find missing err = %v", err)
	}
	fs := c.Filters()
	if len(fs) != 2 || fs[0] != a {
		t.Fatalf("Filters() = %v", fs)
	}
}

func TestChainInsertPositionValidation(t *testing.T) {
	c := NewChain("bounds")
	if err := c.Insert(NewNull("x"), 1); !errors.Is(err, ErrChainTooShort) {
		t.Fatalf("err = %v, want ErrChainTooShort", err)
	}
	c.Append(NewNull("a"))
	c.Append(NewNull("b"))
	if err := c.Insert(NewNull("x"), 0); !errors.Is(err, ErrPosition) {
		t.Fatalf("insert at 0 err = %v, want ErrPosition", err)
	}
	if err := c.Insert(NewNull("x"), 2); !errors.Is(err, ErrPosition) {
		t.Fatalf("insert past end err = %v, want ErrPosition", err)
	}
}

func TestChainRemoveValidation(t *testing.T) {
	c := NewChain("bounds")
	c.Append(NewNull("a"))
	c.Append(NewNull("b"))
	if _, err := c.Remove(1); !errors.Is(err, ErrChainTooShort) {
		t.Fatalf("err = %v, want ErrChainTooShort", err)
	}
	c.Append(NewNull("c"))
	if _, err := c.Remove(0); !errors.Is(err, ErrEndpointPosition) {
		t.Fatalf("remove endpoint err = %v, want ErrEndpointPosition", err)
	}
	if _, err := c.Remove(2); !errors.Is(err, ErrEndpointPosition) {
		t.Fatalf("remove endpoint err = %v, want ErrEndpointPosition", err)
	}
}

func TestChainLiveInsertPreservesData(t *testing.T) {
	// Build src -> sink, start the flow, then splice a transform filter in
	// the middle while data is streaming. All bytes must arrive, in order,
	// and the tail of the stream must show the transform's effect.
	var payload bytes.Buffer
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&payload, "line-%06d\n", i)
	}
	c := NewChain("live")
	src := sourceFilter("src", payload.Bytes(), 256)
	sink := newSink("sink")
	c.Append(src)
	c.Append(sink)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Let some data through, then insert a counting filter at position 1.
	time.Sleep(2 * time.Millisecond)
	counter := NewCounting("counter")
	if err := c.Insert(counter, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	got := sink.waitFor(t, payload.Len())
	if !bytes.Equal(got, payload.Bytes()) {
		t.Fatal("live insertion corrupted or reordered the stream")
	}
	if counter.Bytes() == 0 {
		t.Fatal("inserted filter never saw data")
	}
	if got := c.Names(); len(got) != 3 || got[1] != "counter" {
		t.Fatalf("Names = %v", got)
	}
	c.Stop()
}

func TestChainLiveRemovePreservesData(t *testing.T) {
	var payload bytes.Buffer
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&payload, "record-%06d\n", i)
	}
	c := NewChain("live-remove")
	src := sourceFilter("src", payload.Bytes(), 512)
	mid := NewNull("mid")
	sink := newSink("sink")
	c.Append(src)
	c.Append(mid)
	c.Append(sink)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	removed, err := c.Remove(1)
	if err != nil {
		t.Fatal(err)
	}
	if removed.Name() != "mid" {
		t.Fatalf("removed %q, want mid", removed.Name())
	}
	if removed.Running() {
		t.Fatal("removed filter still running")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	got := sink.waitFor(t, payload.Len())
	if !bytes.Equal(got, payload.Bytes()) {
		t.Fatal("live removal corrupted or reordered the stream")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after removal, want 2", c.Len())
	}
	c.Stop()
}

func TestChainRemoveByName(t *testing.T) {
	c := NewChain("byname")
	c.Append(NewNull("in"))
	c.Append(NewNull("victim"))
	c.Append(NewNull("out"))
	f, err := c.RemoveByName("victim")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "victim" {
		t.Fatalf("removed %q", f.Name())
	}
	if _, err := c.RemoveByName("victim"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second removal err = %v", err)
	}
}

func TestChainRepeatedInsertRemoveUnderLoad(t *testing.T) {
	// Stress the splice protocol: while a long stream flows, repeatedly
	// insert and remove filters. The sink must receive the payload intact.
	payload := make([]byte, 512*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	c := NewChain("stress")
	src := sourceFilter("src", payload, 1024)
	sink := newSink("sink")
	c.Append(src)
	c.Append(sink)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f := NewNull(fmt.Sprintf("nf-%d", i))
		if err := c.Insert(f, 1); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%2 == 0 {
			if _, err := c.Remove(1); err != nil {
				t.Fatalf("remove %d: %v", i, err)
			}
		}
	}
	got := sink.waitFor(t, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted by repeated splices")
	}
	c.Stop()
}

func TestChainMove(t *testing.T) {
	c := NewChain("move")
	c.Append(NewNull("in"))
	c.Append(NewNull("f1"))
	c.Append(NewNull("f2"))
	c.Append(NewNull("out"))
	if err := c.Move(1, 2); err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	want := []string{"in", "f2", "f1", "out"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	if err := c.Move(1, 1); err != nil {
		t.Fatalf("no-op move err = %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChainAppendAfterStartStartsFilter(t *testing.T) {
	c := NewChain("late")
	c.Append(NewNull("a"))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	late := NewNull("late-filter")
	if err := c.Append(late); err != nil {
		t.Fatal(err)
	}
	if !late.Running() {
		t.Fatal("filter appended to a started chain was not started")
	}
	c.Stop()
}

func TestChainValidateDetectsBrokenWiring(t *testing.T) {
	c := NewChain("broken")
	a, b := NewNull("a"), NewNull("b")
	c.Append(a)
	c.Append(b)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sever the connection behind the chain's back.
	go io.Copy(io.Discard, b.In())
	a.Out().Pause()
	if err := c.Validate(); err == nil {
		t.Fatal("Validate did not detect a severed connection")
	}
}

// Interface compliance for test helpers.
var _ Filter = (*sinkFilter)(nil)

func TestChainAppendConnectFailure(t *testing.T) {
	c := NewChain("connect-fail")
	a := NewNull("a")
	b := NewNull("b")
	// Pre-connect b's input so Append's Connect fails.
	if err := stream.Connect(stream.NewDetachableWriter(), b.In()); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b); err == nil {
		t.Fatal("expected Append to fail when the filter is already wired")
	}
}
