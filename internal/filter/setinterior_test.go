package filter

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestSetInteriorReplacesInteriorAtomically swaps the whole interior of a
// running chain mid-stream and verifies no byte is lost or reordered.
func TestSetInteriorReplacesInteriorAtomically(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789abcdef"), 4096)
	src := sourceFilter("src", payload, 512)
	sink := newSink("sink")
	c := NewChain("set-interior")
	first := NewCounting("first")
	for _, f := range []Filter{src, first, sink} {
		if err := c.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Let some data flow through the original interior, then swap it for a
	// two-stage interior that keeps the counting filter instance.
	sink.waitFor(t, 1024)
	second := NewChecksum("second")
	if err := c.SetInterior([]Filter{second, first}); err != nil {
		t.Fatalf("SetInterior: %v", err)
	}
	if got := c.Names(); len(got) != 4 || got[1] != "second" || got[2] != "first" {
		t.Fatalf("Names after SetInterior = %v", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate after SetInterior: %v", err)
	}
	got := sink.waitFor(t, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted across SetInterior: got %d bytes, want %d", len(got), len(payload))
	}
	if first.Bytes() < uint64(len(payload)) {
		t.Fatalf("kept stage lost its state or missed traffic: counted %d of %d", first.Bytes(), len(payload))
	}
	in, out := first.IOBytes()
	if in < uint64(len(payload)) || out < uint64(len(payload)) {
		t.Fatalf("per-stage IO counters = %d in / %d out, want >= %d", in, out, len(payload))
	}
}

// TestSetInteriorStopsRemovedStartsAdded checks lifecycle handling on both
// sides of the swap.
func TestSetInteriorStopsRemovedStartsAdded(t *testing.T) {
	src := sourceFilter("src", bytes.Repeat([]byte("x"), 1<<16), 1024)
	sink := newSink("sink")
	oldStage := NewNull("old")
	c := NewChain("lifecycle")
	for _, f := range []Filter{src, oldStage, sink} {
		if err := c.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sink.waitFor(t, 1)

	added := NewNull("new")
	if err := c.SetInterior([]Filter{added}); err != nil {
		t.Fatalf("SetInterior: %v", err)
	}
	if oldStage.Running() {
		t.Fatal("removed stage still running")
	}
	if !added.Running() {
		t.Fatal("added stage not started")
	}
	// An emptied interior must connect the endpoints directly.
	if err := c.SetInterior(nil); err != nil {
		t.Fatalf("SetInterior(nil): %v", err)
	}
	if added.Running() {
		t.Fatal("stage removed by the second swap still running")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate after emptying interior: %v", err)
	}
	sink.waitFor(t, 1<<16)
}

// TestSetInteriorBeforeStart wires an unstarted chain; Start then brings the
// whole composition up.
func TestSetInteriorBeforeStart(t *testing.T) {
	payload := []byte("hello, composition plane")
	src := sourceFilter("src", payload, 8)
	sink := newSink("sink")
	c := NewChain("prestart")
	if err := c.Append(src); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(sink); err != nil {
		t.Fatal(err)
	}
	mid := NewCounting("mid")
	if err := c.SetInterior([]Filter{mid}); err != nil {
		t.Fatalf("SetInterior before Start: %v", err)
	}
	if mid.Running() {
		t.Fatal("stage started before the chain")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := sink.waitFor(t, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

func TestSetInteriorRejectsBadTargets(t *testing.T) {
	c := NewChain("bad")
	if err := c.SetInterior(nil); !errors.Is(err, ErrChainTooShort) {
		t.Fatalf("SetInterior on empty chain = %v, want ErrChainTooShort", err)
	}
	if err := c.Append(NewNull("in")); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(NewNull("out")); err != nil {
		t.Fatal(err)
	}
	dup := NewNull("dup")
	if err := c.SetInterior([]Filter{dup, dup}); err == nil {
		t.Fatal("SetInterior accepted a duplicated stage")
	}
	if err := c.SetInterior([]Filter{nil}); err == nil {
		t.Fatal("SetInterior accepted a nil stage")
	}
}

// TestSetInteriorUnderSustainedTraffic hammers the swap while data flows,
// alternating between interiors that share one instance.
func TestSetInteriorUnderSustainedTraffic(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 1<<20)
	src := sourceFilter("src", payload, 2048)
	sink := newSink("sink")
	keep := NewCounting("keep")
	c := NewChain("sustained")
	for _, f := range []Filter{src, keep, sink} {
		if err := c.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			var interior []Filter
			if i%2 == 0 {
				interior = []Filter{NewNull("extra"), keep}
			} else {
				interior = []Filter{keep}
			}
			if err := c.SetInterior(interior); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	got := sink.waitFor(t, len(payload))
	<-done
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted under sustained swaps: %d bytes", len(got))
	}
}

// TestSetInteriorPreflightRejectsUnusableStages verifies that a stage which
// cannot survive the splice — already running, wired elsewhere, or stopped
// (a Base cannot restart) — is rejected before any wiring is disturbed.
func TestSetInteriorPreflightRejectsUnusableStages(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 1<<16)
	src := sourceFilter("src", payload, 1024)
	sink := newSink("sink")
	keep := NewNull("keep")
	c := NewChain("preflight")
	for _, f := range []Filter{src, keep, sink} {
		if err := c.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sink.waitFor(t, 1)

	// A stage that was stopped once cannot be restarted.
	dead := NewNull("dead")
	if err := dead.Start(); err != nil {
		t.Fatal(err)
	}
	if err := dead.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetInterior([]Filter{dead}); err == nil {
		t.Fatal("stopped stage accepted")
	}
	// A stage wired into another chain must be rejected too.
	other := NewChain("other")
	foreign := NewNull("foreign")
	for _, f := range []Filter{NewNull("o-in"), foreign, NewNull("o-out")} {
		if err := other.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetInterior([]Filter{foreign}); err == nil {
		t.Fatal("foreign-wired stage accepted")
	}

	// Both rejections happened before any wiring was touched: the original
	// interior still stands, validates, and relays the full payload.
	if got := c.Names(); len(got) != 3 || got[1] != "keep" {
		t.Fatalf("chain changed by rejected splices: %v", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate after rejected splices: %v", err)
	}
	sink.waitFor(t, len(payload))
}
