package filter

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Container errors.
var (
	// ErrUnknownKind is returned when a filter spec names a kind that has not
	// been registered.
	ErrUnknownKind = errors.New("filter: unknown filter kind")
	// ErrDuplicateKind is returned when registering a kind twice.
	ErrDuplicateKind = errors.New("filter: kind already registered")
)

// Container holds a collection of instantiated filters, mirroring the
// paper's FilterContainer class used when new filter objects are uploaded
// into the framework. It is safe for concurrent use.
type Container struct {
	mu      sync.Mutex
	filters []Filter
}

// NewContainer returns an empty container.
func NewContainer() *Container {
	return &Container{}
}

// Add appends a filter to the container.
func (c *Container) Add(f Filter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.filters = append(c.filters, f)
}

// Count returns the number of filters held.
func (c *Container) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.filters)
}

// Names returns the names of the held filters, the String enumeration of the
// paper's FilterContainer.
func (c *Container) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, len(c.filters))
	for i, f := range c.filters {
		names[i] = f.Name()
	}
	return names
}

// Get returns the filter at index i.
func (c *Container) Get(i int) (Filter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.filters) {
		return nil, fmt.Errorf("%w: %d of %d", ErrPosition, i, len(c.filters))
	}
	return c.filters[i], nil
}

// Take removes and returns the first filter with the given name.
func (c *Container) Take(name string) (Filter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, f := range c.filters {
		if f.Name() == name {
			c.filters = append(c.filters[:i], c.filters[i+1:]...)
			return f, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
}

// Spec describes a filter to be instantiated by a Registry: a registered kind
// plus free-form string parameters. Specs are what the control protocol
// transports in place of Java's serialized filter objects: the receiving
// proxy constructs the filter locally from the spec.
type Spec struct {
	// Kind selects the registered constructor.
	Kind string `json:"kind"`
	// Name is the instance name; defaults to Kind when empty.
	Name string `json:"name,omitempty"`
	// Params carries constructor-specific settings (e.g. "k", "n" for FEC,
	// "bps" for rate limiting).
	Params map[string]string `json:"params,omitempty"`
}

// Constructor builds a filter from a spec.
type Constructor func(Spec) (Filter, error)

// Registry maps filter kinds to constructors, enabling filters that were not
// compiled into the proxy's wiring to be instantiated on request at run time
// (the paper's third-party, dynamically uploaded filters). It is safe for
// concurrent use.
type Registry struct {
	mu           sync.Mutex
	constructors map[string]Constructor
}

// NewBareRegistry returns a registry with no registered kinds, for callers
// (like the compose plane's adapter) that supply the complete kind set
// themselves.
func NewBareRegistry() *Registry {
	return &Registry{constructors: make(map[string]Constructor)}
}

// NewRegistry returns a registry pre-populated with the built-in filter
// kinds: "null", "counting", "checksum", "ratelimit", "delay".
func NewRegistry() *Registry {
	r := &Registry{constructors: make(map[string]Constructor)}
	// Built-ins are registered through the same public path as third-party
	// filters; errors are impossible here because the map is empty.
	_ = r.Register("null", func(s Spec) (Filter, error) { return NewNull(s.Name), nil })
	_ = r.Register("counting", func(s Spec) (Filter, error) { return NewCounting(s.Name), nil })
	_ = r.Register("checksum", func(s Spec) (Filter, error) { return NewChecksum(s.Name), nil })
	_ = r.Register("ratelimit", func(s Spec) (Filter, error) {
		bps, err := intParam(s, "bps", 1<<20)
		if err != nil {
			return nil, err
		}
		return NewRateLimit(s.Name, bps), nil
	})
	_ = r.Register("delay", func(s Spec) (Filter, error) {
		ms, err := intParam(s, "ms", 0)
		if err != nil {
			return nil, err
		}
		return NewDelay(s.Name, time.Duration(ms)*time.Millisecond), nil
	})
	return r
}

// Register adds a constructor for the given kind.
func (r *Registry) Register(kind string, ctor Constructor) error {
	if kind == "" || ctor == nil {
		return fmt.Errorf("filter: invalid registration for kind %q", kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.constructors[kind]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateKind, kind)
	}
	r.constructors[kind] = ctor
	return nil
}

// Kinds returns the sorted list of registered kinds.
func (r *Registry) Kinds() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	kinds := make([]string, 0, len(r.constructors))
	for k := range r.constructors {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Build instantiates a filter from the spec.
func (r *Registry) Build(spec Spec) (Filter, error) {
	r.mu.Lock()
	ctor, ok := r.constructors[spec.Kind]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, spec.Kind)
	}
	if spec.Name == "" {
		spec.Name = spec.Kind
	}
	f, err := ctor(spec)
	if err != nil {
		return nil, fmt.Errorf("filter: build %q: %w", spec.Kind, err)
	}
	return f, nil
}

// intParam extracts an integer parameter from a spec with a default.
func intParam(s Spec, key string, def int) (int, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return 0, fmt.Errorf("filter: parameter %q=%q is not an integer: %w", key, v, err)
	}
	return n, nil
}
