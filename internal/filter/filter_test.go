package filter

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"rapidware/internal/stream"
)

// runThrough pushes input through a single started filter and returns what
// comes out of its output stream.
func runThrough(t *testing.T, f Filter, input []byte) []byte {
	t.Helper()
	src := stream.NewDetachableWriter()
	dst := stream.NewDetachableReader()
	if err := stream.Connect(src, f.In()); err != nil {
		t.Fatal(err)
	}
	if err := stream.Connect(f.Out(), dst); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		src.Write(input)
		src.Close()
	}()
	out, err := io.ReadAll(dst)
	if err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	return out
}

func TestBaseLifecycle(t *testing.T) {
	f := NewNull("ident")
	if f.Name() != "ident" {
		t.Fatalf("Name = %q", f.Name())
	}
	if f.Running() {
		t.Fatal("filter running before Start")
	}
	if err := f.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Stop before Start err = %v, want ErrNotStarted", err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if !f.Running() {
		t.Fatal("filter not running after Start")
	}
	if err := f.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("second Start err = %v, want ErrAlreadyStarted", err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if f.Running() {
		t.Fatal("filter still running after Stop")
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop should be idempotent, got %v", err)
	}
}

func TestBasePropagatesProcessError(t *testing.T) {
	boom := errors.New("boom")
	f := New("failing", func(r io.Reader, w io.Writer) error {
		return boom
	})
	dst := stream.NewDetachableReader()
	if err := stream.Connect(f.Out(), dst); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	f.Wait()
	if _, err := dst.Read(make([]byte, 1)); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("downstream err = %v, want wrapped process error", err)
	}
	if !errors.Is(f.Err(), boom) {
		t.Fatalf("Err() = %v, want boom", f.Err())
	}
}

func TestNullFilterPassesDataUnchanged(t *testing.T) {
	payload := bytes.Repeat([]byte("rapidware "), 1000)
	got := runThrough(t, NewNull(""), payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("null filter modified data: got %d bytes want %d", len(got), len(payload))
	}
}

func TestCountingFilter(t *testing.T) {
	cf := NewCounting("")
	payload := make([]byte, 10_000)
	got := runThrough(t, cf, payload)
	if len(got) != len(payload) {
		t.Fatalf("forwarded %d bytes, want %d", len(got), len(payload))
	}
	if cf.Bytes() != uint64(len(payload)) {
		t.Fatalf("Bytes() = %d, want %d", cf.Bytes(), len(payload))
	}
	if cf.Chunks() == 0 {
		t.Fatal("Chunks() = 0, want > 0")
	}
}

func TestChecksumFilter(t *testing.T) {
	cf := NewChecksum("")
	payload := []byte("integrity is preserved end to end")
	got := runThrough(t, cf, payload)
	if !bytes.Equal(got, payload) {
		t.Fatal("checksum filter modified data")
	}
	crc, n := cf.Sum()
	if n != uint64(len(payload)) {
		t.Fatalf("byte count = %d, want %d", n, len(payload))
	}
	if crc == 0 {
		t.Fatal("crc = 0, want non-zero")
	}
}

func TestTransformFilter(t *testing.T) {
	upper := NewTransform("upper", bytes.ToUpper)
	got := runThrough(t, upper, []byte("make me loud"))
	if string(got) != "MAKE ME LOUD" {
		t.Fatalf("got %q", got)
	}
}

func TestDelayFilterAddsLatency(t *testing.T) {
	f := NewDelay("", 30*time.Millisecond)
	start := time.Now()
	got := runThrough(t, f, []byte("x"))
	if len(got) != 1 {
		t.Fatalf("got %d bytes, want 1", len(got))
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("elapsed %v, want at least ~30ms", elapsed)
	}
}

func TestRateLimitShapesThroughput(t *testing.T) {
	// 20 KiB at 100 KiB/s should take roughly 200 ms; allow generous slack
	// but reject an unshaped instant transfer.
	f := NewRateLimit("", 100*1024)
	payload := make([]byte, 20*1024)
	start := time.Now()
	got := runThrough(t, f, payload)
	elapsed := time.Since(start)
	if len(got) != len(payload) {
		t.Fatalf("forwarded %d bytes, want %d", len(got), len(payload))
	}
	if elapsed < 100*time.Millisecond {
		t.Fatalf("transfer took %v, want >= 100ms of shaping", elapsed)
	}
}

func TestRateLimitDefaultsForInvalidRate(t *testing.T) {
	f := NewRateLimit("slow", -5)
	if f.Name() != "slow" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestStopUnblocksFilterBlockedOnRead(t *testing.T) {
	f := NewNull("blocked")
	// No upstream connection: the filter's read blocks until connected.
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Stop() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not unblock a filter waiting for input")
	}
}
