package filter

import (
	"sync"
	"sync/atomic"

	"rapidware/internal/packet"
)

// BufSink consumes one pooled frame buffer. The callee takes ownership of one
// reference and must Release it exactly once; it must treat the bytes as
// read-only, because a Tee hands the same storage to every tap.
type BufSink func(*packet.Buf)

// Tee fans one stream of pooled frame buffers out to a dynamic set of taps
// without copying payload bytes: Dispatch retains len(taps)-1 extra
// references on the buffer and hands the same *packet.Buf to every tap. It is
// the composition primitive under the engine's delivery tree — a session's
// trunk chain terminates in a Tee whose taps are the per-receiver branch
// tails.
//
// Dispatch is wait-free with respect to SetTaps (one atomic pointer load), so
// the trunk's hot path never takes a lock; SetTaps is for the control path
// (membership reconciliation) and may be called concurrently with Dispatch.
type Tee struct {
	mu   sync.Mutex
	taps atomic.Pointer[[]BufSink]
}

// NewTee returns a tee with no taps; Dispatch releases every buffer until
// taps are attached.
func NewTee() *Tee { return &Tee{} }

// SetTaps replaces the tap set. The slice is published as-is and must not be
// mutated by the caller afterwards. nil (or empty) detaches every tap.
func (t *Tee) SetTaps(taps []BufSink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(taps) == 0 {
		t.taps.Store(nil)
		return
	}
	t.taps.Store(&taps)
}

// Len returns the current number of taps.
func (t *Tee) Len() int {
	p := t.taps.Load()
	if p == nil {
		return 0
	}
	return len(*p)
}

// Dispatch fans b out to every tap, cloning ownership (reference counts)
// rather than bytes. It consumes the caller's reference: with no taps the
// buffer is released, with n taps each receives the same buffer holding one
// of n references. It returns how many taps received the buffer.
func (t *Tee) Dispatch(b *packet.Buf) int {
	p := t.taps.Load()
	if p == nil {
		b.Release()
		return 0
	}
	taps := *p
	if n := len(taps); n > 1 {
		b.Retain(n - 1)
	}
	for _, tap := range taps {
		tap(b)
	}
	return len(taps)
}
