package filter

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rapidware/internal/packet"
)

// BufSink consumes one pooled frame buffer. The callee takes ownership of one
// reference and must Release it exactly once; it must treat the bytes as
// read-only, because a Tee hands the same storage to every tap.
type BufSink func(*packet.Buf)

// Tee fans one stream of pooled frame buffers out to a dynamic set of taps
// without copying payload bytes: Dispatch retains len(taps)-1 extra
// references on the buffer and hands the same *packet.Buf to every tap. It is
// the composition primitive under the engine's delivery tree — a session's
// trunk chain terminates in a Tee whose taps are the per-receiver branch
// tails.
//
// Dispatch is wait-free with respect to SetTaps (one atomic pointer load plus
// two atomic in-flight marks), so the trunk's hot path never takes a lock;
// SetTaps is for the control path (membership reconciliation) and may be
// called concurrently with Dispatch. Swap additionally lets the control path
// run a critical section that is ordered after every Dispatch that saw the
// old tap set — the hook delivery cohorts use to cut handover fences that are
// exact in the frame stream.
type Tee struct {
	mu   sync.Mutex
	taps atomic.Pointer[[]BufSink]
	busy atomic.Int64
}

// NewTee returns a tee with no taps; Dispatch releases every buffer until
// taps are attached.
func NewTee() *Tee { return &Tee{} }

// SetTaps replaces the tap set. The slice is published as-is and must not be
// mutated by the caller afterwards. nil (or empty) detaches every tap.
func (t *Tee) SetTaps(taps []BufSink) {
	t.Swap(taps, nil)
}

// Swap replaces the tap set, waits until no Dispatch that could have loaded
// the old set is still in flight, then runs fn (which may be nil). When fn
// runs, every buffer dispatched through the old taps has been fully handed to
// them, and every later Dispatch will use the new taps — so fn observes an
// exact cut in the dispatch stream. fn must not call Dispatch (it would
// deadlock behind its own barrier) and should be brief: the barrier only
// spin-yields for the tail of at most one in-flight Dispatch, but fn itself
// runs with the tee's control mutex held.
func (t *Tee) Swap(taps []BufSink, fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(taps) == 0 {
		t.taps.Store(nil)
	} else {
		t.taps.Store(&taps)
	}
	for t.busy.Load() != 0 {
		runtime.Gosched()
	}
	if fn != nil {
		fn()
	}
}

// Len returns the current number of taps.
func (t *Tee) Len() int {
	p := t.taps.Load()
	if p == nil {
		return 0
	}
	return len(*p)
}

// Dispatch fans b out to every tap, cloning ownership (reference counts)
// rather than bytes. It consumes the caller's reference: with no taps the
// buffer is released, with n taps each receives the same buffer holding one
// of n references. It returns how many taps received the buffer.
func (t *Tee) Dispatch(b *packet.Buf) int {
	t.busy.Add(1)
	defer t.busy.Add(-1)
	p := t.taps.Load()
	if p == nil {
		b.Release()
		return 0
	}
	taps := *p
	if n := len(taps); n > 1 {
		b.Retain(n - 1)
	}
	for _, tap := range taps {
		tap(b)
	}
	return len(taps)
}
