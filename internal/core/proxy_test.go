package core

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"rapidware/internal/endpoint"
	"rapidware/internal/filter"
)

// collectingSink is a writer that accumulates whatever the proxy forwards.
type collectingSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *collectingSink) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *collectingSink) snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

func (c *collectingSink) waitFor(t *testing.T, n int) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b := c.snapshot(); len(b) >= n {
			return b
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("sink received %d bytes, want %d", len(c.snapshot()), n)
	return nil
}

// pacedReader emits the payload in small paced chunks so the stream stays
// live while tests reconfigure the proxy.
type pacedReader struct {
	payload []byte
	off     int
}

func (p *pacedReader) Read(buf []byte) (int, error) {
	if p.off >= len(p.payload) {
		return 0, io.EOF
	}
	n := 200
	if n > len(buf) {
		n = len(buf)
	}
	if p.off+n > len(p.payload) {
		n = len(p.payload) - p.off
	}
	copy(buf, p.payload[p.off:p.off+n])
	p.off += n
	time.Sleep(100 * time.Microsecond)
	return n, nil
}

func newTestProxy(t *testing.T, payload []byte) (*Proxy, *collectingSink) {
	t.Helper()
	p := New("test-proxy")
	sink := &collectingSink{}
	in := endpoint.NewReader("in", &pacedReader{payload: payload})
	out := endpoint.NewWriter("out", sink)
	if err := p.SetEndpoints(in, out); err != nil {
		t.Fatal(err)
	}
	return p, sink
}

func TestNewDefaults(t *testing.T) {
	p := New("")
	if p.Name() != "proxy" {
		t.Fatalf("default name = %q", p.Name())
	}
	if p.Chain() == nil || p.Registry() == nil || p.Container() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestWithRegistryOption(t *testing.T) {
	r := filter.NewRegistry()
	p := New("custom", WithRegistry(r))
	if p.Registry() != r {
		t.Fatal("WithRegistry not applied")
	}
	New("nilreg", WithRegistry(nil)) // must not panic or unset default
}

func TestSetEndpointsValidation(t *testing.T) {
	p := New("x")
	if err := p.SetEndpoints(nil, nil); err == nil {
		t.Fatal("expected error for nil endpoints")
	}
	in := filter.NewNull("in")
	out := filter.NewNull("out")
	if err := p.SetEndpoints(in, out); err != nil {
		t.Fatal(err)
	}
	if err := p.SetEndpoints(in, out); err == nil {
		t.Fatal("expected error for double endpoint configuration")
	}
}

func TestStartStopLifecycle(t *testing.T) {
	p := New("lifecycle")
	if err := p.Start(); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("Start without endpoints err = %v", err)
	}
	if err := p.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Stop before start err = %v", err)
	}
	p.SetEndpoints(filter.NewNull("in"), filter.NewNull("out"))
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if !p.Running() {
		t.Fatal("Running = false after Start")
	}
	if err := p.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("double Start err = %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.Running() {
		t.Fatal("Running = true after Stop")
	}
}

func TestNullProxyForwardsUnchanged(t *testing.T) {
	payload := bytes.Repeat([]byte("null proxy forwards "), 2000)
	p, sink := newTestProxy(t, payload)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	got := sink.waitFor(t, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("null proxy corrupted data")
	}
	p.Stop()
}

func TestLiveInsertSpecAndRemove(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 20_000)
	p, sink := newTestProxy(t, payload)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	f, err := p.InsertSpec(filter.Spec{Kind: "counting", Name: "tap"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Status()
	if len(st.Filters) != 3 || st.Filters[1].Name != "tap" {
		t.Fatalf("Status filters = %+v", st.Filters)
	}
	if st.Insertions != 1 {
		t.Fatalf("Insertions = %d", st.Insertions)
	}
	// Let some data pass through the tap, then remove it live.
	time.Sleep(5 * time.Millisecond)
	if _, err := p.RemoveFilterByName("tap"); err != nil {
		t.Fatal(err)
	}
	got := sink.waitFor(t, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("live insert+remove corrupted the stream")
	}
	cf, ok := f.(*filter.CountingFilter)
	if !ok {
		t.Fatalf("unexpected filter type %T", f)
	}
	if cf.Bytes() == 0 {
		t.Fatal("inserted filter saw no data")
	}
	st = p.Status()
	if st.Removals != 1 {
		t.Fatalf("Removals = %d", st.Removals)
	}
	p.Stop()
}

func TestInsertSpecUnknownKind(t *testing.T) {
	p := New("bad")
	p.SetEndpoints(filter.NewNull("in"), filter.NewNull("out"))
	if _, err := p.InsertSpec(filter.Spec{Kind: "not-real"}, 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestInsertFilterBadPosition(t *testing.T) {
	p := New("bad-pos")
	p.SetEndpoints(filter.NewNull("in"), filter.NewNull("out"))
	if err := p.InsertFilter(filter.NewNull("f"), 0); err == nil {
		t.Fatal("expected position error")
	}
	st := p.Status()
	if st.Insertions != 0 {
		t.Fatal("failed insert must not count")
	}
}

func TestAppendSpec(t *testing.T) {
	p := New("append")
	if _, err := p.AppendSpec(filter.Spec{Kind: "null", Name: "in"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AppendSpec(filter.Spec{Kind: "null", Name: "out"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AppendSpec(filter.Spec{Kind: "bogus"}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if p.Chain().Len() != 2 {
		t.Fatalf("Len = %d", p.Chain().Len())
	}
}

func TestMoveFilter(t *testing.T) {
	p := New("mover")
	p.SetEndpoints(filter.NewNull("in"), filter.NewNull("out"))
	p.InsertFilter(filter.NewNull("f1"), 1)
	p.InsertFilter(filter.NewNull("f2"), 2)
	if err := p.MoveFilter(1, 2); err != nil {
		t.Fatal(err)
	}
	names := p.Chain().Names()
	if names[1] != "f2" || names[2] != "f1" {
		t.Fatalf("names after move = %v", names)
	}
}

func TestStatusFields(t *testing.T) {
	p := New("status")
	p.SetEndpoints(filter.NewNull("in"), filter.NewNull("out"))
	st := p.Status()
	if st.Name != "status" || st.Running {
		t.Fatalf("Status = %+v", st)
	}
	if !st.ChainIntact {
		t.Fatal("chain should be intact")
	}
	if len(st.Kinds) == 0 {
		t.Fatal("Kinds empty")
	}
	if st.UptimeMs != 0 {
		t.Fatal("uptime should be zero before start")
	}
	p.Start()
	time.Sleep(2 * time.Millisecond)
	st = p.Status()
	if !st.Running || st.UptimeMs <= 0 {
		t.Fatalf("running status = %+v", st)
	}
	if len(st.Filters) != 2 || !st.Filters[0].Running {
		t.Fatalf("filter status = %+v", st.Filters)
	}
	p.Stop()
}

func TestRemoveFilterInvalid(t *testing.T) {
	p := New("rm")
	p.SetEndpoints(filter.NewNull("in"), filter.NewNull("out"))
	if _, err := p.RemoveFilter(1); err == nil {
		t.Fatal("expected error removing from chain with no interior filters")
	}
	if _, err := p.RemoveFilterByName("ghost"); err == nil {
		t.Fatal("expected error removing unknown filter")
	}
}
