// Package core provides the RAPIDware proxy: the top-level object that ties
// together endpoints, a filter chain (the ControlThread), a filter registry
// and a filter container, and exposes the management operations that the
// control protocol and the adaptive raplets drive.
//
// A proxy with just two endpoints and an empty interior is the paper's "null
// proxy"; inserting filters at run time specializes it into a transcoding,
// caching or FEC proxy without touching the stream's endpoints.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rapidware/internal/filter"
)

// Errors returned by the proxy.
var (
	// ErrNoEndpoints is returned by Start when the proxy has no stages.
	ErrNoEndpoints = errors.New("core: proxy has no endpoints")
	// ErrAlreadyStarted is returned when starting a started proxy.
	ErrAlreadyStarted = errors.New("core: proxy already started")
	// ErrNotStarted is returned when stopping a proxy that is not running.
	ErrNotStarted = errors.New("core: proxy not started")
)

// Proxy is a single-stream RAPIDware proxy.
type Proxy struct {
	name      string
	chain     *filter.Chain
	registry  *filter.Registry
	container *filter.Container

	mu        sync.Mutex
	started   bool
	startedAt time.Time
	inserts   uint64
	removes   uint64
}

// Option configures a Proxy.
type Option func(*Proxy)

// WithRegistry supplies a custom filter registry (for example, one extended
// with third-party filter kinds such as the FEC encoder).
func WithRegistry(r *filter.Registry) Option {
	return func(p *Proxy) {
		if r != nil {
			p.registry = r
		}
	}
}

// New returns a proxy with the given name. Endpoints and filters are added
// with SetEndpoints / InsertSpec / InsertFilter.
func New(name string, opts ...Option) *Proxy {
	if name == "" {
		name = "proxy"
	}
	p := &Proxy{
		name:      name,
		chain:     filter.NewChain(name),
		registry:  filter.NewRegistry(),
		container: filter.NewContainer(),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name returns the proxy's name.
func (p *Proxy) Name() string { return p.name }

// Chain exposes the underlying filter chain for advanced callers (raplets,
// experiments). Most callers should use the Proxy methods instead.
func (p *Proxy) Chain() *filter.Chain { return p.chain }

// Registry returns the proxy's filter registry.
func (p *Proxy) Registry() *filter.Registry { return p.registry }

// Container returns the holding area for uploaded-but-not-yet-inserted
// filters, mirroring the paper's FilterContainer.
func (p *Proxy) Container() *filter.Container { return p.container }

// SetEndpoints installs the input and output endpoints as the first and last
// chain stages. It must be called before Start and before any insertions.
func (p *Proxy) SetEndpoints(in, out filter.Filter) error {
	if in == nil || out == nil {
		return fmt.Errorf("core: both endpoints are required")
	}
	if p.chain.Len() != 0 {
		return fmt.Errorf("core: endpoints already configured")
	}
	if err := p.chain.Append(in); err != nil {
		return err
	}
	return p.chain.Append(out)
}

// Start launches the proxy's chain.
func (p *Proxy) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return ErrAlreadyStarted
	}
	if p.chain.Len() < 2 {
		return ErrNoEndpoints
	}
	if err := p.chain.Start(); err != nil {
		return err
	}
	p.started = true
	p.startedAt = time.Now()
	return nil
}

// Stop stops every stage of the proxy.
func (p *Proxy) Stop() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		return ErrNotStarted
	}
	p.started = false
	return p.chain.Stop()
}

// Running reports whether the proxy has been started and not stopped.
func (p *Proxy) Running() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.started
}

// InsertFilter splices an already-constructed filter into the chain at pos
// (1..Len-1). The insertion follows the live pause/reconnect protocol, so it
// is safe while data is flowing.
func (p *Proxy) InsertFilter(f filter.Filter, pos int) error {
	if err := p.chain.Insert(f, pos); err != nil {
		return err
	}
	p.mu.Lock()
	p.inserts++
	p.mu.Unlock()
	return nil
}

// InsertSpec builds a filter from a registry spec and inserts it at pos. This
// is the path the control protocol uses for filters "uploaded" at run time.
func (p *Proxy) InsertSpec(spec filter.Spec, pos int) (filter.Filter, error) {
	f, err := p.registry.Build(spec)
	if err != nil {
		return nil, err
	}
	if err := p.InsertFilter(f, pos); err != nil {
		return nil, err
	}
	return f, nil
}

// AppendSpec builds a filter from a spec and appends it to the end of the
// chain; used during initial assembly before endpoints are finalized.
func (p *Proxy) AppendSpec(spec filter.Spec) (filter.Filter, error) {
	f, err := p.registry.Build(spec)
	if err != nil {
		return nil, err
	}
	if err := p.chain.Append(f); err != nil {
		return nil, err
	}
	return f, nil
}

// RemoveFilter removes the filter at position pos and returns it.
func (p *Proxy) RemoveFilter(pos int) (filter.Filter, error) {
	f, err := p.chain.Remove(pos)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.removes++
	p.mu.Unlock()
	return f, nil
}

// RemoveFilterByName removes the first filter with the given name.
func (p *Proxy) RemoveFilterByName(name string) (filter.Filter, error) {
	f, err := p.chain.RemoveByName(name)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.removes++
	p.mu.Unlock()
	return f, nil
}

// MoveFilter relocates a filter between interior positions.
func (p *Proxy) MoveFilter(from, to int) error {
	return p.chain.Move(from, to)
}

// FilterStatus describes one chain stage in a Status report.
type FilterStatus struct {
	Position int    `json:"position"`
	Name     string `json:"name"`
	Running  bool   `json:"running"`
}

// Status is the management view of a proxy, the information the paper's
// ControlManager renders graphically.
type Status struct {
	Name        string         `json:"name"`
	Running     bool           `json:"running"`
	UptimeMs    int64          `json:"uptime_ms"`
	Filters     []FilterStatus `json:"filters"`
	Kinds       []string       `json:"kinds"`
	Insertions  uint64         `json:"insertions"`
	Removals    uint64         `json:"removals"`
	ChainIntact bool           `json:"chain_intact"`
}

// Status reports the proxy's current configuration.
func (p *Proxy) Status() Status {
	p.mu.Lock()
	started := p.started
	startedAt := p.startedAt
	inserts := p.inserts
	removes := p.removes
	p.mu.Unlock()

	var uptime int64
	if started {
		uptime = time.Since(startedAt).Milliseconds()
	}
	st := Status{
		Name:        p.name,
		Running:     started,
		UptimeMs:    uptime,
		Kinds:       p.registry.Kinds(),
		Insertions:  inserts,
		Removals:    removes,
		ChainIntact: p.chain.Validate() == nil,
	}
	for i, f := range p.chain.Filters() {
		st.Filters = append(st.Filters, FilterStatus{Position: i, Name: f.Name(), Running: f.Running()})
	}
	return st
}
