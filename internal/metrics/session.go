package metrics

import "sync/atomic"

// SessionCounters is the per-session counter block maintained by the proxy
// engine's relay hot path. All fields are atomics so the data path never
// takes a lock to account for a packet.
type SessionCounters struct {
	// Packets and Bytes count inbound datagrams accepted onto the session's
	// chain.
	Packets atomic.Uint64
	Bytes   atomic.Uint64
	// OutPackets and OutBytes count datagrams relayed out of the session.
	OutPackets atomic.Uint64
	OutBytes   atomic.Uint64
	// Repairs counts data packets reconstructed from FEC parity.
	Repairs atomic.Uint64
	// Drops counts datagrams discarded: inbound queue overflow, sends with no
	// known peer, and send errors.
	Drops atomic.Uint64
}

// SessionStats is a point-in-time snapshot of one session's counters, as
// carried in control-protocol status replies.
type SessionStats struct {
	ID uint32 `json:"id"`
	// Shard is the index of the engine data-plane shard that owns the
	// session (its table slot and all of its outbound datagrams).
	Shard      int    `json:"shard"`
	Packets    uint64 `json:"packets"`
	Bytes      uint64 `json:"bytes"`
	OutPackets uint64 `json:"out_packets"`
	OutBytes   uint64 `json:"out_bytes"`
	Repairs    uint64 `json:"repairs"`
	Drops      uint64 `json:"drops"`
	// Adapt carries the session's adaptation-plane state; nil when the
	// engine runs without the closed loop. On a fan-out session with
	// per-receiver branches it aggregates across receivers (worst protection
	// level, total reports/retunes); the per-receiver breakdown is in
	// Receivers.
	Adapt *AdaptStats `json:"adapt,omitempty"`
	// Receivers is the per-receiver breakdown of a fan-out session's delivery
	// tree: one entry per member, ordered by receiver address. Empty for
	// unicast (echo/forward) sessions and for plain fan-out without branches.
	Receivers []ReceiverStats `json:"receivers,omitempty"`
	// Cohorts counts the session's distinct delivery cohorts: groups of
	// receivers at the same protection level sharing one branch chain and one
	// encode. len(Receivers) receivers served by 1 cohort is the homogeneous
	// ideal; one cohort per receiver is full heterogeneity.
	Cohorts int `json:"cohorts,omitempty"`
	// Chain is the canonical spec string of the session's trunk plan, the
	// form accepted back by the recompose control operation. On a parked
	// session it is the retained plan the chain will be rebuilt from.
	Chain string `json:"chain,omitempty"`
	// Stages is the per-stage view of the trunk plan, in chain order. Empty
	// while parked (there are no running instances to describe).
	Stages []StageStats `json:"stages,omitempty"`
	// Parked reports whether the session is currently parked: its chain and
	// goroutines released after the idle TTL, ready to be rebuilt from the
	// retained plan on the next datagram.
	Parked bool `json:"parked,omitempty"`
	// IdleForMs is how long ago the engine's maintenance tick last observed
	// activity on the session, in milliseconds. 0 when idle harvesting is
	// off.
	IdleForMs int64 `json:"idle_for_ms,omitempty"`
}

// StageStats is the control-plane view of one stage of a composed chain: its
// plan spec, the instance currently realizing it (if any), and the traffic
// that has moved through it.
type StageStats struct {
	// Kind is the stage's registered kind; Spec is its canonical one-stage
	// spec (kind or kind=arg).
	Kind string `json:"kind"`
	Spec string `json:"spec"`
	// Name is the running filter instance's name; empty for a marker stage
	// (e.g. fec-adapt) whose instance is not currently spliced in.
	Name string `json:"name,omitempty"`
	// Active reports whether a filter instance is live at this stage.
	Active bool `json:"active"`
	// InBytes and OutBytes count the bytes the stage's instance has read and
	// written since it was spliced in.
	InBytes  uint64 `json:"in_bytes"`
	OutBytes uint64 `json:"out_bytes"`
}

// ReceiverCounters is the per-branch counter block maintained on the engine's
// fan-out send path; all fields are atomics so branch output never takes a
// lock to account for a datagram.
type ReceiverCounters struct {
	// OutPackets and OutBytes count datagrams sent to this receiver.
	OutPackets atomic.Uint64
	OutBytes   atomic.Uint64
	// Drops counts datagrams discarded for this receiver: branch queue
	// overflow, writer queue overflow and send errors.
	Drops atomic.Uint64
	// Primed counts historical frames replayed into this receiver's branch
	// from the trunk's replay cache when the branch was built (late join).
	Primed atomic.Uint64
}

// ReceiverStats is the point-in-time state of one receiver's delivery branch
// in a fan-out session: the branch's own relay counters, its filter tail, and
// — when the per-receiver adaptation loop is on — the protection level that
// receiver's own loss reports have selected.
type ReceiverStats struct {
	// Receiver is the downstream station's UDP address.
	Receiver   string `json:"receiver"`
	OutPackets uint64 `json:"out_packets"`
	OutBytes   uint64 `json:"out_bytes"`
	Drops      uint64 `json:"drops"`
	// Primed counts historical frames replayed into this branch when it was
	// built, priming a late-joining station from the trunk's replay cache.
	Primed uint64 `json:"primed,omitempty"`
	// Stages lists the branch tail's interior filter stages, in order.
	Stages []string `json:"stages,omitempty"`
	// Chain is the canonical spec string of the branch tail's plan, the form
	// accepted back by the recompose control operation.
	Chain string `json:"chain,omitempty"`
	// K and N are the code currently protecting this receiver's branch
	// (K == N means no FEC); Active reports whether an encoder is spliced in.
	K      int  `json:"k,omitempty"`
	N      int  `json:"n,omitempty"`
	Active bool `json:"active,omitempty"`
	// LossRate is the loss this receiver last reported (as acted on by its
	// branch responder); Reports counts its reports, Retunes its branch's
	// protection-level changes, and HighestSeq the highest sequence number it
	// acknowledged.
	LossRate   float64 `json:"loss_rate,omitempty"`
	Reports    uint64  `json:"reports,omitempty"`
	Retunes    uint64  `json:"retunes,omitempty"`
	HighestSeq uint64  `json:"highest_seq,omitempty"`
	// Mechanism names the repair mechanism this receiver's branch responder
	// last selected ("none", "fec" or "arq"); empty without adaptation.
	Mechanism string `json:"mechanism,omitempty"`
}

// Snapshot captures the receiver counter block for one branch.
func (c *ReceiverCounters) Snapshot(receiver string) ReceiverStats {
	return ReceiverStats{
		Receiver:   receiver,
		OutPackets: c.OutPackets.Load(),
		OutBytes:   c.OutBytes.Load(),
		Drops:      c.Drops.Load(),
		Primed:     c.Primed.Load(),
	}
}

// AdaptStats is the adaptation-plane state of one engine session: the code
// currently protecting the stream, the loss feedback that selected it, and
// how often the control loop has rewritten the chain.
type AdaptStats struct {
	// K and N are the currently selected erasure code; K == N means the
	// policy has the session on the pure relay path (no FEC).
	K int `json:"k"`
	N int `json:"n"`
	// Active reports whether an FEC encoder is spliced into the chain.
	Active bool `json:"active"`
	// LossRate is the worst receiver-reported loss the loop last acted on.
	LossRate float64 `json:"loss_rate"`
	// Reports counts receiver reports consumed; Receivers counts the
	// distinct receivers that have reported.
	Reports   uint64 `json:"reports"`
	Receivers int    `json:"receivers"`
	// Retunes counts protection-level changes: encoder insertions, removals
	// and in-place (n,k) switches.
	Retunes uint64 `json:"retunes"`
	// Expired counts receivers aged out by the report-staleness window (a
	// station that stopped reporting without leaving the group).
	Expired uint64 `json:"expired,omitempty"`
	// Mechanism names the repair mechanism the loop last selected ("none",
	// "fec" or "arq"). On fan-out sessions it is the worst branch's choice.
	Mechanism string `json:"mechanism,omitempty"`
	// HighestSeq is the highest sequence number any receiver acknowledged.
	HighestSeq uint64 `json:"highest_seq"`
}

// EngineStats is an engine-level counter snapshot, aggregated across the
// data plane's shards on demand.
type EngineStats struct {
	// ActiveSessions counts registered sessions: LiveSessions with running
	// chains plus ParkedSessions idle-harvested down to their compact
	// records. All three are O(1) gauge reads, never table walks.
	ActiveSessions int    `json:"active_sessions"`
	LiveSessions   int    `json:"live_sessions"`
	ParkedSessions int    `json:"parked_sessions"`
	TotalSessions  uint64 `json:"total_sessions"`
	// Parks and Unparks count idle-session park/rebuild transitions;
	// Harvested counts sessions evicted by the admission harvester to make
	// room at MaxSessions; AdmissionDrops counts new sessions refused at
	// capacity.
	Parks          uint64 `json:"parks,omitempty"`
	Unparks        uint64 `json:"unparks,omitempty"`
	Harvested      uint64 `json:"harvested,omitempty"`
	AdmissionDrops uint64 `json:"admission_drops,omitempty"`
	Datagrams      uint64 `json:"datagrams"`
	Malformed      uint64 `json:"malformed"`
	Rejected       uint64 `json:"rejected"`
	ChainErrors    uint64 `json:"chain_errors"`
	Feedback       uint64 `json:"feedback"`
	// Nacks counts KindNack datagrams accepted off the feedback wire;
	// Retransmits counts the historical frames re-sent in answer to them.
	Nacks       uint64 `json:"nacks,omitempty"`
	Retransmits uint64 `json:"retransmits,omitempty"`
	// Shards is the width of the engine's data plane: the number of reader
	// goroutines, session-table shards and batched writers.
	Shards int `json:"shards"`
	// BatchedWrites counts datagrams sent through the shard writers;
	// WriteFlushes counts writer wakeups, so BatchedWrites/WriteFlushes is
	// the mean batch size. WriteDrops counts datagrams discarded because a
	// shard's outbound queue was full.
	BatchedWrites uint64 `json:"batched_writes"`
	WriteFlushes  uint64 `json:"write_flushes"`
	WriteDrops    uint64 `json:"write_drops"`
	// RecvCalls and SendCalls count receive and send syscalls issued by the
	// shard loops. With batched I/O each call can move many datagrams, so
	// Datagrams/RecvCalls and BatchedWrites/SendCalls are the read and write
	// batch-fill factors, and (RecvCalls+SendCalls)/(Datagrams+BatchedWrites)
	// is the syscalls-per-packet figure the batching exists to shrink.
	RecvCalls uint64 `json:"recv_calls"`
	SendCalls uint64 `json:"send_calls"`
	// BypassHits counts trunk frames delivered through a cohort bypass lane
	// (no chain, no copy); CoalescedSends counts cohort frames the writers
	// fanned to two or more receivers off one shared chain traversal.
	BypassHits     uint64 `json:"bypass_hits,omitempty"`
	CoalescedSends uint64 `json:"coalesced_sends,omitempty"`
}

// ShardStats is the counter snapshot of one engine data-plane shard.
// Reader-side counters (Datagrams, Malformed, Rejected, Feedback) reflect
// what the shard's reader goroutine pulled off its socket — in the shared-
// socket mode any reader can receive any session's datagrams, so these
// describe reader load, not session placement. Sessions, ChainErrors and the
// writer counters are attributed to the shard that owns the session.
type ShardStats struct {
	Shard       int    `json:"shard"`
	Sessions    int    `json:"sessions"`
	Datagrams   uint64 `json:"datagrams"`
	Malformed   uint64 `json:"malformed"`
	Rejected    uint64 `json:"rejected"`
	Feedback    uint64 `json:"feedback"`
	Nacks       uint64 `json:"nacks,omitempty"`
	Retransmits uint64 `json:"retransmits,omitempty"`
	ChainErrors uint64 `json:"chain_errors"`
	Writes      uint64 `json:"writes"`
	Flushes     uint64 `json:"flushes"`
	WriteDrops  uint64 `json:"write_drops"`
	// RecvCalls and SendCalls count this shard's receive and send syscalls;
	// see EngineStats for the derived batch-fill and syscalls-per-packet
	// readings.
	RecvCalls uint64 `json:"recv_calls"`
	SendCalls uint64 `json:"send_calls"`
	// Parked gauges this shard's currently parked sessions (a subset of
	// Sessions); Parks/Unparks/Harvested/AdmissionDrops count the park and
	// admission lifecycle events attributed to this shard.
	Parked         int    `json:"parked"`
	Parks          uint64 `json:"parks,omitempty"`
	Unparks        uint64 `json:"unparks,omitempty"`
	Harvested      uint64 `json:"harvested,omitempty"`
	AdmissionDrops uint64 `json:"admission_drops,omitempty"`
	// BypassHits and CoalescedSends are this shard's delivery-cohort
	// accounting; see EngineStats.
	BypassHits     uint64 `json:"bypass_hits,omitempty"`
	CoalescedSends uint64 `json:"coalesced_sends,omitempty"`
}

// Snapshot captures the counters for the session with the given ID.
func (c *SessionCounters) Snapshot(id uint32) SessionStats {
	return SessionStats{
		ID:         id,
		Packets:    c.Packets.Load(),
		Bytes:      c.Bytes.Load(),
		OutPackets: c.OutPackets.Load(),
		OutBytes:   c.OutBytes.Load(),
		Repairs:    c.Repairs.Load(),
		Drops:      c.Drops.Load(),
	}
}
