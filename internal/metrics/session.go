package metrics

import "sync/atomic"

// SessionCounters is the per-session counter block maintained by the proxy
// engine's relay hot path. All fields are atomics so the data path never
// takes a lock to account for a packet.
type SessionCounters struct {
	// Packets and Bytes count inbound datagrams accepted onto the session's
	// chain.
	Packets atomic.Uint64
	Bytes   atomic.Uint64
	// OutPackets and OutBytes count datagrams relayed out of the session.
	OutPackets atomic.Uint64
	OutBytes   atomic.Uint64
	// Repairs counts data packets reconstructed from FEC parity.
	Repairs atomic.Uint64
	// Drops counts datagrams discarded: inbound queue overflow, sends with no
	// known peer, and send errors.
	Drops atomic.Uint64
}

// SessionStats is a point-in-time snapshot of one session's counters, as
// carried in control-protocol status replies.
type SessionStats struct {
	ID         uint32 `json:"id"`
	Packets    uint64 `json:"packets"`
	Bytes      uint64 `json:"bytes"`
	OutPackets uint64 `json:"out_packets"`
	OutBytes   uint64 `json:"out_bytes"`
	Repairs    uint64 `json:"repairs"`
	Drops      uint64 `json:"drops"`
}

// Snapshot captures the counters for the session with the given ID.
func (c *SessionCounters) Snapshot(id uint32) SessionStats {
	return SessionStats{
		ID:         id,
		Packets:    c.Packets.Load(),
		Bytes:      c.Bytes.Load(),
		OutPackets: c.OutPackets.Load(),
		OutBytes:   c.OutBytes.Load(),
		Repairs:    c.Repairs.Load(),
		Drops:      c.Drops.Load(),
	}
}
