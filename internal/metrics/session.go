package metrics

import "sync/atomic"

// SessionCounters is the per-session counter block maintained by the proxy
// engine's relay hot path. All fields are atomics so the data path never
// takes a lock to account for a packet.
type SessionCounters struct {
	// Packets and Bytes count inbound datagrams accepted onto the session's
	// chain.
	Packets atomic.Uint64
	Bytes   atomic.Uint64
	// OutPackets and OutBytes count datagrams relayed out of the session.
	OutPackets atomic.Uint64
	OutBytes   atomic.Uint64
	// Repairs counts data packets reconstructed from FEC parity.
	Repairs atomic.Uint64
	// Drops counts datagrams discarded: inbound queue overflow, sends with no
	// known peer, and send errors.
	Drops atomic.Uint64
}

// SessionStats is a point-in-time snapshot of one session's counters, as
// carried in control-protocol status replies.
type SessionStats struct {
	ID         uint32 `json:"id"`
	Packets    uint64 `json:"packets"`
	Bytes      uint64 `json:"bytes"`
	OutPackets uint64 `json:"out_packets"`
	OutBytes   uint64 `json:"out_bytes"`
	Repairs    uint64 `json:"repairs"`
	Drops      uint64 `json:"drops"`
	// Adapt carries the session's adaptation-plane state; nil when the
	// engine runs without the closed loop.
	Adapt *AdaptStats `json:"adapt,omitempty"`
}

// AdaptStats is the adaptation-plane state of one engine session: the code
// currently protecting the stream, the loss feedback that selected it, and
// how often the control loop has rewritten the chain.
type AdaptStats struct {
	// K and N are the currently selected erasure code; K == N means the
	// policy has the session on the pure relay path (no FEC).
	K int `json:"k"`
	N int `json:"n"`
	// Active reports whether an FEC encoder is spliced into the chain.
	Active bool `json:"active"`
	// LossRate is the worst receiver-reported loss the loop last acted on.
	LossRate float64 `json:"loss_rate"`
	// Reports counts receiver reports consumed; Receivers counts the
	// distinct receivers that have reported.
	Reports   uint64 `json:"reports"`
	Receivers int    `json:"receivers"`
	// Retunes counts protection-level changes: encoder insertions, removals
	// and in-place (n,k) switches.
	Retunes uint64 `json:"retunes"`
	// HighestSeq is the highest sequence number any receiver acknowledged.
	HighestSeq uint64 `json:"highest_seq"`
}

// Snapshot captures the counters for the session with the given ID.
func (c *SessionCounters) Snapshot(id uint32) SessionStats {
	return SessionStats{
		ID:         id,
		Packets:    c.Packets.Load(),
		Bytes:      c.Bytes.Load(),
		OutPackets: c.OutPackets.Load(),
		OutBytes:   c.OutBytes.Load(),
		Repairs:    c.Repairs.Load(),
		Drops:      c.Drops.Load(),
	}
}
