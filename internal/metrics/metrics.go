// Package metrics provides the measurement primitives used across the
// RAPIDware reproduction: counters, sliding-window rates, latency histograms,
// and the packet trace recorder that regenerates the paper's Figure 7 series
// (percentage of packets received vs. reconstructed by sequence number).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	n  uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Ratio is a success/total ratio tracker (e.g. packets received / sent).
type Ratio struct {
	mu      sync.Mutex
	success uint64
	total   uint64
}

// Observe records one trial with the given outcome.
func (r *Ratio) Observe(ok bool) {
	r.mu.Lock()
	r.total++
	if ok {
		r.success++
	}
	r.mu.Unlock()
}

// Value returns the ratio in [0,1]; it returns 1 when nothing was observed.
func (r *Ratio) Value() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return 1
	}
	return float64(r.success) / float64(r.total)
}

// Counts returns the raw success and total counts.
func (r *Ratio) Counts() (success, total uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.success, r.total
}

// SlidingRate tracks the fraction of successful outcomes over the most recent
// window observations. It is the primitive the loss-rate observer raplet uses
// to decide when to insert an FEC filter.
type SlidingRate struct {
	mu      sync.Mutex
	window  []bool
	size    int
	next    int
	filled  int
	success int
}

// NewSlidingRate returns a tracker over the last size observations. size must
// be positive.
func NewSlidingRate(size int) *SlidingRate {
	if size <= 0 {
		panic("metrics: sliding window size must be positive")
	}
	return &SlidingRate{window: make([]bool, size), size: size}
}

// Observe records one outcome.
func (s *SlidingRate) Observe(ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.filled == s.size {
		// Evict the observation being overwritten.
		if s.window[s.next] {
			s.success--
		}
	} else {
		s.filled++
	}
	s.window[s.next] = ok
	if ok {
		s.success++
	}
	s.next = (s.next + 1) % s.size
}

// Rate returns the success fraction over the window; 1 when empty.
func (s *SlidingRate) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.filled == 0 {
		return 1
	}
	return float64(s.success) / float64(s.filled)
}

// Observations returns how many samples are currently in the window.
func (s *SlidingRate) Observations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.filled
}

// Histogram collects duration samples and reports order statistics; it is
// used for jitter and filter-insertion latency measurements.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded samples, or 0
// when no samples exist.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Jitter returns the mean absolute difference between consecutive samples,
// the metric the paper's small FEC group sizes are chosen to minimize.
func (h *Histogram) Jitter() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) < 2 {
		return 0
	}
	var sum time.Duration
	for i := 1; i < len(h.samples); i++ {
		d := h.samples[i] - h.samples[i-1]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / time.Duration(len(h.samples)-1)
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s", h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
}
