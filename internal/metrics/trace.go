package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PacketOutcome records what happened to one sequence number at a receiver.
type PacketOutcome int

// Outcomes, from worst to best.
const (
	// OutcomeLost means the packet never arrived and was not reconstructed.
	OutcomeLost PacketOutcome = iota
	// OutcomeReconstructed means the packet was repaired by the FEC decoder.
	OutcomeReconstructed
	// OutcomeReceived means the packet arrived directly off the network.
	OutcomeReceived
)

// String returns the outcome name.
func (o PacketOutcome) String() string {
	switch o {
	case OutcomeLost:
		return "lost"
	case OutcomeReconstructed:
		return "reconstructed"
	case OutcomeReceived:
		return "received"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// TracePoint is one bucket of the Figure 7 series: for the window of packets
// ending at Seq, the fraction received raw and the fraction usable after
// reconstruction.
type TracePoint struct {
	Seq               uint64  // last sequence number in the window
	ReceivedRate      float64 // fraction received directly
	ReconstructedRate float64 // fraction received or reconstructed
}

// TraceRecorder records per-sequence outcomes at a receiver and produces the
// windowed series plotted in the paper's Figure 7. It is safe for concurrent
// use.
type TraceRecorder struct {
	mu       sync.Mutex
	outcomes map[uint64]PacketOutcome
	maxSeq   uint64
	haveMax  bool
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{outcomes: make(map[uint64]PacketOutcome)}
}

// Record notes the outcome for a sequence number. Better outcomes override
// worse ones (a packet first reconstructed and later received directly stays
// "received"), and outcomes never downgrade.
func (t *TraceRecorder) Record(seq uint64, outcome PacketOutcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.outcomes[seq]; !ok || outcome > cur {
		t.outcomes[seq] = outcome
	}
	if !t.haveMax || seq > t.maxSeq {
		t.maxSeq = seq
		t.haveMax = true
	}
}

// MarkSent records that a sequence number was transmitted, so that packets
// which never arrive still count against the rates. It never overrides a
// better outcome.
func (t *TraceRecorder) MarkSent(seq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.outcomes[seq]; !ok {
		t.outcomes[seq] = OutcomeLost
	}
	if !t.haveMax || seq > t.maxSeq {
		t.maxSeq = seq
		t.haveMax = true
	}
}

// Total returns the number of distinct sequence numbers tracked.
func (t *TraceRecorder) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.outcomes)
}

// Rates returns the overall received and reconstructed fractions, the two
// headline numbers of Figure 7 (the paper reports 98.54% and 99.98%).
func (t *TraceRecorder) Rates() (received, reconstructed float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.outcomes) == 0 {
		return 1, 1
	}
	var rx, usable int
	for _, o := range t.outcomes {
		if o == OutcomeReceived {
			rx++
		}
		if o >= OutcomeReconstructed {
			usable++
		}
	}
	n := float64(len(t.outcomes))
	return float64(rx) / n, float64(usable) / n
}

// Series produces the windowed trace: one TracePoint per window of windowSize
// consecutive sequence numbers, covering every sequence number seen.
func (t *TraceRecorder) Series(windowSize int) []TracePoint {
	if windowSize <= 0 {
		windowSize = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.outcomes) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(t.outcomes))
	for s := range t.outcomes {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	var points []TracePoint
	for start := 0; start < len(seqs); start += windowSize {
		end := start + windowSize
		if end > len(seqs) {
			end = len(seqs)
		}
		var rx, usable int
		for _, s := range seqs[start:end] {
			o := t.outcomes[s]
			if o == OutcomeReceived {
				rx++
			}
			if o >= OutcomeReconstructed {
				usable++
			}
		}
		n := float64(end - start)
		points = append(points, TracePoint{
			Seq:               seqs[end-1],
			ReceivedRate:      float64(rx) / n,
			ReconstructedRate: float64(usable) / n,
		})
	}
	return points
}

// FormatSeries renders the series as the two-column table the paper plots:
// sequence number, % received, % reconstructed.
func (t *TraceRecorder) FormatSeries(windowSize int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %-15s\n", "seq", "%received", "%reconstructed")
	for _, p := range t.Series(windowSize) {
		fmt.Fprintf(&b, "%-10d %-12.2f %-15.2f\n", p.Seq, p.ReceivedRate*100, p.ReconstructedRate*100)
	}
	rx, rc := t.Rates()
	fmt.Fprintf(&b, "overall    %-12.2f %-15.2f\n", rx*100, rc*100)
	return b.String()
}
