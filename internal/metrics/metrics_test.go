package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero value = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10_000 {
		t.Fatalf("Value = %d, want 10000", c.Value())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 1 {
		t.Fatalf("empty ratio = %v, want 1", r.Value())
	}
	for i := 0; i < 98; i++ {
		r.Observe(true)
	}
	r.Observe(false)
	r.Observe(false)
	if got := r.Value(); got != 0.98 {
		t.Fatalf("Value = %v, want 0.98", got)
	}
	s, total := r.Counts()
	if s != 98 || total != 100 {
		t.Fatalf("Counts = %d/%d", s, total)
	}
}

func TestSlidingRateWindowEviction(t *testing.T) {
	s := NewSlidingRate(4)
	if s.Rate() != 1 {
		t.Fatalf("empty rate = %v, want 1", s.Rate())
	}
	// Fill with failures, then successes push them out.
	for i := 0; i < 4; i++ {
		s.Observe(false)
	}
	if s.Rate() != 0 {
		t.Fatalf("all-false rate = %v, want 0", s.Rate())
	}
	for i := 0; i < 2; i++ {
		s.Observe(true)
	}
	if s.Rate() != 0.5 {
		t.Fatalf("rate = %v, want 0.5", s.Rate())
	}
	for i := 0; i < 2; i++ {
		s.Observe(true)
	}
	if s.Rate() != 1 {
		t.Fatalf("rate = %v, want 1 after full eviction", s.Rate())
	}
	if s.Observations() != 4 {
		t.Fatalf("Observations = %d, want 4", s.Observations())
	}
}

func TestSlidingRatePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive size")
		}
	}()
	NewSlidingRate(0)
}

func TestSlidingRateMatchesNaiveProperty(t *testing.T) {
	f := func(obs []bool) bool {
		const window = 8
		s := NewSlidingRate(window)
		for _, o := range obs {
			s.Observe(o)
		}
		// Naive recomputation over the last `window` observations.
		start := 0
		if len(obs) > window {
			start = len(obs) - window
		}
		tail := obs[start:]
		if len(tail) == 0 {
			return s.Rate() == 1
		}
		succ := 0
		for _, o := range tail {
			if o {
				succ++
			}
		}
		want := float64(succ) / float64(len(tail))
		return s.Rate() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Jitter() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", got)
	}
	if got := h.Quantile(0); got != time.Millisecond {
		t.Fatalf("min = %v, want 1ms", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", got)
	}
	if got := h.Jitter(); got != time.Millisecond {
		t.Fatalf("jitter = %v, want 1ms", got)
	}
	if h.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPacketOutcomeString(t *testing.T) {
	if OutcomeLost.String() != "lost" || OutcomeReceived.String() != "received" ||
		OutcomeReconstructed.String() != "reconstructed" {
		t.Fatal("outcome names wrong")
	}
	if PacketOutcome(9).String() == "" {
		t.Fatal("unknown outcome should still format")
	}
}

func TestTraceRecorderRates(t *testing.T) {
	tr := NewTraceRecorder()
	rx, rc := tr.Rates()
	if rx != 1 || rc != 1 {
		t.Fatalf("empty rates = %v, %v", rx, rc)
	}
	// 100 packets: 90 received, 8 reconstructed, 2 lost.
	for i := 0; i < 100; i++ {
		tr.MarkSent(uint64(i))
	}
	for i := 0; i < 90; i++ {
		tr.Record(uint64(i), OutcomeReceived)
	}
	for i := 90; i < 98; i++ {
		tr.Record(uint64(i), OutcomeReconstructed)
	}
	rx, rc = tr.Rates()
	if rx != 0.90 {
		t.Fatalf("received rate = %v, want 0.90", rx)
	}
	if rc != 0.98 {
		t.Fatalf("reconstructed rate = %v, want 0.98", rc)
	}
	if tr.Total() != 100 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestTraceRecorderNeverDowngrades(t *testing.T) {
	tr := NewTraceRecorder()
	tr.Record(5, OutcomeReceived)
	tr.Record(5, OutcomeReconstructed) // worse; must not downgrade
	tr.MarkSent(5)                     // must not downgrade either
	rx, _ := tr.Rates()
	if rx != 1 {
		t.Fatalf("received rate = %v, want 1", rx)
	}
}

func TestTraceRecorderSeries(t *testing.T) {
	tr := NewTraceRecorder()
	// Two windows of 10: first all received, second half lost.
	for i := 0; i < 10; i++ {
		tr.Record(uint64(i), OutcomeReceived)
	}
	for i := 10; i < 20; i++ {
		if i%2 == 0 {
			tr.Record(uint64(i), OutcomeReceived)
		} else {
			tr.MarkSent(uint64(i))
		}
	}
	series := tr.Series(10)
	if len(series) != 2 {
		t.Fatalf("len(series) = %d, want 2", len(series))
	}
	if series[0].ReceivedRate != 1 || series[0].ReconstructedRate != 1 {
		t.Fatalf("window 0 = %+v", series[0])
	}
	if series[1].ReceivedRate != 0.5 {
		t.Fatalf("window 1 received = %v, want 0.5", series[1].ReceivedRate)
	}
	if series[1].Seq != 19 {
		t.Fatalf("window 1 seq = %d, want 19", series[1].Seq)
	}
	if tr.Series(0) == nil {
		t.Fatal("windowSize 0 should clamp, not return nil")
	}
	if NewTraceRecorder().Series(5) != nil {
		t.Fatal("empty recorder should return nil series")
	}
}

func TestTraceRecorderFormatSeries(t *testing.T) {
	tr := NewTraceRecorder()
	for i := 0; i < 5; i++ {
		tr.Record(uint64(i), OutcomeReceived)
	}
	out := tr.FormatSeries(5)
	if out == "" || len(out) < 20 {
		t.Fatalf("FormatSeries output too short: %q", out)
	}
}
