// Package endpoint provides the EndPoint stages from the paper: special
// filters that move data between the proxy's internal detachable streams and
// the outside world (network sockets, files, or any io.Reader/io.Writer).
// Each endpoint runs its own pump goroutine, so two endpoints plus an empty
// chain form the paper's "null proxy" that simply forwards data.
package endpoint

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// Reader is an input endpoint: it pumps bytes from an external source into
// the chain through its Out() stream. Its In() stream is unused.
type Reader struct {
	*filter.Base
	src    io.Reader
	closer io.Closer
}

// NewReader returns an input endpoint named name reading from src. If src
// also implements io.Closer it is closed when the endpoint stops.
func NewReader(name string, src io.Reader) *Reader {
	if name == "" {
		name = "endpoint-reader"
	}
	r := &Reader{src: src}
	if c, ok := src.(io.Closer); ok {
		r.closer = c
	}
	r.Base = filter.New(name, func(_ io.Reader, w io.Writer) error {
		_, err := io.Copy(w, src)
		return err
	})
	return r
}

// Stop stops the pump and closes the underlying source when it is closable.
// Closing the source first unblocks a pump stuck in a network Read.
func (r *Reader) Stop() error {
	var closeErr error
	if r.closer != nil {
		if err := r.closer.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			closeErr = err
		}
	}
	if err := r.Base.Stop(); err != nil {
		return err
	}
	return closeErr
}

// Writer is an output endpoint: it pumps bytes from the chain (its In()
// stream) to an external destination. Its Out() stream is unused.
type Writer struct {
	*filter.Base
	dst    io.Writer
	closer io.Closer
}

// NewWriter returns an output endpoint named name writing to dst. If dst also
// implements io.Closer it is closed when the pump finishes.
func NewWriter(name string, dst io.Writer) *Writer {
	if name == "" {
		name = "endpoint-writer"
	}
	w := &Writer{dst: dst}
	if c, ok := dst.(io.Closer); ok {
		w.closer = c
	}
	w.Base = filter.New(name, func(r io.Reader, _ io.Writer) error {
		_, err := io.Copy(dst, r)
		if w.closer != nil {
			if cerr := w.closer.Close(); cerr != nil && err == nil && !errors.Is(cerr, net.ErrClosed) {
				err = cerr
			}
		}
		return err
	})
	return w
}

// Stop stops the pump and closes the underlying destination when closable.
func (w *Writer) Stop() error {
	err := w.Base.Stop()
	if w.closer != nil {
		if cerr := w.closer.Close(); cerr != nil && err == nil && !errors.Is(cerr, net.ErrClosed) {
			err = cerr
		}
	}
	return err
}

// DialTCP connects to addr and returns an input endpoint reading from the
// connection and an output endpoint writing to it, named after the address.
func DialTCP(addr string, timeout time.Duration) (*Reader, *Writer, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, fmt.Errorf("endpoint: dial %s: %w", addr, err)
	}
	return NewReader("tcp-in:"+addr, conn), NewWriter("tcp-out:"+addr, conn), nil
}

// Pair wraps a single bidirectional connection as one input and one output
// endpoint sharing the connection.
func Pair(name string, conn io.ReadWriteCloser) (*Reader, *Writer) {
	return NewReader(name+":in", conn), NewWriter(name+":out", conn)
}

// PacketSource is an input endpoint that frames packets produced by a
// generator function onto the chain. next is called repeatedly; returning
// io.EOF ends the stream cleanly. It is used by workload generators and the
// wireless simulator.
type PacketSource struct {
	*filter.Base
}

// NewPacketSource returns an input endpoint emitting framed packets from next.
func NewPacketSource(name string, next func() (*packet.Packet, error)) *PacketSource {
	if name == "" {
		name = "packet-source"
	}
	ps := &PacketSource{}
	ps.Base = filter.New(name, func(_ io.Reader, w io.Writer) error {
		pw := packet.NewWriter(w)
		for {
			p, err := next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			if err := pw.WritePacket(p); err != nil {
				return err
			}
		}
	})
	return ps
}

// PacketSink is an output endpoint that parses framed packets from the chain
// and hands each one to a callback, used by receivers and by measurement
// collectors in the experiments.
type PacketSink struct {
	*filter.Base

	mu       sync.Mutex
	received uint64
}

// NewPacketSink returns an output endpoint delivering each packet to handle.
// A nil handle simply counts packets.
func NewPacketSink(name string, handle func(*packet.Packet) error) *PacketSink {
	if name == "" {
		name = "packet-sink"
	}
	ps := &PacketSink{}
	ps.Base = filter.New(name, func(r io.Reader, _ io.Writer) error {
		pr := packet.NewReader(r)
		for {
			p, err := pr.ReadPacket()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			ps.mu.Lock()
			ps.received++
			ps.mu.Unlock()
			if handle != nil {
				if herr := handle(p); herr != nil {
					return herr
				}
			}
		}
	})
	return ps
}

// Received returns the number of packets delivered so far.
func (ps *PacketSink) Received() uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.received
}

// Interface compliance.
var (
	_ filter.Filter = (*Reader)(nil)
	_ filter.Filter = (*Writer)(nil)
	_ filter.Filter = (*PacketSource)(nil)
	_ filter.Filter = (*PacketSink)(nil)
)
