package endpoint

import (
	"errors"
	"io"
	"sync/atomic"

	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// UDPSource is the input endpoint of an engine session: it pulls pooled
// frames from a receive function (typically the engine's per-session inbound
// queue) and writes each frame into the chain with a single Write call, so
// live filter splices always land on frame boundaries. The frame passed in
// must already have its session-ID prefix stripped.
type UDPSource struct {
	*filter.Base
	received atomic.Uint64
}

// NewUDPSource returns an input endpoint fed by recv. recv blocks until a
// frame is available and returns io.EOF to end the stream cleanly; the source
// releases each Buf after copying it into the chain.
func NewUDPSource(name string, recv func() (*packet.Buf, error)) *UDPSource {
	return NewUDPSourceOffset(name, 0, recv)
}

// NewUDPSourceOffset is NewUDPSource for buffers carrying a fixed prefix that
// is not part of the frame: only b.B[offset:] is written into the chain. The
// engine's cohort tails are fed shared trunk buffers whose first bytes are
// the trunk's session-ID stamp; the shared buffer is never re-sliced (sibling
// cohorts read it concurrently), so the trim happens here at the stream
// boundary. Buffers shorter than offset are skipped and released.
func NewUDPSourceOffset(name string, offset int, recv func() (*packet.Buf, error)) *UDPSource {
	if name == "" {
		name = "udp-source"
	}
	if offset < 0 {
		offset = 0
	}
	us := &UDPSource{}
	us.Base = filter.New(name, func(_ io.Reader, w io.Writer) error {
		for {
			b, err := recv()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			if len(b.B) < offset {
				b.Release()
				continue
			}
			_, werr := w.Write(b.B[offset:])
			b.Release()
			if werr != nil {
				return werr
			}
			us.received.Add(1)
		}
	})
	return us
}

// Received returns the number of frames pumped into the chain.
func (us *UDPSource) Received() uint64 { return us.received.Load() }

// UDPSink is the output endpoint of an engine session: it reads framed
// packets off the chain without decoding them and hands each raw frame to a
// send function as a pooled Buf with headroom bytes reserved at the front
// (for the engine to prepend the session ID). send owns the Buf and must
// Release it.
type UDPSink struct {
	*filter.Base
	sent atomic.Uint64
}

// NewUDPSink returns an output endpoint delivering raw frames to send.
func NewUDPSink(name string, headroom int, send func(*packet.Buf) error) *UDPSink {
	if name == "" {
		name = "udp-sink"
	}
	if headroom < 0 {
		headroom = 0
	}
	us := &UDPSink{}
	us.Base = filter.New(name, func(r io.Reader, _ io.Writer) error {
		pr := packet.NewReader(r)
		for {
			b, err := pr.ReadFrameBuf(headroom)
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			if serr := send(b); serr != nil {
				return serr
			}
			us.sent.Add(1)
		}
	})
	return us
}

// Sent returns the number of frames handed to the send function.
func (us *UDPSink) Sent() uint64 { return us.sent.Load() }

// Interface compliance.
var (
	_ filter.Filter = (*UDPSource)(nil)
	_ filter.Filter = (*UDPSink)(nil)
)
