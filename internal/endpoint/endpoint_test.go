package endpoint

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"rapidware/internal/filter"
	"rapidware/internal/packet"
	"rapidware/internal/stream"
)

// closeRecorder wraps a buffer and records whether Close was called.
type closeRecorder struct {
	bytes.Buffer
	mu     sync.Mutex
	closed bool
}

func (c *closeRecorder) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *closeRecorder) wasClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func TestReaderPumpsSourceIntoChain(t *testing.T) {
	payload := bytes.Repeat([]byte("wired data "), 500)
	in := NewReader("", bytes.NewReader(payload))
	dst := stream.NewDetachableReader()
	if err := stream.Connect(in.Out(), dst); err != nil {
		t.Fatal(err)
	}
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reader endpoint corrupted data")
	}
	if err := in.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterPumpsChainToDestination(t *testing.T) {
	dst := &closeRecorder{}
	out := NewWriter("", dst)
	src := stream.NewDetachableWriter()
	if err := stream.Connect(src, out.In()); err != nil {
		t.Fatal(err)
	}
	if err := out.Start(); err != nil {
		t.Fatal(err)
	}
	payload := []byte("to the wireless side")
	src.Write(payload)
	src.Close()
	out.Wait()
	if got := dst.String(); got != string(payload) {
		t.Fatalf("destination got %q, want %q", got, payload)
	}
	if !dst.wasClosed() {
		t.Fatal("closable destination was not closed at EOF")
	}
	if err := out.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultNames(t *testing.T) {
	if NewReader("", bytes.NewReader(nil)).Name() != "endpoint-reader" {
		t.Fatal("default reader name wrong")
	}
	if NewWriter("", io.Discard).Name() != "endpoint-writer" {
		t.Fatal("default writer name wrong")
	}
	if NewPacketSource("", nil).Name() != "packet-source" {
		t.Fatal("default packet source name wrong")
	}
	if NewPacketSink("", nil).Name() != "packet-sink" {
		t.Fatal("default packet sink name wrong")
	}
}

func TestNullProxyOverTCP(t *testing.T) {
	// The paper's "null proxy": data entering on one socket leaves unchanged
	// on another. Build it from two endpoints and an empty chain over real
	// loopback TCP connections.
	upstreamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer upstreamLn.Close()
	downstreamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer downstreamLn.Close()

	// Downstream consumer.
	type result struct {
		data []byte
		err  error
	}
	consumed := make(chan result, 1)
	go func() {
		conn, err := downstreamLn.Accept()
		if err != nil {
			consumed <- result{nil, err}
			return
		}
		defer conn.Close()
		data, err := io.ReadAll(conn)
		consumed <- result{data, err}
	}()

	// The proxy: accept from upstream listener, dial the downstream address.
	proxyReady := make(chan *filter.Chain, 1)
	go func() {
		conn, err := upstreamLn.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		inEP := NewReader("in", conn)
		outConn, err := net.Dial("tcp", downstreamLn.Addr().String())
		if err != nil {
			t.Errorf("dial downstream: %v", err)
			return
		}
		outEP := NewWriter("out", outConn)
		chain := filter.NewChain("null-proxy")
		chain.Append(inEP)
		chain.Append(outEP)
		if err := chain.Start(); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		proxyReady <- chain
	}()

	// Upstream producer.
	payload := bytes.Repeat([]byte{0x5a, 0xa5, 0x00, 0xff}, 8192)
	upConn, err := net.Dial("tcp", upstreamLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := upConn.Write(payload); err != nil {
		t.Fatal(err)
	}
	upConn.Close()

	select {
	case res := <-consumed:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if !bytes.Equal(res.data, payload) {
			t.Fatalf("null proxy corrupted data: got %d bytes, want %d", len(res.data), len(payload))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("downstream never received the payload")
	}
	chain := <-proxyReady
	chain.Stop()
}

func TestDialTCPFailure(t *testing.T) {
	if _, _, err := DialTCP("127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Fatal("expected dial error for closed port")
	}
}

func TestPairSharesConnection(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	in, out := Pair("pipe", client)
	if in.Name() != "pipe:in" || out.Name() != "pipe:out" {
		t.Fatalf("names = %q, %q", in.Name(), out.Name())
	}
}

func TestPacketSourceAndSink(t *testing.T) {
	const total = 50
	i := 0
	src := NewPacketSource("gen", func() (*packet.Packet, error) {
		if i >= total {
			return nil, io.EOF
		}
		p := &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}}
		i++
		return p, nil
	})
	var mu sync.Mutex
	var seqs []uint64
	sink := NewPacketSink("collect", func(p *packet.Packet) error {
		mu.Lock()
		defer mu.Unlock()
		seqs = append(seqs, p.Seq)
		return nil
	})
	chain := filter.NewChain("pkt")
	chain.Append(src)
	chain.Append(sink)
	if err := chain.Start(); err != nil {
		t.Fatal(err)
	}
	sink.Wait()
	chain.Stop()
	if sink.Received() != total {
		t.Fatalf("Received = %d, want %d", sink.Received(), total)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("packet %d has seq %d (reordered)", i, s)
		}
	}
}

func TestPacketSourcePropagatesGeneratorError(t *testing.T) {
	boom := errors.New("generator failed")
	src := NewPacketSource("gen", func() (*packet.Packet, error) { return nil, boom })
	dst := stream.NewDetachableReader()
	stream.Connect(src.Out(), dst)
	src.Start()
	src.Wait()
	if !errors.Is(src.Err(), boom) {
		t.Fatalf("Err = %v, want boom", src.Err())
	}
}

func TestPacketSinkHandlerErrorStopsPump(t *testing.T) {
	boom := errors.New("handler failed")
	sink := NewPacketSink("s", func(*packet.Packet) error { return boom })
	src := stream.NewDetachableWriter()
	stream.Connect(src, sink.In())
	sink.Start()
	pw := packet.NewWriter(src)
	pw.WritePacket(&packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("x")})
	sink.Wait()
	if !errors.Is(sink.Err(), boom) {
		t.Fatalf("Err = %v, want boom", sink.Err())
	}
	src.Close()
}

func TestPacketSinkNilHandlerCounts(t *testing.T) {
	sink := NewPacketSink("count-only", nil)
	src := stream.NewDetachableWriter()
	stream.Connect(src, sink.In())
	sink.Start()
	pw := packet.NewWriter(src)
	for i := 0; i < 7; i++ {
		pw.WritePacket(&packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte("x")})
	}
	src.Close()
	sink.Wait()
	if sink.Received() != 7 {
		t.Fatalf("Received = %d, want 7", sink.Received())
	}
}
