// Package transcode provides the content-adaptation filters the paper lists
// among a proxy's duties: reducing the bandwidth of a stream before it is
// forwarded to a resource-limited mobile host. Audio transcoders operate on
// the paper's PCM packets (downsampling, stereo-to-mono mixdown, bit-depth
// reduction) and a general-purpose DEFLATE filter pair compresses arbitrary
// payloads such as web content.
package transcode

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"rapidware/internal/audio"
	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// DownsamplePCM reduces the sample rate of interleaved PCM data by keeping
// one frame in every factor frames. It returns the downsampled data and the
// resulting format.
func DownsamplePCM(f audio.Format, pcm []byte, factor int) ([]byte, audio.Format, error) {
	if err := f.Validate(); err != nil {
		return nil, audio.Format{}, err
	}
	if factor <= 0 {
		return nil, audio.Format{}, fmt.Errorf("transcode: invalid downsample factor %d", factor)
	}
	if factor == 1 {
		return append([]byte(nil), pcm...), f, nil
	}
	frame := f.BytesPerFrame()
	out := make([]byte, 0, len(pcm)/factor+frame)
	for off := 0; off+frame <= len(pcm); off += frame * factor {
		out = append(out, pcm[off:off+frame]...)
	}
	nf := f
	nf.SampleRate = f.SampleRate / factor
	return out, nf, nil
}

// StereoToMono mixes interleaved multi-channel PCM down to a single channel
// by averaging the channels of each frame.
func StereoToMono(f audio.Format, pcm []byte) ([]byte, audio.Format, error) {
	if err := f.Validate(); err != nil {
		return nil, audio.Format{}, err
	}
	if f.Channels == 1 {
		return append([]byte(nil), pcm...), f, nil
	}
	if f.BitsPerSample != 8 {
		return nil, audio.Format{}, fmt.Errorf("transcode: stereo-to-mono supports 8-bit PCM, got %d-bit", f.BitsPerSample)
	}
	frame := f.BytesPerFrame()
	out := make([]byte, 0, len(pcm)/f.Channels+1)
	for off := 0; off+frame <= len(pcm); off += frame {
		sum := 0
		for c := 0; c < f.Channels; c++ {
			sum += int(pcm[off+c])
		}
		out = append(out, byte(sum/f.Channels))
	}
	nf := f
	nf.Channels = 1
	return out, nf, nil
}

// ReduceBitDepth converts 16-bit signed little-endian PCM to 8-bit unsigned.
func ReduceBitDepth(f audio.Format, pcm []byte) ([]byte, audio.Format, error) {
	if err := f.Validate(); err != nil {
		return nil, audio.Format{}, err
	}
	if f.BitsPerSample == 8 {
		return append([]byte(nil), pcm...), f, nil
	}
	out := make([]byte, 0, len(pcm)/2)
	for off := 0; off+1 < len(pcm); off += 2 {
		s := int16(uint16(pcm[off]) | uint16(pcm[off+1])<<8)
		out = append(out, byte(int(s)>>8+128))
	}
	nf := f
	nf.BitsPerSample = 8
	return out, nf, nil
}

// NewDownsampleFilter returns a packet filter that downsamples every audio
// payload by factor. It preserves packet boundaries so each output packet
// still carries the same time interval of audio as its input.
func NewDownsampleFilter(name string, f audio.Format, factor int) (filter.Filter, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if factor <= 0 {
		return nil, fmt.Errorf("transcode: invalid downsample factor %d", factor)
	}
	if name == "" {
		name = fmt.Sprintf("downsample-x%d", factor)
	}
	return filter.NewPacketFunc(name, func(p *packet.Packet) ([]*packet.Packet, error) {
		if p.Kind != packet.KindData {
			return []*packet.Packet{p}, nil
		}
		down, _, err := DownsamplePCM(f, p.Payload, factor)
		if err != nil {
			return nil, err
		}
		out := p.Clone()
		out.Payload = down
		return []*packet.Packet{out}, nil
	}, nil), nil
}

// NewMonoFilter returns a packet filter that mixes stereo payloads to mono.
func NewMonoFilter(name string, f audio.Format) (filter.Filter, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		name = "stereo-to-mono"
	}
	return filter.NewPacketFunc(name, func(p *packet.Packet) ([]*packet.Packet, error) {
		if p.Kind != packet.KindData {
			return []*packet.Packet{p}, nil
		}
		mono, _, err := StereoToMono(f, p.Payload)
		if err != nil {
			return nil, err
		}
		out := p.Clone()
		out.Payload = mono
		return []*packet.Packet{out}, nil
	}, nil), nil
}

// NewThinningFilter returns a packet filter that forwards one data packet in
// every keepOneIn and drops the rest — the paper's media-thinning fidelity
// reduction for receivers whose link (or battery) cannot carry the full
// stream. Non-data packets (parity, control, feedback) always pass so repair
// and signalling survive thinning. keepOneIn == 1 forwards everything.
func NewThinningFilter(name string, keepOneIn int) (filter.Filter, error) {
	if keepOneIn <= 0 {
		return nil, fmt.Errorf("transcode: invalid thinning factor %d", keepOneIn)
	}
	if name == "" {
		name = fmt.Sprintf("thin-1in%d", keepOneIn)
	}
	seen := 0
	return filter.NewPacketFunc(name, func(p *packet.Packet) ([]*packet.Packet, error) {
		if p.Kind != packet.KindData || keepOneIn == 1 {
			return []*packet.Packet{p}, nil
		}
		seen++
		if (seen-1)%keepOneIn == 0 {
			return []*packet.Packet{p}, nil
		}
		return nil, nil
	}, nil), nil
}

// NewCompressFilter returns a packet filter that DEFLATE-compresses payloads.
// level follows compress/flate (1 fastest .. 9 best, -1 default).
func NewCompressFilter(name string, level int) (filter.Filter, error) {
	if name == "" {
		name = "compress"
	}
	// Validate the level eagerly so misconfiguration fails at build time, not
	// on the first packet.
	if _, err := flate.NewWriter(io.Discard, level); err != nil {
		return nil, fmt.Errorf("transcode: %w", err)
	}
	return filter.NewPacketFunc(name, func(p *packet.Packet) ([]*packet.Packet, error) {
		if p.Kind != packet.KindData || len(p.Payload) == 0 {
			return []*packet.Packet{p}, nil
		}
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, level)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(p.Payload); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		out := p.Clone()
		out.Payload = buf.Bytes()
		return []*packet.Packet{out}, nil
	}, nil), nil
}

// NewDecompressFilter returns the inverse of NewCompressFilter.
func NewDecompressFilter(name string) filter.Filter {
	if name == "" {
		name = "decompress"
	}
	return filter.NewPacketFunc(name, func(p *packet.Packet) ([]*packet.Packet, error) {
		if p.Kind != packet.KindData || len(p.Payload) == 0 {
			return []*packet.Packet{p}, nil
		}
		r := flate.NewReader(bytes.NewReader(p.Payload))
		defer r.Close()
		raw, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("transcode: decompress: %w", err)
		}
		out := p.Clone()
		out.Payload = raw
		return []*packet.Packet{out}, nil
	}, nil)
}

// RegisterKinds adds the transcoding filter kinds to a registry so they can
// be instantiated through the control protocol: "downsample" (param
// "factor"), "mono", "thin" (param "factor"), "compress" (param "level"),
// "decompress".
func RegisterKinds(r *filter.Registry, f audio.Format) error {
	if err := r.Register("downsample", func(s filter.Spec) (filter.Filter, error) {
		factor := 2
		if v, ok := s.Params["factor"]; ok {
			if _, err := fmt.Sscanf(v, "%d", &factor); err != nil {
				return nil, fmt.Errorf("transcode: bad factor %q: %w", v, err)
			}
		}
		return NewDownsampleFilter(s.Name, f, factor)
	}); err != nil {
		return err
	}
	if err := r.Register("mono", func(s filter.Spec) (filter.Filter, error) {
		return NewMonoFilter(s.Name, f)
	}); err != nil {
		return err
	}
	if err := r.Register("thin", func(s filter.Spec) (filter.Filter, error) {
		keep := 2
		if v, ok := s.Params["factor"]; ok {
			if _, err := fmt.Sscanf(v, "%d", &keep); err != nil {
				return nil, fmt.Errorf("transcode: bad factor %q: %w", v, err)
			}
		}
		return NewThinningFilter(s.Name, keep)
	}); err != nil {
		return err
	}
	if err := r.Register("compress", func(s filter.Spec) (filter.Filter, error) {
		level := flate.DefaultCompression
		if v, ok := s.Params["level"]; ok {
			if _, err := fmt.Sscanf(v, "%d", &level); err != nil {
				return nil, fmt.Errorf("transcode: bad level %q: %w", v, err)
			}
		}
		return NewCompressFilter(s.Name, level)
	}); err != nil {
		return err
	}
	return r.Register("decompress", func(s filter.Spec) (filter.Filter, error) {
		return NewDecompressFilter(s.Name), nil
	})
}
