package transcode

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"rapidware/internal/audio"
	"rapidware/internal/endpoint"
	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

func TestDownsamplePCM(t *testing.T) {
	f := audio.PaperFormat()
	pcm, _ := audio.GenerateTone(f, 440, 100*time.Millisecond)
	down, nf, err := DownsamplePCM(f, pcm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nf.SampleRate != 4000 {
		t.Fatalf("new rate = %d", nf.SampleRate)
	}
	if len(down) != len(pcm)/2 {
		t.Fatalf("len = %d, want %d", len(down), len(pcm)/2)
	}
	// Factor 1 copies.
	same, _, err := DownsamplePCM(f, pcm, 1)
	if err != nil || !bytes.Equal(same, pcm) {
		t.Fatal("factor 1 should copy unchanged")
	}
	if _, _, err := DownsamplePCM(f, pcm, 0); err == nil {
		t.Fatal("expected error for factor 0")
	}
	if _, _, err := DownsamplePCM(audio.Format{}, pcm, 2); err == nil {
		t.Fatal("expected error for bad format")
	}
}

func TestStereoToMono(t *testing.T) {
	f := audio.PaperFormat()
	// Left channel 100, right channel 200 -> mono 150.
	pcm := []byte{100, 200, 100, 200, 100, 200}
	mono, nf, err := StereoToMono(f, pcm)
	if err != nil {
		t.Fatal(err)
	}
	if nf.Channels != 1 {
		t.Fatalf("channels = %d", nf.Channels)
	}
	want := []byte{150, 150, 150}
	if !bytes.Equal(mono, want) {
		t.Fatalf("mono = %v, want %v", mono, want)
	}
	// Already mono copies.
	monoFmt := audio.Format{SampleRate: 8000, Channels: 1, BitsPerSample: 8}
	same, _, err := StereoToMono(monoFmt, []byte{1, 2, 3})
	if err != nil || !bytes.Equal(same, []byte{1, 2, 3}) {
		t.Fatal("mono input should copy unchanged")
	}
	// 16-bit unsupported.
	if _, _, err := StereoToMono(audio.Format{SampleRate: 8000, Channels: 2, BitsPerSample: 16}, pcm); err == nil {
		t.Fatal("expected error for 16-bit input")
	}
}

func TestReduceBitDepth(t *testing.T) {
	f16 := audio.Format{SampleRate: 8000, Channels: 1, BitsPerSample: 16}
	pcm16, _ := audio.GenerateTone(f16, 440, 50*time.Millisecond)
	out, nf, err := ReduceBitDepth(f16, pcm16)
	if err != nil {
		t.Fatal(err)
	}
	if nf.BitsPerSample != 8 || len(out) != len(pcm16)/2 {
		t.Fatalf("reduced = %d bytes %d-bit", len(out), nf.BitsPerSample)
	}
	f8 := audio.PaperFormat()
	same, _, err := ReduceBitDepth(f8, []byte{1, 2})
	if err != nil || !bytes.Equal(same, []byte{1, 2}) {
		t.Fatal("8-bit input should copy unchanged")
	}
	if _, _, err := ReduceBitDepth(audio.Format{}, nil); err == nil {
		t.Fatal("expected error for bad format")
	}
}

// runPacketFilter pushes packets through a single filter and collects output.
func runPacketFilter(t *testing.T, f filter.Filter, in []*packet.Packet) []*packet.Packet {
	t.Helper()
	i := 0
	src := endpoint.NewPacketSource("src", func() (*packet.Packet, error) {
		if i >= len(in) {
			return nil, io.EOF
		}
		p := in[i]
		i++
		return p, nil
	})
	var mu sync.Mutex
	var out []*packet.Packet
	sink := endpoint.NewPacketSink("sink", func(p *packet.Packet) error {
		mu.Lock()
		out = append(out, p)
		mu.Unlock()
		return nil
	})
	c := filter.NewChain("t")
	c.Append(src)
	c.Append(f)
	c.Append(sink)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	sink.Wait()
	c.Stop()
	mu.Lock()
	defer mu.Unlock()
	return out
}

func TestDownsampleFilter(t *testing.T) {
	f := audio.PaperFormat()
	df, err := NewDownsampleFilter("", f, 2)
	if err != nil {
		t.Fatal(err)
	}
	pcm, _ := audio.GenerateTone(f, 440, 20*time.Millisecond)
	in := []*packet.Packet{
		{Seq: 0, Kind: packet.KindData, Payload: pcm},
		{Seq: 1, Kind: packet.KindControl, Payload: []byte("marker")},
	}
	out := runPacketFilter(t, df, in)
	if len(out) != 2 {
		t.Fatalf("out = %d packets", len(out))
	}
	if len(out[0].Payload) != len(pcm)/2 {
		t.Fatalf("downsampled payload = %d bytes, want %d", len(out[0].Payload), len(pcm)/2)
	}
	if string(out[1].Payload) != "marker" {
		t.Fatal("control packet modified")
	}
	if _, err := NewDownsampleFilter("", f, 0); err == nil {
		t.Fatal("expected error for bad factor")
	}
	if _, err := NewDownsampleFilter("", audio.Format{}, 2); err == nil {
		t.Fatal("expected error for bad format")
	}
}

func TestMonoFilter(t *testing.T) {
	f := audio.PaperFormat()
	mf, err := NewMonoFilter("", f)
	if err != nil {
		t.Fatal(err)
	}
	in := []*packet.Packet{{Seq: 0, Kind: packet.KindData, Payload: []byte{10, 20, 30, 40}}}
	out := runPacketFilter(t, mf, in)
	if len(out) != 1 || !bytes.Equal(out[0].Payload, []byte{15, 35}) {
		t.Fatalf("mono filter output = %v", out)
	}
	if _, err := NewMonoFilter("", audio.Format{}); err == nil {
		t.Fatal("expected error for bad format")
	}
}

func TestThinningFilter(t *testing.T) {
	tf, err := NewThinningFilter("", 3)
	if err != nil {
		t.Fatal(err)
	}
	var in []*packet.Packet
	for i := 0; i < 9; i++ {
		in = append(in, &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}})
	}
	// Parity and control packets must survive thinning regardless of position.
	in = append(in, &packet.Packet{Seq: 100, Kind: packet.KindParity, K: 4, N: 6, Payload: []byte("p")})
	out := runPacketFilter(t, tf, in)
	if len(out) != 4 {
		t.Fatalf("thinned to %d packets, want 4 (3 data + parity)", len(out))
	}
	for i, wantSeq := range []uint64{0, 3, 6, 100} {
		if out[i].Seq != wantSeq {
			t.Fatalf("out[%d].Seq = %d, want %d", i, out[i].Seq, wantSeq)
		}
	}

	// Factor 1 forwards everything.
	all, err := NewThinningFilter("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := runPacketFilter(t, all, in); len(out) != len(in) {
		t.Fatalf("factor 1 thinned %d to %d packets", len(in), len(out))
	}
	if _, err := NewThinningFilter("", 0); err == nil {
		t.Fatal("expected error for factor 0")
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	cf, err := NewCompressFilter("", 6)
	if err != nil {
		t.Fatal(err)
	}
	df := NewDecompressFilter("")
	payload := bytes.Repeat([]byte("compressible content "), 200)
	in := []*packet.Packet{
		{Seq: 0, Kind: packet.KindData, Payload: payload},
		{Seq: 1, Kind: packet.KindData, Payload: nil},
	}
	compressed := runPacketFilter(t, cf, in)
	if len(compressed) != 2 {
		t.Fatalf("compressed = %d packets", len(compressed))
	}
	if len(compressed[0].Payload) >= len(payload) {
		t.Fatalf("compression did not shrink payload: %d >= %d", len(compressed[0].Payload), len(payload))
	}
	restored := runPacketFilter(t, df, compressed)
	if !bytes.Equal(restored[0].Payload, payload) {
		t.Fatal("round trip corrupted payload")
	}
	if _, err := NewCompressFilter("", 99); err == nil {
		t.Fatal("expected error for invalid compression level")
	}
}

func TestCompressionPipelineEndToEnd(t *testing.T) {
	// compress -> decompress chained in one pipeline.
	cf, _ := NewCompressFilter("c", 1)
	df := NewDecompressFilter("d")
	payload := bytes.Repeat([]byte("pavilion web object "), 500)
	in := []*packet.Packet{{Seq: 0, Kind: packet.KindData, Payload: payload}}
	i := 0
	src := endpoint.NewPacketSource("src", func() (*packet.Packet, error) {
		if i >= len(in) {
			return nil, io.EOF
		}
		p := in[i]
		i++
		return p, nil
	})
	var mu sync.Mutex
	var out []*packet.Packet
	sink := endpoint.NewPacketSink("sink", func(p *packet.Packet) error {
		mu.Lock()
		out = append(out, p)
		mu.Unlock()
		return nil
	})
	c := filter.NewChain("zip")
	for _, f := range []filter.Filter{src, cf, df, sink} {
		c.Append(f)
	}
	c.Start()
	sink.Wait()
	c.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(out) != 1 || !bytes.Equal(out[0].Payload, payload) {
		t.Fatal("compress/decompress pipeline corrupted data")
	}
}

func TestRegisterKinds(t *testing.T) {
	r := filter.NewRegistry()
	if err := RegisterKinds(r, audio.PaperFormat()); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"downsample", "mono", "thin", "compress", "decompress"} {
		if _, err := r.Build(filter.Spec{Kind: k}); err != nil {
			t.Fatalf("Build(%q): %v", k, err)
		}
	}
	if _, err := r.Build(filter.Spec{Kind: "thin", Params: map[string]string{"factor": "x"}}); err == nil {
		t.Fatal("expected error for bad thin factor param")
	}
	if _, err := r.Build(filter.Spec{Kind: "downsample", Params: map[string]string{"factor": "4"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Build(filter.Spec{Kind: "downsample", Params: map[string]string{"factor": "x"}}); err == nil {
		t.Fatal("expected error for bad factor param")
	}
	if _, err := r.Build(filter.Spec{Kind: "compress", Params: map[string]string{"level": "x"}}); err == nil {
		t.Fatal("expected error for bad level param")
	}
	// Registering twice fails cleanly.
	if err := RegisterKinds(r, audio.PaperFormat()); err == nil {
		t.Fatal("expected duplicate registration error")
	}
}
