package engine

import (
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"sync/atomic"
	"time"

	"rapidware/internal/metrics"
	"rapidware/internal/packet"
)

// Shard-runtime tuning constants.
const (
	// writeBatch is the maximum number of pending datagrams one shard writer
	// drains per flush. Collecting a batch before touching the socket
	// amortizes the writer's wakeups under load while a mostly idle shard
	// still sends each datagram immediately.
	writeBatch = 32
	// writeQueueDepth bounds each shard's outbound datagram queue. When the
	// queue is full new output is dropped and counted, UDP-style, so a
	// slow socket cannot stall session chains.
	writeQueueDepth = 1024
	// maxReadBackoffShift caps the transient-read-error sleep at
	// 1ms << maxReadBackoffShift (256ms).
	maxReadBackoffShift = 8
)

// shardCounters is one shard's counter block. Reader-side counters
// (datagrams, malformed, rejected, feedback) are incremented by the shard's
// reader goroutine; opened and chainErrors are attributed to the shard that
// owns the session; writes, flushes and writeDrops belong to the shard's
// writer. Everything is atomic so Stats can aggregate without stopping the
// data plane.
type shardCounters struct {
	datagrams   atomic.Uint64
	malformed   atomic.Uint64
	rejected    atomic.Uint64
	feedback    atomic.Uint64
	nacks       atomic.Uint64
	retransmits atomic.Uint64
	opened      atomic.Uint64
	chainErrors atomic.Uint64
	writes      atomic.Uint64
	flushes     atomic.Uint64
	writeDrops  atomic.Uint64
	_           [40]byte // pad so neighboring shards' counters don't false-share
}

// outbound is one datagram queued on a shard writer. dst is the resolved
// unicast destination; fan selects the engine's fan-out group instead (the
// plain multicast path — delivery-tree branches enqueue per-receiver unicast
// datagrams with rx pointing at the branch's counter block).
type outbound struct {
	s   *Session
	b   *packet.Buf
	dst netip.AddrPort
	rx  *metrics.ReceiverCounters
	fan bool
}

// shard is one slice of the engine's data plane: a reader goroutine pulling
// datagrams off its socket, a writer goroutine flushing batched output, and
// the counter block both report into. In the portable single-socket mode all
// shards share one net.UDPConn (the kernel serializes receives, but
// validation, demux and queueing overlap across readers); in SO_REUSEPORT
// mode each shard owns its own socket and the kernel spreads flows across
// them.
type shard struct {
	idx      int
	eng      *Engine
	conn     *net.UDPConn
	writeq   chan outbound
	counters shardCounters
}

// stats snapshots this shard's counters.
func (sh *shard) stats() metrics.ShardStats {
	return metrics.ShardStats{
		Shard:       sh.idx,
		Sessions:    sh.eng.table.countShard(sh.idx),
		Datagrams:   sh.counters.datagrams.Load(),
		Malformed:   sh.counters.malformed.Load(),
		Rejected:    sh.counters.rejected.Load(),
		Feedback:    sh.counters.feedback.Load(),
		Nacks:       sh.counters.nacks.Load(),
		Retransmits: sh.counters.retransmits.Load(),
		ChainErrors: sh.counters.chainErrors.Load(),
		Writes:      sh.counters.writes.Load(),
		Flushes:     sh.counters.flushes.Load(),
		WriteDrops:  sh.counters.writeDrops.Load(),
	}
}

// readLoop pulls datagrams off the shard's socket and routes each to its
// session: lookup and open touch only the owning table shard's lock, receiver
// reports are consumed on the control path, and nothing in steady state
// allocates. Transient read errors back off exponentially — both the retry
// pace and the logging — so a persistent socket fault can neither spin a
// core nor storm the log.
func (sh *shard) readLoop() {
	e := sh.eng
	defer e.wg.Done()
	var errStreak uint
	for {
		b := packet.GetBuf(packet.MaxDatagram)
		n, from, err := sh.conn.ReadFromUDPAddrPort(b.B)
		if err != nil {
			b.Release()
			if errors.Is(err, net.ErrClosed) || e.closed.Load() {
				return
			}
			errStreak++
			if errStreak&(errStreak-1) == 0 {
				// Log errors 1, 2, 4, 8, ...: exponential backoff keeps a
				// persistent fault to a handful of lines per thousand errors.
				e.logf("shard %d: read: %v (error %d in a row)", sh.idx, err, errStreak)
			}
			if errStreak > 1 {
				time.Sleep(time.Millisecond << min(errStreak-2, maxReadBackoffShift))
			}
			continue
		}
		errStreak = 0
		sh.counters.datagrams.Add(1)
		if n < packet.SessionIDSize {
			sh.counters.malformed.Add(1)
			b.Release()
			continue
		}
		b.B = b.B[:n]
		// Reject garbage before it can reach (or create) a session: a frame
		// that fails validation would otherwise kill the session's chain.
		if packet.ValidateFrame(b.B[packet.SessionIDSize:]) != nil {
			sh.counters.malformed.Add(1)
			b.Release()
			continue
		}
		id := binary.BigEndian.Uint32(b.B)
		// Receiver reports close the adaptation loop on the control path:
		// they are consumed here, never enter a chain, and never open a
		// session (a report for an unknown session is simply dropped).
		if packet.Kind(b.B[packet.SessionIDSize+3]) == packet.KindFeedback {
			sh.counters.feedback.Add(1)
			if s := e.table.lookup(id); s != nil {
				s.handleFeedback(from, b.B[packet.SessionIDSize:])
			}
			b.Release()
			continue
		}
		// NACKs ride the same feedback wire: consumed here, answered out of
		// the session's ARQ retransmission history, never entering a chain or
		// opening a session.
		if packet.Kind(b.B[packet.SessionIDSize+3]) == packet.KindNack {
			sh.counters.nacks.Add(1)
			if s := e.table.lookup(id); s != nil {
				s.handleNack(from, b.B[packet.SessionIDSize:])
			}
			b.Release()
			continue
		}
		s := e.table.lookup(id)
		if s == nil {
			var err error
			s, err = e.openSession(id, from)
			if err != nil {
				sh.counters.rejected.Add(1)
				b.Release()
				if !errors.Is(err, ErrSessionLimit) && !errors.Is(err, ErrEngineClosed) {
					e.logf("session %d: %v", id, err)
				}
				continue
			}
		}
		s.deliver(b, from)
	}
}

// enqueue hands one outbound datagram to the shard's writer, dropping
// (UDP-style, counted) when the queue is full so a saturated socket cannot
// stall the session chains feeding it. enqueue takes ownership of o.b.
func (sh *shard) enqueue(o outbound) {
	select {
	case sh.writeq <- o:
	default:
		o.s.counters.Drops.Add(1)
		if o.rx != nil {
			o.rx.Drops.Add(1)
		}
		sh.counters.writeDrops.Add(1)
		o.b.Release()
	}
}

// writeLoop is the shard's batched send path: it blocks for one outbound
// datagram, opportunistically drains up to writeBatch-1 more without
// blocking, and flushes the batch back to back. Per-session output order is
// preserved because every session enqueues on exactly one shard.
func (sh *shard) writeLoop() {
	e := sh.eng
	defer e.wg.Done()
	var batch [writeBatch]outbound
	for {
		select {
		case o := <-sh.writeq:
			batch[0] = o
		case <-e.stopWriters:
			sh.drainWriteQueue()
			return
		}
		n := 1
	fill:
		for n < writeBatch {
			select {
			case o := <-sh.writeq:
				batch[n] = o
				n++
			default:
				break fill
			}
		}
		for i := 0; i < n; i++ {
			sh.write(batch[i])
			batch[i] = outbound{}
		}
		sh.counters.writes.Add(uint64(n))
		sh.counters.flushes.Add(1)
	}
}

// write sends one queued datagram: to its resolved unicast destination, or to
// every receiver in the engine's fan-out group. Send failures are counted
// against the session and never fatal, matching UDP's fire-and-forget
// semantics. write owns o.b.
func (sh *shard) write(o outbound) {
	if o.fan {
		targets := o.s.eng.group.Snapshot()
		if len(targets) == 0 {
			o.s.counters.Drops.Add(1)
			o.b.Release()
			return
		}
		for _, dst := range targets {
			n, err := sh.conn.WriteToUDPAddrPort(o.b.B, dst)
			if err != nil {
				o.s.counters.Drops.Add(1)
				continue
			}
			o.s.counters.OutPackets.Add(1)
			o.s.counters.OutBytes.Add(uint64(n))
		}
		o.b.Release()
		return
	}
	n, err := sh.conn.WriteToUDPAddrPort(o.b.B, o.dst)
	o.b.Release()
	if err != nil {
		o.s.counters.Drops.Add(1)
		if o.rx != nil {
			o.rx.Drops.Add(1)
		}
		return
	}
	o.s.counters.OutPackets.Add(1)
	o.s.counters.OutBytes.Add(uint64(n))
	if o.rx != nil {
		o.rx.OutPackets.Add(1)
		o.rx.OutBytes.Add(uint64(n))
	}
}

// drainWriteQueue releases whatever is still queued at shutdown.
func (sh *shard) drainWriteQueue() {
	for {
		select {
		case o := <-sh.writeq:
			o.b.Release()
		default:
			return
		}
	}
}
