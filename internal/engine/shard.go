package engine

import (
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"sync/atomic"
	"time"

	"rapidware/internal/metrics"
	"rapidware/internal/netbatch"
	"rapidware/internal/packet"
)

// Shard-runtime tuning constants.
const (
	// batchSize is the number of datagrams one syscall can move in either
	// direction: the reader offers this many buffers per ReadBatch and the
	// writer drains this many queue entries per flush. On the Linux fast
	// path a full batch costs one recvmmsg/sendmmsg; the portable path
	// degrades to one syscall per datagram behind the same interface.
	batchSize = netbatch.BatchSize
	// writeQueueDepth bounds each shard's outbound datagram queue. When the
	// queue is full new output is dropped and counted, UDP-style, so a
	// slow socket cannot stall session chains.
	writeQueueDepth = 1024
	// maxReadBackoffShift caps the transient-read-error sleep at
	// 1ms << maxReadBackoffShift (256ms).
	maxReadBackoffShift = 8
)

// shardCounters is one shard's counter block. Reader-side counters
// (datagrams, malformed, rejected, feedback, recvCalls) are incremented by
// the shard's reader goroutine; opened and chainErrors are attributed to the
// shard that owns the session; writes, flushes, writeDrops and sendCalls
// belong to the shard's writer. Everything is atomic so Stats can aggregate
// without stopping the data plane.
type shardCounters struct {
	datagrams   atomic.Uint64
	malformed   atomic.Uint64
	rejected    atomic.Uint64
	feedback    atomic.Uint64
	nacks       atomic.Uint64
	retransmits atomic.Uint64
	opened      atomic.Uint64
	chainErrors atomic.Uint64
	writes      atomic.Uint64
	flushes     atomic.Uint64
	writeDrops  atomic.Uint64
	recvCalls   atomic.Uint64
	sendCalls   atomic.Uint64
	// Park/admission accounting (see park.go): parkedNow gauges the shard's
	// currently parked sessions; the rest count lifecycle transitions.
	parkedNow  atomic.Int64
	parks      atomic.Uint64
	unparks    atomic.Uint64
	harvested  atomic.Uint64
	admitDrops atomic.Uint64
	// Delivery-cohort accounting: bypassHits counts trunk frames that took a
	// bypass lane straight into the writer batch (no chain, no copy);
	// coalesced counts cohort outbounds the writer expanded to two or more
	// destinations — frames that traversed (and were encoded by) one shared
	// chain instead of one per receiver.
	bypassHits atomic.Uint64
	coalesced  atomic.Uint64
	_          [48]byte // pad so neighboring shards' counters don't false-share
}

// outbound is one datagram queued on a shard writer. dst is the resolved
// unicast destination; fan selects the engine's fan-out group instead (the
// plain multicast path); grp selects a delivery cohort, expanded to the
// cohort's current membership — targets plus still-fading migrated members —
// at flush time, so membership changes apply to queued datagrams too.
// Per-receiver unicast datagrams (replay priming, NACK retransmissions) set
// dst with rx pointing at the receiver's counter block.
type outbound struct {
	s   *Session
	b   *packet.Buf
	dst netip.AddrPort
	rx  *metrics.ReceiverCounters
	grp *cohort
	fan bool
}

// wmeta carries one batched datagram's accounting targets through the send
// path, parallel to the ioMsg slice handed to the socket.
type wmeta struct {
	s  *Session
	rx *metrics.ReceiverCounters
}

// shard is one slice of the engine's data plane: a reader goroutine pulling
// datagram batches off its socket, a writer goroutine flushing batched
// output, and the counter block both report into. In the portable
// single-socket mode all shards share one net.UDPConn (the kernel serializes
// receives, but validation, demux and queueing overlap across readers); in
// SO_REUSEPORT mode each shard owns its own socket and the kernel spreads
// flows across them.
type shard struct {
	idx      int
	eng      *Engine
	conn     *net.UDPConn
	bconn    batchConn // wired by Start unless a test injected one
	writeq   chan outbound
	counters shardCounters

	// Writer-side scratch, reused across flushes so fan-out expansion never
	// allocates in steady state. Only the writer goroutine touches these.
	wmsgs []ioMsg
	wacct []wmeta
	wseqs [batchSize]int64
	whits [batchSize]int32
}

// stats snapshots this shard's counters.
func (sh *shard) stats() metrics.ShardStats {
	return metrics.ShardStats{
		Shard:       sh.idx,
		Sessions:    sh.eng.table.countShard(sh.idx),
		Datagrams:   sh.counters.datagrams.Load(),
		Malformed:   sh.counters.malformed.Load(),
		Rejected:    sh.counters.rejected.Load(),
		Feedback:    sh.counters.feedback.Load(),
		Nacks:       sh.counters.nacks.Load(),
		Retransmits: sh.counters.retransmits.Load(),
		ChainErrors: sh.counters.chainErrors.Load(),
		Writes:      sh.counters.writes.Load(),
		Flushes:     sh.counters.flushes.Load(),
		WriteDrops:  sh.counters.writeDrops.Load(),
		RecvCalls:   sh.counters.recvCalls.Load(),
		SendCalls:   sh.counters.sendCalls.Load(),

		Parked:         int(sh.counters.parkedNow.Load()),
		Parks:          sh.counters.parks.Load(),
		Unparks:        sh.counters.unparks.Load(),
		Harvested:      sh.counters.harvested.Load(),
		AdmissionDrops: sh.counters.admitDrops.Load(),

		BypassHits:     sh.counters.bypassHits.Load(),
		CoalescedSends: sh.counters.coalesced.Load(),
	}
}

// readLoop pulls datagram batches off the shard's socket and routes each to
// its session. Buffers are leased from the packet pool a batch at a time;
// slots the kernel didn't fill keep their buffer for the next batch, so an
// idle shard holds at most batchSize spare buffers and steady state still
// allocates nothing. Transient read errors back off exponentially — both the
// retry pace and the logging — so a persistent socket fault can neither spin
// a core nor storm the log.
func (sh *shard) readLoop() {
	e := sh.eng
	defer e.wg.Done()
	var (
		bufs [batchSize]*packet.Buf
		ms   [batchSize]ioMsg
	)
	defer func() {
		for _, b := range bufs {
			if b != nil {
				b.Release()
			}
		}
	}()
	var errStreak uint
	for {
		for i := range bufs {
			if bufs[i] == nil {
				bufs[i] = packet.GetBuf(packet.MaxDatagram)
			}
			ms[i].Buf = bufs[i].B
		}
		n, err := sh.bconn.ReadBatch(ms[:])
		if err != nil {
			if errors.Is(err, net.ErrClosed) || e.closed.Load() {
				return
			}
			errStreak++
			if errStreak&(errStreak-1) == 0 {
				// Log errors 1, 2, 4, 8, ...: exponential backoff keeps a
				// persistent fault to a handful of lines per thousand errors.
				e.logf("shard %d: read: %v (error %d in a row)", sh.idx, err, errStreak)
			}
			if errStreak > 1 {
				time.Sleep(time.Millisecond << min(errStreak-2, maxReadBackoffShift))
			}
			continue
		}
		errStreak = 0
		sh.counters.datagrams.Add(uint64(n))
		for i := 0; i < n; i++ {
			b := bufs[i]
			bufs[i] = nil // ownership moves to the session (or is released below)
			sh.handleDatagram(b, ms[i].N, ms[i].Addr)
		}
	}
}

// handleDatagram validates and demuxes one received datagram: lookup and
// open touch only the owning table shard's lock, receiver reports are
// consumed on the control path, and nothing in steady state allocates.
// handleDatagram owns b.
func (sh *shard) handleDatagram(b *packet.Buf, n int, from netip.AddrPort) {
	e := sh.eng
	if n < packet.SessionIDSize {
		sh.counters.malformed.Add(1)
		b.Release()
		return
	}
	b.B = b.B[:n]
	// Reject garbage before it can reach (or create) a session: a frame
	// that fails validation would otherwise kill the session's chain.
	if packet.ValidateFrame(b.B[packet.SessionIDSize:]) != nil {
		sh.counters.malformed.Add(1)
		b.Release()
		return
	}
	id := binary.BigEndian.Uint32(b.B)
	// Receiver reports close the adaptation loop on the control path:
	// they are consumed here, never enter a chain, and never open a
	// session (a report for an unknown session is simply dropped).
	if packet.Kind(b.B[packet.SessionIDSize+3]) == packet.KindFeedback {
		sh.counters.feedback.Add(1)
		if s := e.table.lookup(id); s != nil {
			s.handleFeedback(from, b.B[packet.SessionIDSize:])
		}
		b.Release()
		return
	}
	// NACKs ride the same feedback wire: consumed here, answered out of
	// the session's ARQ retransmission history, never entering a chain or
	// opening a session.
	if packet.Kind(b.B[packet.SessionIDSize+3]) == packet.KindNack {
		sh.counters.nacks.Add(1)
		if s := e.table.lookup(id); s != nil {
			s.handleNack(from, b.B[packet.SessionIDSize:])
		}
		b.Release()
		return
	}
	s := e.table.lookup(id)
	if s == nil {
		var err error
		s, err = e.openSession(id, from)
		if err != nil {
			sh.counters.rejected.Add(1)
			b.Release()
			if !errors.Is(err, ErrSessionLimit) && !errors.Is(err, ErrEngineClosed) {
				e.logf("session %d: %v", id, err)
			}
			return
		}
	}
	s.deliver(b, from)
}

// enqueue hands one outbound datagram to the shard's writer, dropping
// (UDP-style, counted) when the queue is full so a saturated socket cannot
// stall the session chains feeding it. enqueue takes ownership of o.b.
func (sh *shard) enqueue(o outbound) {
	select {
	case sh.writeq <- o:
	default:
		o.s.counters.Drops.Add(1)
		if o.rx != nil {
			o.rx.Drops.Add(1)
		}
		if o.grp != nil {
			// One lost cohort frame is one lost datagram per member. The
			// frame still consumes its cohort sequence number so fade fences
			// stay aligned with the frames that actually flush.
			seq := o.grp.consumed.Add(1) - 1
			v := o.grp.view.Load()
			for i := range v.targets {
				t := &v.targets[i]
				if t.gate != nil && seq < t.gate.at.Load() {
					continue // not this member's frame; see flush
				}
				t.rx.Drops.Add(1)
			}
		}
		sh.counters.writeDrops.Add(1)
		o.b.Release()
	}
}

// writeLoop is the shard's batched send path: it blocks for one outbound
// datagram, opportunistically drains up to batchSize-1 more without
// blocking, and flushes the batch through the batch conn. Per-session output
// order is preserved because every session enqueues on exactly one shard and
// the flush sends in queue order.
func (sh *shard) writeLoop() {
	e := sh.eng
	defer e.wg.Done()
	var batch [batchSize]outbound
	for {
		select {
		case o := <-sh.writeq:
			batch[0] = o
		case <-e.stopWriters:
			sh.drainWriteQueue()
			return
		}
		n := 1
	fill:
		for n < batchSize {
			select {
			case o := <-sh.writeq:
				batch[n] = o
				n++
			default:
				break fill
			}
		}
		sh.flush(batch[:n])
		for i := 0; i < n; i++ {
			batch[i] = outbound{}
		}
		sh.counters.writes.Add(uint64(n))
		sh.counters.flushes.Add(1)
	}
}

// flush expands one drained batch into the wire-level datagram list — fan-out
// entries become one datagram per group member, sharing the payload buffer by
// reference — sends it, and releases every buffer. flush owns the batch's
// buffers.
//
// Consecutive frames bound for the same cohort expand destination-major: all
// of member A's frames, then all of member B's, and so on. Per-destination
// order is exactly queue order (all UDP promises), and runs of equal-size
// datagrams to one address are what the batch conn's UDP GSO path folds into
// single segmented sends — so a busy fan-out session pays per-burst, not
// per-datagram, kernel cost at every destination.
func (sh *shard) flush(batch []outbound) {
	ms := sh.wmsgs[:0]
	acct := sh.wacct[:0]
	for i := 0; i < len(batch); {
		o := &batch[i]
		if o.grp == nil {
			if !o.fan {
				ms = append(ms, ioMsg{Buf: o.b.B, Addr: o.dst})
				acct = append(acct, wmeta{s: o.s, rx: o.rx})
				i++
				continue
			}
			targets := o.s.eng.group.Snapshot()
			if len(targets) == 0 {
				o.s.counters.Drops.Add(1)
				i++
				continue
			}
			for _, dst := range targets {
				ms = append(ms, ioMsg{Buf: o.b.B, Addr: dst})
				acct = append(acct, wmeta{s: o.s})
			}
			i++
			continue
		}
		// Cohort fan-out: one payload buffer per frame, one address stamp per
		// member, plus migrated members whose fade fence a frame's cohort
		// sequence number still precedes (frames in flight at migration time
		// reach them; newer frames — which their new cohort delivers — do
		// not) and minus joined members whose start gate it hasn't reached
		// (their old cohort still owes them those).
		grp := o.grp
		run := 0
		for i+run < len(batch) && batch[i+run].grp == grp {
			sh.wseqs[run] = grp.consumed.Add(1) - 1
			sh.whits[run] = 0
			run++
		}
		v := grp.view.Load()
		for j := range v.targets {
			t := &v.targets[j]
			for k := 0; k < run; k++ {
				if t.gate != nil && sh.wseqs[k] < t.gate.at.Load() {
					continue // joined after this frame; its old cohort delivers it
				}
				ms = append(ms, ioMsg{Buf: batch[i+k].b.B, Addr: t.dst})
				acct = append(acct, wmeta{s: batch[i+k].s, rx: t.rx})
				sh.whits[k]++
			}
		}
		for _, f := range v.fades {
			for k := 0; k < run; k++ {
				if sh.wseqs[k] < f.expiresAt.Load() {
					ms = append(ms, ioMsg{Buf: batch[i+k].b.B, Addr: f.dst})
					acct = append(acct, wmeta{s: batch[i+k].s, rx: f.rx})
					sh.whits[k]++
				}
			}
		}
		for k := 0; k < run; k++ {
			if sh.whits[k] == 0 {
				batch[i+k].s.counters.Drops.Add(1)
			} else if sh.whits[k] >= 2 {
				sh.counters.coalesced.Add(1)
			}
		}
		i += run
	}
	sh.wmsgs, sh.wacct = ms, acct
	sh.sendBatch(ms, acct)
	for i := range batch {
		batch[i].b.Release()
	}
}

// sendBatch pushes a prepared datagram list through the batch conn, crediting
// each success to its session (and receiver branch, when present). Failures
// follow UDP's fire-and-forget contract: a conn error names exactly one
// datagram, which is dropped and counted, and the remainder is re-offered —
// so a transient send error can never stall the queue or discard the
// datagrams behind it. The loop terminates because every round either sends
// or drops at least one datagram.
func (sh *shard) sendBatch(ms []ioMsg, acct []wmeta) {
	sent := 0
	for sent < len(ms) {
		n, err := sh.bconn.WriteBatch(ms[sent:])
		for i := sent; i < sent+n; i++ {
			m := &acct[i]
			m.s.counters.OutPackets.Add(1)
			m.s.counters.OutBytes.Add(uint64(len(ms[i].Buf)))
			if m.rx != nil {
				m.rx.OutPackets.Add(1)
				m.rx.OutBytes.Add(uint64(len(ms[i].Buf)))
			}
		}
		sent += n
		if err != nil {
			if sent >= len(ms) {
				return
			}
			m := &acct[sent]
			m.s.counters.Drops.Add(1)
			if m.rx != nil {
				m.rx.Drops.Add(1)
			}
			sh.counters.writeDrops.Add(1)
			sent++
		} else if n == 0 {
			// No progress and no error: a conn contract violation. Bail out
			// rather than spin; the batch's remainder is dropped uncounted.
			return
		}
	}
}

// drainWriteQueue releases whatever is still queued at shutdown.
func (sh *shard) drainWriteQueue() {
	for {
		select {
		case o := <-sh.writeq:
			o.b.Release()
		default:
			return
		}
	}
}
