//go:build !linux || !reuseport

package engine

import (
	"errors"
	"net"
)

// reusePortAvailable gates Config.ReusePort: this build lacks the Linux
// SO_REUSEPORT path, so New rejects the option up front.
const reusePortAvailable = false

// listenReusePort is unreachable in this build (New fails first); it exists
// so the portable compilation stays closed.
func listenReusePort(string) (*net.UDPConn, error) {
	return nil, errors.New("engine: SO_REUSEPORT support requires linux and the 'reuseport' build tag")
}
