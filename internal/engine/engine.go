// Package engine lifts the single-stream RAPIDware proxy into a concurrent
// multi-session relay over real UDP datagrams. Every datagram carries a
// 4-byte session ID followed by an ordinary packet frame (see
// internal/packet). The engine demultiplexes datagrams by session ID into
// per-session filter chains — each an independent instance of the paper's
// ControlThread, so filters can still be inserted, removed and reordered on
// any live session — and relays each chain's output either back to the
// session's sender (echo mode) or to a fixed downstream address.
//
// Chains are built on the composition plane (internal/compose): the trunk
// and branch specs parse to plan IRs instantiated through the shared stage
// registry, every session binds its chain to a compose.Live, and the
// control plane can atomically recompose any live session's chain — full
// target-spec rewrites (RecomposeSession) or single-stage surgery — while
// it carries traffic, serialized with the adaptation responders on the same
// splice lock.
//
// The data plane is sharded: Config.Shards reader goroutines (default one
// per CPU) pull datagrams off the socket, sessions live in a sharded table
// (per-shard lock, session ID hashed to shard) so open/lookup/close never
// touch a global lock, and each shard runs a writer goroutine that flushes
// output in opportunistic batches. Socket I/O is batched at the syscall
// level where the platform allows: on linux/amd64 and linux/arm64 the shard
// loops move up to 32 datagrams per recvmmsg/sendmmsg call (optionally
// folding runs of equal-size datagrams into single UDP GSO super-datagrams,
// Config.GSO), and every other platform — or any build with the "purego"
// tag — transparently falls back to one datagram per syscall behind the
// same interface. The portable path runs every reader over one net.UDPConn;
// on Linux, builds tagged "reuseport" can give each shard its own
// SO_REUSEPORT socket instead (Config.ReusePort). Per-shard RecvCalls and
// SendCalls counters expose the achieved syscall amortization (see
// metrics.EngineStats).
//
// The steady-state relay path is allocation-free: datagrams travel in pooled
// buffers (packet.GetBuf) from the socket read, through the chain's
// detachable streams, to the shard writer's socket write, and session
// lookup, peer tracking and counters all avoid per-packet allocation.
//
// The engine scales to a million mostly-idle sessions by making idleness
// free: after Config.IdleTTL without traffic a session is parked — its chain,
// goroutines and buffers released, only identity, plan and counters retained
// — and transparently rebuilt on the next datagram (park.go). Session counts
// and engine stats are maintained as atomic gauges, so admission checks and
// Stats() are O(1)/O(shards) regardless of table size, and an explicit
// admission policy (Config.Admission) chooses between rejecting new sessions
// at capacity and harvesting the oldest-idle one to make room.
//
// Fan-out sessions with adaptation (or a Branch spec) relay through a
// delivery tree instead of a single chain: the shared trunk's output is teed
// by reference into delivery *cohorts* — one shared tail per distinct
// protection level, not one per receiver. Receivers whose tail plans and
// decided repair mechanisms match share one chain traversal and one FEC
// encode, fanned to all of them by the shard writer (same payload, N address
// stamps); receivers needing no tail at all ride a bypass lane straight into
// the writer's batch. Each receiver's own loss reports still drive its
// protection level — a retune just moves the receiver between cohorts — so
// per-station adaptation costs one chain per *level*, not per station.
// Migration is exact: an in-band marker seals the old cohort at a sequence
// number and a gate opens the new one at the same point, so no frame is
// lost, duplicated or miscounted while a member moves. Cohort output is
// flushed destination-major so the batched writer can fold one traversal's
// fan-out into GSO super-datagrams; the BypassHits and CoalescedSends
// counters (metrics.ShardStats) expose both fast paths. See branch.go.
//
// Reliability stages close two more loops on the read path. NACK datagrams
// (packet.KindNack) are consumed like feedback — never entering a chain,
// never opening a session, honored only from legitimate receivers — and
// answered out of the session's ARQ retransmission history (an "arq" chain
// stage, or the history an adaptation responder spliced in), unicast back to
// the requester. And when a session's trunk carries a "replay=<n>" stage, a
// station joining the fan-out group mid-stream is primed with the retained
// window — replayed directly to it, as recorded — when it is admitted.
package engine

import (
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rapidware/internal/adapt"
	"rapidware/internal/compose"
	"rapidware/internal/metrics"
	"rapidware/internal/multicast"
	"rapidware/internal/netbatch"
)

// Defaults applied by New.
const (
	// DefaultMaxSessions admits a million concurrent sessions. Idle sessions
	// park down to a few hundred bytes each (see park.go), so the practical
	// bound is live traffic and memory, not a configured ceiling; deployments
	// that want the old small cap set MaxSessions explicitly.
	DefaultMaxSessions = 1 << 20
	DefaultQueueDepth  = 256
	// maxShards caps Config.Shards; beyond this the readers only contend on
	// the kernel's socket lock.
	maxShards = 64
)

// Errors returned by the engine.
var (
	// ErrEngineClosed is returned by operations on a closed engine.
	ErrEngineClosed = errors.New("engine: closed")
	// ErrSessionLimit is returned when a new session would exceed MaxSessions.
	ErrSessionLimit = errors.New("engine: session limit reached")
	// ErrUnknownSession is returned by CloseSession for an unknown ID.
	ErrUnknownSession = errors.New("engine: unknown session")
)

// Config describes an Engine.
type Config struct {
	// Name identifies the engine in logs and control replies.
	Name string
	// ListenAddr is the UDP address to serve on (e.g. ":7400", "127.0.0.1:0").
	ListenAddr string
	// MaxSessions caps concurrent sessions; 0 selects DefaultMaxSessions.
	MaxSessions int
	// Shards sets the width of the data plane: the number of reader
	// goroutines, session-table shards and batched writers. 0 selects
	// runtime.NumCPU(); values are rounded up to a power of two and capped
	// at 64.
	//
	// With several readers on one shared socket, two datagrams of the same
	// session can be delivered out of arrival order (reader A reads the
	// first, is descheduled, reader B delivers the second) — indistinguish-
	// able from ordinary UDP reordering, which every consumer of this
	// engine must already tolerate (FEC decoding is group-keyed, feedback
	// is highest-seq-wins). Deployments that want arrival order preserved
	// per flow should use ReusePort (the kernel pins each flow to one
	// socket, hence one reader) or Shards=1.
	Shards int
	// ReusePort gives each shard its own socket bound with SO_REUSEPORT so
	// the kernel spreads flows across shards instead of serializing receives
	// on one socket lock. Requires Linux and the "reuseport" build tag; New
	// fails otherwise.
	ReusePort bool
	// GSO enables UDP generic segmentation offload on the batched send path:
	// runs of equal-size datagrams to one destination are handed to the
	// kernel as a single super-datagram with a UDP_SEGMENT header, so the
	// stack is traversed once per run instead of once per datagram. Requires
	// the Linux batched-I/O fast path (linux amd64/arm64, non-purego build);
	// New fails otherwise. If the running kernel turns out to lack UDP GSO,
	// the engine falls back to plain batched sends on first use.
	GSO bool
	// Chain is the default chain spec instantiated for every new session; see
	// ParseChain for the syntax. Empty means a pure relay (no interior
	// filters).
	Chain string
	// Forward, when non-empty, is the downstream UDP address all relayed
	// datagrams are sent to. When empty the engine echoes each session's
	// output back to that session's most recent sender.
	Forward string
	// QueueDepth bounds each session's inbound datagram queue; 0 selects
	// DefaultQueueDepth. When the queue is full new datagrams are dropped and
	// counted, UDP-style, rather than blocking the shared read loop.
	QueueDepth int
	// AllowRoaming lets a session's echo destination follow its most recent
	// sender (for mobile clients whose address changes mid-session). Off by
	// default: the peer is pinned to the session's first sender so a datagram
	// that merely guesses a session ID cannot redirect the stream.
	AllowRoaming bool
	// Fanout lists downstream UDP receiver addresses every session's output
	// is multicast to (application-level fan-out). Mutually exclusive with
	// Forward. Receivers can also be added and removed at run time through
	// FanoutGroup.
	Fanout []string
	// Branch is the per-receiver filter-tail spec of a fan-out session's
	// delivery tree; see ParseBranch for the syntax (chain stages plus the
	// branch-only "fec-adapt"). Setting it turns the fan-out path into a
	// delivery tree — the shared trunk chain's output is cloned (by
	// reference, never copying payload bytes) into one short tail per
	// receiver, so each station can get FEC strength and media fidelity
	// matched to its own channel. Requires fan-out (Fanout, or members added
	// through FanoutGroup at run time); mutually exclusive with Forward.
	Branch string
	// Adapt enables the closed-loop adaptation plane, driven by receiver
	// reports (KindFeedback datagrams sent upstream on the engine socket).
	// On unicast (echo/forward) sessions an FEC responder splices an
	// adaptive encoder into the session's live chain as loss appears,
	// retunes its (n,k) as loss moves between policy levels, and removes it
	// again on a clean link. On fan-out sessions adaptation is per receiver:
	// every member of the group gets its own delivery branch and its own
	// observer/responder pair, so one station's bad radio link no longer
	// taxes the whole group with worst-case parity.
	Adapt bool
	// AdaptPolicy is the loss → (n,k) ladder used when the adaptation plane
	// is on (Adapt, or a Branch spec naming fec-adapt); the zero value
	// selects adapt.DefaultPolicy.
	AdaptPolicy adapt.Policy
	// ReportStaleness ages out receivers that stop reporting: a receiver
	// whose last loss report is older than this window no longer pins its
	// branch's (or, on unicast sessions, the session's) protection level —
	// a station that crashed without leaving the group decays back to the
	// clean-link path. 0 (the default) disables aging.
	ReportStaleness time.Duration
	// IdleTTL parks sessions that see no traffic (and no control operations)
	// for this long: the chain and its goroutines are released and only a
	// compact record — identity, plan, counters — remains; the next datagram
	// rebuilds the chain transparently. 0 (the default) disables parking.
	// See park.go.
	IdleTTL time.Duration
	// Admission selects what happens to a new session arriving at
	// MaxSessions: AdmitReject (the default) refuses it, AdmitHarvest evicts
	// the oldest-idle existing session to make room.
	Admission AdmissionPolicy
	// Logger receives engine lifecycle messages; nil disables logging.
	Logger *log.Logger
}

// AdmissionPolicy selects the engine's behavior when a new session arrives
// while MaxSessions are registered.
type AdmissionPolicy string

const (
	// AdmitReject refuses new sessions at capacity (the default): the
	// datagram is dropped and counted, and the sender retries later.
	AdmitReject AdmissionPolicy = "reject"
	// AdmitHarvest evicts the oldest-idle registered session — parked ones
	// first — to make room for the new one, so a full table churns instead
	// of rejecting.
	AdmitHarvest AdmissionPolicy = "harvest"
)

// Stats is an engine-level counter snapshot, aggregated across shards on
// demand.
type Stats = metrics.EngineStats

// Engine is a multi-session UDP proxy with a sharded data plane.
type Engine struct {
	cfg    Config
	policy adapt.Policy // resolved adaptation policy (valid iff adaptOn)

	// reg is the stage registry session plans are instantiated through;
	// trunkPlan and branchPlan are the validated compositions every new
	// session's trunk chain and delivery-branch tails start from. When the
	// adaptation plane manages a chain, its plan carries a fec-adapt marker
	// stage (injected for adaptive trunks, from the Branch spec or injected
	// for branches) at the position the responder splices the encoder.
	reg       *compose.Registry
	trunkPlan compose.Plan

	// Per-receiver delivery-branch configuration, resolved by New. branching
	// selects the delivery-tree fan-out path (trunk + per-receiver tails)
	// over the plain multicast write; adaptOn enables the feedback plane at
	// all (trunk loop on unicast sessions, per-branch loops when branching).
	branchPlan compose.Plan
	branching  bool
	adaptOn    bool

	conns   []*net.UDPConn       // one per shard in ReusePort mode, else one shared
	forward netip.AddrPort       // zero value when echoing to senders
	group   *multicast.AddrGroup // non-nil when fanning out to receivers

	table  *table
	shards []shard

	closed      atomic.Bool
	active      atomic.Int64 // registered sessions (live + parked), admission-checked against MaxSessions
	stopWriters chan struct{}
	wg          sync.WaitGroup // shard readers and writers

	// exitWg tracks in-flight session exit hooks. A plain WaitGroup would
	// race: openSession may run on any goroutine (readers, tests), so an
	// Add could otherwise land while Close is already in Wait with the
	// counter at zero. exitMu + exitWaiting close that window.
	exitMu      sync.Mutex
	exitWaiting bool
	exitWg      sync.WaitGroup
}

// New validates cfg (including the chain spec) and returns an engine ready to
// Start.
func New(cfg Config) (*Engine, error) {
	if cfg.Name == "" {
		cfg.Name = "engine"
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	switch cfg.Admission {
	case "":
		cfg.Admission = AdmitReject
	case AdmitReject, AdmitHarvest:
	default:
		return nil, fmt.Errorf("engine: unknown admission policy %q (want %q or %q)",
			cfg.Admission, AdmitReject, AdmitHarvest)
	}
	if cfg.IdleTTL < 0 {
		return nil, errors.New("engine: IdleTTL must be >= 0")
	}
	cfg.Shards = resolveShards(cfg.Shards)
	if cfg.ReusePort && !reusePortAvailable {
		return nil, errors.New("engine: ReusePort requires linux and the 'reuseport' build tag")
	}
	if cfg.GSO && !gsoAvailable {
		return nil, errors.New("engine: GSO requires the linux batched-I/O fast path (amd64/arm64, non-purego build)")
	}
	reg := compose.Default()
	trunkPlan, err := compose.ParseWith(reg, cfg.Chain, compose.ModeChain)
	if err != nil {
		return nil, err
	}
	branchPlan, err := compose.ParseWith(reg, cfg.Branch, compose.ModeBranch)
	if err != nil {
		return nil, err
	}
	if cfg.Forward != "" && (len(cfg.Fanout) > 0 || cfg.Branch != "") {
		return nil, errors.New("engine: Forward and Fanout/Branch are mutually exclusive")
	}
	adaptOn := cfg.Adapt || branchPlan.Has(compose.KindFECAdapt)
	if adaptOn && trunkPlan.Has("fec-encode") {
		// A static encoder under the adaptation plane would re-encode the
		// adaptive encoder's output (parity-of-parity) the moment loss
		// appears. The plane owns FEC encoding; fail fast instead.
		return nil, errors.New("engine: the adaptation plane manages the FEC encoder itself; remove fec-encode from Chain")
	}
	if adaptOn && branchPlan.Has("fec-encode") {
		return nil, errors.New("engine: the adaptation plane manages each branch's FEC encoder; remove fec-encode from Branch (or drop fec-adapt/Adapt)")
	}
	e := &Engine{
		cfg:         cfg,
		reg:         reg,
		trunkPlan:   trunkPlan,
		branchPlan:  branchPlan,
		adaptOn:     adaptOn,
		table:       newTable(cfg.Shards),
		shards:      make([]shard, cfg.Shards),
		stopWriters: make(chan struct{}),
	}
	for i := range e.shards {
		e.shards[i] = shard{idx: i, eng: e, writeq: make(chan outbound, writeQueueDepth)}
	}
	if adaptOn {
		e.policy = cfg.AdaptPolicy
		if len(e.policy.Levels) == 0 {
			e.policy = adapt.DefaultPolicy()
		}
		if err := e.policy.Validate(); err != nil {
			return nil, err
		}
	}
	if len(cfg.Fanout) > 0 || cfg.Branch != "" {
		e.group = multicast.NewAddrGroup(cfg.Name + "-fanout")
		for _, addr := range cfg.Fanout {
			udp, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				return nil, fmt.Errorf("engine: resolve fanout %q: %w", addr, err)
			}
			e.group.Add(udp.AddrPort())
		}
	}
	// The delivery tree engages whenever fan-out needs per-receiver tails:
	// adaptation (each member's own loss reports drive its own branch) or an
	// explicit Branch spec. Plain fan-out without either keeps the direct
	// multicast write path — no per-branch goroutines, one batched write per
	// receiver.
	e.branching = e.group != nil && (cfg.Adapt || cfg.Branch != "")
	// Chains owned by the adaptation plane carry a fec-adapt marker in their
	// plan: the position the responder's encoder activates at, visible in
	// (and preserved by) control-plane recomposition. Specs without an
	// explicit marker get one injected right after the chain source, the
	// historical default splice position.
	if e.adaptOn {
		if e.branching {
			if !e.branchPlan.Has(compose.KindFECAdapt) {
				e.branchPlan, _ = e.branchPlan.WithInsert(0, compose.Stage{Kind: compose.KindFECAdapt})
			}
		} else {
			e.trunkPlan, _ = e.trunkPlan.WithInsert(0, compose.Stage{Kind: compose.KindFECAdapt})
		}
	}
	return e, nil
}

// trunkMode returns the validation mode for live rewrites of a session's
// trunk plan: markers are legal exactly when the trunk is owned by an
// adaptation loop.
func (e *Engine) trunkMode() compose.Mode {
	mode := compose.ModeChain
	if e.adaptOn && !e.branching {
		mode.AllowMarker = true
	}
	return mode
}

// Kinds returns the stage kinds sessions of this engine can compose — the
// control protocol's kind listing.
func (e *Engine) Kinds() []string { return e.reg.Kinds() }

// resolveShards normalizes a Shards setting: 0 means one shard per CPU, and
// the result is clamped to [1, maxShards] and rounded up to a power of two so
// the table mask stays a single AND.
func resolveShards(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the width of the engine's data plane.
func (e *Engine) Shards() int { return len(e.shards) }

// FanoutGroup returns the downstream receiver group sessions multicast to,
// or nil when the engine echoes or forwards instead. Membership may be
// changed at run time; sessions pick the new set up on their next packet or
// receiver report — on the delivery-tree path a joining member gets a fresh
// branch (with its own adaptation loop) and a departing member's branch is
// torn down, so a removed station's last loss report cannot pin anything.
func (e *Engine) FanoutGroup() *multicast.AddrGroup { return e.group }

// receiverAuthorized reports whether a feedback datagram's source is one of
// the session's legitimate downstream receivers: a fan-out group member, the
// forward destination, or (in echo mode) the session's pinned peer. The gate
// mirrors the data path's peer pinning — an off-path host that merely
// guesses a session ID must not be able to steer its FEC level. from must
// already be in canonical (unmapped) form; e.forward and group members are
// stored that way, and the peer is canonicalized here.
func (e *Engine) receiverAuthorized(s *Session, from netip.AddrPort) bool {
	switch {
	case e.group != nil:
		return e.group.Contains(from)
	case e.forward.IsValid():
		return from == e.forward
	default:
		return from == multicast.UnmapAddrPort(s.Peer())
	}
}

// Start binds the UDP socket(s) and launches the shard runtime: one reader
// and one batched writer per shard.
func (e *Engine) Start() error {
	if err := e.listen(); err != nil {
		return err
	}
	if e.cfg.Forward != "" {
		fwd, err := net.ResolveUDPAddr("udp", e.cfg.Forward)
		if err != nil {
			e.closeConns()
			e.conns = nil // a later Close must not re-close these sockets
			return fmt.Errorf("engine: resolve forward %q: %w", e.cfg.Forward, err)
		}
		// Unmap 4-in-6 addresses so writes work regardless of the socket's
		// address family.
		e.forward = multicast.UnmapAddrPort(fwd.AddrPort())
	}
	for i := range e.shards {
		sh := &e.shards[i]
		if e.cfg.ReusePort {
			sh.conn = e.conns[i]
		} else {
			sh.conn = e.conns[0]
		}
		if sh.bconn == nil { // tests may have injected a scripted conn
			sh.bconn = netbatch.New(sh.conn, netbatch.Options{
				GSO:       e.cfg.GSO,
				RecvCalls: &sh.counters.recvCalls,
				SendCalls: &sh.counters.sendCalls,
			})
		}
		e.wg.Add(2)
		go sh.readLoop()
		go sh.writeLoop()
	}
	// One maintenance ticker for the whole engine serves both timer-driven
	// concerns — stale-receiver sweeps and idle-session parking — so the
	// timer goroutine count is O(1), not O(sessions).
	if iv := e.maintInterval(); iv > 0 {
		e.wg.Add(1)
		go e.maintenanceLoop(iv)
	}
	mode := "shared socket"
	if e.cfg.ReusePort {
		mode = "SO_REUSEPORT sockets"
	}
	io := "single-datagram I/O"
	if batchIOAvailable {
		io = "batched mmsg I/O"
		if e.cfg.GSO {
			io = "batched mmsg I/O + GSO"
		}
	}
	e.logf("serving UDP on %s (%d shards over %s, %s, max %d sessions, chain %q)",
		e.conns[0].LocalAddr(), len(e.shards), mode, io, e.cfg.MaxSessions, e.cfg.Chain)
	if e.adaptOn {
		e.logf("adaptation plane on (policy %s)", e.policy)
	}
	if e.cfg.IdleTTL > 0 {
		e.logf("idle harvester on (TTL %s, admission %s)", e.cfg.IdleTTL, e.cfg.Admission)
	}
	if e.group != nil {
		if e.branching {
			e.logf("fanning out to %d receivers through per-receiver delivery branches (branch spec %q)",
				e.group.Len(), e.cfg.Branch)
		} else {
			e.logf("fanning out to %d receivers", e.group.Len())
		}
	}
	return nil
}

// listen binds the engine's socket(s): one shared net.UDPConn on the
// portable path, or one SO_REUSEPORT socket per shard when Config.ReusePort
// is set.
func (e *Engine) listen() error {
	addr, err := net.ResolveUDPAddr("udp", e.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("engine: resolve %q: %w", e.cfg.ListenAddr, err)
	}
	if !e.cfg.ReusePort {
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return fmt.Errorf("engine: listen %q: %w", e.cfg.ListenAddr, err)
		}
		tuneConn(conn)
		e.conns = []*net.UDPConn{conn}
		return nil
	}
	first, err := listenReusePort(e.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("engine: listen %q: %w", e.cfg.ListenAddr, err)
	}
	tuneConn(first)
	e.conns = []*net.UDPConn{first}
	// Later sockets must bind the concrete address the first one resolved
	// (":0" picks a port only once).
	bound := first.LocalAddr().String()
	for i := 1; i < len(e.shards); i++ {
		conn, err := listenReusePort(bound)
		if err != nil {
			e.closeConns()
			e.conns = nil
			return fmt.Errorf("engine: listen %q (shard %d): %w", bound, i, err)
		}
		tuneConn(conn)
		e.conns = append(e.conns, conn)
	}
	return nil
}

// tuneConn sizes a socket's kernel buffers for the bursts produced by
// thousands of concurrent sessions. Failures are advisory (the OS may clamp
// the value), so errors are ignored.
func tuneConn(conn *net.UDPConn) {
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
}

// closeConns closes every bound socket (partial-startup cleanup and Close).
func (e *Engine) closeConns() error {
	var firstErr error
	for _, c := range e.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// LocalAddr returns the bound UDP address (nil before Start). In ReusePort
// mode every shard's socket shares this address.
func (e *Engine) LocalAddr() net.Addr {
	if len(e.conns) == 0 {
		return nil
	}
	return e.conns[0].LocalAddr()
}

// shardFor returns the shard owning session id.
func (e *Engine) shardFor(id uint32) *shard {
	return &e.shards[e.table.shardIndex(id)]
}

// openSession creates, registers and starts a session for id. The first
// datagram's source becomes the session's initial peer. The slow path runs
// lock-free: admission is one atomic against the global cap, the session —
// chain build, raplet bus and all — is constructed with no lock held, and
// only the final registration takes the owning table shard's lock. When two
// readers race to open the same ID, the loser tears its construction down
// and adopts the winner.
func (e *Engine) openSession(id uint32, peer netip.AddrPort) (*Session, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	// Admission is one atomic against the global cap. Under the harvest
	// policy a full table evicts its oldest-idle session and retries; the
	// attempt bound keeps a pathological race (every freed slot snatched by
	// concurrent opens) from spinning the read loop.
	for attempt := 0; ; attempt++ {
		if n := e.active.Add(1); n <= int64(e.cfg.MaxSessions) {
			break
		}
		e.active.Add(-1)
		if e.cfg.Admission != AdmitHarvest || attempt >= 2 || !e.harvestOldestIdle(id) {
			e.shardFor(id).counters.admitDrops.Add(1)
			return nil, ErrSessionLimit
		}
	}
	s, err := newSession(e, id, peer)
	if err != nil {
		e.active.Add(-1)
		return nil, err
	}
	winner, inserted := e.table.insert(id, s, e.closed.Load)
	if !inserted {
		// Lost the construction race to another reader, or the engine closed
		// underneath us: release the slot and discard the unused session.
		e.active.Add(-1)
		s.close()
		if winner == nil {
			return nil, ErrEngineClosed
		}
		return winner, nil
	}
	if s.exited.Load() {
		// The chain died inside the construct→register window, so the exit
		// hook's eviction found nothing to remove. Evict here instead of
		// leaving a dead session blackholing the ID; the next datagram opens
		// a fresh one.
		if e.table.remove(id, s) {
			e.active.Add(-1)
		}
		var cause error
		if cs := s.state(); cs != nil {
			cause = cs.sink.Err()
		}
		s.close()
		if cause != nil {
			return nil, fmt.Errorf("engine: session %d: chain died during open: %w", id, cause)
		}
		return nil, fmt.Errorf("engine: session %d: chain ended during open", id)
	}
	e.shardFor(id).counters.opened.Add(1)
	return s, nil
}

// trackSessionExit reserves a slot in the exit-hook WaitGroup, unless Close
// has already begun waiting on it (the hook then runs untracked — its
// session was never registered, so it early-returns after Close anyway).
// The returned flag tells the hook whether it owns a slot to release.
func (e *Engine) trackSessionExit() bool {
	e.exitMu.Lock()
	defer e.exitMu.Unlock()
	if e.exitWaiting {
		return false
	}
	e.exitWg.Add(1)
	return true
}

// sessionExited runs on a chain incarnation's sink goroutine after that
// chain terminates. A chain that dies on its own — for example because a
// filter stage failed — is evicted so a dead session cannot occupy a slot and
// blackhole its ID forever; deliberate stops (park, close) retired the
// incarnation first and are ignored here. Replacing the old
// one-watchdog-goroutine-per-session design with this exit hook removes a
// third of the engine's per-session goroutines.
func (e *Engine) sessionExited(s *Session, cs *chainState, tracked bool) {
	if tracked {
		defer e.exitWg.Done()
	}
	if cs.retired.Load() {
		return // park or close tore this incarnation down deliberately
	}
	select {
	case <-s.done:
		return // CloseSession / Close is tearing the session down
	default:
	}
	// Flag the death before touching the table: if the session is still in
	// its construct→register window, this remove finds nothing, and it is
	// openSession's post-insert check of this flag that evicts instead (the
	// shard lock orders that check after this store).
	s.exited.Store(true)
	if err := cs.sink.Err(); err != nil {
		s.shard.counters.chainErrors.Add(1)
		e.logf("session %d: chain failed, evicting: %v", s.id, err)
	} else {
		e.logf("session %d: chain ended, evicting", s.id)
	}
	if e.table.remove(s.id, s) {
		e.active.Add(-1)
	}
	s.close()
}

// Session returns the live session with the given ID, or nil.
func (e *Engine) Session(id uint32) *Session { return e.table.lookup(id) }

// SessionCount returns the number of registered sessions (live + parked),
// summed from per-shard gauges in O(shards).
func (e *Engine) SessionCount() int { return e.table.count() }

// CloseSession terminates one session and releases its resources.
func (e *Engine) CloseSession(id uint32) error {
	s, ok := e.table.delete(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	e.active.Add(-1)
	return s.close()
}

// SessionStats snapshots every live session's counters, ordered by session
// ID.
func (e *Engine) SessionStats() []metrics.SessionStats {
	sessions := e.table.snapshot()
	out := make([]metrics.SessionStats, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats aggregates the per-shard counters into an engine-level snapshot. The
// whole snapshot is O(shards) atomic loads — it never walks the session
// table, so reading it under million-session churn costs the same as on an
// empty engine.
func (e *Engine) Stats() Stats {
	st := Stats{
		ActiveSessions: e.table.count(),
		Shards:         len(e.shards),
	}
	parked := int64(0)
	for i := range e.shards {
		c := &e.shards[i].counters
		st.TotalSessions += c.opened.Load()
		st.Datagrams += c.datagrams.Load()
		st.Malformed += c.malformed.Load()
		st.Rejected += c.rejected.Load()
		st.ChainErrors += c.chainErrors.Load()
		st.Feedback += c.feedback.Load()
		st.Nacks += c.nacks.Load()
		st.Retransmits += c.retransmits.Load()
		st.BatchedWrites += c.writes.Load()
		st.WriteFlushes += c.flushes.Load()
		st.WriteDrops += c.writeDrops.Load()
		st.RecvCalls += c.recvCalls.Load()
		st.SendCalls += c.sendCalls.Load()
		st.BypassHits += c.bypassHits.Load()
		st.CoalescedSends += c.coalesced.Load()
		parked += c.parkedNow.Load()
		st.Parks += c.parks.Load()
		st.Unparks += c.unparks.Load()
		st.Harvested += c.harvested.Load()
		st.AdmissionDrops += c.admitDrops.Load()
	}
	st.ParkedSessions = int(parked)
	if st.LiveSessions = st.ActiveSessions - st.ParkedSessions; st.LiveSessions < 0 {
		st.LiveSessions = 0 // transient skew between independent gauges
	}
	return st
}

// EngineStats implements the control plane's EngineSource; it is Stats under
// the name the interface wants.
func (e *Engine) EngineStats() metrics.EngineStats { return e.Stats() }

// ShardStats snapshots every shard's counters, ordered by shard index.
func (e *Engine) ShardStats() []metrics.ShardStats {
	out := make([]metrics.ShardStats, len(e.shards))
	for i := range e.shards {
		out[i] = e.shards[i].stats()
	}
	return out
}

// Close shuts down the shard runtime and every session. It is idempotent.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	sessions := e.table.sweep()
	e.active.Add(-int64(len(sessions)))
	firstErr := e.closeConns() // unblocks every reader
	for _, s := range sessions {
		if err := s.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Every registered session's chain has now been stopped, so every
	// tracked exit hook has fired or is firing; wait them out, then stop
	// the writers (they drain and release whatever is still queued).
	e.exitMu.Lock()
	e.exitWaiting = true
	e.exitMu.Unlock()
	e.exitWg.Wait()
	close(e.stopWriters)
	e.wg.Wait()
	e.logf("closed (%d sessions served)", e.Stats().TotalSessions)
	return firstErr
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logger != nil {
		e.cfg.Logger.Printf("engine %s: "+format, append([]any{e.cfg.Name}, args...)...)
	}
}
