// Package engine lifts the single-stream RAPIDware proxy into a concurrent
// multi-session relay over real UDP datagrams. One Engine owns one UDP
// socket; every datagram carries a 4-byte session ID followed by an ordinary
// packet frame (see internal/packet). The engine demultiplexes datagrams by
// session ID into per-session filter chains — each an independent instance of
// the paper's ControlThread, so filters can still be inserted, removed and
// reordered on any live session — and relays each chain's output either back
// to the session's sender (echo mode) or to a fixed downstream address.
//
// The steady-state relay path is allocation-free: datagrams travel in pooled
// buffers (packet.GetBuf) from the socket read, through the chain's
// detachable streams, to the socket write, and session lookup, peer tracking
// and counters all avoid per-packet allocation.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rapidware/internal/adapt"
	"rapidware/internal/metrics"
	"rapidware/internal/multicast"
	"rapidware/internal/packet"
)

// Defaults applied by New.
const (
	DefaultMaxSessions = 256
	DefaultQueueDepth  = 256
)

// Errors returned by the engine.
var (
	// ErrEngineClosed is returned by operations on a closed engine.
	ErrEngineClosed = errors.New("engine: closed")
	// ErrSessionLimit is returned when a new session would exceed MaxSessions.
	ErrSessionLimit = errors.New("engine: session limit reached")
	// ErrUnknownSession is returned by CloseSession for an unknown ID.
	ErrUnknownSession = errors.New("engine: unknown session")
)

// Config describes an Engine.
type Config struct {
	// Name identifies the engine in logs and control replies.
	Name string
	// ListenAddr is the UDP address to serve on (e.g. ":7400", "127.0.0.1:0").
	ListenAddr string
	// MaxSessions caps concurrent sessions; 0 selects DefaultMaxSessions.
	MaxSessions int
	// Chain is the default chain spec instantiated for every new session; see
	// ParseChain for the syntax. Empty means a pure relay (no interior
	// filters).
	Chain string
	// Forward, when non-empty, is the downstream UDP address all relayed
	// datagrams are sent to. When empty the engine echoes each session's
	// output back to that session's most recent sender.
	Forward string
	// QueueDepth bounds each session's inbound datagram queue; 0 selects
	// DefaultQueueDepth. When the queue is full new datagrams are dropped and
	// counted, UDP-style, rather than blocking the shared read loop.
	QueueDepth int
	// AllowRoaming lets a session's echo destination follow its most recent
	// sender (for mobile clients whose address changes mid-session). Off by
	// default: the peer is pinned to the session's first sender so a datagram
	// that merely guesses a session ID cannot redirect the stream.
	AllowRoaming bool
	// Fanout lists downstream UDP receiver addresses every session's output
	// is multicast to (application-level fan-out). Mutually exclusive with
	// Forward. Receivers can also be added and removed at run time through
	// FanoutGroup.
	Fanout []string
	// Adapt enables the closed-loop adaptation plane: each session gets a
	// raplet bus, a worst-loss observer fed by receiver reports (KindFeedback
	// datagrams sent upstream on the engine socket), and an FEC responder
	// that splices an adaptive encoder into the session's live chain as loss
	// appears, retunes its (n,k) as loss moves between policy levels, and
	// removes it again on a clean link.
	Adapt bool
	// AdaptPolicy is the loss → (n,k) ladder used when Adapt is set; the
	// zero value selects adapt.DefaultPolicy.
	AdaptPolicy adapt.Policy
	// Logger receives engine lifecycle messages; nil disables logging.
	Logger *log.Logger
}

// Stats is an engine-level counter snapshot.
type Stats struct {
	ActiveSessions int    `json:"active_sessions"`
	TotalSessions  uint64 `json:"total_sessions"`
	Datagrams      uint64 `json:"datagrams"`
	Malformed      uint64 `json:"malformed"`
	Rejected       uint64 `json:"rejected"`
	ChainErrors    uint64 `json:"chain_errors"`
	Feedback       uint64 `json:"feedback"`
}

// Engine is a multi-session UDP proxy.
type Engine struct {
	cfg      Config
	policy   adapt.Policy // resolved adaptation policy (valid iff cfg.Adapt)
	builders []StageBuilder

	conn    *net.UDPConn
	forward netip.AddrPort       // zero value when echoing to senders
	group   *multicast.AddrGroup // non-nil when fanning out to receivers

	mu       sync.RWMutex
	sessions map[uint32]*Session
	closed   bool

	wg sync.WaitGroup

	opened      atomic.Uint64
	datagrams   atomic.Uint64
	malformed   atomic.Uint64
	rejected    atomic.Uint64
	chainErrors atomic.Uint64
	feedback    atomic.Uint64
}

// New validates cfg (including the chain spec) and returns an engine ready to
// Start.
func New(cfg Config) (*Engine, error) {
	if cfg.Name == "" {
		cfg.Name = "engine"
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	builders, err := ParseChain(cfg.Chain)
	if err != nil {
		return nil, err
	}
	if cfg.Forward != "" && len(cfg.Fanout) > 0 {
		return nil, errors.New("engine: Forward and Fanout are mutually exclusive")
	}
	if cfg.Adapt && chainSpecHasFECEncode(cfg.Chain) {
		// A static encoder under the adaptation plane would re-encode the
		// adaptive encoder's output (parity-of-parity) the moment loss
		// appears. The plane owns FEC encoding; fail fast instead.
		return nil, errors.New("engine: Adapt manages the FEC encoder itself; remove fec-encode from Chain")
	}
	e := &Engine{
		cfg:      cfg,
		builders: builders,
		sessions: make(map[uint32]*Session),
	}
	if cfg.Adapt {
		e.policy = cfg.AdaptPolicy
		if len(e.policy.Levels) == 0 {
			e.policy = adapt.DefaultPolicy()
		}
		if err := e.policy.Validate(); err != nil {
			return nil, err
		}
	}
	if len(cfg.Fanout) > 0 {
		e.group = multicast.NewAddrGroup(cfg.Name + "-fanout")
		for _, addr := range cfg.Fanout {
			udp, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				return nil, fmt.Errorf("engine: resolve fanout %q: %w", addr, err)
			}
			e.group.Add(udp.AddrPort())
		}
	}
	return e, nil
}

// FanoutGroup returns the downstream receiver group sessions multicast to,
// or nil when the engine echoes or forwards instead. Membership may be
// changed at run time; sessions pick the new set up on their next packet,
// and a removed member's loss reports are pruned from each session's
// adaptation state on the next report.
func (e *Engine) FanoutGroup() *multicast.AddrGroup { return e.group }

// receiverAuthorized reports whether a feedback datagram's source is one of
// the session's legitimate downstream receivers: a fan-out group member, the
// forward destination, or (in echo mode) the session's pinned peer. The gate
// mirrors the data path's peer pinning — an off-path host that merely
// guesses a session ID must not be able to steer its FEC level. from must
// already be in canonical (unmapped) form; e.forward and group members are
// stored that way, and the peer is canonicalized here.
func (e *Engine) receiverAuthorized(s *Session, from netip.AddrPort) bool {
	switch {
	case e.group != nil:
		return e.group.Contains(from)
	case e.forward.IsValid():
		return from == e.forward
	default:
		return from == multicast.UnmapAddrPort(s.Peer())
	}
}

// chainSpecHasFECEncode reports whether a chain spec contains a static FEC
// encoder stage.
func chainSpecHasFECEncode(spec string) bool {
	for _, part := range strings.Split(spec, ",") {
		kind, _, _ := strings.Cut(strings.TrimSpace(part), "=")
		if kind == "fec-encode" {
			return true
		}
	}
	return false
}

// Start binds the UDP socket and launches the shared read loop.
func (e *Engine) Start() error {
	addr, err := net.ResolveUDPAddr("udp", e.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("engine: resolve %q: %w", e.cfg.ListenAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return fmt.Errorf("engine: listen %q: %w", e.cfg.ListenAddr, err)
	}
	// Large socket buffers absorb the bursts produced by hundreds of
	// concurrent sessions sharing one socket. Failures are advisory (the OS
	// may clamp the value), so errors are ignored.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	if e.cfg.Forward != "" {
		fwd, err := net.ResolveUDPAddr("udp", e.cfg.Forward)
		if err != nil {
			conn.Close()
			return fmt.Errorf("engine: resolve forward %q: %w", e.cfg.Forward, err)
		}
		// Unmap 4-in-6 addresses so writes work regardless of the socket's
		// address family.
		e.forward = multicast.UnmapAddrPort(fwd.AddrPort())
	}
	e.conn = conn
	e.wg.Add(1)
	go e.readLoop()
	e.logf("serving UDP on %s (max %d sessions, chain %q)", conn.LocalAddr(), e.cfg.MaxSessions, e.cfg.Chain)
	if e.cfg.Adapt {
		e.logf("adaptation plane on (policy %s)", e.policy)
	}
	if e.group != nil {
		e.logf("fanning out to %d receivers", e.group.Len())
	}
	return nil
}

// LocalAddr returns the bound UDP address (nil before Start).
func (e *Engine) LocalAddr() net.Addr {
	if e.conn == nil {
		return nil
	}
	return e.conn.LocalAddr()
}

// readLoop is the shared demultiplexer: one goroutine reads every datagram
// from the socket and routes it to its session's queue. Nothing on this path
// allocates in steady state.
func (e *Engine) readLoop() {
	defer e.wg.Done()
	for {
		b := packet.GetBuf(packet.MaxDatagram)
		n, from, err := e.conn.ReadFromUDPAddrPort(b.B)
		if err != nil {
			b.Release()
			if errors.Is(err, net.ErrClosed) {
				return
			}
			e.mu.RLock()
			closed := e.closed
			e.mu.RUnlock()
			if closed {
				return
			}
			e.logf("read: %v", err)
			continue
		}
		e.datagrams.Add(1)
		if n < packet.SessionIDSize {
			e.malformed.Add(1)
			b.Release()
			continue
		}
		b.B = b.B[:n]
		// Reject garbage before it can reach (or create) a session: a frame
		// that fails validation would otherwise kill the session's chain.
		if packet.ValidateFrame(b.B[packet.SessionIDSize:]) != nil {
			e.malformed.Add(1)
			b.Release()
			continue
		}
		id := binary.BigEndian.Uint32(b.B)
		// Receiver reports close the adaptation loop on the control path:
		// they are consumed here, never enter a chain, and never open a
		// session (a report for an unknown session is simply dropped).
		if packet.Kind(b.B[packet.SessionIDSize+3]) == packet.KindFeedback {
			e.feedback.Add(1)
			if s := e.lookup(id); s != nil {
				s.handleFeedback(from, b.B[packet.SessionIDSize:])
			}
			b.Release()
			continue
		}
		s := e.lookup(id)
		if s == nil {
			var err error
			s, err = e.openSession(id, from)
			if err != nil {
				e.rejected.Add(1)
				b.Release()
				if !errors.Is(err, ErrSessionLimit) && !errors.Is(err, ErrEngineClosed) {
					e.logf("session %d: %v", id, err)
				}
				continue
			}
		}
		s.deliver(b, from)
	}
}

// lookup returns the session with the given ID, or nil.
func (e *Engine) lookup(id uint32) *Session {
	e.mu.RLock()
	s := e.sessions[id]
	e.mu.RUnlock()
	return s
}

// openSession creates, registers and starts a session for id. The first
// datagram's source becomes the session's initial peer.
func (e *Engine) openSession(id uint32, peer netip.AddrPort) (*Session, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	if s, ok := e.sessions[id]; ok {
		return s, nil
	}
	if len(e.sessions) >= e.cfg.MaxSessions {
		return nil, ErrSessionLimit
	}
	s, err := newSession(e, id, peer)
	if err != nil {
		return nil, err
	}
	e.sessions[id] = s
	e.opened.Add(1)
	e.wg.Add(1)
	go e.watchSession(s)
	return s, nil
}

// watchSession evicts a session whose chain terminates on its own — for
// example because a filter stage failed — so a dead session cannot occupy a
// slot and blackhole its ID forever. Deliberate closes are ignored.
func (e *Engine) watchSession(s *Session) {
	defer e.wg.Done()
	s.sink.Wait()
	select {
	case <-s.done:
		return // CloseSession / Close is tearing the session down
	default:
	}
	if err := s.sink.Err(); err != nil {
		e.chainErrors.Add(1)
		e.logf("session %d: chain failed, evicting: %v", s.id, err)
	} else {
		e.logf("session %d: chain ended, evicting", s.id)
	}
	e.mu.Lock()
	if e.sessions[s.id] == s {
		delete(e.sessions, s.id)
	}
	e.mu.Unlock()
	s.close()
}

// Session returns the live session with the given ID, or nil.
func (e *Engine) Session(id uint32) *Session { return e.lookup(id) }

// SessionCount returns the number of live sessions.
func (e *Engine) SessionCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.sessions)
}

// CloseSession terminates one session and releases its resources.
func (e *Engine) CloseSession(id uint32) error {
	e.mu.Lock()
	s, ok := e.sessions[id]
	delete(e.sessions, id)
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	return s.close()
}

// SessionStats snapshots every live session's counters, ordered by session
// ID.
func (e *Engine) SessionStats() []metrics.SessionStats {
	e.mu.RLock()
	out := make([]metrics.SessionStats, 0, len(e.sessions))
	for _, s := range e.sessions {
		out = append(out, s.Stats())
	}
	e.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots the engine-level counters.
func (e *Engine) Stats() Stats {
	return Stats{
		ActiveSessions: e.SessionCount(),
		TotalSessions:  e.opened.Load(),
		Datagrams:      e.datagrams.Load(),
		Malformed:      e.malformed.Load(),
		Rejected:       e.rejected.Load(),
		ChainErrors:    e.chainErrors.Load(),
		Feedback:       e.feedback.Load(),
	}
}

// Close shuts down the read loop and every session. It is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	sessions := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.sessions = make(map[uint32]*Session)
	e.mu.Unlock()

	var firstErr error
	if e.conn != nil {
		if err := e.conn.Close(); err != nil {
			firstErr = err
		}
	}
	for _, s := range sessions {
		if err := s.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.wg.Wait()
	e.logf("closed (%d sessions served)", e.opened.Load())
	return firstErr
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logger != nil {
		e.cfg.Logger.Printf("engine %s: "+format, append([]any{e.cfg.Name}, args...)...)
	}
}
