package engine

import (
	"fmt"
	"net/netip"
	"sync"

	"rapidware/internal/adapt"
	"rapidware/internal/metrics"
	"rapidware/internal/multicast"
	"rapidware/internal/packet"
	"rapidware/internal/raplet"
)

// sessionAdaptor is one session's closed adaptation loop: receiver reports
// arriving on the engine socket feed a worst-loss observer raplet, the
// observer publishes loss-rate events on the session's bus, and a chain FEC
// responder reconciles the session's live chain with the policy ladder —
// splicing an adaptive encoder in when loss appears, retuning its (n,k) as
// loss moves between levels, and splicing it out again on a clean link. All
// of it runs on the bus's dispatch goroutine; the relay hot path never sees
// the adaptor.
type sessionAdaptor struct {
	bus  *raplet.Bus
	obs  *raplet.WorstLossObserver
	resp *raplet.ChainFECResponder

	mu         sync.Mutex
	reports    uint64
	lastReport packet.Report
}

// newSessionAdaptor assembles and starts the loop for s. The chain may
// already be live; the responder only touches it when events arrive.
func newSessionAdaptor(s *Session, policy adapt.Policy) (*sessionAdaptor, error) {
	bus := raplet.NewBus(64)
	obs := raplet.NewWorstLossObserver(fmt.Sprintf("loss-observer:%d", s.id), bus)
	resp, err := raplet.NewChainFECResponder(fmt.Sprintf("adapt:%d", s.id), s.chain, policy, s.id, 1)
	if err != nil {
		return nil, err
	}
	bus.Subscribe(raplet.EventLossRate, resp)
	if err := bus.Start(); err != nil {
		return nil, err
	}
	// Prime the loop with a synchronous clean-link event so a policy whose
	// cleanest rung already demands FEC (always-on protection) has its
	// encoder spliced in before the session's first packet can enter the
	// chain; for ordinary ladders this is a no-op. Synchronous is safe here:
	// the session is not yet registered, so no packets or reports flow.
	if err := resp.Handle(raplet.Event{Type: raplet.EventLossRate, Source: obs.Name(), Value: 0}); err != nil {
		bus.Stop()
		return nil, err
	}
	return &sessionAdaptor{bus: bus, obs: obs, resp: resp}, nil
}

// pruneReceivers drops tracked receivers that are no longer members of the
// session's fan-out group, so a departed station's last report cannot pin
// the code at a strong level.
func (a *sessionAdaptor) pruneReceivers(g *multicast.AddrGroup) {
	a.obs.Prune(func(receiver string) bool {
		ap, err := netip.ParseAddrPort(receiver)
		return err == nil && g.Contains(ap)
	})
}

// report feeds one receiver report into the loop. receiver identifies the
// reporting station (the engine uses the datagram's source address), so a
// fan-out session adapts to the worst of its receivers.
func (a *sessionAdaptor) report(receiver string, rep packet.Report) {
	a.mu.Lock()
	a.reports++
	if rep.HighestSeq >= a.lastReport.HighestSeq {
		a.lastReport = rep
	}
	a.mu.Unlock()
	a.obs.Report(receiver, rep.LossFraction())
}

// stop shuts the loop down, draining queued events first.
func (a *sessionAdaptor) stop() { a.bus.Stop() }

// stats snapshots the loop for control-protocol replies.
func (a *sessionAdaptor) stats() *metrics.AdaptStats {
	a.mu.Lock()
	reports, last := a.reports, a.lastReport
	a.mu.Unlock()
	params := a.resp.Current()
	return &metrics.AdaptStats{
		K:          params.K,
		N:          params.N,
		Active:     a.resp.Active(),
		LossRate:   a.resp.LastLoss(),
		Reports:    reports,
		Receivers:  a.obs.Receivers(),
		Retunes:    a.resp.Retunes(),
		HighestSeq: last.HighestSeq,
	}
}
