package engine

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"rapidware/internal/adapt"
	"rapidware/internal/compose"
	"rapidware/internal/fec"
	"rapidware/internal/metrics"
	"rapidware/internal/packet"
	"rapidware/internal/raplet"
)

// sessionAdaptor is one session's closed adaptation plane: a raplet bus plus
// one receiverLoop per downstream receiver. Each loop pairs an observer fed
// by that receiver's own loss reports with a chain FEC responder reconciling
// the chain that carries that receiver's copy of the stream — the session
// trunk on unicast (echo/forward) sessions, the receiver's delivery branch on
// fan-out sessions. Per-receiver loops are what break the old worst-case
// coupling: one station's bad radio link retunes only its own branch. All
// chain surgery runs on the bus's dispatch goroutine; the relay hot path
// never sees the adaptor.
type sessionAdaptor struct {
	s      *Session
	bus    *raplet.Bus
	policy adapt.Policy

	// lastSweep (unix nanos) rate-limits staleness sweeps: aging only has to
	// resolve at the window's granularity, so sweeping every loop on every
	// report — O(receivers²) observer scans per report window — is gated to
	// a fraction of the window instead. The engine's maintenance tick stamps
	// it when it sweeps (park.go), pushing the next opportunistic
	// report-path sweep out past its own.
	lastSweep atomic.Int64

	// retuned counts every retune decision any of the session's responders
	// ever made, including loops that have since been removed. It is bumped
	// at the bus-dispatch choke point, so polling it (Session.AdaptRetunes)
	// is one atomic load — no lock shared with the report path.
	retuned atomic.Uint64

	mu    sync.Mutex
	loops map[string]*receiverLoop
}

// trunkReceiver keys the single loop of a unicast session, whose one
// legitimate receiver is already pinned by the data path (the session peer or
// the forward destination).
const trunkReceiver = ""

// newSessionAdaptor assembles and starts the plane for one chain incarnation
// of s. On unicast sessions it immediately installs the trunk loop on the
// incarnation's live chain; on fan-out sessions loops are added and removed
// with their delivery branches. Timer-driven staleness aging — needed so a
// receiver decays back to the clean-link path even when no report ever
// arrives to piggyback a sweep on — is driven by the engine's single
// maintenance ticker (park.go), not a goroutine here: at a million sessions
// one timer per session would dominate the scheduler.
func newSessionAdaptor(s *Session, cs *chainState, policy adapt.Policy) (*sessionAdaptor, error) {
	a := &sessionAdaptor{
		s:      s,
		bus:    raplet.NewBus(64),
		policy: policy,
		loops:  make(map[string]*receiverLoop),
	}
	if err := a.bus.Start(); err != nil {
		return nil, err
	}
	if !s.eng.branching {
		if _, err := a.addTrunkLoop(cs.live); err != nil {
			a.bus.Stop()
			return nil, err
		}
	}
	return a, nil
}

// repairResponder is the loop-facing surface of a receiver's repair state
// machine. Trunk loops use raplet.ChainFECResponder, which splices and
// retunes an encoder on the receiver's private chain; fan-out member loops
// use the engine's memberResponder, which moves the member between shared
// delivery cohorts instead. The accessors feed stats.
type repairResponder interface {
	Handle(raplet.Event) error
	Current() fec.Params
	Mechanism() adapt.Mechanism
	LastLoss() float64
	Retunes() uint64
	Active() bool
}

// sweepAll sweeps every loop's observer for receivers whose last report has
// gone stale. Called from the engine's maintenance tick and (gated) the
// report path.
func (a *sessionAdaptor) sweepAll() {
	a.mu.Lock()
	loops := make([]*receiverLoop, 0, len(a.loops))
	for _, l := range a.loops {
		loops = append(loops, l)
	}
	a.mu.Unlock()
	for _, l := range loops {
		l.obs.Sweep()
	}
}

// receiverLoop is the adaptation loop of one downstream receiver: its
// observer republishes the receiver's reported loss on the session bus, and
// its responder splices/retunes/removes an adaptive FEC encoder on the chain
// serving that receiver. The subscriber filters bus events by source so
// sibling loops on the same bus never cross-trigger.
type receiverLoop struct {
	key  string
	obs  *raplet.WorstLossObserver
	resp repairResponder
	sub  raplet.ResponderFunc

	mu         sync.Mutex
	reports    uint64
	lastReport packet.Report
}

// addTrunkLoop builds, subscribes and primes the unicast session's loop on
// the given live chain; the responder splices its encoder at the plan's
// fec-adapt marker. Priming delivers a synchronous clean-link event so a
// policy whose cleanest rung already demands FEC (always-on protection) has
// its encoder spliced in before the chain carries its first packet; for
// ordinary ladders it is a no-op. Synchronous is safe: the chain is not yet
// receiving (the session is unregistered) and the fresh observer has
// published nothing the dispatch goroutine could race with.
func (a *sessionAdaptor) addTrunkLoop(live *compose.Live) (*receiverLoop, error) {
	resp, err := raplet.NewChainFECResponder(fmt.Sprintf("adapt:%d:%s", a.s.id, trunkReceiver), live, a.policy, a.s.id)
	if err != nil {
		return nil, err
	}
	return a.addLoop(trunkReceiver, resp, true)
}

// addMemberLoop builds and subscribes the loop for one fan-out member. No
// synchronous prime: the delivery tree already placed the member into the
// cohort the policy's clean-link decision selects, and the responder's Handle
// would re-enter the tree's lock.
func (a *sessionAdaptor) addMemberLoop(key string, resp repairResponder) (*receiverLoop, error) {
	return a.addLoop(key, resp, false)
}

// addLoop wires one receiver's observer → responder loop onto the session
// bus. The subscriber filters by the observer's source name so sibling loops
// never cross-trigger.
func (a *sessionAdaptor) addLoop(key string, resp repairResponder, prime bool) (*receiverLoop, error) {
	obsName := fmt.Sprintf("loss:%d:%s", a.s.id, key)
	l := &receiverLoop{key: key, obs: raplet.NewWorstLossObserver(obsName, a.bus), resp: resp}
	if window := a.s.eng.cfg.ReportStaleness; window > 0 {
		l.obs.SetStaleness(window, nil)
	}
	handle := func(e raplet.Event) error {
		before := resp.Retunes()
		err := resp.Handle(e)
		if d := resp.Retunes() - before; d != 0 {
			a.retuned.Add(d)
		}
		return err
	}
	l.sub = raplet.ResponderFunc{
		RName: obsName + ":responder",
		Fn: func(e raplet.Event) error {
			if e.Source != obsName {
				return nil
			}
			return handle(e)
		},
	}
	a.bus.Subscribe(raplet.EventLossRate, l.sub)
	if prime {
		if err := handle(raplet.Event{Type: raplet.EventLossRate, Source: obsName, Value: 0}); err != nil {
			a.bus.Unsubscribe(raplet.EventLossRate, l.sub.Name())
			return nil, err
		}
	}
	a.mu.Lock()
	a.loops[key] = l
	a.mu.Unlock()
	return l, nil
}

// removeLoop unsubscribes a departed receiver's loop from the bus and forgets
// it; the branch being torn down takes the spliced encoder with it.
func (a *sessionAdaptor) removeLoop(l *receiverLoop) {
	a.bus.Unsubscribe(raplet.EventLossRate, l.sub.Name())
	a.mu.Lock()
	delete(a.loops, l.key)
	a.mu.Unlock()
}

// report routes one receiver report to the reporter's own loop — keyed by the
// report datagram's (canonicalized) source address on fan-out sessions, the
// trunk loop otherwise — then sweeps every loop for receivers whose last
// report has gone stale, so a crashed station decays back to the clean-link
// path while any of its siblings still report.
func (a *sessionAdaptor) report(from netip.AddrPort, rep packet.Report) {
	key := trunkReceiver
	if a.s.eng.branching {
		key = from.String()
	}
	window := a.s.eng.cfg.ReportStaleness
	aging := window > 0
	if aging {
		// At most one full sweep per quarter window: enough resolution for
		// decay, without scanning every observer on every report.
		now := time.Now().UnixNano()
		last := a.lastSweep.Load()
		if now-last < int64(window/4) || !a.lastSweep.CompareAndSwap(last, now) {
			aging = false
		}
	}
	a.mu.Lock()
	loop := a.loops[key]
	a.mu.Unlock()
	if loop != nil {
		loop.report(from.String(), rep)
	}
	if aging {
		a.sweepAll()
	}
}

// report feeds one report into the loop.
func (l *receiverLoop) report(receiver string, rep packet.Report) {
	l.mu.Lock()
	l.reports++
	if rep.HighestSeq >= l.lastReport.HighestSeq {
		l.lastReport = rep
	}
	l.mu.Unlock()
	l.obs.ReportLink(receiver, rep.LossFraction(), rep.RTTMillis)
}

// snapshot returns the loop's report counters.
func (l *receiverLoop) snapshot() (reports uint64, last packet.Report) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reports, l.lastReport
}

// fill copies the loop's adaptation state into a receiver-stats entry.
func (l *receiverLoop) fill(st *metrics.ReceiverStats) {
	reports, last := l.snapshot()
	params := l.resp.Current()
	st.K, st.N = params.K, params.N
	st.Active = l.resp.Active()
	st.LossRate = l.resp.LastLoss()
	st.Reports = reports
	st.Retunes = l.resp.Retunes()
	st.HighestSeq = last.HighestSeq
	st.Mechanism = l.resp.Mechanism().String()
}

// retunes returns the monotonic count of retune decisions across the
// session's lifetime: encoder splices on trunk loops, cohort moves on member
// loops, including loops since removed. One atomic load, safe to busy-poll.
func (a *sessionAdaptor) retunes() uint64 {
	return a.retuned.Load()
}

// stop shuts the plane down, draining queued bus events. (The engine's
// maintenance tick may still call sweepAll concurrently — sweeps only read
// observers, which outlive the bus.)
func (a *sessionAdaptor) stop() {
	a.bus.Stop()
}

// stats aggregates the plane for control-protocol replies. With several
// receiver loops (a fan-out session) the protection columns report the most
// protected branch — the group's weakest receiver — while reports, receivers,
// retunes and expirations sum across loops; the per-receiver breakdown lives
// in SessionStats.Receivers.
func (a *sessionAdaptor) stats() *metrics.AdaptStats {
	a.mu.Lock()
	loops := make([]*receiverLoop, 0, len(a.loops))
	for _, l := range a.loops {
		loops = append(loops, l)
	}
	a.mu.Unlock()

	agg := &metrics.AdaptStats{K: 1, N: 1}
	var worst *receiverLoop
	worstN, worstLoss := -1, -1.0
	for _, l := range loops {
		reports, last := l.snapshot()
		agg.Reports += reports
		agg.Receivers += l.obs.Receivers()
		agg.Retunes += l.resp.Retunes()
		agg.Expired += l.obs.Expired()
		if last.HighestSeq > agg.HighestSeq {
			agg.HighestSeq = last.HighestSeq
		}
		n, loss := l.resp.Current().N, l.resp.LastLoss()
		if n > worstN || (n == worstN && loss > worstLoss) {
			worst, worstN, worstLoss = l, n, loss
		}
	}
	if worst != nil {
		params := worst.resp.Current()
		agg.K, agg.N = params.K, params.N
		agg.Active = worst.resp.Active()
		agg.LossRate = worst.resp.LastLoss()
		agg.Mechanism = worst.resp.Mechanism().String()
	}
	return agg
}
