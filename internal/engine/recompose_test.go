package engine

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rapidware/internal/metrics"
	"rapidware/internal/packet"
)

// openEchoSession opens one engine session over its own UDP socket and
// verifies the relay path before handing the socket back.
func openEchoSession(t *testing.T, e *Engine, id uint32) *net.UDPConn {
	t.Helper()
	c := dialEngine(t, e)
	sendPacket(t, c, id, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: []byte("open")})
	gotID, _ := readPacket(t, c, 2*time.Second)
	if gotID != id {
		t.Fatalf("echo for session %d, want %d", gotID, id)
	}
	return c
}

func TestEngineRecomposeSession(t *testing.T) {
	e := newTestEngine(t, Config{Chain: "counting"})
	c := openEchoSession(t, e, 7)

	// Full rewrite: the counting instance survives (same kind+arg), a
	// checksum stage joins.
	chain, err := e.RecomposeSession(7, "", "checksum,counting")
	if err != nil {
		t.Fatalf("RecomposeSession: %v", err)
	}
	if chain != "checksum,counting" {
		t.Fatalf("chain after recompose = %q", chain)
	}
	// Traffic still relays, and the per-stage view reflects the new plan.
	sendPacket(t, c, 7, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("post")})
	readPacket(t, c, 2*time.Second)
	st := e.Session(7).Stats()
	if st.Chain != "checksum,counting" || len(st.Stages) != 2 {
		t.Fatalf("session stats chain = %q stages %+v", st.Chain, st.Stages)
	}
	if st.Stages[0].Kind != "checksum" || !st.Stages[0].Active || st.Stages[0].Name == "" {
		t.Fatalf("stage 0 = %+v", st.Stages[0])
	}

	// Single-stage operations address plan positions.
	if chain, err = e.InsertSessionStage(7, "", "delay=1ms", 1); err != nil || chain != "checksum,delay=1ms,counting" {
		t.Fatalf("InsertSessionStage = %q, %v", chain, err)
	}
	if chain, err = e.MoveSessionStage(7, "", 1, 0); err != nil || chain != "delay=1ms,checksum,counting" {
		t.Fatalf("MoveSessionStage = %q, %v", chain, err)
	}
	if chain, err = e.RemoveSessionStage(7, "", "delay"); err != nil || chain != "checksum,counting" {
		t.Fatalf("RemoveSessionStage by kind = %q, %v", chain, err)
	}
	if chain, err = e.RemoveSessionStage(7, "", "0"); err != nil || chain != "counting" {
		t.Fatalf("RemoveSessionStage by position = %q, %v", chain, err)
	}

	// Errors: unknown session, unknown receiver, invalid stage, bad selector.
	if _, err := e.RecomposeSession(404, "", ""); err == nil {
		t.Fatal("recompose of an unknown session succeeded")
	}
	if _, err := e.RecomposeSession(7, "127.0.0.1:9", ""); err == nil {
		t.Fatal("branch recompose on a unicast session succeeded")
	}
	if _, err := e.InsertSessionStage(7, "", "bogus", 0); err == nil {
		t.Fatal("insert of an unknown stage kind succeeded")
	}
	if _, err := e.InsertSessionStage(7, "", "counting,checksum", 0); err == nil {
		t.Fatal("insert of a multi-stage spec succeeded")
	}
	if _, err := e.RecomposeSession(7, "", "fec-adapt"); err == nil {
		t.Fatal("marker accepted on a non-adaptive trunk")
	}
}

// TestEngineRecomposeRejectsStaticFECBesideMarker guards the constructor's
// parity-of-parity invariant on the live path: a recompose may not put a
// static fec-encode next to the adaptation plane's fec-adapt marker.
func TestEngineRecomposeRejectsStaticFECBesideMarker(t *testing.T) {
	e := newTestEngine(t, Config{Adapt: true})
	openEchoSession(t, e, 3)
	if _, err := e.RecomposeSession(3, "", "fec-adapt,fec-encode=6/4"); err == nil {
		t.Fatal("live recompose accepted fec-encode beside the fec-adapt marker")
	}
	// The injected marker is preserved by a legal rewrite, so adaptation
	// keeps working after operator recompositions.
	chain, err := e.RecomposeSession(3, "", "fec-adapt,counting")
	if err != nil {
		t.Fatal(err)
	}
	if chain != "fec-adapt,counting" {
		t.Fatalf("chain = %q", chain)
	}
}

// TestEngineRecomposeUnderLoad hammers live sessions spread across shards
// with concurrent recompose operations while each session carries traffic —
// the race-detector workout for the composition plane's splice path.
func TestEngineRecomposeUnderLoad(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4, Chain: "counting"})
	const (
		sessions   = 8
		duration   = 400 * time.Millisecond
		recomposer = 2 // concurrent recomposers per session
	)
	specs := []string{
		"counting",
		"counting,checksum",
		"checksum,null,counting",
		"",
		"null",
	}

	conns := make([]*net.UDPConn, sessions)
	for i := range conns {
		conns[i] = openEchoSession(t, e, uint32(i+1))
	}

	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		sent      [sessions]atomic.Uint64
		recomps   atomic.Uint64
		recompErr atomic.Uint64
	)
	// Traffic: every session keeps sending and draining echoes.
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := conns[i]
			id := uint32(i + 1)
			buf := make([]byte, packet.MaxDatagram)
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				sendPacket(t, c, id, &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte{byte(seq)}})
				sent[i].Add(1)
				c.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
				for {
					if _, err := c.Read(buf); err != nil {
						break
					}
				}
			}
		}(i)
	}
	// Recomposers: concurrent full rewrites of every session's trunk.
	for i := 0; i < sessions; i++ {
		for r := 0; r < recomposer; r++ {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				id := uint32(i + 1)
				for n := r; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := e.RecomposeSession(id, "", specs[n%len(specs)]); err != nil {
						// A session evicted mid-storm is tolerable churn, not a
						// composition bug; anything else fails the test.
						if !strings.Contains(err.Error(), "unknown session") {
							recompErr.Add(1)
							t.Errorf("session %d recompose: %v", id, err)
							return
						}
						continue
					}
					recomps.Add(1)
				}
			}(i, r)
		}
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if recompErr.Load() > 0 {
		t.Fatalf("%d recompose errors under load", recompErr.Load())
	}
	if recomps.Load() < sessions*recomposer {
		t.Fatalf("only %d recompositions completed", recomps.Load())
	}

	// Every session survived the storm and still relays after one final
	// deterministic recompose.
	for i := 0; i < sessions; i++ {
		id := uint32(i + 1)
		if chain, err := e.RecomposeSession(id, "", "counting"); err != nil || chain != "counting" {
			t.Fatalf("session %d final recompose = %q, %v", id, chain, err)
		}
		sendPacket(t, conns[i], id, &packet.Packet{Seq: 1 << 30, Kind: packet.KindData, Payload: []byte("fin")})
		// Stale echoes from the storm may still be queued on the socket;
		// drain until the fin comes back.
		deadline := time.Now().Add(2 * time.Second)
		for {
			gotID, p := readPacket(t, conns[i], time.Until(deadline))
			if gotID == id && p.Seq == 1<<30 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %d dead after recompose storm", id)
			}
		}
	}
}

// TestEngineRecomposeVsResponderRetune interleaves control-plane branch
// recompositions with the branch responder's own feedback-driven retunes on
// a fan-out delivery branch: the two writers share the branch's splice lock,
// so neither may corrupt the chain or deadlock.
func TestEngineRecomposeVsResponderRetune(t *testing.T) {
	rx, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	e := newTestEngine(t, Config{
		Adapt:  true,
		Branch: "fec-adapt,thin=1",
		Fanout: []string{rx.LocalAddr().String()},
	})
	c := dialEngine(t, e)
	const id = 11
	sendPacket(t, c, id, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: []byte("prime")})
	rx.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := rx.Read(make([]byte, packet.MaxDatagram)); err != nil {
		t.Fatalf("branch prime: %v", err)
	}
	receiver := rx.LocalAddr().(*net.UDPAddr).AddrPort().String()

	var (
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	// Feedback storm: alternating lossy and clean reports drive the branch
	// responder through insert/retune/remove cycles on the bus goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		engAddr := e.LocalAddr().(*net.UDPAddr)
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			rep := packet.Report{Received: 100, Window: 100}
			switch n % 3 {
			case 1:
				rep = packet.Report{Received: 90, Lost: 10, Window: 100}
			case 2:
				rep = packet.Report{Received: 70, Lost: 30, Window: 100}
			}
			rep.HighestSeq = uint64(n)
			dgram, err := packet.AppendReportDatagram(nil, id, 0, 0, rep)
			if err != nil {
				t.Errorf("report: %v", err)
				return
			}
			if _, err := rx.WriteToUDP(dgram, engAddr); err != nil {
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	// Branch recomposer: rewrites the tail, sometimes removing the marker
	// (sending the responder dormant) and restoring it again.
	branchSpecs := []string{
		"fec-adapt,thin=1",
		"thin=1,fec-adapt",
		"fec-adapt",
		"thin=1", // marker gone: responder must go dormant, not fail
		"fec-adapt,null",
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.RecomposeSession(id, receiver, branchSpecs[n%len(branchSpecs)]); err != nil {
				t.Errorf("branch recompose: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Trunk traffic keeps the tee and branch queue busy throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint64(1); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			sendPacket(t, c, id, &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte{byte(seq)}})
			time.Sleep(200 * time.Microsecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Settle on a marker-bearing tail and verify the loop still closes: a
	// lossy report upgrades the branch, a clean one releases it.
	if _, err := e.RecomposeSession(id, receiver, "fec-adapt,thin=1"); err != nil {
		t.Fatalf("final branch recompose: %v", err)
	}
	reportFrom(t, rx, e, id, packet.Report{HighestSeq: 1 << 20, Received: 90, Lost: 10, Window: 100})
	receiverStat(t, e, id, receiver, "post-storm upgrade", func(rs metrics.ReceiverStats) bool {
		return rs.Active && rs.N == 8 && rs.K == 4
	})
	reportFrom(t, rx, e, id, packet.Report{HighestSeq: 1 << 21, Received: 100, Lost: 0, Window: 100})
	receiverStat(t, e, id, receiver, "post-storm release", func(rs metrics.ReceiverStats) bool {
		return !rs.Active && rs.N == 1
	})
	st := e.Session(id).Stats()
	if len(st.Receivers) != 1 || st.Receivers[0].Chain != "fec-adapt,thin=1" {
		t.Fatalf("final branch plan = %+v", st.Receivers)
	}
}
