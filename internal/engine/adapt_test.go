package engine

import (
	"net"
	"testing"
	"time"

	"rapidware/internal/adapt"
	"rapidware/internal/fec"
	"rapidware/internal/metrics"
	"rapidware/internal/packet"
)

// sendReport writes one feedback datagram for session id from conn.
func sendReport(t *testing.T, c *net.UDPConn, id uint32, rep packet.Report) {
	t.Helper()
	dgram, err := packet.AppendReportDatagram(nil, id, 0, 0, rep)
	if err != nil {
		t.Fatalf("AppendReportDatagram: %v", err)
	}
	if _, err := c.Write(dgram); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

// waitAdapt polls the session's adaptation stats until cond holds.
func waitAdapt(t *testing.T, e *Engine, id uint32, what string, cond func(*metrics.AdaptStats) bool) *metrics.AdaptStats {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var last *metrics.AdaptStats
	for time.Now().Before(deadline) {
		if s := e.Session(id); s != nil {
			st := s.Stats()
			last = st.Adapt
			if last != nil && cond(last) {
				return last
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s: adaptation state never converged; last %+v", what, last)
	return nil
}

// TestEngineAdaptationClosedLoop drives the full loop over the wire: a
// receiver report claiming 10% loss makes the session splice in a stronger
// code within one observation window, and a clean report returns it to the
// pure relay path.
func TestEngineAdaptationClosedLoop(t *testing.T) {
	e := newTestEngine(t, Config{Adapt: true})
	c := dialEngine(t, e)

	// Establish the session and verify the clean-link relay path.
	sendPacket(t, c, 77, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: []byte("warm")})
	readPacket(t, c, 2*time.Second)
	st := waitAdapt(t, e, 77, "initial", func(a *metrics.AdaptStats) bool { return true })
	if st.Active || st.N != 1 || st.K != 1 {
		t.Fatalf("clean-link adapt state = %+v, want inactive 1/1", st)
	}

	// One observation window at 10% loss: the policy ladder selects (8,4).
	sendReport(t, c, 77, packet.Report{HighestSeq: 0, Received: 90, Lost: 10, Window: 100})
	st = waitAdapt(t, e, 77, "upgrade", func(a *metrics.AdaptStats) bool { return a.Active })
	if st.N != 8 || st.K != 4 {
		t.Fatalf("upgraded code = %d/%d, want 8/4", st.N, st.K)
	}
	if st.Reports != 1 || st.Receivers != 1 || st.Retunes == 0 {
		t.Fatalf("adapt counters = %+v", st)
	}

	// A full FEC group now emits data plus parity.
	for i := 1; i <= 4; i++ {
		sendPacket(t, c, 77, &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}})
	}
	var data, parity int
	for i := 0; i < 8; i++ {
		_, p := readPacket(t, c, 2*time.Second)
		switch p.Kind {
		case packet.KindData:
			data++
		case packet.KindParity:
			parity++
		}
	}
	if data != 4 || parity != 4 {
		t.Fatalf("got %d data / %d parity, want 4/4 under the (8,4) code", data, parity)
	}

	// A clean window removes the encoder again.
	sendReport(t, c, 77, packet.Report{HighestSeq: 4, Received: 100, Lost: 0, Window: 100})
	st = waitAdapt(t, e, 77, "downgrade", func(a *metrics.AdaptStats) bool { return !a.Active })
	if st.N != 1 || st.K != 1 {
		t.Fatalf("downgraded code = %d/%d, want 1/1", st.N, st.K)
	}
	if st.HighestSeq != 4 {
		t.Fatalf("HighestSeq = %d, want 4", st.HighestSeq)
	}

	// Back on the pure relay path: one in, one out, no parity.
	sendPacket(t, c, 77, &packet.Packet{Seq: 9, Kind: packet.KindData, Payload: []byte("clean")})
	_, p := readPacket(t, c, 2*time.Second)
	if p.Kind != packet.KindData || string(p.Payload) != "clean" {
		t.Fatalf("post-downgrade packet %v", p)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(make([]byte, packet.MaxDatagram)); err == nil {
		t.Fatal("unexpected extra datagram after downgrade")
	}
	if e.Stats().Feedback != 2 {
		t.Fatalf("engine feedback counter = %d, want 2", e.Stats().Feedback)
	}
}

// TestEngineAdaptsToWorstFanoutReceiver reproduces the paper's multicast
// argument at engine scale: with output fanned out to two receivers, the
// session's code follows the *worst* reporter, and only recovers when every
// receiver is clean.
func TestEngineAdaptsToWorstFanoutReceiver(t *testing.T) {
	rxA, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rxA.Close()
	rxB, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rxB.Close()

	e := newTestEngine(t, Config{
		Adapt:  true,
		Fanout: []string{rxA.LocalAddr().String(), rxB.LocalAddr().String()},
	})
	c := dialEngine(t, e)

	// One data packet reaches both receivers.
	sendPacket(t, c, 5, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("fanout")})
	for _, rx := range []*net.UDPConn{rxA, rxB} {
		buf := make([]byte, packet.MaxDatagram)
		rx.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := rx.Read(buf)
		if err != nil {
			t.Fatalf("receiver read: %v", err)
		}
		id, frame, err := packet.SplitSessionID(buf[:n])
		if err != nil || id != 5 {
			t.Fatalf("receiver got session %d (err %v)", id, err)
		}
		if _, _, err := packet.Unmarshal(frame); err != nil {
			t.Fatalf("receiver frame: %v", err)
		}
	}

	// Receiver A is clean, receiver B sees 12% loss: the worst wins.
	engAddr := e.LocalAddr().(*net.UDPAddr)
	reportFrom := func(rx *net.UDPConn, rep packet.Report) {
		dgram, err := packet.AppendReportDatagram(nil, 5, 0, 0, rep)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rx.WriteToUDP(dgram, engAddr); err != nil {
			t.Fatal(err)
		}
	}
	reportFrom(rxA, packet.Report{Received: 100, Lost: 0, Window: 100})
	reportFrom(rxB, packet.Report{Received: 88, Lost: 12, Window: 100})
	st := waitAdapt(t, e, 5, "worst-receiver upgrade", func(a *metrics.AdaptStats) bool { return a.Active })
	if st.N != 8 || st.K != 4 {
		t.Fatalf("code = %d/%d, want 8/4 for the worst receiver", st.N, st.K)
	}
	if st.Receivers != 2 {
		t.Fatalf("Receivers = %d, want 2", st.Receivers)
	}

	// B recovering releases the code even though A reported earlier.
	reportFrom(rxB, packet.Report{Received: 100, Lost: 0, Window: 100})
	waitAdapt(t, e, 5, "recovery", func(a *metrics.AdaptStats) bool { return !a.Active && a.N == 1 })
}

// TestEngineFeedbackNeverOpensSessions checks that reports for unknown
// sessions are counted and dropped, not turned into sessions or chains.
func TestEngineFeedbackNeverOpensSessions(t *testing.T) {
	e := newTestEngine(t, Config{Adapt: true})
	c := dialEngine(t, e)

	sendReport(t, c, 99, packet.Report{Received: 1, Lost: 1, Window: 2})
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Feedback == 0 {
		if time.Now().After(deadline) {
			t.Fatal("feedback counter never incremented")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := e.SessionCount(); n != 0 {
		t.Fatalf("SessionCount = %d after orphan report, want 0", n)
	}
}

// TestEngineFeedbackIgnoredWithoutAdapt checks that the feedback kind is
// consumed (not relayed) even when the adaptation plane is off.
func TestEngineFeedbackIgnoredWithoutAdapt(t *testing.T) {
	e := newTestEngine(t, Config{})
	c := dialEngine(t, e)

	sendPacket(t, c, 3, &packet.Packet{Kind: packet.KindData, Payload: []byte("x")})
	readPacket(t, c, 2*time.Second)
	sendReport(t, c, 3, packet.Report{Received: 50, Lost: 50, Window: 100})

	// The report is consumed: nothing is echoed and the session stays on the
	// plain relay path with no adaptation state.
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(make([]byte, packet.MaxDatagram)); err == nil {
		t.Fatal("feedback datagram was relayed")
	}
	st := e.Session(3).Stats()
	if st.Adapt != nil {
		t.Fatalf("adapt state %+v on a non-adaptive engine", st.Adapt)
	}
}

// TestEngineSweepAllExpiresStaleReceivers exercises the sweep machinery with
// an injected fake clock: a receiver whose last report predates the staleness
// window is expired by sweepAll regardless of whether any report arrives to
// trigger it.
func TestEngineSweepAllExpiresStaleReceivers(t *testing.T) {
	const window = time.Minute
	e := newTestEngine(t, Config{Adapt: true, ReportStaleness: window})
	c := dialEngine(t, e)

	sendPacket(t, c, 55, &packet.Packet{Kind: packet.KindData, Payload: []byte("x")})
	readPacket(t, c, 2*time.Second)
	sendReport(t, c, 55, packet.Report{Received: 90, Lost: 10, Window: 100})
	waitAdapt(t, e, 55, "upgrade", func(a *metrics.AdaptStats) bool { return a.Active })

	// Re-arm the trunk loop's observer on a fake clock and jump past the
	// window; nothing else reports, so only a sweep can expire the receiver.
	s := e.Session(55)
	a := s.state().adaptor
	a.mu.Lock()
	loop := a.loops[trunkReceiver]
	a.mu.Unlock()
	now := time.Now()
	loop.obs.SetStaleness(window, func() time.Time { return now })
	now = now.Add(window + time.Second)
	a.sweepAll()

	st := waitAdapt(t, e, 55, "decay", func(st *metrics.AdaptStats) bool { return !st.Active })
	if st.Expired == 0 {
		t.Fatalf("Expired = 0 after sweeping past the window, want > 0")
	}
}

// TestEngineTimerSweepsSilentReceivers is the regression test for staleness
// aging without traffic: before the timer-driven sweep, expiry only ran on
// the report path, so once every station of a session went silent — the exact
// situation aging exists for — the last report pinned its protection level
// forever.
func TestEngineTimerSweepsSilentReceivers(t *testing.T) {
	const window = 100 * time.Millisecond
	e := newTestEngine(t, Config{Adapt: true, ReportStaleness: window})
	c := dialEngine(t, e)

	sendPacket(t, c, 56, &packet.Packet{Kind: packet.KindData, Payload: []byte("x")})
	readPacket(t, c, 2*time.Second)
	sendReport(t, c, 56, packet.Report{Received: 90, Lost: 10, Window: 100})
	waitAdapt(t, e, 56, "upgrade", func(a *metrics.AdaptStats) bool { return a.Active })

	// Total silence from here on. The timer must decay the session back to
	// the clean-link path on its own.
	st := waitAdapt(t, e, 56, "silent decay", func(a *metrics.AdaptStats) bool { return !a.Active })
	if st.Expired == 0 {
		t.Fatalf("Expired = 0 after silent decay, want > 0")
	}
}

func TestEngineForwardAndFanoutAreExclusive(t *testing.T) {
	_, err := New(Config{Forward: "127.0.0.1:1", Fanout: []string{"127.0.0.1:2"}})
	if err == nil {
		t.Fatal("Forward+Fanout config accepted")
	}
}

func TestEngineAdaptRejectsStaticFECChain(t *testing.T) {
	if _, err := New(Config{Adapt: true, Chain: "counting,fec-encode=6/4"}); err == nil {
		t.Fatal("Adapt + static fec-encode chain accepted (would double-encode)")
	}
	// fec-decode under Adapt is legitimate (decode inbound, re-protect outbound).
	if _, err := New(Config{Adapt: true, Chain: "counting,fec-decode"}); err != nil {
		t.Fatalf("Adapt + fec-decode rejected: %v", err)
	}
}

// TestEngineSpoofedFeedbackIgnored checks that a report from an off-path
// socket (not the session's peer) cannot steer the session's FEC level.
func TestEngineSpoofedFeedbackIgnored(t *testing.T) {
	e := newTestEngine(t, Config{Adapt: true})
	owner := dialEngine(t, e)
	intruder := dialEngine(t, e)

	sendPacket(t, owner, 44, &packet.Packet{Kind: packet.KindData, Payload: []byte("mine")})
	readPacket(t, owner, 2*time.Second)

	// The intruder claims total loss on the owner's session.
	sendReport(t, intruder, 44, packet.Report{Received: 0, Lost: 100, Window: 100})
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Feedback == 0 {
		if time.Now().After(deadline) {
			t.Fatal("feedback counter never incremented")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := waitAdapt(t, e, 44, "spoof", func(a *metrics.AdaptStats) bool { return true })
	if st.Active || st.Reports != 0 || st.Receivers != 0 {
		t.Fatalf("spoofed report steered the session: %+v", st)
	}

	// The legitimate peer's report still works.
	sendReport(t, owner, 44, packet.Report{Received: 90, Lost: 10, Window: 100})
	waitAdapt(t, e, 44, "owner upgrade", func(a *metrics.AdaptStats) bool { return a.Active })
}

// TestEngineFanoutRemovalUnpinsWorstReceiver checks that removing the worst
// receiver from the fan-out group releases the code on the next report.
func TestEngineFanoutRemovalUnpinsWorstReceiver(t *testing.T) {
	rxA, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rxA.Close()
	rxB, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rxB.Close()

	e := newTestEngine(t, Config{
		Adapt:  true,
		Fanout: []string{rxA.LocalAddr().String(), rxB.LocalAddr().String()},
	})
	c := dialEngine(t, e)
	sendPacket(t, c, 6, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("x")})

	engAddr := e.LocalAddr().(*net.UDPAddr)
	reportFrom := func(rx *net.UDPConn, rep packet.Report) {
		dgram, err := packet.AppendReportDatagram(nil, 6, 0, 0, rep)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rx.WriteToUDP(dgram, engAddr); err != nil {
			t.Fatal(err)
		}
	}
	reportFrom(rxA, packet.Report{Received: 100, Lost: 0, Window: 100})
	reportFrom(rxB, packet.Report{Received: 70, Lost: 30, Window: 100})
	waitAdapt(t, e, 6, "upgrade", func(a *metrics.AdaptStats) bool { return a.Active && a.N == 12 })

	// B leaves the group; A's next clean report must release the code even
	// though B never reported recovery.
	if !e.FanoutGroup().Remove(rxB.LocalAddr().(*net.UDPAddr).AddrPort()) {
		t.Fatal("receiver B not removed from group")
	}
	reportFrom(rxA, packet.Report{Received: 100, Lost: 0, Window: 100})
	st := waitAdapt(t, e, 6, "unpin", func(a *metrics.AdaptStats) bool { return !a.Active })
	if st.Receivers != 1 {
		t.Fatalf("Receivers = %d after removal, want 1", st.Receivers)
	}
}

// TestEngineAlwaysOnPolicyEngagesImmediately checks that a policy whose
// cleanest rung already demands FEC protects the session before any
// receiver report arrives.
func TestEngineAlwaysOnPolicyEngagesImmediately(t *testing.T) {
	policy := adapt.Policy{Levels: []adapt.Level{{LossAtLeast: 0, Params: fec.Params{K: 4, N: 6}}}}
	e := newTestEngine(t, Config{Adapt: true, AdaptPolicy: policy})
	c := dialEngine(t, e)

	// The first group of 4 data packets must already come back protected.
	for i := 0; i < 4; i++ {
		sendPacket(t, c, 12, &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}})
	}
	var data, parity int
	for i := 0; i < 6; i++ {
		_, p := readPacket(t, c, 2*time.Second)
		switch p.Kind {
		case packet.KindData:
			data++
		case packet.KindParity:
			parity++
		}
	}
	if data != 4 || parity != 2 {
		t.Fatalf("got %d data / %d parity, want 4/2 under always-on (6,4)", data, parity)
	}
	st := waitAdapt(t, e, 12, "always-on", func(a *metrics.AdaptStats) bool { return a.Active })
	if st.N != 6 || st.K != 4 {
		t.Fatalf("always-on code = %d/%d, want 6/4", st.N, st.K)
	}
}
