//go:build linux && reuseport

package engine

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// reusePortAvailable gates Config.ReusePort: true only on Linux builds
// tagged "reuseport".
const reusePortAvailable = true

// soReusePort is SO_REUSEPORT on Linux; the stdlib syscall package does not
// export it.
const soReusePort = 0xf

// listenReusePort binds one UDP socket with SO_REUSEPORT set, so several
// shard sockets can share the engine's address and the kernel hashes
// incoming flows across them.
func listenReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	conn, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("engine: unexpected packet conn type %T", pc)
	}
	return conn, nil
}
