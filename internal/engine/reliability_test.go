package engine

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"rapidware/internal/arq"
	"rapidware/internal/metrics"
	"rapidware/internal/packet"
	"rapidware/internal/wireless"
)

// sendNack writes one NACK datagram for session id naming the given missing
// sequence numbers, chunked to the wire format's per-frame bound.
func sendNack(t *testing.T, c *net.UDPConn, id uint32, seqs []uint64) {
	t.Helper()
	for len(seqs) > 0 {
		n := len(seqs)
		if n > packet.MaxNackSeqs {
			n = packet.MaxNackSeqs
		}
		dgram, err := packet.AppendNackDatagram(nil, id, 0, 0, seqs[:n])
		if err != nil {
			t.Fatalf("AppendNackDatagram: %v", err)
		}
		if _, err := c.Write(dgram); err != nil {
			t.Fatalf("Write: %v", err)
		}
		seqs = seqs[n:]
	}
}

// TestEngineARQNackRecovery drives the full NACK loop over the wire at the
// paper's loss regime: an engine session with an arq history stage echoes a
// stream whose deliveries then cross a simulated WaveLAN link losing ~10% of
// frames; the receiver NACKs the gaps and must end up with at least 99% of
// the stream within its NACK budget.
func TestEngineARQNackRecovery(t *testing.T) {
	const (
		id     = 31
		total  = 400
		budget = 5 // receiver gives a sequence up after this many NACKs
	)
	// A deep inbound queue plus paced sends keep the whole stream inside the
	// session (an engine-side queue drop never reaches the ARQ history, so it
	// would be unrecoverable loss the test is not about).
	e := newTestEngine(t, Config{Chain: "arq", QueueDepth: 2 * total})
	c := dialEngine(t, e)

	// The lossy last hop: every echo is "broadcast" onto the simulated medium
	// and only surviving frames reach the ARQ receiver. Deterministic RNG so
	// the loss pattern is reproducible.
	// The station buffer must absorb the whole stream plus every repair round
	// — an overflowing buffer counts as loss at the station, which is not what
	// this test is measuring.
	ch := wireless.NewChannel(wireless.WaveLAN2Mbps())
	if _, err := ch.Attach("station", wireless.Bernoulli{P: 0.10}, rand.New(rand.NewSource(7)), total*(budget+2)); err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	recv := arq.NewReceiver(budget)

	// deliver routes one echoed packet across the lossy link into the
	// receiver's window.
	deliver := func(p *packet.Packet, round int) {
		ds, err := ch.Broadcast(p)
		if err != nil {
			t.Fatal(err)
		}
		if !ds[0].Lost {
			recv.Deliver(p, round)
		}
	}
	// drain collects echoes until the socket goes quiet for one timeout.
	drain := func(round int) {
		buf := make([]byte, packet.MaxDatagram)
		for {
			c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			_, frame, err := packet.SplitSessionID(buf[:n])
			if err != nil {
				continue
			}
			p, _, err := packet.Unmarshal(frame)
			if err != nil || p.Kind != packet.KindData {
				continue
			}
			deliver(p, round)
		}
	}

	for seq := uint64(0); seq < total; seq++ {
		sendPacket(t, c, id, &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte{byte(seq), byte(seq >> 8)}})
		if seq%32 == 31 {
			time.Sleep(2 * time.Millisecond) // pace the burst: the client socket must not drop echoes either
		}
	}
	drain(0)
	recv.ExpectUpTo(total)

	// NACK rounds: each round names what is still missing and collects the
	// retransmissions — which cross the same lossy link, so repairs can
	// themselves be lost and re-requested.
	for round := 1; round <= budget+1; round++ {
		missing := recv.Missing()
		if len(missing) == 0 {
			break
		}
		sendNack(t, c, id, missing)
		drain(round)
	}

	if rate := recv.DeliveredRate(); rate < 0.99 {
		delivered, recovered, lost, _ := recv.Stats()
		t.Fatalf("delivered %.4f of the stream (delivered %d recovered %d lost %d), want >= 0.99",
			rate, delivered, recovered, lost)
	}
	delivered, recovered, _, _ := recv.Stats()
	if recovered == 0 {
		t.Fatalf("no packets recovered by NACK (delivered %d) — the lossy link lost nothing?", delivered)
	}
	st := e.Stats()
	if st.Nacks == 0 || st.Retransmits == 0 {
		t.Fatalf("engine counters nacks=%d retransmits=%d, want both > 0", st.Nacks, st.Retransmits)
	}
	// The history stage must surface its own accounting through StageStats'
	// instance, visible via the session snapshot chain.
	sess := e.Session(id)
	if sess == nil {
		t.Fatal("session disappeared")
	}
	hist, ok := sess.Live().Instance("arq").(*arq.SenderFilter)
	if !ok {
		t.Fatal("arq stage instance is not a SenderFilter")
	}
	if _, served, _ := hist.Stats(); served == 0 {
		t.Fatal("history served no retransmissions")
	}
}

// TestEngineLateJoinReplayPrimed checks the replay stage's catch-up path: a
// station that joins a fan-out session mid-stream has its fresh delivery
// branch primed with the trunk's retained history before live traffic
// reaches it.
func TestEngineLateJoinReplayPrimed(t *testing.T) {
	rxA, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rxA.Close()
	rxB, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rxB.Close()

	const id = 9
	const history = 8
	// The replay depth comfortably exceeds the opening stream so the live
	// frame's admission cannot evict the oldest retained packet.
	e := newTestEngine(t, Config{
		Chain:  "replay=16",
		Fanout: []string{rxA.LocalAddr().String()},
		Branch: "counting",
	})
	c := dialEngine(t, e)

	// Stream the opening seconds to the original member only.
	for seq := uint64(0); seq < history; seq++ {
		sendPacket(t, c, id, &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte{byte(seq)}})
	}
	got := 0
	buf := make([]byte, packet.MaxDatagram)
	for got < history {
		rxA.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := rxA.Read(buf)
		if err != nil {
			t.Fatalf("receiver A got %d of %d opening packets: %v", got, history, err)
		}
		if gotID, _, err := packet.SplitSessionID(buf[:n]); err == nil && gotID == id {
			got++
		}
	}

	// A second station joins mid-stream; the next trunk packet reconciles the
	// delivery tree, building (and priming) its branch.
	e.FanoutGroup().Add(rxB.LocalAddr().(*net.UDPAddr).AddrPort())
	sendPacket(t, c, id, &packet.Packet{Seq: history, Kind: packet.KindData, Payload: []byte("live")})

	// The late joiner must see the retained history, not just the live frame.
	seen := make(map[uint64]bool)
	for {
		rxB.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		n, err := rxB.Read(buf)
		if err != nil {
			break
		}
		gotID, frame, err := packet.SplitSessionID(buf[:n])
		if err != nil || gotID != id {
			continue
		}
		if p, _, err := packet.Unmarshal(frame); err == nil {
			seen[p.Seq] = true
		}
	}
	for seq := uint64(0); seq < history; seq++ {
		if !seen[seq] {
			t.Fatalf("late joiner missing replayed seq %d (saw %v)", seq, seen)
		}
	}
	if !seen[history] {
		t.Fatalf("late joiner missing the live frame (saw %v)", seen)
	}

	// The branch accounts its priming.
	var primed uint64
	for _, rx := range e.Session(id).Stats().Receivers {
		primed += rx.Primed
	}
	if primed < history {
		t.Fatalf("Primed = %d across receivers, want >= %d", primed, history)
	}
}

// TestEngineFECToARQEscalation walks the reliability spectrum on one live
// unicast session: moderate loss splices a FEC encoder, and a later
// high-RTT/low-loss report swaps it for an ARQ retransmission history — which
// then actually answers a NACK.
func TestEngineFECToARQEscalation(t *testing.T) {
	const id = 21
	e := newTestEngine(t, Config{Adapt: true})
	c := dialEngine(t, e)

	sendPacket(t, c, id, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: []byte("warm")})
	readPacket(t, c, 2*time.Second)

	// 8% loss on a fast link: proactive parity wins.
	sendReport(t, c, id, packet.Report{HighestSeq: 0, Received: 92, Lost: 8, Window: 100, RTTMillis: 20})
	st := waitAdapt(t, e, id, "fec", func(a *metrics.AdaptStats) bool { return a.Active && a.Mechanism == "fec" })
	if st.N <= st.K {
		t.Fatalf("fec mechanism with code %d/%d", st.N, st.K)
	}

	// 2% loss but a 200ms feedback path: retransmission beats stale retuning.
	sendReport(t, c, id, packet.Report{HighestSeq: 0, Received: 98, Lost: 2, Window: 100, RTTMillis: 200})
	waitAdapt(t, e, id, "arq", func(a *metrics.AdaptStats) bool { return a.Active && a.Mechanism == "arq" })
	if _, ok := e.Session(id).Live().Instance("fec-adapt").(*arq.SenderFilter); !ok {
		t.Fatal("fec-adapt marker does not hold an ARQ history after escalation")
	}

	// The spliced history answers NACKs for traffic that flowed after the swap.
	for seq := uint64(100); seq < 104; seq++ {
		sendPacket(t, c, id, &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte{byte(seq)}})
		readPacket(t, c, 2*time.Second)
	}
	sendNack(t, c, id, []uint64{102})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("retransmission never arrived")
		}
		_, p := readPacket(t, c, 2*time.Second)
		if p.Kind == packet.KindData && p.Seq == 102 {
			break
		}
	}
	if st := e.Stats(); st.Retransmits == 0 {
		t.Fatalf("Retransmits = %d, want > 0", st.Retransmits)
	}

	// A clean fast link de-escalates all the way back to the pure relay.
	sendReport(t, c, id, packet.Report{HighestSeq: 103, Received: 100, Lost: 0, Window: 100, RTTMillis: 20})
	waitAdapt(t, e, id, "clean", func(a *metrics.AdaptStats) bool { return !a.Active && a.Mechanism == "none" })
}
