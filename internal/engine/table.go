package engine

import (
	"sync"
	"sync/atomic"
)

// table is the engine's sharded session registry. Session IDs hash onto a
// power-of-two number of shards, each an independently locked map, so
// concurrent open/lookup/close on different shards never contend and no
// global lock exists anywhere on the data path. The shard count equals the
// engine's reader/writer count: shard i's sessions are owned by reader and
// writer goroutine i.
type table struct {
	mask   uint32
	shards []tableShard
}

// tableShard is one lock domain of the session table. n mirrors
// len(sessions) as an atomic gauge maintained at every insert and remove, so
// count/countShard — and through them admission checks and Stats — read O(1)
// per shard instead of walking the maps under their locks. The trailing pad
// keeps neighboring shards' locks on separate cache lines so a hot shard
// cannot false-share with its neighbors.
type tableShard struct {
	mu       sync.RWMutex
	sessions map[uint32]*Session
	n        atomic.Int64
	_        [24]byte
}

// newTable returns a table with n shards; n must be a power of two.
func newTable(n int) *table {
	t := &table{mask: uint32(n - 1), shards: make([]tableShard, n)}
	for i := range t.shards {
		t.shards[i].sessions = make(map[uint32]*Session)
	}
	return t
}

// hashSessionID mixes a session ID so that sequential IDs (the common
// allocation pattern for clients) spread uniformly across shards: Knuth's
// multiplicative hash pushes entropy into the high bits, and the xor-fold
// brings it back down to where the shard mask looks.
func hashSessionID(id uint32) uint32 {
	h := id * 2654435761 // 2^32 / golden ratio
	return h ^ h>>16
}

// shardIndex returns the shard owning id.
func (t *table) shardIndex(id uint32) uint32 { return hashSessionID(id) & t.mask }

// lookup returns the session with the given ID, or nil.
func (t *table) lookup(id uint32) *Session {
	sh := &t.shards[t.shardIndex(id)]
	sh.mu.RLock()
	s := sh.sessions[id]
	sh.mu.RUnlock()
	return s
}

// insert registers s under its shard lock. reject is evaluated while the lock
// is held (the engine passes its closed flag) and aborts the insert. The
// returns are: the session now registered under id (s on success, the
// existing winner when another inserter raced us in, nil when rejected), and
// whether s itself was inserted.
func (t *table) insert(id uint32, s *Session, reject func() bool) (*Session, bool) {
	sh := &t.shards[t.shardIndex(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if reject() {
		return nil, false
	}
	if cur, ok := sh.sessions[id]; ok {
		return cur, false
	}
	sh.sessions[id] = s
	sh.n.Add(1)
	return s, true
}

// remove deletes id only while it still maps to s, so a stale evictor cannot
// tear down a successor session reusing the ID. It reports whether the entry
// was removed.
func (t *table) remove(id uint32, s *Session) bool {
	sh := &t.shards[t.shardIndex(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sessions[id] != s {
		return false
	}
	delete(sh.sessions, id)
	sh.n.Add(-1)
	return true
}

// delete removes and returns the session with the given ID.
func (t *table) delete(id uint32) (*Session, bool) {
	sh := &t.shards[t.shardIndex(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		sh.n.Add(-1)
	}
	return s, ok
}

// count returns the number of registered sessions across all shards. It sums
// the per-shard gauges — no locks, no map walks — so stats and admission stay
// O(shards) no matter how many sessions are registered.
func (t *table) count() int {
	n := int64(0)
	for i := range t.shards {
		n += t.shards[i].n.Load()
	}
	return int(n)
}

// countShard returns the number of sessions owned by shard i, lock-free.
func (t *table) countShard(i int) int {
	return int(t.shards[i].n.Load())
}

// oldestIdle returns the best admission-harvest victim: preferring parked
// sessions over live ones, and among equals the one whose last observed
// activity is oldest. The scan starts in the shard that will own the incoming
// ID (so at capacity it touches one map of ~sessions/shards entries) and
// walks the remaining shards only while coming up empty.
func (t *table) oldestIdle(incoming uint32) *Session {
	start := t.shardIndex(incoming)
	for off := uint32(0); off <= t.mask; off++ {
		sh := &t.shards[(start+off)&t.mask]
		var best *Session
		var bestParked bool
		var bestSince int64
		sh.mu.RLock()
		for id, s := range sh.sessions {
			if id == incoming {
				continue
			}
			parked, since := s.parked.Load(), s.idleSince.Load()
			switch {
			case best == nil,
				parked && !bestParked,
				parked == bestParked && since < bestSince:
				best, bestParked, bestSince = s, parked, since
			}
		}
		sh.mu.RUnlock()
		if best != nil {
			return best
		}
	}
	return nil
}

// snapshot returns every live session. Order is unspecified.
func (t *table) snapshot() []*Session {
	var out []*Session
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	return out
}

// sweep removes and returns every live session (engine shutdown).
func (t *table) sweep() []*Session {
	var out []*Session
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.sessions = make(map[uint32]*Session)
		sh.n.Store(0)
		sh.mu.Unlock()
	}
	return out
}
