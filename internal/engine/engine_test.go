package engine

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"testing"
	"time"

	"rapidware/internal/compose"
	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// newTestEngine starts an engine on a loopback port and tears it down with
// the test.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// dialEngine returns a connected client socket for the engine.
func dialEngine(t *testing.T, e *Engine) *net.UDPConn {
	t.Helper()
	c, err := net.DialUDP("udp", nil, e.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatalf("DialUDP: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// sendPacket writes one engine datagram for session id carrying p.
func sendPacket(t *testing.T, c *net.UDPConn, id uint32, p *packet.Packet) {
	t.Helper()
	dgram, err := packet.AppendDatagram(nil, id, p)
	if err != nil {
		t.Fatalf("AppendDatagram: %v", err)
	}
	if _, err := c.Write(dgram); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

// readPacket reads one engine datagram and decodes it.
func readPacket(t *testing.T, c *net.UDPConn, timeout time.Duration) (uint32, *packet.Packet) {
	t.Helper()
	buf := make([]byte, packet.MaxDatagram)
	c.SetReadDeadline(time.Now().Add(timeout))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	id, frame, err := packet.SplitSessionID(buf[:n])
	if err != nil {
		t.Fatalf("SplitSessionID: %v", err)
	}
	p, _, err := packet.Unmarshal(frame)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return id, p
}

func TestEngineEchoRelay(t *testing.T) {
	e := newTestEngine(t, Config{})
	c := dialEngine(t, e)

	want := &packet.Packet{Seq: 7, StreamID: 9, Kind: packet.KindData, Payload: []byte("hello engine")}
	sendPacket(t, c, 42, want)
	id, got := readPacket(t, c, 2*time.Second)
	if id != 42 {
		t.Fatalf("echoed session id = %d, want 42", id)
	}
	if got.Seq != want.Seq || got.StreamID != want.StreamID || string(got.Payload) != string(want.Payload) {
		t.Fatalf("echoed packet %v, want %v", got, want)
	}
	if n := e.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d, want 1", n)
	}
	stats := e.SessionStats()
	if len(stats) != 1 || stats[0].ID != 42 {
		t.Fatalf("SessionStats = %+v, want one entry for session 42", stats)
	}
	if stats[0].Packets != 1 || stats[0].OutPackets != 1 {
		t.Fatalf("session counters = %+v, want 1 in / 1 out", stats[0])
	}
}

func TestEngineMultipleSessionsAreIndependent(t *testing.T) {
	e := newTestEngine(t, Config{Chain: "counting"})
	c := dialEngine(t, e)

	const sessions = 8
	for id := uint32(1); id <= sessions; id++ {
		sendPacket(t, c, id, &packet.Packet{Seq: uint64(id), Kind: packet.KindData, Payload: []byte{byte(id)}})
	}
	seen := make(map[uint32]bool)
	for i := 0; i < sessions; i++ {
		id, p := readPacket(t, c, 2*time.Second)
		if len(p.Payload) != 1 || p.Payload[0] != byte(id) {
			t.Fatalf("session %d echoed payload %v", id, p.Payload)
		}
		seen[id] = true
	}
	if len(seen) != sessions {
		t.Fatalf("saw %d distinct sessions, want %d", len(seen), sessions)
	}
	if n := e.SessionCount(); n != sessions {
		t.Fatalf("SessionCount = %d, want %d", n, sessions)
	}
	// Each session's chain has source + counting + sink.
	s := e.Session(3)
	if s == nil {
		t.Fatal("session 3 missing")
	}
	if got := s.Chain().Len(); got != 3 {
		t.Fatalf("chain length = %d, want 3", got)
	}
}

func TestEngineSessionLimit(t *testing.T) {
	e := newTestEngine(t, Config{MaxSessions: 2})
	c := dialEngine(t, e)

	for id := uint32(1); id <= 3; id++ {
		sendPacket(t, c, id, &packet.Packet{Kind: packet.KindData, Payload: []byte("x")})
	}
	// Sessions 1 and 2 echo; session 3 is refused.
	for i := 0; i < 2; i++ {
		id, _ := readPacket(t, c, 2*time.Second)
		if id != 1 && id != 2 {
			t.Fatalf("unexpected echo from session %d", id)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejected counter never incremented")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := e.SessionCount(); n != 2 {
		t.Fatalf("SessionCount = %d, want 2", n)
	}
}

func TestEngineForwardMode(t *testing.T) {
	// Downstream receiver.
	down, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("downstream listen: %v", err)
	}
	defer down.Close()

	e := newTestEngine(t, Config{Forward: down.LocalAddr().String()})
	c := dialEngine(t, e)

	sendPacket(t, c, 5, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("downstream")})
	buf := make([]byte, packet.MaxDatagram)
	down.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := down.Read(buf)
	if err != nil {
		t.Fatalf("downstream read: %v", err)
	}
	id, frame, err := packet.SplitSessionID(buf[:n])
	if err != nil {
		t.Fatalf("SplitSessionID: %v", err)
	}
	if id != 5 {
		t.Fatalf("forwarded session id = %d, want 5", id)
	}
	p, _, err := packet.Unmarshal(frame)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if string(p.Payload) != "downstream" {
		t.Fatalf("forwarded payload %q", p.Payload)
	}
}

func TestEngineFECChainEmitsParity(t *testing.T) {
	e := newTestEngine(t, Config{Chain: "fec-encode=6/4"})
	c := dialEngine(t, e)

	for i := 0; i < 4; i++ {
		sendPacket(t, c, 9, &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i), 0xAA}})
	}
	var data, parity int
	for i := 0; i < 6; i++ {
		_, p := readPacket(t, c, 2*time.Second)
		switch p.Kind {
		case packet.KindData:
			data++
		case packet.KindParity:
			parity++
		}
	}
	if data != 4 || parity != 2 {
		t.Fatalf("got %d data / %d parity packets, want 4/2", data, parity)
	}
}

func TestEngineFECEncodeDecodeRoundTrip(t *testing.T) {
	// Encoder and decoder back to back in one chain: data packets should come
	// out exactly once each, parity should be absorbed.
	e := newTestEngine(t, Config{Chain: "fec-encode=6/4,fec-decode"})
	c := dialEngine(t, e)

	for i := 0; i < 4; i++ {
		sendPacket(t, c, 11, &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}})
	}
	for i := 0; i < 4; i++ {
		_, p := readPacket(t, c, 2*time.Second)
		if p.Kind != packet.KindData {
			t.Fatalf("packet %d: kind %v, want data", i, p.Kind)
		}
	}
	// No parity should remain queued for the client.
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(make([]byte, packet.MaxDatagram)); err == nil {
		t.Fatal("unexpected extra datagram after decoded stream")
	}
}

func TestEngineCloseSession(t *testing.T) {
	e := newTestEngine(t, Config{})
	c := dialEngine(t, e)

	sendPacket(t, c, 1, &packet.Packet{Kind: packet.KindData, Payload: []byte("x")})
	readPacket(t, c, 2*time.Second)
	if err := e.CloseSession(1); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if n := e.SessionCount(); n != 0 {
		t.Fatalf("SessionCount = %d after close, want 0", n)
	}
	if err := e.CloseSession(1); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("CloseSession again = %v, want ErrUnknownSession", err)
	}
	// A new datagram on the same ID opens a fresh session.
	sendPacket(t, c, 1, &packet.Packet{Kind: packet.KindData, Payload: []byte("y")})
	_, p := readPacket(t, c, 2*time.Second)
	if string(p.Payload) != "y" {
		t.Fatalf("payload after session reopen = %q", p.Payload)
	}
}

func TestEngineMalformedDatagramsCounted(t *testing.T) {
	e := newTestEngine(t, Config{})
	c := dialEngine(t, e)

	if _, err := c.Write([]byte{0x01}); err != nil { // shorter than a session ID
		t.Fatalf("Write: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Malformed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("malformed counter never incremented")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := e.SessionCount(); n != 0 {
		t.Fatalf("SessionCount = %d, want 0", n)
	}
}

func TestEngineChainDyingDuringOpenDoesNotBlackholeID(t *testing.T) {
	// A stage that fails the instant it starts kills the chain inside
	// openSession's construct→register window: the exit hook's eviction can
	// run before the session is in the table. The post-insert exited check
	// must evict it anyway — the ID must never be blackholed by a dead
	// session, and the admission slot must be released.
	e := newTestEngine(t, Config{MaxSessions: 2})
	reg := compose.Default().Clone()
	if err := reg.Register(compose.Definition{
		Kind: "insta-fail",
		Build: func(compose.Env, string) (filter.Filter, error) {
			return filter.New("insta-fail", func(io.Reader, io.Writer) error {
				return errors.New("boom")
			}), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	e.reg = reg
	failPlan, err := compose.ParseWith(reg, "insta-fail", compose.ModeChain)
	if err != nil {
		t.Fatal(err)
	}
	e.trunkPlan = failPlan
	peer := netip.MustParseAddrPort("127.0.0.1:9")
	for i := 0; i < 30; i++ {
		if _, err := e.openSession(77, peer); errors.Is(err, ErrEngineClosed) {
			t.Fatalf("iteration %d: openSession: %v", i, err)
		}
		// Whether eviction ran via the hook or the post-insert check, the
		// dead session must vanish (and free its admission slot) promptly.
		deadline := time.Now().Add(2 * time.Second)
		for e.SessionCount() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("iteration %d: dead session still registered", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// With the failing stage gone, the same engine must still open healthy
	// sessions: the loop above may not leak admission slots (MaxSessions is
	// only 2). A just-finished eviction may still be releasing its slot, so
	// tolerate a brief ErrSessionLimit window.
	e.trunkPlan = compose.Plan{}
	deadline := time.Now().Add(2 * time.Second)
	for {
		s, err := e.openSession(500, peer)
		if err == nil && s != nil {
			break
		}
		if !errors.Is(err, ErrSessionLimit) || time.Now().After(deadline) {
			t.Fatalf("healthy openSession after dead-chain churn: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEngineReusePortRejectedWithoutSupport(t *testing.T) {
	if reusePortAvailable {
		t.Skip("built with reuseport support")
	}
	if _, err := New(Config{ListenAddr: "127.0.0.1:0", ReusePort: true}); err == nil {
		t.Fatal("New accepted ReusePort on a build without SO_REUSEPORT support")
	}
}

func TestEngineShardedStatsAggregate(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4})
	c := dialEngine(t, e)

	const sessions = 16
	for id := uint32(1); id <= sessions; id++ {
		sendPacket(t, c, id, &packet.Packet{Seq: uint64(id), Kind: packet.KindData, Payload: []byte{byte(id)}})
	}
	for i := 0; i < sessions; i++ {
		readPacket(t, c, 2*time.Second)
	}
	st := e.Stats()
	if st.Shards != 4 {
		t.Fatalf("Stats.Shards = %d, want 4", st.Shards)
	}
	if st.ActiveSessions != sessions || st.TotalSessions != sessions {
		t.Fatalf("sessions = %d active / %d total, want %d/%d", st.ActiveSessions, st.TotalSessions, sessions, sessions)
	}
	if st.Datagrams < sessions {
		t.Fatalf("Datagrams = %d, want >= %d", st.Datagrams, sessions)
	}
	if st.BatchedWrites < sessions || st.WriteFlushes == 0 {
		t.Fatalf("writer counters = %d writes / %d flushes, want >= %d / > 0", st.BatchedWrites, st.WriteFlushes, sessions)
	}
	// The per-shard breakdown must sum to the aggregate and agree with each
	// session's reported placement.
	shardSessions := make(map[int]int)
	for _, ss := range e.SessionStats() {
		shardSessions[ss.Shard]++
	}
	var total int
	for _, sh := range e.ShardStats() {
		total += sh.Sessions
		if sh.Sessions != shardSessions[sh.Shard] {
			t.Fatalf("shard %d owns %d sessions but session stats place %d there",
				sh.Shard, sh.Sessions, shardSessions[sh.Shard])
		}
	}
	if total != sessions {
		t.Fatalf("shard sessions sum to %d, want %d", total, sessions)
	}
}

func TestParseChain(t *testing.T) {
	good := []string{"", "null", "counting,checksum", "delay=5ms", "ratelimit=1024", "fec-encode=6/4", "fec-encode=6/4,fec-decode", " null , counting ", "transcode=2", "thin=3", "transcode", "thin", "counting,thin=2,transcode=4"}
	for _, spec := range good {
		if _, err := ParseChain(spec); err != nil {
			t.Errorf("ParseChain(%q) = %v, want nil", spec, err)
		}
	}
	bad := []string{"bogus", "delay=xyz", "ratelimit=-1", "fec-encode=4", "fec-encode=4/6", "fec-encode=a/b", "transcode=0", "transcode=x", "thin=-1", "thin=x", "fec-adapt"}
	for _, spec := range bad {
		if _, err := ParseChain(spec); err == nil {
			t.Errorf("ParseChain(%q) succeeded, want error", spec)
		}
	}
}

func TestParseBranch(t *testing.T) {
	cases := []struct {
		spec      string
		stages    int
		markerIdx int
	}{
		{"", 0, -1},
		{"thin=2", 1, -1},
		{"fec-adapt", 1, 0},
		{"fec-adapt,ratelimit=64000", 2, 0},
		{"ratelimit=64000,fec-adapt", 2, 1},
		{"thin=2,fec-adapt,ratelimit=1000", 3, 1},
	}
	for _, tc := range cases {
		plan, err := ParseBranch(tc.spec)
		if err != nil {
			t.Errorf("ParseBranch(%q) = %v", tc.spec, err)
			continue
		}
		if plan.Len() != tc.stages || plan.Index(compose.KindFECAdapt) != tc.markerIdx {
			t.Errorf("ParseBranch(%q) = %d stages, marker %d; want %d, %d",
				tc.spec, plan.Len(), plan.Index(compose.KindFECAdapt), tc.stages, tc.markerIdx)
		}
	}
	for _, spec := range []string{"fec-adapt=6/4", "fec-adapt,fec-adapt", "bogus", "thin=0", "fec-decode", "thin=2,fec-decode"} {
		if _, err := ParseBranch(spec); err == nil {
			t.Errorf("ParseBranch(%q) succeeded, want error", spec)
		}
	}
}

// TestEngineChainTranscodeStage checks the transcode wiring end to end: an
// engine chain with an audio downsampler halves every data payload.
func TestEngineChainTranscodeStage(t *testing.T) {
	e := newTestEngine(t, Config{Chain: "transcode=2"})
	c := dialEngine(t, e)

	payload := make([]byte, 320)
	sendPacket(t, c, 8, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: payload})
	_, p := readPacket(t, c, 2*time.Second)
	if len(p.Payload) != len(payload)/2 {
		t.Fatalf("transcoded payload = %d bytes, want %d", len(p.Payload), len(payload)/2)
	}
}

func TestEngineGarbageFrameDoesNotBrickSession(t *testing.T) {
	e := newTestEngine(t, Config{})
	c := dialEngine(t, e)

	// Establish the session, then hit it with garbage frames: a bad magic, a
	// truncated header, and a frame whose length field lies.
	sendPacket(t, c, 21, &packet.Packet{Kind: packet.KindData, Payload: []byte("pre")})
	readPacket(t, c, 2*time.Second)
	garbage := [][]byte{
		append(packet.AppendSessionID(nil, 21), []byte("XX-not-a-frame")...),
		packet.AppendSessionID(nil, 21),
		func() []byte {
			dgram, _ := packet.AppendDatagram(nil, 21, &packet.Packet{Kind: packet.KindData, Payload: []byte("abcd")})
			return dgram[:len(dgram)-2] // truncate the payload
		}(),
	}
	for _, g := range garbage {
		if _, err := c.Write(g); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Malformed < uint64(len(garbage)) {
		if time.Now().After(deadline) {
			t.Fatalf("malformed = %d, want %d", e.Stats().Malformed, len(garbage))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The session must still relay.
	sendPacket(t, c, 21, &packet.Packet{Kind: packet.KindData, Payload: []byte("post")})
	_, p := readPacket(t, c, 2*time.Second)
	if string(p.Payload) != "post" {
		t.Fatalf("payload after garbage = %q", p.Payload)
	}
	if n := e.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d, want 1", n)
	}
}

func TestEngineEvictsSessionWhoseChainFails(t *testing.T) {
	// A duplicate FEC share is a protocol-valid frame that makes the decoder
	// filter fail, killing the session's chain. The watchdog must evict the
	// dead session so the ID is not blackholed, and a later datagram must get
	// a fresh session.
	e := newTestEngine(t, Config{Chain: "fec-decode"})
	c := dialEngine(t, e)

	dup := &packet.Packet{Seq: 1, Kind: packet.KindData, Group: 0, Index: 0, K: 4, N: 6, Payload: []byte("share")}
	sendPacket(t, c, 33, dup)
	readPacket(t, c, 2*time.Second) // data share passes through the decoder
	sendPacket(t, c, 33, dup)       // duplicate: decoder errors, chain dies

	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().ChainErrors == 0 || e.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dead session never evicted: %+v count=%d", e.Stats(), e.SessionCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Same ID works again on a fresh session.
	sendPacket(t, c, 33, &packet.Packet{Seq: 2, Kind: packet.KindData, Payload: []byte("reborn")})
	_, p := readPacket(t, c, 2*time.Second)
	if string(p.Payload) != "reborn" {
		t.Fatalf("payload after eviction = %q", p.Payload)
	}
}

func TestEngineEchoPeerIsPinnedToFirstSender(t *testing.T) {
	e := newTestEngine(t, Config{})
	owner := dialEngine(t, e)
	intruder := dialEngine(t, e)

	sendPacket(t, owner, 55, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("mine")})
	readPacket(t, owner, 2*time.Second)

	// A second socket sends on the same session ID: its datagram is relayed,
	// but the echo must still go to the original sender, not the intruder.
	sendPacket(t, intruder, 55, &packet.Packet{Seq: 2, Kind: packet.KindData, Payload: []byte("stolen?")})
	_, p := readPacket(t, owner, 2*time.Second)
	if string(p.Payload) != "stolen?" {
		t.Fatalf("owner received %q, want the relayed packet", p.Payload)
	}
	intruder.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := intruder.Read(make([]byte, packet.MaxDatagram)); err == nil {
		t.Fatal("intruder received the session's output")
	}
}

func TestEngineAllowRoamingFollowsSender(t *testing.T) {
	e := newTestEngine(t, Config{AllowRoaming: true})
	first := dialEngine(t, e)
	second := dialEngine(t, e)

	sendPacket(t, first, 56, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("a")})
	readPacket(t, first, 2*time.Second)

	sendPacket(t, second, 56, &packet.Packet{Seq: 2, Kind: packet.KindData, Payload: []byte("b")})
	_, p := readPacket(t, second, 2*time.Second)
	if string(p.Payload) != "b" {
		t.Fatalf("roamed client received %q", p.Payload)
	}
}
