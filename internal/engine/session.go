package engine

import (
	"fmt"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"

	"rapidware/internal/compose"
	"rapidware/internal/endpoint"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
	"rapidware/internal/multicast"
	"rapidware/internal/packet"
)

// Session is one proxied stream inside an Engine: an inbound datagram queue,
// a filter chain bracketed by UDP endpoints, and the counters the control
// protocol reports. Sessions are created on demand by the engine's read loop
// when a datagram with an unknown session ID arrives.
type Session struct {
	id  uint32
	eng *Engine
	// shard is the slice of the engine's data plane that owns this session:
	// its table shard holds the registration and its writer carries all of
	// the session's output.
	shard *shard

	chain *filter.Chain
	// live binds the trunk chain to its composition plan; all structural
	// mutation — control-plane recompose, responder splices — goes through
	// it, serialized by its splice lock.
	live     *compose.Live
	source   *endpoint.UDPSource
	sink     *endpoint.UDPSink
	counters metrics.SessionCounters

	// adaptor is the session's closed adaptation plane; nil when the engine
	// runs without the feedback loop.
	adaptor *sessionAdaptor

	// tree is the session's per-receiver delivery tree: the trunk chain's
	// output is cloned by reference into one branch tail per fan-out member.
	// nil on unicast sessions and on plain (branch-less) fan-out.
	tree *deliveryTree

	// repairs reports FEC reconstruction counts from decoder stages built
	// into the chain (past and present — a recomposed-away decoder's final
	// count still tells the truth about the session's history); read at
	// snapshot time, never on the data path.
	repairsMu sync.Mutex
	repairs   []func() uint64

	in   chan *packet.Buf
	done chan struct{}

	// exited is set by the engine's exit hook when the chain terminates on
	// its own. openSession checks it after registering the session: a chain
	// that died inside the construct→register window would otherwise leave a
	// dead session in the table (the hook's eviction ran before there was
	// anything to evict) and blackhole the ID.
	exited atomic.Bool

	closeOnce sync.Once
	closeErr  error

	peerMu sync.RWMutex
	peer   netip.AddrPort
}

// newSession builds and starts the chain for one session. It runs with no
// lock held — the caller registers the finished session in the sharded table
// afterwards and resolves any construction race there.
func newSession(e *Engine, id uint32, peer netip.AddrPort) (*Session, error) {
	s := &Session{
		id:    id,
		eng:   e,
		shard: e.shardFor(id),
		in:    make(chan *packet.Buf, e.cfg.QueueDepth),
		done:  make(chan struct{}),
		peer:  peer,
	}
	s.chain = filter.NewChain(fmt.Sprintf("session-%d", id))
	s.source = endpoint.NewUDPSource(fmt.Sprintf("udp-in:%d", id), s.recv)
	// On the delivery-tree path the trunk's output frames are teed into the
	// branch tails, which re-frame with their own session-ID headroom; the
	// trunk sink therefore reserves none, so b.B is exactly the shared frame.
	headroom := packet.SessionIDSize
	if e.branching {
		headroom = 0
	}
	s.sink = endpoint.NewUDPSink(fmt.Sprintf("udp-out:%d", id), headroom, s.send)
	if err := s.chain.Append(s.source); err != nil {
		return nil, err
	}
	if err := s.chain.Append(s.sink); err != nil {
		return nil, err
	}
	// Compose the trunk interior between the endpoints from the engine's
	// plan; the same Live later applies control-plane recompositions and the
	// adaptation responder's splices to the running chain.
	live, err := compose.Attach(s.chain, e.reg, s.composeEnv(), e.trunkMode(), e.trunkPlan)
	if err != nil {
		return nil, fmt.Errorf("engine: session %d chain: %w", id, err)
	}
	s.live = live
	// The sink's exit hook is the session's watchdog: when the chain
	// terminates on its own the hook evicts the session, without spending a
	// goroutine per session on a blocking Wait. Registered (and accounted in
	// the engine's exit WaitGroup) before Start so the hook cannot be missed.
	tracked := e.trackSessionExit()
	s.sink.OnExit(func() { e.sessionExited(s, tracked) })
	if err := s.chain.Start(); err != nil {
		if tracked && !s.sink.Running() {
			// The sink goroutine never launched, so the exit hook will never
			// fire; balance the accounting here.
			e.exitWg.Done()
		}
		return nil, fmt.Errorf("engine: session %d start: %w", id, err)
	}
	if e.adaptOn {
		a, err := newSessionAdaptor(s, e.policy)
		if err != nil {
			s.close()
			return nil, fmt.Errorf("engine: session %d adaptor: %w", id, err)
		}
		s.adaptor = a
	}
	if e.branching {
		// Build the delivery tree (and one branch per current fan-out member)
		// before the session can receive a packet, so the first trunk frame
		// already fans out through fully primed branches.
		s.tree = newDeliveryTree(s)
		s.tree.reconcile()
	}
	return s, nil
}

// ID returns the session's wire identifier.
func (s *Session) ID() uint32 { return s.id }

// Chain exposes the session's filter chain for observation. Structural
// mutation goes through Live, which keeps the chain and its plan consistent.
func (s *Session) Chain() *filter.Chain { return s.chain }

// Live exposes the session's composed trunk so the control plane (and tests)
// can recompose it transactionally while traffic flows.
func (s *Session) Live() *compose.Live { return s.live }

// composeEnv is the build environment trunk plan stages are instantiated
// with.
func (s *Session) composeEnv() compose.Env {
	return compose.Env{
		StreamID:  s.id,
		Name:      func(kind string) string { return fmt.Sprintf("%s:%d", kind, s.id) },
		OnRepairs: s.addRepairHook,
	}
}

// addRepairHook registers one decoder stage's reconstruction counter. Hooks
// accumulate across recompositions so Stats stays monotonic; the slice only
// grows on control-path chain builds.
func (s *Session) addRepairHook(fn func() uint64) {
	s.repairsMu.Lock()
	s.repairs = append(s.repairs, fn)
	s.repairsMu.Unlock()
}

// Counters returns the session's counter block.
func (s *Session) Counters() *metrics.SessionCounters { return &s.counters }

// Stats snapshots the session's counters, folding in FEC repair counts from
// any decoder stages and the adaptation loop's state when the plane is on.
func (s *Session) Stats() metrics.SessionStats {
	st := s.counters.Snapshot(s.id)
	st.Shard = s.shard.idx
	s.repairsMu.Lock()
	hooks := append([]func() uint64(nil), s.repairs...)
	s.repairsMu.Unlock()
	for _, fn := range hooks {
		st.Repairs += fn()
	}
	st.Chain = s.live.String()
	st.Stages = s.live.StageStats()
	if s.adaptor != nil {
		st.Adapt = s.adaptor.stats()
	}
	if s.tree != nil {
		st.Receivers = s.tree.stats()
	}
	return st
}

// handleFeedback consumes one validated receiver-report frame. The report's
// source address identifies the receiver, so on a fan-out session each
// downstream station steers only its own delivery branch. Reports from
// addresses that are not legitimate receivers of this session are dropped —
// the feedback plane honors the same off-path protections as the data path.
// Called from the engine's read loop; the heavy lifting happens on the bus
// goroutine.
func (s *Session) handleFeedback(from netip.AddrPort, frame []byte) {
	if s.adaptor == nil {
		return
	}
	// Canonicalize once: authorization and the receiver key both compare
	// unmapped forms (a dual-stack socket may report the same station as
	// 1.2.3.4 or ::ffff:1.2.3.4 depending on how it sent).
	from = multicast.UnmapAddrPort(from)
	if !s.eng.receiverAuthorized(s, from) {
		return
	}
	rep, err := packet.ParseReport(frame)
	if err != nil {
		return
	}
	if s.tree != nil {
		// Membership may have changed since the last packet: a departed
		// member's branch (and loop) is torn down before routing, so its last
		// report cannot pin anything, and a member that joined silently gets
		// its branch before its first report would be dropped on the floor.
		s.tree.reconcile()
	}
	s.adaptor.report(from, rep)
}

// retransmitter is what a NACK is answered from: any stage instance holding a
// bounded retransmission history keyed by sequence number. arq.SenderFilter
// implements it; the lookup is structural so a future stage kind (or a custom
// registry's) can serve NACKs without touching the engine.
type retransmitter interface {
	Retransmit(seq uint64, emit func(frame []byte)) bool
}

// historyFor resolves the retransmission history a NACK against the given
// live composition should be answered from: a static arq stage if the plan
// has one, else whatever the fec-adapt marker currently holds (the adaptation
// plane splices an ARQ history there on high-RTT low-loss links).
func historyFor(live *compose.Live) retransmitter {
	if h, ok := live.Instance(compose.KindARQ).(retransmitter); ok {
		return h
	}
	if h, ok := live.Instance(compose.KindFECAdapt).(retransmitter); ok {
		return h
	}
	return nil
}

// handleNack consumes one validated NACK frame, answering each named sequence
// number out of the session's ARQ retransmission history with a unicast
// retransmission to the requester. NACKs honor the same off-path gate as
// receiver reports; on a fan-out session the requester's own delivery branch
// is consulted first, so a branch whose responder escalated to ARQ serves its
// receiver from its own history. Requests for sequence numbers the bounded
// history no longer holds are silently unanswerable — the receiver's give-up
// accounting owns that loss. Called from the engine's read loop.
func (s *Session) handleNack(from netip.AddrPort, frame []byte) {
	from = multicast.UnmapAddrPort(from)
	if !s.eng.receiverAuthorized(s, from) {
		return
	}
	var seqbuf [packet.MaxNackSeqs]uint64
	seqs, err := packet.ParseNack(frame, seqbuf[:0])
	if err != nil {
		return
	}
	var rx *metrics.ReceiverCounters
	var h retransmitter
	if s.tree != nil {
		// Same reconcile-before-routing rule as reports: a silently joined
		// member gets its branch before its first NACK is dropped.
		s.tree.reconcile()
		if br := s.tree.branchFor(from); br != nil {
			rx = &br.counters
			h = historyFor(br.live)
		}
	}
	if h == nil {
		h = historyFor(s.live)
	}
	if h == nil {
		return
	}
	emit := func(frame []byte) {
		b := packet.GetBuf(packet.SessionIDSize + len(frame))
		packet.PutSessionID(b.B, s.id)
		copy(b.B[packet.SessionIDSize:], frame)
		s.shard.enqueue(outbound{s: s, b: b, dst: from, rx: rx})
	}
	for _, seq := range seqs {
		if h.Retransmit(seq, emit) {
			s.shard.counters.retransmits.Add(1)
		}
	}
}

// Peer returns the address the session currently relays to in echo mode: the
// source of the most recent inbound datagram.
func (s *Session) Peer() netip.AddrPort {
	s.peerMu.RLock()
	defer s.peerMu.RUnlock()
	return s.peer
}

// setPeer records the sender a session echoes to. By default the peer is
// pinned to the session's first sender: letting any datagram that guesses a
// live session ID retarget the output would hand the stream to an off-path
// attacker (or reflect it at a spoofed victim). Deployments with genuinely
// mobile clients opt in with Config.AllowRoaming. The common case (unchanged
// peer) stays on the read lock.
func (s *Session) setPeer(from netip.AddrPort) {
	s.peerMu.RLock()
	same := s.peer == from
	pinned := !s.eng.cfg.AllowRoaming && s.peer.IsValid()
	s.peerMu.RUnlock()
	if same || pinned {
		return
	}
	s.peerMu.Lock()
	if s.eng.cfg.AllowRoaming || !s.peer.IsValid() {
		s.peer = from
	}
	s.peerMu.Unlock()
}

// deliver hands one inbound datagram (session ID still prefixed) to the
// session, dropping rather than blocking when the queue is full so one slow
// session cannot stall the engine's shared read loop. deliver takes ownership
// of b.
func (s *Session) deliver(b *packet.Buf, from netip.AddrPort) {
	s.setPeer(from)
	n := uint64(len(b.B)) // read before the send: the chain owns b afterwards
	select {
	case s.in <- b:
		s.counters.Packets.Add(1)
		s.counters.Bytes.Add(n)
	default:
		s.counters.Drops.Add(1)
		b.Release()
	}
}

// recv feeds the UDPSource: it blocks for the next queued datagram, strips
// the session-ID prefix, and returns io.EOF once the session is closed.
func (s *Session) recv() (*packet.Buf, error) {
	select {
	case b := <-s.in:
		b.B = b.B[packet.SessionIDSize:]
		return b, nil
	case <-s.done:
		return nil, io.EOF
	}
}

// send relays one chain-output frame. On the delivery-tree path the frame is
// teed into every receiver branch by reference (the branches stamp IDs and
// enqueue on the shard writer themselves); otherwise the sink reserved
// SessionIDSize bytes of headroom, the session ID is stamped in place and the
// whole buffer is one datagram for the owning shard's batched writer. Routing
// every datagram of a session through one shard writer preserves per-session
// output order; a full writer queue drops (UDP-style, counted) rather than
// blocking the chain. send owns b until the enqueue.
func (s *Session) send(b *packet.Buf) error {
	if s.tree != nil {
		s.tree.dispatch(b)
		return nil
	}
	packet.PutSessionID(b.B, s.id)
	if s.eng.group != nil {
		// Fan-out: the writer snapshots the receiver group at flush time so
		// membership changes apply to queued datagrams too.
		s.shard.enqueue(outbound{s: s, b: b, fan: true})
		return nil
	}
	dst := s.eng.forward
	if !dst.IsValid() {
		dst = s.Peer()
	}
	if !dst.IsValid() {
		s.counters.Drops.Add(1)
		b.Release()
		return nil
	}
	s.shard.enqueue(outbound{s: s, b: b, dst: dst})
	return nil
}

// close terminates the session: the adaptation plane stops first (so no
// splice can race the teardown), then the source observes EOF, the trunk
// chain drains and stops — flushing any in-flight frames through the tee —
// the delivery branches drain and stop in turn, and queued buffers are
// returned to the pool.
func (s *Session) close() error {
	s.closeOnce.Do(func() {
		if s.adaptor != nil {
			s.adaptor.stop()
		}
		close(s.done)
		s.closeErr = s.chain.Stop()
		if s.tree != nil {
			// The trunk is stopped, so no dispatch is in flight; tear the
			// branches down after it so trailing trunk output still fanned out.
			s.tree.close()
		}
		for {
			select {
			case b := <-s.in:
				b.Release()
			default:
				return
			}
		}
	})
	return s.closeErr
}
