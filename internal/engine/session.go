package engine

import (
	"fmt"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"rapidware/internal/compose"
	"rapidware/internal/endpoint"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
	"rapidware/internal/multicast"
	"rapidware/internal/packet"
)

// Session is one proxied stream inside an Engine. Its identity, counters and
// peer pinning live directly on the struct and survive for the session's
// whole registered lifetime; everything that costs resources at scale — the
// filter chain, its two endpoint goroutines, the inbound queue, the
// adaptation bus and the delivery tree — lives behind one atomic pointer to a
// chainState, so an idle session can be parked down to this struct plus a
// retained plan and later rebuilt transparently (see park.go). Sessions are
// created on demand by the engine's read loop when a datagram with an unknown
// session ID arrives.
type Session struct {
	id  uint32
	eng *Engine
	// shard is the slice of the engine's data plane that owns this session:
	// its table shard holds the registration and its writer carries all of
	// the session's output.
	shard *shard

	// cs is the session's chain-bound state: nil exactly while the session is
	// parked. The data path loads it once per packet; park/unpark swap it
	// under parkMu.
	cs atomic.Pointer[chainState]

	// parkMu serializes the park/unpark/close lifecycle transitions. The
	// fields below it are the "compact parked record": what remains of a
	// session when its chain is gone.
	parkMu      sync.Mutex
	parked      atomic.Bool
	parkedPlan  compose.Plan        // canonical trunk plan retained at park (guarded by parkMu)
	parkedAdapt *metrics.AdaptStats // last adaptation snapshot, for stats while parked (guarded by parkMu)

	counters metrics.SessionCounters

	// ctlActivity counts control-plane touches (recompose and friends) so an
	// operator working on a session keeps it from being harvested; together
	// with the packet counters it forms the activity sum the maintenance tick
	// compares against idleSeen — no per-packet clock reads anywhere.
	ctlActivity atomic.Uint64
	idleSeen    atomic.Uint64 // activity sum at the last maintenance observation
	idleSince   atomic.Int64  // unix nanos of the last observed activity change

	// repairs reports FEC reconstruction counts from decoder stages built
	// into the chain (past and present — a recomposed-away decoder's final
	// count still tells the truth about the session's history); read at
	// snapshot time, never on the data path.
	repairsMu sync.Mutex
	repairs   []func() uint64

	done chan struct{}

	// exited is set by the engine's exit hook when the chain terminates on
	// its own. openSession checks it after registering the session: a chain
	// that died inside the construct→register window would otherwise leave a
	// dead session in the table (the hook's eviction ran before there was
	// anything to evict) and blackhole the ID.
	exited atomic.Bool

	closeOnce sync.Once
	closeErr  error

	peerMu sync.RWMutex
	peer   netip.AddrPort
}

// chainState is one incarnation of a session's running machinery: the filter
// chain bracketed by UDP endpoints, the inbound datagram queue, and — when
// configured — the adaptation plane and the per-receiver delivery tree.
// filter chains cannot restart once stopped, so park discards the whole
// incarnation and unpark builds a fresh one from the session's retained plan.
type chainState struct {
	chain *filter.Chain
	// live binds the trunk chain to its composition plan; all structural
	// mutation — control-plane recompose, responder splices — goes through
	// it, serialized by its splice lock.
	live   *compose.Live
	source *endpoint.UDPSource
	sink   *endpoint.UDPSink

	// adaptor is the session's closed adaptation plane; nil when the engine
	// runs without the feedback loop.
	adaptor *sessionAdaptor

	// tree is the session's per-receiver delivery tree: the trunk chain's
	// output is cloned by reference into one branch tail per fan-out member.
	// nil on unicast sessions and on plain (branch-less) fan-out.
	tree *deliveryTree

	in   chan *packet.Buf
	stop chan struct{}

	// retired is set (under the session's parkMu) before a deliberate chain
	// stop — park or close — so the sink's exit hook can tell teardown from a
	// chain dying on its own and skip the eviction path.
	retired atomic.Bool
}

// newSession builds and starts the chain for one session. It runs with no
// lock held — the caller registers the finished session in the sharded table
// afterwards and resolves any construction race there.
func newSession(e *Engine, id uint32, peer netip.AddrPort) (*Session, error) {
	s := &Session{
		id:    id,
		eng:   e,
		shard: e.shardFor(id),
		done:  make(chan struct{}),
		peer:  peer,
	}
	s.idleSince.Store(time.Now().UnixNano())
	cs, err := e.buildChainState(s, e.trunkPlan)
	if err != nil {
		return nil, err
	}
	s.cs.Store(cs)
	return s, nil
}

// buildChainState assembles and starts one incarnation of a session's chain
// from the given trunk plan: at open time from the engine's configured plan,
// at unpark time from the plan the session retained when it was parked.
func (e *Engine) buildChainState(s *Session, plan compose.Plan) (*chainState, error) {
	cs := &chainState{
		in:   make(chan *packet.Buf, e.cfg.QueueDepth),
		stop: make(chan struct{}),
	}
	cs.chain = filter.NewChain(fmt.Sprintf("session-%d", s.id))
	cs.source = endpoint.NewUDPSource(fmt.Sprintf("udp-in:%d", s.id), func() (*packet.Buf, error) {
		return s.recv(cs)
	})
	// The trunk sink always reserves session-ID headroom: on the unicast path
	// the frame is stamped and sent as-is, and on the delivery-tree path the
	// tree stamps the same headroom once before teeing so the bypass lane can
	// forward the shared buffer to the shard writer with no copy at all
	// (cohort chains read past the stamp at a fixed offset).
	cs.sink = endpoint.NewUDPSink(fmt.Sprintf("udp-out:%d", s.id), packet.SessionIDSize, func(b *packet.Buf) error {
		return s.send(cs, b)
	})
	if err := cs.chain.Append(cs.source); err != nil {
		return nil, err
	}
	if err := cs.chain.Append(cs.sink); err != nil {
		return nil, err
	}
	// Compose the trunk interior between the endpoints from the plan; the
	// same Live later applies control-plane recompositions and the adaptation
	// responder's splices to the running chain.
	live, err := compose.Attach(cs.chain, e.reg, s.composeEnv(), e.trunkMode(), plan)
	if err != nil {
		return nil, fmt.Errorf("engine: session %d chain: %w", s.id, err)
	}
	cs.live = live
	// The sink's exit hook is the session's watchdog: when the chain
	// terminates on its own the hook evicts the session, without spending a
	// goroutine per session on a blocking Wait. Registered (and accounted in
	// the engine's exit WaitGroup) before Start so the hook cannot be missed.
	tracked := e.trackSessionExit()
	cs.sink.OnExit(func() { e.sessionExited(s, cs, tracked) })
	if err := cs.chain.Start(); err != nil {
		if tracked && !cs.sink.Running() {
			// The sink goroutine never launched, so the exit hook will never
			// fire; balance the accounting here.
			e.exitWg.Done()
		}
		return nil, fmt.Errorf("engine: session %d start: %w", s.id, err)
	}
	if e.adaptOn {
		a, err := newSessionAdaptor(s, cs, e.policy)
		if err != nil {
			// Deliberate teardown of the half-built incarnation: retire it
			// first so the exit hook doesn't mistake the stop for a chain
			// death and try to evict a session that was never registered.
			cs.retired.Store(true)
			cs.chain.Stop()
			return nil, fmt.Errorf("engine: session %d adaptor: %w", s.id, err)
		}
		cs.adaptor = a
	}
	if e.branching {
		// Build the delivery tree (and one branch per current fan-out member)
		// before the session can receive a packet, so the first trunk frame
		// already fans out through fully primed branches.
		cs.tree = newDeliveryTree(s, cs)
		cs.tree.reconcile()
	}
	return cs, nil
}

// ID returns the session's wire identifier.
func (s *Session) ID() uint32 { return s.id }

// state returns the session's current chain-bound state, nil while parked.
func (s *Session) state() *chainState { return s.cs.Load() }

// Chain exposes the session's filter chain for observation (nil while the
// session is parked). Structural mutation goes through Live, which keeps the
// chain and its plan consistent.
func (s *Session) Chain() *filter.Chain {
	if cs := s.cs.Load(); cs != nil {
		return cs.chain
	}
	return nil
}

// Live exposes the session's composed trunk so the control plane (and tests)
// can recompose it transactionally while traffic flows. nil while parked; the
// engine's control operations go through liveFor, which unparks first.
func (s *Session) Live() *compose.Live {
	if cs := s.cs.Load(); cs != nil {
		return cs.live
	}
	return nil
}

// Parked reports whether the session is currently parked.
func (s *Session) Parked() bool { return s.parked.Load() }

// composeEnv is the build environment trunk plan stages are instantiated
// with.
func (s *Session) composeEnv() compose.Env {
	return compose.Env{
		StreamID:  s.id,
		Name:      func(kind string) string { return fmt.Sprintf("%s:%d", kind, s.id) },
		OnRepairs: s.addRepairHook,
	}
}

// addRepairHook registers one decoder stage's reconstruction counter. Hooks
// accumulate across recompositions so Stats stays monotonic; the slice only
// grows on control-path chain builds.
func (s *Session) addRepairHook(fn func() uint64) {
	s.repairsMu.Lock()
	s.repairs = append(s.repairs, fn)
	s.repairsMu.Unlock()
}

// Counters returns the session's counter block.
func (s *Session) Counters() *metrics.SessionCounters { return &s.counters }

// AdaptRetunes returns how many retune decisions the session's adaptation
// plane has applied across all of its loops (encoder splices on unicast
// trunks, cohort moves on fan-out members). Zero when the plane is off or the
// session is parked. Cheap enough for benchmarks and tests to poll, unlike a
// full Stats snapshot.
func (s *Session) AdaptRetunes() uint64 {
	if cs := s.cs.Load(); cs != nil && cs.adaptor != nil {
		return cs.adaptor.retunes()
	}
	return 0
}

// activitySum folds every signal that counts as session activity into one
// number the maintenance tick can compare against its last mark: inbound
// packets (delivered or queue-dropped — a flooding sender is not idle) and
// control-plane touches.
func (s *Session) activitySum() uint64 {
	return s.counters.Packets.Load() + s.counters.Drops.Load() + s.ctlActivity.Load()
}

// Stats snapshots the session's counters, folding in FEC repair counts from
// any decoder stages and the adaptation loop's state when the plane is on.
// On a parked session the chain columns come from the retained plan and the
// adaptation snapshot taken at park time.
func (s *Session) Stats() metrics.SessionStats {
	st := s.counters.Snapshot(s.id)
	st.Shard = s.shard.idx
	s.repairsMu.Lock()
	hooks := append([]func() uint64(nil), s.repairs...)
	s.repairsMu.Unlock()
	for _, fn := range hooks {
		st.Repairs += fn()
	}
	if cs := s.cs.Load(); cs != nil {
		st.Chain = cs.live.String()
		st.Stages = cs.live.StageStats()
		if cs.adaptor != nil {
			st.Adapt = cs.adaptor.stats()
		}
		if cs.tree != nil {
			st.Receivers = cs.tree.stats()
			st.Cohorts = cs.tree.cohortCount()
		}
	} else {
		st.Parked = true
		s.parkMu.Lock()
		st.Chain = s.parkedPlan.String()
		st.Adapt = s.parkedAdapt
		s.parkMu.Unlock()
	}
	if s.eng.cfg.IdleTTL > 0 {
		if since := s.idleSince.Load(); since > 0 {
			if ms := (time.Now().UnixNano() - since) / int64(time.Millisecond); ms > 0 {
				st.IdleForMs = ms
			}
		}
	}
	return st
}

// handleFeedback consumes one validated receiver-report frame. The report's
// source address identifies the receiver, so on a fan-out session each
// downstream station steers only its own delivery branch. Reports from
// addresses that are not legitimate receivers of this session are dropped —
// the feedback plane honors the same off-path protections as the data path.
// Reports for a parked session are dropped too: feedback describes a stream
// that is not flowing, and a chatty reporter must not keep an idle session's
// chain alive (nor rebuild it). Called from the engine's read loop; the heavy
// lifting happens on the bus goroutine.
func (s *Session) handleFeedback(from netip.AddrPort, frame []byte) {
	cs := s.cs.Load()
	if cs == nil || cs.adaptor == nil {
		return
	}
	// Canonicalize once: authorization and the receiver key both compare
	// unmapped forms (a dual-stack socket may report the same station as
	// 1.2.3.4 or ::ffff:1.2.3.4 depending on how it sent).
	from = multicast.UnmapAddrPort(from)
	if !s.eng.receiverAuthorized(s, from) {
		return
	}
	rep, err := packet.ParseReport(frame)
	if err != nil {
		return
	}
	if cs.tree != nil {
		// Membership may have changed since the last packet: a departed
		// member's branch (and loop) is torn down before routing, so its last
		// report cannot pin anything, and a member that joined silently gets
		// its branch before its first report would be dropped on the floor.
		cs.tree.reconcile()
	}
	cs.adaptor.report(from, rep)
}

// retransmitter is what a NACK is answered from: any stage instance holding a
// bounded retransmission history keyed by sequence number. arq.SenderFilter
// implements it; the lookup is structural so a future stage kind (or a custom
// registry's) can serve NACKs without touching the engine.
type retransmitter interface {
	// Lookup returns the buffered packet for seq (nil when evicted or never
	// sent). The returned packet must be treated as read-only.
	Lookup(seq uint64) *packet.Packet
}

// historyFor resolves the retransmission history a NACK against the given
// live composition should be answered from: a static arq stage if the plan
// has one, else whatever the fec-adapt marker currently holds (the adaptation
// plane splices an ARQ history there on high-RTT low-loss links).
func historyFor(live *compose.Live) retransmitter {
	if h, ok := live.Instance(compose.KindARQ).(retransmitter); ok {
		return h
	}
	if h, ok := live.Instance(compose.KindFECAdapt).(retransmitter); ok {
		return h
	}
	return nil
}

// handleNack consumes one validated NACK frame, answering each named sequence
// number out of the session's ARQ retransmission history with a unicast
// retransmission to the requester. NACKs honor the same off-path gate as
// receiver reports; on a fan-out session the requester's own delivery branch
// is consulted first, so a branch whose responder escalated to ARQ serves its
// receiver from its own history. Requests for sequence numbers the bounded
// history no longer holds are silently unanswerable — the receiver's give-up
// accounting owns that loss, and a parked session's history went with its
// chain. Called from the engine's read loop.
func (s *Session) handleNack(from netip.AddrPort, frame []byte) {
	cs := s.cs.Load()
	if cs == nil {
		return
	}
	from = multicast.UnmapAddrPort(from)
	if !s.eng.receiverAuthorized(s, from) {
		return
	}
	var seqbuf [packet.MaxNackSeqs]uint64
	seqs, err := packet.ParseNack(frame, seqbuf[:0])
	if err != nil {
		return
	}
	var rx *metrics.ReceiverCounters
	var h retransmitter
	if cs.tree != nil {
		// Same reconcile-before-routing rule as reports: a silently joined
		// member gets its membership before its first NACK is dropped.
		cs.tree.reconcile()
		var live *compose.Live
		rx, live = cs.tree.memberRepair(from)
		if live != nil {
			h = historyFor(live)
		}
	}
	if h == nil {
		h = historyFor(cs.live)
	}
	if h == nil {
		return
	}
	for _, seq := range seqs {
		p := h.Lookup(seq)
		if p == nil {
			continue
		}
		// Serialize the stored packet straight into a pooled wire buffer:
		// session prefix first, then the frame appended in place.
		b := packet.GetBuf(packet.SessionIDSize + packet.HeaderSize + len(p.Payload))
		packet.PutSessionID(b.B, s.id)
		dgram, err := packet.AppendFrame(b.B[:packet.SessionIDSize], p)
		if err != nil {
			b.Release()
			continue
		}
		b.B = dgram
		s.shard.enqueue(outbound{s: s, b: b, dst: from, rx: rx})
		s.shard.counters.retransmits.Add(1)
	}
}

// Peer returns the address the session currently relays to in echo mode: the
// source of the most recent inbound datagram.
func (s *Session) Peer() netip.AddrPort {
	s.peerMu.RLock()
	defer s.peerMu.RUnlock()
	return s.peer
}

// setPeer records the sender a session echoes to. By default the peer is
// pinned to the session's first sender: letting any datagram that guesses a
// live session ID retarget the output would hand the stream to an off-path
// attacker (or reflect it at a spoofed victim). Deployments with genuinely
// mobile clients opt in with Config.AllowRoaming. The common case (unchanged
// peer) stays on the read lock.
func (s *Session) setPeer(from netip.AddrPort) {
	s.peerMu.RLock()
	same := s.peer == from
	pinned := !s.eng.cfg.AllowRoaming && s.peer.IsValid()
	s.peerMu.RUnlock()
	if same || pinned {
		return
	}
	s.peerMu.Lock()
	if s.eng.cfg.AllowRoaming || !s.peer.IsValid() {
		s.peer = from
	}
	s.peerMu.Unlock()
}

// deliver hands one inbound datagram (session ID still prefixed) to the
// session, dropping rather than blocking when the queue is full so one slow
// session cannot stall the engine's shared read loop. A datagram for a parked
// session unparks it first — the rebuild is the slow path; the live path is
// one atomic load, the enqueue, and one confirming load. The confirming load
// closes the park race: if park retired the queue between our load and the
// enqueue, the datagram could sit in a channel nothing reads, so we reclaim
// one buffer from the retired queue (ours, or an equivalent predecessor
// park's drain didn't own) and deliver it through the fresh state. deliver
// takes ownership of b.
func (s *Session) deliver(b *packet.Buf, from netip.AddrPort) {
	s.setPeer(from)
	for {
		cs := s.cs.Load()
		if cs == nil {
			var err error
			if cs, err = s.unpark(); err != nil {
				s.counters.Drops.Add(1)
				b.Release()
				return
			}
		}
		n := uint64(len(b.B)) // read before the send: the chain owns b afterwards
		select {
		case cs.in <- b:
		default:
			s.counters.Drops.Add(1)
			b.Release()
			return
		}
		if s.cs.Load() == cs {
			s.counters.Packets.Add(1)
			s.counters.Bytes.Add(n)
			return
		}
		select {
		case b = <-cs.in:
			// Park raced us; go around with the reclaimed buffer.
		default:
			// Park's drain (or the old chain, before it stopped) took
			// ownership of our datagram; either way it is not lost.
			s.counters.Packets.Add(1)
			s.counters.Bytes.Add(n)
			return
		}
	}
}

// recv feeds one incarnation's UDPSource: it blocks for the next queued
// datagram, strips the session-ID prefix, and returns io.EOF once the
// incarnation is parked or the session is closed.
func (s *Session) recv(cs *chainState) (*packet.Buf, error) {
	select {
	case b := <-cs.in:
		b.B = b.B[packet.SessionIDSize:]
		return b, nil
	case <-cs.stop:
		return nil, io.EOF
	case <-s.done:
		return nil, io.EOF
	}
}

// send relays one chain-output frame. On the delivery-tree path the tree
// stamps the session ID into the sink's reserved headroom once and tees the
// frame into every delivery cohort by reference; otherwise the session ID is
// stamped in place and the whole buffer is one datagram for the owning
// shard's batched writer. Routing
// every datagram of a session through one shard writer preserves per-session
// output order; a full writer queue drops (UDP-style, counted) rather than
// blocking the chain. send owns b until the enqueue.
func (s *Session) send(cs *chainState, b *packet.Buf) error {
	if cs.tree != nil {
		cs.tree.dispatch(b)
		return nil
	}
	packet.PutSessionID(b.B, s.id)
	if s.eng.group != nil {
		// Fan-out: the writer snapshots the receiver group at flush time so
		// membership changes apply to queued datagrams too.
		s.shard.enqueue(outbound{s: s, b: b, fan: true})
		return nil
	}
	dst := s.eng.forward
	if !dst.IsValid() {
		dst = s.Peer()
	}
	if !dst.IsValid() {
		s.counters.Drops.Add(1)
		b.Release()
		return nil
	}
	s.shard.enqueue(outbound{s: s, b: b, dst: dst})
	return nil
}

// close terminates the session: the adaptation plane stops first (so no
// splice can race the teardown), then the source observes EOF, the trunk
// chain drains and stops — flushing any in-flight frames through the tee —
// the delivery branches drain and stop in turn, and queued buffers are
// returned to the pool. A parked session closes by just releasing its slot in
// the parked gauge — there is nothing else left to stop.
func (s *Session) close() error {
	s.closeOnce.Do(func() {
		s.parkMu.Lock()
		defer s.parkMu.Unlock()
		cs := s.cs.Load()
		if cs != nil {
			// Retire before stopping so the sink's exit hook recognizes the
			// deliberate teardown.
			cs.retired.Store(true)
			if cs.adaptor != nil {
				cs.adaptor.stop()
			}
		}
		close(s.done)
		if cs != nil {
			s.closeErr = cs.chain.Stop()
			if cs.tree != nil {
				// The trunk is stopped, so no dispatch is in flight; tear the
				// branches down after it so trailing trunk output still fanned
				// out.
				cs.tree.close()
			}
		drain:
			for {
				select {
				case b := <-cs.in:
					b.Release()
				default:
					break drain
				}
			}
		}
		if s.parked.CompareAndSwap(true, false) {
			s.shard.counters.parkedNow.Add(-1)
		}
	})
	return s.closeErr
}
