package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestShardIndexStable property-checks that session→shard placement is a
// pure function of the ID: any ID maps to the same in-range shard every
// time, on every table of the same width.
func TestShardIndexStable(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64} {
		a, b := newTable(n), newTable(n)
		prop := func(id uint32) bool {
			i := a.shardIndex(id)
			return i < uint32(n) && i == a.shardIndex(id) && i == b.shardIndex(id)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatalf("%d shards: %v", n, err)
		}
	}
}

// TestShardIndexUniform checks that both sequential session IDs (the common
// client allocation pattern) and random IDs spread across shards without any
// shard drawing more than twice — or less than half — its fair share.
func TestShardIndexUniform(t *testing.T) {
	const ids = 4096
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{2, 4, 8, 16, 64} {
		tbl := newTable(n)
		check := func(kind string, next func(i int) uint32) {
			counts := make([]int, n)
			for i := 0; i < ids; i++ {
				counts[tbl.shardIndex(next(i))]++
			}
			mean := ids / n
			for sh, c := range counts {
				if c < mean/2 || c > mean*2 {
					t.Errorf("%d shards, %s ids: shard %d has %d of %d (mean %d)", n, kind, sh, c, ids, mean)
				}
			}
		}
		check("sequential", func(i int) uint32 { return uint32(i + 1) })
		check("random", func(int) uint32 { return rng.Uint32() })
	}
}

// TestTableInsertRemoveSemantics exercises the race-resolution contract:
// insert reports an existing winner instead of overwriting, reject aborts
// under the lock, and remove only deletes while the entry still maps to the
// same session.
func TestTableInsertRemoveSemantics(t *testing.T) {
	tbl := newTable(4)
	never := func() bool { return false }
	s1, s2 := &Session{id: 7}, &Session{id: 7}

	if got, inserted := tbl.insert(7, s1, never); !inserted || got != s1 {
		t.Fatalf("first insert = (%p, %v), want (s1, true)", got, inserted)
	}
	if got, inserted := tbl.insert(7, s2, never); inserted || got != s1 {
		t.Fatalf("racing insert = (%p, %v), want the winner s1 and false", got, inserted)
	}
	if got, inserted := tbl.insert(8, s2, func() bool { return true }); inserted || got != nil {
		t.Fatalf("rejected insert = (%p, %v), want (nil, false)", got, inserted)
	}
	if tbl.remove(7, s2) {
		t.Fatal("remove with a stale session succeeded")
	}
	if !tbl.remove(7, s1) {
		t.Fatal("remove with the registered session failed")
	}
	if tbl.lookup(7) != nil {
		t.Fatal("session still registered after remove")
	}
	if tbl.count() != 0 {
		t.Fatalf("count = %d, want 0", tbl.count())
	}
}

// TestResolveShards pins the Shards normalization: zero auto-sizes, values
// round up to powers of two, and the result stays within [1, maxShards].
func TestResolveShards(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 33: 64, 64: 64, 1000: 64}
	for in, want := range cases {
		if got := resolveShards(in); got != want {
			t.Errorf("resolveShards(%d) = %d, want %d", in, got, want)
		}
	}
	auto := resolveShards(0)
	if auto < 1 || auto > maxShards || auto&(auto-1) != 0 {
		t.Errorf("resolveShards(0) = %d, want a power of two in [1, %d]", auto, maxShards)
	}
}
