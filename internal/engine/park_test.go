package engine

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rapidware/internal/packet"
)

// dialConn is a soak-test client socket: one *net.UDPConn carrying many
// session IDs, with bounded-retry echo confirmation. Each dialConn is used by
// at most one goroutine at a time.
type dialConn struct {
	t    *testing.T
	conn *net.UDPConn
	buf  []byte
}

func newDialConn(t *testing.T, addr net.Addr) *dialConn {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, addr.(*net.UDPAddr))
	if err != nil {
		t.Fatalf("DialUDP: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &dialConn{t: t, conn: conn, buf: make([]byte, packet.MaxDatagram)}
}

// echoAll sends one datagram per session ID and collects echoes with bounded
// resend rounds (loopback UDP can still drop under load). It returns how many
// sessions never echoed.
func (d *dialConn) echoAll(ids []uint32) uint64 {
	pending := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		pending[id] = true
	}
	// Send in bounded flights: a cold session costs a chain build on first
	// contact, and an unbounded burst (every client firing its whole id set
	// at once) can outrun the engine's open rate under the race detector —
	// echo windows then expire and the resends amplify the very backlog that
	// caused them. A small per-client flight keeps the aggregate open rate
	// sane while the 50 clients still overlap heavily.
	const flight = 8
	for round := 0; round < 10 && len(pending) > 0; round++ {
		ids := make([]uint32, 0, len(pending))
		for id := range pending {
			ids = append(ids, id)
		}
		for i := 0; i < len(ids); i += flight {
			end := min(i+flight, len(ids))
			sent := 0
			for _, id := range ids[i:end] {
				if !pending[id] {
					continue // echoed while draining an earlier flight
				}
				dgram, err := packet.AppendDatagram(nil, id, &packet.Packet{
					Seq: uint64(round), StreamID: id, Kind: packet.KindData,
					Payload: []byte{byte(id), byte(id >> 8)},
				})
				if err != nil {
					d.t.Errorf("session %d: marshal: %v", id, err)
					return uint64(len(pending))
				}
				if _, err := d.conn.Write(dgram); err != nil {
					d.t.Errorf("session %d: write: %v", id, err)
					return uint64(len(pending))
				}
				sent++
			}
			window := time.Now().Add(time.Second)
			for got := 0; got < sent && time.Now().Before(window); {
				d.conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
				n, err := d.conn.Read(d.buf)
				if err != nil {
					break // window quiet: the next round resends stragglers
				}
				id, _, err := packet.SplitSessionID(d.buf[:n])
				if err != nil {
					continue
				}
				if pending[id] {
					delete(pending, id)
					got++
				}
			}
		}
	}
	return uint64(len(pending))
}

// probe sends one datagram for id and waits for its echo (matching seq),
// skipping stray late echoes of other sessions. Retries guard against raw
// UDP loss only; the engine side must not lose the wake-up datagram.
func (d *dialConn) probe(id uint32, seq uint64) bool {
	dgram, err := packet.AppendDatagram(nil, id, &packet.Packet{
		Seq: seq, StreamID: id, Kind: packet.KindData, Payload: []byte("wake"),
	})
	if err != nil {
		d.t.Errorf("session %d: marshal: %v", id, err)
		return false
	}
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := d.conn.Write(dgram); err != nil {
			d.t.Errorf("session %d: write: %v", id, err)
			return false
		}
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			d.conn.SetReadDeadline(deadline)
			n, err := d.conn.Read(d.buf)
			if err != nil {
				break
			}
			gotID, frame, err := packet.SplitSessionID(d.buf[:n])
			if err != nil || gotID != id {
				continue
			}
			if p, _, err := packet.Unmarshal(frame); err == nil && p.Seq == seq {
				return true
			}
		}
	}
	return false
}

// waitGoroutines polls until the process goroutine count satisfies ok or the
// deadline passes, returning the last observed count. Chain goroutines exit
// asynchronously after Stop returns, so park-related goroutine assertions
// need a settle window.
func waitGoroutines(t *testing.T, d time.Duration, ok func(int) bool) int {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		n := runtime.NumGoroutine()
		if ok(n) || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMaintInterval pins the maintenance ticker derivation: a quarter of the
// tightest configured window, floored at a millisecond, zero when neither
// timer-driven concern is on.
func TestMaintInterval(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want time.Duration
	}{
		{"none", Config{}, 0},
		{"idle only", Config{IdleTTL: time.Hour}, 15 * time.Minute},
		{"staleness only", Config{Adapt: true, ReportStaleness: 100 * time.Millisecond}, 25 * time.Millisecond},
		{"both, idle tighter", Config{Adapt: true, ReportStaleness: time.Hour, IdleTTL: time.Second}, 250 * time.Millisecond},
		{"both, staleness tighter", Config{Adapt: true, ReportStaleness: 200 * time.Millisecond, IdleTTL: time.Hour}, 50 * time.Millisecond},
		{"floored", Config{IdleTTL: 2 * time.Millisecond}, time.Millisecond},
		{"staleness without adapt", Config{ReportStaleness: 100 * time.Millisecond}, 0},
	}
	for _, tc := range cases {
		e, err := New(tc.cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", tc.name, err)
		}
		if got := e.maintInterval(); got != tc.want {
			t.Errorf("%s: maintInterval = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSessionParkUnparkTTL drives the full idle lifecycle with a fake clock:
// two maintenance ticks (one to observe the session idle, one a TTL later to
// park it) release the chain goroutines, and the first datagram afterwards
// rebuilds the chain and flows through it. Counters, plan and identity must
// survive the round trip.
func TestSessionParkUnparkTTL(t *testing.T) {
	const id = 42
	ttl := time.Hour // harvesting driven by explicit maintain() calls, not the ticker
	e := newTestEngine(t, Config{IdleTTL: ttl, Chain: "counting"})
	c := dialEngine(t, e)

	sendPacket(t, c, id, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("pre-park")})
	if got, p := readPacket(t, c, 2*time.Second); got != id || string(p.Payload) != "pre-park" {
		t.Fatalf("echo before park: session %d payload %q", got, p.Payload)
	}
	s := e.Session(id)
	if s == nil || s.Parked() {
		t.Fatalf("session %d missing or unexpectedly parked", id)
	}
	g0 := runtime.NumGoroutine()

	// First tick observes the activity (one packet since open) and only marks.
	now := time.Now()
	e.maintain(now)
	if s.Parked() {
		t.Fatal("first maintenance tick parked an active session")
	}
	// Second tick, a full TTL later with no traffic in between, parks.
	e.maintain(now.Add(ttl))
	if !s.Parked() {
		t.Fatal("session not parked after a full idle TTL")
	}
	if s.Chain() != nil || s.Live() != nil {
		t.Fatal("parked session still exposes a chain")
	}

	st := e.Stats()
	if st.ParkedSessions != 1 || st.LiveSessions != 0 || st.ActiveSessions != 1 {
		t.Fatalf("engine gauges after park = %d parked / %d live / %d active, want 1/0/1",
			st.ParkedSessions, st.LiveSessions, st.ActiveSessions)
	}
	if st.Parks != 1 || st.Unparks != 0 {
		t.Fatalf("park counters = %d parks / %d unparks, want 1/0", st.Parks, st.Unparks)
	}
	if n := e.SessionCount(); n != 1 {
		t.Fatalf("SessionCount after park = %d, want 1 (registration survives)", n)
	}
	ss := e.SessionStats()
	if len(ss) != 1 || !ss[0].Parked {
		t.Fatalf("SessionStats after park = %+v, want one parked entry", ss)
	}
	if ss[0].Chain != "counting" {
		t.Fatalf("parked session chain column = %q, want retained plan %q", ss[0].Chain, "counting")
	}
	// The two chain goroutines must actually be gone.
	if n := waitGoroutines(t, 5*time.Second, func(n int) bool { return n <= g0-2 }); n > g0-2 {
		t.Fatalf("goroutines after park = %d, want <= %d (chain goroutines released)", n, g0-2)
	}

	// First datagram after the idle period unparks transparently: it must not
	// be lost, and the rebuilt chain must be the retained plan.
	sendPacket(t, c, id, &packet.Packet{Seq: 2, Kind: packet.KindData, Payload: []byte("wake")})
	if got, p := readPacket(t, c, 2*time.Second); got != id || string(p.Payload) != "wake" {
		t.Fatalf("unpark echo: session %d payload %q", got, p.Payload)
	}
	if s.Parked() {
		t.Fatal("session still reports parked after traffic")
	}
	if ch := s.Chain(); ch == nil || ch.Len() != 3 {
		t.Fatalf("rebuilt chain = %v, want source+counting+sink", ch)
	}
	if got := s.Live().String(); got != "counting" {
		t.Fatalf("rebuilt plan = %q, want %q", got, "counting")
	}
	if got := s.Counters().Packets.Load(); got != 2 {
		t.Fatalf("Packets across park/unpark = %d, want 2 (counters survive)", got)
	}
	st = e.Stats()
	if st.Unparks != 1 || st.ParkedSessions != 0 || st.LiveSessions != 1 {
		t.Fatalf("engine gauges after unpark = %+v, want 1 unpark, 0 parked, 1 live", st)
	}

	// The woken session carries a burst with zero loss.
	for i := 0; i < 20; i++ {
		sendPacket(t, c, id, &packet.Packet{Seq: uint64(10 + i), Kind: packet.KindData, Payload: []byte{byte(i)}})
	}
	for i := 0; i < 20; i++ {
		readPacket(t, c, 2*time.Second)
	}
	if drops := s.Counters().Drops.Load(); drops != 0 {
		t.Fatalf("drops across park/unpark burst = %d, want 0", drops)
	}
}

// TestParkRetainsRecomposedPlan parks a session whose chain was recomposed
// after open: the *current* plan must be what survives parking and what the
// rebuild uses — and a control operation on a parked session must unpark it.
func TestParkRetainsRecomposedPlan(t *testing.T) {
	const id = 7
	e := newTestEngine(t, Config{IdleTTL: time.Hour})
	c := dialEngine(t, e)

	sendPacket(t, c, id, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("open")})
	readPacket(t, c, 2*time.Second)
	if got, err := e.RecomposeSession(id, "", "counting"); err != nil || got != "counting" {
		t.Fatalf("RecomposeSession = %q, %v", got, err)
	}
	if err := e.ParkSession(id); err != nil {
		t.Fatalf("ParkSession: %v", err)
	}
	s := e.Session(id)
	if !s.Parked() {
		t.Fatal("session not parked")
	}
	if got := e.SessionStats()[0].Chain; got != "counting" {
		t.Fatalf("parked chain column = %q, want recomposed plan %q", got, "counting")
	}
	// Parking an already-parked session is a no-op, not a double-count.
	if err := e.ParkSession(id); err != nil {
		t.Fatalf("ParkSession (again): %v", err)
	}
	if st := e.Stats(); st.Parks != 1 || st.ParkedSessions != 1 {
		t.Fatalf("double park counted: %d parks, %d parked", st.Parks, st.ParkedSessions)
	}

	// Traffic rebuilds the recomposed plan, not the engine default.
	sendPacket(t, c, id, &packet.Packet{Seq: 2, Kind: packet.KindData, Payload: []byte("wake")})
	readPacket(t, c, 2*time.Second)
	if got := s.Live().String(); got != "counting" {
		t.Fatalf("rebuilt plan = %q, want %q", got, "counting")
	}

	// A control operation is the other unpark path.
	if err := e.ParkSession(id); err != nil {
		t.Fatalf("ParkSession: %v", err)
	}
	if got, err := e.RecomposeSession(id, "", ""); err != nil || got != "" {
		t.Fatalf("RecomposeSession on parked session = %q, %v", got, err)
	}
	if s.Parked() {
		t.Fatal("control operation left the session parked")
	}
	if st := e.Stats(); st.Unparks != 2 {
		t.Fatalf("Unparks = %d, want 2", st.Unparks)
	}
}

// TestParkVsInboundDatagramRace hammers park against live traffic: a goroutine
// parks the session as fast as it can while the client runs a strict
// ping-pong. The confirming-load reclaim protocol in deliver/park must hand
// every datagram to *some* chain incarnation — zero loss, every echo arrives,
// every packet counted exactly once.
func TestParkVsInboundDatagramRace(t *testing.T) {
	const id = 9
	e := newTestEngine(t, Config{IdleTTL: time.Hour})
	c := dialEngine(t, e)

	sendPacket(t, c, id, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: []byte("open")})
	readPacket(t, c, 2*time.Second)
	s := e.Session(id)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.park()
			runtime.Gosched()
		}
	}()

	const rounds = 200
	for i := 1; i <= rounds; i++ {
		sendPacket(t, c, id, &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}})
		got, p := readPacket(t, c, 5*time.Second)
		if got != id || p.Seq != uint64(i) {
			t.Fatalf("round %d: echo session %d seq %d", i, got, p.Seq)
		}
	}
	close(stop)
	wg.Wait()

	if drops := s.Counters().Drops.Load(); drops != 0 {
		t.Fatalf("drops under park/deliver race = %d, want 0", drops)
	}
	if got := s.Counters().Packets.Load(); got != rounds+1 {
		t.Fatalf("Packets = %d, want %d (each datagram counted exactly once)", got, rounds+1)
	}
	st := e.Stats()
	if st.Parks == 0 || st.Unparks == 0 {
		t.Fatalf("race never exercised parking: %d parks, %d unparks", st.Parks, st.Unparks)
	}
}

// TestParkVsRecomposeRace races parking against control-plane recomposition
// under traffic. Individual recompose calls may lose to a concurrent park
// (their chain stops under them — an error, never a panic or deadlock), but
// the session must stay functional and composable afterwards.
func TestParkVsRecomposeRace(t *testing.T) {
	const id = 11
	e := newTestEngine(t, Config{IdleTTL: time.Hour})
	c := dialEngine(t, e)

	sendPacket(t, c, id, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: []byte("open")})
	readPacket(t, c, 2*time.Second)
	s := e.Session(id)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var recomposed atomic.Uint64
	wg.Add(3)
	go func() { // parker
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.park()
			runtime.Gosched()
		}
	}()
	go func() { // recomposer: alternates specs; errors mean it lost a race, which is fine
		defer wg.Done()
		specs := []string{"counting", ""}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.RecomposeSession(id, "", specs[i%len(specs)]); err == nil {
				recomposed.Add(1)
			}
			// Yield like the parker does. Each recompose spawns and reaps
			// filter goroutines; without a yield the recomposer and its
			// children can hand a single P back and forth through runnext
			// indefinitely, starving the timed traffic loop above.
			runtime.Gosched()
		}
	}()
	go func() { // echo drain
		defer wg.Done()
		buf := make([]byte, packet.MaxDatagram)
		for {
			c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			if _, err := c.Read(buf); err != nil {
				select {
				case <-stop:
					return
				default:
				}
			}
		}
	}()

	deadline := time.Now().Add(250 * time.Millisecond)
	for seq := uint64(1); time.Now().Before(deadline); seq++ {
		sendPacket(t, c, id, &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte("race")})
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	if recomposed.Load() == 0 {
		t.Fatal("no recompose ever succeeded during the race")
	}
	// The session must still compose and still relay.
	if _, err := e.RecomposeSession(id, "", "counting"); err != nil {
		t.Fatalf("RecomposeSession after race: %v", err)
	}
	for attempt := 0; ; attempt++ {
		if attempt >= 10 {
			t.Fatal("stream dead after park/recompose race")
		}
		sendPacket(t, c, id, &packet.Packet{Seq: 999999, Kind: packet.KindData, Payload: []byte("post-race")})
		buf := make([]byte, packet.MaxDatagram)
		c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		n, err := c.Read(buf)
		if err != nil {
			continue
		}
		if _, frame, err := packet.SplitSessionID(buf[:n]); err == nil {
			if got, _, err := packet.Unmarshal(frame); err == nil && string(got.Payload) == "post-race" {
				break
			}
		}
	}
}

// TestAdmissionHarvestEvictsOldestIdle fills a tiny engine, parks one session,
// and opens one more: under AdmitHarvest the parked session is the preferred
// victim and the newcomer is admitted in its place.
func TestAdmissionHarvestEvictsOldestIdle(t *testing.T) {
	e := newTestEngine(t, Config{MaxSessions: 4, Shards: 1, Admission: AdmitHarvest, IdleTTL: time.Hour})
	c := dialEngine(t, e)

	for id := uint32(1); id <= 4; id++ {
		sendPacket(t, c, id, &packet.Packet{Seq: uint64(id), Kind: packet.KindData, Payload: []byte{byte(id)}})
		readPacket(t, c, 2*time.Second)
	}
	if err := e.ParkSession(2); err != nil {
		t.Fatalf("ParkSession(2): %v", err)
	}

	sendPacket(t, c, 5, &packet.Packet{Seq: 5, Kind: packet.KindData, Payload: []byte{5}})
	if got, _ := readPacket(t, c, 2*time.Second); got != 5 {
		t.Fatalf("echo for harvested-in session = %d, want 5", got)
	}
	if e.Session(2) != nil {
		t.Fatal("parked session 2 survived harvest")
	}
	if e.Session(5) == nil {
		t.Fatal("session 5 not admitted")
	}
	st := e.Stats()
	if st.Harvested != 1 {
		t.Fatalf("Harvested = %d, want 1", st.Harvested)
	}
	if st.ActiveSessions != 4 || e.SessionCount() != 4 {
		t.Fatalf("sessions after harvest = %d (stats %d), want 4", e.SessionCount(), st.ActiveSessions)
	}
	if st.AdmissionDrops != 0 {
		t.Fatalf("AdmissionDrops = %d, want 0 under successful harvest", st.AdmissionDrops)
	}
}

// TestAdmissionRejectCountsDrops pins the default policy: at MaxSessions a
// new ID is refused, counted in the per-shard admission-drop gauge, and the
// table is untouched.
func TestAdmissionRejectCountsDrops(t *testing.T) {
	e := newTestEngine(t, Config{MaxSessions: 2})
	c := dialEngine(t, e)

	for id := uint32(1); id <= 2; id++ {
		sendPacket(t, c, id, &packet.Packet{Seq: uint64(id), Kind: packet.KindData, Payload: []byte{byte(id)}})
		readPacket(t, c, 2*time.Second)
	}
	sendPacket(t, c, 3, &packet.Packet{Seq: 3, Kind: packet.KindData, Payload: []byte{3}})
	buf := make([]byte, packet.MaxDatagram)
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("refused session echoed %d bytes", n)
	}
	st := e.Stats()
	if st.AdmissionDrops == 0 {
		t.Fatalf("AdmissionDrops = 0, want > 0")
	}
	if st.Rejected == 0 {
		t.Fatalf("Rejected = 0, want > 0")
	}
	if n := e.SessionCount(); n != 2 {
		t.Fatalf("SessionCount = %d, want 2", n)
	}
}

// TestEngineChurnSoak is the million-session scale proof at test size: it
// opens sessions in waves (each wave echo-verified, then parked through
// fake-clock maintenance ticks), until a large table is fully parked — at
// which point the goroutine count must be back near the engine baseline,
// O(shards) not O(sessions). It then wakes a sample of sessions with one
// datagram each and requires every wake-up echo to arrive: unpark loses
// nothing. Scaled down under the race detector, whose goroutine budget (8128)
// the full soak's live waves would exhaust.
func TestEngineChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped in -short mode")
	}
	sessions, wave := 100_000, 4_000
	if raceEnabled {
		sessions, wave = 8_000, 2_000
	}
	const clients = 50
	ttl := time.Hour
	e := newTestEngine(t, Config{
		MaxSessions: sessions,
		IdleTTL:     ttl,
		QueueDepth:  16, // parked sessions free their queues; live waves stay small
	})
	addr := e.LocalAddr()

	conns := make([]*dialConn, clients)
	for i := range conns {
		conns[i] = newDialConn(t, addr)
	}
	g0 := runtime.NumGoroutine()

	now := time.Now() // synthetic maintenance clock, advanced a TTL per tick
	parkAll := func(target int) {
		// Progress-aware rather than a fixed tick budget: straggler duplicate
		// datagrams (echo resends still queued in the engine's socket buffer)
		// re-mark sessions as active for as long as the backlog drains, which
		// under the race detector can take a while. Keep ticking as long as
		// the parked count is still growing; fail only after a long stall.
		last, stall := -1, 0
		for stall < 50 {
			e.maintain(now) // observe activity (or park the already-observed)
			now = now.Add(ttl)
			p := e.Stats().ParkedSessions
			if p >= target {
				return
			}
			if p > last {
				last, stall = p, 0
			} else {
				stall++
			}
			time.Sleep(5 * time.Millisecond)
		}
		for _, s := range e.table.snapshot() {
			if s.cs.Load() == nil {
				continue
			}
			t.Logf("stuck live: session %d sum=%d idleSeen=%d idleSince=%d parked=%v packets=%d drops=%d ctl=%d",
				s.id, s.activitySum(), s.idleSeen.Load(), s.idleSince.Load(), s.parked.Load(),
				s.counters.Packets.Load(), s.counters.Drops.Load(), s.ctlActivity.Load())
		}
		t.Fatalf("only %d of %d sessions parked", e.Stats().ParkedSessions, target)
	}

	for waveStart := 0; waveStart < sessions; waveStart += wave {
		var wg sync.WaitGroup
		var failed atomic.Uint64
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				var ids []uint32
				for id := waveStart + ci + 1; id <= waveStart+wave; id += clients {
					ids = append(ids, uint32(id))
				}
				failed.Add(conns[ci].echoAll(ids))
			}(ci)
		}
		wg.Wait()
		if n := failed.Load(); n > 0 {
			st := e.Stats()
			t.Logf("engine: count=%d active=%d live=%d parked=%d rejected=%d adrops=%d chainErrs=%d malformed=%d drops(dg)=%d wdrops=%d",
				e.SessionCount(), st.ActiveSessions, st.LiveSessions, st.ParkedSessions,
				st.Rejected, st.AdmissionDrops, st.ChainErrors, st.Malformed, st.Datagrams, st.WriteDrops)
			t.Fatalf("wave at %d: %d sessions never echoed", waveStart, n)
		}
		parkAll(waveStart + wave)
	}

	if n := e.SessionCount(); n != sessions {
		t.Fatalf("SessionCount = %d, want %d", n, sessions)
	}
	st := e.Stats()
	if st.ParkedSessions != sessions || st.LiveSessions != 0 {
		t.Fatalf("gauges = %d parked / %d live, want %d/0", st.ParkedSessions, st.LiveSessions, sessions)
	}
	if st.Parks < uint64(sessions) {
		t.Fatalf("Parks = %d, want >= %d", st.Parks, sessions)
	}
	// The heart of the tentpole: a fully parked table costs no goroutines.
	// Baseline is shards*2 + maintenance + runtime; allow slack for test
	// machinery but nothing anywhere near O(sessions).
	limit := g0 + 64
	if n := waitGoroutines(t, 10*time.Second, func(n int) bool { return n <= limit }); n > limit {
		t.Fatalf("goroutines with %d parked sessions = %d, want <= %d (baseline %d)", sessions, n, limit, g0)
	}

	// Wake a spread-out sample with a single datagram each: the first packet
	// after the idle period must rebuild the chain and come back — no warmup,
	// no loss.
	probes := 0
	preUnparks := e.Stats().Unparks
	for id := uint32(1); id <= uint32(sessions); id += uint32(sessions / 64) {
		ci := int(id-1) % clients
		if !conns[ci].probe(id, 7_000_000+uint64(id)) {
			t.Errorf("session %d: no echo after unpark probe", id)
		}
		probes++
	}
	if t.Failed() {
		t.FailNow()
	}
	st = e.Stats()
	if got := st.Unparks - preUnparks; got < uint64(probes) {
		t.Fatalf("Unparks grew by %d, want >= %d probes", got, probes)
	}
	if st.ActiveSessions != sessions {
		t.Fatalf("ActiveSessions after probes = %d, want %d", st.ActiveSessions, sessions)
	}
	if st.ParkedSessions > sessions-probes {
		t.Fatalf("ParkedSessions = %d after %d probes, want <= %d", st.ParkedSessions, probes, sessions-probes)
	}
}
