package engine

import (
	"errors"
	"fmt"
	"time"

	"rapidware/internal/packet"
)

// Idle-session parking: the mechanism that lets the engine hold a million
// mostly-idle sessions. A live session costs two chain goroutines, a queue of
// pooled buffers, and (with adaptation) a bus goroutine. After Config.IdleTTL
// with no traffic the engine's maintenance tick *parks* the session: its
// chain drains and stops through the ordinary quiescence machinery, both
// goroutines and the queue are released, and all that remains is the Session
// struct — identity, counters, peer — plus the canonical compose.Plan and an
// adaptation snapshot. The first inbound datagram (or control operation)
// *unparks* it by rebuilding the chain from the retained plan, transparently
// to peers. Parked sessions keep their registration: the session ID, its
// pinned peer and its counters all survive, so parking is invisible except as
// first-packet rebuild latency.

// errSessionClosed reports an unpark attempt on a session that is being torn
// down.
var errSessionClosed = errors.New("engine: session closed")

// park tears down the session's chain incarnation, retaining only the compact
// parked record. It reports whether the session transitioned live→parked.
// Datagrams that raced into the retiring queue are reclaimed and re-delivered
// through a fresh incarnation — parking never loses a datagram.
func (s *Session) park() bool {
	s.parkMu.Lock()
	defer s.parkMu.Unlock()
	select {
	case <-s.done:
		return false
	default:
	}
	cs := s.cs.Load()
	if cs == nil {
		return false
	}
	var snap = s.parkedAdapt
	if cs.adaptor != nil {
		snap = cs.adaptor.stats()
	}
	// Retire, then drain, then stop: the adaptation plane goes first (its
	// responder must not be left blocking on the splice lock we are about to
	// take), then — under the chain's splice lock, so no recompose holds a
	// link detached mid-swap — cs.stop feeds the source io.EOF and the EOF
	// cascades down the chain, each stage draining what is buffered before
	// observing it, until the sink has emitted every in-flight frame and its
	// goroutine exits. Only then is the chain formally stopped: calling Stop
	// earlier would force-close the interior streams and discard whatever was
	// mid-chain, and park — unlike close — must not lose output. The retired
	// flag tells the sink's exit hook this teardown is deliberate.
	cs.retired.Store(true)
	if cs.adaptor != nil {
		cs.adaptor.stop()
	}
	cs.live.Quiesce(func() {
		close(cs.stop)
		cs.sink.Wait()
		if err := cs.chain.Stop(); err != nil {
			s.eng.logf("session %d: park: chain stop: %v", s.id, err)
		}
	})
	if cs.tree != nil {
		cs.tree.close()
	}
	// The plan is captured after the stop so a recompose that won the splice
	// lock before quiescence is retained, not lost.
	s.parkedPlan = cs.live.Plan()
	s.parkedAdapt = snap
	s.cs.Store(nil)
	s.parked.Store(true)
	s.shard.counters.parkedNow.Add(1)
	s.shard.counters.parks.Add(1)
	// Reclaim datagrams that raced past deliver's confirming load into the
	// retired queue: they are exactly the traffic that proves the session is
	// not idle after all, so rebuild immediately and re-deliver them in order.
	var leftovers []*packet.Buf
reclaim:
	for {
		select {
		case b := <-cs.in:
			leftovers = append(leftovers, b)
		default:
			break reclaim
		}
	}
	if len(leftovers) > 0 {
		// Each reclaimed datagram was already counted by its deliverer (the
		// confirming-load protocol guarantees exactly one of deliver and this
		// drain owns it), so re-enqueue without recounting.
		ncs, err := s.unparkLocked()
		for _, b := range leftovers {
			if err != nil {
				s.counters.Drops.Add(1)
				b.Release()
				continue
			}
			select {
			case ncs.in <- b:
			default:
				s.counters.Drops.Add(1)
				b.Release()
			}
		}
	}
	return true
}

// unpark rebuilds a parked session's chain from its retained plan. It is the
// slow path of deliver (first datagram after an idle period) and of control
// operations addressing a parked session; on a live session it is a no-op
// returning the current state.
func (s *Session) unpark() (*chainState, error) {
	s.parkMu.Lock()
	defer s.parkMu.Unlock()
	if cs := s.cs.Load(); cs != nil {
		return cs, nil
	}
	select {
	case <-s.done:
		return nil, errSessionClosed
	default:
	}
	return s.unparkLocked()
}

// unparkLocked does the rebuild; the caller holds parkMu and has verified the
// session is parked and not closed.
func (s *Session) unparkLocked() (*chainState, error) {
	cs, err := s.eng.buildChainState(s, s.parkedPlan)
	if err != nil {
		s.shard.counters.chainErrors.Add(1)
		s.eng.logf("session %d: unpark: %v", s.id, err)
		return nil, err
	}
	s.cs.Store(cs)
	s.parked.Store(false)
	s.idleSince.Store(time.Now().UnixNano())
	s.idleSeen.Store(s.activitySum())
	s.shard.counters.parkedNow.Add(-1)
	s.shard.counters.unparks.Add(1)
	return cs, nil
}

// ensureLive returns the session's chain-bound state for a control operation,
// rebuilding it first when the session is parked. The control touch counts as
// activity so an operator composing a session holds its idle clock back.
func (s *Session) ensureLive() (*chainState, error) {
	s.ctlActivity.Add(1)
	if cs := s.cs.Load(); cs != nil {
		return cs, nil
	}
	return s.unpark()
}

// ParkSession immediately parks the session with the given ID, as the idle
// harvester would after the TTL. Exposed for operators draining capacity
// ahead of load and for benchmarks; parking an already-parked session is a
// no-op.
func (e *Engine) ParkSession(id uint32) error {
	s := e.table.lookup(id)
	if s == nil {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	s.park()
	return nil
}

// maintInterval derives the single maintenance ticker's period from the two
// concerns it serves: stale-receiver sweeps resolve at a quarter of the
// report-staleness window, idle harvesting at a quarter of the idle TTL.
// Returns 0 when neither concern is configured (no ticker goroutine at all).
func (e *Engine) maintInterval() time.Duration {
	var iv time.Duration
	if e.adaptOn && e.cfg.ReportStaleness > 0 {
		iv = e.cfg.ReportStaleness / 4
	}
	if ttl := e.cfg.IdleTTL; ttl > 0 {
		if q := ttl / 4; iv == 0 || q < iv {
			iv = q
		}
	}
	if iv > 0 && iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// maintenanceLoop is the engine's one timer goroutine: it drives both
// stale-receiver aging and idle-session harvesting from a single ticker,
// instead of one timer per concern per session.
func (e *Engine) maintenanceLoop(interval time.Duration) {
	defer e.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			e.maintain(time.Now())
		case <-e.stopWriters:
			return
		}
	}
}

// maintain runs one maintenance tick at the given time: every live session's
// observers are swept for stale receivers (when aging is on), and every live
// session whose activity sum hasn't moved since the previous tick for at
// least IdleTTL is parked. Taking `now` as a parameter keeps the tick
// deterministic under test. Parked sessions are skipped — they cost nothing
// and have nothing to sweep.
func (e *Engine) maintain(now time.Time) {
	sweep := e.adaptOn && e.cfg.ReportStaleness > 0
	harvest := e.cfg.IdleTTL > 0
	if !sweep && !harvest {
		return
	}
	nanos := now.UnixNano()
	for _, s := range e.table.snapshot() {
		cs := s.cs.Load()
		if cs == nil {
			continue
		}
		if sweep && cs.adaptor != nil {
			// Stamp lastSweep so the report path's opportunistic sweep backs
			// off past this one.
			cs.adaptor.lastSweep.Store(nanos)
			cs.adaptor.sweepAll()
		}
		if harvest {
			if sum := s.activitySum(); sum != s.idleSeen.Load() {
				s.idleSeen.Store(sum)
				s.idleSince.Store(nanos)
				continue
			}
			if nanos-s.idleSince.Load() >= int64(e.cfg.IdleTTL) {
				s.park()
			}
		}
	}
}

// harvestOldestIdle frees one admission slot under the AdmitHarvest policy by
// evicting the best victim: a parked session if any, else the live session
// idle the longest. The scan starts at the table shard that will own the
// incoming ID — O(sessions/shards) in the common case — and walks subsequent
// shards only if that one is empty. It reports whether a slot was freed.
func (e *Engine) harvestOldestIdle(incoming uint32) bool {
	victim := e.table.oldestIdle(incoming)
	if victim == nil {
		return false
	}
	if !e.table.remove(victim.id, victim) {
		// Somebody else (a concurrent harvest, close, or the exit hook) beat
		// us to this victim; report failure and let the caller retry.
		return false
	}
	e.active.Add(-1)
	victim.shard.counters.harvested.Add(1)
	e.logf("session %d: harvested for admission", victim.id)
	victim.close()
	return true
}
