package engine

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"rapidware/internal/cache"
	"rapidware/internal/compose"
	"rapidware/internal/endpoint"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
	"rapidware/internal/packet"
)

// A fan-out session's data plane is a delivery tree: the shared trunk (the
// session's ordinary filter chain) terminates in a tee whose taps are one
// short filter tail — a branch — per fan-out member. The tee clones trunk
// output into every branch by reference (pooled packet.Buf refcounts), never
// copying payload bytes, and each branch relays its output to exactly one
// receiver through the owning shard's batched writer. Because every branch is
// its own chain, each receiver can carry a different tail: its own adaptive
// FEC strength, its own transcoding or thinning — the paper's heterogeneous
// wireless stations served from one collaborative stream.

// deliveryTree owns a session's branches and keeps them reconciled with the
// engine's fan-out group. The trunk's send path is one atomic version check
// plus a tee dispatch; membership walks happen only when the group actually
// changed.
type deliveryTree struct {
	s *Session
	// cs is the chain incarnation this tree belongs to: branch priming reads
	// its live trunk's replay stage and branch adaptation loops join its
	// adaptor's bus. A parked session has no tree; unpark builds a fresh one.
	cs  *chainState
	tee *filter.Tee

	mu       sync.Mutex // guards branches and reconciliation
	branches map[netip.AddrPort]*branch
	version  atomic.Uint64 // AddrGroup version last reconciled; 0 = never
}

func newDeliveryTree(s *Session, cs *chainState) *deliveryTree {
	return &deliveryTree{s: s, cs: cs, tee: filter.NewTee(), branches: make(map[netip.AddrPort]*branch)}
}

// dispatch fans one trunk output frame out to every branch, reconciling the
// branch set first if the fan-out group changed. It consumes the caller's
// buffer reference. Called from the trunk sink's goroutine only.
func (t *deliveryTree) dispatch(b *packet.Buf) {
	if t.s.eng.group.Version() != t.version.Load() {
		t.reconcile()
	}
	if t.tee.Dispatch(b) == 0 {
		t.s.counters.Drops.Add(1)
	}
}

// reconcile aligns the branch set with the fan-out group's membership:
// departed members' branches are torn down (their adaptation loops with
// them), new members get freshly built branches, and the tee's tap list is
// republished. Runs on the trunk sink goroutine (version check in dispatch)
// and on the feedback path (handleFeedback), serialized by t.mu.
func (t *deliveryTree) reconcile() {
	t.mu.Lock()
	defer t.mu.Unlock()
	members, v := t.s.eng.group.SnapshotVersion()
	if v == t.version.Load() {
		return
	}
	want := make(map[netip.AddrPort]bool, len(members))
	for _, ap := range members {
		want[ap] = true
	}
	for ap, br := range t.branches {
		if !want[ap] {
			br.stop()
			delete(t.branches, ap)
		}
	}
	for _, ap := range members {
		if t.branches[ap] != nil {
			continue
		}
		br, err := newBranch(t, ap)
		if err != nil {
			// The member gets nothing until membership changes again; branch
			// specs are validated at engine construction, so this is a
			// resource-level failure worth surfacing.
			t.s.shard.counters.chainErrors.Add(1)
			t.s.eng.logf("session %d: branch %s: %v", t.s.id, ap, err)
			continue
		}
		t.branches[ap] = br
		t.prime(br)
	}
	taps := make([]filter.BufSink, 0, len(t.branches))
	for _, br := range t.branches {
		taps = append(taps, br.deliver)
	}
	t.tee.SetTaps(taps)
	t.version.Store(v)
}

// prime replays the trunk's retained history into a freshly built branch,
// oldest first, so a station joining a fan-out session mid-stream starts with
// recent context instead of a cold gap. The frames were recorded by a replay
// stage in the trunk plan (no stage, no priming); they enter the branch ahead
// of its tee tap, so they flow through the member's own tail — and its FEC or
// thinning — before the first live frame does. Runs before SetTaps publishes
// the branch, on the reconcile path under t.mu.
func (t *deliveryTree) prime(br *branch) {
	rf, ok := t.cs.live.Instance(compose.KindReplay).(*cache.ReplayFilter)
	if !ok {
		return
	}
	for _, frame := range rf.Frames() {
		b := packet.GetBuf(len(frame))
		copy(b.B, frame)
		br.counters.Primed.Add(1)
		br.deliver(b)
	}
}

// branchFor returns the live branch serving the given member, or nil.
func (t *deliveryTree) branchFor(member netip.AddrPort) *branch {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.branches[member]
}

// close tears every branch down. The trunk chain must already be stopped so
// no dispatch is in flight.
func (t *deliveryTree) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tee.SetTaps(nil)
	for ap, br := range t.branches {
		br.stop()
		delete(t.branches, ap)
	}
}

// stats snapshots every branch, ordered by receiver address for deterministic
// control-plane output.
func (t *deliveryTree) stats() []metrics.ReceiverStats {
	t.mu.Lock()
	branches := make([]*branch, 0, len(t.branches))
	for _, br := range t.branches {
		branches = append(branches, br)
	}
	t.mu.Unlock()
	out := make([]metrics.ReceiverStats, 0, len(branches))
	for _, br := range branches {
		out = append(out, br.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Receiver < out[j].Receiver })
	return out
}

// branch is one receiver's delivery tail: a queue fed by the trunk tee, a
// short filter chain bracketed by the same UDP endpoints sessions use, and a
// sink that stamps the session ID and hands each datagram to the owning
// shard's batched writer addressed to this member. Branches splice and retune
// live exactly like the trunk: their chains support the same pause/reconnect
// protocol, and the per-receiver responder drives them over the session bus.
type branch struct {
	s      *Session
	tree   *deliveryTree
	member netip.AddrPort

	chain *filter.Chain
	// live binds the branch tail to its plan; recompose operations with a
	// receiver selector and the branch responder's splices both go through
	// it.
	live   *compose.Live
	source *endpoint.UDPSource
	sink   *endpoint.UDPSink
	loop   *receiverLoop // nil without per-receiver adaptation

	counters metrics.ReceiverCounters

	in       chan *packet.Buf
	done     chan struct{}
	closed   atomic.Bool
	stopOnce sync.Once
}

// newBranch builds and starts the tail for one fan-out member, including its
// adaptation loop when the engine runs the per-receiver feedback plane. The
// branch is fully constructed — always-on policies primed, encoder spliced —
// before the caller publishes it to the tee, so the first frame through the
// branch is already protected.
func newBranch(t *deliveryTree, member netip.AddrPort) (*branch, error) {
	s := t.s
	e := s.eng
	br := &branch{
		s:      s,
		tree:   t,
		member: member,
		in:     make(chan *packet.Buf, e.cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	name := fmt.Sprintf("session-%d-branch-%s", s.id, member)
	br.chain = filter.NewChain(name)
	br.source = endpoint.NewUDPSource(fmt.Sprintf("branch-in:%d:%s", s.id, member), br.recv)
	br.sink = endpoint.NewUDPSink(fmt.Sprintf("branch-out:%d:%s", s.id, member), packet.SessionIDSize, br.send)
	if err := br.chain.Append(br.source); err != nil {
		return nil, err
	}
	if err := br.chain.Append(br.sink); err != nil {
		return nil, err
	}
	env := compose.Env{
		StreamID: s.id,
		Name:     func(kind string) string { return fmt.Sprintf("%s:%d:%s", kind, s.id, member) },
	}
	live, err := compose.Attach(br.chain, e.reg, env, compose.ModeBranch, e.branchPlan)
	if err != nil {
		return nil, fmt.Errorf("branch tail: %w", err)
	}
	br.live = live
	// A branch chain that dies on its own (a tail stage failed) stops
	// consuming; its queue overflows into the drop counters rather than
	// stalling the trunk. The closed flag short-circuits deliveries.
	br.sink.OnExit(func() {
		br.closed.Store(true)
		if err := br.sink.Err(); err != nil {
			s.shard.counters.chainErrors.Add(1)
			e.logf("session %d: branch %s: chain failed: %v", s.id, member, err)
		}
	})
	if err := br.chain.Start(); err != nil {
		return nil, fmt.Errorf("branch start: %w", err)
	}
	if e.branching && e.adaptOn {
		loop, err := t.cs.adaptor.addLoop(member.String(), br.live)
		if err != nil {
			br.stop()
			return nil, fmt.Errorf("branch adaptor: %w", err)
		}
		br.loop = loop
	}
	return br, nil
}

// deliver hands one shared trunk frame to the branch, dropping rather than
// blocking when the queue is full so one slow branch cannot stall the trunk
// or its sibling branches. deliver consumes one buffer reference.
func (br *branch) deliver(b *packet.Buf) {
	if br.closed.Load() {
		br.counters.Drops.Add(1)
		br.s.counters.Drops.Add(1)
		b.Release()
		return
	}
	select {
	case br.in <- b:
		// stop() may have flipped closed — and drained the queue — between
		// the check above and the enqueue, stranding this buffer's reference
		// in a channel nothing reads anymore. Re-check and reclaim one
		// queued buffer; if the consumer (or stop's drain) already took
		// ours, whichever buffer we pop needed releasing just the same.
		if br.closed.Load() {
			select {
			case b2 := <-br.in:
				br.counters.Drops.Add(1)
				br.s.counters.Drops.Add(1)
				b2.Release()
			default:
			}
		}
	default:
		br.counters.Drops.Add(1)
		br.s.counters.Drops.Add(1)
		b.Release()
	}
}

// recv feeds the branch source: it blocks for the next teed frame and returns
// io.EOF once the branch is stopped. The frame bytes are shared with sibling
// branches, so they are written into the chain (copied at the stream
// boundary) and the shared reference released without ever re-slicing b.B.
func (br *branch) recv() (*packet.Buf, error) {
	select {
	case b := <-br.in:
		return b, nil
	case <-br.done:
		return nil, io.EOF
	}
}

// send relays one branch-output frame to the branch's member through the
// owning shard's batched writer. The sink reserved session-ID headroom, so
// the ID is stamped in place and the whole buffer is one datagram. send owns
// b until the enqueue.
func (br *branch) send(b *packet.Buf) error {
	packet.PutSessionID(b.B, br.s.id)
	br.s.shard.enqueue(outbound{s: br.s, b: b, dst: br.member, rx: &br.counters})
	return nil
}

// stop tears the branch down: its adaptation loop leaves the session bus, the
// source observes EOF, the chain drains and stops, and queued shared buffers
// release their references.
func (br *branch) stop() {
	br.stopOnce.Do(func() {
		br.closed.Store(true)
		if br.loop != nil {
			br.tree.cs.adaptor.removeLoop(br.loop)
		}
		close(br.done)
		br.chain.Stop()
		for {
			select {
			case b := <-br.in:
				b.Release()
			default:
				return
			}
		}
	})
}

// stats snapshots the branch for control-protocol replies: relay counters,
// the tail's interior stages, and — with the per-receiver loop on — the
// protection level this receiver's own reports selected.
func (br *branch) stats() metrics.ReceiverStats {
	st := br.counters.Snapshot(br.member.String())
	names := br.chain.Names()
	if len(names) >= 2 {
		st.Stages = names[1 : len(names)-1]
	}
	st.Chain = br.live.String()
	if br.loop != nil {
		br.loop.fill(&st)
	}
	return st
}
