package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"rapidware/internal/adapt"
	"rapidware/internal/arq"
	"rapidware/internal/cache"
	"rapidware/internal/compose"
	"rapidware/internal/endpoint"
	"rapidware/internal/fec"
	"rapidware/internal/fecproxy"
	"rapidware/internal/filter"
	"rapidware/internal/metrics"
	"rapidware/internal/packet"
	"rapidware/internal/raplet"
)

// A fan-out session's data plane is a delivery tree: the shared trunk (the
// session's ordinary filter chain) terminates in a tee whose taps are delivery
// *cohorts* — one shared tail per distinct protection level, not one per
// receiver. Receivers whose tail plans canonicalize identically and whose
// adaptation loops decided the same repair mechanism (same (n,k) FEC code,
// same ARQ history, or none) are members of the same cohort: the trunk frame
// is teed once into the cohort's chain, traverses it once, is FEC-encoded
// once, and the cohort's output fans to every member destination through the
// owning shard's batched writer — same payload, N address stamps, no payload
// copies. Receivers whose effective tail is empty (every stage a dormant
// marker, no repair engaged) share the bypass cohort: trunk output goes
// straight into the shard writer's batch with no chain, no goroutines and no
// channel hop at all. Heterogeneity costs exactly as many chains as there are
// distinct protection levels — the paper's per-station adaptation at the
// price of per-level encoding.

// member is one fan-out receiver: its address, its tail plan, its exact
// per-receiver counters, and its adaptation loop state. The chain serving it
// is its cohort's, shared with every receiver at the same protection level;
// a retune (or a per-receiver recompose) moves the member between cohorts
// instead of rewriting a private chain.
type member struct {
	ap   netip.AddrPort
	plan compose.Plan // this member's tail plan (guarded by tree.mu)

	counters metrics.ReceiverCounters

	// cohort is the cohort currently serving this member (guarded by
	// tree.mu); nil only when cohort construction failed.
	cohort *cohort
	// gate fences this member into its current cohort: the shard writer
	// starts stamping the cohort's output to it only from the gate's sealed
	// sequence onward, so frames that were already inside the cohort (queued
	// or mid-chain) at join time — which the member's previous cohort still
	// owes it through a fade — are never double-delivered. nil once the gate
	// is spent. Guarded by tree.mu; the fence value itself is atomic.
	gate *startGate
	// resp/loop are the member's adaptation state; nil without the
	// per-receiver feedback plane.
	resp *memberResponder
	loop *receiverLoop
}

// Handover fences. A migrating member leaves a fade behind in its old cohort
// (deliver everything up to the cut) and carries a gate into its new one
// (deliver everything from the cut). Both start unsealed — "the cut has not
// reached this point of the frame stream yet" — and are sealed to an exact
// outbound sequence number by the cohort itself: the bypass lane seals on its
// next deliver (which is by construction the first post-cut frame, thanks to
// the tee's swap barrier), a chain cohort seals when an in-band seal marker
// enqueued at the cut emerges from its chain, positioned after every pre-cut
// frame and before every post-cut one.
const (
	// fenceUnsealed marks a fade or gate whose cut has not been located in
	// the cohort's outbound sequence space yet: fades deliver everything,
	// gates nothing, until the seal lands.
	fenceUnsealed = int64(1) << 62
	// fenceCanceled retires a fade whose receiver left the group entirely.
	fenceCanceled = -(int64(1) << 62)
	// sealStream/sealGroup tag seal-marker control frames so the cohort sink
	// can recognize its own markers. A client deliberately crafting a
	// KindControl frame with both values could seal a fence early; the blast
	// radius is a few misrouted frames for a receiver that is mid-migration
	// at that instant, never a crash or a stall.
	sealStream = ^uint32(0)
	sealGroup  = 0x5EA11D
)

// startGate fences a member into a cohort: at seals the first outbound
// sequence number the member receives. seal orders the gate against the
// cohort's seal markers so an earlier marker never closes a later cut.
type startGate struct {
	seal uint64
	at   atomic.Int64
}

// cohortTarget is one destination of a cohort's fan-out, denormalized for the
// shard writer's hot path: the address to stamp, the counters to credit, and
// the join gate to honor (nil for settled members).
type cohortTarget struct {
	dst  netip.AddrPort
	rx   *metrics.ReceiverCounters
	gate *startGate
}

// fadeTarget keeps a receiver that just migrated to another cohort on its old
// cohort's fan-out list for the frames that were already in flight at the
// migration point, so nothing queued through the old chain or the shard
// writer is lost — and nothing newer is duplicated. expiresAt is a fence in
// the cohort's outbound sequence space (see cohort.enqueued/consumed): the
// writer includes the fade exactly for frames whose sequence precedes it.
type fadeTarget struct {
	dst       netip.AddrPort
	rx        *metrics.ReceiverCounters
	seal      uint64
	expiresAt atomic.Int64
}

// cohortView is the atomic snapshot the shard writer expands a cohort
// outbound against: current member destinations plus any still-fading
// migrated members. Rebuilt on the control path (membership mutation under
// tree.mu), loaded wait-free per flushed frame.
type cohortView struct {
	targets []cohortTarget
	fades   []*fadeTarget
}

// cohort is one shared delivery tail: either a running filter chain (with the
// protection level's repair stage spliced at the fec-adapt marker) whose
// output fans to every member, or — for the empty effective tail — the
// bypass lane, which has no chain at all and forwards teed trunk frames
// directly into the shard writer's batch.
type cohort struct {
	key    string
	serial uint64
	tree   *deliveryTree
	bypass bool

	// Chain-cohort machinery; all nil for the bypass cohort.
	chain  *filter.Chain
	live   *compose.Live
	source *endpoint.UDPSource
	sink   *endpoint.UDPSink
	in     chan *packet.Buf
	done   chan struct{}

	view atomic.Pointer[cohortView]

	// enqueued numbers this cohort's outbound frames as they are handed to
	// the shard writer; consumed counts them as the writer resolves them
	// (flushed or queue-dropped). Their difference is the cohort's in-flight
	// writer load, which is what fade fences are cut against.
	enqueued atomic.Int64
	consumed atomic.Int64

	// members and fades are the membership source of truth (guarded by
	// tree.mu); view is their published snapshot. sealSeq numbers handover
	// cuts (fades and gates) so seal markers match exactly the fences they
	// were enqueued for.
	members []*member
	fades   []*fadeTarget
	sealSeq uint64

	// pendingSeal asks the bypass lane's next deliver — the first post-cut
	// frame, by the tee swap barrier — to seal every unsealed fence at the
	// current enqueue count. Chain cohorts seal via in-band markers instead.
	pendingSeal atomic.Bool

	closed   atomic.Bool
	stopOnce sync.Once
}

// deliveryTree owns a session's members and cohorts and keeps them reconciled
// with the engine's fan-out group. The trunk's send path is one atomic
// version check plus a tee dispatch; membership walks happen only when the
// group, a member's plan, or a member's decided protection level changed.
type deliveryTree struct {
	s *Session
	// cs is the chain incarnation this tree belongs to: member priming reads
	// its live trunk's replay stage and member adaptation loops join its
	// adaptor's bus. A parked session has no tree; unpark builds a fresh one.
	cs  *chainState
	tee *filter.Tee

	mu        sync.Mutex // guards members, cohorts and all membership state
	members   map[netip.AddrPort]*member
	cohorts   map[string]*cohort
	cohortSeq uint64
	version   atomic.Uint64 // AddrGroup version last reconciled; 0 = never
}

func newDeliveryTree(s *Session, cs *chainState) *deliveryTree {
	return &deliveryTree{
		s:       s,
		cs:      cs,
		tee:     filter.NewTee(),
		members: make(map[netip.AddrPort]*member),
		cohorts: make(map[string]*cohort),
	}
}

// cohortKeyFor is a cohort's identity: the canonical tail plan plus the
// repair mechanism the members' adaptation loops decided. Two receivers with
// equal keys are interchangeable consumers of one encoded stream.
func cohortKeyFor(plan compose.Plan, mech adapt.Mechanism, params fec.Params) string {
	switch mech {
	case adapt.MechanismFEC:
		return plan.Key() + "\x02fec:" + params.String()
	case adapt.MechanismARQ:
		return plan.Key() + "\x02arq"
	}
	return plan.Key()
}

// allMarkers reports whether every stage of a plan is a marker — a plan whose
// chain interior would be empty, making its clean-link cohort eligible for
// the bypass lane.
func (e *Engine) allMarkers(plan compose.Plan) bool {
	for _, st := range plan.Stages {
		d, ok := e.reg.Lookup(st.Kind)
		if !ok || !d.Marker {
			return false
		}
	}
	return true
}

// dispatch fans one trunk output frame out to every cohort, reconciling
// membership first if the fan-out group changed. The trunk sink reserved
// session-ID headroom, so the ID is stamped here — once, on this goroutine,
// before any cohort can see the buffer — and the whole buffer is one
// ready-to-send datagram for the bypass lane. dispatch consumes the caller's
// buffer reference. Called from the trunk sink's goroutine only.
func (t *deliveryTree) dispatch(b *packet.Buf) {
	if t.s.eng.group.Version() != t.version.Load() {
		t.reconcile()
	}
	packet.PutSessionID(b.B, t.s.id)
	if t.tee.Dispatch(b) == 0 {
		t.s.counters.Drops.Add(1)
	}
}

// reconcile aligns the member set with the fan-out group's membership:
// departed members leave their cohorts (their adaptation loops with them),
// new members are placed into the cohort their tail plan and initial policy
// decision select, and the tee's tap list is republished. Runs on the trunk
// sink goroutine (version check in dispatch) and on the feedback path
// (handleFeedback), serialized by t.mu.
func (t *deliveryTree) reconcile() {
	t.mu.Lock()
	defer t.mu.Unlock()
	members, v := t.s.eng.group.SnapshotVersion()
	if v == t.version.Load() {
		return
	}
	want := make(map[netip.AddrPort]bool, len(members))
	for _, ap := range members {
		want[ap] = true
	}
	for ap, m := range t.members {
		if !want[ap] {
			t.removeMemberLocked(m)
		}
	}
	for _, ap := range members {
		if t.members[ap] == nil {
			t.addMemberLocked(ap)
		}
	}
	t.publishTapsLocked()
	t.pruneLocked()
	t.version.Store(v)
}

// addMemberLocked admits one new fan-out member: it is placed into the cohort
// selected by the engine's branch plan and the policy's clean-link decision
// (so always-on protection ladders get their encoder cohort from the first
// frame), its adaptation loop joins the session bus, and its delivery is
// primed from the trunk's replay history. Caller holds t.mu.
func (t *deliveryTree) addMemberLocked(ap netip.AddrPort) {
	e := t.s.eng
	m := &member{ap: ap, plan: e.branchPlan}
	mech, params := adapt.MechanismNone, fec.Params{K: 1, N: 1}
	if e.adaptOn {
		mech, params = e.policy.Decide(0, 0)
	}
	effective := mech
	if !m.plan.Has(compose.KindFECAdapt) {
		effective = adapt.MechanismNone
	}
	t.members[ap] = m
	if _, err := t.assignLocked(m, effective, params); err != nil {
		// The member gets nothing until membership changes again; branch
		// specs are validated at engine construction, so this is a
		// resource-level failure worth surfacing.
		delete(t.members, ap)
		t.s.shard.counters.chainErrors.Add(1)
		e.logf("session %d: member %s: %v", t.s.id, ap, err)
		return
	}
	if e.adaptOn {
		m.resp = &memberResponder{
			name:    fmt.Sprintf("adapt:%d:%s", t.s.id, ap),
			tree:    t,
			m:       m,
			current: params,
			mech:    mech,
			active:  effective != adapt.MechanismNone,
		}
		loop, err := t.cs.adaptor.addMemberLoop(ap.String(), m.resp)
		if err != nil {
			e.logf("session %d: member %s adaptor: %v", t.s.id, ap, err)
		} else {
			m.loop = loop
		}
	}
	t.primeLocked(m)
}

// removeMemberLocked evicts a departed member: its loop leaves the bus and it
// leaves its cohort with no fade (frames in flight to a receiver that left
// the group are simply not sent). Caller holds t.mu.
func (t *deliveryTree) removeMemberLocked(m *member) {
	if m.loop != nil {
		t.cs.adaptor.removeLoop(m.loop)
		m.loop = nil
	}
	if m.cohort != nil {
		m.cohort.dropTargetLocked(m)
		m.cohort.cancelFadeLocked(m.ap)
		m.cohort.publishLocked()
		m.cohort = nil
	}
	delete(t.members, m.ap)
}

// assignLocked moves a member into the cohort identified by its plan and the
// given effective mechanism, creating the cohort on demand. The handover is
// exact: the new tap set, the member's fade out of its old cohort and its
// gate into the new one are all cut inside the tee's swap barrier, so every
// trunk frame lands on exactly one side of the cut in both cohorts' outbound
// sequence spaces — no frame is lost in flight and none is delivered twice,
// even when the member rejoins a cohort it is still fading out of (the fade's
// fence and the fresh gate's are disjoint by construction). It reports
// whether the member actually moved. Caller holds t.mu.
func (t *deliveryTree) assignLocked(m *member, mech adapt.Mechanism, params fec.Params) (bool, error) {
	key := cohortKeyFor(m.plan, mech, params)
	if m.cohort != nil && m.cohort.key == key {
		return false, nil
	}
	c := t.cohorts[key]
	if c == nil {
		fresh, err := t.newCohortLocked(key, m.plan, mech, params)
		if err != nil {
			return false, err
		}
		c = fresh
		t.cohorts[key] = c
	}
	old := m.cohort
	c.members = append(c.members, m)
	m.cohort = c
	if old != nil {
		old.dropTargetLocked(m)
	}
	t.tee.Swap(t.tapsLocked(), func() {
		if old != nil {
			old.addFadeLocked(m)
		}
		c.armGateLocked(m)
		c.publishLocked()
		if old != nil {
			old.publishLocked()
		}
	})
	t.pruneLocked()
	return true, nil
}

// retune is the member adaptation loops' entry point: re-decide the repair
// mechanism from the receiver's reported loss and RTT and move the member to
// the matching cohort. A plan without a fec-adapt marker forces the effective
// mechanism to none — the operator recomposed repair away, so the loop goes
// dormant until a recompose restores the marker (the decided level is still
// recorded for stats). Runs on the session bus's dispatch goroutine.
func (t *deliveryTree) retune(m *member, loss float64, rttMillis uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.members[m.ap] != m {
		return nil // departed while the event was queued
	}
	mech, params := t.s.eng.policy.Decide(loss, rttMillis)
	effective := mech
	if !m.plan.Has(compose.KindFECAdapt) {
		effective = adapt.MechanismNone
	}
	moved, err := t.assignLocked(m, effective, params)
	if err != nil {
		return err
	}
	m.resp.set(params, mech, loss, effective != adapt.MechanismNone, moved)
	return nil
}

// rewriteMemberPlan applies a control-plane plan rewrite to one member's tail
// and reassigns its cohort: per-receiver recompose is a membership move, not
// chain surgery. op maps the member's current plan to the target plan; the
// result is validated against the branch dialect. Returns the canonical plan
// string after the rewrite.
func (t *deliveryTree) rewriteMemberPlan(ap netip.AddrPort, op func(compose.Plan) (compose.Plan, error)) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[ap]
	if m == nil {
		return "", fmt.Errorf("engine: session %d has no branch for receiver %s", t.s.id, ap)
	}
	plan, err := op(m.plan)
	if err != nil {
		return "", err
	}
	if err := t.s.eng.reg.Validate(plan, compose.ModeBranch); err != nil {
		return "", err
	}
	m.plan = plan
	mech, params := adapt.MechanismNone, fec.Params{K: 1, N: 1}
	if m.resp != nil {
		mech, params = m.resp.decision()
	}
	effective := mech
	if !plan.Has(compose.KindFECAdapt) {
		effective = adapt.MechanismNone
	}
	if _, err := t.assignLocked(m, effective, params); err != nil {
		return "", err
	}
	if m.resp != nil {
		m.resp.setActive(effective != adapt.MechanismNone)
	}
	return plan.String(), nil
}

// newCohortLocked builds the shared tail for one protection level. The
// clean-link cohort of an all-marker plan is the bypass lane (no chain); any
// other key gets a chain with the plan's stages and — for FEC or ARQ — the
// level's repair stage activated at the fec-adapt marker. Cohort chains use
// a *fixed* FEC code: a level change is a membership move to another cohort,
// never an in-place retune, so one encode always serves every member.
// Caller holds t.mu.
func (t *deliveryTree) newCohortLocked(key string, plan compose.Plan, mech adapt.Mechanism, params fec.Params) (*cohort, error) {
	s := t.s
	e := s.eng
	c := &cohort{key: key, serial: t.cohortSeq, tree: t}
	t.cohortSeq++
	c.view.Store(&cohortView{})
	if mech == adapt.MechanismNone && e.allMarkers(plan) {
		c.bypass = true
		return c, nil
	}
	c.in = make(chan *packet.Buf, e.cfg.QueueDepth)
	c.done = make(chan struct{})
	c.chain = filter.NewChain(fmt.Sprintf("session-%d-cohort-%d", s.id, c.serial))
	c.source = endpoint.NewUDPSourceOffset(fmt.Sprintf("cohort-in:%d:%d", s.id, c.serial), packet.SessionIDSize, c.recv)
	c.sink = endpoint.NewUDPSink(fmt.Sprintf("cohort-out:%d:%d", s.id, c.serial), packet.SessionIDSize, c.send)
	if err := c.chain.Append(c.source); err != nil {
		return nil, err
	}
	if err := c.chain.Append(c.sink); err != nil {
		return nil, err
	}
	env := compose.Env{
		StreamID: s.id,
		Name:     func(kind string) string { return fmt.Sprintf("%s:%d:c%d", kind, s.id, c.serial) },
	}
	live, err := compose.Attach(c.chain, e.reg, env, compose.ModeBranch, plan)
	if err != nil {
		return nil, fmt.Errorf("cohort tail: %w", err)
	}
	c.live = live
	// A cohort chain that dies on its own (a tail stage failed) stops
	// consuming; its queue overflows into the drop counters rather than
	// stalling the trunk. The closed flag short-circuits deliveries.
	serial := c.serial
	c.sink.OnExit(func() {
		c.closed.Store(true)
		if err := c.sink.Err(); err != nil {
			s.shard.counters.chainErrors.Add(1)
			e.logf("session %d: cohort %d: chain failed: %v", s.id, serial, err)
		}
	})
	if err := c.chain.Start(); err != nil {
		return nil, fmt.Errorf("cohort start: %w", err)
	}
	switch mech {
	case adapt.MechanismFEC:
		enc, err := fecproxy.NewEncoderFilter(fmt.Sprintf("fec:%d:c%d", s.id, serial), params, s.id)
		if err == nil {
			err = live.Activate(compose.KindFECAdapt, enc)
		}
		if err != nil {
			c.stop()
			return nil, fmt.Errorf("cohort fec: %w", err)
		}
	case adapt.MechanismARQ:
		if err := live.Activate(compose.KindFECAdapt, arq.NewSenderFilter(fmt.Sprintf("arq:%d:c%d", s.id, serial), 0)); err != nil {
			c.stop()
			return nil, fmt.Errorf("cohort arq: %w", err)
		}
	}
	return c, nil
}

// tapsLocked builds the tee's tap list: one tap per cohort with at least one
// real member. A cohort whose last member migrated away loses its tap, so no
// new frames enter it while its in-flight frames drain to fade targets.
// Caller holds t.mu.
func (t *deliveryTree) tapsLocked() []filter.BufSink {
	taps := make([]filter.BufSink, 0, len(t.cohorts))
	for _, c := range t.cohorts {
		if len(c.members) > 0 {
			taps = append(taps, c.deliver)
		}
	}
	return taps
}

// publishTapsLocked republishes the tap list without a fence cut — the path
// for membership changes that need no handover fences (group departures,
// teardown). Caller holds t.mu.
func (t *deliveryTree) publishTapsLocked() {
	t.tee.SetTaps(t.tapsLocked())
}

// pruneLocked collapses cohorts that no longer serve anyone: no members, and
// either no live fades or nothing left to drain into them. Stopping a chain
// cohort flushes whatever is still inside the chain through its sink, so
// fade targets receive it on the way down; its published view outlives the
// cohort for outbounds still queued on the shard writer. Caller holds t.mu.
func (t *deliveryTree) pruneLocked() {
	for key, c := range t.cohorts {
		if len(c.members) > 0 {
			continue
		}
		if c.in != nil && len(c.in) > 0 {
			continue // teed frames not yet consumed; drain before collapsing
		}
		c.stop()
		delete(t.cohorts, key)
	}
}

// prime replays the trunk's retained history directly to a freshly admitted
// member, oldest first, so a station joining a fan-out session mid-stream
// starts with recent context instead of a cold gap. The frames were recorded
// by a replay stage in the trunk plan (no stage, no priming). Priming
// bypasses the member's cohort chain — the history is delivered as recorded,
// without re-encoding, which keeps a late join from perturbing the cohort's
// FEC group state — and enqueues straight onto the shard writer, one pooled
// copy per frame and nothing else. Caller holds t.mu.
func (t *deliveryTree) primeLocked(m *member) {
	rf, ok := t.cs.live.Instance(compose.KindReplay).(*cache.ReplayFilter)
	if !ok {
		return
	}
	s := t.s
	rf.VisitFrames(func(frame []byte) {
		b := packet.GetBuf(packet.SessionIDSize + len(frame))
		packet.PutSessionID(b.B, s.id)
		copy(b.B[packet.SessionIDSize:], frame)
		m.counters.Primed.Add(1)
		s.shard.enqueue(outbound{s: s, b: b, dst: m.ap, rx: &m.counters})
	})
}

// memberRepair resolves the counters and (for chain cohorts) the live
// composition a NACK from the given receiver should be answered against.
func (t *deliveryTree) memberRepair(ap netip.AddrPort) (*metrics.ReceiverCounters, *compose.Live) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[ap]
	if m == nil {
		return nil, nil
	}
	if m.cohort != nil && m.cohort.live != nil {
		return &m.counters, m.cohort.live
	}
	return &m.counters, nil
}

// cohortCount returns the number of cohorts currently serving members (fading
// drain cohorts excluded).
func (t *deliveryTree) cohortCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, c := range t.cohorts {
		if len(c.members) > 0 {
			n++
		}
	}
	return n
}

// close tears the tree down. The trunk chain must already be stopped so no
// dispatch is in flight.
func (t *deliveryTree) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tee.SetTaps(nil)
	for ap, m := range t.members {
		if m.loop != nil {
			t.cs.adaptor.removeLoop(m.loop)
		}
		delete(t.members, ap)
	}
	for key, c := range t.cohorts {
		c.stop()
		delete(t.cohorts, key)
	}
}

// stats snapshots every member, ordered by receiver address for deterministic
// control-plane output. Counters are exact per receiver even though delivery
// is shared: the shard writer credits each fanned datagram to its member's
// counter block.
func (t *deliveryTree) stats() []metrics.ReceiverStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]metrics.ReceiverStats, 0, len(t.members))
	for _, m := range t.members {
		st := m.counters.Snapshot(m.ap.String())
		st.Chain = m.plan.String()
		if m.cohort != nil && m.cohort.chain != nil {
			names := m.cohort.chain.Names()
			if len(names) >= 2 {
				st.Stages = names[1 : len(names)-1]
			}
		}
		if m.loop != nil {
			m.loop.fill(&st)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Receiver < out[j].Receiver })
	return out
}

// deliver is the cohort's tee tap, consuming one reference to the shared
// trunk buffer. The bypass lane forwards the ready-stamped datagram straight
// into the shard writer's batch — no chain, no goroutines, no channel hop;
// the writer expands it to every member at flush. Chain cohorts enqueue for
// their chain, dropping rather than blocking when the queue is full so one
// slow cohort cannot stall the trunk or its siblings.
func (c *cohort) deliver(b *packet.Buf) {
	s := c.tree.s
	if c.bypass {
		if c.pendingSeal.Load() {
			// This is the first frame past a handover cut (the tee swap
			// barrier guarantees no pre-cut deliver is still in flight):
			// every unsealed fence lands exactly here — fades stop before
			// this frame, gates open with it.
			c.pendingSeal.Store(false)
			fence := c.enqueued.Load()
			c.sealUpTo(^uint64(0), fence, fence)
		}
		s.shard.counters.bypassHits.Add(1)
		c.enqueued.Add(1)
		s.shard.enqueue(outbound{s: s, b: b, grp: c})
		return
	}
	if c.closed.Load() {
		c.dropFrame(b)
		return
	}
	select {
	case c.in <- b:
		// stop() may have flipped closed — and drained the queue — between
		// the check above and the enqueue, stranding this buffer's reference
		// in a channel nothing reads anymore. Re-check and reclaim one
		// queued buffer; if the consumer (or stop's drain) already took
		// ours, whichever buffer we pop needed releasing just the same.
		if c.closed.Load() {
			select {
			case b2 := <-c.in:
				c.dropFrame(b2)
			default:
			}
		}
	default:
		c.dropFrame(b)
	}
}

// dropFrame accounts one lost cohort frame — once for the session, once for
// every member it would have reached — and releases the buffer.
func (c *cohort) dropFrame(b *packet.Buf) {
	v := c.view.Load()
	for i := range v.targets {
		v.targets[i].rx.Drops.Add(1)
	}
	c.tree.s.counters.Drops.Add(1)
	b.Release()
}

// recv feeds the cohort source: it blocks for the next teed frame and returns
// io.EOF once the cohort is collapsed. The frame bytes are shared with
// sibling cohorts, so the source copies them into the chain from an offset
// past the trunk's session-ID stamp and releases the shared reference without
// ever re-slicing b.B.
func (c *cohort) recv() (*packet.Buf, error) {
	select {
	case b := <-c.in:
		return b, nil
	case <-c.done:
		// Retirement closed done, but frames teed in beforehand may still be
		// queued; prefer draining them so nothing owed to a fade target is
		// thrown away with the cohort.
		select {
		case b := <-c.in:
			return b, nil
		default:
			return nil, io.EOF
		}
	}
}

// send relays one cohort-output frame to every member through the owning
// shard's batched writer. The sink reserved session-ID headroom, so the ID is
// stamped in place and the whole buffer is one datagram; the writer fans it
// to the cohort's current membership at flush time. A seal marker emerging
// from the chain is consumed here instead: its position locates the handover
// cut it was enqueued for — behind every pre-cut frame, ahead of every
// post-cut one — so the matching fences seal at the exact current outbound
// sequence. send owns b until the enqueue.
func (c *cohort) send(b *packet.Buf) error {
	if len(b.B) >= packet.SessionIDSize+packet.HeaderSize &&
		b.B[packet.SessionIDSize+3] == byte(packet.KindControl) &&
		binary.BigEndian.Uint32(b.B[packet.SessionIDSize+12:]) == sealStream &&
		binary.BigEndian.Uint32(b.B[packet.SessionIDSize+16:]) == sealGroup {
		fence := c.enqueued.Load()
		c.sealUpTo(binary.BigEndian.Uint64(b.B[packet.SessionIDSize+4:]), fence, fence)
		b.Release()
		return nil
	}
	packet.PutSessionID(b.B, c.tree.s.id)
	c.enqueued.Add(1)
	c.tree.s.shard.enqueue(outbound{s: c.tree.s, b: b, grp: c})
	return nil
}

// dropTargetLocked removes a member from the cohort's fan-out list. Caller
// holds tree.mu and republishes the view.
func (c *cohort) dropTargetLocked(m *member) {
	for i, cm := range c.members {
		if cm == m {
			c.members = append(c.members[:i], c.members[i+1:]...)
			return
		}
	}
}

// addFadeLocked keeps a migrated member receiving the cohort's in-flight
// frames: everything up to the cut, nothing newer. The fade starts unsealed
// (deliver everything) and is sealed to the exact outbound sequence of the
// cut by the cohort itself — the bypass lane on its next deliver, a chain
// cohort when the seal marker enqueued here emerges from its chain behind
// every pre-cut frame. Caller holds tree.mu, runs inside the tee swap
// barrier, and republishes the view.
func (c *cohort) addFadeLocked(m *member) {
	c.sealSeq++
	f := &fadeTarget{dst: m.ap, rx: &m.counters, seal: c.sealSeq}
	f.expiresAt.Store(fenceUnsealed)
	c.fades = append(c.fades, f)
	c.requestSealLocked()
}

// armGateLocked fences a joining member in: the shard writer starts stamping
// this cohort's output to the member only from the seal point onward, so
// frames already inside the cohort at join time (owed to the member by its
// previous cohort's fade, or predating its membership entirely) are never
// delivered to it from here. Caller holds tree.mu, runs inside the tee swap
// barrier, and republishes the view.
func (c *cohort) armGateLocked(m *member) {
	c.sealSeq++
	m.gate = &startGate{seal: c.sealSeq}
	m.gate.at.Store(fenceUnsealed)
	c.requestSealLocked()
}

// requestSealLocked arranges for the fences cut at the current seal sequence
// to be located in the cohort's outbound frame stream. Caller holds tree.mu
// inside the tee swap barrier, so the cut lies exactly between the frames the
// cohort has already been handed and every frame it will see next.
func (c *cohort) requestSealLocked() {
	if c.bypass {
		c.pendingSeal.Store(true)
		return
	}
	frame, err := packet.Marshal(&packet.Packet{
		Seq: c.sealSeq, StreamID: sealStream, Kind: packet.KindControl, Group: sealGroup,
	})
	if err != nil {
		c.sealUpTo(c.sealSeq, c.enqueued.Load()+int64(len(c.in)), c.enqueued.Load())
		return
	}
	b := packet.GetBuf(packet.SessionIDSize + len(frame))
	copy(b.B[packet.SessionIDSize:], frame)
	select {
	case c.in <- b:
	default:
		// Queue full: the cohort is shedding load anyway. Resolve the fences
		// with conservative estimates — fades err toward a few duplicates,
		// gates toward opening immediately — rather than leaving them
		// unsealed forever.
		b.Release()
		c.sealUpTo(c.sealSeq, c.enqueued.Load()+int64(len(c.in)), c.enqueued.Load())
	}
}

// sealUpTo locates every fence cut at or before markerSeq: unsealed fades
// expire at fadeFence, unsealed gates open at gateFence. Fences cut after the
// marker keep waiting for their own seal. Runs on the sealing path — the
// bypass lane's deliver or a chain cohort's sink — against the published
// view; fence values are atomic, so the control path never races it.
func (c *cohort) sealUpTo(markerSeq uint64, fadeFence, gateFence int64) {
	v := c.view.Load()
	for _, f := range v.fades {
		if f.seal <= markerSeq && f.expiresAt.Load() == fenceUnsealed {
			f.expiresAt.Store(fadeFence)
		}
	}
	for i := range v.targets {
		if g := v.targets[i].gate; g != nil && g.seal <= markerSeq && g.at.Load() == fenceUnsealed {
			g.at.Store(gateFence)
		}
	}
}

// cancelFadeLocked drops any fade entry for the given receiver — it left the
// fan-out group entirely, so nothing is owed to it anymore. Caller holds
// tree.mu and republishes the view.
func (c *cohort) cancelFadeLocked(ap netip.AddrPort) {
	kept := c.fades[:0]
	for _, f := range c.fades {
		if f.dst == ap {
			f.expiresAt.Store(fenceCanceled)
			continue
		}
		kept = append(kept, f)
	}
	c.fades = kept
}

// publishLocked rebuilds the cohort's atomic fan-out view from its membership
// and live fades, dropping expired fades and spent join gates on the way.
// Caller holds tree.mu.
func (c *cohort) publishLocked() {
	v := &cohortView{}
	if n := len(c.members); n > 0 {
		v.targets = make([]cohortTarget, n)
		for i, m := range c.members {
			if g := m.gate; g != nil {
				if at := g.at.Load(); at != fenceUnsealed && at <= c.consumed.Load() {
					m.gate = nil // every frame from here on clears the gate
				}
			}
			v.targets[i] = cohortTarget{dst: m.ap, rx: &m.counters, gate: m.gate}
		}
	}
	kept := c.fades[:0]
	for _, f := range c.fades {
		if f.expiresAt.Load() > c.consumed.Load() {
			kept = append(kept, f)
			v.fades = append(v.fades, f)
		}
	}
	c.fades = kept
	c.view.Store(v)
}

// stop tears a chain cohort down gracefully: the source drains the queue and
// observes EOF, the chain flushes everything it still holds through the sink
// — where fade targets receive it — and only once the sink has exited is the
// stage machinery stopped. The bypass cohort has nothing to stop; its
// published view keeps serving writer-queued outbounds until they flush.
func (c *cohort) stop() {
	c.stopOnce.Do(func() {
		if c.chain == nil {
			c.closed.Store(true)
			return
		}
		close(c.done)
		// If the chain already died on its own, the sink has exited and the
		// queue may still hold frames nothing will read; Wait returns
		// immediately and the drain below reclaims them.
		c.sink.Wait()
		c.closed.Store(true)
		c.chain.Stop()
		for {
			select {
			case b := <-c.in:
				b.Release()
			default:
				return
			}
		}
	})
}

// memberResponder is a fan-out member's end of the adaptation plane: its
// receiverLoop's responder, whose loss-rate events re-decide the member's
// repair mechanism and move it between cohorts. It holds the member's decided
// state for stats — the same surface raplet.ChainFECResponder exposes for
// trunk loops — while the chain the decision selects is shared cohort
// machinery owned by the delivery tree.
type memberResponder struct {
	name string
	tree *deliveryTree
	m    *member

	mu       sync.Mutex
	current  fec.Params
	mech     adapt.Mechanism
	lastLoss float64
	retunes  uint64
	active   bool
}

// Name implements raplet.Responder.
func (r *memberResponder) Name() string { return r.name }

// Handle implements raplet.Responder: loss-rate events from the member's own
// observer re-decide its cohort. Runs on the session bus goroutine.
func (r *memberResponder) Handle(e raplet.Event) error {
	if e.Type != raplet.EventLossRate {
		return nil
	}
	return r.tree.retune(r.m, e.Value, e.RTTMillis)
}

// set records the outcome of one retune decision. moved increments the retune
// counter: a cohort move is the cohort world's equivalent of a splice.
func (r *memberResponder) set(params fec.Params, mech adapt.Mechanism, loss float64, active, moved bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.current, r.mech, r.lastLoss, r.active = params, mech, loss, active
	if moved {
		r.retunes++
	}
}

// decision returns the mechanism and parameters last decided for the member.
func (r *memberResponder) decision() (adapt.Mechanism, fec.Params) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mech, r.current
}

// setActive records a repair-engagement change caused by a plan rewrite
// rather than a policy decision (marker recomposed away or back in).
func (r *memberResponder) setActive(active bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active = active
}

// Current returns the code the member's loop last decided (K == N: no FEC).
func (r *memberResponder) Current() fec.Params {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current
}

// Mechanism returns the repair mechanism last decided for the member.
func (r *memberResponder) Mechanism() adapt.Mechanism {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mech
}

// LastLoss returns the most recent loss rate the member's loop acted on.
func (r *memberResponder) LastLoss() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastLoss
}

// Retunes returns how many times the member changed cohorts.
func (r *memberResponder) Retunes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retunes
}

// Active reports whether a repair stage currently protects the member's
// cohort.
func (r *memberResponder) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active
}

var _ raplet.Responder = (*memberResponder)(nil)
