package engine

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// TestEngineSoak256Sessions drives 256 concurrent sessions through one
// engine socket, each from its own client socket, and requires (almost) every
// packet to come back. Each client runs a ping-pong with bounded retries so
// the occasional UDP drop on a loaded host cannot wedge the test.
func TestEngineSoak256Sessions(t *testing.T) {
	const (
		sessions     = 256
		perSession   = 20
		retries      = 5
		replyTimeout = 500 * time.Millisecond
	)
	e := newTestEngine(t, Config{MaxSessions: sessions})
	addr := e.LocalAddr().(*net.UDPAddr)

	var wg sync.WaitGroup
	var delivered, failed atomic.Uint64
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			c, err := net.DialUDP("udp", nil, addr)
			if err != nil {
				t.Errorf("session %d: dial: %v", id, err)
				return
			}
			defer c.Close()
			buf := make([]byte, packet.MaxDatagram)
			for seq := 0; seq < perSession; seq++ {
				p := &packet.Packet{Seq: uint64(seq), StreamID: id, Kind: packet.KindData, Payload: []byte{byte(id), byte(seq)}}
				dgram, err := packet.AppendDatagram(nil, id, p)
				if err != nil {
					t.Errorf("session %d: marshal: %v", id, err)
					return
				}
				ok := false
				for attempt := 0; attempt < retries && !ok; attempt++ {
					if _, err := c.Write(dgram); err != nil {
						t.Errorf("session %d: write: %v", id, err)
						return
					}
					c.SetReadDeadline(time.Now().Add(replyTimeout))
					n, err := c.Read(buf)
					if err != nil {
						continue // timeout: retry
					}
					gotID, frame, err := packet.SplitSessionID(buf[:n])
					if err != nil || gotID != id {
						continue
					}
					got, _, err := packet.Unmarshal(frame)
					if err != nil {
						continue
					}
					// A retry can surface the previous attempt's duplicate
					// echo; any structurally valid echo for this session
					// counts, but the payload must be intact.
					if len(got.Payload) != 2 || got.Payload[0] != byte(id) {
						t.Errorf("session %d: corrupted payload %v", id, got.Payload)
						return
					}
					ok = true
				}
				if ok {
					delivered.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}(uint32(i + 1))
	}
	wg.Wait()

	total := uint64(sessions * perSession)
	if got := delivered.Load(); got < total*95/100 {
		t.Fatalf("delivered %d of %d packets (%d failed)", got, total, failed.Load())
	}
	if n := e.SessionCount(); n != sessions {
		t.Fatalf("SessionCount = %d, want %d", n, sessions)
	}
	stats := e.SessionStats()
	if len(stats) != sessions {
		t.Fatalf("SessionStats has %d entries, want %d", len(stats), sessions)
	}
	var inPkts uint64
	for _, st := range stats {
		inPkts += st.Packets
	}
	if inPkts < total {
		t.Fatalf("sessions accepted %d packets, want >= %d", inPkts, total)
	}
}

// TestEngineSoak4096SessionsCrossShard opens 4096 concurrent live (unparked)
// sessions spread across every shard of the sharded data plane,
// requires an echo from each, checks that the shard placement is reasonably
// balanced, and then tears the engine down with all of them live. Client
// sockets are shared (64 sessions per socket) so the test stays within file
// descriptor limits.
//
// Each session runs two chain goroutines, so under the race detector — which
// refuses to track more than 8128 simultaneously alive goroutines — the soak
// scales itself down to stay inside that budget while still crossing every
// shard.
func TestEngineSoak4096SessionsCrossShard(t *testing.T) {
	sessions := 4096 // all live: 2 chain goroutines each
	if raceEnabled {
		sessions = 3584 // 2 goroutines/session + clients + runtime < 8128
	}
	const clients = 64
	perClient := sessions / clients

	e := newTestEngine(t, Config{MaxSessions: sessions})
	addr := e.LocalAddr().(*net.UDPAddr)

	var wg sync.WaitGroup
	var failed atomic.Uint64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(base uint32) {
			defer wg.Done()
			conn, err := net.DialUDP("udp", nil, addr)
			if err != nil {
				t.Errorf("client %d: dial: %v", base, err)
				return
			}
			defer conn.Close()
			pending := make(map[uint32]bool, perClient)
			for i := 0; i < perClient; i++ {
				pending[base+uint32(i)] = true
			}
			buf := make([]byte, packet.MaxDatagram)
			for round := 0; round < 10 && len(pending) > 0; round++ {
				for id := range pending {
					dgram, err := packet.AppendDatagram(nil, id, &packet.Packet{
						Seq: uint64(round), StreamID: id, Kind: packet.KindData,
						Payload: []byte{byte(id), byte(id >> 8)},
					})
					if err != nil {
						t.Errorf("session %d: marshal: %v", id, err)
						return
					}
					if _, err := conn.Write(dgram); err != nil {
						t.Errorf("session %d: write: %v", id, err)
						return
					}
				}
				// Collect echoes until the read window goes quiet.
				for len(pending) > 0 {
					conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
					n, err := conn.Read(buf)
					if err != nil {
						break // window quiet: resend what is still pending
					}
					id, frame, err := packet.SplitSessionID(buf[:n])
					if err != nil || !pending[id] {
						continue
					}
					if got, _, err := packet.Unmarshal(frame); err != nil ||
						len(got.Payload) != 2 || got.Payload[0] != byte(id) || got.Payload[1] != byte(id>>8) {
						t.Errorf("session %d: corrupted echo", id)
						return
					}
					delete(pending, id)
				}
			}
			failed.Add(uint64(len(pending)))
		}(uint32(c*perClient + 1))
	}
	wg.Wait()

	if n := failed.Load(); n > 0 {
		t.Fatalf("%d of %d sessions never echoed", n, sessions)
	}
	if n := e.SessionCount(); n != sessions {
		t.Fatalf("SessionCount = %d, want %d", n, sessions)
	}
	if got := len(e.SessionStats()); got != sessions {
		t.Fatalf("SessionStats has %d entries, want %d", got, sessions)
	}
	// Placement must actually be cross-shard and roughly balanced: no shard
	// empty, none holding more than twice its fair share.
	shardStats := e.ShardStats()
	total, mean := 0, sessions/len(shardStats)
	for _, sh := range shardStats {
		total += sh.Sessions
		if sh.Sessions == 0 {
			t.Errorf("shard %d owns no sessions", sh.Shard)
		}
		if sh.Sessions > 2*mean {
			t.Errorf("shard %d owns %d sessions, more than twice the mean %d", sh.Shard, sh.Sessions, mean)
		}
	}
	if total != sessions {
		t.Fatalf("shards account for %d sessions, want %d", total, sessions)
	}
	st := e.Stats()
	if st.ActiveSessions != sessions {
		t.Fatalf("Stats.ActiveSessions = %d, want %d", st.ActiveSessions, sessions)
	}
	// One more session must be refused at the cap.
	if _, err := e.openSession(uint32(sessions+100), netip.MustParseAddrPort("127.0.0.1:9")); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("openSession past the cap = %v, want ErrSessionLimit", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := e.SessionCount(); n != 0 {
		t.Fatalf("SessionCount after Close = %d, want 0", n)
	}
}

// TestEngineConcurrentOpenCloseRace hammers the sharded table from many
// goroutines at once — opening sessions, closing them, snapshotting stats —
// while another goroutine closes the whole engine mid-flight. Under -race
// this is the regression test for the lock-free slow path: construction
// outside the lock, insertion under the shard lock, and lost-race teardown.
func TestEngineConcurrentOpenCloseRace(t *testing.T) {
	e := newTestEngine(t, Config{MaxSessions: 256, Shards: 8})
	peer := netip.MustParseAddrPort("127.0.0.1:9")

	const workers = 8
	const idSpace = 48
	var opens atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				id := uint32((seed*31+i)%idSpace + 1)
				s, err := e.openSession(id, peer)
				switch {
				case errors.Is(err, ErrEngineClosed):
					return
				case errors.Is(err, ErrSessionLimit):
					continue
				case err != nil:
					t.Errorf("openSession(%d): %v", id, err)
					return
				case s == nil:
					t.Errorf("openSession(%d) returned nil without error", id)
					return
				}
				opens.Add(1)
				if i%3 == 0 {
					// May lose to a concurrent closer; both outcomes are fine.
					if err := e.CloseSession(id); err != nil && !errors.Is(err, ErrUnknownSession) {
						t.Errorf("CloseSession(%d): %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent observers keep the read paths honest under -race.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Stats()
			_ = e.SessionStats()
			_ = e.ShardStats()
		}
	}()
	// Close the engine while the workers are still racing.
	for opens.Load() < 2000 {
		runtime.Gosched()
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(stop)
	obs.Wait()

	if n := e.SessionCount(); n != 0 {
		t.Fatalf("SessionCount after Close = %d, want 0", n)
	}
	if _, err := e.openSession(1, peer); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("openSession after Close = %v, want ErrEngineClosed", err)
	}
	if err := e.CloseSession(1); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("CloseSession after Close = %v, want ErrUnknownSession", err)
	}
}

// TestEngineLiveFilterSpliceUnderTraffic repeatedly inserts and removes a
// filter on a session's chain while datagrams are flowing through it — the
// paper's live reconfiguration, now per engine session. Run under -race this
// doubles as the engine's concurrency regression test.
func TestEngineLiveFilterSpliceUnderTraffic(t *testing.T) {
	e := newTestEngine(t, Config{})
	c := dialEngine(t, e)

	const id = 77
	stop := make(chan struct{})
	var sent, received atomic.Uint64

	// Traffic generator: fire-and-forget datagrams at a steady trickle.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte("splice-traffic")}
			dgram, err := packet.AppendDatagram(nil, id, p)
			if err != nil {
				t.Errorf("marshal: %v", err)
				return
			}
			if _, err := c.Write(dgram); err != nil {
				return
			}
			sent.Add(1)
			seq++
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Echo drain.
	go func() {
		defer wg.Done()
		buf := make([]byte, packet.MaxDatagram)
		for {
			c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, err := c.Read(buf)
			if err != nil {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			if _, _, err := packet.SplitSessionID(buf[:n]); err == nil {
				received.Add(1)
			}
		}
	}()

	// Wait for the session to exist.
	deadline := time.Now().Add(2 * time.Second)
	for e.Session(id) == nil {
		if time.Now().After(deadline) {
			t.Fatal("session never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := e.Session(id)

	// Live splices while traffic flows.
	const splices = 50
	for i := 0; i < splices; i++ {
		f := filter.NewCounting(fmt.Sprintf("splice-%d", i))
		if err := s.Chain().Insert(f, 1); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if _, err := s.Chain().Remove(1); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
		if err := s.Chain().Validate(); err != nil {
			t.Fatalf("chain wiring broken after splice %d: %v", i, err)
		}
	}

	// Give in-flight packets a moment, then stop traffic.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if sent.Load() == 0 || received.Load() == 0 {
		t.Fatalf("no traffic flowed during splices: sent=%d received=%d", sent.Load(), received.Load())
	}
	// The stream must still be functional after all splices: verified
	// round trip with retries.
	buf := make([]byte, packet.MaxDatagram)
	for attempt := 0; ; attempt++ {
		if attempt >= 10 {
			t.Fatal("stream dead after live splices")
		}
		p := &packet.Packet{Seq: 999999, Kind: packet.KindData, Payload: []byte("post-splice")}
		dgram, _ := packet.AppendDatagram(nil, id, p)
		if _, err := c.Write(dgram); err != nil {
			t.Fatalf("write: %v", err)
		}
		c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		n, err := c.Read(buf)
		if err != nil {
			continue
		}
		_, frame, err := packet.SplitSessionID(buf[:n])
		if err != nil {
			continue
		}
		if got, _, err := packet.Unmarshal(frame); err == nil && string(got.Payload) == "post-splice" {
			break
		}
	}
}
