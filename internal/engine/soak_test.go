package engine

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rapidware/internal/filter"
	"rapidware/internal/packet"
)

// TestEngineSoak256Sessions drives 256 concurrent sessions through one
// engine socket, each from its own client socket, and requires (almost) every
// packet to come back. Each client runs a ping-pong with bounded retries so
// the occasional UDP drop on a loaded host cannot wedge the test.
func TestEngineSoak256Sessions(t *testing.T) {
	const (
		sessions     = 256
		perSession   = 20
		retries      = 5
		replyTimeout = 500 * time.Millisecond
	)
	e := newTestEngine(t, Config{MaxSessions: sessions})
	addr := e.LocalAddr().(*net.UDPAddr)

	var wg sync.WaitGroup
	var delivered, failed atomic.Uint64
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			c, err := net.DialUDP("udp", nil, addr)
			if err != nil {
				t.Errorf("session %d: dial: %v", id, err)
				return
			}
			defer c.Close()
			buf := make([]byte, packet.MaxDatagram)
			for seq := 0; seq < perSession; seq++ {
				p := &packet.Packet{Seq: uint64(seq), StreamID: id, Kind: packet.KindData, Payload: []byte{byte(id), byte(seq)}}
				dgram, err := packet.AppendDatagram(nil, id, p)
				if err != nil {
					t.Errorf("session %d: marshal: %v", id, err)
					return
				}
				ok := false
				for attempt := 0; attempt < retries && !ok; attempt++ {
					if _, err := c.Write(dgram); err != nil {
						t.Errorf("session %d: write: %v", id, err)
						return
					}
					c.SetReadDeadline(time.Now().Add(replyTimeout))
					n, err := c.Read(buf)
					if err != nil {
						continue // timeout: retry
					}
					gotID, frame, err := packet.SplitSessionID(buf[:n])
					if err != nil || gotID != id {
						continue
					}
					got, _, err := packet.Unmarshal(frame)
					if err != nil {
						continue
					}
					// A retry can surface the previous attempt's duplicate
					// echo; any structurally valid echo for this session
					// counts, but the payload must be intact.
					if len(got.Payload) != 2 || got.Payload[0] != byte(id) {
						t.Errorf("session %d: corrupted payload %v", id, got.Payload)
						return
					}
					ok = true
				}
				if ok {
					delivered.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}(uint32(i + 1))
	}
	wg.Wait()

	total := uint64(sessions * perSession)
	if got := delivered.Load(); got < total*95/100 {
		t.Fatalf("delivered %d of %d packets (%d failed)", got, total, failed.Load())
	}
	if n := e.SessionCount(); n != sessions {
		t.Fatalf("SessionCount = %d, want %d", n, sessions)
	}
	stats := e.SessionStats()
	if len(stats) != sessions {
		t.Fatalf("SessionStats has %d entries, want %d", len(stats), sessions)
	}
	var inPkts uint64
	for _, st := range stats {
		inPkts += st.Packets
	}
	if inPkts < total {
		t.Fatalf("sessions accepted %d packets, want >= %d", inPkts, total)
	}
}

// TestEngineLiveFilterSpliceUnderTraffic repeatedly inserts and removes a
// filter on a session's chain while datagrams are flowing through it — the
// paper's live reconfiguration, now per engine session. Run under -race this
// doubles as the engine's concurrency regression test.
func TestEngineLiveFilterSpliceUnderTraffic(t *testing.T) {
	e := newTestEngine(t, Config{})
	c := dialEngine(t, e)

	const id = 77
	stop := make(chan struct{})
	var sent, received atomic.Uint64

	// Traffic generator: fire-and-forget datagrams at a steady trickle.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: []byte("splice-traffic")}
			dgram, err := packet.AppendDatagram(nil, id, p)
			if err != nil {
				t.Errorf("marshal: %v", err)
				return
			}
			if _, err := c.Write(dgram); err != nil {
				return
			}
			sent.Add(1)
			seq++
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Echo drain.
	go func() {
		defer wg.Done()
		buf := make([]byte, packet.MaxDatagram)
		for {
			c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, err := c.Read(buf)
			if err != nil {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			if _, _, err := packet.SplitSessionID(buf[:n]); err == nil {
				received.Add(1)
			}
		}
	}()

	// Wait for the session to exist.
	deadline := time.Now().Add(2 * time.Second)
	for e.Session(id) == nil {
		if time.Now().After(deadline) {
			t.Fatal("session never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := e.Session(id)

	// Live splices while traffic flows.
	const splices = 50
	for i := 0; i < splices; i++ {
		f := filter.NewCounting(fmt.Sprintf("splice-%d", i))
		if err := s.Chain().Insert(f, 1); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if _, err := s.Chain().Remove(1); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
		if err := s.Chain().Validate(); err != nil {
			t.Fatalf("chain wiring broken after splice %d: %v", i, err)
		}
	}

	// Give in-flight packets a moment, then stop traffic.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if sent.Load() == 0 || received.Load() == 0 {
		t.Fatalf("no traffic flowed during splices: sent=%d received=%d", sent.Load(), received.Load())
	}
	// The stream must still be functional after all splices: verified
	// round trip with retries.
	buf := make([]byte, packet.MaxDatagram)
	for attempt := 0; ; attempt++ {
		if attempt >= 10 {
			t.Fatal("stream dead after live splices")
		}
		p := &packet.Packet{Seq: 999999, Kind: packet.KindData, Payload: []byte("post-splice")}
		dgram, _ := packet.AppendDatagram(nil, id, p)
		if _, err := c.Write(dgram); err != nil {
			t.Fatalf("write: %v", err)
		}
		c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		n, err := c.Read(buf)
		if err != nil {
			continue
		}
		_, frame, err := packet.SplitSessionID(buf[:n])
		if err != nil {
			continue
		}
		if got, _, err := packet.Unmarshal(frame); err == nil && string(got.Payload) == "post-splice" {
			break
		}
	}
}
