package engine

import (
	"fmt"
	"net/netip"
	"strconv"

	"rapidware/internal/compose"
	"rapidware/internal/multicast"
)

// Session-scoped composition: the control plane addresses a live session (and
// optionally one of its fan-out receivers) and rewrites its chain while
// traffic flows. Trunk operations resolve the session's compose.Live and
// apply the rewrite under its splice lock, serialized with the session's
// adaptation responder. Receiver operations rewrite the member's tail *plan*
// and reassign its delivery cohort — under cohort delivery a receiver's tail
// is shared state, so a per-receiver rewrite is a membership move, never
// surgery on a chain other receivers are using. The canonical plan string
// after the rewrite is returned for display.

// liveFor resolves the composed trunk chain a session-wide control operation
// addresses. A parked session is unparked first — a control operation is
// activity, and it needs a chain to act on.
func (e *Engine) liveFor(id uint32) (*compose.Live, compose.Mode, error) {
	s := e.table.lookup(id)
	if s == nil {
		return nil, compose.Mode{}, fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	cs, err := s.ensureLive()
	if err != nil {
		return nil, compose.Mode{}, fmt.Errorf("engine: session %d: %w", id, err)
	}
	return cs.live, e.trunkMode(), nil
}

// memberPlanOp applies a plan rewrite to one fan-out receiver's tail: resolve
// the session and its delivery tree, canonicalize the receiver address, and
// hand op to the tree, which validates the resulting plan and moves the
// member to the cohort it now selects.
func (e *Engine) memberPlanOp(id uint32, receiver string, op func(compose.Plan) (compose.Plan, error)) (string, error) {
	s := e.table.lookup(id)
	if s == nil {
		return "", fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	cs, err := s.ensureLive()
	if err != nil {
		return "", fmt.Errorf("engine: session %d: %w", id, err)
	}
	if cs.tree == nil {
		return "", fmt.Errorf("engine: session %d has no delivery branches", id)
	}
	ap, err := netip.ParseAddrPort(receiver)
	if err != nil {
		return "", fmt.Errorf("engine: receiver %q: %w", receiver, err)
	}
	s.ctlActivity.Add(1)
	return cs.tree.rewriteMemberPlan(multicast.UnmapAddrPort(ap), op)
}

// RecomposeSession atomically rewrites a live session chain to the target
// spec — the control plane's compose operation. On the trunk, stages the
// current plan already contains (same kind and argument) keep their running
// instances; the rest are built fresh and the drop-outs stopped, in one
// splice that never exposes a half-built chain to traffic. On a fan-out
// receiver the rewrite retargets the member's tail plan and recohorts it. It
// returns the canonical plan string after the rewrite.
func (e *Engine) RecomposeSession(id uint32, receiver, target string) (string, error) {
	if receiver != "" {
		return e.memberPlanOp(id, receiver, func(compose.Plan) (compose.Plan, error) {
			return compose.ParseWith(e.reg, target, compose.ModeBranch)
		})
	}
	live, mode, err := e.liveFor(id)
	if err != nil {
		return "", err
	}
	plan, err := compose.ParseWith(e.reg, target, mode)
	if err != nil {
		return "", err
	}
	if err := live.Recompose(plan); err != nil {
		return "", err
	}
	return live.String(), nil
}

// InsertSessionStage splices one stage (spec syntax, e.g. "delay=5ms") into
// a live session chain at the given plan position.
func (e *Engine) InsertSessionStage(id uint32, receiver, stage string, pos int) (string, error) {
	if receiver != "" {
		return e.memberPlanOp(id, receiver, func(p compose.Plan) (compose.Plan, error) {
			st, err := parseOneStage(e.reg, stage, compose.ModeBranch)
			if err != nil {
				return compose.Plan{}, err
			}
			return p.WithInsert(pos, st)
		})
	}
	live, mode, err := e.liveFor(id)
	if err != nil {
		return "", err
	}
	st, err := parseOneStage(e.reg, stage, mode)
	if err != nil {
		return "", err
	}
	if err := live.InsertStage(st, pos); err != nil {
		return "", err
	}
	return live.String(), nil
}

// RemoveSessionStage removes a stage from a live session chain. sel is a
// plan position or a stage kind (first match).
func (e *Engine) RemoveSessionStage(id uint32, receiver, sel string) (string, error) {
	if receiver != "" {
		return e.memberPlanOp(id, receiver, func(p compose.Plan) (compose.Plan, error) {
			pos, convErr := strconv.Atoi(sel)
			if convErr != nil {
				if pos = p.Index(sel); pos < 0 {
					return compose.Plan{}, fmt.Errorf("engine: no %q stage in plan", sel)
				}
			}
			return p.WithRemove(pos)
		})
	}
	live, _, err := e.liveFor(id)
	if err != nil {
		return "", err
	}
	if pos, convErr := strconv.Atoi(sel); convErr == nil {
		err = live.RemoveStageAt(pos)
	} else {
		err = live.RemoveStageKind(sel)
	}
	if err != nil {
		return "", err
	}
	return live.String(), nil
}

// MoveSessionStage relocates a stage between plan positions of a live
// session chain, preserving its running instance.
func (e *Engine) MoveSessionStage(id uint32, receiver string, from, to int) (string, error) {
	if receiver != "" {
		return e.memberPlanOp(id, receiver, func(p compose.Plan) (compose.Plan, error) {
			return p.WithMove(from, to)
		})
	}
	live, _, err := e.liveFor(id)
	if err != nil {
		return "", err
	}
	if err := live.MoveStage(from, to); err != nil {
		return "", err
	}
	return live.String(), nil
}

// parseOneStage parses a spec that must contain exactly one stage.
func parseOneStage(reg *compose.Registry, spec string, mode compose.Mode) (compose.Stage, error) {
	plan, err := compose.ParseWith(reg, spec, mode)
	if err != nil {
		return compose.Stage{}, err
	}
	if plan.Len() != 1 {
		return compose.Stage{}, fmt.Errorf("engine: want exactly one stage, got %q", spec)
	}
	return plan.Stages[0], nil
}
