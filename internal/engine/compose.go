package engine

import (
	"fmt"
	"net/netip"
	"strconv"

	"rapidware/internal/compose"
	"rapidware/internal/multicast"
)

// Session-scoped composition: the control plane addresses a live session (and
// optionally one of its delivery branches) and rewrites its chain while
// traffic flows. Every operation resolves the target chain's compose.Live
// and applies the rewrite under its splice lock, serialized with the
// session's adaptation responder; the canonical plan string after the
// rewrite is returned for display.

// liveFor resolves the composed chain a control operation addresses: the
// session's trunk when receiver is empty, otherwise the delivery branch
// serving that receiver address. A parked session is unparked first — a
// control operation is activity, and it needs a chain to act on.
func (e *Engine) liveFor(id uint32, receiver string) (*compose.Live, compose.Mode, error) {
	s := e.table.lookup(id)
	if s == nil {
		return nil, compose.Mode{}, fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	cs, err := s.ensureLive()
	if err != nil {
		return nil, compose.Mode{}, fmt.Errorf("engine: session %d: %w", id, err)
	}
	if receiver == "" {
		return cs.live, e.trunkMode(), nil
	}
	if cs.tree == nil {
		return nil, compose.Mode{}, fmt.Errorf("engine: session %d has no delivery branches", id)
	}
	ap, err := netip.ParseAddrPort(receiver)
	if err != nil {
		return nil, compose.Mode{}, fmt.Errorf("engine: receiver %q: %w", receiver, err)
	}
	br := cs.tree.branchFor(multicast.UnmapAddrPort(ap))
	if br == nil {
		return nil, compose.Mode{}, fmt.Errorf("engine: session %d has no branch for receiver %s", id, receiver)
	}
	return br.live, compose.ModeBranch, nil
}

// RecomposeSession atomically rewrites a live session chain to the target
// spec — the control plane's compose operation. Stages the current plan
// already contains (same kind and argument) keep their running instances;
// the rest are built fresh and the drop-outs stopped, in one splice that
// never exposes a half-built chain to traffic. It returns the canonical plan
// string after the rewrite.
func (e *Engine) RecomposeSession(id uint32, receiver, target string) (string, error) {
	live, mode, err := e.liveFor(id, receiver)
	if err != nil {
		return "", err
	}
	plan, err := compose.ParseWith(e.reg, target, mode)
	if err != nil {
		return "", err
	}
	if err := live.Recompose(plan); err != nil {
		return "", err
	}
	return live.String(), nil
}

// InsertSessionStage splices one stage (spec syntax, e.g. "delay=5ms") into
// a live session chain at the given plan position.
func (e *Engine) InsertSessionStage(id uint32, receiver, stage string, pos int) (string, error) {
	live, mode, err := e.liveFor(id, receiver)
	if err != nil {
		return "", err
	}
	st, err := parseOneStage(e.reg, stage, mode)
	if err != nil {
		return "", err
	}
	if err := live.InsertStage(st, pos); err != nil {
		return "", err
	}
	return live.String(), nil
}

// RemoveSessionStage removes a stage from a live session chain. sel is a
// plan position or a stage kind (first match).
func (e *Engine) RemoveSessionStage(id uint32, receiver, sel string) (string, error) {
	live, _, err := e.liveFor(id, receiver)
	if err != nil {
		return "", err
	}
	if pos, convErr := strconv.Atoi(sel); convErr == nil {
		err = live.RemoveStageAt(pos)
	} else {
		err = live.RemoveStageKind(sel)
	}
	if err != nil {
		return "", err
	}
	return live.String(), nil
}

// MoveSessionStage relocates a stage between plan positions of a live
// session chain, preserving its running instance.
func (e *Engine) MoveSessionStage(id uint32, receiver string, from, to int) (string, error) {
	live, _, err := e.liveFor(id, receiver)
	if err != nil {
		return "", err
	}
	if err := live.MoveStage(from, to); err != nil {
		return "", err
	}
	return live.String(), nil
}

// parseOneStage parses a spec that must contain exactly one stage.
func parseOneStage(reg *compose.Registry, spec string, mode compose.Mode) (compose.Stage, error) {
	plan, err := compose.ParseWith(reg, spec, mode)
	if err != nil {
		return compose.Stage{}, err
	}
	if plan.Len() != 1 {
		return compose.Stage{}, fmt.Errorf("engine: want exactly one stage, got %q", spec)
	}
	return plan.Stages[0], nil
}
