package engine

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"rapidware/internal/metrics"
	"rapidware/internal/packet"
)

// listenReceiver returns a loopback UDP socket standing in for a downstream
// station.
func listenReceiver(t *testing.T) *net.UDPConn {
	t.Helper()
	rx, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rx.Close() })
	return rx
}

// readFrame reads one engine datagram from a receiver socket and decodes it.
func readFrame(t *testing.T, rx *net.UDPConn, timeout time.Duration) (uint32, *packet.Packet) {
	t.Helper()
	buf := make([]byte, packet.MaxDatagram)
	rx.SetReadDeadline(time.Now().Add(timeout))
	n, err := rx.Read(buf)
	if err != nil {
		t.Fatalf("receiver read: %v", err)
	}
	id, frame, err := packet.SplitSessionID(buf[:n])
	if err != nil {
		t.Fatalf("SplitSessionID: %v", err)
	}
	p, _, err := packet.Unmarshal(frame)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return id, p
}

// reportFrom sends one feedback datagram for session id from a receiver
// socket to the engine.
func reportFrom(t *testing.T, rx *net.UDPConn, e *Engine, id uint32, rep packet.Report) {
	t.Helper()
	dgram, err := packet.AppendReportDatagram(nil, id, 0, 0, rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.WriteToUDP(dgram, e.LocalAddr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
}

// receiverStat polls a session's per-receiver breakdown until cond holds for
// the named receiver.
func receiverStat(t *testing.T, e *Engine, id uint32, receiver, what string, cond func(metrics.ReceiverStats) bool) metrics.ReceiverStats {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var last metrics.ReceiverStats
	for time.Now().Before(deadline) {
		if s := e.Session(id); s != nil {
			for _, rs := range s.Stats().Receivers {
				if rs.Receiver == receiver {
					last = rs
					if cond(rs) {
						return rs
					}
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s: receiver %s never converged; last %+v", what, receiver, last)
	return metrics.ReceiverStats{}
}

// TestEngineHeterogeneousFanoutBranches is the delivery tree end to end: one
// fan-out session serves two receivers on very different channels, and each
// branch converges to its own protection level — the lossy station's branch
// carries a protective (n,k) within one report window while the clean
// station's branch carries no FEC parity at all. This is the paper's
// heterogeneity claim, which the old worst-case fan-out could not provide.
func TestEngineHeterogeneousFanoutBranches(t *testing.T) {
	rxClean := listenReceiver(t)
	rxLossy := listenReceiver(t)
	e := newTestEngine(t, Config{
		Adapt:  true,
		Fanout: []string{rxClean.LocalAddr().String(), rxLossy.LocalAddr().String()},
	})
	c := dialEngine(t, e)
	const id = 9

	// Prime: one data packet must reach both receivers through their branches.
	sendPacket(t, c, id, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: []byte("prime")})
	for _, rx := range []*net.UDPConn{rxClean, rxLossy} {
		gotID, p := readFrame(t, rx, 2*time.Second)
		if gotID != id || p.Kind != packet.KindData || string(p.Payload) != "prime" {
			t.Fatalf("prime frame: session %d, packet %v", gotID, p)
		}
	}

	// One observation window: the lossy station reports 10% loss, the clean
	// one a clean link. Only the lossy branch may upgrade.
	cleanKey := rxClean.LocalAddr().(*net.UDPAddr).AddrPort().String()
	lossyKey := rxLossy.LocalAddr().(*net.UDPAddr).AddrPort().String()
	reportFrom(t, rxClean, e, id, packet.Report{HighestSeq: 0, Received: 100, Lost: 0, Window: 100})
	reportFrom(t, rxLossy, e, id, packet.Report{HighestSeq: 0, Received: 90, Lost: 10, Window: 100})
	lossy := receiverStat(t, e, id, lossyKey, "lossy upgrade", func(rs metrics.ReceiverStats) bool { return rs.Active })
	if lossy.N != 8 || lossy.K != 4 {
		t.Fatalf("lossy branch code = %d/%d, want 8/4", lossy.N, lossy.K)
	}
	clean := receiverStat(t, e, id, cleanKey, "clean reported", func(rs metrics.ReceiverStats) bool { return rs.Reports == 1 })
	if clean.Active || clean.N != 1 || clean.K != 1 {
		t.Fatalf("clean branch state = %+v, want inactive 1/1", clean)
	}

	// A full FEC group of data: the lossy receiver gets data plus parity,
	// the clean receiver exactly the data and nothing else.
	for i := 1; i <= 4; i++ {
		sendPacket(t, c, id, &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}})
	}
	var data, parity int
	for i := 0; i < 8; i++ {
		_, p := readFrame(t, rxLossy, 2*time.Second)
		switch p.Kind {
		case packet.KindData:
			data++
		case packet.KindParity:
			parity++
		}
	}
	if data != 4 || parity != 4 {
		t.Fatalf("lossy receiver got %d data / %d parity, want 4/4 under (8,4)", data, parity)
	}
	for i := 0; i < 4; i++ {
		_, p := readFrame(t, rxClean, 2*time.Second)
		if p.Kind != packet.KindData {
			t.Fatalf("clean receiver got kind %v, want pure data", p.Kind)
		}
	}
	rxClean.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := rxClean.Read(make([]byte, packet.MaxDatagram)); err == nil {
		t.Fatal("clean receiver got parity (or extra data) from the lossy branch's code")
	}

	// The aggregate view reports the group's weakest receiver; the breakdown
	// carries both branches with their own counters.
	st := e.Session(id).Stats()
	if st.Adapt == nil || !st.Adapt.Active || st.Adapt.N != 8 || st.Adapt.Receivers != 2 {
		t.Fatalf("aggregate adapt = %+v", st.Adapt)
	}
	if len(st.Receivers) != 2 {
		t.Fatalf("Receivers breakdown has %d entries, want 2", len(st.Receivers))
	}
	lossy = receiverStat(t, e, id, lossyKey, "counters", func(rs metrics.ReceiverStats) bool { return rs.OutPackets >= 9 })
	if lossy.OutBytes == 0 {
		t.Fatalf("lossy branch counters = %+v", lossy)
	}

	// The lossy station recovering releases only its own branch (the clean
	// one never had an encoder to release).
	reportFrom(t, rxLossy, e, id, packet.Report{HighestSeq: 4, Received: 100, Lost: 0, Window: 100})
	receiverStat(t, e, id, lossyKey, "recovery", func(rs metrics.ReceiverStats) bool { return !rs.Active && rs.N == 1 })
}

// TestEngineBranchSpecShapesPerReceiverTails checks that a static Branch spec
// (no adaptation) builds every receiver a tail of its own: a thinning stage
// halves each branch's data stream independently.
func TestEngineBranchSpecShapesPerReceiverTails(t *testing.T) {
	rx := listenReceiver(t)
	e := newTestEngine(t, Config{
		Fanout: []string{rx.LocalAddr().String()},
		Branch: "thin=2",
	})
	c := dialEngine(t, e)

	for i := 0; i < 6; i++ {
		sendPacket(t, c, 4, &packet.Packet{Seq: uint64(i), Kind: packet.KindData, Payload: []byte{byte(i)}})
	}
	// thin=2 keeps packets 0, 2, 4.
	for _, wantSeq := range []uint64{0, 2, 4} {
		_, p := readFrame(t, rx, 2*time.Second)
		if p.Seq != wantSeq {
			t.Fatalf("thinned branch delivered seq %d, want %d", p.Seq, wantSeq)
		}
	}
	rx.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := rx.Read(make([]byte, packet.MaxDatagram)); err == nil {
		t.Fatal("thinning forwarded more than 1 in 2 data packets")
	}
	st := e.Session(4).Stats()
	if len(st.Receivers) != 1 || len(st.Receivers[0].Stages) != 1 {
		t.Fatalf("receiver stats = %+v, want one branch with one tail stage", st.Receivers)
	}
	if st.Adapt != nil {
		t.Fatalf("static branch spec grew adaptation state: %+v", st.Adapt)
	}
}

// TestEngineBranchFollowsRuntimeMembership checks that members joining and
// leaving at run time gain and lose delivery branches on the next packet.
func TestEngineBranchFollowsRuntimeMembership(t *testing.T) {
	rxA := listenReceiver(t)
	rxB := listenReceiver(t)
	e := newTestEngine(t, Config{Adapt: true, Fanout: []string{rxA.LocalAddr().String()}})
	c := dialEngine(t, e)

	sendPacket(t, c, 6, &packet.Packet{Seq: 1, Kind: packet.KindData, Payload: []byte("a")})
	readFrame(t, rxA, 2*time.Second)

	// B joins: the next packet must reach it through a fresh branch.
	if !e.FanoutGroup().Add(rxB.LocalAddr().(*net.UDPAddr).AddrPort()) {
		t.Fatal("Add reported existing member")
	}
	sendPacket(t, c, 6, &packet.Packet{Seq: 2, Kind: packet.KindData, Payload: []byte("b")})
	if _, p := readFrame(t, rxB, 2*time.Second); string(p.Payload) != "b" {
		t.Fatalf("joined receiver got %q", p.Payload)
	}
	readFrame(t, rxA, 2*time.Second)
	receiverStat(t, e, 6, rxB.LocalAddr().(*net.UDPAddr).AddrPort().String(), "join",
		func(rs metrics.ReceiverStats) bool { return rs.OutPackets == 1 })

	// A leaves: its branch is torn down on the next packet and the breakdown
	// shrinks to B alone.
	if !e.FanoutGroup().Remove(rxA.LocalAddr().(*net.UDPAddr).AddrPort()) {
		t.Fatal("Remove missed member A")
	}
	sendPacket(t, c, 6, &packet.Packet{Seq: 3, Kind: packet.KindData, Payload: []byte("c")})
	readFrame(t, rxB, 2*time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := e.Session(6).Stats()
		if len(st.Receivers) == 1 && st.Receivers[0].Receiver == rxB.LocalAddr().(*net.UDPAddr).AddrPort().String() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("branch set never shrank: %+v", st.Receivers)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rxA.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := rxA.Read(make([]byte, packet.MaxDatagram)); err == nil {
		t.Fatal("departed receiver still served")
	}
}

// TestEngineStaleReceiverDecays runs the staleness window end to end: a
// station that reported heavy loss and then crashed (without leaving the
// group) must stop pinning its branch once its report ages out, as long as
// any sibling still reports.
func TestEngineStaleReceiverDecays(t *testing.T) {
	rxLive := listenReceiver(t)
	rxDead := listenReceiver(t)
	e := newTestEngine(t, Config{
		Adapt:           true,
		Fanout:          []string{rxLive.LocalAddr().String(), rxDead.LocalAddr().String()},
		ReportStaleness: 50 * time.Millisecond,
	})
	c := dialEngine(t, e)
	const id = 11

	sendPacket(t, c, id, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: []byte("x")})
	readFrame(t, rxLive, 2*time.Second)
	readFrame(t, rxDead, 2*time.Second)

	deadKey := rxDead.LocalAddr().(*net.UDPAddr).AddrPort().String()
	reportFrom(t, rxDead, e, id, packet.Report{Received: 70, Lost: 30, Window: 100})
	receiverStat(t, e, id, deadKey, "dead station upgrade", func(rs metrics.ReceiverStats) bool { return rs.Active && rs.N == 12 })

	// The dead station goes silent; the live one keeps reporting. Its branch
	// must decay back to the clean-link path once the window passes.
	deadline := time.Now().Add(4 * time.Second)
	for {
		reportFrom(t, rxLive, e, id, packet.Report{Received: 100, Lost: 0, Window: 100})
		st := e.Session(id).Stats()
		var dead metrics.ReceiverStats
		for _, rs := range st.Receivers {
			if rs.Receiver == deadKey {
				dead = rs
			}
		}
		if !dead.Active && st.Adapt != nil && st.Adapt.Expired >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale receiver never decayed: %+v (adapt %+v)", dead, st.Adapt)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestEngineBranchConfigValidation(t *testing.T) {
	// Branch tails are fan-out machinery; Forward conflicts.
	if _, err := New(Config{Forward: "127.0.0.1:1", Branch: "thin=2"}); err == nil {
		t.Fatal("Forward+Branch accepted")
	}
	// A static encoder under per-receiver adaptation would double-encode.
	if _, err := New(Config{Fanout: []string{"127.0.0.1:2"}, Branch: "fec-adapt,fec-encode=6/4"}); err == nil {
		t.Fatal("fec-adapt + fec-encode branch accepted")
	}
	if _, err := New(Config{Adapt: true, Fanout: []string{"127.0.0.1:2"}, Branch: "fec-encode=6/4"}); err == nil {
		t.Fatal("Adapt + static fec-encode branch accepted")
	}
	// fec-adapt alone implies the feedback plane, no Adapt flag needed.
	e, err := New(Config{ListenAddr: "127.0.0.1:0", Fanout: []string{"127.0.0.1:2"}, Branch: "fec-adapt"})
	if err != nil {
		t.Fatalf("fec-adapt branch rejected: %v", err)
	}
	if !e.adaptOn || !e.branching {
		t.Fatalf("fec-adapt branch: adaptOn=%v branching=%v", e.adaptOn, e.branching)
	}
	// A Branch spec without configured fan-out members still builds a group
	// for runtime joins.
	e, err = New(Config{ListenAddr: "127.0.0.1:0", Branch: "thin=2"})
	if err != nil {
		t.Fatalf("Branch without Fanout rejected: %v", err)
	}
	if e.FanoutGroup() == nil || !e.branching {
		t.Fatal("Branch without Fanout did not set up the delivery tree")
	}
}

// TestEngineCohortChurnNoLoss races cohort migration against live traffic:
// one of two receivers oscillates its loss reports across the adaptation
// threshold, so its membership ping-pongs between the shared bypass lane and
// an FEC cohort while data keeps flowing. The handover contract being pinned:
// migration may duplicate a frame already in flight (the fade window) but may
// never lose one — every data sequence number reaches the churning receiver —
// and its delivery counters stay exact: zero drops, and the datagrams counted
// for the branch are exactly the datagrams its socket saw.
func TestEngineCohortChurnNoLoss(t *testing.T) {
	rxStable := listenReceiver(t)
	rxChurn := listenReceiver(t)
	e := newTestEngine(t, Config{
		Adapt:  true,
		Fanout: []string{rxStable.LocalAddr().String(), rxChurn.LocalAddr().String()},
	})
	c := dialEngine(t, e)
	const id = 11

	// Drain the stable receiver so its kernel queue can never back up.
	go func() {
		buf := make([]byte, packet.MaxDatagram)
		for {
			rxStable.SetReadDeadline(time.Now().Add(10 * time.Second))
			if _, err := rxStable.Read(buf); err != nil {
				return
			}
		}
	}()

	// Record everything the churning receiver's socket sees: which data
	// frames arrived (possibly more than once) and how many datagrams arrived
	// in total, parity included. Frame identity rides in the payload, not the
	// header sequence number — an FEC cohort re-sequences data into block
	// coordinates, but payload bytes survive every repair mechanism.
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	socketFrames := uint64(0)
	go func() {
		buf := make([]byte, packet.MaxDatagram)
		for {
			rxChurn.SetReadDeadline(time.Now().Add(10 * time.Second))
			n, err := rxChurn.Read(buf)
			if err != nil {
				return
			}
			_, frame, err := packet.SplitSessionID(buf[:n])
			if err != nil {
				continue
			}
			p, _, err := packet.Unmarshal(frame)
			if err != nil {
				continue
			}
			mu.Lock()
			socketFrames++
			if p.Kind == packet.KindData && len(p.Payload) >= 8 {
				seen[binary.BigEndian.Uint64(p.Payload)] = true
			}
			mu.Unlock()
		}
	}()

	stamp := func(seq uint64) []byte {
		p := make([]byte, 8)
		binary.BigEndian.PutUint64(p, seq)
		return p
	}
	sendPacket(t, c, id, &packet.Packet{Seq: 0, Kind: packet.KindData, Payload: stamp(0)})
	churnKey := rxChurn.LocalAddr().(*net.UDPAddr).AddrPort().String()
	receiverStat(t, e, id, churnKey, "prime delivery", func(rs metrics.ReceiverStats) bool {
		return rs.OutPackets >= 1
	})

	// Each round flips the churning receiver's report across the policy
	// threshold and immediately pushes a burst of data, so the cohort move
	// lands in the middle of live traffic.
	const rounds, perRound = 8, 25
	seq := uint64(1)
	for r := 0; r < rounds; r++ {
		rep := packet.Report{Received: 90, Lost: 10, Window: 100}
		wantActive := true
		if r%2 == 1 {
			rep = packet.Report{Received: 100, Lost: 0, Window: 100}
			wantActive = false
		}
		reportFrom(t, rxChurn, e, id, rep)
		for i := 0; i < perRound; i++ {
			sendPacket(t, c, id, &packet.Packet{Seq: seq, Kind: packet.KindData, Payload: stamp(seq)})
			seq++
			time.Sleep(200 * time.Microsecond)
		}
		receiverStat(t, e, id, churnKey, "cohort move", func(rs metrics.ReceiverStats) bool {
			return rs.Active == wantActive
		})
	}
	last := seq - 1

	// No data frame may be lost across any of the migrations.
	deadline := time.Now().Add(5 * time.Second)
	for {
		missing := uint64(0)
		mu.Lock()
		for s := uint64(0); s <= last; s++ {
			if !seen[s] {
				missing++
			}
		}
		mu.Unlock()
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			var miss []uint64
			mu.Lock()
			for s := uint64(0); s <= last; s++ {
				if !seen[s] {
					miss = append(miss, s)
				}
			}
			mu.Unlock()
			t.Fatalf("%d of %d data frames never reached the churning receiver: %v", missing, last+1, miss)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Counters stay exact through churn: nothing dropped, and the branch's
	// send counter matches the socket's arrival count once traffic settles.
	receiverStat(t, e, id, churnKey, "counter reconciliation", func(rs metrics.ReceiverStats) bool {
		mu.Lock()
		got := socketFrames
		mu.Unlock()
		return rs.Drops == 0 && rs.OutPackets == got
	})
}
