//go:build linux && reuseport

package engine

import (
	"net"
	"testing"
	"time"

	"rapidware/internal/packet"
)

// TestEngineReusePortEchoAcrossShards runs the multi-socket mode for real:
// four shards, each with its own SO_REUSEPORT socket, and a fleet of clients
// whose flows the kernel hashes across those sockets. Every session must
// echo regardless of which shard socket received it or sent the reply (all
// sockets share the same bound address, so replies are indistinguishable to
// the client).
func TestEngineReusePortEchoAcrossShards(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4, ReusePort: true})
	if got := len(e.conns); got != 4 {
		t.Fatalf("bound %d sockets, want 4", got)
	}
	want := e.conns[0].LocalAddr().String()
	for i, c := range e.conns {
		if got := c.LocalAddr().String(); got != want {
			t.Fatalf("socket %d bound %s, want %s", i, got, want)
		}
	}

	addr := e.LocalAddr().(*net.UDPAddr)
	const sessions = 32
	buf := make([]byte, packet.MaxDatagram)
	for id := uint32(1); id <= sessions; id++ {
		c, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		dgram, err := packet.AppendDatagram(nil, id, &packet.Packet{
			Seq: 1, StreamID: id, Kind: packet.KindData, Payload: []byte{byte(id)},
		})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		echoed := false
		for attempt := 0; attempt < 5 && !echoed; attempt++ {
			if _, err := c.Write(dgram); err != nil {
				t.Fatalf("session %d: write: %v", id, err)
			}
			c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
			n, err := c.Read(buf)
			if err != nil {
				continue
			}
			gotID, frame, err := packet.SplitSessionID(buf[:n])
			if err != nil || gotID != id {
				continue
			}
			if p, _, err := packet.Unmarshal(frame); err == nil && len(p.Payload) == 1 && p.Payload[0] == byte(id) {
				echoed = true
			}
		}
		c.Close()
		if !echoed {
			t.Fatalf("session %d never echoed over the reuseport sockets", id)
		}
	}
	if n := e.SessionCount(); n != sessions {
		t.Fatalf("SessionCount = %d, want %d", n, sessions)
	}
}

// TestEngineReusePortAvailable pins the build-tag gate from the supported
// side: New must accept ReusePort here.
func TestEngineReusePortAvailable(t *testing.T) {
	if !reusePortAvailable {
		t.Fatal("reuseport build without reusePortAvailable")
	}
}
