package engine

import "rapidware/internal/compose"

// The engine's chain and branch spec language is the compose plane's: a
// comma-separated list of stage specs ("kind" or "kind=arg") validated
// against the shared stage registry. See internal/compose for the kind set
// and the plan IR. These helpers are thin aliases kept for the engine's
// public surface; exactly one spec parser exists in the tree.

// ParseChain validates a trunk chain spec and returns its plan. An empty
// spec yields the empty plan (a pure relay).
func ParseChain(spec string) (compose.Plan, error) {
	return compose.Parse(spec, compose.ModeChain)
}

// ParseBranch validates a delivery-branch tail spec — the same syntax plus
// the branch-only fec-adapt marker stage, which reserves the position where
// the branch's adaptation responder splices its FEC encoder — and returns
// its plan. The marker position, when present, is plan.Index(compose.KindFECAdapt).
func ParseBranch(spec string) (compose.Plan, error) {
	return compose.Parse(spec, compose.ModeBranch)
}
