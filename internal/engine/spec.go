package engine

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"rapidware/internal/fec"
	"rapidware/internal/fecproxy"
	"rapidware/internal/filter"
)

// A chain spec is a comma-separated list of interior stages instantiated for
// every new session, in order, between the session's UDP endpoints:
//
//	null                  identity filter
//	counting              pass-through byte/chunk counter
//	checksum              pass-through CRC-32
//	delay=<duration>      fixed per-chunk delay (e.g. delay=5ms)
//	ratelimit=<Bps>       token-bucket shaping to Bps bytes/second
//	fec-encode=<n>/<k>    (n,k) FEC block encoder (e.g. fec-encode=6/4)
//	fec-decode            FEC block decoder; feeds the session's repair count
//
// Example: "counting,fec-encode=6/4".

// StageBuilder constructs one interior filter for a new session. Builders may
// register per-session hooks (e.g. the FEC decoder's repair counter) on s.
type StageBuilder func(s *Session) (filter.Filter, error)

// ParseChain validates a chain spec and returns one builder per stage. An
// empty spec yields no builders (a pure relay).
func ParseChain(spec string) ([]StageBuilder, error) {
	var builders []StageBuilder
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, arg, _ := strings.Cut(part, "=")
		b, err := buildStage(kind, arg)
		if err != nil {
			return nil, err
		}
		builders = append(builders, b)
	}
	return builders, nil
}

func buildStage(kind, arg string) (StageBuilder, error) {
	switch kind {
	case "null":
		return func(s *Session) (filter.Filter, error) {
			return filter.NewNull(stageName(s, "null")), nil
		}, nil
	case "counting":
		return func(s *Session) (filter.Filter, error) {
			return filter.NewCounting(stageName(s, "counting")), nil
		}, nil
	case "checksum":
		return func(s *Session) (filter.Filter, error) {
			return filter.NewChecksum(stageName(s, "checksum")), nil
		}, nil
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("engine: delay spec %q: %w", arg, err)
		}
		return func(s *Session) (filter.Filter, error) {
			return filter.NewDelay(stageName(s, "delay"), d), nil
		}, nil
	case "ratelimit":
		bps, err := strconv.Atoi(arg)
		if err != nil || bps <= 0 {
			return nil, fmt.Errorf("engine: ratelimit spec %q: want a positive bytes/second", arg)
		}
		return func(s *Session) (filter.Filter, error) {
			return filter.NewRateLimit(stageName(s, "ratelimit"), bps), nil
		}, nil
	case "fec-encode":
		params, err := parseFECParams(arg)
		if err != nil {
			return nil, err
		}
		return func(s *Session) (filter.Filter, error) {
			return fecproxy.NewEncoderFilter(stageName(s, "fec-encoder"), params, s.ID())
		}, nil
	case "fec-decode":
		return func(s *Session) (filter.Filter, error) {
			df := fecproxy.NewDecoderFilter(stageName(s, "fec-decoder"), nil)
			s.repairs = append(s.repairs, func() uint64 {
				_, reconstructed, _ := df.Stats()
				return reconstructed
			})
			return df, nil
		}, nil
	default:
		return nil, fmt.Errorf("engine: unknown chain stage %q", kind)
	}
}

// parseFECParams parses "n/k" into code parameters.
func parseFECParams(arg string) (fec.Params, error) {
	ns, ks, ok := strings.Cut(arg, "/")
	if !ok {
		return fec.Params{}, fmt.Errorf("engine: FEC spec %q: want n/k (e.g. 6/4)", arg)
	}
	n, err1 := strconv.Atoi(strings.TrimSpace(ns))
	k, err2 := strconv.Atoi(strings.TrimSpace(ks))
	if err1 != nil || err2 != nil {
		return fec.Params{}, fmt.Errorf("engine: FEC spec %q: want integers n/k", arg)
	}
	p := fec.Params{K: k, N: n}
	if err := p.Validate(); err != nil {
		return fec.Params{}, err
	}
	return p, nil
}

func stageName(s *Session, kind string) string {
	return fmt.Sprintf("%s:%d", kind, s.ID())
}
