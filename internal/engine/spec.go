package engine

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"rapidware/internal/audio"
	"rapidware/internal/fec"
	"rapidware/internal/fecproxy"
	"rapidware/internal/filter"
	"rapidware/internal/transcode"
)

// A chain spec is a comma-separated list of interior stages instantiated for
// every new session, in order, between the session's UDP endpoints:
//
//	null                  identity filter
//	counting              pass-through byte/chunk counter
//	checksum              pass-through CRC-32
//	delay=<duration>      fixed per-chunk delay (e.g. delay=5ms)
//	ratelimit=<Bps>       token-bucket shaping to Bps bytes/second
//	transcode=<factor>    audio downsampler (paper PCM format, e.g. transcode=2)
//	thin=<factor>         media thinning: forward 1 data packet in <factor>
//	fec-encode=<n>/<k>    (n,k) FEC block encoder (e.g. fec-encode=6/4)
//	fec-decode            FEC block decoder; feeds the session's repair count
//
// Example: "counting,fec-encode=6/4".
//
// A branch spec (Config.Branch, ParseBranch) uses the same syntax for the
// per-receiver filter tails of a fan-out session's delivery tree, plus one
// branch-only stage:
//
//	fec-adapt             adaptive FEC encoder driven by this receiver's own
//	                      loss reports; spliced in and retuned by the branch's
//	                      responder, so it may appear at most once
//
// Example: "fec-adapt,ratelimit=64000".

// StageBuilder constructs one interior filter for a new session. Builders may
// register per-session hooks (e.g. the FEC decoder's repair counter) on s.
type StageBuilder func(s *Session) (filter.Filter, error)

// ParseChain validates a chain spec and returns one builder per stage. An
// empty spec yields no builders (a pure relay).
func ParseChain(spec string) ([]StageBuilder, error) {
	var builders []StageBuilder
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, arg, _ := strings.Cut(part, "=")
		b, err := buildStage(kind, arg)
		if err != nil {
			return nil, err
		}
		builders = append(builders, b)
	}
	return builders, nil
}

// ParseBranch validates a branch-tail spec and returns one builder per
// concrete stage plus the chain position at which the branch's adaptive FEC
// encoder splices in: the position of the "fec-adapt" pseudo-stage when the
// spec names one, or -1 when it does not (the engine then defaults to
// position 1 — immediately after the branch source — when per-receiver
// adaptation is enabled another way).
func ParseBranch(spec string) (builders []StageBuilder, adaptPos int, err error) {
	adaptPos = -1
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, arg, _ := strings.Cut(part, "=")
		if kind == "fec-decode" {
			// Decoding belongs on the trunk (one decode for the whole
			// session), and the decoder's repair hook registers per-session
			// state that branch construction — which runs on live-session
			// control paths as members join — must not mutate.
			return nil, -1, fmt.Errorf("engine: fec-decode is a chain-only stage; decode on the trunk, not per branch")
		}
		if kind == "fec-adapt" {
			if arg != "" {
				return nil, -1, fmt.Errorf("engine: fec-adapt takes no parameter (the policy ladder picks the code); got %q", arg)
			}
			if adaptPos >= 0 {
				return nil, -1, fmt.Errorf("engine: branch spec %q names fec-adapt more than once", spec)
			}
			// The encoder lands after the stages parsed so far (chain position
			// 0 is the branch source).
			adaptPos = len(builders) + 1
			continue
		}
		b, err := buildStage(kind, arg)
		if err != nil {
			return nil, -1, err
		}
		builders = append(builders, b)
	}
	return builders, adaptPos, nil
}

func buildStage(kind, arg string) (StageBuilder, error) {
	switch kind {
	case "null":
		return func(s *Session) (filter.Filter, error) {
			return filter.NewNull(stageName(s, "null")), nil
		}, nil
	case "counting":
		return func(s *Session) (filter.Filter, error) {
			return filter.NewCounting(stageName(s, "counting")), nil
		}, nil
	case "checksum":
		return func(s *Session) (filter.Filter, error) {
			return filter.NewChecksum(stageName(s, "checksum")), nil
		}, nil
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("engine: delay spec %q: %w", arg, err)
		}
		return func(s *Session) (filter.Filter, error) {
			return filter.NewDelay(stageName(s, "delay"), d), nil
		}, nil
	case "ratelimit":
		bps, err := strconv.Atoi(arg)
		if err != nil || bps <= 0 {
			return nil, fmt.Errorf("engine: ratelimit spec %q: want a positive bytes/second", arg)
		}
		return func(s *Session) (filter.Filter, error) {
			return filter.NewRateLimit(stageName(s, "ratelimit"), bps), nil
		}, nil
	case "transcode":
		factor, err := parseFactor("transcode", arg)
		if err != nil {
			return nil, err
		}
		return func(s *Session) (filter.Filter, error) {
			return transcode.NewDownsampleFilter(stageName(s, "transcode"), audio.PaperFormat(), factor)
		}, nil
	case "thin":
		factor, err := parseFactor("thin", arg)
		if err != nil {
			return nil, err
		}
		return func(s *Session) (filter.Filter, error) {
			return transcode.NewThinningFilter(stageName(s, "thin"), factor)
		}, nil
	case "fec-adapt":
		return nil, fmt.Errorf("engine: fec-adapt is a branch-only stage (use it in a -branch spec)")
	case "fec-encode":
		params, err := parseFECParams(arg)
		if err != nil {
			return nil, err
		}
		return func(s *Session) (filter.Filter, error) {
			return fecproxy.NewEncoderFilter(stageName(s, "fec-encoder"), params, s.ID())
		}, nil
	case "fec-decode":
		return func(s *Session) (filter.Filter, error) {
			df := fecproxy.NewDecoderFilter(stageName(s, "fec-decoder"), nil)
			s.repairs = append(s.repairs, func() uint64 {
				_, reconstructed, _ := df.Stats()
				return reconstructed
			})
			return df, nil
		}, nil
	default:
		return nil, fmt.Errorf("engine: unknown chain stage %q", kind)
	}
}

// parseFactor parses a positive integer stage argument; empty selects 2 (the
// conventional halving for both downsampling and thinning).
func parseFactor(kind, arg string) (int, error) {
	if arg == "" {
		return 2, nil
	}
	factor, err := strconv.Atoi(arg)
	if err != nil || factor <= 0 {
		return 0, fmt.Errorf("engine: %s spec %q: want a positive integer factor", kind, arg)
	}
	return factor, nil
}

// parseFECParams parses "n/k" into code parameters.
func parseFECParams(arg string) (fec.Params, error) {
	ns, ks, ok := strings.Cut(arg, "/")
	if !ok {
		return fec.Params{}, fmt.Errorf("engine: FEC spec %q: want n/k (e.g. 6/4)", arg)
	}
	n, err1 := strconv.Atoi(strings.TrimSpace(ns))
	k, err2 := strconv.Atoi(strings.TrimSpace(ks))
	if err1 != nil || err2 != nil {
		return fec.Params{}, fmt.Errorf("engine: FEC spec %q: want integers n/k", arg)
	}
	p := fec.Params{K: k, N: n}
	if err := p.Validate(); err != nil {
		return fec.Params{}, err
	}
	return p, nil
}

func stageName(s *Session, kind string) string {
	return fmt.Sprintf("%s:%d", kind, s.ID())
}
