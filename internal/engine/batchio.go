package engine

import "rapidware/internal/netbatch"

// The shard loops move datagrams through internal/netbatch: one syscall per
// batch on the Linux fast path, one per datagram on the portable fallback.
// The aliases keep the engine's own names for the contract (and give tests a
// local seam to inject scripted conns through shard.bconn).

// ioMsg is one datagram slot in a batch.
type ioMsg = netbatch.Msg

// batchConn is the shard loops' socket.
type batchConn = netbatch.Conn

const (
	// batchIOAvailable reports whether this build batches syscalls.
	batchIOAvailable = netbatch.Available
	// gsoAvailable reports whether Config.GSO can be honored.
	gsoAvailable = netbatch.GSOAvailable
)
