//go:build !race

package engine

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
