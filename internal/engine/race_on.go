//go:build race

package engine

// raceEnabled reports whether this binary was built with the race detector.
// Large-scale tests consult it: the detector refuses to track more than 8128
// simultaneously alive goroutines, so soaks that would exceed that budget
// (each session runs two chain goroutines) scale themselves down under
// -race.
const raceEnabled = true
