package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rapidware/internal/netbatch"
	"rapidware/internal/packet"
)

// scriptedDgram is one inbound datagram a scripted conn serves to the shard
// reader.
type scriptedDgram struct {
	data []byte
	from netip.AddrPort
}

// scriptedConn replaces a shard's batch conn (through the shard.bconn test
// seam) with a fully scripted socket: ReadBatch serves pre-arranged batches,
// WriteBatch records every send per destination and can be told to fail all
// datagrams to one poisoned address — honoring the WriteBatch contract, where
// an error names exactly the first unsent datagram.
type scriptedConn struct {
	in chan []scriptedDgram

	mu     sync.Mutex
	sent   map[netip.AddrPort][][]byte
	total  int
	poison netip.AddrPort
	faults int
}

var errInjectedFault = errors.New("injected send fault")

func newScriptedConn() *scriptedConn {
	return &scriptedConn{
		in:   make(chan []scriptedDgram, 4096),
		sent: make(map[netip.AddrPort][][]byte),
	}
}

func (c *scriptedConn) ReadBatch(ms []ioMsg) (int, error) {
	batch, ok := <-c.in
	if !ok {
		return 0, net.ErrClosed
	}
	if len(batch) > len(ms) {
		return 0, fmt.Errorf("scripted batch of %d exceeds reader capacity %d", len(batch), len(ms))
	}
	for i := range batch {
		ms[i].N = copy(ms[i].Buf, batch[i].data)
		ms[i].Addr = batch[i].from
	}
	return len(batch), nil
}

func (c *scriptedConn) WriteBatch(ms []ioMsg) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range ms {
		if c.poison.IsValid() && ms[i].Addr == c.poison {
			c.faults++
			return i, errInjectedFault
		}
		c.sent[ms[i].Addr] = append(c.sent[ms[i].Addr], append([]byte(nil), ms[i].Buf...))
		c.total++
	}
	return len(ms), nil
}

func (c *scriptedConn) sentTo(addr netip.AddrPort) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.sent[addr]))
	copy(out, c.sent[addr])
	return out
}

func (c *scriptedConn) sentTotal() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// newScriptedEngine builds an engine whose single shard reads and writes
// through the scripted conn instead of its socket. The real socket is still
// bound (and idle); closing the scripted input releases the reader.
func newScriptedEngine(t *testing.T, cfg Config) (*Engine, *scriptedConn) {
	t.Helper()
	cfg.ListenAddr = "127.0.0.1:0"
	cfg.Shards = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sc := newScriptedConn()
	e.shards[0].bconn = sc
	if err := e.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		close(sc.in)
		e.Close()
	})
	return e, sc
}

// mustDatagram marshals one data datagram.
func mustDatagram(t *testing.T, session uint32, seq uint64, payload []byte) []byte {
	t.Helper()
	d, err := packet.AppendDatagram(nil, session, &packet.Packet{
		Seq: seq, StreamID: session, Kind: packet.KindData, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchedWriterPartialFailure drives three echo sessions through one
// shard whose conn fails every send to the middle session's peer. The
// regression being pinned: a transient sendmmsg error must drop only the
// datagram it names — counted as a write drop — while the datagrams before
// and after it in the same batch are delivered, and the writer keeps
// flushing rounds afterwards rather than stalling.
func TestBatchedWriterPartialFailure(t *testing.T) {
	e, sc := newScriptedEngine(t, Config{})
	addrA := netip.MustParseAddrPort("10.1.0.1:4000")
	addrB := netip.MustParseAddrPort("10.1.0.2:4000")
	addrC := netip.MustParseAddrPort("10.1.0.3:4000")
	sc.poison = addrB

	const rounds = 10
	for seq := uint64(0); seq < rounds; seq++ {
		sc.in <- []scriptedDgram{
			{data: mustDatagram(t, 1, seq, []byte("to-A")), from: addrA},
			{data: mustDatagram(t, 2, seq, []byte("to-B")), from: addrB},
			{data: mustDatagram(t, 3, seq, []byte("to-C")), from: addrC},
		}
	}

	waitFor(t, "all survivable echoes", func() bool {
		return len(sc.sentTo(addrA)) == rounds && len(sc.sentTo(addrC)) == rounds
	})
	if got := len(sc.sentTo(addrB)); got != 0 {
		t.Fatalf("poisoned peer received %d datagrams, want 0", got)
	}
	waitFor(t, "write-drop accounting", func() bool {
		return e.Stats().WriteDrops == rounds
	})
	if s := e.Session(2); s == nil || s.Stats().Drops != rounds {
		t.Fatalf("session 2 drop counter = %+v, want %d", e.Session(2).Stats(), rounds)
	}
	// Echo payloads arrived whole and in per-session order.
	for seq, d := range sc.sentTo(addrA) {
		if got := binary.BigEndian.Uint64(d[packet.SessionIDSize+4:]); got != uint64(seq) {
			t.Fatalf("peer A datagram %d carries seq %d — order broken", seq, got)
		}
	}
}

// TestBatchedWriterCohortDropAccounting extends the partial-failure contract
// to cohort fan-out: two clean receivers share one bypass cohort, so each
// trunk frame is expanded in the writer into one datagram per member off a
// shared payload buffer — and every send to one member fails. The surviving
// member must receive every frame in order, and each lost datagram must be
// charged exactly once to the poisoned member's branch counters, once to the
// session, and once to the shard's write-drop counter — never to the member
// that was delivered.
func TestBatchedWriterCohortDropAccounting(t *testing.T) {
	addrA := netip.MustParseAddrPort("10.3.0.1:4000")
	addrB := netip.MustParseAddrPort("10.3.0.2:4000")
	// Branch engages the per-receiver delivery plane (Fanout alone uses the
	// legacy whole-group expansion); a marker-only branch plan with no loss
	// reports keeps both members in the single bypass cohort.
	e, sc := newScriptedEngine(t, Config{Branch: "fec-adapt", Fanout: []string{addrA.String(), addrB.String()}})
	sc.poison = addrA
	client := netip.MustParseAddrPort("10.3.0.9:4000")

	const rounds = 10
	for seq := uint64(0); seq < rounds; seq++ {
		sc.in <- []scriptedDgram{{data: mustDatagram(t, 1, seq, []byte("fan")), from: client}}
	}

	waitFor(t, "fan-out to the healthy member", func() bool {
		return len(sc.sentTo(addrB)) == rounds
	})
	if got := len(sc.sentTo(addrA)); got != 0 {
		t.Fatalf("poisoned member received %d datagrams, want 0", got)
	}
	waitFor(t, "cohort write-drop accounting", func() bool {
		return e.Stats().WriteDrops == rounds
	})

	s := e.Session(1)
	if s == nil {
		t.Fatal("session missing")
	}
	st := s.Stats()
	if st.Drops != rounds {
		t.Fatalf("session drops = %d, want %d", st.Drops, rounds)
	}
	if st.Cohorts != 1 {
		t.Fatalf("session reports %d cohorts, want 1 (both members clean)", st.Cohorts)
	}
	for _, rs := range st.Receivers {
		switch rs.Receiver {
		case addrA.String():
			if rs.Drops != rounds || rs.OutPackets != 0 {
				t.Fatalf("poisoned member: %d drops, %d delivered — want %d, 0", rs.Drops, rs.OutPackets, rounds)
			}
		case addrB.String():
			if rs.Drops != 0 || rs.OutPackets != rounds {
				t.Fatalf("healthy member: %d drops, %d delivered — want 0, %d", rs.Drops, rs.OutPackets, rounds)
			}
		default:
			t.Fatalf("unexpected receiver %s in stats", rs.Receiver)
		}
	}
	// The healthy member's frames arrived whole and in trunk order.
	for seq, d := range sc.sentTo(addrB) {
		if got := binary.BigEndian.Uint64(d[packet.SessionIDSize+4:]); got != uint64(seq) {
			t.Fatalf("member B datagram %d carries seq %d — order broken", seq, got)
		}
	}
}

// TestBatchSplitDemuxEquivalence is the framing property test: a stream of
// session-ID-prefixed datagrams split arbitrarily across ReadBatch calls must
// demux exactly like the single-datagram-per-read path, and each session's
// echoes must come back complete and in order across batched flushes.
func TestBatchSplitDemuxEquivalence(t *testing.T) {
	const sessions = 8
	const perSession = 48 // < QueueDepth, so no UDP-style drops distort the comparison

	peers := make([]netip.AddrPort, sessions)
	for i := range peers {
		peers[i] = netip.MustParseAddrPort(fmt.Sprintf("10.2.0.%d:5000", i+1))
	}

	// run feeds the full round-robin stream, partitioned by next(), and
	// returns each session's echoed seq sequence keyed by peer.
	run := func(t *testing.T, next func(remaining int) int) map[netip.AddrPort][]uint64 {
		t.Helper()
		_, sc := newScriptedEngine(t, Config{MaxSessions: sessions})
		var stream []scriptedDgram
		for seq := uint64(0); seq < perSession; seq++ {
			for s := 0; s < sessions; s++ {
				stream = append(stream, scriptedDgram{
					data: mustDatagram(t, uint32(s+1), seq, []byte{byte(s), byte(seq)}),
					from: peers[s],
				})
			}
		}
		for off := 0; off < len(stream); {
			n := next(len(stream) - off)
			sc.in <- stream[off : off+n]
			off += n
		}
		waitFor(t, "every echo", func() bool { return sc.sentTotal() == len(stream) })
		out := make(map[netip.AddrPort][]uint64, sessions)
		for _, p := range peers {
			for _, d := range sc.sentTo(p) {
				out[p] = append(out[p], binary.BigEndian.Uint64(d[packet.SessionIDSize+4:]))
			}
		}
		return out
	}

	baseline := run(t, func(int) int { return 1 }) // the single-read path
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		got := run(t, func(remaining int) int {
			return 1 + rng.Intn(min(remaining, batchSize))
		})
		for _, p := range peers {
			if len(got[p]) != len(baseline[p]) {
				t.Fatalf("seed %d: peer %v echoed %d datagrams, single-read path echoed %d",
					seed, p, len(got[p]), len(baseline[p]))
			}
			for i := range got[p] {
				if got[p][i] != baseline[p][i] {
					t.Fatalf("seed %d: peer %v echo %d carries seq %d, single-read path had %d — per-session order broken",
						seed, p, i, got[p][i], baseline[p][i])
				}
			}
		}
	}
}

// TestSoakSyscallAmortization drives sustained burst traffic through a real
// socket pair and asserts the headline economics of the batched data plane:
// fewer than 0.25 syscalls per packet at steady state (i.e. at least four
// datagrams moved per recvmmsg/sendmmsg on average, receive and send
// combined).
func TestSoakSyscallAmortization(t *testing.T) {
	if !batchIOAvailable {
		t.Skip("batched I/O not available in this build")
	}
	e := newTestEngine(t, Config{Shards: 1})
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bc := netbatch.New(c, netbatch.Options{})
	dst := e.LocalAddr().(*net.UDPAddr).AddrPort()

	dgram := mustDatagram(t, 1, 0, make([]byte, 320))
	wmsgs := make([]ioMsg, batchSize)
	for i := range wmsgs {
		wmsgs[i] = ioMsg{Buf: dgram, Addr: dst}
	}
	rmsgs := make([]ioMsg, batchSize)
	rbufs := make([][]byte, batchSize)
	for i := range rbufs {
		rbufs[i] = make([]byte, packet.MaxDatagram)
	}

	const rounds = 100
	received := 0
	for r := 0; r < rounds; r++ {
		sent := 0
		for sent < len(wmsgs) {
			n, err := bc.WriteBatch(wmsgs[sent:])
			if err != nil {
				t.Fatalf("WriteBatch: %v", err)
			}
			sent += n
		}
		// Drain this burst's echoes before the next burst so the loopback
		// queue can never overflow; tolerate stragglers via the deadline.
		want := received + sent
		for received < want {
			for i := range rmsgs {
				rmsgs[i].Buf = rbufs[i]
			}
			c.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, err := bc.ReadBatch(rmsgs)
			if err != nil {
				t.Fatalf("round %d: ReadBatch after %d echoes: %v", r, received, err)
			}
			received += n
		}
	}

	st := e.Stats()
	packets := st.Datagrams + st.BatchedWrites
	calls := st.RecvCalls + st.SendCalls
	if calls == 0 || packets == 0 {
		t.Fatalf("counters never moved: %+v", st)
	}
	perPacket := float64(calls) / float64(packets)
	t.Logf("%d packets in %d syscalls: %.3f syscalls/packet (recv fill %.1f, send fill %.1f)",
		packets, calls, perPacket,
		float64(st.Datagrams)/float64(st.RecvCalls),
		float64(st.BatchedWrites)/float64(st.SendCalls))
	if perPacket >= 0.25 {
		t.Fatalf("syscalls per packet = %.3f, want < 0.25", perPacket)
	}
}
