package raplet

import (
	"sync"
	"time"

	"rapidware/internal/metrics"
)

// Observer is a monitoring raplet: it watches some aspect of the system and
// publishes events to a Bus when something relevant happens.
type Observer interface {
	// Name identifies the observer.
	Name() string
	// Start begins monitoring; Stop ends it.
	Start() error
	Stop() error
}

// LossRateObserver tracks packet delivery outcomes over a sliding window and
// publishes an EventLossRate whenever the loss rate crosses the report
// threshold hysteresis. Packet outcomes are fed by whatever component sees
// them (a wireless receiver, a decoder filter, a transport).
type LossRateObserver struct {
	name       string
	bus        *Bus
	window     *metrics.SlidingRate
	threshold  float64
	hysteresis float64

	mu       sync.Mutex
	reported bool // whether we last reported loss above threshold
	events   uint64
}

// NewLossRateObserver returns an observer that publishes when the loss rate
// over the last windowSize packets rises above threshold, and again when it
// falls back below threshold-hysteresis (to avoid flapping).
func NewLossRateObserver(name string, bus *Bus, windowSize int, threshold, hysteresis float64) *LossRateObserver {
	if name == "" {
		name = "loss-observer"
	}
	return &LossRateObserver{
		name:       name,
		bus:        bus,
		window:     metrics.NewSlidingRate(windowSize),
		threshold:  threshold,
		hysteresis: hysteresis,
	}
}

// Name implements Observer.
func (o *LossRateObserver) Name() string { return o.name }

// Start implements Observer; the loss observer is passive (event driven by
// ObservePacket), so Start is a no-op provided for interface symmetry.
func (o *LossRateObserver) Start() error { return nil }

// Stop implements Observer.
func (o *LossRateObserver) Stop() error { return nil }

// Events returns how many events this observer has published.
func (o *LossRateObserver) Events() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.events
}

// LossRate returns the current windowed loss rate.
func (o *LossRateObserver) LossRate() float64 {
	return 1 - o.window.Rate()
}

// ObservePacket records one delivery outcome (received true / lost false) and
// publishes threshold-crossing events.
func (o *LossRateObserver) ObservePacket(received bool) {
	o.window.Observe(received)
	if o.window.Observations() < 8 {
		return // not enough signal yet
	}
	loss := 1 - o.window.Rate()

	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case !o.reported && loss >= o.threshold:
		o.reported = true
		o.events++
		o.publish(loss)
	case o.reported && loss <= o.threshold-o.hysteresis:
		o.reported = false
		o.events++
		o.publish(loss)
	}
}

func (o *LossRateObserver) publish(loss float64) {
	if o.bus == nil {
		return
	}
	o.bus.Publish(Event{
		Type:   EventLossRate,
		Source: o.name,
		Value:  loss,
		Time:   time.Now(),
	})
}

// WorstLossObserver aggregates receiver-reported loss rates across a fan-out
// group and publishes the *worst* receiver's loss on every report, the
// multicast argument of the paper: one proxy-side FEC code must cover the
// most degraded station, because a single parity packet repairs different
// losses at different receivers. Reports typically originate from
// packet.Report feedback datagrams arriving at the proxy engine.
type WorstLossObserver struct {
	name string
	bus  *Bus

	mu      sync.Mutex
	loss    map[string]float64
	rtt     map[string]uint32    // last reported RTT per receiver (0 unknown)
	seen    map[string]time.Time // last report per receiver (staleness aging)
	window  time.Duration        // 0 disables aging
	now     func() time.Time
	reports uint64
	expired uint64
}

// NewWorstLossObserver returns an observer publishing EventLossRate with the
// worst per-receiver loss each time any receiver reports.
func NewWorstLossObserver(name string, bus *Bus) *WorstLossObserver {
	if name == "" {
		name = "worst-loss-observer"
	}
	return &WorstLossObserver{
		name: name,
		bus:  bus,
		loss: make(map[string]float64),
		rtt:  make(map[string]uint32),
		seen: make(map[string]time.Time),
		now:  time.Now,
	}
}

// SetStaleness configures report aging: a receiver whose last report is older
// than window no longer participates in (or pins) the worst-loss computation
// — a station that crashed without leaving the group would otherwise hold the
// code at its last reported level forever. window <= 0 disables aging (the
// default). clock overrides the time source for tests; nil keeps time.Now.
func (o *WorstLossObserver) SetStaleness(window time.Duration, clock func() time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.window = window
	if clock != nil {
		o.now = clock
	}
}

// Name implements Observer.
func (o *WorstLossObserver) Name() string { return o.name }

// Start implements Observer; the observer is passive (driven by Report).
func (o *WorstLossObserver) Start() error { return nil }

// Stop implements Observer.
func (o *WorstLossObserver) Stop() error { return nil }

// Report records one receiver's observed loss rate (clamped to [0,1]) and
// publishes the group-wide worst. The receiver's RTT, if previously known,
// is left unchanged; use ReportLink to update both.
func (o *WorstLossObserver) Report(receiver string, loss float64) {
	o.reportLink(receiver, loss, 0, false)
}

// ReportLink records one receiver's observed loss rate and round-trip
// estimate (milliseconds, 0 unknown) and publishes the group-wide worst
// along with the worst receiver's RTT, so mechanism-choosing responders see
// the link conditions of the station that drives the code.
func (o *WorstLossObserver) ReportLink(receiver string, loss float64, rttMillis uint32) {
	o.reportLink(receiver, loss, rttMillis, true)
}

func (o *WorstLossObserver) reportLink(receiver string, loss float64, rttMillis uint32, setRTT bool) {
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	o.mu.Lock()
	o.loss[receiver] = loss
	if setRTT {
		o.rtt[receiver] = rttMillis
	}
	o.seen[receiver] = o.now()
	o.reports++
	o.expireLocked()
	worstRx, worst := o.worstLocked()
	worstRTT := o.rtt[worstRx]
	o.mu.Unlock()
	if o.bus == nil {
		return
	}
	o.bus.Publish(Event{
		Type:      EventLossRate,
		Source:    o.name,
		Value:     worst,
		RTTMillis: worstRTT,
		Attrs:     map[string]string{"receiver": worstRx},
	})
}

// RTT returns the last reported round-trip estimate for a receiver (0 when
// unknown or never reported).
func (o *WorstLossObserver) RTT(receiver string) uint32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rtt[receiver]
}

// Forget drops a receiver (e.g. after it leaves the multicast group) so a
// stale report cannot pin the code at a strong level forever.
func (o *WorstLossObserver) Forget(receiver string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.loss, receiver)
	delete(o.rtt, receiver)
	delete(o.seen, receiver)
}

// Sweep ages out receivers whose last report is older than the configured
// staleness window and, when any were dropped, publishes the recomputed worst
// so subscribed responders converge away from the dead station's last report
// (all the way to a clean-link event when no receiver remains). It returns
// how many receivers were aged out. Callers run this from a control path —
// the engine sweeps each session's loops whenever any receiver reports.
func (o *WorstLossObserver) Sweep() int {
	o.mu.Lock()
	removed := o.expireLocked()
	worstRx, worst := o.worstLocked()
	worstRTT := o.rtt[worstRx]
	o.mu.Unlock()
	if removed == 0 {
		return 0
	}
	if o.bus != nil {
		o.bus.Publish(Event{
			Type:      EventLossRate,
			Source:    o.name,
			Value:     worst,
			RTTMillis: worstRTT,
			Attrs:     map[string]string{"receiver": worstRx},
		})
	}
	return removed
}

// Expired returns how many receivers have been aged out by staleness.
func (o *WorstLossObserver) Expired() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.expired
}

// expireLocked drops receivers whose last report fell outside the staleness
// window, returning how many were removed; caller holds o.mu.
func (o *WorstLossObserver) expireLocked() int {
	if o.window <= 0 {
		return 0
	}
	cutoff := o.now().Add(-o.window)
	removed := 0
	for rx, at := range o.seen {
		if at.Before(cutoff) {
			delete(o.loss, rx)
			delete(o.rtt, rx)
			delete(o.seen, rx)
			removed++
		}
	}
	o.expired += uint64(removed)
	return removed
}

// Prune drops every receiver keep rejects, returning how many were removed.
// Callers with a dynamic receiver set (the engine's fan-out group) run this
// as membership changes so a departed station's last report cannot pin the
// code, and so the tracked set cannot grow beyond the legitimate receivers.
func (o *WorstLossObserver) Prune(keep func(receiver string) bool) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	removed := 0
	for rx := range o.loss {
		if !keep(rx) {
			delete(o.loss, rx)
			delete(o.rtt, rx)
			delete(o.seen, rx)
			removed++
		}
	}
	return removed
}

// Worst returns the worst-reporting receiver and its loss rate (zero values
// when nothing has reported).
func (o *WorstLossObserver) Worst() (receiver string, loss float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.worstLocked()
}

// worstLocked scans for the maximum loss; caller holds o.mu. Ties break to
// the lexicographically smallest receiver name for determinism.
func (o *WorstLossObserver) worstLocked() (string, float64) {
	var worstRx string
	worst := -1.0
	for rx, l := range o.loss {
		if l > worst || (l == worst && rx < worstRx) {
			worstRx, worst = rx, l
		}
	}
	if worst < 0 {
		return "", 0
	}
	return worstRx, worst
}

// Receivers returns how many receivers have reported.
func (o *WorstLossObserver) Receivers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.loss)
}

// Reports returns how many reports have been recorded.
func (o *WorstLossObserver) Reports() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.reports
}

// PollingObserver periodically samples a measurement function and publishes
// its value, for conditions that are polled rather than event driven (e.g.
// bandwidth estimates, battery level, user preference files).
type PollingObserver struct {
	name     string
	bus      *Bus
	etype    EventType
	interval time.Duration
	sample   func() float64

	mu      sync.Mutex
	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool
}

// NewPollingObserver returns an observer publishing sample() every interval.
func NewPollingObserver(name string, bus *Bus, etype EventType, interval time.Duration, sample func() float64) *PollingObserver {
	if name == "" {
		name = "polling-observer"
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &PollingObserver{name: name, bus: bus, etype: etype, interval: interval, sample: sample}
}

// Name implements Observer.
func (o *PollingObserver) Name() string { return o.name }

// Start implements Observer.
func (o *PollingObserver) Start() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return nil
	}
	o.started = true
	o.stopCh = make(chan struct{})
	o.doneCh = make(chan struct{})
	go func() {
		defer close(o.doneCh)
		ticker := time.NewTicker(o.interval)
		defer ticker.Stop()
		for {
			select {
			case <-o.stopCh:
				return
			case <-ticker.C:
				o.bus.Publish(Event{Type: o.etype, Source: o.name, Value: o.sample()})
			}
		}
	}()
	return nil
}

// Stop implements Observer.
func (o *PollingObserver) Stop() error {
	o.mu.Lock()
	if !o.started {
		o.mu.Unlock()
		return nil
	}
	o.started = false
	stop, done := o.stopCh, o.doneCh
	o.mu.Unlock()
	close(stop)
	<-done
	return nil
}

var (
	_ Observer = (*LossRateObserver)(nil)
	_ Observer = (*WorstLossObserver)(nil)
	_ Observer = (*PollingObserver)(nil)
)
