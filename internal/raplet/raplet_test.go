package raplet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"rapidware/internal/core"
	"rapidware/internal/fec"
	"rapidware/internal/filter"
)

// recorder collects the events a responder receives.
type recorder struct {
	mu     sync.Mutex
	events []Event
	err    error
}

func (r *recorder) Name() string { return "recorder" }

func (r *recorder) Handle(e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
	return r.err
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

func (r *recorder) waitFor(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.count() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("recorder saw %d events, want %d", r.count(), n)
}

func TestBusDispatchesToSubscribers(t *testing.T) {
	bus := NewBus(16)
	rec := &recorder{}
	bus.Subscribe(EventLossRate, rec)
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	defer bus.Stop()
	bus.Publish(Event{Type: EventLossRate, Value: 0.1})
	bus.Publish(Event{Type: EventBandwidth, Value: 1e6}) // no subscriber
	rec.waitFor(t, 1)
	if rec.count() != 1 {
		t.Fatalf("events = %d, want 1", rec.count())
	}
	if got := bus.SubscriberTypes(); len(got) != 1 || got[0] != EventLossRate {
		t.Fatalf("SubscriberTypes = %v", got)
	}
}

func TestBusSetsTimestamp(t *testing.T) {
	bus := NewBus(4)
	rec := &recorder{}
	bus.Subscribe(EventPreference, rec)
	bus.Start()
	defer bus.Stop()
	bus.Publish(Event{Type: EventPreference})
	rec.waitFor(t, 1)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.events[0].Time.IsZero() {
		t.Fatal("event delivered without a timestamp")
	}
}

func TestBusDoubleStartAndStop(t *testing.T) {
	bus := NewBus(4)
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	if err := bus.Start(); err == nil {
		t.Fatal("expected error on second Start")
	}
	bus.Stop()
	bus.Stop()                              // idempotent
	bus.Publish(Event{Type: EventLossRate}) // must not panic after stop
}

func TestBusCollectsResponderErrors(t *testing.T) {
	bus := NewBus(4)
	rec := &recorder{err: errors.New("responder failure")}
	bus.Subscribe(EventLossRate, rec)
	bus.Start()
	bus.Publish(Event{Type: EventLossRate, Value: 0.5})
	rec.waitFor(t, 1)
	bus.Stop()
	if len(bus.Errors()) != 1 {
		t.Fatalf("Errors = %v", bus.Errors())
	}
}

func TestBusDropsWhenQueueFull(t *testing.T) {
	bus := NewBus(1)
	// Not started: the queue fills and further publishes are dropped.
	bus.Publish(Event{Type: EventLossRate})
	bus.Publish(Event{Type: EventLossRate})
	bus.Publish(Event{Type: EventLossRate})
	if bus.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", bus.Dropped())
	}
}

func TestResponderFunc(t *testing.T) {
	called := false
	rf := ResponderFunc{RName: "fn", Fn: func(Event) error { called = true; return nil }}
	if rf.Name() != "fn" {
		t.Fatalf("Name = %q", rf.Name())
	}
	if err := rf.Handle(Event{}); err != nil || !called {
		t.Fatal("Handle did not invoke the function")
	}
}

func TestLossRateObserverThresholdCrossing(t *testing.T) {
	bus := NewBus(32)
	rec := &recorder{}
	bus.Subscribe(EventLossRate, rec)
	bus.Start()
	defer bus.Stop()

	obs := NewLossRateObserver("", bus, 20, 0.10, 0.05)
	if obs.Name() == "" {
		t.Fatal("default name empty")
	}
	if err := obs.Start(); err != nil {
		t.Fatal(err)
	}
	defer obs.Stop()

	// All packets delivered: no events.
	for i := 0; i < 40; i++ {
		obs.ObservePacket(true)
	}
	if obs.Events() != 0 {
		t.Fatalf("events = %d before any loss", obs.Events())
	}
	// Burst of losses drives the windowed rate above 10%: exactly one event.
	for i := 0; i < 10; i++ {
		obs.ObservePacket(false)
	}
	if obs.Events() != 1 {
		t.Fatalf("events = %d after loss burst, want 1", obs.Events())
	}
	if obs.LossRate() < 0.10 {
		t.Fatalf("LossRate = %v, want >= 0.10", obs.LossRate())
	}
	// Recovery drives it back below threshold-hysteresis: one more event.
	for i := 0; i < 40; i++ {
		obs.ObservePacket(true)
	}
	if obs.Events() != 2 {
		t.Fatalf("events = %d after recovery, want 2", obs.Events())
	}
	rec.waitFor(t, 2)
}

func TestLossRateObserverNeedsMinimumSignal(t *testing.T) {
	obs := NewLossRateObserver("min", nil, 100, 0.01, 0.005)
	for i := 0; i < 5; i++ {
		obs.ObservePacket(false)
	}
	if obs.Events() != 0 {
		t.Fatal("observer reported with fewer than 8 observations")
	}
}

func TestPollingObserverPublishesPeriodically(t *testing.T) {
	bus := NewBus(64)
	rec := &recorder{}
	bus.Subscribe(EventBandwidth, rec)
	bus.Start()
	defer bus.Stop()

	obs := NewPollingObserver("", bus, EventBandwidth, 5*time.Millisecond, func() float64 { return 2e6 })
	if err := obs.Start(); err != nil {
		t.Fatal(err)
	}
	if err := obs.Start(); err != nil {
		t.Fatal("second Start should be a no-op")
	}
	rec.waitFor(t, 3)
	if err := obs.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := obs.Stop(); err != nil {
		t.Fatal("second Stop should be a no-op")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.events[0].Value != 2e6 {
		t.Fatalf("sampled value = %v", rec.events[0].Value)
	}
}

func newAdaptiveProxy(t *testing.T) *core.Proxy {
	t.Helper()
	p := core.New("adaptive")
	if err := p.SetEndpoints(filter.NewNull("in"), filter.NewNull("out")); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFECResponderInsertAndRemove(t *testing.T) {
	p := newAdaptiveProxy(t)
	r, err := NewFECResponder("", p, fec.Params{K: 4, N: 6}, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() == "" {
		t.Fatal("default name empty")
	}
	// Irrelevant event types are ignored.
	if err := r.Handle(Event{Type: EventBandwidth, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if r.Active() {
		t.Fatal("responder active without a loss event")
	}
	// Loss above threshold inserts the encoder.
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.10}); err != nil {
		t.Fatal(err)
	}
	if !r.Active() {
		t.Fatal("responder not active after high-loss event")
	}
	if p.Chain().Len() != 3 {
		t.Fatalf("chain length = %d, want 3", p.Chain().Len())
	}
	// A second high-loss event must not insert twice.
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.20}); err != nil {
		t.Fatal(err)
	}
	if p.Chain().Len() != 3 {
		t.Fatal("duplicate insertion")
	}
	// Loss below threshold removes it.
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.01}); err != nil {
		t.Fatal(err)
	}
	if r.Active() || p.Chain().Len() != 2 {
		t.Fatalf("encoder not removed: active=%v len=%d", r.Active(), p.Chain().Len())
	}
	ins, rem := r.Stats()
	if ins != 1 || rem != 1 {
		t.Fatalf("Stats = %d/%d", ins, rem)
	}
}

func TestFECResponderValidation(t *testing.T) {
	if _, err := NewFECResponder("x", nil, fec.Params{K: 4, N: 6}, 1, 0.1); err == nil {
		t.Fatal("expected error for nil proxy")
	}
	p := newAdaptiveProxy(t)
	if _, err := NewFECResponder("x", p, fec.Params{K: 9, N: 3}, 1, 0.1); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestSpecResponderInsertBelowThreshold(t *testing.T) {
	// Bandwidth responder: insert a rate limiter when bandwidth drops BELOW
	// the threshold (insertWhenAbove=false).
	p := newAdaptiveProxy(t)
	r, err := NewSpecResponder("bw", p, filter.Spec{Kind: "ratelimit", Params: map[string]string{"bps": "32000"}}, 1, 64_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Handle(Event{Type: EventBandwidth, Value: 1e6}); err != nil {
		t.Fatal(err)
	}
	if r.Active() {
		t.Fatal("inserted despite plentiful bandwidth")
	}
	if err := r.Handle(Event{Type: EventBandwidth, Value: 32_000}); err != nil {
		t.Fatal(err)
	}
	if !r.Active() || p.Chain().Len() != 3 {
		t.Fatal("rate limiter not inserted on low bandwidth")
	}
	if err := r.Handle(Event{Type: EventBandwidth, Value: 5e6}); err != nil {
		t.Fatal(err)
	}
	if r.Active() || p.Chain().Len() != 2 {
		t.Fatal("rate limiter not removed on recovery")
	}
}

func TestSpecResponderValidation(t *testing.T) {
	p := newAdaptiveProxy(t)
	if _, err := NewSpecResponder("x", nil, filter.Spec{Kind: "null"}, 1, 0, true); err == nil {
		t.Fatal("expected error for nil proxy")
	}
	if _, err := NewSpecResponder("x", p, filter.Spec{}, 1, 0, true); err == nil {
		t.Fatal("expected error for empty spec")
	}
}

// TestEndToEndAdaptiveFEC wires the whole adaptation loop together: an
// observer feeding a bus, an FEC responder reconfiguring a live proxy, and a
// simulated walk away from the access point that degrades the link.
func TestEndToEndAdaptiveFEC(t *testing.T) {
	p := newAdaptiveProxy(t)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	bus := NewBus(64)
	responder, err := NewFECResponder("adaptive-fec", p, fec.Params{K: 4, N: 6}, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	bus.Subscribe(EventLossRate, responder)
	bus.Start()
	defer bus.Stop()
	observer := NewLossRateObserver("link-monitor", bus, 50, 0.05, 0.02)

	// Near the access point: essentially no loss.
	for i := 0; i < 200; i++ {
		observer.ObservePacket(true)
	}
	// Walk down the hall: loss climbs to ~20%.
	for i := 0; i < 200; i++ {
		observer.ObservePacket(i%5 != 0)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !responder.Active() {
		time.Sleep(time.Millisecond)
	}
	if !responder.Active() {
		t.Fatal("FEC filter was not inserted when the link degraded")
	}
	st := p.Status()
	if len(st.Filters) != 3 {
		t.Fatalf("chain = %+v", st.Filters)
	}

	// Walk back: loss disappears, the filter is removed.
	for i := 0; i < 400; i++ {
		observer.ObservePacket(true)
	}
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && responder.Active() {
		time.Sleep(time.Millisecond)
	}
	if responder.Active() {
		t.Fatal("FEC filter was not removed when the link recovered")
	}
	if errs := bus.Errors(); len(errs) != 0 {
		t.Fatalf("responder errors: %v", errs)
	}
}
