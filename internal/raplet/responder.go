package raplet

import (
	"errors"
	"fmt"
	"sync"

	"rapidware/internal/core"
	"rapidware/internal/fec"
	"rapidware/internal/fecproxy"
	"rapidware/internal/filter"
)

// FECResponder implements the paper's demand-driven FEC scenario: when the
// loss rate on a wireless link rises above a threshold it inserts an FEC
// encoder filter into the proxy's chain, and when the loss subsides it
// removes the filter again, all on the live stream.
type FECResponder struct {
	name      string
	proxy     *core.Proxy
	params    fec.Params
	threshold float64
	position  int

	mu         sync.Mutex
	filterName string
	inserted   bool
	insertions uint64
	removals   uint64
}

// NewFECResponder returns a responder managing an FEC encoder in proxy.
// position is the chain position at which the encoder is inserted (typically
// 1, immediately after the input endpoint); threshold is the loss rate above
// which FEC is enabled.
func NewFECResponder(name string, proxy *core.Proxy, params fec.Params, position int, threshold float64) (*FECResponder, error) {
	if proxy == nil {
		return nil, errors.New("raplet: FEC responder requires a proxy")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		name = "fec-responder"
	}
	return &FECResponder{
		name:       name,
		proxy:      proxy,
		params:     params,
		threshold:  threshold,
		position:   position,
		filterName: fmt.Sprintf("%s-encoder%s", name, params.String()),
	}, nil
}

// Name implements Responder.
func (r *FECResponder) Name() string { return r.name }

// Active reports whether the FEC encoder is currently inserted.
func (r *FECResponder) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inserted
}

// Stats returns how many times the responder inserted and removed the filter.
func (r *FECResponder) Stats() (insertions, removals uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.insertions, r.removals
}

// Handle implements Responder: it reacts to loss-rate events by inserting or
// removing the FEC encoder.
func (r *FECResponder) Handle(e Event) error {
	if e.Type != EventLossRate {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case e.Value >= r.threshold && !r.inserted:
		enc, err := fecproxy.NewEncoderFilter(r.filterName, r.params, 1)
		if err != nil {
			return err
		}
		if err := r.proxy.InsertFilter(enc, r.position); err != nil {
			return fmt.Errorf("raplet: insert FEC filter: %w", err)
		}
		r.inserted = true
		r.insertions++
	case e.Value < r.threshold && r.inserted:
		if _, err := r.proxy.RemoveFilterByName(r.filterName); err != nil {
			return fmt.Errorf("raplet: remove FEC filter: %w", err)
		}
		r.inserted = false
		r.removals++
	}
	return nil
}

// SpecResponder inserts an arbitrary registry-built filter when an event's
// value crosses a threshold and removes it when it falls back, generalizing
// the FEC scenario to transcoders, compressors and caches.
type SpecResponder struct {
	name      string
	proxy     *core.Proxy
	spec      filter.Spec
	position  int
	threshold float64
	above     bool // insert when value >= threshold (true) or <= (false)

	mu       sync.Mutex
	inserted bool
}

// NewSpecResponder returns a responder that inserts spec at position when the
// event value crosses threshold in the configured direction.
func NewSpecResponder(name string, proxy *core.Proxy, spec filter.Spec, position int, threshold float64, insertWhenAbove bool) (*SpecResponder, error) {
	if proxy == nil {
		return nil, errors.New("raplet: spec responder requires a proxy")
	}
	if spec.Kind == "" {
		return nil, errors.New("raplet: spec responder requires a filter spec")
	}
	if name == "" {
		name = "spec-responder:" + spec.Kind
	}
	if spec.Name == "" {
		spec.Name = name + "-filter"
	}
	return &SpecResponder{
		name:      name,
		proxy:     proxy,
		spec:      spec,
		position:  position,
		threshold: threshold,
		above:     insertWhenAbove,
	}, nil
}

// Name implements Responder.
func (r *SpecResponder) Name() string { return r.name }

// Active reports whether the managed filter is currently inserted.
func (r *SpecResponder) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inserted
}

// Handle implements Responder.
func (r *SpecResponder) Handle(e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	trigger := e.Value >= r.threshold
	if !r.above {
		trigger = e.Value <= r.threshold
	}
	switch {
	case trigger && !r.inserted:
		if _, err := r.proxy.InsertSpec(r.spec, r.position); err != nil {
			return err
		}
		r.inserted = true
	case !trigger && r.inserted:
		if _, err := r.proxy.RemoveFilterByName(r.spec.Name); err != nil {
			return err
		}
		r.inserted = false
	}
	return nil
}

var (
	_ Responder = (*FECResponder)(nil)
	_ Responder = (*SpecResponder)(nil)
	_ Responder = ResponderFunc{}
)
