package raplet

import (
	"errors"
	"fmt"
	"sync"

	"rapidware/internal/adapt"
	"rapidware/internal/arq"
	"rapidware/internal/compose"
	"rapidware/internal/core"
	"rapidware/internal/fec"
	"rapidware/internal/fecproxy"
	"rapidware/internal/filter"
)

// FECResponder implements the paper's demand-driven FEC scenario: when the
// loss rate on a wireless link rises above a threshold it inserts an FEC
// encoder filter into the proxy's chain, and when the loss subsides it
// removes the filter again, all on the live stream.
type FECResponder struct {
	name      string
	proxy     *core.Proxy
	params    fec.Params
	threshold float64
	position  int

	mu         sync.Mutex
	filterName string
	inserted   bool
	insertions uint64
	removals   uint64
}

// NewFECResponder returns a responder managing an FEC encoder in proxy.
// position is the chain position at which the encoder is inserted (typically
// 1, immediately after the input endpoint); threshold is the loss rate above
// which FEC is enabled.
func NewFECResponder(name string, proxy *core.Proxy, params fec.Params, position int, threshold float64) (*FECResponder, error) {
	if proxy == nil {
		return nil, errors.New("raplet: FEC responder requires a proxy")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		name = "fec-responder"
	}
	return &FECResponder{
		name:       name,
		proxy:      proxy,
		params:     params,
		threshold:  threshold,
		position:   position,
		filterName: fmt.Sprintf("%s-encoder%s", name, params.String()),
	}, nil
}

// Name implements Responder.
func (r *FECResponder) Name() string { return r.name }

// Active reports whether the FEC encoder is currently inserted.
func (r *FECResponder) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inserted
}

// Stats returns how many times the responder inserted and removed the filter.
func (r *FECResponder) Stats() (insertions, removals uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.insertions, r.removals
}

// Handle implements Responder: it reacts to loss-rate events by inserting or
// removing the FEC encoder.
func (r *FECResponder) Handle(e Event) error {
	if e.Type != EventLossRate {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case e.Value >= r.threshold && !r.inserted:
		enc, err := fecproxy.NewEncoderFilter(r.filterName, r.params, 1)
		if err != nil {
			return err
		}
		if err := r.proxy.InsertFilter(enc, r.position); err != nil {
			return fmt.Errorf("raplet: insert FEC filter: %w", err)
		}
		r.inserted = true
		r.insertions++
	case e.Value < r.threshold && r.inserted:
		if _, err := r.proxy.RemoveFilterByName(r.filterName); err != nil {
			return fmt.Errorf("raplet: remove FEC filter: %w", err)
		}
		r.inserted = false
		r.removals++
	}
	return nil
}

// SpecResponder inserts an arbitrary registry-built filter when an event's
// value crosses a threshold and removes it when it falls back, generalizing
// the FEC scenario to transcoders, compressors and caches.
type SpecResponder struct {
	name      string
	proxy     *core.Proxy
	spec      filter.Spec
	position  int
	threshold float64
	above     bool // insert when value >= threshold (true) or <= (false)

	mu       sync.Mutex
	inserted bool
}

// NewSpecResponder returns a responder that inserts spec at position when the
// event value crosses threshold in the configured direction.
func NewSpecResponder(name string, proxy *core.Proxy, spec filter.Spec, position int, threshold float64, insertWhenAbove bool) (*SpecResponder, error) {
	if proxy == nil {
		return nil, errors.New("raplet: spec responder requires a proxy")
	}
	if spec.Kind == "" {
		return nil, errors.New("raplet: spec responder requires a filter spec")
	}
	if name == "" {
		name = "spec-responder:" + spec.Kind
	}
	if spec.Name == "" {
		spec.Name = name + "-filter"
	}
	return &SpecResponder{
		name:      name,
		proxy:     proxy,
		spec:      spec,
		position:  position,
		threshold: threshold,
		above:     insertWhenAbove,
	}, nil
}

// Name implements Responder.
func (r *SpecResponder) Name() string { return r.name }

// Active reports whether the managed filter is currently inserted.
func (r *SpecResponder) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inserted
}

// Handle implements Responder.
func (r *SpecResponder) Handle(e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	trigger := e.Value >= r.threshold
	if !r.above {
		trigger = e.Value <= r.threshold
	}
	switch {
	case trigger && !r.inserted:
		if _, err := r.proxy.InsertSpec(r.spec, r.position); err != nil {
			return err
		}
		r.inserted = true
	case !trigger && r.inserted:
		if _, err := r.proxy.RemoveFilterByName(r.spec.Name); err != nil {
			return err
		}
		r.inserted = false
	}
	return nil
}

// ChainFECResponder drives demand-driven repair on a composed live chain —
// the form the multi-session engine uses, where every session trunk and
// delivery branch is a compose.Live whose plan carries a fec-adapt marker
// stage. On each loss-rate event it asks the adapt.Policy to decide a repair
// *mechanism* from the reported loss and RTT (the reliability spectrum:
// clean link → nothing, lossy link → FEC, high-RTT × low-loss → ARQ) and
// reconciles the marker with the decision, expressed entirely as plan
// operations on the Live (never ad-hoc chain surgery):
//
//   - mechanism none and something is active → deactivate the marker,
//     splicing the repair stage out,
//   - mechanism FEC and the marker is idle or holds an ARQ history →
//     (re)activate it with a fresh adaptive encoder,
//   - mechanism FEC while the encoder runs → retune it in place (the switch
//     lands on the next group boundary),
//   - mechanism ARQ and the marker is idle or holds an FEC encoder →
//     (re)activate it with a fresh retransmission history, which the engine
//     serves KindNack requests from.
//
// All of this happens on the bus's dispatch goroutine under the Live's
// splice lock, so responder retunes serialize with control-plane
// recompositions; the session's relay hot path is untouched. If an operator
// recomposes the fec-adapt marker out of the plan, the responder goes
// dormant (events are acknowledged but change nothing) until a recompose
// restores the marker.
type ChainFECResponder struct {
	name       string
	live       *compose.Live
	policy     adapt.Policy
	streamID   uint32
	filterName string
	arqName    string

	mu       sync.Mutex
	current  fec.Params
	mech     adapt.Mechanism
	lastLoss float64
	retunes  uint64
}

// NewChainFECResponder returns a responder managing the adaptive FEC encoder
// behind live's fec-adapt marker; streamID is stamped on emitted packets.
func NewChainFECResponder(name string, live *compose.Live, policy adapt.Policy, streamID uint32) (*ChainFECResponder, error) {
	if live == nil {
		return nil, errors.New("raplet: chain FEC responder requires a live chain")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		name = "chain-fec-responder"
	}
	return &ChainFECResponder{
		name:       name,
		live:       live,
		policy:     policy,
		streamID:   streamID,
		filterName: name + "-encoder",
		arqName:    name + "-history",
		current:    policy.Select(0),
	}, nil
}

// Name implements Responder.
func (r *ChainFECResponder) Name() string { return r.name }

// Active reports whether a repair stage (FEC encoder or ARQ history) is
// currently spliced into the chain.
func (r *ChainFECResponder) Active() bool {
	return r.live.Instance(compose.KindFECAdapt) != nil
}

// encoder returns the marker's live adaptive encoder instance, or nil.
func (r *ChainFECResponder) encoder() *fecproxy.AdaptiveEncoderFilter {
	enc, _ := r.live.Instance(compose.KindFECAdapt).(*fecproxy.AdaptiveEncoderFilter)
	return enc
}

// history returns the marker's live ARQ retransmission history, or nil.
func (r *ChainFECResponder) history() *arq.SenderFilter {
	hist, _ := r.live.Instance(compose.KindFECAdapt).(*arq.SenderFilter)
	return hist
}

// Current returns the code the responder has selected (K == N means no FEC).
func (r *ChainFECResponder) Current() fec.Params {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current
}

// Mechanism returns the repair mechanism the responder last reconciled the
// chain to.
func (r *ChainFECResponder) Mechanism() adapt.Mechanism {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mech
}

// LastLoss returns the most recent loss rate the responder acted on.
func (r *ChainFECResponder) LastLoss() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastLoss
}

// Retunes returns how many times the responder changed the chain's
// protection level (insertions, removals and in-place parameter switches).
func (r *ChainFECResponder) Retunes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retunes
}

// Handle implements Responder: it reconciles the live chain's marker with
// the policy's mechanism decision for the reported loss rate and RTT.
// Reconciliation is driven by the chain's *actual* state (what instance
// occupies the marker), never by comparing selections, so a policy whose
// cleanest rung is already an FEC level still gets its encoder inserted on
// the first event, and a mechanism change swaps the marker's occupant in one
// deactivate/activate pair under the splice lock.
func (r *ChainFECResponder) Handle(e Event) error {
	if e.Type != EventLossRate {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	loss := e.Value
	r.lastLoss = loss
	mech, params := r.policy.Decide(loss, e.RTTMillis)
	changed := false
	switch mech {
	case adapt.MechanismNone:
		// Clean link: deactivate the marker so the chain returns to the pure
		// relay path.
		removed, err := r.live.Deactivate(compose.KindFECAdapt)
		if err != nil {
			return fmt.Errorf("raplet: remove repair stage: %w", err)
		}
		changed = removed

	case adapt.MechanismARQ:
		if r.history() != nil {
			break // retransmission history already in place
		}
		// Swap out whatever occupies the marker (an FEC encoder, when the
		// link previously demanded parity), then splice in a fresh history.
		// (A stopped Base cannot be restarted, so each activation builds a
		// new filter; this is the control path.)
		if _, err := r.live.Deactivate(compose.KindFECAdapt); err != nil {
			return fmt.Errorf("raplet: clear marker for arq: %w", err)
		}
		if err := r.live.Activate(compose.KindFECAdapt, arq.NewSenderFilter(r.arqName, 0)); err != nil {
			if errors.Is(err, compose.ErrNoStage) {
				// The operator recomposed the marker away: adaptation is
				// switched off for this chain until a plan restores it.
				r.current, r.mech = params, mech
				return nil
			}
			return fmt.Errorf("raplet: insert arq history: %w", err)
		}
		changed = true

	case adapt.MechanismFEC:
		enc := r.encoder()
		if enc != nil {
			// Encoder already running: keep its loss view fresh; a level
			// change retunes in place (the new code lands on the next group
			// boundary).
			enc.SetLossRate(loss)
			changed = params != r.current
			break
		}
		// Loss demands FEC and none is in place: swap out a possible ARQ
		// history and activate the marker with a fresh adaptive encoder.
		if _, err := r.live.Deactivate(compose.KindFECAdapt); err != nil {
			return fmt.Errorf("raplet: clear marker for fec: %w", err)
		}
		fresh, err := fecproxy.NewAdaptiveEncoderFilter(r.filterName, r.policy, r.streamID)
		if err != nil {
			return err
		}
		fresh.SetLossRate(loss)
		if err := r.live.Activate(compose.KindFECAdapt, fresh); err != nil {
			if errors.Is(err, compose.ErrNoStage) {
				r.current, r.mech = params, mech
				return nil
			}
			return fmt.Errorf("raplet: insert adaptive encoder: %w", err)
		}
		changed = true
	}
	r.current, r.mech = params, mech
	if changed {
		r.retunes++
	}
	return nil
}

var (
	_ Responder = (*FECResponder)(nil)
	_ Responder = (*SpecResponder)(nil)
	_ Responder = (*ChainFECResponder)(nil)
	_ Responder = ResponderFunc{}
)
