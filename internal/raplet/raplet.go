// Package raplet implements RAPIDware's adaptive components: observers that
// monitor the running system and responders that reconfigure it when relevant
// events occur (Figure 2 of the paper). The canonical use is demand-driven
// FEC: a loss-rate observer watches the quality of a wireless link and a
// responder inserts or removes an FEC encoder filter in the proxy's chain as
// the loss rate crosses configured thresholds.
package raplet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// EventType classifies events flowing between observers and responders.
type EventType string

// Event types used by the built-in raplets. Applications may define more.
const (
	// EventLossRate reports the observed packet loss rate on a link (Value is
	// the loss fraction in [0,1]).
	EventLossRate EventType = "loss-rate"
	// EventBandwidth reports available bandwidth in bits per second.
	EventBandwidth EventType = "bandwidth"
	// EventMembership reports a device joining or leaving a session.
	EventMembership EventType = "membership"
	// EventPreference reports a change in user or application policy.
	EventPreference EventType = "preference"
)

// Event is one observation published on the Bus.
type Event struct {
	// Type classifies the event.
	Type EventType
	// Source names the observer or component that produced it.
	Source string
	// Value is the numeric payload (loss rate, bandwidth, ...).
	Value float64
	// RTTMillis carries the reporting link's round-trip estimate in
	// milliseconds alongside loss-rate events, 0 when unknown. Responders
	// that choose among repair mechanisms (FEC vs ARQ) consult it.
	RTTMillis uint32
	// Time is when the observation was made.
	Time time.Time
	// Attrs carries any additional string attributes.
	Attrs map[string]string
}

// Responder reacts to events by reconfiguring the system, the paper's
// "responder raplet". Handle is called synchronously by the Bus dispatch
// goroutine, so implementations should not block for long periods.
type Responder interface {
	// Name identifies the responder.
	Name() string
	// Handle processes one event.
	Handle(Event) error
}

// ResponderFunc adapts a function to the Responder interface.
type ResponderFunc struct {
	RName string
	Fn    func(Event) error
}

// Name implements Responder.
func (r ResponderFunc) Name() string { return r.RName }

// Handle implements Responder.
func (r ResponderFunc) Handle(e Event) error { return r.Fn(e) }

// Bus routes events from observers to the responders subscribed to their
// type. Dispatch happens on a single background goroutine (started by Start)
// so responders never race with one another, mirroring the single
// ControlThread managing a proxy.
type Bus struct {
	mu          sync.Mutex
	subscribers map[EventType][]Responder
	queue       chan Event
	done        chan struct{}
	started     bool
	stopped     bool
	dropped     uint64
	errs        []error
}

// NewBus returns a bus with the given queue depth (<=0 selects a default).
func NewBus(depth int) *Bus {
	if depth <= 0 {
		depth = 128
	}
	return &Bus{
		subscribers: make(map[EventType][]Responder),
		queue:       make(chan Event, depth),
		done:        make(chan struct{}),
	}
}

// Subscribe registers a responder for an event type. Subscriptions may be
// added before or after Start.
func (b *Bus) Subscribe(t EventType, r Responder) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subscribers[t] = append(b.subscribers[t], r)
}

// Unsubscribe removes the first responder with the given name from an event
// type's subscription list and reports whether one was found. Matching is by
// name (not identity) so function-valued responders, which are not
// comparable, can be unsubscribed too.
func (b *Bus) Unsubscribe(t EventType, name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := b.subscribers[t]
	for i, r := range subs {
		if r.Name() == name {
			b.subscribers[t] = append(append([]Responder(nil), subs[:i]...), subs[i+1:]...)
			return true
		}
	}
	return false
}

// Publish enqueues an event for dispatch. Events published when the queue is
// full are counted as dropped rather than blocking the observer. The
// stopped-check and the (non-blocking) send happen under one critical
// section, and Stop closes the queue under the same lock, so Publish racing
// Stop from another goroutine can never send on a closed channel.
func (b *Bus) Publish(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return
	}
	select {
	case b.queue <- e:
	default:
		b.dropped++
	}
}

// Start launches the dispatch goroutine.
func (b *Bus) Start() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started {
		return errors.New("raplet: bus already started")
	}
	b.started = true
	go b.dispatch()
	return nil
}

func (b *Bus) dispatch() {
	defer close(b.done)
	for e := range b.queue {
		b.mu.Lock()
		subs := append([]Responder(nil), b.subscribers[e.Type]...)
		b.mu.Unlock()
		for _, r := range subs {
			if err := r.Handle(e); err != nil {
				b.mu.Lock()
				b.errs = append(b.errs, fmt.Errorf("raplet: responder %q: %w", r.Name(), err))
				b.mu.Unlock()
			}
		}
	}
}

// Stop stops dispatch after draining queued events. It is idempotent and
// safe against concurrent Publish calls (see Publish).
func (b *Bus) Stop() {
	b.mu.Lock()
	if !b.started || b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	close(b.queue)
	b.mu.Unlock()
	<-b.done
}

// Dropped returns the number of events discarded because the queue was full.
func (b *Bus) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Errors returns the responder errors collected so far.
func (b *Bus) Errors() []error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]error(nil), b.errs...)
}

// SubscriberTypes returns the event types that have at least one responder,
// sorted for deterministic reporting.
func (b *Bus) SubscriberTypes() []EventType {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]EventType, 0, len(b.subscribers))
	for t := range b.subscribers {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
