package raplet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rapidware/internal/adapt"
	"rapidware/internal/compose"
	"rapidware/internal/fec"
	"rapidware/internal/filter"
)

func TestBusUnsubscribe(t *testing.T) {
	bus := NewBus(16)
	rec := &recorder{}
	bus.Subscribe(EventLossRate, rec)
	bus.Start()
	defer bus.Stop()

	bus.Publish(Event{Type: EventLossRate, Value: 0.1})
	rec.waitFor(t, 1)

	if !bus.Unsubscribe(EventLossRate, "recorder") {
		t.Fatal("Unsubscribe did not find the responder")
	}
	if bus.Unsubscribe(EventLossRate, "recorder") {
		t.Fatal("second Unsubscribe found a removed responder")
	}
	if bus.Unsubscribe(EventBandwidth, "recorder") {
		t.Fatal("Unsubscribe matched the wrong event type")
	}
	bus.Publish(Event{Type: EventLossRate, Value: 0.2})
	bus.Publish(Event{Type: EventLossRate, Value: 0.3})
	// Give dispatch a chance to (incorrectly) deliver: publish a sentinel to a
	// fresh subscriber and wait for it, proving the queue drained.
	sentinel := &recorder{}
	bus.Subscribe(EventPreference, sentinel)
	bus.Publish(Event{Type: EventPreference})
	sentinel.waitFor(t, 1)
	if rec.count() != 1 {
		t.Fatalf("unsubscribed responder saw %d events, want 1", rec.count())
	}
}

// TestBusConcurrentPublishSubscribeUnsubscribe exercises the bus under
// simultaneous publishers, subscribers and unsubscribers; it exists to be run
// with -race.
func TestBusConcurrentPublishSubscribeUnsubscribe(t *testing.T) {
	bus := NewBus(1024)
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	const iterations = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(3)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				bus.Publish(Event{Type: EventLossRate, Source: fmt.Sprintf("pub-%d", g), Value: float64(i) / iterations})
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				name := fmt.Sprintf("resp-%d-%d", g, i)
				bus.Subscribe(EventLossRate, ResponderFunc{RName: name, Fn: func(Event) error { return nil }})
				if !bus.Unsubscribe(EventLossRate, name) {
					t.Errorf("responder %s vanished before Unsubscribe", name)
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				bus.Dropped()
				bus.Errors()
				bus.SubscriberTypes()
			}
		}(g)
	}
	wg.Wait()
	bus.Stop()
	if errs := bus.Errors(); len(errs) != 0 {
		t.Fatalf("responder errors: %v", errs)
	}
}

// TestBusPublishRacesStop hammers Publish from several goroutines while the
// bus stops, the shutdown shape the engine produces when a receiver report
// arrives on the read loop as session teardown stops the bus. A send on the
// closed queue would panic; the test passes iff nothing does.
func TestBusPublishRacesStop(t *testing.T) {
	for i := 0; i < 50; i++ {
		bus := NewBus(4)
		if err := bus.Start(); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 20; j++ {
					bus.Publish(Event{Type: EventLossRate, Value: 0.5})
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			bus.Stop()
		}()
		close(start)
		wg.Wait()
	}
}

func TestWorstLossObserverTracksWorstReceiver(t *testing.T) {
	bus := NewBus(64)
	rec := &recorder{}
	bus.Subscribe(EventLossRate, rec)
	bus.Start()
	defer bus.Stop()

	obs := NewWorstLossObserver("", bus)
	if obs.Name() == "" {
		t.Fatal("default name empty")
	}
	obs.Report("rx-a", 0.02)
	obs.Report("rx-b", 0.15)
	obs.Report("rx-a", 0.01) // a improves; b is still the worst
	rec.waitFor(t, 3)

	rx, loss := obs.Worst()
	if rx != "rx-b" || loss != 0.15 {
		t.Fatalf("Worst = %q/%v, want rx-b/0.15", rx, loss)
	}
	if obs.Receivers() != 2 || obs.Reports() != 3 {
		t.Fatalf("Receivers=%d Reports=%d", obs.Receivers(), obs.Reports())
	}
	rec.mu.Lock()
	last := rec.events[len(rec.events)-1]
	rec.mu.Unlock()
	if last.Value != 0.15 || last.Attrs["receiver"] != "rx-b" {
		t.Fatalf("published event %+v, want worst receiver rx-b at 0.15", last)
	}

	// The worst receiver leaving the group releases the code.
	obs.Forget("rx-b")
	if rx, loss := obs.Worst(); rx != "rx-a" || loss != 0.01 {
		t.Fatalf("after Forget: Worst = %q/%v", rx, loss)
	}

	// Out-of-range reports clamp.
	obs.Report("rx-c", 1.5)
	if _, loss := obs.Worst(); loss != 1 {
		t.Fatalf("clamped loss = %v, want 1", loss)
	}
}

// TestWorstLossObserverStaleness drives report aging with a fake clock: a
// receiver that stops reporting must not pin the worst-loss computation past
// the staleness window, and Sweep must publish the recomputed worst so
// responders converge away from the dead station.
func TestWorstLossObserverStaleness(t *testing.T) {
	bus := NewBus(64)
	rec := &recorder{}
	bus.Subscribe(EventLossRate, rec)
	bus.Start()
	defer bus.Stop()

	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	obs := NewWorstLossObserver("stale-test", bus)
	obs.SetStaleness(10*time.Second, clock)

	obs.Report("rx-dead", 0.30) // the station that will crash
	now = now.Add(4 * time.Second)
	obs.Report("rx-live", 0.02)
	if rx, loss := obs.Worst(); rx != "rx-dead" || loss != 0.30 {
		t.Fatalf("Worst = %q/%v, want rx-dead/0.30", rx, loss)
	}

	// Inside the window nothing ages out.
	if n := obs.Sweep(); n != 0 {
		t.Fatalf("Sweep inside window removed %d", n)
	}
	rec.waitFor(t, 2)

	// rx-dead's report crosses the window: the live receiver's next report
	// must no longer be dominated by the dead station.
	now = now.Add(7 * time.Second) // rx-dead 11s old, rx-live 7s old
	obs.Report("rx-live", 0.02)
	rec.waitFor(t, 3)
	if rx, loss := obs.Worst(); rx != "rx-live" || loss != 0.02 {
		t.Fatalf("after aging: Worst = %q/%v, want rx-live/0.02", rx, loss)
	}
	if obs.Receivers() != 1 || obs.Expired() != 1 {
		t.Fatalf("Receivers=%d Expired=%d, want 1/1", obs.Receivers(), obs.Expired())
	}

	// The last receiver going silent decays to a clean-link publication.
	now = now.Add(11 * time.Second)
	if n := obs.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d, want 1", n)
	}
	rec.waitFor(t, 4)
	rec.mu.Lock()
	last := rec.events[len(rec.events)-1]
	rec.mu.Unlock()
	if last.Value != 0 || last.Attrs["receiver"] != "" {
		t.Fatalf("decay event %+v, want clean-link (0, no receiver)", last)
	}
	if obs.Receivers() != 0 || obs.Expired() != 2 {
		t.Fatalf("Receivers=%d Expired=%d after full decay", obs.Receivers(), obs.Expired())
	}
	// Sweep with nothing tracked publishes nothing further.
	if n := obs.Sweep(); n != 0 {
		t.Fatalf("idle Sweep removed %d", n)
	}
}

func TestWorstLossObserverEmpty(t *testing.T) {
	obs := NewWorstLossObserver("idle", nil)
	if rx, loss := obs.Worst(); rx != "" || loss != 0 {
		t.Fatalf("empty Worst = %q/%v", rx, loss)
	}
	obs.Report("rx", 0.5) // nil bus must not panic
}

// newTestLive builds a started two-endpoint chain whose plan is a bare
// fec-adapt marker — the shape the engine hands its responders.
func newTestLive(t *testing.T) (*compose.Live, *filter.Chain) {
	t.Helper()
	c := filter.NewChain("adapt-test")
	if err := c.Append(filter.NewNull("in")); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(filter.NewNull("out")); err != nil {
		t.Fatal(err)
	}
	plan, err := compose.Parse(compose.KindFECAdapt, compose.ModeBranch)
	if err != nil {
		t.Fatal(err)
	}
	live, err := compose.Attach(c, nil, compose.Env{StreamID: 7}, compose.ModeBranch, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop() })
	return live, c
}

func TestChainFECResponderLifecycle(t *testing.T) {
	live, chain := newTestLive(t)
	r, err := NewChainFECResponder("", live, adapt.DefaultPolicy(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() == "" {
		t.Fatal("default name empty")
	}
	// Irrelevant events are ignored.
	if err := r.Handle(Event{Type: EventBandwidth, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if r.Active() || chain.Len() != 2 {
		t.Fatal("responder touched the chain without a loss event")
	}
	if got := r.Current(); got != (fec.Params{K: 1, N: 1}) {
		t.Fatalf("initial Current = %v", got)
	}

	// 10% loss splices the encoder in at the (8,4) level.
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.10}); err != nil {
		t.Fatal(err)
	}
	if !r.Active() || chain.Len() != 3 {
		t.Fatalf("encoder not inserted: active=%v len=%d", r.Active(), chain.Len())
	}
	if got := r.Current(); got != (fec.Params{K: 4, N: 8}) {
		t.Fatalf("Current after 10%% loss = %v", got)
	}
	if r.Retunes() != 1 {
		t.Fatalf("Retunes = %d, want 1", r.Retunes())
	}

	// Loss moving between FEC levels retunes in place (no splice).
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.30}); err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 3 {
		t.Fatal("in-place retune changed the chain length")
	}
	if got := r.Current(); got != (fec.Params{K: 4, N: 12}) {
		t.Fatalf("Current after 30%% loss = %v", got)
	}

	// Same level again: no retune counted.
	before := r.Retunes()
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.28}); err != nil {
		t.Fatal(err)
	}
	if r.Retunes() != before {
		t.Fatal("unchanged level counted as a retune")
	}
	if r.LastLoss() != 0.28 {
		t.Fatalf("LastLoss = %v", r.LastLoss())
	}

	// Clean link splices the encoder out.
	if err := r.Handle(Event{Type: EventLossRate, Value: 0}); err != nil {
		t.Fatal(err)
	}
	if r.Active() || chain.Len() != 2 {
		t.Fatalf("encoder not removed: active=%v len=%d", r.Active(), chain.Len())
	}
	if got := r.Current(); got != (fec.Params{K: 1, N: 1}) {
		t.Fatalf("Current after recovery = %v", got)
	}

	// And loss returning re-inserts a fresh encoder.
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.05}); err != nil {
		t.Fatal(err)
	}
	if !r.Active() || chain.Len() != 3 {
		t.Fatal("encoder not re-inserted after recovery cycle")
	}
}

// TestChainFECResponderFECOnlyPolicy guards against the reconciliation bug
// where a policy with no clean rung (its lowest level already demands FEC)
// never inserted the encoder because the selection matched the initial
// "current" value.
func TestChainFECResponderFECOnlyPolicy(t *testing.T) {
	live, chain := newTestLive(t)
	policy := adapt.Policy{Levels: []adapt.Level{{LossAtLeast: 0.10, Params: fec.Params{K: 4, N: 8}}}}
	r, err := NewChainFECResponder("fec-only", live, policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.20}); err != nil {
		t.Fatal(err)
	}
	if !r.Active() || chain.Len() != 3 {
		t.Fatalf("FEC-only policy never spliced the encoder: active=%v len=%d", r.Active(), chain.Len())
	}
	if r.Retunes() != 1 {
		t.Fatalf("Retunes = %d, want 1", r.Retunes())
	}
}

func TestChainFECResponderValidation(t *testing.T) {
	if _, err := NewChainFECResponder("x", nil, adapt.DefaultPolicy(), 1); err == nil {
		t.Fatal("expected error for nil live chain")
	}
	live, _ := newTestLive(t)
	if _, err := NewChainFECResponder("x", live, adapt.Policy{}, 1); err == nil {
		t.Fatal("expected error for empty policy")
	}
}

// TestChainFECResponderDormantWithoutMarker exercises the recompose-vs-
// responder contract: when an operator rewrites the plan without the
// fec-adapt marker, the responder goes dormant instead of fighting the
// operator, and resumes once a recompose restores the marker.
func TestChainFECResponderDormantWithoutMarker(t *testing.T) {
	live, chain := newTestLive(t)
	r, err := NewChainFECResponder("dormant", live, adapt.DefaultPolicy(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.10}); err != nil {
		t.Fatal(err)
	}
	if !r.Active() || chain.Len() != 3 {
		t.Fatal("encoder not spliced before the recompose")
	}

	// Operator recomposes the marker away: the active encoder goes with it.
	empty, err := compose.Parse("", compose.ModeBranch)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Recompose(empty); err != nil {
		t.Fatal(err)
	}
	if r.Active() || chain.Len() != 2 {
		t.Fatal("recompose did not remove the managed encoder")
	}
	// Loss events are acknowledged but change nothing.
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.30}); err != nil {
		t.Fatalf("dormant responder errored: %v", err)
	}
	if r.Active() || chain.Len() != 2 {
		t.Fatal("dormant responder touched the chain")
	}

	// Restoring the marker wakes the loop on the next event.
	restored, err := compose.Parse(compose.KindFECAdapt, compose.ModeBranch)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Recompose(restored); err != nil {
		t.Fatal(err)
	}
	if err := r.Handle(Event{Type: EventLossRate, Value: 0.30}); err != nil {
		t.Fatal(err)
	}
	if !r.Active() || chain.Len() != 3 {
		t.Fatal("responder did not resume after the marker returned")
	}
}
