package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

func TestPipeBasicWriteRead(t *testing.T) {
	r, w := Pipe()
	msg := []byte("hello detachable streams")
	go func() {
		if _, err := w.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
		w.Close()
	}()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

func TestPipeSizeSmallBufferBackpressure(t *testing.T) {
	r, w := PipeSize(4)
	payload := bytes.Repeat([]byte{0xAA}, 1024)
	done := make(chan error, 1)
	go func() {
		_, err := w.Write(payload)
		w.Close()
		done <- err
	}()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted through small buffer: got %d bytes", len(got))
	}
}

func TestConnectErrors(t *testing.T) {
	r, w := Pipe()
	r2 := NewDetachableReader()
	w2 := NewDetachableWriter()
	if err := Connect(w, r2); !errors.Is(err, ErrAlreadyConnected) {
		t.Fatalf("connect busy writer: err = %v, want ErrAlreadyConnected", err)
	}
	if err := Connect(w2, r); !errors.Is(err, ErrAlreadyConnected) {
		t.Fatalf("connect busy reader: err = %v, want ErrAlreadyConnected", err)
	}
	if err := Connect(nil, r2); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("connect nil: err = %v, want ErrNotConnected", err)
	}
	w3 := NewDetachableWriter()
	w3.Close()
	if err := Connect(w3, r2); !errors.Is(err, ErrClosed) {
		t.Fatalf("connect closed writer: err = %v, want ErrClosed", err)
	}
}

func TestWriterCloseDeliversEOFAfterDrain(t *testing.T) {
	r, w := Pipe()
	if _, err := w.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tail" {
		t.Fatalf("got %q, want %q", got, "tail")
	}
	if n, err := r.Read(make([]byte, 1)); n != 0 || err != io.EOF {
		t.Fatalf("after EOF: n=%d err=%v", n, err)
	}
}

func TestWriterCloseWithError(t *testing.T) {
	r, w := Pipe()
	sentinel := errors.New("upstream failed")
	w.CloseWithError(sentinel)
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestReaderCloseFailsWrites(t *testing.T) {
	r, w := Pipe()
	r.Close()
	if _, err := w.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("err = %v, want io.ErrClosedPipe", err)
	}
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	r, w := Pipe()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAfterWriterClose(t *testing.T) {
	_, w := Pipe()
	w.Close()
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestAvailable(t *testing.T) {
	r, w := Pipe()
	if r.Available() != 0 {
		t.Fatalf("Available = %d, want 0", r.Available())
	}
	w.Write([]byte("12345"))
	if r.Available() != 5 {
		t.Fatalf("Available = %d, want 5", r.Available())
	}
	buf := make([]byte, 2)
	r.Read(buf)
	if r.Available() != 3 {
		t.Fatalf("Available = %d, want 3", r.Available())
	}
	unattached := NewDetachableReader()
	if unattached.Available() != 0 {
		t.Fatal("unattached reader should report 0 available")
	}
}

func TestFlushWaitsForDrain(t *testing.T) {
	r, w := Pipe()
	w.Write([]byte("data to drain"))
	flushed := make(chan struct{})
	go func() {
		if err := w.Flush(); err != nil {
			t.Errorf("flush: %v", err)
		}
		close(flushed)
	}()
	select {
	case <-flushed:
		t.Fatal("Flush returned before the reader drained the buffer")
	case <-time.After(20 * time.Millisecond):
	}
	io.CopyN(io.Discard, r, int64(len("data to drain")))
	select {
	case <-flushed:
	case <-time.After(time.Second):
		t.Fatal("Flush did not return after drain")
	}
}

func TestFlushErrors(t *testing.T) {
	w := NewDetachableWriter()
	if err := w.Flush(); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
	w.Close()
	if err := w.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestPauseErrors(t *testing.T) {
	w := NewDetachableWriter()
	if err := w.Pause(); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("unconnected writer Pause err = %v, want ErrNotConnected", err)
	}
	r := NewDetachableReader()
	if err := r.Pause(); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("unconnected reader Pause err = %v, want ErrNotConnected", err)
	}
	r2, w2 := Pipe()
	w2.Close()
	if err := w2.Pause(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed writer Pause err = %v, want ErrClosed", err)
	}
	_ = r2
	r3, _ := Pipe()
	r3.Close()
	if err := r3.Pause(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed reader Pause err = %v, want ErrClosed", err)
	}
}

func TestPauseDrainsBufferBeforeDetaching(t *testing.T) {
	r, w := Pipe()
	w.Write([]byte("buffered"))
	paused := make(chan struct{})
	go func() {
		if err := w.Pause(); err != nil {
			t.Errorf("pause: %v", err)
		}
		close(paused)
	}()
	select {
	case <-paused:
		t.Fatal("Pause returned while data was still buffered")
	case <-time.After(20 * time.Millisecond):
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case <-paused:
	case <-time.After(time.Second):
		t.Fatal("Pause did not return after buffer drained")
	}
	if string(buf) != "buffered" {
		t.Fatalf("drained %q, want %q", buf, "buffered")
	}
	if w.Connected() || r.Connected() {
		t.Fatal("endpoints still connected after Pause")
	}
	if !w.Paused() || !r.Paused() {
		t.Fatal("endpoints not marked paused after Pause")
	}
}

func TestPauseFromReaderSide(t *testing.T) {
	r, w := Pipe()
	go io.Copy(io.Discard, r) // keep draining so pause can complete
	w.Write([]byte("some data"))
	if err := r.Pause(); err != nil {
		t.Fatal(err)
	}
	if r.Connected() || w.Connected() {
		t.Fatal("still connected after reader-side Pause")
	}
}

func TestReconnectAfterPauseResumesWrites(t *testing.T) {
	r1, w := Pipe()
	// Reader goroutine keeps consuming r1 until it is detached.
	go io.Copy(io.Discard, r1)

	if _, err := w.Write([]byte("first segment")); err != nil {
		t.Fatal(err)
	}
	if err := w.Pause(); err != nil {
		t.Fatal(err)
	}

	// While paused, writes block.
	wrote := make(chan error, 1)
	go func() {
		_, err := w.Write([]byte("second segment"))
		wrote <- err
	}()
	select {
	case <-wrote:
		t.Fatal("Write completed while the writer was paused")
	case <-time.After(20 * time.Millisecond):
	}

	// Reconnect to a brand-new reader; the blocked write must complete there.
	r2 := NewDetachableReader()
	if err := Reconnect(w, r2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len("second segment"))
	if _, err := io.ReadFull(r2, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "second segment" {
		t.Fatalf("redirected data = %q, want %q", buf, "second segment")
	}
	if err := <-wrote; err != nil {
		t.Fatal(err)
	}
}

func TestReaderSurvivesSourceSwitch(t *testing.T) {
	// A single reader is moved from one writer to another; it must observe
	// the concatenation of both byte sequences with nothing lost.
	r, w1 := Pipe()
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len("from writer one")+len("from writer two"))
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Errorf("read: %v", err)
		}
		got <- buf
	}()
	if _, err := w1.Write([]byte("from writer one")); err != nil {
		t.Fatal(err)
	}
	if err := w1.Pause(); err != nil {
		t.Fatal(err)
	}
	w2 := NewDetachableWriter()
	if err := Reconnect(w2, r); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write([]byte("from writer two")); err != nil {
		t.Fatal(err)
	}
	select {
	case buf := <-got:
		if string(buf) != "from writer onefrom writer two" {
			t.Fatalf("got %q", buf)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader did not receive data from the new writer")
	}
}

func TestMidWritePauseLosesNothing(t *testing.T) {
	// Pause while a large write is in flight on a tiny buffer: the bytes
	// written before the switch arrive at the old reader, the rest at the
	// new one, in order, with nothing lost or duplicated.
	r1, w := PipeSize(8)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	writeDone := make(chan error, 1)
	go func() {
		_, err := w.Write(payload)
		writeDone <- err
	}()

	// Consume a little from r1, then pause from the reader side.
	first := make([]byte, 1000)
	if _, err := io.ReadFull(r1, first); err != nil {
		t.Fatal(err)
	}
	pauseDone := make(chan error, 1)
	go func() { pauseDone <- r1.Pause() }()
	// Keep draining r1 until it detaches so the pause can complete.
	var middle []byte
	drain := make(chan struct{})
	go func() {
		defer close(drain)
		buf := make([]byte, 256)
		for {
			n, err := r1.Read(buf)
			middle = append(middle, buf[:n]...)
			if err != nil {
				return
			}
			if r1.Paused() && r1.Available() == 0 && !r1.Connected() {
				return
			}
		}
	}()
	if err := <-pauseDone; err != nil {
		t.Fatal(err)
	}
	r1.Close() // unblock the drain goroutine if it is waiting
	<-drain

	// Rewire to a fresh reader and collect the remainder.
	r2 := NewDetachableReader()
	if err := Reconnect(w, r2); err != nil {
		t.Fatal(err)
	}
	var rest []byte
	restDone := make(chan struct{})
	go func() {
		defer close(restDone)
		buf := make([]byte, 4096)
		for {
			n, err := r2.Read(buf)
			rest = append(rest, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	if err := <-writeDone; err != nil {
		t.Fatal(err)
	}
	w.Close()
	<-restDone

	reassembled := append(append(append([]byte(nil), first...), middle...), rest...)
	if !bytes.Equal(reassembled, payload) {
		t.Fatalf("data corrupted across pause: got %d bytes, want %d", len(reassembled), len(payload))
	}
}

func TestAccessorsReflectWiring(t *testing.T) {
	r, w := Pipe()
	if w.Sink() != r || r.Source() != w {
		t.Fatal("Sink/Source do not reflect the connected pair")
	}
	go io.Copy(io.Discard, r)
	w.Pause()
	if w.Sink() != nil || r.Source() != nil {
		t.Fatal("Sink/Source not cleared after Pause")
	}
}

func TestFilterInsertionSequenceFromPaper(t *testing.T) {
	// Reproduces the ControlThread.add() sequence of §4: a producer writes an
	// unbroken sequence of numbered lines while a "filter" is spliced into
	// the middle of the stream; the consumer must observe every line exactly
	// once, in order.
	const totalLines = 2000

	producerW := NewDetachableWriter() // producer's DOS
	consumerR := NewDetachableReader() // consumer's DIS
	if err := Connect(producerW, consumerR); err != nil {
		t.Fatal(err)
	}

	var consumed bytes.Buffer
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		buf := make([]byte, 512)
		for {
			n, err := consumerR.Read(buf)
			consumed.Write(buf[:n])
			if err != nil {
				return
			}
		}
	}()

	producerDone := make(chan error, 1)
	go func() {
		for i := 0; i < totalLines; i++ {
			if _, err := fmt.Fprintf(producerW, "line-%06d\n", i); err != nil {
				producerDone <- err
				return
			}
		}
		producerDone <- nil
	}()

	// Let some traffic flow, then splice in a pass-through filter:
	// pause producer's DOS, reconnect producer→filterIn, filterOut→consumer.
	time.Sleep(5 * time.Millisecond)
	if err := producerW.Pause(); err != nil {
		t.Fatal(err)
	}
	filterR := NewDetachableReader()
	filterW := NewDetachableWriter()
	if err := Reconnect(producerW, filterR); err != nil {
		t.Fatal(err)
	}
	if err := Reconnect(filterW, consumerR); err != nil {
		t.Fatal(err)
	}
	filterDone := make(chan struct{})
	go func() {
		defer close(filterDone)
		io.Copy(filterW, filterR)
		filterW.Close()
	}()

	if err := <-producerDone; err != nil {
		t.Fatal(err)
	}
	producerW.Close()
	<-filterDone
	<-consumerDone

	lines := bytes.Split(bytes.TrimSuffix(consumed.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != totalLines {
		t.Fatalf("consumer saw %d lines, want %d", len(lines), totalLines)
	}
	for i, line := range lines {
		want := fmt.Sprintf("line-%06d", i)
		if string(line) != want {
			t.Fatalf("line %d = %q, want %q (stream reordered or corrupted)", i, line, want)
		}
	}
}

func TestSingleWriteNeverSplitAcrossPause(t *testing.T) {
	// A Write call that is in flight when a Pause begins must land entirely
	// at the old reader: this is the frame-boundary guarantee that lets
	// packet-oriented filters be inserted on a live stream.
	for trial := 0; trial < 20; trial++ {
		r1, w := PipeSize(16)
		frame := bytes.Repeat([]byte{0x7e}, 300) // much larger than the buffer

		writeDone := make(chan error, 1)
		go func() {
			_, err := w.Write(frame)
			writeDone <- err
		}()

		// Collect everything r1 sees until it is detached and drained.
		var first []byte
		firstDone := make(chan struct{})
		go func() {
			defer close(firstDone)
			buf := make([]byte, 64)
			for {
				n, err := r1.Read(buf)
				first = append(first, buf[:n]...)
				if err != nil {
					return
				}
			}
		}()

		time.Sleep(time.Millisecond) // let the write get in flight
		if err := w.Pause(); err != nil {
			t.Fatal(err)
		}
		if err := <-writeDone; err != nil {
			t.Fatal(err)
		}
		r1.Close()
		<-firstDone

		if len(first) != len(frame) {
			t.Fatalf("trial %d: old reader saw %d of %d bytes; write was split by Pause",
				trial, len(first), len(frame))
		}
	}
}

func TestConcurrentWritersSafe(t *testing.T) {
	// Concurrent writers are allowed (interleaving unspecified); total byte
	// count must still be exact.
	r, w := PipeSize(128)
	const writers, per = 4, 1000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := w.Write([]byte{1}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan int, 1)
	go func() {
		n, _ := io.Copy(io.Discard, r)
		done <- int(n)
	}()
	wg.Wait()
	w.Close()
	if got := <-done; got != writers*per {
		t.Fatalf("reader got %d bytes, want %d", got, writers*per)
	}
}

func TestReadBlocksUntilConnected(t *testing.T) {
	r := NewDetachableReader()
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 5)
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Errorf("read: %v", err)
		}
		got <- buf
	}()
	time.Sleep(10 * time.Millisecond)
	w := NewDetachableWriter()
	if err := Connect(w, r); err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("later"))
	select {
	case buf := <-got:
		if string(buf) != "later" {
			t.Fatalf("got %q", buf)
		}
	case <-time.After(time.Second):
		t.Fatal("reader never observed the late connection")
	}
}

func TestWriteBlocksUntilConnected(t *testing.T) {
	w := NewDetachableWriter()
	done := make(chan error, 1)
	go func() {
		_, err := w.Write([]byte("queued"))
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("write completed on an unconnected writer")
	case <-time.After(20 * time.Millisecond):
	}
	r := NewDetachableReader()
	if err := Connect(w, r); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(buf) != "queued" {
		t.Fatalf("got %q", buf)
	}
}

func TestCloseUnblocksPendingIO(t *testing.T) {
	r := NewDetachableReader()
	readErr := make(chan error, 1)
	go func() {
		_, err := r.Read(make([]byte, 1))
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case err := <-readErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock Read")
	}

	w := NewDetachableWriter()
	writeErr := make(chan error, 1)
	go func() {
		_, err := w.Write([]byte("x"))
		writeErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-writeErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock Write")
	}
}

// TestPauseWaitsForTrackedHandoff pins the hand-off contract behind
// loss-free live splices: with TrackHandoff enabled, Pause does not finish
// its drain when the reader has merely *consumed* the final bytes — it
// waits until the reader comes back for more, proving the consumer pushed
// what it was handed.
func TestPauseWaitsForTrackedHandoff(t *testing.T) {
	r, w := Pipe()
	r.TrackHandoff()
	if _, err := w.Write([]byte("chunk")); err != nil {
		t.Fatal(err)
	}
	consumed := make(chan struct{})
	acknowledge := make(chan struct{})
	go func() {
		buf := make([]byte, 8)
		if _, err := r.Read(buf); err != nil {
			t.Errorf("read: %v", err)
		}
		close(consumed)
		<-acknowledge
		r.Read(buf) // the loop coming back for more completes the drain
	}()
	<-consumed

	paused := make(chan struct{})
	go func() {
		if err := w.Pause(); err != nil {
			t.Errorf("pause: %v", err)
		}
		close(paused)
	}()
	// The buffer is empty but the hand-off is unacknowledged: Pause must
	// still be draining.
	select {
	case <-paused:
		t.Fatal("Pause completed while the reader still held the hand-off")
	case <-time.After(20 * time.Millisecond):
	}
	close(acknowledge)
	select {
	case <-paused:
	case <-time.After(time.Second):
		t.Fatal("Pause never completed after the reader came back")
	}
	// The second read is parked waiting for a reconnect; closing the reader
	// releases it.
	r.Close()
}
